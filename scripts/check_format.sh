#!/usr/bin/env bash
# Formatting gate for CI and local hooks.
#
# Two tiers:
#   1. Deterministic lint (always): no tabs, no trailing whitespace, no
#      lines over 80 columns, every file newline-terminated. These are the
#      invariants the codebase actually maintains, checkable on any box.
#   2. clang-format --dry-run --Werror against .clang-format, when a
#      clang-format binary is available (the CI format job installs one).
#      Set SPKADD_SKIP_CLANG_FORMAT=1 to run only the deterministic tier.
set -euo pipefail

cd "$(dirname "$0")/.."

files="$(git ls-files '*.cpp' '*.hpp')"
fail=0

# --- tier 1: deterministic lint -------------------------------------------
for f in $files; do
  if grep -qP '\t' "$f"; then
    echo "TAB CHARACTER: $f"
    fail=1
  fi
  if grep -qP ' +$' "$f"; then
    echo "TRAILING WHITESPACE: $f"
    fail=1
  fi
  long_lines="$(awk 'length > 80 {print FNR}' "$f")"
  if [ -n "$long_lines" ]; then
    echo "OVER 80 COLUMNS: $f (lines: $(echo "$long_lines" | tr '\n' ' '))"
    fail=1
  fi
  if [ -n "$(tail -c 1 "$f")" ]; then
    echo "NO TRAILING NEWLINE: $f"
    fail=1
  fi
done

# --- tier 2: clang-format --------------------------------------------------
CLANG_FORMAT="${CLANG_FORMAT:-clang-format}"
if [ "${SPKADD_SKIP_CLANG_FORMAT:-0}" != "1" ] &&
   command -v "$CLANG_FORMAT" > /dev/null 2>&1; then
  echo "running $("$CLANG_FORMAT" --version)"
  # shellcheck disable=SC2086
  if ! "$CLANG_FORMAT" --dry-run --Werror $files; then
    echo "clang-format drift detected (run: $CLANG_FORMAT -i <files>)"
    fail=1
  fi
else
  echo "note: clang-format unavailable or skipped; deterministic tier only"
fi

if [ "$fail" -eq 0 ]; then
  echo "OK: formatting clean"
fi
exit "$fail"
