#!/usr/bin/env bash
# CI entry point: configure + build + ctest, first plain Release, then with
# address+undefined sanitizers. Usage: scripts/ci.sh [extra cmake args...]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"

run_mode() {
  local name="$1" build_dir="$2"
  shift 2
  echo "=== [$name] configure ==="
  cmake -B "$build_dir" -S . "$@"
  echo "=== [$name] build ==="
  cmake --build "$build_dir" -j "$JOBS"
  echo "=== [$name] ctest ==="
  ctest --test-dir "$build_dir" --output-on-failure -j "$JOBS"
}

run_mode plain build "$@"
run_mode sanitize build-asan \
  -DCMAKE_BUILD_TYPE=Debug -DSPKADD_SANITIZE=address,undefined "$@"

echo "=== CI OK: plain + sanitizer modes green ==="
