#!/usr/bin/env bash
# CI entry point: configure + build + ctest. MODE selects which legs run —
# the GitHub Actions matrix runs one leg per job, local use defaults to all:
#   MODE=plain     Release build + ctest
#   MODE=sanitize  Debug + address,undefined sanitizers + ctest
#   MODE=tsan      Debug + thread sanitizer, OpenMP off, concurrency
#                  suites only (the aggregation service's std::thread
#                  layer; libgomp is not TSAN-instrumented, so the
#                  OpenMP kernels are out of scope for this leg)
#   MODE=all       plain + sanitize + tsan, in sequence (default)
# Usage: [MODE=plain|sanitize|tsan|all] scripts/ci.sh [extra cmake args...]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
MODE="${MODE:-all}"

# run_mode <name> <build_dir> <ctest_label_or_empty> [cmake args...]
run_mode() {
  local name="$1" build_dir="$2" label="$3"
  shift 3
  echo "=== [$name] configure ==="
  cmake -B "$build_dir" -S . "$@"
  echo "=== [$name] build ==="
  cmake --build "$build_dir" -j "$JOBS"
  echo "=== [$name] ctest ==="
  local ctest_args=(--output-on-failure -j "$JOBS")
  if [ -n "$label" ]; then
    ctest_args+=(-L "$label")
  fi
  ctest --test-dir "$build_dir" "${ctest_args[@]}"
}

run_tsan() {
  run_mode tsan build-tsan concurrency \
    -DCMAKE_BUILD_TYPE=Debug -DSPKADD_SANITIZE=thread \
    -DSPKADD_DISABLE_OPENMP=ON -DSPKADD_BUILD_BENCH=OFF \
    -DSPKADD_BUILD_EXAMPLES=OFF "$@"
}

case "$MODE" in
  plain)
    run_mode plain build "" "$@"
    ;;
  sanitize)
    run_mode sanitize build-asan "" \
      -DCMAKE_BUILD_TYPE=Debug -DSPKADD_SANITIZE=address,undefined "$@"
    ;;
  tsan)
    run_tsan "$@"
    ;;
  all)
    run_mode plain build "" "$@"
    run_mode sanitize build-asan "" \
      -DCMAKE_BUILD_TYPE=Debug -DSPKADD_SANITIZE=address,undefined "$@"
    run_tsan "$@"
    ;;
  *)
    echo "unknown MODE '$MODE' (want plain|sanitize|tsan|all)" >&2
    exit 2
    ;;
esac

echo "=== CI OK: $MODE mode(s) green ==="
