#!/usr/bin/env bash
# CI entry point: configure + build + ctest. MODE selects which legs run —
# the GitHub Actions matrix runs one leg per job, local use defaults to all:
#   MODE=plain     Release build + ctest
#   MODE=sanitize  Debug + address,undefined sanitizers + ctest
#   MODE=all       both, in sequence (default)
# Usage: [MODE=plain|sanitize|all] scripts/ci.sh [extra cmake args...]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${JOBS:-$(nproc)}"
MODE="${MODE:-all}"

run_mode() {
  local name="$1" build_dir="$2"
  shift 2
  echo "=== [$name] configure ==="
  cmake -B "$build_dir" -S . "$@"
  echo "=== [$name] build ==="
  cmake --build "$build_dir" -j "$JOBS"
  echo "=== [$name] ctest ==="
  ctest --test-dir "$build_dir" --output-on-failure -j "$JOBS"
}

case "$MODE" in
  plain)
    run_mode plain build "$@"
    ;;
  sanitize)
    run_mode sanitize build-asan \
      -DCMAKE_BUILD_TYPE=Debug -DSPKADD_SANITIZE=address,undefined "$@"
    ;;
  all)
    run_mode plain build "$@"
    run_mode sanitize build-asan \
      -DCMAKE_BUILD_TYPE=Debug -DSPKADD_SANITIZE=address,undefined "$@"
    ;;
  *)
    echo "unknown MODE '$MODE' (want plain|sanitize|all)" >&2
    exit 2
    ;;
esac

echo "=== CI OK: $MODE mode(s) green ==="
