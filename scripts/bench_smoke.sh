#!/usr/bin/env bash
# Perf-trajectory smoke run: small-shape bench_streaming + bench_fig6_summa
# with --json, merged into one BENCH_summa.json document. CI runs this per
# push and uploads the JSON as a workflow artifact, so every commit leaves a
# machine-readable sample of reducer throughput and streaming-SUMMA
# footprint behind.
#
# Usage: scripts/bench_smoke.sh [output.json]
#   BUILD_DIR=build   build tree holding the bench binaries (configured and
#                     built here when the binaries are missing)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
OUT="${1:-BENCH_summa.json}"
JOBS="${JOBS:-$(nproc)}"

if [ ! -x "$BUILD_DIR/bench/bench_streaming" ] ||
   [ ! -x "$BUILD_DIR/bench/bench_fig6_summa" ]; then
  echo "=== bench binaries missing; building $BUILD_DIR ==="
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BUILD_DIR" -j "$JOBS" \
    --target bench_streaming bench_fig6_summa
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# Shapes chosen to finish in seconds on one core while still exercising the
# real streaming/buffered paths (not toy 1-stage degenerate cases).
echo "=== bench_streaming (small shape) ==="
"$BUILD_DIR/bench/bench_streaming" \
  --rows 4096 --cols 32 --d 4 --batch 8 --repeats 3 \
  --json "$tmp/streaming.json" > "$tmp/streaming.txt"
# stderr stays on the console: it carries the per-pipeline progress lines
# and, on failure, the streaming-vs-buffered MISMATCH diagnostic.
echo "=== bench_fig6_summa (small shape) ==="
"$BUILD_DIR/bench/bench_fig6_summa" \
  --scale 9 --degree 4 --grid 4 --window 2 --repeats 3 \
  --json "$tmp/fig6.json" > "$tmp/fig6.txt"

# Merge the per-bench documents into one trajectory file (no jq needed).
{
  printf '{\n"schema": 1,\n"generated_by": "scripts/bench_smoke.sh",\n'
  printf '"benches": [\n'
  cat "$tmp/streaming.json"
  printf ',\n'
  cat "$tmp/fig6.json"
  printf ']\n}\n'
} > "$OUT"

# The merge is string concatenation; make sure the result actually parses.
if command -v jq > /dev/null 2>&1; then
  jq -e '.benches | length == 2' "$OUT" > /dev/null
elif command -v python3 > /dev/null 2>&1; then
  python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$OUT"
fi

echo "=== wrote $OUT ==="
