#!/usr/bin/env bash
# Perf-trajectory smoke run: small-shape bench_streaming + bench_fig6_summa
# merged into BENCH_summa.json, a short bench_service sweep into
# BENCH_service.json, and the hybrid-vs-best-single skew sweep
# (bench_hybrid) into BENCH_hybrid.json (all SampleLog schema). CI runs
# this per push and uploads the JSON files as workflow artifacts, so every
# commit leaves a machine-readable sample of reducer throughput,
# streaming-SUMMA footprint, aggregation-service ingest latency and the
# per-chunk hybrid dispatch mix behind.
#
# The analytic-vs-calibrated hybrid comparison (bench_calibration against
# the committed calibration/misscost_default.json) lands in
# BENCH_calibration.json on the same schema.
#
# The network-daemon loadgen (bench_daemon: >= 8 pipelined connections,
# every windowed snapshot verified bit-identical to a single-threaded
# reference fold) lands in BENCH_daemon.json on the same schema.
#
# The metrics-overhead leg re-runs a matched bench_service config with
# the obs registry attached (--metrics on) and detached (--metrics off),
# 3 reps each, and FAILS when the best metrics-on rep is more than 3%
# slower than the best metrics-off rep (the scrape-time-collector design
# promises hot paths never touch the registry). Samples land in
# BENCH_obs.json.
#
# The representation-adaptivity leg (bench_dense: SPA vs Hash vs DenseAcc
# across a column-density axis plus the Accumulator promotion-threshold
# sweep, every cell bit-identity gated) lands in BENCH_dense.json on the
# same schema.
#
# Usage: scripts/bench_smoke.sh [summa.json] [service.json] [hybrid.json] \
#                               [calibration.json] [daemon.json] [obs.json] \
#                               [dense.json]
#   BUILD_DIR=build   build tree holding the bench binaries (configured and
#                     built here when the binaries are missing)
#   SERVICE_THREADS=N run ONLY the service sweep, sized for a multi-core
#                     scaling leg: N producers/workers with thread/shard
#                     affinity pinning and a fixed per-producer arrival
#                     rate (matched offered load across the shard sweep),
#                     written to BENCH_service_t${N}.json. The CI
#                     bench-service-scaling matrix fans this out over
#                     thread counts; all other benches are skipped.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
OUT="${1:-BENCH_summa.json}"
SERVICE_OUT="${2:-BENCH_service.json}"
HYBRID_OUT="${3:-BENCH_hybrid.json}"
CALIBRATION_OUT="${4:-BENCH_calibration.json}"
DAEMON_OUT="${5:-BENCH_daemon.json}"
OBS_OUT="${6:-BENCH_obs.json}"
DENSE_OUT="${7:-BENCH_dense.json}"
JOBS="${JOBS:-$(nproc)}"
SERVICE_THREADS="${SERVICE_THREADS:-}"

if [ ! -x "$BUILD_DIR/bench/bench_streaming" ] ||
   [ ! -x "$BUILD_DIR/bench/bench_fig6_summa" ] ||
   [ ! -x "$BUILD_DIR/bench/bench_service" ] ||
   [ ! -x "$BUILD_DIR/bench/bench_hybrid" ] ||
   [ ! -x "$BUILD_DIR/bench/bench_calibration" ] ||
   [ ! -x "$BUILD_DIR/bench/bench_daemon" ] ||
   [ ! -x "$BUILD_DIR/bench/bench_dense" ]; then
  echo "=== bench binaries missing; building $BUILD_DIR ==="
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BUILD_DIR" -j "$JOBS" \
    --target bench_streaming bench_fig6_summa bench_service bench_hybrid \
             bench_calibration bench_daemon bench_dense
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# Wrap per-bench SampleLog documents into one trajectory file (no jq
# needed): merge_benches <out> <in...>
merge_benches() {
  local out="$1"
  shift
  {
    printf '{\n"schema": 1,\n"generated_by": "scripts/bench_smoke.sh",\n'
    printf '"benches": [\n'
    local first=1
    for doc in "$@"; do
      [ "$first" -eq 1 ] || printf ',\n'
      first=0
      cat "$doc"
    done
    printf ']\n}\n'
  } > "$out"
}

# Multi-core scaling leg: service sweep only, N producer threads at a
# fixed arrival rate so the p99-vs-shards comparison holds offered load
# constant, with worker/CPU affinity pinning. Burst 1 vs 8 puts the
# pre-burst ingest path and the batched one side by side in one file.
# The flush deadline is dropped to 100us because the offered
# inter-arrival (500us at --rate 2000) matches the default 500us
# deadline, which would make buffer residence - not queue/fold time -
# the whole p99.
if [ -n "$SERVICE_THREADS" ]; then
  SCALING_OUT="BENCH_service_t${SERVICE_THREADS}.json"
  export OMP_NUM_THREADS="$SERVICE_THREADS"
  echo "=== bench_service scaling leg (threads=$SERVICE_THREADS) ==="
  "$BUILD_DIR/bench/bench_service" \
    --rows 4096 --cols 16 --d 4 --updates 8 --duration-ms 2000 \
    --shards 1,2,4 --producers "$SERVICE_THREADS" \
    --workers "$SERVICE_THREADS" --burst 1,8 --rate 2000 \
    --flush-deadline-us 100 --pin \
    --json "$tmp/service_scaling.json" > "$tmp/service_scaling.txt"
  cat "$tmp/service_scaling.txt"
  merge_benches "$SCALING_OUT" "$tmp/service_scaling.json"
  echo "=== wrote $SCALING_OUT ==="
  exit 0
fi

# Shapes chosen to finish in seconds on one core while still exercising the
# real streaming/buffered paths (not toy 1-stage degenerate cases).
echo "=== bench_streaming (small shape) ==="
"$BUILD_DIR/bench/bench_streaming" \
  --rows 4096 --cols 32 --d 4 --batch 8 --repeats 3 \
  --json "$tmp/streaming.json" > "$tmp/streaming.txt"
# stderr stays on the console: it carries the per-pipeline progress lines
# and, on failure, the streaming-vs-buffered MISMATCH diagnostic.
echo "=== bench_fig6_summa (small shape) ==="
"$BUILD_DIR/bench/bench_fig6_summa" \
  --scale 9 --degree 4 --grid 4 --window 2 --repeats 3 \
  --json "$tmp/fig6.json" > "$tmp/fig6.txt"
# The service sweep's exit code also gates the run: any configuration
# whose concurrent sum is not bit-identical to one-shot spkadd fails here.
echo "=== bench_service (small sweep) ==="
"$BUILD_DIR/bench/bench_service" \
  --rows 4096 --cols 16 --d 4 --updates 8 --duration-ms 150 \
  --shards 1,2,4 --producers 2 --burst 1,8 \
  --json "$tmp/service.json" > "$tmp/service.txt"
# Hybrid skew sweep: exits nonzero when any method result is not
# bit-identical to Hash, so correctness gates the run like the others.
# The shape is big enough (~seconds, not sub-ms laps) that the recorded
# hybrid-vs-best-single margin is signal, not timer noise.
echo "=== bench_hybrid (skew sweep) ==="
"$BUILD_DIR/bench/bench_hybrid" \
  --rows 65536 --cols 512 --d 16 --k 64 --repeats 9 \
  --json "$tmp/hybrid.json" > "$tmp/hybrid.txt"
# Analytic vs calibrated Hybrid. The committed table models the paper's
# 48-thread 8MB-LLC EPYC; for a TIMING comparison the table has to model
# the machine the timings run on, so this leg first calibrates a local
# table (detected hierarchy, this box's thread count, bench-matched rows)
# and compares against that — the per-machine recalibration workflow the
# README documents. Choice stability of the committed table is CI's
# calibrate-smoke drift gate, not this leg. Bit-identity still gates the
# run (nonzero exit on any mismatch); the +2% overhead budget is recorded
# in the samples but not enforced here (timing noise).
echo "=== bench_calibration (local sweep + analytic vs calibrated) ==="
"$BUILD_DIR/bench/bench_calibration" \
  --emit "$tmp/misscost_local.json" --threads "$(nproc)" --rows 65536 \
  --k-axis 4,16,64 --d-axis 2,16,128,1024 --w-axis 16,64 \
  > "$tmp/calibration_sweep.txt"
"$BUILD_DIR/bench/bench_calibration" \
  --table "$tmp/misscost_local.json" \
  --bench-rows 65536 --bench-cols 512 --repeats 9 \
  --json "$tmp/calibration.json" > "$tmp/calibration.txt"
# Network daemon loadgen, in-process transport (CI's daemon-smoke job
# runs the real socket-pair form): 8 pipelined connections, 2 tenants,
# and the run fails on any snapshot mismatch, dropped ack or protocol
# error — correctness gates this leg like the others.
echo "=== bench_daemon (8-connection windowed loadgen) ==="
"$BUILD_DIR/bench/bench_daemon" \
  --rows 2048 --cols 16 --d 4 --connections 8 --updates 6 --rounds 6 \
  --tenants 2 --json "$tmp/daemon.json" > "$tmp/daemon.txt"
cat "$tmp/daemon.txt"

# Representation-adaptivity leg: the density face-off (SPA vs Hash vs
# DenseAcc) and the promotion-threshold sweep. Bit-identity (one-shot to
# Hash, promoted snapshots to DensePolicy-off) gates the run; the
# DenseAcc-beats-SPA verdict is recorded in the samples, not enforced
# (single-core CI timing).
echo "=== bench_dense (density + promotion sweep) ==="
"$BUILD_DIR/bench/bench_dense" \
  --rows 8192 --cols 32 --k 16 --repeats 5 \
  --json "$tmp/dense.json" > "$tmp/dense.txt"
cat "$tmp/dense.txt"

# Metrics-overhead gate: the identical saturation config with the obs
# registry attached vs detached, 3 reps each. Min-of-reps ingest
# seconds-per-update (averaged over the run's patterns) is the score —
# best-of filters scheduler noise, and the 3% budget is the promise the
# collector design makes (ISSUE: metrics-enabled within 3% of off).
echo "=== bench_service metrics-overhead gate (on vs off, 3 reps) ==="
for mode in on off; do
  for rep in 1 2 3; do
    "$BUILD_DIR/bench/bench_service" \
      --rows 4096 --cols 16 --d 4 --updates 8 --duration-ms 300 \
      --shards 2 --producers 2 --burst 8 --metrics "$mode" \
      --json "$tmp/obs_${mode}_${rep}.json" > "$tmp/obs_${mode}_${rep}.txt"
  done
done
python3 - "$tmp" <<'PY'
import json, sys
tmp = sys.argv[1]

def rep_score(path):
    doc = json.load(open(path))
    secs = [s["median_seconds"] for s in doc["samples"]
            if s["name"].endswith("/ingest") and s["median_seconds"] > 0]
    if not secs:
        raise SystemExit(f"metrics-overhead gate: no ingest samples in {path}")
    return sum(secs) / len(secs)

best = {m: min(rep_score(f"{tmp}/obs_{m}_{r}.json") for r in (1, 2, 3))
        for m in ("on", "off")}
overhead = best["on"] / best["off"] - 1.0
print(f"metrics-overhead gate: on={best['on']:.3e}s/upd "
      f"off={best['off']:.3e}s/upd overhead={overhead * 100:+.2f}%")
if best["on"] > best["off"] * 1.03:
    raise SystemExit("metrics-overhead gate FAILED: "
                     "metrics-on more than 3% slower than metrics-off")
PY

merge_benches "$OUT" "$tmp/streaming.json" "$tmp/fig6.json"
merge_benches "$SERVICE_OUT" "$tmp/service.json"
merge_benches "$HYBRID_OUT" "$tmp/hybrid.json"
merge_benches "$CALIBRATION_OUT" "$tmp/calibration.json"
merge_benches "$DAEMON_OUT" "$tmp/daemon.json"
merge_benches "$OBS_OUT" \
  "$tmp/obs_on_1.json" "$tmp/obs_on_2.json" "$tmp/obs_on_3.json" \
  "$tmp/obs_off_1.json" "$tmp/obs_off_2.json" "$tmp/obs_off_3.json"
merge_benches "$DENSE_OUT" "$tmp/dense.json"

# The merge is string concatenation; make sure the results actually parse.
if command -v jq > /dev/null 2>&1; then
  jq -e '.benches | length == 2' "$OUT" > /dev/null
  jq -e '.benches | length == 1' "$SERVICE_OUT" > /dev/null
  jq -e '.benches | length == 1' "$HYBRID_OUT" > /dev/null
  jq -e '.benches | length == 1' "$CALIBRATION_OUT" > /dev/null
  jq -e '.benches | length == 1' "$DAEMON_OUT" > /dev/null
  jq -e '.benches | length == 6' "$OBS_OUT" > /dev/null
  jq -e '.benches | length == 1' "$DENSE_OUT" > /dev/null
elif command -v python3 > /dev/null 2>&1; then
  for doc in "$OUT" "$SERVICE_OUT" "$HYBRID_OUT" "$CALIBRATION_OUT" \
             "$DAEMON_OUT" "$OBS_OUT" "$DENSE_OUT"; do
    python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$doc"
  done
fi

echo "=== wrote $OUT, $SERVICE_OUT, $HYBRID_OUT, $CALIBRATION_OUT," \
     "$DAEMON_OUT, $OBS_OUT and $DENSE_OUT ==="
