#!/usr/bin/env bash
# Perf-trajectory smoke run: small-shape bench_streaming + bench_fig6_summa
# merged into BENCH_summa.json, and a short bench_service sweep into
# BENCH_service.json (same SampleLog schema). CI runs this per push and
# uploads both JSON files as workflow artifacts, so every commit leaves a
# machine-readable sample of reducer throughput, streaming-SUMMA footprint
# and aggregation-service ingest latency behind.
#
# Usage: scripts/bench_smoke.sh [summa_out.json] [service_out.json]
#   BUILD_DIR=build   build tree holding the bench binaries (configured and
#                     built here when the binaries are missing)
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
OUT="${1:-BENCH_summa.json}"
SERVICE_OUT="${2:-BENCH_service.json}"
JOBS="${JOBS:-$(nproc)}"

if [ ! -x "$BUILD_DIR/bench/bench_streaming" ] ||
   [ ! -x "$BUILD_DIR/bench/bench_fig6_summa" ] ||
   [ ! -x "$BUILD_DIR/bench/bench_service" ]; then
  echo "=== bench binaries missing; building $BUILD_DIR ==="
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BUILD_DIR" -j "$JOBS" \
    --target bench_streaming bench_fig6_summa bench_service
fi

tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

# Wrap per-bench SampleLog documents into one trajectory file (no jq
# needed): merge_benches <out> <in...>
merge_benches() {
  local out="$1"
  shift
  {
    printf '{\n"schema": 1,\n"generated_by": "scripts/bench_smoke.sh",\n'
    printf '"benches": [\n'
    local first=1
    for doc in "$@"; do
      [ "$first" -eq 1 ] || printf ',\n'
      first=0
      cat "$doc"
    done
    printf ']\n}\n'
  } > "$out"
}

# Shapes chosen to finish in seconds on one core while still exercising the
# real streaming/buffered paths (not toy 1-stage degenerate cases).
echo "=== bench_streaming (small shape) ==="
"$BUILD_DIR/bench/bench_streaming" \
  --rows 4096 --cols 32 --d 4 --batch 8 --repeats 3 \
  --json "$tmp/streaming.json" > "$tmp/streaming.txt"
# stderr stays on the console: it carries the per-pipeline progress lines
# and, on failure, the streaming-vs-buffered MISMATCH diagnostic.
echo "=== bench_fig6_summa (small shape) ==="
"$BUILD_DIR/bench/bench_fig6_summa" \
  --scale 9 --degree 4 --grid 4 --window 2 --repeats 3 \
  --json "$tmp/fig6.json" > "$tmp/fig6.txt"
# The service sweep's exit code also gates the run: any configuration
# whose concurrent sum is not bit-identical to one-shot spkadd fails here.
echo "=== bench_service (small sweep) ==="
"$BUILD_DIR/bench/bench_service" \
  --rows 4096 --cols 16 --d 4 --updates 8 --duration-ms 150 \
  --shards 1,2,4 --producers 2 \
  --json "$tmp/service.json" > "$tmp/service.txt"

merge_benches "$OUT" "$tmp/streaming.json" "$tmp/fig6.json"
merge_benches "$SERVICE_OUT" "$tmp/service.json"

# The merge is string concatenation; make sure the results actually parse.
if command -v jq > /dev/null 2>&1; then
  jq -e '.benches | length == 2' "$OUT" > /dev/null
  jq -e '.benches | length == 1' "$SERVICE_OUT" > /dev/null
elif command -v python3 > /dev/null 2>&1; then
  python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$OUT"
  python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$SERVICE_OUT"
fi

echo "=== wrote $OUT and $SERVICE_OUT ==="
