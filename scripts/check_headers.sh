#!/usr/bin/env bash
# Verify every header under src/ is self-contained: each must compile as the
# sole include of a TU (no reliance on transitive includes from siblings).
set -euo pipefail

cd "$(dirname "$0")/.."
CXX="${CXX:-g++}"
tmp="$(mktemp -d)"
trap 'rm -rf "$tmp"' EXIT

fail=0
for h in $(find src -name '*.hpp' | sort); do
  printf '#include "%s"\nint main() { return 0; }\n' "${h#src/}" > "$tmp/tu.cpp"
  if ! "$CXX" -std=c++20 -fsyntax-only -Wall -Wextra -I src -fopenmp \
      "$tmp/tu.cpp" 2> "$tmp/err.log"; then
    echo "NOT SELF-CONTAINED: $h"
    cat "$tmp/err.log"
    fail=1
  fi
done

if [ "$fail" -eq 0 ]; then
  echo "OK: all src/ headers are self-contained"
fi
exit "$fail"
