#!/usr/bin/env bash
# Regenerate the committed Hybrid-planner calibration table
# (calibration/misscost_default.json): build bench_calibration, sweep all
# five column kernels over the (k x density x chunk-width) grid through the
# modeled paper hierarchy, and validate the emitted JSON by loading it
# back plus (when python3 is around) checking it parses as plain JSON.
#
# The hierarchy is an EXPLICIT spec (the paper's 8MB-LLC EPYC shape behind
# a typical private L1/L2), never the detected machine, so the table is
# byte-identical no matter which host runs the sweep — that is what lets
# CI diff planner choices against the committed file.
#
# Usage: scripts/calibrate.sh [out.json]
#   BUILD_DIR=build    build tree holding bench_calibration
#   QUICK=1            reduced sweep (CI calibrate-smoke): fewer grid
#                      points, smaller trace matrices; written to the out
#                      path but NOT meant to be committed.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${BUILD_DIR:-build}"
OUT="${1:-calibration/misscost_default.json}"
JOBS="${JOBS:-$(nproc)}"
QUICK="${QUICK:-}"

# The modeled machine of the committed table: paper-shaped 8MB shared LLC
# behind private 32K/1M levels. Keep in sync with README "Calibrated
# dispatch" and the committed table's "hierarchy" field.
CACHE_SPEC="L1:32K:8,L2:1M:16,LLC:8M:16"
THREADS=48

if [ ! -x "$BUILD_DIR/bench/bench_calibration" ]; then
  echo "=== bench_calibration missing; building $BUILD_DIR ==="
  cmake -B "$BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release
  cmake --build "$BUILD_DIR" -j "$JOBS" --target bench_calibration
fi

mkdir -p "$(dirname "$OUT")"

if [ -n "$QUICK" ]; then
  # Reduced sweep: endpoint-heavy subset of the full axes so CI can diff
  # argmin choices at shared grid points in seconds.
  AXES=(--k-axis 4,64 --d-axis 2,128,1024 --w-axis 4,64 --rows 4096)
else
  AXES=(--k-axis 4,16,64 --d-axis 2,16,128,1024 --w-axis 4,16,64 --rows 16384)
fi

echo "=== calibration sweep (spec $CACHE_SPEC, threads $THREADS) ==="
"$BUILD_DIR/bench/bench_calibration" \
  --emit "$OUT" --cache-spec "$CACHE_SPEC" --threads "$THREADS" "${AXES[@]}"

# bench_calibration already round-trips the table through its own loader;
# double-check the file is plain JSON for external consumers.
if command -v python3 > /dev/null 2>&1; then
  python3 -c "import json,sys; json.load(open(sys.argv[1]))" "$OUT"
elif command -v jq > /dev/null 2>&1; then
  jq -e '.version == 2' "$OUT" > /dev/null
fi

echo "=== wrote $OUT ==="
