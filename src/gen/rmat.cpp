#include "gen/rmat.hpp"

#include "util/omp_compat.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/rng.hpp"

namespace spkadd::gen {
namespace {

/// One R-MAT edge: descend the quadtree, one bit of (row, col) per level.
/// Rectangular matrices descend both dimensions while both have bits left,
/// then only the larger one (with quadrant probabilities folded to the
/// surviving axis).
std::pair<std::int32_t, std::int32_t> draw_edge(const RmatParams& p,
                                                util::Xoshiro256& rng) {
  std::int64_t r = 0, c = 0;
  const int levels = std::max(p.row_scale, p.col_scale);
  for (int level = levels - 1; level >= 0; --level) {
    double a = p.a, b = p.b, cq = p.c, dq = p.d;
    if (p.noise > 0) {
      // Symmetric multiplicative jitter, renormalized.
      a *= 1.0 + p.noise * (2.0 * rng.uniform() - 1.0);
      b *= 1.0 + p.noise * (2.0 * rng.uniform() - 1.0);
      cq *= 1.0 + p.noise * (2.0 * rng.uniform() - 1.0);
      dq *= 1.0 + p.noise * (2.0 * rng.uniform() - 1.0);
      const double s = a + b + cq + dq;
      a /= s; b /= s; cq /= s; dq /= s;
    }
    const bool has_row_bit = level < p.row_scale;
    const bool has_col_bit = level < p.col_scale;
    const double u = rng.uniform();
    bool lower;   // row bit
    bool right;   // col bit
    if (u < a) {
      lower = false; right = false;
    } else if (u < a + b) {
      lower = false; right = true;
    } else if (u < a + b + cq) {
      lower = true; right = false;
    } else {
      lower = true; right = true;
    }
    if (has_row_bit) r = (r << 1) | (lower ? 1 : 0);
    if (has_col_bit) c = (c << 1) | (right ? 1 : 0);
  }
  return {static_cast<std::int32_t>(r), static_cast<std::int32_t>(c)};
}

}  // namespace

CooMatrix<std::int32_t, double> rmat_coo(const RmatParams& p) {
  if (p.row_scale < 0 || p.row_scale > 30 || p.col_scale < 0 ||
      p.col_scale > 30)
    throw std::invalid_argument("rmat_coo: scale must be in [0, 30]");
  const double psum = p.a + p.b + p.c + p.d;
  if (psum < 0.999 || psum > 1.001)
    throw std::invalid_argument(
        "rmat_coo: quadrant probabilities must sum to 1");

  const auto rows = static_cast<std::int32_t>(1) << p.row_scale;
  const auto cols = static_cast<std::int32_t>(1) << p.col_scale;
  CooMatrix<std::int32_t, double> m(rows, cols);
  m.entries().resize(static_cast<std::size_t>(p.edges));

  const util::Xoshiro256 root(p.seed);
  // Fixed 64-way stream split => identical output for any thread count.
  constexpr std::uint64_t kStreams = 64;
  const std::uint64_t per =
      (p.edges + kStreams - 1) / kStreams;

#pragma omp parallel for schedule(dynamic, 1)
  for (std::int64_t s = 0; s < static_cast<std::int64_t>(kStreams); ++s) {
    util::Xoshiro256 rng =
        root.split(static_cast<std::uint64_t>(s) + 0x9e37);
    const std::uint64_t lo = static_cast<std::uint64_t>(s) * per;
    const std::uint64_t hi = std::min<std::uint64_t>(p.edges, lo + per);
    for (std::uint64_t e = lo; e < hi; ++e) {
      auto [r, c] = draw_edge(p, rng);
      // Values uniform in (0, 1]: nonzero, reproducible.
      const double v = 1.0 - rng.uniform();
      m.entries()[e] = {r, c, v};
    }
  }
  m.compress();
  return m;
}

CscMatrix<std::int32_t, double> rmat_csc(const RmatParams& p) {
  return rmat_coo(p).to_csc();
}

std::vector<CscMatrix<std::int32_t, double>> split_columns(
    const CscMatrix<std::int32_t, double>& m, int k) {
  if (k <= 0) throw std::invalid_argument("split_columns: k must be positive");
  if (m.cols() % k != 0)
    throw std::invalid_argument("split_columns: cols must be divisible by k");
  const std::int32_t slab = m.cols() / k;
  std::vector<CscMatrix<std::int32_t, double>> out;
  out.reserve(static_cast<std::size_t>(k));
  const auto cp = m.col_ptr();
  for (int i = 0; i < k; ++i) {
    const std::int32_t j0 = slab * i;
    const auto base = cp[static_cast<std::size_t>(j0)];
    std::vector<std::int32_t> col_ptr(static_cast<std::size_t>(slab) + 1);
    for (std::int32_t j = 0; j <= slab; ++j)
      col_ptr[static_cast<std::size_t>(j)] =
          cp[static_cast<std::size_t>(j0 + j)] - base;
    const auto lo = static_cast<std::size_t>(base);
    const auto hi =
        static_cast<std::size_t>(cp[static_cast<std::size_t>(j0 + slab)]);
    std::vector<std::int32_t> row_idx(
        m.row_idx().begin() + static_cast<std::ptrdiff_t>(lo),
        m.row_idx().begin() + static_cast<std::ptrdiff_t>(hi));
    std::vector<double> values(
        m.values().begin() + static_cast<std::ptrdiff_t>(lo),
        m.values().begin() + static_cast<std::ptrdiff_t>(hi));
    out.emplace_back(m.rows(), slab, std::move(col_ptr), std::move(row_idx),
                     std::move(values));
  }
  return out;
}

}  // namespace spkadd::gen
