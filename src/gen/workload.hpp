// Bench-facing workload factory.
//
// Every experiment in the paper is parameterized by (pattern, m, n, d, k):
// pattern in {ER, RMAT}, m rows, n cols per addend, d average nonzeros per
// column, k addends. This module turns that tuple into the k CSC matrices
// via the paper's recipe (one m x k*n R-MAT draw split along columns), and
// prints a one-line description for bench headers.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "matrix/csc.hpp"

namespace spkadd::gen {

enum class Pattern { ER, RMAT };

struct WorkloadSpec {
  Pattern pattern = Pattern::ER;
  std::int64_t rows = 1 << 17;  ///< rounded up to a power of two
  std::int64_t cols = 1 << 10;  ///< per-addend columns, rounded to pow2
  std::int64_t avg_nnz_per_col = 16;  ///< the paper's "d"
  int k = 8;
  std::uint64_t seed = 42;

  [[nodiscard]] std::string describe() const;
};

/// Materialize the k addends. All have shape rows x cols (powers of two),
/// sorted canonical CSC.
std::vector<CscMatrix<std::int32_t, double>> make_workload(
    const WorkloadSpec& spec);

/// Sum of input nnz (the denominator of the compression factor and the work
/// unit of every complexity row in Table I).
std::size_t total_input_nnz(
    const std::vector<CscMatrix<std::int32_t, double>>& inputs);

/// Deterministically shuffle rows within each column so the workload becomes
/// *unsorted* — exercises the "need sorted inputs? no" column of Table I for
/// hash/SPA and the unsorted-hash SUMMA variant of Fig. 6.
void shuffle_columns(CscMatrix<std::int32_t, double>& m, std::uint64_t seed);

}  // namespace spkadd::gen
