#include "gen/workload.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "gen/rmat.hpp"
#include "util/bit_ops.hpp"
#include "util/rng.hpp"

namespace spkadd::gen {

std::string WorkloadSpec::describe() const {
  std::ostringstream ss;
  ss << (pattern == Pattern::ER ? "ER" : "RMAT") << " m=" << rows
     << " n=" << cols << " d=" << avg_nnz_per_col << " k=" << k
     << " seed=" << seed;
  return ss.str();
}

std::vector<CscMatrix<std::int32_t, double>> make_workload(
    const WorkloadSpec& spec) {
  if (spec.k <= 0) throw std::invalid_argument("make_workload: k must be > 0");
  const int row_scale =
      static_cast<int>(util::log2_floor(util::next_pow2(
          static_cast<std::uint64_t>(std::max<std::int64_t>(1, spec.rows)))));
  // Combined matrix has k*n columns; k and n both rounded to powers of two.
  const auto k_pow = util::next_pow2(static_cast<std::uint64_t>(spec.k));
  if (k_pow != static_cast<std::uint64_t>(spec.k))
    throw std::invalid_argument("make_workload: k must be a power of two");
  const auto cols_pow = util::next_pow2(
      static_cast<std::uint64_t>(std::max<std::int64_t>(1, spec.cols)));
  const int col_scale = static_cast<int>(
      util::log2_floor(cols_pow * static_cast<std::uint64_t>(spec.k)));
  if (row_scale > 30 || col_scale > 30)
    throw std::invalid_argument("make_workload: dimensions too large");

  const std::uint64_t edges = static_cast<std::uint64_t>(spec.avg_nnz_per_col) *
                              cols_pow * static_cast<std::uint64_t>(spec.k);
  RmatParams p = spec.pattern == Pattern::ER
                     ? RmatParams::er(row_scale, col_scale, edges, spec.seed)
                     : RmatParams::g500(row_scale, col_scale, edges, spec.seed);
  return split_columns(rmat_csc(p), spec.k);
}

std::size_t total_input_nnz(
    const std::vector<CscMatrix<std::int32_t, double>>& inputs) {
  std::size_t total = 0;
  for (const auto& m : inputs) total += m.nnz();
  return total;
}

void shuffle_columns(CscMatrix<std::int32_t, double>& m, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  auto rows = m.mutable_row_idx();
  auto vals = m.mutable_values();
  const auto cp = m.col_ptr();
  for (std::int32_t j = 0; j < m.cols(); ++j) {
    const auto lo = static_cast<std::size_t>(cp[static_cast<std::size_t>(j)]);
    const auto hi =
        static_cast<std::size_t>(cp[static_cast<std::size_t>(j) + 1]);
    for (std::size_t i = hi; i > lo + 1; --i) {
      const std::size_t pick = lo + rng.bounded(i - lo);
      std::swap(rows[i - 1], rows[pick]);
      std::swap(vals[i - 1], vals[pick]);
    }
  }
}

}  // namespace spkadd::gen
