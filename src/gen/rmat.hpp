// R-MAT recursive matrix generator (Chakrabarti, Zhan, Faloutsos, SDM'04).
//
// The paper's synthetic workloads (§IV-A) are all R-MAT:
//   * ER    — seeds a=b=c=d=0.25, i.e. uniform Erdős–Rényi sparsity;
//   * RMAT  — Graph500 seeds a=0.57, b=c=0.19, d=0.05, power-law rows.
// Dimensions are powers of two (row_scale / col_scale); for each edge the
// generator descends the 2^row_scale x 2^col_scale quadtree choosing a
// quadrant per level. Rectangular shapes descend only the larger dimension
// once the smaller one is exhausted. Duplicate edges are summed by
// CooMatrix::compress, so the realized nnz is slightly below the target for
// skewed seeds — exactly like the original generator.
#pragma once

#include <cstdint>
#include <vector>

#include "matrix/coo.hpp"
#include "matrix/csc.hpp"

namespace spkadd::gen {

struct RmatParams {
  int row_scale = 16;  ///< rows = 2^row_scale
  int col_scale = 10;  ///< cols = 2^col_scale
  /// Quadrant probabilities (upper-left, upper-right, lower-left,
  /// lower-right); must sum to ~1.
  double a = 0.25, b = 0.25, c = 0.25, d = 0.25;
  std::uint64_t edges = 1 << 16;  ///< edges drawn before deduplication
  std::uint64_t seed = 1;
  /// Per-level +-noise applied to (a,b,c,d) so repeated quadrants do not
  /// produce artificial ridges; 0 disables.
  double noise = 0.1;

  /// Paper's ER seeds.
  static RmatParams er(int row_scale, int col_scale, std::uint64_t edges,
                       std::uint64_t seed) {
    RmatParams p;
    p.row_scale = row_scale;
    p.col_scale = col_scale;
    p.a = p.b = p.c = p.d = 0.25;
    p.noise = 0.0;
    p.edges = edges;
    p.seed = seed;
    return p;
  }

  /// Paper's Graph500 seeds.
  static RmatParams g500(int row_scale, int col_scale, std::uint64_t edges,
                         std::uint64_t seed) {
    RmatParams p;
    p.row_scale = row_scale;
    p.col_scale = col_scale;
    p.a = 0.57;
    p.b = 0.19;
    p.c = 0.19;
    p.d = 0.05;
    p.edges = edges;
    p.seed = seed;
    return p;
  }
};

/// Draw `edges` R-MAT triples with uniform(0,1] values, sum duplicates,
/// return canonical COO. Parallelized over edges with per-thread RNG
/// streams; deterministic for a fixed (params, thread-count-independent).
CooMatrix<std::int32_t, double> rmat_coo(const RmatParams& params);

/// Same, converted to sorted CSC.
CscMatrix<std::int32_t, double> rmat_csc(const RmatParams& params);

/// The paper's workload recipe (§IV-A): generate one m x (k*n) matrix and
/// split it along columns into k matrices of shape m x n. Column indices are
/// re-based per slab so the k results are conformant addends.
std::vector<CscMatrix<std::int32_t, double>> split_columns(
    const CscMatrix<std::int32_t, double>& m, int k);

}  // namespace spkadd::gen
