// Portable binary matrix format.
//
// Matrix Market text files are slow to parse for the multi-gigabyte
// protein-similarity inputs the paper uses; benches convert them once to
// this binary container and stream it afterwards. Layout (little-endian):
//
//   magic "SPKB" | u32 version | u32 index_bytes | u32 value_bytes |
//   i64 rows | i64 cols | i64 nnz |
//   col_ptr[cols+1] | row_idx[nnz] | values[nnz]
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "matrix/csc.hpp"

namespace spkadd::io {

/// Serialize a CSC matrix. Throws std::runtime_error on stream failure.
void write_binary(std::ostream& out,
                  const CscMatrix<std::int32_t, double>& m);
void write_binary_file(const std::string& path,
                       const CscMatrix<std::int32_t, double>& m);

/// Deserialize; validates the header (magic, version, element widths) and
/// the structural invariants of the arrays. Throws on any mismatch.
CscMatrix<std::int32_t, double> read_binary(std::istream& in);
CscMatrix<std::int32_t, double> read_binary_file(const std::string& path);

}  // namespace spkadd::io
