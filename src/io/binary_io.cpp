#include "io/binary_io.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <vector>

#include "matrix/validate.hpp"

namespace spkadd::io {
namespace {

constexpr std::array<char, 4> kMagic{'S', 'P', 'K', 'B'};
constexpr std::uint32_t kVersion = 1;

template <class T>
void write_pod(std::ostream& out, const T& v) {
  out.write(reinterpret_cast<const char*>(&v), sizeof(T));
}

template <class T>
T read_pod(std::istream& in) {
  T v{};
  in.read(reinterpret_cast<char*>(&v), sizeof(T));
  if (!in) throw std::runtime_error("binary matrix: truncated stream");
  return v;
}

template <class T>
void write_array(std::ostream& out, std::span<const T> data) {
  out.write(reinterpret_cast<const char*>(data.data()),
            static_cast<std::streamsize>(data.size() * sizeof(T)));
}

template <class T>
std::vector<T> read_array(std::istream& in, std::size_t count) {
  std::vector<T> data(count);
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(count * sizeof(T)));
  if (!in) throw std::runtime_error("binary matrix: truncated array");
  return data;
}

}  // namespace

void write_binary(std::ostream& out,
                  const CscMatrix<std::int32_t, double>& m) {
  out.write(kMagic.data(), kMagic.size());
  write_pod(out, kVersion);
  write_pod(out, static_cast<std::uint32_t>(sizeof(std::int32_t)));
  write_pod(out, static_cast<std::uint32_t>(sizeof(double)));
  write_pod(out, static_cast<std::int64_t>(m.rows()));
  write_pod(out, static_cast<std::int64_t>(m.cols()));
  write_pod(out, static_cast<std::int64_t>(m.nnz()));
  write_array(out, m.col_ptr());
  write_array(out, m.row_idx());
  write_array(out, m.values());
  if (!out) throw std::runtime_error("binary matrix: write failed");
}

CscMatrix<std::int32_t, double> read_binary(std::istream& in) {
  std::array<char, 4> magic{};
  in.read(magic.data(), magic.size());
  if (!in || magic != kMagic)
    throw std::runtime_error("binary matrix: bad magic");
  if (read_pod<std::uint32_t>(in) != kVersion)
    throw std::runtime_error("binary matrix: unsupported version");
  if (read_pod<std::uint32_t>(in) != sizeof(std::int32_t) ||
      read_pod<std::uint32_t>(in) != sizeof(double))
    throw std::runtime_error("binary matrix: element width mismatch");
  const auto rows = read_pod<std::int64_t>(in);
  const auto cols = read_pod<std::int64_t>(in);
  const auto nnz = read_pod<std::int64_t>(in);
  if (rows < 0 || cols < 0 || nnz < 0 || rows > INT32_MAX || cols > INT32_MAX)
    throw std::runtime_error("binary matrix: bad dimensions");
  auto col_ptr = read_array<std::int32_t>(
      in, static_cast<std::size_t>(cols) + 1);
  auto row_idx = read_array<std::int32_t>(in, static_cast<std::size_t>(nnz));
  auto values = read_array<double>(in, static_cast<std::size_t>(nnz));
  if (col_ptr.back() != nnz)
    throw std::runtime_error("binary matrix: col_ptr/nnz mismatch");
  CscMatrix<std::int32_t, double> m(
      static_cast<std::int32_t>(rows), static_cast<std::int32_t>(cols),
      std::move(col_ptr), std::move(row_idx), std::move(values));
  if (const auto check = validate(m, /*require_sorted=*/false); !check)
    throw std::runtime_error("binary matrix: " + check.reason);
  return m;
}

void write_binary_file(const std::string& path,
                       const CscMatrix<std::int32_t, double>& m) {
  std::ofstream out(path, std::ios::binary);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  write_binary(out, m);
}

CscMatrix<std::int32_t, double> read_binary_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_binary(in);
}

}  // namespace spkadd::io
