// Matrix Market (.mtx) reader/writer.
//
// The paper's real-world inputs (Eukarya / Isolates / Metaclust50 protein
// similarity networks, SuiteSparse matrices) are distributed as Matrix
// Market files; this module lets users run the benches on those files.
// Supported: `matrix coordinate {real|integer|pattern} {general|symmetric|
// skew-symmetric}`. Pattern entries get value 1. Symmetric storage is
// expanded to full storage on read (off-diagonals mirrored).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "matrix/coo.hpp"
#include "matrix/csc.hpp"

namespace spkadd::io {

/// Header fields of a Matrix Market file.
struct MmHeader {
  std::int64_t rows = 0;
  std::int64_t cols = 0;
  /// Entries stored in the file (before symmetry expansion).
  std::int64_t stored_entries = 0;
  bool pattern = false;
  bool symmetric = false;
  bool skew = false;
};

/// Parse only the banner + size line (cheap metadata probe).
MmHeader read_mm_header(std::istream& in);

/// Read a full file into COO (duplicates summed, triples (col,row)-sorted).
CooMatrix<std::int32_t, double> read_mm_coo(std::istream& in);
CooMatrix<std::int32_t, double> read_mm_coo_file(const std::string& path);

/// Read straight into canonical sorted CSC.
CscMatrix<std::int32_t, double> read_mm_csc_file(const std::string& path);

/// Write CSC as `matrix coordinate real general` (1-based, column-major
/// entry order). Round-trips with the reader.
void write_mm(std::ostream& out, const CscMatrix<std::int32_t, double>& m);
void write_mm_file(const std::string& path,
                   const CscMatrix<std::int32_t, double>& m);

}  // namespace spkadd::io
