#include "io/matrix_market.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace spkadd::io {
namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return s;
}

/// Read the next non-comment, non-blank line; false at EOF.
bool next_data_line(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    std::size_t i = 0;
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i])))
      ++i;
    if (i == line.size() || line[i] == '%') continue;
    return true;
  }
  return false;
}

struct Banner {
  bool pattern = false;
  bool symmetric = false;
  bool skew = false;
};

Banner parse_banner(std::istream& in) {
  std::string line;
  if (!std::getline(in, line) || line.rfind("%%MatrixMarket", 0) != 0)
    throw std::runtime_error("MatrixMarket: missing %%MatrixMarket banner");
  std::istringstream ss(line);
  std::string tag, object, format, field, symmetry;
  ss >> tag >> object >> format >> field >> symmetry;
  object = lower(object);
  format = lower(format);
  field = lower(field);
  symmetry = lower(symmetry);
  if (object != "matrix")
    throw std::runtime_error("MatrixMarket: unsupported object '" + object +
                             "'");
  if (format != "coordinate")
    throw std::runtime_error("MatrixMarket: only coordinate format supported");
  Banner b;
  if (field == "pattern") {
    b.pattern = true;
  } else if (field != "real" && field != "integer" && field != "double") {
    throw std::runtime_error("MatrixMarket: unsupported field '" + field + "'");
  }
  if (symmetry == "symmetric") {
    b.symmetric = true;
  } else if (symmetry == "skew-symmetric") {
    b.symmetric = true;
    b.skew = true;
  } else if (symmetry != "general") {
    throw std::runtime_error("MatrixMarket: unsupported symmetry '" +
                             symmetry + "'");
  }
  return b;
}

}  // namespace

MmHeader read_mm_header(std::istream& in) {
  const Banner b = parse_banner(in);
  std::string line;
  if (!next_data_line(in, line))
    throw std::runtime_error("MatrixMarket: missing size line");
  MmHeader h;
  std::istringstream ss(line);
  if (!(ss >> h.rows >> h.cols >> h.stored_entries))
    throw std::runtime_error("MatrixMarket: malformed size line");
  h.pattern = b.pattern;
  h.symmetric = b.symmetric;
  h.skew = b.skew;
  return h;
}

CooMatrix<std::int32_t, double> read_mm_coo(std::istream& in) {
  const MmHeader h = read_mm_header(in);
  if (h.rows > INT32_MAX || h.cols > INT32_MAX)
    throw std::runtime_error("MatrixMarket: dimensions exceed int32");
  CooMatrix<std::int32_t, double> m(static_cast<std::int32_t>(h.rows),
                                    static_cast<std::int32_t>(h.cols));
  m.reserve(static_cast<std::size_t>(h.stored_entries) * (h.symmetric ? 2 : 1));
  std::string line;
  for (std::int64_t e = 0; e < h.stored_entries; ++e) {
    if (!next_data_line(in, line))
      throw std::runtime_error("MatrixMarket: truncated entry list at entry " +
                               std::to_string(e));
    std::istringstream ss(line);
    std::int64_t r = 0, c = 0;
    double v = 1.0;
    if (!(ss >> r >> c)) throw std::runtime_error("MatrixMarket: bad entry");
    if (!h.pattern && !(ss >> v))
      throw std::runtime_error("MatrixMarket: missing value at entry " +
                               std::to_string(e));
    if (r < 1 || r > h.rows || c < 1 || c > h.cols)
      throw std::runtime_error("MatrixMarket: 1-based index out of range");
    const auto ri = static_cast<std::int32_t>(r - 1);
    const auto ci = static_cast<std::int32_t>(c - 1);
    m.push(ri, ci, v);
    if (h.symmetric && ri != ci) m.push(ci, ri, h.skew ? -v : v);
  }
  m.compress();
  return m;
}

CooMatrix<std::int32_t, double> read_mm_coo_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  return read_mm_coo(in);
}

CscMatrix<std::int32_t, double> read_mm_csc_file(const std::string& path) {
  return read_mm_coo_file(path).to_csc();
}

void write_mm(std::ostream& out, const CscMatrix<std::int32_t, double>& m) {
  out << "%%MatrixMarket matrix coordinate real general\n";
  out << "% written by spkadd\n";
  out << m.rows() << ' ' << m.cols() << ' ' << m.nnz() << '\n';
  out.precision(17);
  for (std::int32_t j = 0; j < m.cols(); ++j) {
    const auto col = m.column(j);
    for (std::size_t i = 0; i < col.nnz(); ++i)
      out << (col.rows[i] + 1) << ' ' << (j + 1) << ' ' << col.vals[i] << '\n';
  }
}

void write_mm_file(const std::string& path,
                   const CscMatrix<std::int32_t, double>& m) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  write_mm(out, m);
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace spkadd::io
