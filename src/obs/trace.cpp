#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <map>
#include <sstream>
#include <utility>

#include "util/json.hpp"

namespace spkadd::obs {

const char* stage_name(Stage stage) {
  switch (stage) {
    case Stage::kWireDecode:
      return "wire_decode";
    case Stage::kBurstEnqueue:
      return "burst_enqueue";
    case Stage::kQueueWait:
      return "queue_wait";
    case Stage::kShardFold:
      return "shard_fold";
    case Stage::kSnapshot:
      return "snapshot";
    default:
      return "other";
  }
}

Tracer& Tracer::global() {
  static Tracer tracer;
  return tracer;
}

std::uint64_t Tracer::now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

OpTrace Tracer::begin_op() {
  if (!enabled()) return {};
  OpTrace op;
  op.op_id = next_op_id_.fetch_add(1, std::memory_order_relaxed);
  op.begin_ns = now_ns();
  return op;
}

Tracer::Ring& Tracer::local_ring() {
  // Same pattern as AggService's burst buffers: a thread_local cache of
  // weak_ptrs keyed by owner, so one thread serving several Tracer
  // instances (tests) keeps them apart, and a destroyed Tracer's rings
  // die with it instead of dangling in the cache.
  static thread_local std::map<const Tracer*, std::weak_ptr<Ring>> cache;
  auto& slot = cache[this];
  if (auto ring = slot.lock()) return *ring;
  auto ring = std::make_shared<Ring>(config_.ring_capacity);
  slot = ring;
  std::lock_guard<std::mutex> lock(rings_mutex_);
  rings_.push_back(ring);
  return *rings_.back();
}

void Tracer::push_span(Span span) {
  Ring& ring = local_ring();
  std::lock_guard<std::mutex> lock(ring.mutex);
  ring.spans[ring.next] = std::move(span);
  ring.next = (ring.next + 1) % ring.spans.size();
  ++ring.written;
}

void Tracer::record(OpTrace& op, Stage stage, std::uint64_t start_ns,
                    std::string detail) {
  if (!op.active()) return;
  Span span;
  span.op_id = op.op_id;
  span.stage = stage;
  span.start_ns = start_ns;
  span.duration_ns = now_ns() - start_ns;
  span.detail = std::move(detail);
  op.spans.push_back(span);
  push_span(std::move(span));
}

void Tracer::record_span(Stage stage, std::uint64_t start_ns,
                         std::string detail) {
  if (!enabled()) return;
  Span span;
  span.stage = stage;
  span.start_ns = start_ns;
  span.duration_ns = now_ns() - start_ns;
  span.detail = std::move(detail);
  push_span(std::move(span));
}

void Tracer::finish_op(OpTrace& op) {
  if (!op.active()) return;
  const std::uint64_t total = now_ns() - op.begin_ns;
  if (total >= config_.slow_threshold_ns) {
    SlowOp slow;
    slow.op_id = op.op_id;
    slow.total_ns = total;
    slow.spans = std::move(op.spans);
    std::lock_guard<std::mutex> lock(slow_mutex_);
    slow_ops_.push_back(std::move(slow));
    while (slow_ops_.size() > config_.slow_log_capacity)
      slow_ops_.pop_front();
  }
  op = OpTrace{};
}

std::vector<Span> Tracer::recent() const {
  std::vector<std::shared_ptr<Ring>> rings;
  {
    std::lock_guard<std::mutex> lock(rings_mutex_);
    rings = rings_;
  }
  std::vector<Span> out;
  for (const auto& ring : rings) {
    std::lock_guard<std::mutex> lock(ring->mutex);
    const std::size_t cap = ring->spans.size();
    const std::size_t n =
        ring->written < cap ? static_cast<std::size_t>(ring->written) : cap;
    // Oldest-first within the ring: start at `next` once wrapped.
    const std::size_t start = ring->written < cap ? 0 : ring->next;
    for (std::size_t i = 0; i < n; ++i)
      out.push_back(ring->spans[(start + i) % cap]);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const Span& a, const Span& b) {
                     return a.start_ns < b.start_ns;
                   });
  return out;
}

std::vector<SlowOp> Tracer::slow_ops() const {
  std::lock_guard<std::mutex> lock(slow_mutex_);
  return {slow_ops_.begin(), slow_ops_.end()};
}

void Tracer::clear() {
  {
    std::lock_guard<std::mutex> lock(rings_mutex_);
    for (const auto& ring : rings_) {
      std::lock_guard<std::mutex> ring_lock(ring->mutex);
      ring->next = 0;
      ring->written = 0;
    }
  }
  std::lock_guard<std::mutex> lock(slow_mutex_);
  slow_ops_.clear();
}

namespace {

void span_json(std::ostringstream& out, const Span& s) {
  out << "{\"op\":" << s.op_id << ",\"stage\":\"" << stage_name(s.stage)
      << "\",\"start_ns\":" << s.start_ns
      << ",\"duration_ns\":" << s.duration_ns << ",\"detail\":\""
      << util::json_escape(s.detail) << "\"}";
}

}  // namespace

std::string Tracer::dump_json() const {
  std::ostringstream out;
  out << "{\"spans\":[";
  bool first = true;
  for (const Span& s : recent()) {
    if (!first) out << ',';
    first = false;
    span_json(out, s);
  }
  out << "],\"slow_ops\":[";
  first = true;
  for (const SlowOp& op : slow_ops()) {
    if (!first) out << ',';
    first = false;
    out << "{\"op\":" << op.op_id << ",\"total_ns\":" << op.total_ns
        << ",\"spans\":[";
    bool sfirst = true;
    for (const Span& s : op.spans) {
      if (!sfirst) out << ',';
      sfirst = false;
      span_json(out, s);
    }
    out << "]}";
  }
  out << "]}";
  return out.str();
}

}  // namespace spkadd::obs
