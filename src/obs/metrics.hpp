// Process-wide metrics registry: counters, gauges, and log-scale
// histograms with label support, rendered as Prometheus text exposition
// or JSON on demand.
//
// Design: instruments are created (or looked up) once under the
// registry mutex and returned as stable references — creation happens
// on setup paths only. Hot paths then touch pre-resolved instruments:
// Counter::add is a relaxed atomic add on one of a handful of
// cache-line-padded cells picked by thread-id hash (no lock, no shared
// cache line under multi-producer load), Gauge::set is one relaxed
// store, Histogram::record is LogHistogram::record. Subsystems that
// already keep their own internal atomics (services, the daemon) export
// them at scrape time through collector callbacks instead of
// double-counting: render_*() holds the registry mutex while invoking
// collectors, so a collector may take its subsystem's locks (the
// subsystem's hot paths never take the registry mutex — no lock cycle).
//
// Thread-safety contract: every public member is safe from any thread.
// A CollectorHandle must be destroyed before the subsystem state its
// callback reads; destruction blocks until any in-flight render that
// may be invoking the callback has finished (declare the handle LAST
// member of the owning class).
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/histogram.hpp"

namespace spkadd::obs {

/// One `name{label="value",...}` label set, sorted by label name at
/// construction so equal sets compare equal regardless of call order.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Monotone counter backed by sharded cache-line-padded cells: add() is
/// one relaxed fetch_add on the cell picked by the caller's thread id,
/// value() sums the cells.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    cells_[cell_index()].v.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const {
    std::uint64_t total = 0;
    for (const auto& cell : cells_)
      total += cell.v.load(std::memory_order_relaxed);
    return total;
  }

 private:
  static constexpr std::size_t kCells = 8;
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  static std::size_t cell_index();

  std::array<Cell, kCells> cells_{};
};

/// Last-write-wins gauge (doubles, one relaxed atomic).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<double> v_{0};
};

/// What one histogram tick means, so render can emit base units
/// (Prometheus wants seconds, not nanoseconds).
enum class Unit : std::uint8_t {
  kSeconds,  ///< ticks are nanoseconds; rendered scaled by 1e-9
  kCount,    ///< ticks are dimensionless counts; rendered as-is
};

/// Sink passed to scrape-time collectors: each call emits one sample
/// into the families being rendered. Counter samples take a double so
/// collectors can export fractional cumulative totals (e.g. throttle
/// seconds). histogram() exports a subsystem-owned LogHistogram as a
/// full cumulative family — this is how per-instance histograms (the
/// service latency digest) reach the exposition without the instance
/// sharing registry storage with its siblings.
class CollectorSink {
 public:
  virtual ~CollectorSink() = default;
  virtual void counter(std::string_view name, std::string_view help,
                       Labels labels, double value) = 0;
  virtual void gauge(std::string_view name, std::string_view help,
                     Labels labels, double value) = 0;
  virtual void histogram(std::string_view name, std::string_view help,
                         Labels labels, const LogHistogram& hist,
                         Unit unit) = 0;
};

class MetricsRegistry;

/// RAII registration of a scrape-time collector; removal in the dtor
/// blocks until no render can still be invoking the callback.
class CollectorHandle {
 public:
  CollectorHandle() = default;
  CollectorHandle(CollectorHandle&& other) noexcept;
  CollectorHandle& operator=(CollectorHandle&& other) noexcept;
  CollectorHandle(const CollectorHandle&) = delete;
  CollectorHandle& operator=(const CollectorHandle&) = delete;
  ~CollectorHandle();

 private:
  friend class MetricsRegistry;
  CollectorHandle(MetricsRegistry* registry, std::uint64_t id)
      : registry_(registry), id_(id) {}

  MetricsRegistry* registry_ = nullptr;
  std::uint64_t id_ = 0;
};

class MetricsRegistry {
 public:
  /// Look up or create the counter `name{labels}`. The same name +
  /// label set always returns the same instrument; re-registering a
  /// name as a different type throws std::invalid_argument, as does a
  /// name not matching [a-zA-Z_:][a-zA-Z0-9_:]*.
  Counter& counter(std::string_view name, std::string_view help,
                   Labels labels = {});

  /// Look up or create the gauge `name{labels}` (same contract).
  Gauge& gauge(std::string_view name, std::string_view help,
               Labels labels = {});

  /// Look up or create the histogram `name{labels}` (same contract;
  /// `unit` must match across calls for one name).
  LogHistogram& histogram(std::string_view name, std::string_view help,
                          Labels labels = {}, Unit unit = Unit::kSeconds);

  /// Register a scrape-time collector invoked by every render_*() with
  /// the registry mutex held. Keep the handle alive as long as the
  /// state the callback reads.
  [[nodiscard]] CollectorHandle add_collector(
      std::function<void(CollectorSink&)> fn);

  /// Prometheus text exposition (version 0.0.4): families sorted by
  /// name, # HELP / # TYPE headers, escaped label values, histograms as
  /// cumulative `_bucket{le=...}` + `_sum` + `_count`.
  [[nodiscard]] std::string render_prometheus() const;

  /// The same samples as a JSON document (for the stats-style verbs).
  [[nodiscard]] std::string render_json() const;

 private:
  friend class CollectorHandle;

  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  struct Instrument {
    Kind kind;
    std::string name;
    std::string help;
    Labels labels;
    Unit unit = Unit::kCount;
    // Exactly one is populated, per `kind`; deques keep the addresses
    // stable for the references handed out.
    Counter* counter = nullptr;
    Gauge* gauge = nullptr;
    LogHistogram* histogram = nullptr;
  };

  struct Collector {
    std::uint64_t id;
    std::function<void(CollectorSink&)> fn;
  };

  Instrument& find_or_create(Kind kind, std::string_view name,
                             std::string_view help, Labels labels,
                             Unit unit);
  void remove_collector(std::uint64_t id);

  mutable std::mutex mutex_;
  std::deque<Counter> counters_;
  std::deque<Gauge> gauges_;
  std::deque<LogHistogram> histograms_;
  // Keyed by name + sorted labels; list keeps instrument metadata
  // addresses stable too.
  std::map<std::string, Instrument> instruments_;
  std::list<Collector> collectors_;
  std::uint64_t next_collector_id_ = 1;
};

/// The process-wide registry every subsystem defaults to (configs carry
/// a MetricsRegistry* so tests can isolate, nullptr disables).
MetricsRegistry& default_registry();

/// Escape a Prometheus label value: `\` -> `\\`, `"` -> `\"`,
/// newline -> `\n` (exposition format spec).
[[nodiscard]] std::string prometheus_escape(std::string_view in);

}  // namespace spkadd::obs
