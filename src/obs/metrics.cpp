#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "util/json.hpp"

namespace spkadd::obs {

namespace {

bool valid_metric_name(std::string_view name) {
  if (name.empty()) return false;
  const auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  const auto tail = [&](char c) {
    return head(c) || (c >= '0' && c <= '9');
  };
  if (!head(name.front())) return false;
  return std::all_of(name.begin() + 1, name.end(), tail);
}

void sort_labels(Labels& labels) {
  std::sort(labels.begin(), labels.end());
}

std::string instrument_key(std::string_view name, const Labels& labels) {
  std::string key(name);
  for (const auto& [k, v] : labels) {
    key += '\x01';
    key += k;
    key += '\x02';
    key += v;
  }
  return key;
}

/// `{a="x",b="y"}` — empty label set renders as nothing.
std::string label_block(const Labels& labels) {
  if (labels.empty()) return {};
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += k;
    out += "=\"";
    out += prometheus_escape(v);
    out += '"';
  }
  out += '}';
  return out;
}

std::string format_value(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

const char* kind_name(int kind) {
  switch (kind) {
    case 0:
      return "counter";
    case 1:
      return "gauge";
    default:
      return "histogram";
  }
}

/// One rendered sample: family name + suffix + labels + value.
struct Sample {
  std::string suffix;  ///< "" or "_bucket"/"_sum"/"_count"/...
  Labels labels;
  double value = 0;
};

struct Family {
  std::string help;
  int kind = 0;  ///< mirrors MetricsRegistry::Kind numeric values
  std::vector<Sample> samples;
};

/// Prometheus shape: sparse cumulative `_bucket{le=...}` over occupied
/// buckets plus +Inf, then `_sum` and `_count` (valid exposition — `le`
/// bounds need not be exhaustive).
void emit_histogram_prometheus(Family& fam, const Labels& labels,
                               const LogHistogram& hist, Unit unit) {
  const double scale = unit == Unit::kSeconds ? 1e-9 : 1.0;
  std::uint64_t cum = 0;
  hist.for_each_nonzero_bucket(
      [&](std::uint64_t upper, std::uint64_t count) {
        cum += count;
        Labels with_le = labels;
        with_le.emplace_back(
            "le", format_value(static_cast<double>(upper) * scale));
        fam.samples.push_back(Sample{"_bucket", std::move(with_le),
                                     static_cast<double>(cum)});
      });
  Labels inf = labels;
  inf.emplace_back("le", "+Inf");
  fam.samples.push_back(
      Sample{"_bucket", std::move(inf), static_cast<double>(cum)});
  fam.samples.push_back(
      Sample{"_sum", labels,
             static_cast<double>(hist.sum_ticks()) * scale});
  fam.samples.push_back(
      Sample{"_count", labels, static_cast<double>(cum)});
}

/// JSON shape: the digest, not the buckets — count + sum + quantiles is
/// what the stats-style consumers read.
void emit_histogram_json(Family& fam, const Labels& labels,
                         const LogHistogram& hist, Unit unit) {
  const double scale = unit == Unit::kSeconds ? 1e-9 : 1.0;
  const LatencySummary sum = hist.summary();
  // summary() reports quantiles in seconds (ticks * 1e-9); undo that
  // for dimensionless histograms so JSON readers see tick units.
  const double qscale = unit == Unit::kSeconds ? 1.0 : 1e9;
  fam.samples.push_back(
      Sample{"_count", labels, static_cast<double>(sum.count)});
  fam.samples.push_back(
      Sample{"_sum", labels,
             static_cast<double>(hist.sum_ticks()) * scale});
  fam.samples.push_back(Sample{"_p50", labels, sum.p50 * qscale});
  fam.samples.push_back(Sample{"_p99", labels, sum.p99 * qscale});
  fam.samples.push_back(Sample{"_max", labels, sum.max * qscale});
}

class SampleSink final : public CollectorSink {
 public:
  SampleSink(std::map<std::string, Family>& families, bool prometheus)
      : families_(families), prometheus_(prometheus) {}

  void counter(std::string_view name, std::string_view help, Labels labels,
               double value) override {
    sort_labels(labels);
    family(name, help, 0).samples.push_back(
        Sample{"", std::move(labels), value});
  }

  void gauge(std::string_view name, std::string_view help, Labels labels,
             double value) override {
    sort_labels(labels);
    family(name, help, 1).samples.push_back(
        Sample{"", std::move(labels), value});
  }

  void histogram(std::string_view name, std::string_view help,
                 Labels labels, const LogHistogram& hist,
                 Unit unit) override {
    sort_labels(labels);
    Family& fam = family(name, help, 2);
    if (prometheus_)
      emit_histogram_prometheus(fam, labels, hist, unit);
    else
      emit_histogram_json(fam, labels, hist, unit);
  }

 private:
  Family& family(std::string_view name, std::string_view help, int kind) {
    auto& fam = families_[std::string(name)];
    if (fam.help.empty()) {
      fam.help = std::string(help);
      fam.kind = kind;
    }
    return fam;
  }

  std::map<std::string, Family>& families_;
  const bool prometheus_;
};

}  // namespace

std::size_t Counter::cell_index() {
  // One cell per thread modulo kCells: distinct threads land on
  // distinct cache lines with high probability, and a given thread is
  // stable, so adds never ping-pong a shared line.
  static thread_local const std::size_t idx =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) % kCells;
  return idx;
}

CollectorHandle::CollectorHandle(CollectorHandle&& other) noexcept
    : registry_(other.registry_), id_(other.id_) {
  other.registry_ = nullptr;
}

CollectorHandle& CollectorHandle::operator=(
    CollectorHandle&& other) noexcept {
  if (this != &other) {
    if (registry_ != nullptr) registry_->remove_collector(id_);
    registry_ = other.registry_;
    id_ = other.id_;
    other.registry_ = nullptr;
  }
  return *this;
}

CollectorHandle::~CollectorHandle() {
  if (registry_ != nullptr) registry_->remove_collector(id_);
}

MetricsRegistry::Instrument& MetricsRegistry::find_or_create(
    Kind kind, std::string_view name, std::string_view help, Labels labels,
    Unit unit) {
  if (!valid_metric_name(name))
    throw std::invalid_argument("MetricsRegistry: invalid metric name '" +
                                std::string(name) + "'");
  sort_labels(labels);
  std::lock_guard<std::mutex> lock(mutex_);
  const std::string key = instrument_key(name, labels);
  auto it = instruments_.find(key);
  if (it != instruments_.end()) {
    if (it->second.kind != kind)
      throw std::invalid_argument(
          "MetricsRegistry: metric '" + std::string(name) +
          "' re-registered as a different type");
    return it->second;
  }
  // A metric family must have ONE type: reject a name already used
  // under other labels as a different kind (Prometheus would refuse
  // the exposition).
  for (const auto& [k, inst] : instruments_) {
    if (inst.name == name && inst.kind != kind)
      throw std::invalid_argument(
          "MetricsRegistry: metric '" + std::string(name) +
          "' re-registered as a different type");
  }
  Instrument inst;
  inst.kind = kind;
  inst.name = std::string(name);
  inst.help = std::string(help);
  inst.labels = std::move(labels);
  inst.unit = unit;
  switch (kind) {
    case Kind::kCounter:
      inst.counter = &counters_.emplace_back();
      break;
    case Kind::kGauge:
      inst.gauge = &gauges_.emplace_back();
      break;
    case Kind::kHistogram:
      inst.histogram = &histograms_.emplace_back();
      break;
  }
  return instruments_.emplace(key, std::move(inst)).first->second;
}

Counter& MetricsRegistry::counter(std::string_view name,
                                  std::string_view help, Labels labels) {
  return *find_or_create(Kind::kCounter, name, help, std::move(labels),
                         Unit::kCount)
              .counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, std::string_view help,
                              Labels labels) {
  return *find_or_create(Kind::kGauge, name, help, std::move(labels),
                         Unit::kCount)
              .gauge;
}

LogHistogram& MetricsRegistry::histogram(std::string_view name,
                                         std::string_view help,
                                         Labels labels, Unit unit) {
  auto& inst =
      find_or_create(Kind::kHistogram, name, help, std::move(labels), unit);
  if (inst.unit != unit)
    throw std::invalid_argument("MetricsRegistry: histogram '" +
                                std::string(name) +
                                "' re-registered with a different unit");
  return *inst.histogram;
}

CollectorHandle MetricsRegistry::add_collector(
    std::function<void(CollectorSink&)> fn) {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::uint64_t id = next_collector_id_++;
  collectors_.push_back(Collector{id, std::move(fn)});
  return CollectorHandle(this, id);
}

void MetricsRegistry::remove_collector(std::uint64_t id) {
  // Taking the mutex doubles as the grace period: any render invoking
  // this collector holds the mutex until it finishes.
  std::lock_guard<std::mutex> lock(mutex_);
  collectors_.remove_if([id](const Collector& c) { return c.id == id; });
}

std::string MetricsRegistry::render_prometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, Family> families;
  for (const auto& [key, inst] : instruments_) {
    auto& fam = families[inst.name];
    fam.help = inst.help;
    fam.kind = static_cast<int>(inst.kind);
    switch (inst.kind) {
      case Kind::kCounter:
        fam.samples.push_back(Sample{
            "", inst.labels, static_cast<double>(inst.counter->value())});
        break;
      case Kind::kGauge:
        fam.samples.push_back(
            Sample{"", inst.labels, inst.gauge->value()});
        break;
      case Kind::kHistogram:
        emit_histogram_prometheus(fam, inst.labels, *inst.histogram,
                                  inst.unit);
        break;
    }
  }
  SampleSink sink(families, /*prometheus=*/true);
  for (const auto& collector : collectors_) collector.fn(sink);

  std::ostringstream out;
  for (const auto& [name, fam] : families) {
    out << "# HELP " << name << ' ' << fam.help << '\n';
    out << "# TYPE " << name << ' ' << kind_name(fam.kind) << '\n';
    for (const auto& s : fam.samples) {
      out << name << s.suffix << label_block(s.labels) << ' '
          << format_value(s.value) << '\n';
    }
  }
  return out.str();
}

std::string MetricsRegistry::render_json() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::map<std::string, Family> families;
  for (const auto& [key, inst] : instruments_) {
    auto& fam = families[inst.name];
    fam.help = inst.help;
    fam.kind = static_cast<int>(inst.kind);
    switch (inst.kind) {
      case Kind::kCounter:
        fam.samples.push_back(Sample{
            "", inst.labels, static_cast<double>(inst.counter->value())});
        break;
      case Kind::kGauge:
        fam.samples.push_back(
            Sample{"", inst.labels, inst.gauge->value()});
        break;
      case Kind::kHistogram:
        emit_histogram_json(fam, inst.labels, *inst.histogram, inst.unit);
        break;
    }
  }
  SampleSink sink(families, /*prometheus=*/false);
  for (const auto& collector : collectors_) collector.fn(sink);

  std::ostringstream out;
  out << "{\"metrics\":[";
  bool first = true;
  for (const auto& [name, fam] : families) {
    for (const auto& s : fam.samples) {
      if (!first) out << ',';
      first = false;
      out << "{\"name\":\"" << util::json_escape(name) << s.suffix
          << "\",\"type\":\"" << kind_name(fam.kind) << "\",\"labels\":{";
      bool lfirst = true;
      for (const auto& [k, v] : s.labels) {
        if (!lfirst) out << ',';
        lfirst = false;
        out << '"' << util::json_escape(k) << "\":\""
            << util::json_escape(v) << '"';
      }
      out << "},\"value\":" << format_value(s.value) << '}';
    }
  }
  out << "]}";
  return out.str();
}

MetricsRegistry& default_registry() {
  static MetricsRegistry registry;
  return registry;
}

std::string prometheus_escape(std::string_view in) {
  std::string out;
  out.reserve(in.size());
  for (const char c : in) {
    switch (c) {
      case '\\':
        out += "\\\\";
        break;
      case '"':
        out += "\\\"";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace spkadd::obs
