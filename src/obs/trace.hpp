// Span tracing for the submit lifecycle: every traced operation carries
// an OpTrace through the pipeline (wire decode -> burst enqueue ->
// queue wait -> shard fold; snapshot assembly is its own op), each
// completed span is also appended to the recording thread's ring
// buffer, and finish_op() captures the FULL span chain of any op slower
// than the configured threshold into a bounded slow-op log. Disabled
// (the default) the begin_op fast path is one relaxed atomic load.
//
// Thread-safety contract: every Tracer member is safe from any thread.
// An OpTrace itself is NOT synchronized — it travels with its operation
// and must be touched by one thread at a time (which the queue hand-off
// already guarantees). Rings are per-thread, each guarded by its own
// mutex: writers only ever touch their own ring, so the lock is
// uncontended except against a concurrent dump.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace spkadd::obs {

/// Pipeline stage a span measures.
enum class Stage : std::uint8_t {
  kWireDecode,    ///< SPKN frame decode on the daemon poll loop
  kBurstEnqueue,  ///< submit_burst staging + queue push
  kQueueWait,     ///< enqueue -> worker pop
  kShardFold,     ///< fold into the tenant window / shard accumulator
  kSnapshot,      ///< snapshot assembly
  kOther,
};

[[nodiscard]] const char* stage_name(Stage stage);

/// One timed stage of one operation.
struct Span {
  std::uint64_t op_id = 0;
  Stage stage = Stage::kOther;
  std::uint64_t start_ns = 0;     ///< steady-clock, see Tracer::now_ns
  std::uint64_t duration_ns = 0;
  std::string detail;  ///< free-form ("tenant=a nnz=120"), may be empty
};

/// The trace context one operation carries through the pipeline.
/// Default-constructed (op_id 0) it is inactive and every Tracer call
/// on it is a no-op, so untraced paths pay nothing but the branch.
struct OpTrace {
  std::uint64_t op_id = 0;
  std::uint64_t begin_ns = 0;
  std::vector<Span> spans;

  [[nodiscard]] bool active() const { return op_id != 0; }
};

/// A slow operation's complete captured span chain.
struct SlowOp {
  std::uint64_t op_id = 0;
  std::uint64_t total_ns = 0;
  std::vector<Span> spans;
};

class Tracer {
 public:
  struct Config {
    bool enabled = false;
    /// finish_op captures the op's full span chain when its lifetime
    /// (begin_op -> finish_op) exceeds this.
    std::uint64_t slow_threshold_ns = 10'000'000;  // 10 ms
    std::size_t ring_capacity = 1024;   ///< spans kept per thread
    std::size_t slow_log_capacity = 64; ///< slow ops kept (oldest out)
  };

  Tracer() = default;
  explicit Tracer(Config config) : config_(config) {
    enabled_.store(config.enabled, std::memory_order_relaxed);
  }

  /// The process-wide tracer (disabled until set_enabled(true)).
  static Tracer& global();

  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  /// Start tracing one operation; inactive (op_id 0) when disabled.
  [[nodiscard]] OpTrace begin_op();

  /// Close a span [start_ns, now) on `op` and this thread's ring.
  /// No-op when `op` is inactive.
  void record(OpTrace& op, Stage stage, std::uint64_t start_ns,
              std::string detail = {});

  /// Ring-only span with no operation context (e.g. snapshot assembly
  /// measured where no OpTrace travels).
  void record_span(Stage stage, std::uint64_t start_ns,
                   std::string detail = {});

  /// Finish `op`: if its lifetime exceeded the slow threshold, capture
  /// the full span chain into the slow-op log. Leaves `op` inactive.
  void finish_op(OpTrace& op);

  /// Most recent spans across all thread rings, oldest first.
  [[nodiscard]] std::vector<Span> recent() const;

  /// Captured slow operations, oldest first.
  [[nodiscard]] std::vector<SlowOp> slow_ops() const;

  /// Drop all buffered spans and slow ops.
  void clear();

  /// On-demand dump of rings + slow-op log as one JSON document.
  [[nodiscard]] std::string dump_json() const;

  /// Monotonic nanoseconds (steady_clock) — the time base every span
  /// start must come from.
  [[nodiscard]] static std::uint64_t now_ns();

 private:
  /// Fixed-size per-thread span ring; the owning thread appends, dumps
  /// read under the ring's own mutex (uncontended in steady state).
  struct Ring {
    explicit Ring(std::size_t capacity)
        : spans(capacity != 0 ? capacity : 1) {}
    mutable std::mutex mutex;
    std::vector<Span> spans;
    std::size_t next = 0;       ///< slot the next span lands in
    std::uint64_t written = 0;  ///< total spans ever appended
  };

  Ring& local_ring();
  void push_span(Span span);

  Config config_{};
  std::atomic<bool> enabled_{false};
  std::atomic<std::uint64_t> next_op_id_{1};

  mutable std::mutex rings_mutex_;  ///< guards the ring list only
  std::vector<std::shared_ptr<Ring>> rings_;

  mutable std::mutex slow_mutex_;
  std::deque<SlowOp> slow_ops_;
};

}  // namespace spkadd::obs
