// Lock-free log-scale histogram — the one histogram implementation in
// the tree. service::LatencyHistogram (service/service_stats.hpp) is an
// alias of this type, and obs::MetricsRegistry exports registered
// instances as full cumulative Prometheus histograms through the public
// bucket-iteration API below.
//
// Thread-safety contract: record() is lock-free (relaxed atomics) and
// safe from any thread concurrently with summary() /
// for_each_nonzero_bucket(); readers see a consistent-enough sample
// (counts are monotone). Counters here are observability only — they
// never feed fold paths, so they cannot affect any bit-identity
// guarantee.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>

namespace spkadd::obs {

/// Percentile digest of a recorded population, in seconds (recorded
/// ticks are nanoseconds on every latency path).
struct LatencySummary {
  std::uint64_t count = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double max = 0;
};

/// Fixed-footprint log-scale histogram: 8 sub-buckets per power of two
/// of the recorded tick value, giving <= 12.5% relative quantile error
/// with no allocation and relaxed-atomic recording (recorders never
/// contend on a lock).
class LogHistogram {
 public:
  static constexpr std::size_t kSub = 8;  ///< sub-buckets per octave
  static constexpr std::size_t kBuckets = 62 * kSub;

  /// Record one observation (latency paths record nanoseconds; size
  /// distributions record plain counts).
  void record(std::uint64_t ticks) {
    const std::size_t idx = bucket_of(ticks);
    buckets_[idx].fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(ticks, std::memory_order_relaxed);
    // Keep the true maximum exactly (quantiles are bucket-quantized).
    std::uint64_t prev = max_ticks_.load(std::memory_order_relaxed);
    while (prev < ticks && !max_ticks_.compare_exchange_weak(
                               prev, ticks, std::memory_order_relaxed)) {
    }
  }

  /// p50/p95/p99 digest of everything recorded so far, interpreting
  /// ticks as nanoseconds. Safe to call concurrently with record().
  [[nodiscard]] LatencySummary summary() const;

  /// Total observations recorded so far.
  [[nodiscard]] std::uint64_t total_count() const;

  /// Sum of every recorded tick value (the Prometheus `_sum` series).
  [[nodiscard]] std::uint64_t sum_ticks() const {
    return sum_.load(std::memory_order_relaxed);
  }

  /// Largest tick value ever recorded (exact, not bucket-quantized).
  [[nodiscard]] std::uint64_t max_ticks() const {
    return max_ticks_.load(std::memory_order_relaxed);
  }

  /// Visit every non-empty bucket in ascending bound order as
  /// fn(upper_bound_ticks, count). Bounds are inclusive per-bucket
  /// upper edges; cumulating the counts in visit order yields the
  /// Prometheus `le` series. Safe concurrently with record().
  template <typename Fn>
  void for_each_nonzero_bucket(Fn&& fn) const {
    for (std::size_t i = 0; i < kBuckets; ++i) {
      const std::uint64_t c = buckets_[i].load(std::memory_order_relaxed);
      if (c != 0) fn(bucket_upper(i), c);
    }
  }

  /// Inclusive upper bound of bucket `idx` in ticks (public so tests
  /// and exporters can reason about the bucket layout).
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t idx);

 private:
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t ticks);

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> max_ticks_{0};
  std::atomic<std::uint64_t> sum_{0};
};

}  // namespace spkadd::obs
