#include "obs/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

namespace spkadd::obs {

std::size_t LogHistogram::bucket_of(std::uint64_t ticks) {
  if (ticks < kSub) return static_cast<std::size_t>(ticks);
  // Octave = position of the most significant bit; the next 3 bits pick
  // the sub-bucket, so bucket width is 1/8 of the octave everywhere.
  const auto octave = static_cast<std::size_t>(std::bit_width(ticks)) - 1;
  const std::size_t sub =
      static_cast<std::size_t>(ticks >> (octave - 3)) & (kSub - 1);
  const std::size_t idx = (octave - 2) * kSub + sub;
  return idx < kBuckets ? idx : kBuckets - 1;
}

std::uint64_t LogHistogram::bucket_upper(std::size_t idx) {
  if (idx < kSub) return idx;
  const std::size_t octave = idx / kSub + 2;
  const std::uint64_t sub = idx % kSub;
  return ((kSub + sub + 1) << (octave - 3)) - 1;
}

std::uint64_t LogHistogram::total_count() const {
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBuckets; ++i)
    total += buckets_[i].load(std::memory_order_relaxed);
  return total;
}

LatencySummary LogHistogram::summary() const {
  std::array<std::uint64_t, kBuckets> counts;
  std::uint64_t total = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  LatencySummary out;
  out.count = total;
  out.max =
      static_cast<double>(max_ticks_.load(std::memory_order_relaxed)) *
      1e-9;
  if (total == 0) return out;

  const auto quantile = [&](double q) {
    const auto rank = static_cast<std::uint64_t>(
        std::ceil(q * static_cast<double>(total)));
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < kBuckets; ++i) {
      cum += counts[i];
      // Clamp to the exactly-tracked maximum: the top occupied bucket's
      // upper bound can exceed every recorded value, and a reported p99
      // above the true max is a lie operators will chase.
      if (cum >= rank)
        return std::min(static_cast<double>(bucket_upper(i)) * 1e-9,
                        out.max);
    }
    return out.max;
  };
  out.p50 = quantile(0.50);
  out.p95 = quantile(0.95);
  out.p99 = quantile(0.99);
  return out;
}

}  // namespace spkadd::obs
