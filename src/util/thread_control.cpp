#include "util/thread_control.hpp"

#include "util/omp_compat.hpp"

#include <algorithm>

namespace spkadd::util {

int current_max_threads() { return omp_get_max_threads(); }

void set_num_threads(int n) { omp_set_num_threads(std::max(1, n)); }

ThreadCountGuard::ThreadCountGuard(int n) : previous_(omp_get_max_threads()) {
  set_num_threads(n);
}

ThreadCountGuard::~ThreadCountGuard() { set_num_threads(previous_); }

}  // namespace spkadd::util
