#include "util/thread_control.hpp"

#include "util/omp_compat.hpp"

#include <algorithm>
#include <thread>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace spkadd::util {

int current_max_threads() { return omp_get_max_threads(); }

void set_num_threads(int n) { omp_set_num_threads(std::max(1, n)); }

std::size_t online_cpu_count() {
  const unsigned n = std::thread::hardware_concurrency();
  return n != 0 ? static_cast<std::size_t>(n) : 1;
}

bool pin_current_thread_to_cpu(std::size_t cpu) {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % online_cpu_count(), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

ThreadCountGuard::ThreadCountGuard(int n) : previous_(omp_get_max_threads()) {
  set_num_threads(n);
}

ThreadCountGuard::~ThreadCountGuard() { set_num_threads(previous_); }

}  // namespace spkadd::util
