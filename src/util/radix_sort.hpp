// LSD radix sort for the (row, value) pair emission of the hash kernels.
//
// The hash SpKAdd emits each output column in table order and then sorts by
// row index (Alg. 5 line 15). Comparison sorting dominates the numeric phase
// for dense columns; an 8-bit LSD radix sort over the 32/64-bit row keys is
// 4-8x faster and skips passes whose byte is constant (typical for the high
// bytes of row indices). Keys must be non-negative (row indices are).
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

namespace spkadd::util {

/// Reusable scratch for radix_sort_pairs (per-thread, grown on demand).
template <class K, class V>
struct RadixScratch {
  std::vector<K> keys;
  std::vector<V> vals;
};

/// Sort the parallel arrays (keys[0..n), vals[0..n)) ascending by key.
/// Stable; keys must be non-negative. Falls back to std::sort below a small
/// threshold where radix setup does not pay.
template <class K, class V>
void radix_sort_pairs(K* keys, V* vals, std::size_t n,
                      RadixScratch<K, V>& scratch) {
  static_assert(std::is_integral_v<K>);
  if (n < 2) return;
  constexpr std::size_t kBytes = sizeof(K);
  constexpr std::size_t kSmall = 96;
  if (n < kSmall) {
    // Insertion sort: cheapest for tiny runs and keeps pairs in lockstep.
    for (std::size_t i = 1; i < n; ++i) {
      const K k = keys[i];
      const V v = vals[i];
      std::size_t j = i;
      while (j > 0 && keys[j - 1] > k) {
        keys[j] = keys[j - 1];
        vals[j] = vals[j - 1];
        --j;
      }
      keys[j] = k;
      vals[j] = v;
    }
    return;
  }

  if (scratch.keys.size() < n) {
    scratch.keys.resize(n);
    scratch.vals.resize(n);
  }

  // One pass computes every byte histogram.
  std::array<std::array<std::uint32_t, 256>, kBytes> hist{};
  for (std::size_t i = 0; i < n; ++i) {
    auto u = static_cast<std::make_unsigned_t<K>>(keys[i]);
    for (std::size_t b = 0; b < kBytes; ++b)
      ++hist[b][(u >> (8 * b)) & 0xff];
  }

  K* src_k = keys;
  V* src_v = vals;
  K* dst_k = scratch.keys.data();
  V* dst_v = scratch.vals.data();
  for (std::size_t b = 0; b < kBytes; ++b) {
    // Skip passes where every key shares this byte.
    const auto first_byte =
        (static_cast<std::make_unsigned_t<K>>(src_k[0]) >> (8 * b)) & 0xff;
    if (hist[b][first_byte] == n) continue;
    std::array<std::uint32_t, 256> offset;
    std::uint32_t run = 0;
    for (int d = 0; d < 256; ++d) {
      offset[static_cast<std::size_t>(d)] = run;
      run += hist[b][static_cast<std::size_t>(d)];
    }
    for (std::size_t i = 0; i < n; ++i) {
      const auto digit =
          (static_cast<std::make_unsigned_t<K>>(src_k[i]) >> (8 * b)) & 0xff;
      const std::uint32_t pos = offset[digit]++;
      dst_k[pos] = src_k[i];
      dst_v[pos] = src_v[i];
    }
    std::swap(src_k, dst_k);
    std::swap(src_v, dst_v);
  }
  if (src_k != keys) {
    std::memcpy(keys, src_k, n * sizeof(K));
    std::memcpy(vals, src_v, n * sizeof(V));
  }
}

/// Key-only variant (the SPA kernel sorts its touched-row list and reads
/// values from the dense accumulator afterwards).
template <class K>
void radix_sort_keys(K* keys, std::size_t n, std::vector<K>& scratch) {
  static_assert(std::is_integral_v<K>);
  if (n < 2) return;
  constexpr std::size_t kSmall = 128;
  if (n < kSmall) {
    std::sort(keys, keys + n);
    return;
  }
  constexpr std::size_t kBytes = sizeof(K);
  if (scratch.size() < n) scratch.resize(n);
  std::array<std::array<std::uint32_t, 256>, kBytes> hist{};
  for (std::size_t i = 0; i < n; ++i) {
    auto u = static_cast<std::make_unsigned_t<K>>(keys[i]);
    for (std::size_t b = 0; b < kBytes; ++b)
      ++hist[b][(u >> (8 * b)) & 0xff];
  }
  K* src = keys;
  K* dst = scratch.data();
  for (std::size_t b = 0; b < kBytes; ++b) {
    const auto first_byte =
        (static_cast<std::make_unsigned_t<K>>(src[0]) >> (8 * b)) & 0xff;
    if (hist[b][first_byte] == n) continue;
    std::array<std::uint32_t, 256> offset;
    std::uint32_t run = 0;
    for (int d = 0; d < 256; ++d) {
      offset[static_cast<std::size_t>(d)] = run;
      run += hist[b][static_cast<std::size_t>(d)];
    }
    for (std::size_t i = 0; i < n; ++i) {
      const auto digit =
          (static_cast<std::make_unsigned_t<K>>(src[i]) >> (8 * b)) & 0xff;
      dst[offset[digit]++] = src[i];
    }
    std::swap(src, dst);
  }
  if (src != keys) std::memcpy(keys, src, n * sizeof(K));
}

}  // namespace spkadd::util
