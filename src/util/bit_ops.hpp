// Small bit utilities shared by the hash kernels (power-of-two table sizing,
// multiplicative-mask hashing) and the cache simulator (log2 of line size).
#pragma once

#include <bit>
#include <cstdint>

namespace spkadd::util {

/// Smallest power of two strictly greater than `x` (the paper sizes hash
/// tables as "a power of two and greater than nnz").
[[nodiscard]] constexpr std::uint64_t next_pow2_greater(std::uint64_t x) {
  return std::bit_ceil(x + 1);
}

/// Smallest power of two >= x, with next_pow2(0) == 1.
[[nodiscard]] constexpr std::uint64_t next_pow2(std::uint64_t x) {
  return std::bit_ceil(x == 0 ? 1 : x);
}

[[nodiscard]] constexpr bool is_pow2(std::uint64_t x) {
  return x != 0 && (x & (x - 1)) == 0;
}

/// floor(log2(x)) for x > 0.
[[nodiscard]] constexpr unsigned log2_floor(std::uint64_t x) {
  return 63u - static_cast<unsigned>(std::countl_zero(x));
}

/// Integer ceil division.
template <class T>
[[nodiscard]] constexpr T ceil_div(T a, T b) {
  return (a + b - 1) / b;
}

}  // namespace spkadd::util
