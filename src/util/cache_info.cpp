#include "util/cache_info.hpp"

#include <atomic>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

namespace spkadd::util {
namespace {

std::atomic<std::size_t> g_llc_override{0};

/// Read a whole small sysfs file into a string; empty on failure.
std::string slurp(const std::filesystem::path& p) {
  std::ifstream in(p);
  if (!in) return {};
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Parse sizes like "32K", "1024K", "32M", "32768" (sysfs `size` format).
std::size_t parse_size(const std::string& s) {
  if (s.empty()) return 0;
  std::size_t value = 0;
  std::size_t i = 0;
  while (i < s.size() && s[i] >= '0' && s[i] <= '9') {
    value = value * 10 + static_cast<std::size_t>(s[i] - '0');
    ++i;
  }
  if (i < s.size()) {
    char unit = s[i];
    if (unit == 'K' || unit == 'k') value <<= 10;
    else if (unit == 'M' || unit == 'm') value <<= 20;
    else if (unit == 'G' || unit == 'g') value <<= 30;
  }
  return value;
}

int parse_int(const std::string& s) {
  try {
    return std::stoi(s);
  } catch (...) {
    return 0;
  }
}

}  // namespace

std::string MachineInfo::summary() const {
  std::ostringstream ss;
  ss << logical_cpus << " logical CPUs, L1D=" << (l1.bytes >> 10) << "KB";
  if (l2.bytes > 0) ss << ", L2=" << (l2.bytes >> 10) << "KB";
  ss << ", LLC=" << (llc.bytes >> 20) << "MB (" << llc.ways
     << "-way, " << llc.line_bytes << "B lines)";
  if (llc_override() != 0)
    ss << " [LLC override: " << (llc_override() >> 20) << "MB]";
  return ss.str();
}

MachineInfo detect_machine() {
  MachineInfo info;
  info.logical_cpus =
      static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));

  // Paper's Skylake defaults; replaced below when sysfs is available.
  info.l1 = CacheLevel{1, 32u << 10, 64, 8, false};
  info.l2 = CacheLevel{2, 1u << 20, 64, 16, false};
  info.llc = CacheLevel{3, 32u << 20, 64, 11, true};

  namespace fs = std::filesystem;
  const fs::path base = "/sys/devices/system/cpu/cpu0/cache";
  std::error_code ec;
  if (!fs::exists(base, ec)) return info;

  for (const auto& entry : fs::directory_iterator(base, ec)) {
    const fs::path dir = entry.path();
    if (dir.filename().string().rfind("index", 0) != 0) continue;
    const std::string type = slurp(dir / "type");
    if (type.rfind("Instruction", 0) == 0) continue;  // skip L1I
    CacheLevel lvl;
    lvl.level = parse_int(slurp(dir / "level"));
    lvl.bytes = parse_size(slurp(dir / "size"));
    std::size_t line = parse_size(slurp(dir / "coherency_line_size"));
    if (line != 0) lvl.line_bytes = line;
    int ways = parse_int(slurp(dir / "ways_of_associativity"));
    if (ways != 0) lvl.ways = ways;
    if (lvl.bytes == 0) continue;
    if (lvl.level == 1) info.l1 = lvl;
    else if (lvl.level == 2) info.l2 = lvl;
    else if (lvl.level >= 3) {
      lvl.shared = true;
      info.llc = lvl;
    }
  }
  // Machines without an L3 (some VMs) report only L2: treat it as the LLC.
  if (info.llc.bytes == 0 || info.llc.level == 0) {
    info.llc = info.l2;
    info.llc.shared = true;
  }
  return info;
}

const MachineInfo& cached_machine() {
  static const MachineInfo info = detect_machine();
  return info;
}

void set_llc_override(std::size_t bytes) { g_llc_override.store(bytes); }

std::size_t llc_override() { return g_llc_override.load(); }

std::size_t effective_llc_bytes() {
  const std::size_t o = llc_override();
  if (o != 0) return o;
  return cached_machine().llc.bytes;
}

}  // namespace spkadd::util
