// Hardware cache-topology detection.
//
// The sliding-hash algorithm (paper Alg. 7/8) sizes its hash tables from the
// last-level-cache capacity M and the thread count T: each table is capped at
// M/(b*T) entries. This module discovers L1/L2/LLC sizes from
// /sys/devices/system/cpu at run time (Linux), with conservative fallbacks,
// and allows explicit overrides so benches can model other machines (e.g.
// the paper's 8MB-LLC AMD EPYC from a 32MB-LLC host).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace spkadd::util {

/// One cache level as reported by the OS.
struct CacheLevel {
  int level = 0;             ///< 1, 2, 3...
  std::size_t bytes = 0;     ///< total capacity of one cache of this level
  std::size_t line_bytes = 64;
  int ways = 8;              ///< associativity
  bool shared = false;       ///< shared among cores (true for typical LLC)
};

/// Snapshot of the machine relevant to SpKAdd: cores, cache hierarchy.
/// Mirrors the columns of the paper's Table II.
struct MachineInfo {
  int logical_cpus = 1;
  CacheLevel l1;   ///< per-core L1D
  CacheLevel l2;   ///< per-core L2 (bytes==0 if absent)
  CacheLevel llc;  ///< last-level cache (shared)

  /// Human-readable one-line summary (printed as the Table II analog at the
  /// top of every benchmark).
  [[nodiscard]] std::string summary() const;
};

/// Detect the current machine. Never fails: missing sysfs entries fall back
/// to (32KB L1, 1MB L2, 32MB LLC, 64B lines) — the paper's Intel Skylake.
[[nodiscard]] MachineInfo detect_machine();

/// detect_machine() probed exactly once per process. The hot dispatch paths
/// (auto_select, plan_hybrid, table_entry_cap) consult the machine topology
/// on every fold; this accessor makes that a static read instead of a
/// repeated sysfs walk.
[[nodiscard]] const MachineInfo& cached_machine();

/// Process-wide LLC-size override (0 = use detected). Benches use this to
/// emulate the paper's EPYC (8MB) case; the sliding-hash sizing reads it
/// through effective_llc_bytes().
void set_llc_override(std::size_t bytes);
[[nodiscard]] std::size_t llc_override();

/// LLC capacity the sliding-hash algorithm should budget against:
/// the override if set, otherwise the detected size.
[[nodiscard]] std::size_t effective_llc_bytes();

}  // namespace spkadd::util
