// OpenMP or serial stand-ins — include this instead of <omp.h>.
//
// The library advertises "builds single-threaded when OpenMP is absent"
// (and the TSAN CI leg builds that way on purpose: libgomp is not
// TSAN-instrumented, and that leg targets the aggregation service's own
// std::thread layer). Without OpenMP the `#pragma omp` lines are
// ignored by the compiler, but direct omp_*() runtime calls would fail
// to link — these inline serial definitions keep them meaningful:
// one team, one thread, thread id 0.
#pragma once

#ifdef _OPENMP
#include <omp.h>
#else

inline int omp_get_max_threads() { return 1; }
inline int omp_get_num_threads() { return 1; }
inline int omp_get_thread_num() { return 0; }
inline void omp_set_num_threads(int) {}

#endif
