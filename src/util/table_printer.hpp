// Markdown-style table printing for the benchmark harness.
//
// Every bench binary reproduces one table/figure of the paper; this printer
// renders rows in the same layout (algorithm x parameter grid) so the output
// can be compared to the paper side by side and pasted into EXPERIMENTS.md.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace spkadd::util {

/// Column-aligned markdown table accumulated row by row and printed at once.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  /// Append one row; missing cells are padded with "", extras are dropped.
  void add_row(std::vector<std::string> cells);

  /// Render as a GitHub-flavored markdown table.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

  /// Format seconds with 4 significant digits ("0.0832", "12.93").
  static std::string fmt_seconds(double s);
  /// Format a ratio like "3.2x".
  static std::string fmt_ratio(double r);
  /// Format a large count with thousands grouping ("1,234,567").
  static std::string fmt_count(std::uint64_t v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace spkadd::util
