// Wall-clock timing utilities used by the benchmark harness and by the
// per-phase breakdowns (symbolic vs computation) reported in Fig. 4 of the
// paper.
#pragma once

#include <chrono>
#include <cstdint>
#include <map>
#include <string>

namespace spkadd::util {

/// Monotonic wall-clock stopwatch.
///
/// `WallTimer t; ... double s = t.seconds();` measures the elapsed wall time
/// since construction or the last `reset()`.
class WallTimer {
 public:
  using clock = std::chrono::steady_clock;

  WallTimer() : start_(clock::now()) {}

  /// Restart the stopwatch.
  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction / last reset.
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction / last reset.
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

 private:
  clock::time_point start_;
};

/// Accumulates named phase timings (e.g. "symbolic", "compute") so a bench
/// can report the same per-phase breakdown as the paper's Fig. 4.
class PhaseTimer {
 public:
  /// Add `seconds` to phase `name`.
  void add(const std::string& name, double seconds) { acc_[name] += seconds; }

  /// Run `fn` and charge its wall time to phase `name`; returns fn's result.
  template <class Fn>
  auto time(const std::string& name, Fn&& fn) {
    WallTimer t;
    if constexpr (std::is_void_v<decltype(fn())>) {
      fn();
      add(name, t.seconds());
    } else {
      auto result = fn();
      add(name, t.seconds());
      return result;
    }
  }

  /// Accumulated seconds for `name` (0 if never recorded).
  [[nodiscard]] double get(const std::string& name) const {
    auto it = acc_.find(name);
    return it == acc_.end() ? 0.0 : it->second;
  }

  /// Sum over all phases.
  [[nodiscard]] double total() const {
    double s = 0;
    for (const auto& [_, v] : acc_) s += v;
    return s;
  }

  void clear() { acc_.clear(); }

  [[nodiscard]] const std::map<std::string, double>& phases() const {
    return acc_;
  }

 private:
  std::map<std::string, double> acc_;
};

}  // namespace spkadd::util
