// Bounded multi-producer/multi-consumer queue — the ingest spine of the
// aggregation service (src/service/).
//
// Design goals, in order: correctness under ThreadSanitizer, bounded
// memory (backpressure instead of unbounded buffering), and clean
// shutdown semantics. A mutex + two condition variables is the simplest
// structure that delivers all three; the service's unit of work is a
// whole sparse matrix, so per-element queue overhead is noise next to
// the fold it triggers.
//
// Semantics:
//   * push() blocks while the queue is full (backpressure) and returns
//     false once the queue is closed — the item is then dropped.
//   * pop() blocks while the queue is empty and returns nullopt only
//     when the queue is closed AND drained, so close() lets consumers
//     finish the backlog before they exit.
//   * high_water() reports the deepest the queue has ever been — the
//     stat the service exposes to show how close ingest ran to the
//     backpressure limit.
#pragma once

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>

namespace spkadd::util {

template <class T>
class BoundedMpmcQueue {
 public:
  explicit BoundedMpmcQueue(std::size_t capacity) : cap_(capacity) {
    if (capacity < 1)
      throw std::invalid_argument("BoundedMpmcQueue: capacity must be >= 1");
  }

  BoundedMpmcQueue(const BoundedMpmcQueue&) = delete;
  BoundedMpmcQueue& operator=(const BoundedMpmcQueue&) = delete;

  /// Enqueue, blocking while full. Returns false (and drops the item)
  /// iff the queue was closed before space opened up.
  bool push(T item) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [&] { return closed_ || items_.size() < cap_; });
    if (closed_) return false;
    items_.push_back(std::move(item));
    high_water_ = std::max(high_water_, items_.size());
    lock.unlock();
    not_empty_.notify_one();
    return true;
  }

  /// Enqueue without blocking. On failure (full or closed) the argument
  /// is left untouched so the caller can retry or count the drop.
  bool try_push(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || items_.size() >= cap_) return false;
      items_.push_back(std::move(item));
      high_water_ = std::max(high_water_, items_.size());
    }
    not_empty_.notify_one();
    return true;
  }

  /// Dequeue, blocking while empty. Returns nullopt only once the queue
  /// is closed and fully drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    std::optional<T> out(std::move(items_.front()));
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return out;
  }

  /// Dequeue without blocking; nullopt when nothing is available.
  std::optional<T> try_pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    if (items_.empty()) return std::nullopt;
    std::optional<T> out(std::move(items_.front()));
    items_.pop_front();
    lock.unlock();
    not_full_.notify_one();
    return out;
  }

  /// Reject all future pushes and wake every waiter. Items already
  /// queued remain poppable (shutdown drains the backlog). Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const { return cap_; }

  /// Deepest the queue has ever been (never exceeds capacity).
  [[nodiscard]] std::size_t high_water() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return high_water_;
  }

 private:
  const std::size_t cap_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  std::size_t high_water_ = 0;
  bool closed_ = false;
};

}  // namespace spkadd::util
