// Bounded multi-producer/multi-consumer queue — the ingest spine of the
// aggregation service (src/service/).
//
// Design goals, in order: correctness under ThreadSanitizer, bounded
// memory (backpressure instead of unbounded buffering), and clean
// shutdown semantics. A mutex + two condition variables is the simplest
// structure that delivers all three; the service's unit of work is a
// whole sparse matrix, so per-element queue overhead is noise next to
// the fold it triggers — and the burst API below amortizes even that
// one lock acquisition across a whole producer burst.
//
// Semantics:
//   * push()/push_burst() block while the queue is throttled
//     (backpressure) and hand the item(s) back once the queue is
//     closed — a failed push never silently destroys the caller's
//     item (the caller can count or retry the drop).
//   * Watermark hysteresis (the FlexiCAS transaction-queue pattern):
//     producers throttle when the depth reaches `high_watermark` and
//     are released only once consumers drain it to `low_watermark`,
//     instead of hard-blocking at capacity and waking on every pop.
//     A burst admitted below the high watermark may overshoot it (up
//     to `capacity`, the hard memory bound); the producers then stay
//     throttled until the low watermark. Defaults (high = capacity,
//     low = high) reproduce plain bounded-queue blocking.
//   * pop()/pop_burst() block while the queue is empty and return
//     nullopt / 0 only when the queue is closed AND drained, so
//     close() lets consumers finish the backlog before they exit.
//     try_pop() distinguishes "momentarily empty" from "closed and
//     drained" so non-blocking consumers never spin after shutdown.
//   * high_water() reports the deepest the queue has ever been, and
//     throttle_events()/throttle_seconds() how often and how long
//     producers sat blocked on the watermark — the stats the service
//     exposes to show how close ingest ran to the backpressure limit.
#pragma once

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <utility>
#include <vector>

namespace spkadd::util {

template <class T>
class BoundedMpmcQueue {
 public:
  /// Outcome of a non-blocking pop: the two no-item states are distinct
  /// so consumers polling with try_pop() can tell a momentary gap
  /// (retry later) from shutdown (exit the loop).
  enum class PopStatus { kItem, kEmpty, kClosed };

  /// `high_watermark` 0 defaults to `capacity`; `low_watermark` 0
  /// defaults to `high_watermark` (no hysteresis). Requires
  /// 1 <= low <= high <= capacity.
  explicit BoundedMpmcQueue(std::size_t capacity,
                            std::size_t high_watermark = 0,
                            std::size_t low_watermark = 0)
      : cap_(capacity),
        high_(high_watermark != 0 ? high_watermark : capacity),
        low_(low_watermark != 0 ? low_watermark : high_) {
    if (capacity < 1)
      throw std::invalid_argument("BoundedMpmcQueue: capacity must be >= 1");
    if (high_ > cap_)
      throw std::invalid_argument(
          "BoundedMpmcQueue: high watermark exceeds capacity");
    if (low_ < 1 || low_ > high_)
      throw std::invalid_argument(
          "BoundedMpmcQueue: need 1 <= low watermark <= high watermark");
  }

  BoundedMpmcQueue(const BoundedMpmcQueue&) = delete;
  BoundedMpmcQueue& operator=(const BoundedMpmcQueue&) = delete;

  /// Enqueue, blocking while throttled. Returns false iff the queue was
  /// closed before space opened up — the item is then left untouched so
  /// the caller can account the drop (never silently destroyed).
  [[nodiscard]] bool push(T&& item) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wait_admissible(lock);
      if (closed_) return false;  // item intact in the caller's hands
      items_.push_back(std::move(item));
      after_push_locked();
    }
    not_empty_.notify_one();
    return true;
  }

  /// Copying convenience overload (tests push ints; the service always
  /// moves). The caller's item is never observably modified.
  [[nodiscard]] bool push(const T& item) {
    T copy(item);
    return push(std::move(copy));
  }

  /// Enqueue a whole burst with ONE lock acquisition per admitted chunk
  /// (one, in the common burst <= free-space case), blocking while
  /// throttled. Items are admitted in order; a burst admitted below the
  /// high watermark may overshoot it up to `capacity`. Returns the
  /// number of items pushed; on close the UNPUSHED tail is left in
  /// `items` (pushed ones are erased), so the caller can retire them.
  /// On full success `items` comes back empty.
  std::size_t push_burst(std::vector<T>& items) {
    std::size_t pushed = 0;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      while (pushed < items.size()) {
        wait_admissible(lock);
        if (closed_) break;
        const std::size_t room = cap_ - items_.size();
        const std::size_t take = std::min(room, items.size() - pushed);
        for (std::size_t i = 0; i < take; ++i)
          items_.push_back(std::move(items[pushed + i]));
        pushed += take;
        after_push_locked();
        // Wake consumers for this chunk; they make the room the next
        // chunk waits for.
        not_empty_.notify_all();
      }
    }
    items.erase(items.begin(),
                items.begin() + static_cast<std::ptrdiff_t>(pushed));
    return pushed;
  }

  /// Enqueue without blocking. On failure (throttled, full or closed)
  /// the argument is left untouched so the caller can retry or count
  /// the drop.
  [[nodiscard]] bool try_push(T&& item) {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || !admissible_locked()) return false;
      items_.push_back(std::move(item));
      after_push_locked();
    }
    not_empty_.notify_one();
    return true;
  }

  /// Non-blocking all-or-nothing burst enqueue: either every item is
  /// admitted (items comes back empty) or none is (items untouched).
  [[nodiscard]] bool try_push_burst(std::vector<T>& items) {
    if (items.empty()) return true;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (closed_ || !admissible_locked() ||
          items.size() > cap_ - items_.size())
        return false;
      for (auto& item : items) items_.push_back(std::move(item));
      after_push_locked();
    }
    not_empty_.notify_all();
    items.clear();
    return true;
  }

  /// Dequeue, blocking while empty. Returns nullopt only once the queue
  /// is closed and fully drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty()) return std::nullopt;  // closed and drained
    std::optional<T> out(std::move(items_.front()));
    items_.pop_front();
    const bool released = after_pop_locked();
    lock.unlock();
    if (released)
      not_full_.notify_all();
    else
      not_full_.notify_one();
    return out;
  }

  /// Dequeue up to `max_items` in one lock acquisition, blocking while
  /// empty. Appends to `out` and returns the count — 0 only once the
  /// queue is closed and fully drained (the consumer's exit signal).
  std::size_t pop_burst(std::vector<T>& out, std::size_t max_items) {
    std::unique_lock<std::mutex> lock(mutex_);
    not_empty_.wait(lock, [&] { return closed_ || !items_.empty(); });
    const std::size_t take = std::min(max_items, items_.size());
    for (std::size_t i = 0; i < take; ++i) {
      out.push_back(std::move(items_.front()));
      items_.pop_front();
    }
    const bool released = after_pop_locked();
    lock.unlock();
    if (take != 0) {
      if (released)
        not_full_.notify_all();
      else
        not_full_.notify_one();
    }
    return take;
  }

  /// Dequeue without blocking; kEmpty means "nothing right now, retry",
  /// kClosed means "closed and drained, stop polling". `out` is
  /// assigned only on kItem.
  PopStatus try_pop(T& out) {
    std::unique_lock<std::mutex> lock(mutex_);
    if (items_.empty()) return closed_ ? PopStatus::kClosed : PopStatus::kEmpty;
    out = std::move(items_.front());
    items_.pop_front();
    const bool released = after_pop_locked();
    lock.unlock();
    if (released)
      not_full_.notify_all();
    else
      not_full_.notify_one();
    return PopStatus::kItem;
  }

  /// Reject all future pushes and wake every waiter. Items already
  /// queued remain poppable (shutdown drains the backlog). Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mutex_);
      closed_ = true;
    }
    not_full_.notify_all();
    not_empty_.notify_all();
  }

  [[nodiscard]] bool closed() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return closed_;
  }

  [[nodiscard]] std::size_t size() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return items_.size();
  }

  [[nodiscard]] std::size_t capacity() const { return cap_; }
  [[nodiscard]] std::size_t high_watermark() const { return high_; }
  [[nodiscard]] std::size_t low_watermark() const { return low_; }

  /// Deepest the queue has ever been (never exceeds capacity).
  [[nodiscard]] std::size_t high_water() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return high_water_;
  }

  /// Pushes that actually blocked on the watermark.
  [[nodiscard]] std::uint64_t throttle_events() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return throttle_events_;
  }

  /// Total producer wall time spent blocked on the watermark.
  [[nodiscard]] double throttle_seconds() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return static_cast<double>(throttle_ns_) * 1e-9;
  }

 private:
  /// May a producer enqueue right now? Hysteresis: once the depth hits
  /// the high watermark, admission stays off until the low watermark.
  [[nodiscard]] bool admissible_locked() const {
    return !throttled_ && items_.size() < high_;
  }

  /// Block (tracking throttle time) until admission or close.
  void wait_admissible(std::unique_lock<std::mutex>& lock) {
    if (closed_ || admissible_locked()) return;
    ++throttle_events_;
    const auto t0 = std::chrono::steady_clock::now();
    not_full_.wait(lock, [&] { return closed_ || admissible_locked(); });
    throttle_ns_ += static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
  }

  void after_push_locked() {
    high_water_ = std::max(high_water_, items_.size());
    if (items_.size() >= high_) throttled_ = true;
  }

  /// Returns true when this pop released the throttle (callers then
  /// notify_all so every waiting producer re-checks admission).
  bool after_pop_locked() {
    if (throttled_ && items_.size() <= low_) {
      throttled_ = false;
      return true;
    }
    return false;
  }

  const std::size_t cap_;
  const std::size_t high_;
  const std::size_t low_;
  mutable std::mutex mutex_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::deque<T> items_;
  std::size_t high_water_ = 0;
  std::uint64_t throttle_events_ = 0;
  std::uint64_t throttle_ns_ = 0;
  bool throttled_ = false;
  bool closed_ = false;
};

}  // namespace spkadd::util
