// Thin RAII control over the OpenMP thread count.
//
// The strong-scaling bench (Fig. 3) sweeps thread counts; tests pin a known
// count so results are deterministic. omp_set_num_threads is process-global,
// so the guard restores the previous value on scope exit.
#pragma once

namespace spkadd::util {

/// Number of threads OpenMP will use for the next parallel region.
[[nodiscard]] int current_max_threads();

/// Set the process-global OpenMP thread count (clamped to >= 1).
void set_num_threads(int n);

/// RAII guard: sets the thread count for the enclosing scope, restores the
/// previous setting on destruction.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int n);
  ~ThreadCountGuard();
  ThreadCountGuard(const ThreadCountGuard&) = delete;
  ThreadCountGuard& operator=(const ThreadCountGuard&) = delete;

 private:
  int previous_;
};

}  // namespace spkadd::util
