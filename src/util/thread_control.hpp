// Thin RAII control over the OpenMP thread count, plus best-effort CPU
// affinity pinning for the service's worker threads.
//
// The strong-scaling bench (Fig. 3) sweeps thread counts; tests pin a known
// count so results are deterministic. omp_set_num_threads is process-global,
// so the guard restores the previous value on scope exit.
#pragma once

#include <cstddef>

namespace spkadd::util {

/// Number of threads OpenMP will use for the next parallel region.
[[nodiscard]] int current_max_threads();

/// Set the process-global OpenMP thread count (clamped to >= 1).
void set_num_threads(int n);

/// Logical CPUs available to this process (never returns 0).
[[nodiscard]] std::size_t online_cpu_count();

/// Best-effort: pin the CALLING thread to logical CPU `cpu % online`.
/// Returns false where unsupported (non-Linux) or when the kernel
/// refuses — callers must treat pinning as an optimization, never a
/// correctness requirement. The aggregation service uses this to give
/// its workers stable thread/shard affinity on multi-core scaling runs.
bool pin_current_thread_to_cpu(std::size_t cpu);

/// RAII guard: sets the thread count for the enclosing scope, restores the
/// previous setting on destruction.
class ThreadCountGuard {
 public:
  explicit ThreadCountGuard(int n);
  ~ThreadCountGuard();
  ThreadCountGuard(const ThreadCountGuard&) = delete;
  ThreadCountGuard& operator=(const ThreadCountGuard&) = delete;

 private:
  int previous_;
};

}  // namespace spkadd::util
