// Shared JSON string escaping for every emitter in the tree (the
// daemon's stats verb, the calibration table writer, the bench
// SampleLog, the metrics registry's render_json). One definition so a
// tenant name containing '"', '\' or a control byte can never yield an
// invalid document from ANY surface.
//
// Thread-safety contract: pure function over its argument — safe from
// any thread.
#pragma once

#include <string>
#include <string_view>

namespace spkadd::util {

/// Escape `in` for embedding inside a double-quoted JSON string:
/// '"' and '\' are backslash-escaped, \b \f \n \r \t use their short
/// forms, and every other control byte (< 0x20) becomes \u00XX. The
/// surrounding quotes are the caller's.
[[nodiscard]] std::string json_escape(std::string_view in);

}  // namespace spkadd::util
