// Exclusive prefix sums (scans).
//
// Every SpKAdd numeric phase turns a per-column nnz count (from the symbolic
// phase) into the CSC column-pointer array via an exclusive scan; the scan is
// parallelized for large n with the classic two-pass block algorithm.
#pragma once

#include "util/omp_compat.hpp"

#include <cstddef>
#include <span>
#include <vector>

namespace spkadd::util {

/// Sequential exclusive scan: out[i] = sum(in[0..i)), out has size
/// in.size()+1 so out.back() is the grand total.
template <class T>
void exclusive_scan_seq(std::span<const T> in, std::span<T> out) {
  T run{};
  for (std::size_t i = 0; i < in.size(); ++i) {
    out[i] = run;
    run += in[i];
  }
  out[in.size()] = run;
}

/// Parallel two-pass exclusive scan. `out` must have size `in.size() + 1`.
/// Falls back to the sequential version for small inputs where the fork/join
/// overhead dominates.
template <class T>
void exclusive_scan(std::span<const T> in, std::span<T> out) {
  const std::size_t n = in.size();
  constexpr std::size_t kParallelThreshold = 1u << 15;
  const int max_threads = omp_get_max_threads();
  if (n < kParallelThreshold || max_threads == 1) {
    exclusive_scan_seq(in, out);
    return;
  }

  std::vector<T> block_sums;
#pragma omp parallel
  {
    const int nt = omp_get_num_threads();
    const int tid = omp_get_thread_num();
#pragma omp single
    block_sums.assign(static_cast<std::size_t>(nt) + 1, T{});
    const std::size_t chunk = (n + static_cast<std::size_t>(nt) - 1) /
                              static_cast<std::size_t>(nt);
    const std::size_t lo = std::min(n, chunk * static_cast<std::size_t>(tid));
    const std::size_t hi = std::min(n, lo + chunk);
    T local{};
    for (std::size_t i = lo; i < hi; ++i) local += in[i];
    block_sums[static_cast<std::size_t>(tid) + 1] = local;
#pragma omp barrier
#pragma omp single
    for (std::size_t t = 1; t < block_sums.size(); ++t)
      block_sums[t] += block_sums[t - 1];
    T run = block_sums[static_cast<std::size_t>(tid)];
    for (std::size_t i = lo; i < hi; ++i) {
      out[i] = run;
      run += in[i];
    }
  }
  out[n] = block_sums.back();
}

/// Convenience: scan a vector of counts into a fresh (n+1)-element pointer
/// array (the CSC `col_ptr` shape).
template <class T>
[[nodiscard]] std::vector<T> counts_to_offsets(std::span<const T> counts) {
  std::vector<T> offsets(counts.size() + 1);
  exclusive_scan(counts, std::span<T>(offsets));
  return offsets;
}

}  // namespace spkadd::util
