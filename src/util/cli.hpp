// Minimal command-line flag parsing for the bench/example binaries.
//
// All benches share flags like --rows, --scale, --threads, --cache-spec;
// this
// parser supports "--name value", "--name=value" and boolean "--name" forms
// and prints a generated --help.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace spkadd::util {

/// One level of a `--cache-spec` string: "LLC:8M:16" = name:capacity:ways.
struct CacheLevelSpec {
  std::string name;          ///< "L1", "L2", "LLC" (free-form, non-empty)
  std::uint64_t bytes = 0;   ///< capacity; suffixes K/M/G accepted
  int ways = 0;              ///< associativity
  bool operator==(const CacheLevelSpec&) const = default;
};

/// Parse "L1:32K:8,L2:1M:16,LLC:8M:16" into ordered levels. Strict: every
/// level needs all three fields, sizes are from_chars integers with an
/// optional single K/M/G suffix, ways a positive integer, and malformed
/// specs (empty names, zero sizes, trailing junk, empty elements) throw
/// std::invalid_argument. Round-trip: parse(format(x)) == x.
[[nodiscard]] std::vector<CacheLevelSpec> parse_cache_spec(
    const std::string& text);

/// Inverse of parse_cache_spec: canonical "NAME:SIZE:WAYS,..." rendering
/// (sizes use the largest exact K/M/G suffix).
[[nodiscard]] std::string format_cache_spec(
    const std::vector<CacheLevelSpec>& levels);

/// Declarative flag registry + parser.
///
///   CliParser cli("bench_table3");
///   auto& rows = cli.add_int("rows", 1 << 17, "number of matrix rows");
///   cli.parse(argc, argv);           // exits(0) on --help
///   use(*rows)
class CliParser {
 public:
  explicit CliParser(std::string program, std::string description = {});

  /// Register flags; the returned pointer stays valid for the parser's
  /// lifetime and holds the default until parse() overwrites it.
  const std::int64_t* add_int(const std::string& name, std::int64_t def,
                              const std::string& help);
  const double* add_double(const std::string& name, double def,
                           const std::string& help);
  const bool* add_flag(const std::string& name, const std::string& help);
  const std::string* add_string(const std::string& name, std::string def,
                                const std::string& help);
  /// Comma-separated integer list (e.g. `--shards 1,2,4`) — the sweep
  /// axes of the service loadgen. The default is given in the same
  /// comma-separated form; a malformed default throws
  /// std::invalid_argument at registration (a programming error).
  const std::vector<std::int64_t>* add_int_list(const std::string& name,
                                                const std::string& def,
                                                const std::string& help);

  /// Parse argv. Unknown flags are an error (returns false and prints usage);
  /// `--help` prints usage and calls std::exit(0).
  bool parse(int argc, const char* const* argv);

  /// Usage text (also printed by --help).
  [[nodiscard]] std::string usage() const;

 private:
  enum class Kind { Int, Double, Bool, String, IntList };
  struct Flag {
    Kind kind = Kind::Bool;
    std::string help;
    std::int64_t int_value = 0;
    double double_value = 0;
    bool bool_value = false;
    std::string string_value;
    std::vector<std::int64_t> int_list_value;
  };
  bool assign(Flag& flag, const std::string& text);

  std::string program_;
  std::string description_;
  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
};

}  // namespace spkadd::util
