#include "util/cli.hpp"

#include <charconv>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <stdexcept>

namespace spkadd::util {

namespace {

/// Strict integer parse: the whole token must be one base-10 integer.
/// (std::stoll would silently accept "12abc" as 12.)
bool parse_int_strict(const std::string& text, std::int64_t& out) {
  if (text.empty()) return false;
  const char* first = text.data();
  const char* last = first + text.size();
  const auto [ptr, ec] = std::from_chars(first, last, out);
  return ec == std::errc() && ptr == last;
}

/// Parse "1,2,4" into a list; every element must be a valid integer and
/// empty elements ("1,,2", trailing comma) are rejected.
bool parse_int_list(const std::string& text,
                    std::vector<std::int64_t>& out) {
  out.clear();
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    std::int64_t value = 0;
    if (!parse_int_strict(text.substr(start, comma - start), value))
      return false;
    out.push_back(value);
    start = comma + 1;
  }
  return !out.empty();
}

std::string format_int_list(const std::vector<std::int64_t>& values) {
  std::ostringstream ss;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i != 0) ss << ',';
    ss << values[i];
  }
  return ss.str();
}

/// Parse one size token: strict integer with an optional single K/M/G
/// suffix ("32K", "8M", "32768"). Returns false on anything else.
bool parse_size_strict(const std::string& text, std::uint64_t& out) {
  if (text.empty()) return false;
  const char* first = text.data();
  const char* last = first + text.size();
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(first, last, value);
  if (ec != std::errc()) return false;
  if (ptr == last) {
    out = value;
    return true;
  }
  if (ptr + 1 != last) return false;  // at most one suffix character
  switch (*ptr) {
    case 'K': case 'k': out = value << 10; return true;
    case 'M': case 'm': out = value << 20; return true;
    case 'G': case 'g': out = value << 30; return true;
    default: return false;
  }
}

}  // namespace

std::vector<CacheLevelSpec> parse_cache_spec(const std::string& text) {
  std::vector<CacheLevelSpec> levels;
  std::size_t start = 0;
  while (start <= text.size()) {
    std::size_t comma = text.find(',', start);
    if (comma == std::string::npos) comma = text.size();
    const std::string element = text.substr(start, comma - start);
    const std::size_t c1 = element.find(':');
    const std::size_t c2 =
        c1 == std::string::npos ? std::string::npos : element.find(':', c1 + 1);
    if (c1 == std::string::npos || c2 == std::string::npos ||
        element.find(':', c2 + 1) != std::string::npos)
      throw std::invalid_argument("parse_cache_spec: level '" + element +
                                  "' is not NAME:SIZE:WAYS");
    CacheLevelSpec level;
    level.name = element.substr(0, c1);
    std::int64_t ways = 0;
    if (level.name.empty() ||
        !parse_size_strict(element.substr(c1 + 1, c2 - c1 - 1), level.bytes) ||
        level.bytes == 0 ||
        !parse_int_strict(element.substr(c2 + 1), ways) || ways <= 0 ||
        ways > (1 << 20))
      throw std::invalid_argument("parse_cache_spec: bad level '" + element +
                                  "' (want NAME:SIZE[K|M|G]:WAYS, size and "
                                  "ways positive)");
    level.ways = static_cast<int>(ways);
    levels.push_back(std::move(level));
    start = comma + 1;
  }
  if (levels.empty())
    throw std::invalid_argument("parse_cache_spec: empty spec");
  return levels;
}

std::string format_cache_spec(const std::vector<CacheLevelSpec>& levels) {
  std::ostringstream ss;
  for (std::size_t i = 0; i < levels.size(); ++i) {
    if (i != 0) ss << ',';
    ss << levels[i].name << ':';
    const std::uint64_t b = levels[i].bytes;
    if (b >= (1ull << 30) && b % (1ull << 30) == 0)
      ss << (b >> 30) << 'G';
    else if (b >= (1ull << 20) && b % (1ull << 20) == 0)
      ss << (b >> 20) << 'M';
    else if (b >= (1ull << 10) && b % (1ull << 10) == 0)
      ss << (b >> 10) << 'K';
    else
      ss << b;
    ss << ':' << levels[i].ways;
  }
  return ss.str();
}

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

const std::int64_t* CliParser::add_int(const std::string& name,
                                       std::int64_t def,
                                       const std::string& help) {
  Flag f;
  f.kind = Kind::Int;
  f.help = help;
  f.int_value = def;
  auto [it, fresh] = flags_.emplace(name, std::move(f));
  if (fresh) order_.push_back(name);
  return &it->second.int_value;
}

const double* CliParser::add_double(const std::string& name, double def,
                                    const std::string& help) {
  Flag f;
  f.kind = Kind::Double;
  f.help = help;
  f.double_value = def;
  auto [it, fresh] = flags_.emplace(name, std::move(f));
  if (fresh) order_.push_back(name);
  return &it->second.double_value;
}

const bool* CliParser::add_flag(const std::string& name,
                                const std::string& help) {
  Flag f;
  f.kind = Kind::Bool;
  f.help = help;
  auto [it, fresh] = flags_.emplace(name, std::move(f));
  if (fresh) order_.push_back(name);
  return &it->second.bool_value;
}

const std::string* CliParser::add_string(const std::string& name,
                                         std::string def,
                                         const std::string& help) {
  Flag f;
  f.kind = Kind::String;
  f.help = help;
  f.string_value = std::move(def);
  auto [it, fresh] = flags_.emplace(name, std::move(f));
  if (fresh) order_.push_back(name);
  return &it->second.string_value;
}

const std::vector<std::int64_t>* CliParser::add_int_list(
    const std::string& name, const std::string& def,
    const std::string& help) {
  Flag f;
  f.kind = Kind::IntList;
  f.help = help;
  if (!parse_int_list(def, f.int_list_value))
    throw std::invalid_argument("CliParser: bad int-list default '" + def +
                                "' for --" + name);
  auto [it, fresh] = flags_.emplace(name, std::move(f));
  if (fresh) order_.push_back(name);
  return &it->second.int_list_value;
}

bool CliParser::assign(Flag& flag, const std::string& text) {
  try {
    switch (flag.kind) {
      case Kind::Int:
        return parse_int_strict(text, flag.int_value);
      case Kind::Double: {
        std::size_t consumed = 0;
        const double v = std::stod(text, &consumed);
        if (consumed != text.size()) return false;  // "1.5x" is an error
        flag.double_value = v;
        return true;
      }
      case Kind::Bool:
        flag.bool_value = (text == "1" || text == "true" || text == "yes");
        return true;
      case Kind::String:
        flag.string_value = text;
        return true;
      case Kind::IntList:
        return parse_int_list(text, flag.int_list_value);
    }
  } catch (...) {
  }
  return false;
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage();
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0) {
      std::cerr << program_ << ": unexpected positional argument '" << arg
                << "'\n"
                << usage();
      return false;
    }
    arg.erase(0, 2);
    std::string value;
    bool has_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg.erase(eq);
      has_value = true;
    }
    auto it = flags_.find(arg);
    if (it == flags_.end()) {
      std::cerr << program_ << ": unknown flag '--" << arg << "'\n" << usage();
      return false;
    }
    Flag& flag = it->second;
    if (flag.kind == Kind::Bool && !has_value) {
      flag.bool_value = true;
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        std::cerr << program_ << ": flag '--" << arg << "' needs a value\n";
        return false;
      }
      value = argv[++i];
    }
    if (!assign(flag, value)) {
      std::cerr << program_ << ": bad value '" << value << "' for '--" << arg
                << "'\n";
      return false;
    }
  }
  return true;
}

std::string CliParser::usage() const {
  std::ostringstream ss;
  ss << "usage: " << program_ << " [flags]\n";
  if (!description_.empty()) ss << description_ << "\n";
  for (const auto& name : order_) {
    const Flag& f = flags_.at(name);
    ss << "  --" << name;
    switch (f.kind) {
      case Kind::Int:
        ss << " <int>    (default " << f.int_value << ")";
        break;
      case Kind::Double:
        ss << " <float>  (default " << f.double_value << ")";
        break;
      case Kind::Bool:
        ss << "          (flag)";
        break;
      case Kind::String:
        ss << " <str>    (default \"" << f.string_value << "\")";
        break;
      case Kind::IntList:
        ss << " <int,..> (default " << format_int_list(f.int_list_value)
           << ")";
        break;
    }
    ss << "  " << f.help << "\n";
  }
  return ss.str();
}

}  // namespace spkadd::util
