#include "util/cli.hpp"

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace spkadd::util {

CliParser::CliParser(std::string program, std::string description)
    : program_(std::move(program)), description_(std::move(description)) {}

const std::int64_t* CliParser::add_int(const std::string& name,
                                       std::int64_t def,
                                       const std::string& help) {
  Flag f;
  f.kind = Kind::Int;
  f.help = help;
  f.int_value = def;
  auto [it, fresh] = flags_.emplace(name, std::move(f));
  if (fresh) order_.push_back(name);
  return &it->second.int_value;
}

const double* CliParser::add_double(const std::string& name, double def,
                                    const std::string& help) {
  Flag f;
  f.kind = Kind::Double;
  f.help = help;
  f.double_value = def;
  auto [it, fresh] = flags_.emplace(name, std::move(f));
  if (fresh) order_.push_back(name);
  return &it->second.double_value;
}

const bool* CliParser::add_flag(const std::string& name,
                                const std::string& help) {
  Flag f;
  f.kind = Kind::Bool;
  f.help = help;
  auto [it, fresh] = flags_.emplace(name, std::move(f));
  if (fresh) order_.push_back(name);
  return &it->second.bool_value;
}

const std::string* CliParser::add_string(const std::string& name,
                                         std::string def,
                                         const std::string& help) {
  Flag f;
  f.kind = Kind::String;
  f.help = help;
  f.string_value = std::move(def);
  auto [it, fresh] = flags_.emplace(name, std::move(f));
  if (fresh) order_.push_back(name);
  return &it->second.string_value;
}

bool CliParser::assign(Flag& flag, const std::string& text) {
  try {
    switch (flag.kind) {
      case Kind::Int:
        flag.int_value = std::stoll(text);
        return true;
      case Kind::Double:
        flag.double_value = std::stod(text);
        return true;
      case Kind::Bool:
        flag.bool_value = (text == "1" || text == "true" || text == "yes");
        return true;
      case Kind::String:
        flag.string_value = text;
        return true;
    }
  } catch (...) {
  }
  return false;
}

bool CliParser::parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      std::cout << usage();
      std::exit(0);
    }
    if (arg.rfind("--", 0) != 0) {
      std::cerr << program_ << ": unexpected positional argument '" << arg
                << "'\n"
                << usage();
      return false;
    }
    arg.erase(0, 2);
    std::string value;
    bool has_value = false;
    if (auto eq = arg.find('='); eq != std::string::npos) {
      value = arg.substr(eq + 1);
      arg.erase(eq);
      has_value = true;
    }
    auto it = flags_.find(arg);
    if (it == flags_.end()) {
      std::cerr << program_ << ": unknown flag '--" << arg << "'\n" << usage();
      return false;
    }
    Flag& flag = it->second;
    if (flag.kind == Kind::Bool && !has_value) {
      flag.bool_value = true;
      continue;
    }
    if (!has_value) {
      if (i + 1 >= argc) {
        std::cerr << program_ << ": flag '--" << arg << "' needs a value\n";
        return false;
      }
      value = argv[++i];
    }
    if (!assign(flag, value)) {
      std::cerr << program_ << ": bad value '" << value << "' for '--" << arg
                << "'\n";
      return false;
    }
  }
  return true;
}

std::string CliParser::usage() const {
  std::ostringstream ss;
  ss << "usage: " << program_ << " [flags]\n";
  if (!description_.empty()) ss << description_ << "\n";
  for (const auto& name : order_) {
    const Flag& f = flags_.at(name);
    ss << "  --" << name;
    switch (f.kind) {
      case Kind::Int:
        ss << " <int>    (default " << f.int_value << ")";
        break;
      case Kind::Double:
        ss << " <float>  (default " << f.double_value << ")";
        break;
      case Kind::Bool:
        ss << "          (flag)";
        break;
      case Kind::String:
        ss << " <str>    (default \"" << f.string_value << "\")";
        break;
    }
    ss << "  " << f.help << "\n";
  }
  return ss.str();
}

}  // namespace spkadd::util
