// Deterministic, seedable pseudo-random number generation.
//
// The R-MAT generator and the property-based tests need streams that are
// (a) reproducible across runs and platforms, and (b) cheaply splittable so
// each OpenMP thread / each generated matrix gets an independent stream.
// SplitMix64 seeds Xoshiro256**, the standard recipe from Blackman & Vigna.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace spkadd::util {

/// SplitMix64: tiny, high-quality 64-bit mixer. Used to expand one user seed
/// into the 256-bit Xoshiro state and to derive per-stream sub-seeds.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) : state_(seed) {}

  constexpr std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: fast general-purpose PRNG with 256-bit state.
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed = 0x5eed5eed5eedULL) {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) using Lemire's multiply-shift rejection.
  std::uint64_t bounded(std::uint64_t bound) {
    if (bound == 0) return 0;
    // Fast path without 128-bit math corrections is biased by at most
    // 2^-64 * bound; for test/generator purposes we use the unbiased loop.
    std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      std::uint64_t r = (*this)();
      if (r >= threshold) return r % bound;
    }
  }

  /// Derive an independent generator for stream index `i` (thread/matrix id).
  [[nodiscard]] Xoshiro256 split(std::uint64_t i) const {
    SplitMix64 sm(s_[0] ^ (0x9e3779b97f4a7c15ULL * (i + 1)));
    Xoshiro256 out(sm.next());
    return out;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> s_{};
};

}  // namespace spkadd::util
