#include "util/table_printer.hpp"

#include <algorithm>
#include <cstdint>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace spkadd::util {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::print(std::ostream& os) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  auto emit = [&](const std::vector<std::string>& row) {
    os << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string{};
      os << ' ' << cell << std::string(width[c] - cell.size(), ' ') << " |";
    }
    os << '\n';
  };

  emit(headers_);
  os << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c)
    os << std::string(width[c] + 2, '-') << "|";
  os << '\n';
  for (const auto& row : rows_) emit(row);
}

std::string TablePrinter::fmt_seconds(double s) {
  std::ostringstream ss;
  if (s < 1.0)
    ss << std::fixed << std::setprecision(4) << s;
  else
    ss << std::fixed << std::setprecision(3) << s;
  return ss.str();
}

std::string TablePrinter::fmt_ratio(double r) {
  std::ostringstream ss;
  ss << std::fixed << std::setprecision(2) << r << "x";
  return ss.str();
}

std::string TablePrinter::fmt_count(std::uint64_t v) {
  std::string digits = std::to_string(v);
  std::string out;
  int seen = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (seen != 0 && seen % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++seen;
  }
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace spkadd::util
