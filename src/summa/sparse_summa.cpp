#include "summa/sparse_summa.hpp"

#include <stdexcept>

#include "core/spkadd.hpp"
#include "matrix/block.hpp"
#include "util/timer.hpp"

namespace spkadd::summa {

using Csc = CscMatrix<std::int32_t, double>;

SummaConfig heap_pipeline(int grid) {
  SummaConfig c;
  c.grid = grid;
  c.local_accumulator = spgemm::Accumulator::Heap;
  c.sort_local_products = true;
  c.reduce_method = core::Method::Heap;
  return c;
}

SummaConfig sorted_hash_pipeline(int grid) {
  SummaConfig c;
  c.grid = grid;
  c.local_accumulator = spgemm::Accumulator::Hash;
  c.sort_local_products = true;
  c.reduce_method = core::Method::Hash;
  return c;
}

SummaConfig unsorted_hash_pipeline(int grid) {
  SummaConfig c;
  c.grid = grid;
  c.local_accumulator = spgemm::Accumulator::Hash;
  c.sort_local_products = false;  // the 20% local-multiply saving of Fig. 6
  c.reduce_method = core::Method::Hash;
  return c;
}

Csc assemble_blocks(const std::vector<std::vector<Csc>>& blocks,
                    const std::vector<std::int32_t>& row_bounds,
                    const std::vector<std::int32_t>& col_bounds) {
  const int g_rows = static_cast<int>(row_bounds.size()) - 1;
  const int g_cols = static_cast<int>(col_bounds.size()) - 1;
  const std::int32_t rows = row_bounds.back();
  const std::int32_t cols = col_bounds.back();

  std::vector<std::int32_t> counts(static_cast<std::size_t>(cols), 0);
  for (int bi = 0; bi < g_rows; ++bi)
    for (int bj = 0; bj < g_cols; ++bj) {
      const Csc& blk = blocks[static_cast<std::size_t>(bi)]
                             [static_cast<std::size_t>(bj)];
      const std::int32_t c0 = col_bounds[static_cast<std::size_t>(bj)];
      for (std::int32_t j = 0; j < blk.cols(); ++j)
        counts[static_cast<std::size_t>(c0 + j)] +=
            static_cast<std::int32_t>(blk.col_nnz(j));
    }
  std::vector<std::int32_t> col_ptr =
      util::counts_to_offsets(std::span<const std::int32_t>(counts));
  std::vector<std::int32_t> cursor(col_ptr.begin(), col_ptr.end() - 1);
  std::vector<std::int32_t> row_idx(static_cast<std::size_t>(col_ptr.back()));
  std::vector<double> values(static_cast<std::size_t>(col_ptr.back()));

  // Block rows are visited in ascending row order per global column, so the
  // assembled columns stay sorted when block columns are sorted.
  for (int bj = 0; bj < g_cols; ++bj) {
    const std::int32_t c0 = col_bounds[static_cast<std::size_t>(bj)];
    for (int bi = 0; bi < g_rows; ++bi) {
      const Csc& blk = blocks[static_cast<std::size_t>(bi)]
                             [static_cast<std::size_t>(bj)];
      const std::int32_t r0 = row_bounds[static_cast<std::size_t>(bi)];
      for (std::int32_t j = 0; j < blk.cols(); ++j) {
        const auto col = blk.column(j);
        auto& cur = cursor[static_cast<std::size_t>(c0 + j)];
        for (std::size_t i = 0; i < col.nnz(); ++i) {
          row_idx[static_cast<std::size_t>(cur)] = col.rows[i] + r0;
          values[static_cast<std::size_t>(cur)] = col.vals[i];
          ++cur;
        }
      }
    }
  }
  return Csc(rows, cols, std::move(col_ptr), std::move(row_idx),
             std::move(values));
}

SummaResult multiply(const Csc& a, const Csc& b, const SummaConfig& config) {
  if (a.cols() != b.rows())
    throw std::invalid_argument("summa: inner dimensions disagree");
  if (config.grid < 1) throw std::invalid_argument("summa: grid must be >= 1");
  if (config.reduce_method == core::Method::Heap &&
      !config.sort_local_products)
    throw std::invalid_argument(
        "summa: heap reduction requires sorted local products");
  const int g = config.grid;

  // Block boundaries: A is partitioned g x g over (rows x inner), B over
  // (inner x cols). C inherits A's row and B's column partitions.
  const auto a_rows = partition_bounds(a.rows(), g);
  const auto inner = partition_bounds(a.cols(), g);
  const auto b_cols = partition_bounds(b.cols(), g);

  spgemm::SpgemmOptions mult_opts;
  mult_opts.accumulator = config.local_accumulator;
  mult_opts.sorted_output = config.sort_local_products;
  mult_opts.threads = config.threads;

  core::Options reduce_opts;
  reduce_opts.method = config.reduce_method;
  reduce_opts.inputs_sorted = config.sort_local_products;
  reduce_opts.sorted_output = true;
  reduce_opts.threads = config.threads;

  SummaResult result;
  std::vector<std::vector<Csc>> c_blocks(
      static_cast<std::size_t>(g), std::vector<Csc>(static_cast<std::size_t>(g)));

  // One simulated process at a time; each process's stage products are
  // produced by local SpGEMMs and reduced with SpKAdd. Wall time of the two
  // phases is accumulated across processes, exactly the quantity Fig. 6
  // stacks per pipeline.
  for (int pi = 0; pi < g; ++pi) {
    for (int pj = 0; pj < g; ++pj) {
      std::vector<Csc> stage_products;
      stage_products.reserve(static_cast<std::size_t>(g));
      util::WallTimer mult_timer;
      for (int s = 0; s < g; ++s) {
        const Csc a_blk = extract_block(a, a_rows[static_cast<std::size_t>(pi)],
                                        a_rows[static_cast<std::size_t>(pi) + 1],
                                        inner[static_cast<std::size_t>(s)],
                                        inner[static_cast<std::size_t>(s) + 1]);
        const Csc b_blk = extract_block(b, inner[static_cast<std::size_t>(s)],
                                        inner[static_cast<std::size_t>(s) + 1],
                                        b_cols[static_cast<std::size_t>(pj)],
                                        b_cols[static_cast<std::size_t>(pj) + 1]);
        stage_products.push_back(spgemm::multiply(a_blk, b_blk, mult_opts));
      }
      result.multiply_seconds += mult_timer.seconds();
      for (const Csc& p : stage_products) result.intermediate_nnz += p.nnz();

      util::WallTimer add_timer;
      c_blocks[static_cast<std::size_t>(pi)][static_cast<std::size_t>(pj)] =
          core::spkadd(stage_products, reduce_opts);
      result.spkadd_seconds += add_timer.seconds();
    }
  }

  result.c = assemble_blocks(c_blocks, a_rows, b_cols);
  result.compression_factor =
      result.c.nnz() == 0
          ? 1.0
          : static_cast<double>(result.intermediate_nnz) /
                static_cast<double>(result.c.nnz());
  return result;
}

}  // namespace spkadd::summa
