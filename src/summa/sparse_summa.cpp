#include "summa/sparse_summa.hpp"

#include "util/omp_compat.hpp"

#include <algorithm>
#include <stdexcept>

#include "core/accumulator.hpp"
#include "core/spkadd.hpp"
#include "matrix/block.hpp"
#include "util/thread_control.hpp"
#include "util/timer.hpp"

namespace spkadd::summa {

using Csc = CscMatrix<std::int32_t, double>;

SummaConfig heap_pipeline(int grid) {
  SummaConfig c;
  c.grid = grid;
  c.local_accumulator = spgemm::Accumulator::Heap;
  c.sort_local_products = true;
  c.reduce_method = core::Method::Heap;
  return c;
}

SummaConfig sorted_hash_pipeline(int grid) {
  SummaConfig c;
  c.grid = grid;
  c.local_accumulator = spgemm::Accumulator::Hash;
  c.sort_local_products = true;
  c.reduce_method = core::Method::Hash;
  return c;
}

SummaConfig unsorted_hash_pipeline(int grid) {
  SummaConfig c;
  c.grid = grid;
  c.local_accumulator = spgemm::Accumulator::Hash;
  c.sort_local_products = false;  // the 20% local-multiply saving of Fig. 6
  c.reduce_method = core::Method::Hash;
  return c;
}

SummaConfig hybrid_pipeline(int grid) {
  SummaConfig c;
  c.grid = grid;
  c.local_accumulator = spgemm::Accumulator::Hash;
  c.sort_local_products = true;  // lets hybrid chunks use the heap corner
  c.reduce_method = core::Method::Hybrid;
  return c;
}

Csc assemble_blocks(const std::vector<std::vector<Csc>>& blocks,
                    const std::vector<std::int32_t>& row_bounds,
                    const std::vector<std::int32_t>& col_bounds) {
  const int g_rows = static_cast<int>(row_bounds.size()) - 1;
  const int g_cols = static_cast<int>(col_bounds.size()) - 1;
  const std::int32_t rows = row_bounds.back();
  const std::int32_t cols = col_bounds.back();

  std::vector<std::int32_t> counts(static_cast<std::size_t>(cols), 0);
  for (int bi = 0; bi < g_rows; ++bi)
    for (int bj = 0; bj < g_cols; ++bj) {
      const Csc& blk = blocks[static_cast<std::size_t>(bi)]
                             [static_cast<std::size_t>(bj)];
      const std::int32_t c0 = col_bounds[static_cast<std::size_t>(bj)];
      for (std::int32_t j = 0; j < blk.cols(); ++j)
        counts[static_cast<std::size_t>(c0 + j)] +=
            static_cast<std::int32_t>(blk.col_nnz(j));
    }
  std::vector<std::int32_t> col_ptr =
      util::counts_to_offsets(std::span<const std::int32_t>(counts));
  std::vector<std::int32_t> cursor(col_ptr.begin(), col_ptr.end() - 1);
  std::vector<std::int32_t> row_idx(static_cast<std::size_t>(col_ptr.back()));
  std::vector<double> values(static_cast<std::size_t>(col_ptr.back()));

  // Block rows are visited in ascending row order per global column, so the
  // assembled columns stay sorted when block columns are sorted.
  for (int bj = 0; bj < g_cols; ++bj) {
    const std::int32_t c0 = col_bounds[static_cast<std::size_t>(bj)];
    for (int bi = 0; bi < g_rows; ++bi) {
      const Csc& blk = blocks[static_cast<std::size_t>(bi)]
                             [static_cast<std::size_t>(bj)];
      const std::int32_t r0 = row_bounds[static_cast<std::size_t>(bi)];
      for (std::int32_t j = 0; j < blk.cols(); ++j) {
        const auto col = blk.column(j);
        auto& cur = cursor[static_cast<std::size_t>(c0 + j)];
        for (std::size_t i = 0; i < col.nnz(); ++i) {
          row_idx[static_cast<std::size_t>(cur)] = col.rows[i] + r0;
          values[static_cast<std::size_t>(cur)] = col.vals[i];
          ++cur;
        }
      }
    }
  }
  return Csc(rows, cols, std::move(col_ptr), std::move(row_idx),
             std::move(values));
}

namespace {

/// Everything the per-schedule runners share.
struct Plan {
  const Csc& a;
  const Csc& b;
  const SummaConfig& config;
  std::vector<std::int32_t> a_rows;
  std::vector<std::int32_t> inner;
  std::vector<std::int32_t> b_cols;
  spgemm::SpgemmOptions mult_opts;
  core::Options reduce_opts;
};

/// Buffered (pre-streaming) schedule: all g stage products materialized at
/// each process, then one one-shot SpKAdd. O(g * nnz) peak intermediates —
/// the baseline the streaming pipeline is measured against.
void run_buffered(const Plan& plan, std::vector<std::vector<Csc>>& c_blocks,
                  SummaResult& result) {
  const int g = plan.config.grid;
  for (int pi = 0; pi < g; ++pi) {
    for (int pj = 0; pj < g; ++pj) {
      std::vector<Csc> stage_products;
      stage_products.reserve(static_cast<std::size_t>(g));
      for (int s = 0; s < g; ++s) {
        util::WallTimer mult_timer;
        const Csc a_blk =
            extract_block(plan.a, plan.a_rows[static_cast<std::size_t>(pi)],
                          plan.a_rows[static_cast<std::size_t>(pi) + 1],
                          plan.inner[static_cast<std::size_t>(s)],
                          plan.inner[static_cast<std::size_t>(s) + 1]);
        const Csc b_blk =
            extract_block(plan.b, plan.inner[static_cast<std::size_t>(s)],
                          plan.inner[static_cast<std::size_t>(s) + 1],
                          plan.b_cols[static_cast<std::size_t>(pj)],
                          plan.b_cols[static_cast<std::size_t>(pj) + 1]);
        stage_products.push_back(
            spgemm::multiply(a_blk, b_blk, plan.mult_opts));
        result.stage_multiply_seconds[static_cast<std::size_t>(s)] +=
            mult_timer.seconds();
      }
      std::size_t live_nnz = 0;
      for (const Csc& p : stage_products) {
        live_nnz += p.nnz();
        result.max_stage_nnz = std::max(result.max_stage_nnz, p.nnz());
      }
      result.intermediate_nnz += live_nnz;
      result.peak_intermediate_nnz =
          std::max(result.peak_intermediate_nnz, live_nnz);

      util::WallTimer add_timer;
      c_blocks[static_cast<std::size_t>(pi)][static_cast<std::size_t>(pj)] =
          core::spkadd(stage_products, plan.reduce_opts);
      result.stage_spkadd_seconds[static_cast<std::size_t>(g) - 1] +=
          add_timer.seconds();
    }
  }
}

/// Streaming schedule: the g x g process loop runs OpenMP-parallel; each
/// worker thread owns one core::Accumulator (reshaped per process, its
/// Runtime scratch persisting across every stage, fold, and process it
/// serves) and emits each stage product in place into an accumulator-owned
/// staging buffer — no stage product is ever copied, and at most
/// stream_window of them are live per process.
void run_streaming(const Plan& plan, std::vector<std::vector<Csc>>& c_blocks,
                   SummaResult& result) {
  const int g = plan.config.grid;
  const int outer = plan.config.threads > 0 ? plan.config.threads
                                            : util::current_max_threads();
  // Inside the process-parallel region the per-process kernels run on the
  // (single-threaded) nested team; pin their scratch pools to one slot.
  spgemm::SpgemmOptions mult_opts = plan.mult_opts;
  core::Options reduce_opts = plan.reduce_opts;
  mult_opts.threads = 1;
  reduce_opts.threads = 1;

#pragma omp parallel num_threads(outer)
  {
    core::Accumulator<> acc(
        0, 0, reduce_opts,
        static_cast<std::size_t>(plan.config.stream_window));
    std::vector<double> mult_s(static_cast<std::size_t>(g), 0.0);
    std::vector<double> add_s(static_cast<std::size_t>(g), 0.0);
    std::size_t inter_nnz = 0;
    std::size_t max_stage = 0;

#pragma omp for collapse(2) schedule(dynamic, 1)
    for (int pi = 0; pi < g; ++pi) {
      for (int pj = 0; pj < g; ++pj) {
        acc.reshape(plan.a_rows[static_cast<std::size_t>(pi) + 1] -
                        plan.a_rows[static_cast<std::size_t>(pi)],
                    plan.b_cols[static_cast<std::size_t>(pj) + 1] -
                        plan.b_cols[static_cast<std::size_t>(pj)]);
        for (int s = 0; s < g; ++s) {
          util::WallTimer mult_timer;
          const Csc a_blk =
              extract_block(plan.a, plan.a_rows[static_cast<std::size_t>(pi)],
                            plan.a_rows[static_cast<std::size_t>(pi) + 1],
                            plan.inner[static_cast<std::size_t>(s)],
                            plan.inner[static_cast<std::size_t>(s) + 1]);
          const Csc b_blk =
              extract_block(plan.b, plan.inner[static_cast<std::size_t>(s)],
                            plan.inner[static_cast<std::size_t>(s) + 1],
                            plan.b_cols[static_cast<std::size_t>(pj)],
                            plan.b_cols[static_cast<std::size_t>(pj) + 1]);
          Csc& stage = acc.stage_buffer();
          spgemm::multiply_into(a_blk, b_blk, mult_opts, acc.runtime(),
                                stage);
          mult_s[static_cast<std::size_t>(s)] += mult_timer.seconds();
          inter_nnz += stage.nnz();
          max_stage = std::max(max_stage, stage.nnz());

          util::WallTimer add_timer;
          acc.commit_staged();  // folds every stream_window stage products
          add_s[static_cast<std::size_t>(s)] += add_timer.seconds();
        }
        util::WallTimer fin_timer;
        c_blocks[static_cast<std::size_t>(pi)][static_cast<std::size_t>(pj)] =
            acc.finalize();
        add_s[static_cast<std::size_t>(g) - 1] += fin_timer.seconds();
      }
    }

#pragma omp critical(spkadd_summa_reduce_result)
    {
      for (int s = 0; s < g; ++s) {
        result.stage_multiply_seconds[static_cast<std::size_t>(s)] +=
            mult_s[static_cast<std::size_t>(s)];
        result.stage_spkadd_seconds[static_cast<std::size_t>(s)] +=
            add_s[static_cast<std::size_t>(s)];
      }
      result.intermediate_nnz += inter_nnz;
      result.max_stage_nnz = std::max(result.max_stage_nnz, max_stage);
      result.peak_intermediate_nnz = std::max(
          result.peak_intermediate_nnz, acc.stats().peak_staged_nnz);
    }
  }
}

}  // namespace

SummaResult multiply(const Csc& a, const Csc& b, const SummaConfig& config) {
  if (a.cols() != b.rows())
    throw std::invalid_argument("summa: inner dimensions disagree");
  if (config.grid < 1) throw std::invalid_argument("summa: grid must be >= 1");
  if (config.stream_window < 1)
    throw std::invalid_argument("summa: stream_window must be >= 1");
  if (config.reduce_method == core::Method::Heap &&
      !config.sort_local_products)
    throw std::invalid_argument(
        "summa: heap reduction requires sorted local products");
  // Checked up front (not per block inside the workers): an exception from
  // the local multiply's own guard would escape an OpenMP structured block
  // and terminate instead of propagating.
  if (config.local_accumulator == spgemm::Accumulator::Heap && !a.is_sorted())
    throw std::invalid_argument(
        "summa: heap local multiply requires sorted columns of A");
  const int g = config.grid;

  // Block boundaries: A is partitioned g x g over (rows x inner), B over
  // (inner x cols). C inherits A's row and B's column partitions.
  Plan plan{a,
            b,
            config,
            partition_bounds(a.rows(), g),
            partition_bounds(a.cols(), g),
            partition_bounds(b.cols(), g),
            {},
            {}};
  plan.mult_opts.accumulator = config.local_accumulator;
  plan.mult_opts.sorted_output = config.sort_local_products;
  plan.mult_opts.threads = config.threads;
  plan.reduce_opts.method = config.reduce_method;
  plan.reduce_opts.inputs_sorted = config.sort_local_products;
  plan.reduce_opts.sorted_output = true;
  plan.reduce_opts.threads = config.threads;

  SummaResult result;
  result.stage_multiply_seconds.assign(static_cast<std::size_t>(g), 0.0);
  result.stage_spkadd_seconds.assign(static_cast<std::size_t>(g), 0.0);
  // Built row by row: the (vector, prototype) constructor would *copy* g*g
  // default matrices, tripping the zero-copy pin on the streaming path.
  std::vector<std::vector<Csc>> c_blocks(static_cast<std::size_t>(g));
  for (auto& row : c_blocks) row.resize(static_cast<std::size_t>(g));

  // Wall time of the two phases is accumulated across processes (and, when
  // streaming, across worker threads), exactly the quantity Fig. 6 stacks
  // per pipeline.
  if (config.streaming)
    run_streaming(plan, c_blocks, result);
  else
    run_buffered(plan, c_blocks, result);
  for (double s : result.stage_multiply_seconds) result.multiply_seconds += s;
  for (double s : result.stage_spkadd_seconds) result.spkadd_seconds += s;

  result.c = assemble_blocks(c_blocks, plan.a_rows, plan.b_cols);
  result.compression_factor =
      result.c.nnz() == 0
          ? 1.0
          : static_cast<double>(result.intermediate_nnz) /
                static_cast<double>(result.c.nnz());
  return result;
}

}  // namespace spkadd::summa
