// Simulated distributed sparse SUMMA (stationary-C) — the paper's Fig. 5
// use case and the Fig. 6 experiment.
//
// The real system runs on an MPI process grid (CombBLAS on Cori); Fig. 6
// however reports *computation only* ("we show the runtime of both
// computational steps by excluding the communication costs"), i.e. the sum
// over stages of the local SpGEMM time plus the final SpKAdd reduction
// time. Those kernels are identical in shared memory, so this module runs
// the same schedule in-process:
//
//   * A and B are partitioned over a g x g logical grid by row/col ranges;
//   * stage s broadcasts A(:, s-blocks) along grid rows and B(s-blocks, :)
//     along grid columns (a no-op here — blocks are simply referenced);
//   * process (i, j) computes the stage product A_is * B_sj locally;
//   * the per-process stage products are reduced with SpKAdd — the
//     operation this library exists for. k == g.
//
// Two schedules implement that reduction:
//   * Streaming (default) — each process feeds every stage product straight
//     into a persistent core::Accumulator (emitted in place into an
//     accumulator-owned staging buffer, zero copies), which folds every
//     `stream_window` products into the running block sum. Peak live
//     intermediates per process drop from g stage products to at most
//     stream_window — the paper's §V memory-constrained extension applied
//     to its own headline application. The g x g process loop runs
//     OpenMP-parallel, one accumulator (and thus one persistent Runtime of
//     per-thread scratch) per worker thread, reshaped across processes.
//   * Buffered — the pre-streaming schedule: materialize all g stage
//     products, then one-shot SpKAdd. Kept as the comparison baseline;
//     produces the bit-identical C (all SpKAdd folds accumulate strictly
//     left to right, so the streaming fold chain is the same FP reduction).
//
// The three Fig. 6 pipelines map to configurations:
//   Heap          — sorted local multiplies + Heap SpKAdd (CombBLAS legacy)
//   Sorted Hash   — sorted local multiplies + Hash SpKAdd
//   Unsorted Hash — UNSORTED local multiplies + Hash SpKAdd (hash needs no
//                   sorted inputs, so the local multiply skips its sort)
#pragma once

#include <cstdint>
#include <vector>

#include "core/options.hpp"
#include "matrix/csc.hpp"
#include "spgemm/local_spgemm.hpp"

namespace spkadd::summa {

struct SummaConfig {
  int grid = 4;  ///< g: the process grid is g x g and k = g stages
  spgemm::Accumulator local_accumulator = spgemm::Accumulator::Hash;
  /// Sort the columns of each stage product. Must be true when
  /// reduce_method is Heap (heap SpKAdd needs sorted inputs).
  bool sort_local_products = true;
  core::Method reduce_method = core::Method::Hash;
  /// Streaming mode: worker threads for the process-parallel g x g loop
  /// (each simulated process runs its kernels single-threaded). Buffered
  /// mode: threads per simulated process. 0 = omp default.
  int threads = 0;
  /// Streaming (default) vs buffered schedule; see the header comment.
  bool streaming = true;
  /// Streaming only: stage products staged per process before a fold into
  /// the running sum — the §V memory bound. Must be >= 1.
  int stream_window = 2;
};

/// Named presets matching the bars of Fig. 6.
SummaConfig heap_pipeline(int grid);
SummaConfig sorted_hash_pipeline(int grid);
SummaConfig unsorted_hash_pipeline(int grid);
/// Per-chunk hybrid reduction (Method::Hybrid): each stage-product fold
/// picks its kernel per nnz-balanced column chunk, so skewed blocks stop
/// forcing one whole-matrix method. Bit-identical to the single-kernel
/// pipelines (every fold is a strict left fold).
SummaConfig hybrid_pipeline(int grid);

struct SummaResult {
  CscMatrix<std::int32_t, double> c;  ///< assembled global product
  double multiply_seconds = 0;        ///< total local-SpGEMM time
  double spkadd_seconds = 0;          ///< total SpKAdd reduction time
  std::size_t intermediate_nnz = 0;   ///< sum nnz of all stage products
  double compression_factor = 0;      ///< intermediate nnz / nnz(C)
  /// Max total nnz of stage products simultaneously live at any simulated
  /// process: at most stream_window products' worth when streaming, all g
  /// when buffered — the memory bound the streaming pipeline exists for.
  std::size_t peak_intermediate_nnz = 0;
  std::size_t max_stage_nnz = 0;  ///< largest single stage product
  /// Per-stage phase times, summed over processes (size g). Streaming
  /// charges each fold to the stage whose commit triggered it and the
  /// final fold to stage g-1; buffered charges its one-shot reduction to
  /// stage g-1.
  std::vector<double> stage_multiply_seconds;
  std::vector<double> stage_spkadd_seconds;
};

/// Run the simulated SUMMA schedule; returns assembled C plus the two
/// computational phase times of Fig. 6.
SummaResult multiply(const CscMatrix<std::int32_t, double>& a,
                     const CscMatrix<std::int32_t, double>& b,
                     const SummaConfig& config);

/// Reassemble a g x g grid of re-based blocks into one global matrix
/// (inverse of the block partition). Exposed for tests.
CscMatrix<std::int32_t, double> assemble_blocks(
    const std::vector<std::vector<CscMatrix<std::int32_t, double>>>& blocks,
    const std::vector<std::int32_t>& row_bounds,
    const std::vector<std::int32_t>& col_bounds);

}  // namespace spkadd::summa
