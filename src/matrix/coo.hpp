// Coordinate-format matrix: an unordered list of (row, col, value) triples.
//
// COO is the natural output of the R-MAT generator and the Matrix Market
// reader; `compress()` + `to_csc()` turn it into the canonical CSC form used
// by the SpKAdd kernels.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "matrix/csc.hpp"
#include "util/prefix_sum.hpp"

namespace spkadd {

template <class IndexT = std::int32_t, class ValueT = double>
class CooMatrix {
 public:
  using index_type = IndexT;
  using value_type = ValueT;

  struct Entry {
    IndexT row;
    IndexT col;
    ValueT val;
    friend bool operator==(const Entry&, const Entry&) = default;
  };

  CooMatrix() = default;
  CooMatrix(IndexT rows, IndexT cols) : rows_(rows), cols_(cols) {
    if (rows < 0 || cols < 0)
      throw std::invalid_argument("CooMatrix: negative dimension");
  }

  [[nodiscard]] IndexT rows() const { return rows_; }
  [[nodiscard]] IndexT cols() const { return cols_; }
  [[nodiscard]] std::size_t nnz() const { return entries_.size(); }

  [[nodiscard]] const std::vector<Entry>& entries() const { return entries_; }
  [[nodiscard]] std::vector<Entry>& entries() { return entries_; }

  void reserve(std::size_t n) { entries_.reserve(n); }

  /// Append a triple; duplicates allowed until compress().
  void push(IndexT r, IndexT c, ValueT v) {
    if (r < 0 || r >= rows_ || c < 0 || c >= cols_)
      throw std::out_of_range("CooMatrix::push: index out of range");
    entries_.push_back(Entry{r, c, v});
  }

  /// Sort triples by (col, row) and sum duplicates — the canonicalization
  /// both the generator (R-MAT emits repeated edges) and MM reader need.
  void compress() {
    std::sort(entries_.begin(), entries_.end(),
              [](const Entry& a, const Entry& b) {
                return a.col != b.col ? a.col < b.col : a.row < b.row;
              });
    std::size_t w = 0;
    for (std::size_t i = 0; i < entries_.size(); ++i) {
      if (w > 0 && entries_[w - 1].row == entries_[i].row &&
          entries_[w - 1].col == entries_[i].col) {
        entries_[w - 1].val += entries_[i].val;
      } else {
        entries_[w++] = entries_[i];
      }
    }
    entries_.resize(w);
  }

  /// Convert to CSC. Requires compress() (or entries already unique and
  /// (col,row)-sorted) for a canonical sorted result; otherwise the columns
  /// come out unsorted but still valid.
  [[nodiscard]] CscMatrix<IndexT, ValueT> to_csc() const {
    std::vector<IndexT> counts(static_cast<std::size_t>(cols_), 0);
    for (const Entry& e : entries_)
      ++counts[static_cast<std::size_t>(e.col)];
    std::vector<IndexT> col_ptr =
        util::counts_to_offsets(std::span<const IndexT>(counts));
    std::vector<IndexT> cursor(col_ptr.begin(), col_ptr.end() - 1);
    std::vector<IndexT> row_idx(entries_.size());
    std::vector<ValueT> values(entries_.size());
    for (const Entry& e : entries_) {
      auto& cur = cursor[static_cast<std::size_t>(e.col)];
      row_idx[static_cast<std::size_t>(cur)] = e.row;
      values[static_cast<std::size_t>(cur)] = e.val;
      ++cur;
    }
    return CscMatrix<IndexT, ValueT>(rows_, cols_, std::move(col_ptr),
                                     std::move(row_idx), std::move(values));
  }

  /// Rebuild from CSC (used by I/O round-trips).
  static CooMatrix from_csc(const CscMatrix<IndexT, ValueT>& m) {
    CooMatrix out(m.rows(), m.cols());
    out.reserve(m.nnz());
    for (IndexT j = 0; j < m.cols(); ++j) {
      const auto col = m.column(j);
      for (std::size_t i = 0; i < col.nnz(); ++i)
        out.entries_.push_back(Entry{col.rows[i], j, col.vals[i]});
    }
    return out;
  }

 private:
  IndexT rows_ = 0;
  IndexT cols_ = 0;
  std::vector<Entry> entries_;
};

}  // namespace spkadd
