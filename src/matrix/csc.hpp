// Compressed Sparse Column matrix — the primary container of the library.
//
// The paper assumes all operands of SpKAdd are CSC ("stores nonzero entries
// column by column", §II-A); every algorithm then adds the jth columns of all
// inputs independently, which is what makes the column-parallel strategy
// synchronization-free.
//
// Conventions:
//   * col_ptr has size cols()+1, col_ptr[0] == 0, col_ptr[cols()] == nnz().
//   * Columns are "sorted" when row indices are strictly ascending within
//     each column (no duplicates). Hash/SPA kernels tolerate unsorted
//     columns; merge/heap kernels require sorted ones (paper Table I).
//   * Explicit numeric zeros are kept: sparsity is structural.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "matrix/column_view.hpp"

namespace spkadd {

namespace debug {

/// Process-wide count of CscMatrix deep copies (any index/value type).
/// The streaming accumulator and batched SpKAdd promise zero per-batch
/// input-matrix copies; tests pin that guarantee by differencing this
/// counter around a call. Relaxed atomics: the counter is a tally, not a
/// synchronization point.
inline std::atomic<std::uint64_t>& csc_copy_counter() {
  static std::atomic<std::uint64_t> count{0};
  return count;
}

[[nodiscard]] inline std::uint64_t csc_copies() {
  return csc_copy_counter().load(std::memory_order_relaxed);
}

}  // namespace debug

template <class IndexT = std::int32_t, class ValueT = double>
class CscMatrix {
 public:
  using index_type = IndexT;
  using value_type = ValueT;

  /// Empty 0x0 matrix.
  CscMatrix() : col_ptr_(1, 0) {}

  /// rows x cols matrix with no stored entries.
  CscMatrix(IndexT rows, IndexT cols)
      : rows_(rows), cols_(cols),
        col_ptr_(static_cast<std::size_t>(cols) + 1, 0) {
    if constexpr (std::is_signed_v<IndexT>) {
      if (rows < 0 || cols < 0)
        throw std::invalid_argument("CscMatrix: negative dimension");
    }
  }

  /// Adopt pre-built CSC arrays. `col_ptr.size() == cols+1`,
  /// `row_idx.size() == values.size() == col_ptr.back()`.
  CscMatrix(IndexT rows, IndexT cols, std::vector<IndexT> col_ptr,
            std::vector<IndexT> row_idx, std::vector<ValueT> values)
      : rows_(rows), cols_(cols), col_ptr_(std::move(col_ptr)),
        row_idx_(std::move(row_idx)), values_(std::move(values)) {
    if constexpr (std::is_signed_v<IndexT>) {
      if (rows < 0 || cols < 0)
        throw std::invalid_argument("CscMatrix: negative dimension");
    }
    if (col_ptr_.size() != static_cast<std::size_t>(cols) + 1)
      throw std::invalid_argument("CscMatrix: col_ptr size mismatch");
    if (col_ptr_.front() != 0)
      throw std::invalid_argument("CscMatrix: col_ptr[0] != 0");
    const auto nz = static_cast<std::size_t>(col_ptr_.back());
    if (row_idx_.size() != nz || values_.size() != nz)
      throw std::invalid_argument("CscMatrix: array length != col_ptr.back()");
  }

  // Copies are counted (see debug::csc_copy_counter) so tests can assert
  // the zero-copy guarantees of the streaming paths; moves stay free.
  CscMatrix(const CscMatrix& o)
      : rows_(o.rows_), cols_(o.cols_), col_ptr_(o.col_ptr_),
        row_idx_(o.row_idx_), values_(o.values_) {
    debug::csc_copy_counter().fetch_add(1, std::memory_order_relaxed);
  }
  CscMatrix& operator=(const CscMatrix& o) {
    if (this != &o) {
      rows_ = o.rows_;
      cols_ = o.cols_;
      col_ptr_ = o.col_ptr_;
      row_idx_ = o.row_idx_;
      values_ = o.values_;
      debug::csc_copy_counter().fetch_add(1, std::memory_order_relaxed);
    }
    return *this;
  }
  CscMatrix(CscMatrix&&) noexcept = default;
  CscMatrix& operator=(CscMatrix&&) noexcept = default;

  [[nodiscard]] IndexT rows() const { return rows_; }
  [[nodiscard]] IndexT cols() const { return cols_; }
  [[nodiscard]] std::size_t nnz() const {
    return static_cast<std::size_t>(col_ptr_.back());
  }
  [[nodiscard]] bool empty() const { return nnz() == 0; }

  [[nodiscard]] std::span<const IndexT> col_ptr() const { return col_ptr_; }
  [[nodiscard]] std::span<const IndexT> row_idx() const { return row_idx_; }
  [[nodiscard]] std::span<const ValueT> values() const { return values_; }

  [[nodiscard]] std::span<IndexT> mutable_col_ptr() { return col_ptr_; }
  [[nodiscard]] std::span<IndexT> mutable_row_idx() { return row_idx_; }
  [[nodiscard]] std::span<ValueT> mutable_values() { return values_; }

  /// Number of stored entries in column j.
  [[nodiscard]] std::size_t col_nnz(IndexT j) const {
    return static_cast<std::size_t>(col_ptr_[static_cast<std::size_t>(j) + 1] -
                                    col_ptr_[static_cast<std::size_t>(j)]);
  }

  /// Non-owning view of column j's (row, value) tuples.
  [[nodiscard]] ColumnView<IndexT, ValueT> column(IndexT j) const {
    const auto lo =
        static_cast<std::size_t>(col_ptr_[static_cast<std::size_t>(j)]);
    const auto len = col_nnz(j);
    return ColumnView<IndexT, ValueT>{
        std::span<const IndexT>(row_idx_).subspan(lo, len),
        std::span<const ValueT>(values_).subspan(lo, len)};
  }

  /// Reserve storage and set the column-pointer array from per-column
  /// counts; used by numeric phases after a symbolic pass.
  void set_structure(std::vector<IndexT> col_ptr) {
    if (col_ptr.size() != static_cast<std::size_t>(cols_) + 1)
      throw std::invalid_argument("set_structure: col_ptr size mismatch");
    col_ptr_ = std::move(col_ptr);
    row_idx_.resize(static_cast<std::size_t>(col_ptr_.back()));
    values_.resize(static_cast<std::size_t>(col_ptr_.back()));
  }

  /// True when every column has strictly ascending row indices.
  [[nodiscard]] bool is_sorted() const {
    for (IndexT j = 0; j < cols_; ++j)
      if (!column(j).is_sorted_strict()) return false;
    return true;
  }

  /// Sort every column by row index (pairwise with its value). Duplicate
  /// row indices are NOT merged — use CooMatrix::compress for that.
  void sort_columns() {
    std::vector<std::pair<IndexT, ValueT>> buf;
    for (IndexT j = 0; j < cols_; ++j) {
      const auto lo =
          static_cast<std::size_t>(col_ptr_[static_cast<std::size_t>(j)]);
      const auto hi =
          static_cast<std::size_t>(col_ptr_[static_cast<std::size_t>(j) + 1]);
      if (hi - lo <= 1) continue;
      bool sorted = true;
      for (std::size_t i = lo + 1; i < hi; ++i)
        if (row_idx_[i] < row_idx_[i - 1]) { sorted = false; break; }
      if (sorted) continue;
      buf.clear();
      buf.reserve(hi - lo);
      for (std::size_t i = lo; i < hi; ++i)
        buf.emplace_back(row_idx_[i], values_[i]);
      std::sort(buf.begin(), buf.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      for (std::size_t i = lo; i < hi; ++i) {
        row_idx_[i] = buf[i - lo].first;
        values_[i] = buf[i - lo].second;
      }
    }
  }

  /// Value at (r, j), or 0 when not stored. O(log nnz(col)) on sorted
  /// columns, O(nnz(col)) otherwise. Convenience for tests/examples.
  [[nodiscard]] ValueT at(IndexT r, IndexT j) const {
    const auto col = column(j);
    if (col.is_sorted_strict()) {
      auto it = std::lower_bound(col.rows.begin(), col.rows.end(), r);
      if (it != col.rows.end() && *it == r)
        return col.vals[static_cast<std::size_t>(it - col.rows.begin())];
      return ValueT{};
    }
    ValueT sum{};
    for (std::size_t i = 0; i < col.nnz(); ++i)
      if (col.rows[i] == r) sum += col.vals[i];
    return sum;
  }

  /// Exact structural + numeric equality.
  friend bool operator==(const CscMatrix& a, const CscMatrix& b) {
    return a.rows_ == b.rows_ && a.cols_ == b.cols_ &&
           a.col_ptr_ == b.col_ptr_ && a.row_idx_ == b.row_idx_ &&
           a.values_ == b.values_;
  }

  /// Bytes of heap storage held (used by memory-footprint reporting).
  [[nodiscard]] std::size_t storage_bytes() const {
    return col_ptr_.capacity() * sizeof(IndexT) +
           row_idx_.capacity() * sizeof(IndexT) +
           values_.capacity() * sizeof(ValueT);
  }

 private:
  IndexT rows_ = 0;
  IndexT cols_ = 0;
  std::vector<IndexT> col_ptr_;
  std::vector<IndexT> row_idx_;
  std::vector<ValueT> values_;
};

}  // namespace spkadd
