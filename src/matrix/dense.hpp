// Column-major dense matrix. Serves as the correctness oracle in tests
// (every SpKAdd / SpGEMM result is checked against a dense accumulation)
// and as a plain dense container elsewhere — e.g. density sweeps in the
// benches. Storage is O(rows * cols); size accordingly.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <vector>

#include "matrix/csc.hpp"

namespace spkadd {

template <class ValueT = double>
class DenseMatrix {
 public:
  DenseMatrix(std::int64_t rows, std::int64_t cols)
      : rows_(rows), cols_(cols), data_(checked_size(rows, cols), ValueT{}) {}

  [[nodiscard]] std::int64_t rows() const { return rows_; }
  [[nodiscard]] std::int64_t cols() const { return cols_; }

  ValueT& operator()(std::int64_t r, std::int64_t c) {
    return data_[static_cast<std::size_t>(c * rows_ + r)];
  }
  const ValueT& operator()(std::int64_t r, std::int64_t c) const {
    return data_[static_cast<std::size_t>(c * rows_ + r)];
  }

  /// Accumulate a sparse matrix into this one (the SpKAdd oracle step).
  template <class IndexT>
  void accumulate(const CscMatrix<IndexT, ValueT>& m) {
    if (m.rows() != rows_ || m.cols() != cols_)
      throw std::invalid_argument("accumulate: shape mismatch");
    for (IndexT j = 0; j < m.cols(); ++j) {
      const auto col = m.column(j);
      for (std::size_t i = 0; i < col.nnz(); ++i)
        (*this)(col.rows[i], j) += col.vals[i];
    }
  }

  /// Dense-to-sparse conversion keeping entries where `keep(r, c)` is true.
  /// Default predicate keeps nonzero values; the SpKAdd tests instead pass
  /// the union-of-input-patterns predicate because the library keeps
  /// structural (possibly numerically zero) entries.
  template <class IndexT = std::int32_t, class Keep>
  [[nodiscard]] CscMatrix<IndexT, ValueT> to_csc(Keep&& keep) const {
    std::vector<IndexT> col_ptr(static_cast<std::size_t>(cols_) + 1, 0);
    std::vector<IndexT> row_idx;
    std::vector<ValueT> values;
    for (std::int64_t c = 0; c < cols_; ++c) {
      for (std::int64_t r = 0; r < rows_; ++r) {
        if (keep(r, c)) {
          row_idx.push_back(static_cast<IndexT>(r));
          values.push_back((*this)(r, c));
        }
      }
      col_ptr[static_cast<std::size_t>(c) + 1] =
          static_cast<IndexT>(row_idx.size());
    }
    return CscMatrix<IndexT, ValueT>(
        static_cast<IndexT>(rows_), static_cast<IndexT>(cols_),
        std::move(col_ptr), std::move(row_idx), std::move(values));
  }

 private:
  /// Validate dimensions BEFORE forming the product: rows * cols in
  /// std::int64_t can overflow (UB) or wrap through the size_t cast into a
  /// huge allocation; reject negatives first and multiply in an overflow-
  /// checked way.
  static std::size_t checked_size(std::int64_t rows, std::int64_t cols) {
    if (rows < 0 || cols < 0)
      throw std::invalid_argument("DenseMatrix: negative dimension");
    const auto r = static_cast<std::uint64_t>(rows);
    const auto c = static_cast<std::uint64_t>(cols);
    if (r != 0 && c > std::numeric_limits<std::uint64_t>::max() / r)
      throw std::invalid_argument("DenseMatrix: rows * cols overflows");
    const std::uint64_t n = r * c;
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(ValueT))
      throw std::invalid_argument("DenseMatrix: rows * cols overflows");
    return static_cast<std::size_t>(n);
  }

  std::int64_t rows_;
  std::int64_t cols_;
  std::vector<ValueT> data_;  // column-major
};

}  // namespace spkadd
