// Doubly Compressed Sparse Column (DCSC) — Buluç & Gilbert's hypersparse
// format. The paper notes (§II-A) that all SpKAdd algorithms apply to
// doubly-compressed formats, and the distributed SUMMA use case is exactly
// where DCSC matters: at large process grids each block holds far fewer
// nonzeros than columns (nnz << n), so CSC's O(n) column-pointer array
// dominates memory. DCSC stores pointers only for the columns that have
// nonzeros:
//
//   jc[nzc]      the nonempty column indices (ascending)
//   cp[nzc+1]    entry offsets per nonempty column
//   row_idx/values[nnz]  as in CSC
//
// SpKAdd consumes DCSC through the same ColumnView abstraction as CSC
// (empty columns simply produce empty views), so conversions here are all
// that is needed to run the whole algorithm family on hypersparse blocks.
#pragma once

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "matrix/column_view.hpp"
#include "matrix/csc.hpp"

namespace spkadd {

template <class IndexT = std::int32_t, class ValueT = double>
class DcscMatrix {
 public:
  using index_type = IndexT;
  using value_type = ValueT;

  DcscMatrix() : cp_(1, 0) {}

  DcscMatrix(IndexT rows, IndexT cols, std::vector<IndexT> jc,
             std::vector<IndexT> cp, std::vector<IndexT> row_idx,
             std::vector<ValueT> values)
      : rows_(rows), cols_(cols), jc_(std::move(jc)), cp_(std::move(cp)),
        row_idx_(std::move(row_idx)), values_(std::move(values)) {
    if (rows < 0 || cols < 0)
      throw std::invalid_argument("DcscMatrix: negative dimension");
    if (cp_.size() != jc_.size() + 1 || cp_.front() != 0)
      throw std::invalid_argument("DcscMatrix: cp/jc size mismatch");
    const auto nz = static_cast<std::size_t>(cp_.back());
    if (row_idx_.size() != nz || values_.size() != nz)
      throw std::invalid_argument("DcscMatrix: array length != cp.back()");
    for (std::size_t i = 0; i < jc_.size(); ++i) {
      if (jc_[i] < 0 || jc_[i] >= cols)
        throw std::invalid_argument("DcscMatrix: column index out of range");
      if (i > 0 && jc_[i] <= jc_[i - 1])
        throw std::invalid_argument("DcscMatrix: jc not strictly ascending");
    }
  }

  [[nodiscard]] IndexT rows() const { return rows_; }
  [[nodiscard]] IndexT cols() const { return cols_; }
  [[nodiscard]] std::size_t nnz() const {
    return static_cast<std::size_t>(cp_.back());
  }
  /// Number of nonempty columns (the "nzc" of the format).
  [[nodiscard]] std::size_t nonempty_cols() const { return jc_.size(); }

  [[nodiscard]] std::span<const IndexT> jc() const { return jc_; }
  [[nodiscard]] std::span<const IndexT> cp() const { return cp_; }
  [[nodiscard]] std::span<const IndexT> row_idx() const { return row_idx_; }
  [[nodiscard]] std::span<const ValueT> values() const { return values_; }

  /// View of column j; empty when j holds no entries. O(log nzc) lookup.
  [[nodiscard]] ColumnView<IndexT, ValueT> column(IndexT j) const {
    auto it = std::lower_bound(jc_.begin(), jc_.end(), j);
    if (it == jc_.end() || *it != j) return {};
    const auto slot = static_cast<std::size_t>(it - jc_.begin());
    const auto lo = static_cast<std::size_t>(cp_[slot]);
    const auto len = static_cast<std::size_t>(cp_[slot + 1] - cp_[slot]);
    return ColumnView<IndexT, ValueT>{
        std::span<const IndexT>(row_idx_).subspan(lo, len),
        std::span<const ValueT>(values_).subspan(lo, len)};
  }

  /// Heap bytes held; compare with CscMatrix::storage_bytes() to see the
  /// hypersparse saving (no O(cols) pointer array).
  [[nodiscard]] std::size_t storage_bytes() const {
    return (jc_.capacity() + cp_.capacity() + row_idx_.capacity()) *
               sizeof(IndexT) +
           values_.capacity() * sizeof(ValueT);
  }

  friend bool operator==(const DcscMatrix& a, const DcscMatrix& b) = default;

 private:
  IndexT rows_ = 0;
  IndexT cols_ = 0;
  std::vector<IndexT> jc_;
  std::vector<IndexT> cp_;
  std::vector<IndexT> row_idx_;
  std::vector<ValueT> values_;
};

/// CSC -> DCSC: drop the pointers of empty columns. O(cols + nnz).
template <class IndexT, class ValueT>
[[nodiscard]] DcscMatrix<IndexT, ValueT> csc_to_dcsc(
    const CscMatrix<IndexT, ValueT>& m) {
  std::vector<IndexT> jc;
  std::vector<IndexT> cp{0};
  for (IndexT j = 0; j < m.cols(); ++j) {
    const auto n = m.col_nnz(j);
    if (n == 0) continue;
    jc.push_back(j);
    cp.push_back(cp.back() + static_cast<IndexT>(n));
  }
  return DcscMatrix<IndexT, ValueT>(
      m.rows(), m.cols(), std::move(jc), std::move(cp),
      std::vector<IndexT>(m.row_idx().begin(), m.row_idx().end()),
      std::vector<ValueT>(m.values().begin(), m.values().end()));
}

/// DCSC -> CSC: re-expand the column-pointer array. O(cols + nnz).
template <class IndexT, class ValueT>
[[nodiscard]] CscMatrix<IndexT, ValueT> dcsc_to_csc(
    const DcscMatrix<IndexT, ValueT>& m) {
  std::vector<IndexT> col_ptr(static_cast<std::size_t>(m.cols()) + 1, 0);
  const auto jc = m.jc();
  const auto cp = m.cp();
  for (std::size_t s = 0; s < jc.size(); ++s)
    col_ptr[static_cast<std::size_t>(jc[s]) + 1] = cp[s + 1] - cp[s];
  for (std::size_t j = 0; j < static_cast<std::size_t>(m.cols()); ++j)
    col_ptr[j + 1] += col_ptr[j];
  return CscMatrix<IndexT, ValueT>(
      m.rows(), m.cols(), std::move(col_ptr),
      std::vector<IndexT>(m.row_idx().begin(), m.row_idx().end()),
      std::vector<ValueT>(m.values().begin(), m.values().end()));
}

}  // namespace spkadd
