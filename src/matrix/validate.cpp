#include "matrix/validate.hpp"

namespace spkadd {

std::string describe_range_error(long long col, long long row,
                                 long long rows) {
  return "column " + std::to_string(col) + ": row index " +
         std::to_string(row) + " out of range [0, " + std::to_string(rows) +
         ")";
}

std::string describe_order_error(long long col, long long prev,
                                 long long cur) {
  return "column " + std::to_string(col) + ": row indices not strictly " +
         "ascending (" + std::to_string(prev) + " then " +
         std::to_string(cur) + ")";
}

}  // namespace spkadd
