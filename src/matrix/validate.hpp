// Structural validation and comparison helpers for CSC matrices.
//
// Tests use `validate()` to assert every algorithm emits a well-formed
// matrix, and `approx_equal()` to compare against the dense reference sum
// (floating-point addition order differs between algorithms, so exact
// equality of values is not guaranteed).
#pragma once

#include <cmath>
#include <limits>
#include <string>
#include <type_traits>

#include "matrix/csc.hpp"

namespace spkadd {

/// Result of a structural check; `ok()` or a human-readable reason.
struct ValidationResult {
  bool valid = true;
  std::string reason;
  static ValidationResult ok() { return {}; }
  static ValidationResult fail(std::string why) {
    return ValidationResult{false, std::move(why)};
  }
  explicit operator bool() const { return valid; }
};

/// Render "column 7: row index 12 out of range [0, 10)" style messages.
/// (Out-of-line so the templated checker below stays light.)
std::string describe_range_error(long long col, long long row, long long rows);
std::string describe_order_error(long long col, long long prev, long long cur);

/// True when the shape makes a row index collide with the hash kernels'
/// empty-slot sentinel IndexT(-1). The hash tables key on raw row indices
/// and never bound-check them, so at the maximum representable unsigned row
/// count the sentinel aliases the one-past-the-end index (the classic
/// off-by-one an upstream producer emits) and such an entry is silently
/// dropped or mis-accumulated instead of being caught. Those shapes are
/// rejected outright here and in detail::check_conformant. Signed index
/// types are safe: the sentinel is -1, never a legal index.
template <class IndexT>
[[nodiscard]] constexpr bool shape_hits_hash_sentinel(IndexT rows) {
  if constexpr (std::is_unsigned_v<IndexT>)
    return rows == std::numeric_limits<IndexT>::max();
  else
    return false;
}

/// Check CSC invariants: monotone col_ptr, in-range row indices, and — when
/// `require_sorted` — strictly ascending rows per column (no duplicates).
template <class IndexT, class ValueT>
[[nodiscard]] ValidationResult validate(const CscMatrix<IndexT, ValueT>& m,
                                        bool require_sorted = true) {
  if (shape_hits_hash_sentinel(m.rows()))
    return ValidationResult::fail(
        "row count reaches the hash empty-slot sentinel IndexT(-1); "
        "use a wider index type");
  const auto cp = m.col_ptr();
  for (std::size_t j = 0; j + 1 < cp.size(); ++j)
    if (cp[j + 1] < cp[j])
      return ValidationResult::fail("col_ptr not monotone at column " +
                                    std::to_string(j));
  for (IndexT j = 0; j < m.cols(); ++j) {
    const auto col = m.column(j);
    for (std::size_t i = 0; i < col.nnz(); ++i) {
      bool in_range = col.rows[i] < m.rows();
      if constexpr (std::is_signed_v<IndexT>)
        in_range = in_range && col.rows[i] >= 0;
      if (!in_range)
        return ValidationResult::fail(
            describe_range_error(j, col.rows[i], m.rows()));
      if (require_sorted && i > 0 && col.rows[i] <= col.rows[i - 1])
        return ValidationResult::fail(
            describe_order_error(j, col.rows[i - 1], col.rows[i]));
    }
  }
  return ValidationResult::ok();
}

/// Same sparsity pattern and values equal within `tol` (absolute+relative).
/// Requires both matrices in sorted canonical form.
template <class IndexT, class ValueT>
[[nodiscard]] bool approx_equal(const CscMatrix<IndexT, ValueT>& a,
                                const CscMatrix<IndexT, ValueT>& b,
                                double tol = 1e-9) {
  if (a.rows() != b.rows() || a.cols() != b.cols() || a.nnz() != b.nnz())
    return false;
  if (!std::equal(a.col_ptr().begin(), a.col_ptr().end(),
                  b.col_ptr().begin()))
    return false;
  if (!std::equal(a.row_idx().begin(), a.row_idx().end(),
                  b.row_idx().begin()))
    return false;
  const auto av = a.values();
  const auto bv = b.values();
  for (std::size_t i = 0; i < av.size(); ++i) {
    const double x = static_cast<double>(av[i]);
    const double y = static_cast<double>(bv[i]);
    const double scale = std::max({1.0, std::abs(x), std::abs(y)});
    if (std::abs(x - y) > tol * scale) return false;
  }
  return true;
}

/// Compression factor of an SpKAdd instance: sum(nnz inputs) / nnz(output)
/// (paper §II-A). cf == 1 means inputs are disjoint; large cf means heavy
/// overlap (e.g. Eukarya's 22.6).
template <class IndexT, class ValueT>
[[nodiscard]] double compression_factor(
    std::span<const CscMatrix<IndexT, ValueT>> inputs,
    const CscMatrix<IndexT, ValueT>& output) {
  std::size_t in_nnz = 0;
  for (const auto& a : inputs) in_nnz += a.nnz();
  return output.nnz() == 0
             ? 1.0
             : static_cast<double>(in_nnz) / static_cast<double>(output.nnz());
}

}  // namespace spkadd
