// Compressed Sparse Row matrix.
//
// The paper notes (§II-A) that all SpKAdd algorithms apply equally to CSR;
// we provide CSR as a thin mirror of CSC plus O(nnz) transposition-based
// conversions, so row-major producers (e.g. graph adjacency streams) can use
// the library without reformatting by hand.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "matrix/csc.hpp"
#include "util/prefix_sum.hpp"

namespace spkadd {

template <class IndexT = std::int32_t, class ValueT = double>
class CsrMatrix {
 public:
  using index_type = IndexT;
  using value_type = ValueT;

  CsrMatrix() : row_ptr_(1, 0) {}

  CsrMatrix(IndexT rows, IndexT cols, std::vector<IndexT> row_ptr,
            std::vector<IndexT> col_idx, std::vector<ValueT> values)
      : rows_(rows), cols_(cols), row_ptr_(std::move(row_ptr)),
        col_idx_(std::move(col_idx)), values_(std::move(values)) {
    if (row_ptr_.size() != static_cast<std::size_t>(rows) + 1)
      throw std::invalid_argument("CsrMatrix: row_ptr size mismatch");
    const auto nz = static_cast<std::size_t>(row_ptr_.back());
    if (col_idx_.size() != nz || values_.size() != nz)
      throw std::invalid_argument("CsrMatrix: array length != row_ptr.back()");
  }

  [[nodiscard]] IndexT rows() const { return rows_; }
  [[nodiscard]] IndexT cols() const { return cols_; }
  [[nodiscard]] std::size_t nnz() const {
    return static_cast<std::size_t>(row_ptr_.back());
  }

  [[nodiscard]] std::span<const IndexT> row_ptr() const { return row_ptr_; }
  [[nodiscard]] std::span<const IndexT> col_idx() const { return col_idx_; }
  [[nodiscard]] std::span<const ValueT> values() const { return values_; }

  friend bool operator==(const CsrMatrix& a, const CsrMatrix& b) = default;

 private:
  IndexT rows_ = 0;
  IndexT cols_ = 0;
  std::vector<IndexT> row_ptr_;
  std::vector<IndexT> col_idx_;
  std::vector<ValueT> values_;
};

/// CSC -> CSR by counting-sort transposition; O(nnz + rows). The result rows
/// come out with ascending column indices (canonical).
template <class IndexT, class ValueT>
[[nodiscard]] CsrMatrix<IndexT, ValueT> csc_to_csr(
    const CscMatrix<IndexT, ValueT>& m) {
  std::vector<IndexT> counts(static_cast<std::size_t>(m.rows()), 0);
  for (const IndexT r : m.row_idx()) ++counts[static_cast<std::size_t>(r)];
  std::vector<IndexT> row_ptr =
      util::counts_to_offsets(std::span<const IndexT>(counts));
  std::vector<IndexT> cursor(row_ptr.begin(), row_ptr.end() - 1);
  std::vector<IndexT> col_idx(m.nnz());
  std::vector<ValueT> values(m.nnz());
  for (IndexT j = 0; j < m.cols(); ++j) {
    const auto col = m.column(j);
    for (std::size_t i = 0; i < col.nnz(); ++i) {
      auto& cur = cursor[static_cast<std::size_t>(col.rows[i])];
      col_idx[static_cast<std::size_t>(cur)] = j;
      values[static_cast<std::size_t>(cur)] = col.vals[i];
      ++cur;
    }
  }
  return CsrMatrix<IndexT, ValueT>(m.rows(), m.cols(), std::move(row_ptr),
                                   std::move(col_idx), std::move(values));
}

/// CSR -> CSC, the symmetric operation.
template <class IndexT, class ValueT>
[[nodiscard]] CscMatrix<IndexT, ValueT> csr_to_csc(
    const CsrMatrix<IndexT, ValueT>& m) {
  std::vector<IndexT> counts(static_cast<std::size_t>(m.cols()), 0);
  for (const IndexT c : m.col_idx()) ++counts[static_cast<std::size_t>(c)];
  std::vector<IndexT> col_ptr =
      util::counts_to_offsets(std::span<const IndexT>(counts));
  std::vector<IndexT> cursor(col_ptr.begin(), col_ptr.end() - 1);
  std::vector<IndexT> row_idx(m.nnz());
  std::vector<ValueT> values(m.nnz());
  const auto rp = m.row_ptr();
  const auto ci = m.col_idx();
  const auto vals = m.values();
  for (IndexT r = 0; r < m.rows(); ++r) {
    for (auto i = static_cast<std::size_t>(rp[static_cast<std::size_t>(r)]);
         i < static_cast<std::size_t>(rp[static_cast<std::size_t>(r) + 1]);
         ++i) {
      auto& cur = cursor[static_cast<std::size_t>(ci[i])];
      row_idx[static_cast<std::size_t>(cur)] = r;
      values[static_cast<std::size_t>(cur)] = vals[i];
      ++cur;
    }
  }
  return CscMatrix<IndexT, ValueT>(m.rows(), m.cols(), std::move(col_ptr),
                                   std::move(row_idx), std::move(values));
}

/// Transpose of a CSC matrix, returned as CSC (columns of the result are
/// rows of the input). Implemented via the CSR bridge.
template <class IndexT, class ValueT>
[[nodiscard]] CscMatrix<IndexT, ValueT> transpose(
    const CscMatrix<IndexT, ValueT>& m) {
  const CsrMatrix<IndexT, ValueT> r = csc_to_csr(m);
  return CscMatrix<IndexT, ValueT>(
      m.cols(), m.rows(),
      std::vector<IndexT>(r.row_ptr().begin(), r.row_ptr().end()),
      std::vector<IndexT>(r.col_idx().begin(), r.col_idx().end()),
      std::vector<ValueT>(r.values().begin(), r.values().end()));
}

}  // namespace spkadd
