// Non-owning view of one sparse column: parallel spans of row indices and
// values. This is the unit every SpKAdd kernel operates on — "the jth column
// of A_i is an array of (rowid, val) tuples" (paper §II-B).
#pragma once

#include <cassert>
#include <cstddef>
#include <span>

namespace spkadd {

template <class IndexT, class ValueT>
struct ColumnView {
  std::span<const IndexT> rows;
  std::span<const ValueT> vals;

  [[nodiscard]] std::size_t nnz() const { return rows.size(); }
  [[nodiscard]] bool empty() const { return rows.empty(); }

  /// Sub-view restricted to row indices in [r1, r2). Requires the column to
  /// be sorted by row index; bounds are located by binary search. This is
  /// how the sliding-hash algorithm (paper Alg. 7/8 line 9-10) slices
  /// A_i(r1:r2, j) without copying.
  [[nodiscard]] ColumnView row_range(IndexT r1, IndexT r2) const {
    const auto* base = rows.data();
    const auto* lo = std::lower_bound(base, base + rows.size(), r1);
    const auto* hi = std::lower_bound(lo, base + rows.size(), r2);
    const std::size_t off = static_cast<std::size_t>(lo - base);
    const std::size_t len = static_cast<std::size_t>(hi - lo);
    return ColumnView{rows.subspan(off, len), vals.subspan(off, len)};
  }

  /// True when row indices are strictly ascending (CSC canonical form).
  [[nodiscard]] bool is_sorted_strict() const {
    for (std::size_t i = 1; i < rows.size(); ++i)
      if (rows[i] <= rows[i - 1]) return false;
    return true;
  }
};

}  // namespace spkadd
