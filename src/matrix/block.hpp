// Submatrix (block) extraction with index re-basing.
//
// The simulated sparse SUMMA distributes A and B over a logical process grid
// by row/column ranges; each "process" owns a re-based block. Row slicing
// uses binary search per column and therefore requires sorted columns.
#pragma once

#include <stdexcept>
#include <vector>

#include "matrix/csc.hpp"

namespace spkadd {

/// Extract m[r0:r1, c0:c1) as a (r1-r0) x (c1-c0) matrix with indices
/// re-based to the block origin. Requires sorted columns.
template <class IndexT, class ValueT>
[[nodiscard]] CscMatrix<IndexT, ValueT> extract_block(
    const CscMatrix<IndexT, ValueT>& m, IndexT r0, IndexT r1, IndexT c0,
    IndexT c1) {
  if (r0 < 0 || r1 > m.rows() || r0 > r1 || c0 < 0 || c1 > m.cols() ||
      c0 > c1)
    throw std::invalid_argument("extract_block: bad range");
  const IndexT bcols = c1 - c0;
  std::vector<IndexT> col_ptr(static_cast<std::size_t>(bcols) + 1, 0);
  std::vector<IndexT> row_idx;
  std::vector<ValueT> values;
  for (IndexT j = 0; j < bcols; ++j) {
    const auto sub = m.column(c0 + j).row_range(r0, r1);
    for (std::size_t i = 0; i < sub.nnz(); ++i) {
      row_idx.push_back(sub.rows[i] - r0);
      values.push_back(sub.vals[i]);
    }
    col_ptr[static_cast<std::size_t>(j) + 1] =
        static_cast<IndexT>(row_idx.size());
  }
  return CscMatrix<IndexT, ValueT>(r1 - r0, bcols, std::move(col_ptr),
                                   std::move(row_idx), std::move(values));
}

/// Even 1-D partition boundaries: bounds[i] = n*i/parts for i in [0, parts].
template <class IndexT>
[[nodiscard]] std::vector<IndexT> partition_bounds(IndexT n, int parts) {
  std::vector<IndexT> bounds(static_cast<std::size_t>(parts) + 1);
  for (int i = 0; i <= parts; ++i)
    bounds[static_cast<std::size_t>(i)] = static_cast<IndexT>(
        static_cast<std::int64_t>(n) * i / parts);
  return bounds;
}

}  // namespace spkadd
