// DaemonServer — the network front-end of the windowed aggregation
// service: a poll(2)-based TCP server speaking the SPKN protocol
// (net/protocol.hpp) over many concurrent client connections.
//
//   accept ──> per-connection read buffer ──> frame decode
//                 |                             |
//                 |   submit frames of one      v
//                 |   poll cycle staged as  [burst vector]
//                 |   ONE MPMC enqueue ───> WindowedAggService
//                 |                             ^
//                 v                             |
//           response frames <── snapshot/drain/stats served inline
//
// One poll thread owns every socket: it accepts, reads, decodes,
// stages decoded submits into a per-cycle burst (flushed into the
// service's MPMC queue as ONE push_burst — the wire front of the
// burst-batched ingest path), serves snapshot/drain/stats inline (the
// staged burst is flushed first, so one connection's submit -> drain
// -> snapshot sequence observes its own writes), and appends responses
// to per-connection write buffers drained under POLLOUT. Worker
// threads inside WindowedAggService do every fold; the poll thread
// never computes a sum except via snapshot().
//
// Strict header validation with per-connection error accounting: a
// frame that fails validation (bad magic/version/verb, oversized
// lengths, undecodable matrix payload) is answered with its status
// code, counted against the connection and globally, and — for
// framing-level errors, where the stream has no resynchronization
// point — the connection is closed after the error response drains.
//
// Clean shutdown: stop() stops accepting, serves every complete frame
// already buffered, flushes the staged burst, drains the service (all
// in-flight requests fold), flushes pending response bytes with a
// bounded grace period, then closes every socket and joins.
//
// Thread-safety contract: construction, stop(), port() and stats() are
// safe from any thread; everything else runs on the internal poll
// thread. The wrapped service() is itself fully thread-safe.
// Bit-identity guarantee: the server moves decoded matrices into the
// service and encoded snapshots out byte-for-byte (net/protocol.hpp),
// so wire snapshots inherit WindowedAggService's strict-left-fold
// bit-identity.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "net/protocol.hpp"
#include "obs/metrics.hpp"
#include "service/windowed_service.hpp"

namespace spkadd::net {

struct ServerConfig {
  std::string bind_address = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; see DaemonServer::port()
  std::size_t max_connections = 64;
  /// Grace period for flushing pending responses during stop().
  std::size_t shutdown_grace_ms = 2000;
  service::WindowedAggService::Config service;
};

/// Per-connection accounting surfaced by DaemonServer::stats().
struct ConnectionStats {
  std::uint64_t id = 0;        ///< accept order, 1-based
  std::uint64_t requests = 0;  ///< frames decoded and dispatched
  std::uint64_t errors = 0;    ///< protocol errors on this connection
  bool open = false;
};

struct ServerStats {
  std::uint64_t connections_accepted = 0;
  std::uint64_t connections_open = 0;
  std::uint64_t connections_rejected = 0;  ///< over max_connections
  std::uint64_t requests_submit = 0;
  std::uint64_t requests_snapshot = 0;
  std::uint64_t requests_drain = 0;
  std::uint64_t requests_stats = 0;
  /// SPKN metrics-verb requests plus HTTP GET /metrics scrapes.
  std::uint64_t requests_metrics = 0;
  std::uint64_t protocol_errors = 0;  ///< across all connections ever
  std::vector<ConnectionStats> connections;  ///< open + closed
};

class DaemonServer {
 public:
  /// Binds, listens and starts the poll thread. Throws
  /// std::runtime_error when the socket cannot be bound.
  explicit DaemonServer(ServerConfig config);
  ~DaemonServer();

  DaemonServer(const DaemonServer&) = delete;
  DaemonServer& operator=(const DaemonServer&) = delete;

  /// The actually-bound port (resolves port 0 to the ephemeral one).
  [[nodiscard]] std::uint16_t port() const { return port_; }

  /// Clean shutdown (see the file header). Idempotent; stats() stays
  /// usable afterwards.
  void stop();

  [[nodiscard]] ServerStats stats() const;

  /// The wrapped service (fully thread-safe; tests and in-process
  /// embedders may bypass the wire with it).
  [[nodiscard]] service::WindowedAggService& service() { return service_; }

  /// Render stats() + service().stats() as the JSON document the
  /// stats verb answers (documented in docs/PROTOCOL.md).
  [[nodiscard]] std::string stats_json();

  /// Render the Prometheus text exposition the metrics verb and
  /// GET /metrics answer (empty when config.service.metrics is null).
  [[nodiscard]] std::string metrics_text() const;

 private:
  struct Conn {
    int fd = -1;
    std::uint64_t id = 0;
    std::string in;       ///< unparsed request bytes
    std::string out;      ///< undrained response bytes
    bool closing = false; ///< close once `out` drains
  };

  void poll_loop();
  void accept_ready();
  /// Read + decode + dispatch everything ready on `conn`; stages
  /// submits into `burst`. Returns false when the connection must be
  /// dropped (EOF or read error).
  bool service_conn(Conn& conn,
                    std::vector<service::WindowedAggService::TimedUpdate>&
                        burst);
  /// Decode + dispatch every complete frame buffered in conn.in (also
  /// the shutdown pass: serve what already arrived, read no more).
  void process_frames(
      Conn& conn,
      std::vector<service::WindowedAggService::TimedUpdate>& burst);
  /// Dispatch one decoded frame; appends the response to conn.out.
  void handle(Conn& conn, Request&& req,
              std::vector<service::WindowedAggService::TimedUpdate>&
                  burst);
  /// Serve a plain-HTTP connection (first byte was not the SPKN
  /// magic's 'S'): answers GET /metrics with the Prometheus
  /// exposition, 404 for other paths, then closes. Returns once the
  /// buffered bytes are consumed or more are needed.
  void handle_http(Conn& conn);
  /// Push the staged burst into the service as one enqueue.
  void flush_burst(
      std::vector<service::WindowedAggService::TimedUpdate>& burst);
  void record_error(Conn& conn, Status status);
  void close_conn(Conn& conn);
  /// Best-effort drain of pending response bytes during shutdown.
  void flush_pending_writes();

  ServerConfig config_;
  service::WindowedAggService service_;
  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  ///< self-pipe: stop() wakes poll()
  std::uint16_t port_ = 0;
  std::vector<std::unique_ptr<Conn>> conns_;
  std::uint64_t next_conn_id_ = 1;
  /// Tenant shapes observed on the wire (poll thread only): lets the
  /// server answer kShapeMismatch per offending frame instead of
  /// letting submit_burst reject a whole staged burst.
  std::map<std::string, std::pair<std::int32_t, std::int32_t>> shapes_;

  std::thread poll_thread_;
  std::atomic<bool> stop_requested_{false};
  std::once_flag stop_once_;

  // Counters shared with stats() readers. Scalars are atomics; the
  // per-connection map is guarded by stats_mutex_ (the poll thread
  // updates it on accept/request/error/close).
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> open_{0};
  std::atomic<std::uint64_t> conn_rejected_{0};
  std::atomic<std::uint64_t> req_submit_{0};
  std::atomic<std::uint64_t> req_snapshot_{0};
  std::atomic<std::uint64_t> req_drain_{0};
  std::atomic<std::uint64_t> req_stats_{0};
  std::atomic<std::uint64_t> req_metrics_{0};
  std::atomic<std::uint64_t> protocol_errors_{0};
  mutable std::mutex stats_mutex_;
  std::map<std::uint64_t, ConnectionStats> conn_stats_;

  /// Per-verb request service time (frame dispatch to response
  /// enqueued), indexed by wire verb code - 1. Lock-free recording on
  /// the poll thread; exported by the collector below.
  std::array<obs::LogHistogram,
             static_cast<std::size_t>(Verb::kMetrics)>
      verb_latency_;

  /// Exports connection/request counters + per-verb latency.
  void export_metrics(obs::CollectorSink& sink) const;

  // LAST member: destroyed first, and its dtor blocks until no render
  // can still be invoking export_metrics on this instance.
  obs::CollectorHandle collector_;
};

}  // namespace spkadd::net
