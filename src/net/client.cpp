#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace spkadd::net {

Client::Client(const std::string& host, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0)
    throw std::runtime_error("Client: socket: " +
                             std::string(std::strerror(errno)));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("Client: bad host address '" + host + "'");
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const std::string err = std::strerror(errno);
    ::close(fd_);
    fd_ = -1;
    throw std::runtime_error("Client: connect " + host + ":" +
                             std::to_string(port) + ": " + err);
  }
  const int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      inbuf_(std::move(other.inbuf_)),
      outbuf_(std::move(other.outbuf_)) {}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Client::send_all(const char* data, std::size_t size) {
  while (size > 0) {
    const ssize_t n = ::send(fd_, data, size, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error("Client: send: " +
                               std::string(std::strerror(errno)));
    }
    data += n;
    size -= static_cast<std::size_t>(n);
  }
}

void Client::send_request(const Request& req) {
  std::string frame;
  encode_request(req, frame);
  send_all(frame.data(), frame.size());
}

void Client::send_raw(const std::string& bytes) {
  send_all(bytes.data(), bytes.size());
}

Response Client::recv_response() {
  Response resp;
  for (;;) {
    const std::size_t n = try_decode_response(inbuf_, resp);
    if (n != 0) {
      inbuf_.erase(0, n);
      return resp;
    }
    char buf[64 * 1024];
    const ssize_t got = ::recv(fd_, buf, sizeof(buf), 0);
    if (got > 0) {
      inbuf_.append(buf, static_cast<std::size_t>(got));
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    throw std::runtime_error(
        got == 0 ? "Client: connection closed by server"
                 : "Client: recv: " + std::string(std::strerror(errno)));
  }
}

Status Client::submit(const std::string& tenant, std::uint64_t ts,
                      const Matrix& update) {
  Request req;
  req.verb = Verb::kSubmit;
  req.tenant = tenant;
  req.arg = ts;
  req.payload = encode_matrix(update);
  send_request(req);
  return recv_response().status;
}

void Client::submit_async(const std::string& tenant, std::uint64_t ts,
                          const Matrix& update) {
  Request req;
  req.verb = Verb::kSubmit;
  req.tenant = tenant;
  req.arg = ts;
  req.payload = encode_matrix(update);
  encode_request(req, outbuf_);
}

void Client::flush() {
  if (outbuf_.empty()) return;
  send_all(outbuf_.data(), outbuf_.size());
  outbuf_.clear();
}

std::size_t Client::collect_acks(std::size_t n) {
  flush();
  std::size_t ok = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (recv_response().status == Status::kOk) ++ok;
  }
  return ok;
}

Client::SnapshotResult Client::snapshot(const std::string& tenant,
                                        std::uint64_t window_buckets) {
  flush();
  Request req;
  req.verb = Verb::kSnapshot;
  req.tenant = tenant;
  req.arg = window_buckets;
  send_request(req);
  Response resp = recv_response();
  SnapshotResult out;
  out.status = resp.status;
  if (resp.status == Status::kOk) {
    out.sum = decode_matrix(resp.payload);
    out.epoch = resp.arg;
  }
  return out;
}

Status Client::drain(std::uint64_t* applied_out) {
  flush();
  Request req;
  req.verb = Verb::kDrain;
  send_request(req);
  Response resp = recv_response();
  if (applied_out != nullptr) *applied_out = resp.arg;
  return resp.status;
}

std::string Client::stats_json(Status* status_out) {
  flush();
  Request req;
  req.verb = Verb::kStats;
  send_request(req);
  Response resp = recv_response();
  if (status_out != nullptr) *status_out = resp.status;
  return resp.status == Status::kOk ? std::move(resp.payload)
                                    : std::string();
}

std::string Client::metrics_text(Status* status_out) {
  flush();
  Request req;
  req.verb = Verb::kMetrics;
  send_request(req);
  Response resp = recv_response();
  if (status_out != nullptr) *status_out = resp.status;
  return resp.status == Status::kOk ? std::move(resp.payload)
                                    : std::string();
}

}  // namespace spkadd::net
