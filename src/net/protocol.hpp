// SPKN — the length-prefixed binary wire protocol of the aggregation
// daemon (see docs/PROTOCOL.md for the normative spec).
//
// Every frame is a fixed 24-byte little-endian header followed by a
// tenant-name blob and a payload blob, both length-prefixed in the
// header. Requests carry a verb (submit / snapshot / drain / stats) and
// one u64 argument (submit: timestamp; snapshot: window in buckets);
// submit payloads are matrices in the io::binary_io "SPKB" container,
// reused verbatim as the matrix framing. Responses mirror the layout
// with a status byte instead of a verb. Header validation is strict:
// magic, version, verb/status range and bounded tenant/payload sizes
// are checked before any allocation sized from the wire, and a frame
// that fails validation throws ProtocolError with the status code the
// server answers (then closes the connection — a corrupt length prefix
// leaves no resynchronization point).
//
// Thread-safety contract: everything here is a pure function over
// caller-owned buffers — no shared state, safe from any thread.
// Bit-identity guarantee: matrix payloads round-trip bit-exactly
// through encode_matrix/decode_matrix (the SPKB container stores raw
// little-endian doubles), so a snapshot received over the wire is
// byte-for-byte the snapshot the service assembled.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "matrix/csc.hpp"

namespace spkadd::net {

/// Request verbs (wire values are stable API — see docs/PROTOCOL.md).
enum class Verb : std::uint8_t {
  kSubmit = 1,    ///< fold `payload` matrix at time `arg` into `tenant`
  kSnapshot = 2,  ///< windowed sum of `tenant`; `arg` = window buckets
  kDrain = 3,     ///< barrier: every accepted submit is folded
  kStats = 4,     ///< service + server counters as a JSON payload
  kMetrics = 5,   ///< Prometheus text exposition as the payload
};

/// Response status / protocol error codes (wire values are stable API).
enum class Status : std::uint8_t {
  kOk = 0,
  kBadMagic = 1,         ///< header magic mismatch
  kBadVersion = 2,       ///< protocol version mismatch
  kBadVerb = 3,          ///< unknown verb byte
  kBadTenant = 4,        ///< tenant name missing or over kMaxTenantLen
  kOversizedPayload = 5, ///< payload_len over kMaxPayloadLen
  kBadPayload = 6,       ///< payload present but undecodable
  kUnknownTenant = 7,    ///< snapshot of a tenant never submitted to
  kBadWindow = 8,        ///< snapshot window exceeds live_buckets
  kShapeMismatch = 9,    ///< update shape differs from the tenant's
  kStopped = 10,         ///< service is shutting down
  kInternal = 11,        ///< unexpected server-side failure
};

/// Human-readable name of a status code (error accounting and logs).
[[nodiscard]] const char* status_name(Status s);

constexpr std::uint32_t kRequestMagic = 0x4E4B5053;   // "SPKN"
constexpr std::uint32_t kResponseMagic = 0x524B5053;  // "SPKR"
constexpr std::uint16_t kProtocolVersion = 1;
constexpr std::size_t kHeaderBytes = 24;
constexpr std::uint32_t kMaxTenantLen = 256;
constexpr std::uint32_t kMaxPayloadLen = 64u << 20;  // 64 MiB

/// One decoded request frame.
struct Request {
  Verb verb = Verb::kSubmit;
  std::string tenant;      ///< empty for drain/stats
  std::uint64_t arg = 0;   ///< submit: timestamp; snapshot: window
  std::string payload;     ///< submit: SPKB matrix bytes
};

/// One decoded response frame.
struct Response {
  Status status = Status::kOk;
  std::uint64_t arg = 0;  ///< snapshot: epoch; drain/submit: applied
  std::string payload;    ///< snapshot: SPKB matrix; stats: JSON text
};

/// Thrown by the decoders on an invalid frame; `status` is the code the
/// server answers before closing the connection.
struct ProtocolError : std::runtime_error {
  ProtocolError(Status s, const std::string& what)
      : std::runtime_error(what), status(s) {}
  Status status;
};

/// Serialize a frame, appending to `out` (amortizes the server's
/// per-connection write buffer). encode_request validates the tenant
/// and payload bounds (throws ProtocolError — a client bug, caught
/// before it reaches the wire).
void encode_request(const Request& req, std::string& out);
void encode_response(const Response& resp, std::string& out);

/// Decode one frame from the front of `buf`. Returns the bytes
/// consumed, or 0 when `buf` does not yet hold a complete frame (read
/// more and retry — never throws for a short buffer). Throws
/// ProtocolError on a frame that can never become valid (bad magic /
/// version / verb / oversized lengths).
std::size_t try_decode_request(std::string_view buf, Request& out);
std::size_t try_decode_response(std::string_view buf, Response& out);

/// Matrix <-> payload helpers over the io::binary_io SPKB container.
/// decode_matrix throws ProtocolError{kBadPayload} on undecodable
/// bytes (truncated, bad magic, structural validation failure).
[[nodiscard]] std::string encode_matrix(
    const CscMatrix<std::int32_t, double>& m);
[[nodiscard]] CscMatrix<std::int32_t, double> decode_matrix(
    const std::string& payload);

}  // namespace spkadd::net
