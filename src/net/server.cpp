#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <iostream>
#include <sstream>
#include <stdexcept>

#include "obs/trace.hpp"
#include "util/json.hpp"

namespace spkadd::net {

namespace {

using TimedUpdate = service::WindowedAggService::TimedUpdate;

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    throw std::runtime_error("DaemonServer: fcntl(O_NONBLOCK) failed");
}

[[noreturn]] void throw_errno(const char* what) {
  throw std::runtime_error(std::string("DaemonServer: ") + what + ": " +
                           std::strerror(errno));
}

/// Drain conn.out with nonblocking sends. Returns false on a write
/// error (the connection is unusable).
bool try_flush(int fd, std::string& out) {
  while (!out.empty()) {
    const ssize_t n =
        ::send(fd, out.data(), out.size(), MSG_NOSIGNAL);
    if (n > 0) {
      out.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return true;
    if (n < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

}  // namespace

DaemonServer::DaemonServer(ServerConfig config)
    : config_(std::move(config)), service_(config_.service) {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(config_.port);
  if (::inet_pton(AF_INET, config_.bind_address.c_str(),
                  &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("DaemonServer: bad bind address '" +
                             config_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
             sizeof(addr)) < 0 ||
      ::listen(listen_fd_, 128) < 0) {
    const int saved = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    errno = saved;
    throw_errno("bind/listen");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &len) < 0)
    throw_errno("getsockname");
  port_ = ntohs(bound.sin_port);
  set_nonblocking(listen_fd_);
  if (::pipe(wake_fds_) < 0) throw_errno("pipe");
  set_nonblocking(wake_fds_[0]);
  set_nonblocking(wake_fds_[1]);
  poll_thread_ = std::thread([this] { poll_loop(); });
  if (config_.service.metrics != nullptr) {
    collector_ = config_.service.metrics->add_collector(
        [this](obs::CollectorSink& sink) { export_metrics(sink); });
  }
}

DaemonServer::~DaemonServer() { stop(); }

void DaemonServer::stop() {
  std::call_once(stop_once_, [this] {
    stop_requested_.store(true, std::memory_order_seq_cst);
    const char byte = 0;
    [[maybe_unused]] const ssize_t n = ::write(wake_fds_[1], &byte, 1);
    poll_thread_.join();
    ::close(listen_fd_);
    ::close(wake_fds_[0]);
    ::close(wake_fds_[1]);
    listen_fd_ = wake_fds_[0] = wake_fds_[1] = -1;
  });
}

void DaemonServer::poll_loop() {
  std::vector<pollfd> pfds;
  std::vector<TimedUpdate> burst;
  while (!stop_requested_.load(std::memory_order_seq_cst)) {
    pfds.clear();
    pfds.push_back(pollfd{wake_fds_[0], POLLIN, 0});
    pfds.push_back(pollfd{listen_fd_, POLLIN, 0});
    // accept_ready() appends to conns_ mid-cycle; only these first
    // n_polled connections have a pollfd (and revents) this cycle.
    const std::size_t n_polled = conns_.size();
    for (const auto& conn : conns_) {
      short events = 0;
      if (!conn->closing) events |= POLLIN;
      if (!conn->out.empty()) events |= POLLOUT;
      pfds.push_back(pollfd{conn->fd, events, 0});
    }
    const int ready = ::poll(pfds.data(), pfds.size(), -1);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable; shut down below
    }
    if (pfds[0].revents != 0) {
      char sink[64];
      while (::read(wake_fds_[0], sink, sizeof(sink)) > 0) {
      }
    }
    if (stop_requested_.load(std::memory_order_seq_cst)) break;
    if (pfds[1].revents != 0) accept_ready();

    burst.clear();
    for (std::size_t i = 0; i < n_polled; ++i) {
      Conn& conn = *conns_[i];
      const short rev = pfds[i + 2].revents;
      if (rev == 0) continue;
      if ((rev & (POLLERR | POLLNVAL)) != 0) {
        close_conn(conn);
        continue;
      }
      if ((rev & (POLLIN | POLLHUP)) != 0 && !conn.closing) {
        if (!service_conn(conn, burst)) {
          // EOF or read error: serve what arrived, answer, then drop.
          conn.closing = true;
        }
      }
    }
    flush_burst(burst);
    for (auto& conn : conns_) {
      if (conn->fd < 0) continue;
      if (!try_flush(conn->fd, conn->out)) {
        close_conn(*conn);
        continue;
      }
      if (conn->closing && conn->out.empty()) close_conn(*conn);
    }
    std::erase_if(conns_,
                  [](const std::unique_ptr<Conn>& c) { return c->fd < 0; });
  }

  // Clean shutdown: serve every complete frame already buffered, fold
  // everything in flight, then flush responses within the grace period.
  burst.clear();
  for (auto& conn : conns_) {
    if (conn->fd >= 0 && !conn->closing) process_frames(*conn, burst);
  }
  flush_burst(burst);
  service_.drain();
  service_.stop();
  flush_pending_writes();
  for (auto& conn : conns_) {
    if (conn->fd >= 0) close_conn(*conn);
  }
  conns_.clear();
}

void DaemonServer::accept_ready() {
  for (;;) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      return;
    }
    if (conns_.size() >= config_.max_connections) {
      conn_rejected_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    set_nonblocking(fd);
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto conn = std::make_unique<Conn>();
    conn->fd = fd;
    conn->id = next_conn_id_++;
    accepted_.fetch_add(1, std::memory_order_relaxed);
    open_.fetch_add(1, std::memory_order_relaxed);
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      ConnectionStats& cs = conn_stats_[conn->id];
      cs.id = conn->id;
      cs.open = true;
    }
    conns_.push_back(std::move(conn));
  }
}

bool DaemonServer::service_conn(Conn& conn,
                                std::vector<TimedUpdate>& burst) {
  bool alive = true;
  char buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(conn.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      conn.in.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {  // EOF: serve buffered frames, then report dead
      alive = false;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    alive = false;
    break;
  }
  process_frames(conn, burst);
  return alive;
}

void DaemonServer::process_frames(Conn& conn,
                                  std::vector<TimedUpdate>& burst) {
  while (!conn.in.empty() && !conn.closing) {
    // SPKN frames start with the magic's 'S'; a leading 'G' is a plain
    // HTTP GET (the Prometheus scrape path — no sidecar needed). Any
    // other first byte falls through to the bad-magic handling below.
    if (conn.in.front() == 'G') {
      handle_http(conn);
      return;
    }
    Request req;
    std::size_t n = 0;
    try {
      n = try_decode_request(conn.in, req);
    } catch (const ProtocolError& e) {
      // Framing-level error: no resynchronization point exists in the
      // stream, so answer the status and close once it drains.
      record_error(conn, e.status);
      conn.in.clear();
      conn.closing = true;
      return;
    }
    if (n == 0) return;  // incomplete frame: wait for more bytes
    conn.in.erase(0, n);
    handle(conn, std::move(req), burst);
  }
}

void DaemonServer::handle(Conn& conn, Request&& req,
                          std::vector<TimedUpdate>& burst) {
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++conn_stats_[conn.id].requests;
  }
  // Per-verb service time: dispatch to response enqueued. The decoder
  // bounded the verb code to kMetrics, so the index below is in range.
  const std::uint64_t t0 = obs::Tracer::now_ns();
  struct TimeVerb {
    obs::LogHistogram& hist;
    std::uint64_t start;
    ~TimeVerb() { hist.record(obs::Tracer::now_ns() - start); }
  } time_verb{
      verb_latency_[static_cast<std::size_t>(req.verb) - 1], t0};
  switch (req.verb) {
    case Verb::kSubmit: {
      req_submit_.fetch_add(1, std::memory_order_relaxed);
      if (req.tenant.empty()) {
        record_error(conn, Status::kBadTenant);
        return;
      }
      obs::Tracer* const tracer = config_.service.tracer;
      obs::OpTrace trace;
      if (tracer != nullptr) trace = tracer->begin_op();
      CscMatrix<std::int32_t, double> update;
      try {
        update = decode_matrix(req.payload);
      } catch (const ProtocolError& e) {
        // Frame was well delimited; the connection stays usable.
        record_error(conn, e.status);
        return;
      }
      auto [it, inserted] = shapes_.try_emplace(
          req.tenant, update.rows(), update.cols());
      if (!inserted && (it->second.first != update.rows() ||
                        it->second.second != update.cols())) {
        record_error(conn, Status::kShapeMismatch);
        return;
      }
      if (trace.active())
        tracer->record(trace, obs::Stage::kWireDecode, t0,
                       "tenant=" + req.tenant);
      burst.push_back(TimedUpdate{std::move(req.tenant), req.arg,
                                  std::move(update), std::move(trace)});
      Response resp;
      resp.arg = 1;
      encode_response(resp, conn.out);
      return;
    }
    case Verb::kSnapshot: {
      req_snapshot_.fetch_add(1, std::memory_order_relaxed);
      if (req.tenant.empty()) {
        record_error(conn, Status::kBadTenant);
        return;
      }
      // Ordering: a connection's own staged submits must be visible
      // (enqueued) before its snapshot request is served.
      flush_burst(burst);
      try {
        auto snap = service_.snapshot(
            req.tenant, static_cast<std::size_t>(req.arg));
        Response resp;
        resp.arg = snap.epoch;
        resp.payload = encode_matrix(snap.sum);
        encode_response(resp, conn.out);
      } catch (const std::invalid_argument&) {
        const Status status =
            req.arg > config_.service.window.live_buckets
                ? Status::kBadWindow
                : Status::kUnknownTenant;
        record_error(conn, status);
      }
      return;
    }
    case Verb::kDrain: {
      req_drain_.fetch_add(1, std::memory_order_relaxed);
      flush_burst(burst);
      service_.drain();
      Response resp;
      resp.arg = service_.stats().applied;
      encode_response(resp, conn.out);
      return;
    }
    case Verb::kStats: {
      req_stats_.fetch_add(1, std::memory_order_relaxed);
      flush_burst(burst);
      Response resp;
      resp.payload = stats_json();
      encode_response(resp, conn.out);
      return;
    }
    case Verb::kMetrics: {
      req_metrics_.fetch_add(1, std::memory_order_relaxed);
      // Flush so a connection's own submits are at least enqueued (and
      // counted) before it scrapes.
      flush_burst(burst);
      Response resp;
      resp.payload = metrics_text();
      encode_response(resp, conn.out);
      return;
    }
  }
  record_error(conn, Status::kBadVerb);  // unreachable after decode
}

void DaemonServer::handle_http(Conn& conn) {
  const std::size_t head_end = conn.in.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    // Incomplete headers: wait, but never buffer an unbounded header
    // block from something that will never finish one.
    if (conn.in.size() > 8192) conn.closing = true;
    return;
  }
  const std::string_view head(conn.in.data(), head_end);
  const std::size_t line_end = head.find("\r\n");
  const std::string_view line =
      line_end == std::string_view::npos ? head : head.substr(0, line_end);
  // "GET <path> HTTP/1.x" — everything else 404s (GETs carry no body,
  // so consuming through the blank line consumes the whole request).
  std::string_view path;
  if (line.size() > 4 && line.substr(0, 4) == "GET ") {
    const std::string_view rest = line.substr(4);
    path = rest.substr(0, rest.find(' '));
  }
  std::ostringstream resp;
  if (path == "/metrics") {
    req_metrics_.fetch_add(1, std::memory_order_relaxed);
    const std::string body = metrics_text();
    resp << "HTTP/1.0 200 OK\r\n"
            "Content-Type: text/plain; version=0.0.4\r\n"
            "Content-Length: "
         << body.size() << "\r\nConnection: close\r\n\r\n"
         << body;
  } else {
    const std::string body = "not found\n";
    resp << "HTTP/1.0 404 Not Found\r\n"
            "Content-Type: text/plain\r\n"
            "Content-Length: "
         << body.size() << "\r\nConnection: close\r\n\r\n"
         << body;
  }
  conn.out += resp.str();
  conn.in.clear();
  conn.closing = true;  // one response per scrape connection
}

void DaemonServer::flush_burst(std::vector<TimedUpdate>& burst) {
  if (burst.empty()) return;
  try {
    service_.submit_burst(burst);
  } catch (const std::exception& e) {
    // Shapes are pre-checked per frame, so this is an embedder-created
    // tenant conflict; salvage the burst update by update.
    std::cerr << "DaemonServer: burst submit failed (" << e.what()
              << "); retrying per update\n";
    for (auto& u : burst) {
      try {
        service_.submit(u.tenant, u.timestamp, std::move(u.update));
      } catch (const std::exception& drop) {
        std::cerr << "DaemonServer: dropped update for tenant '"
                  << u.tenant << "': " << drop.what() << "\n";
      }
    }
  }
  burst.clear();
}

void DaemonServer::record_error(Conn& conn, Status status) {
  protocol_errors_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    ++conn_stats_[conn.id].errors;
  }
  Response resp;
  resp.status = status;
  resp.payload = status_name(status);
  encode_response(resp, conn.out);
}

void DaemonServer::close_conn(Conn& conn) {
  if (conn.fd < 0) return;
  ::close(conn.fd);
  conn.fd = -1;
  open_.fetch_sub(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(stats_mutex_);
  conn_stats_[conn.id].open = false;
}

void DaemonServer::flush_pending_writes() {
  using clock = std::chrono::steady_clock;
  const auto deadline =
      clock::now() + std::chrono::milliseconds(config_.shutdown_grace_ms);
  for (;;) {
    std::vector<pollfd> pfds;
    for (const auto& conn : conns_) {
      if (conn->fd >= 0 && !conn->out.empty())
        pfds.push_back(pollfd{conn->fd, POLLOUT, 0});
    }
    if (pfds.empty() || clock::now() >= deadline) return;
    if (::poll(pfds.data(), pfds.size(), 50) < 0 && errno != EINTR)
      return;
    for (auto& conn : conns_) {
      if (conn->fd >= 0 && !conn->out.empty() &&
          !try_flush(conn->fd, conn->out))
        close_conn(*conn);
    }
  }
}

ServerStats DaemonServer::stats() const {
  ServerStats out;
  out.connections_accepted = accepted_.load(std::memory_order_relaxed);
  out.connections_open = open_.load(std::memory_order_relaxed);
  out.connections_rejected =
      conn_rejected_.load(std::memory_order_relaxed);
  out.requests_submit = req_submit_.load(std::memory_order_relaxed);
  out.requests_snapshot = req_snapshot_.load(std::memory_order_relaxed);
  out.requests_drain = req_drain_.load(std::memory_order_relaxed);
  out.requests_stats = req_stats_.load(std::memory_order_relaxed);
  out.requests_metrics = req_metrics_.load(std::memory_order_relaxed);
  out.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(stats_mutex_);
  out.connections.reserve(conn_stats_.size());
  for (const auto& [id, cs] : conn_stats_) out.connections.push_back(cs);
  return out;
}

std::string DaemonServer::stats_json() {
  const ServerStats s = stats();
  const service::WindowedServiceStats w = service_.stats();
  std::ostringstream out;
  out << "{\"connections_accepted\":" << s.connections_accepted
      << ",\"connections_open\":" << s.connections_open
      << ",\"connections_rejected\":" << s.connections_rejected
      << ",\"requests_submit\":" << s.requests_submit
      << ",\"requests_snapshot\":" << s.requests_snapshot
      << ",\"requests_drain\":" << s.requests_drain
      << ",\"requests_stats\":" << s.requests_stats
      << ",\"requests_metrics\":" << s.requests_metrics
      << ",\"protocol_errors\":" << s.protocol_errors
      << ",\"service\":{\"submitted\":" << w.submitted
      << ",\"applied\":" << w.applied << ",\"expired\":" << w.expired
      << ",\"rejected\":" << w.rejected
      << ",\"apply_errors\":" << w.apply_errors
      << ",\"snapshots\":" << w.snapshots
      << ",\"queue_depth\":" << w.queue_depth
      << ",\"queue_high_water\":" << w.queue_high_water
      << ",\"bursts\":" << w.bursts
      << ",\"burst_updates\":" << w.burst_updates << ",\"tenants\":[";
  for (std::size_t i = 0; i < w.tenants.size(); ++i) {
    const auto& [name, ws] = w.tenants[i];
    if (i != 0) out << ",";
    out << "{\"name\":\"" << util::json_escape(name)
        << "\",\"accepted\":" << ws.accepted
        << ",\"expired_rejected\":" << ws.expired_rejected
        << ",\"buckets_opened\":" << ws.buckets_opened
        << ",\"buckets_retired\":" << ws.buckets_retired
        << ",\"snapshots\":" << ws.snapshots
        << ",\"fold_flushes\":" << ws.fold_flushes
        << ",\"live_buckets\":" << ws.live_buckets
        << ",\"newest_bucket\":" << ws.newest_bucket << "}";
  }
  out << "]}}";
  return out.str();
}

std::string DaemonServer::metrics_text() const {
  return config_.service.metrics != nullptr
             ? config_.service.metrics->render_prometheus()
             : std::string();
}

void DaemonServer::export_metrics(obs::CollectorSink& sink) const {
  const auto d = [](std::uint64_t v) { return static_cast<double>(v); };
  const auto verb = [&](const char* name, const std::atomic<
                                              std::uint64_t>& count,
                        Verb v) {
    sink.counter("spkadd_daemon_requests_total",
                 "Requests dispatched, by verb", {{"verb", name}},
                 d(count.load(std::memory_order_relaxed)));
    sink.histogram(
        "spkadd_daemon_request_seconds",
        "Request service time (dispatch to response enqueued), by verb",
        {{"verb", name}},
        verb_latency_[static_cast<std::size_t>(v) - 1],
        obs::Unit::kSeconds);
  };
  verb("submit", req_submit_, Verb::kSubmit);
  verb("snapshot", req_snapshot_, Verb::kSnapshot);
  verb("drain", req_drain_, Verb::kDrain);
  verb("stats", req_stats_, Verb::kStats);
  verb("metrics", req_metrics_, Verb::kMetrics);
  sink.gauge("spkadd_daemon_connections_open",
             "Connections currently open", {},
             d(open_.load(std::memory_order_relaxed)));
  sink.counter("spkadd_daemon_connections_accepted_total",
               "Connections ever accepted", {},
               d(accepted_.load(std::memory_order_relaxed)));
  sink.counter("spkadd_daemon_connections_rejected_total",
               "Connections refused over max_connections", {},
               d(conn_rejected_.load(std::memory_order_relaxed)));
  sink.counter("spkadd_daemon_protocol_errors_total",
               "Protocol errors across all connections", {},
               d(protocol_errors_.load(std::memory_order_relaxed)));
}

}  // namespace spkadd::net
