#include "net/protocol.hpp"

#include <bit>
#include <cstring>
#include <sstream>

#include "io/binary_io.hpp"

namespace spkadd::net {

namespace {

// Header layout, little-endian (docs/PROTOCOL.md is normative):
//   offset 0  u32 magic
//   offset 4  u16 version
//   offset 6  u8  verb (request) / status (response)
//   offset 7  u8  reserved (must be 0 on the wire, ignored on read)
//   offset 8  u32 tenant_len (responses: must be 0)
//   offset 12 u64 arg
//   offset 20 u32 payload_len
// Fixed-width fields are memcpy'd (alignment-safe); the host is
// little-endian on every supported target, asserted at build time.
static_assert(kHeaderBytes == 24);
static_assert(std::endian::native == std::endian::little,
              "SPKN framing memcpy's little-endian fields");

template <class T>
void put(std::string& out, T v) {
  char bytes[sizeof(T)];
  std::memcpy(bytes, &v, sizeof(T));
  out.append(bytes, sizeof(T));
}

template <class T>
T get(std::string_view buf, std::size_t offset) {
  T v{};
  std::memcpy(&v, buf.data() + offset, sizeof(T));
  return v;
}

void check_bounds(std::uint32_t tenant_len, std::uint32_t payload_len) {
  if (tenant_len > kMaxTenantLen)
    throw ProtocolError(Status::kBadTenant,
                        "tenant name over " +
                            std::to_string(kMaxTenantLen) + " bytes");
  if (payload_len > kMaxPayloadLen)
    throw ProtocolError(Status::kOversizedPayload,
                        "payload over " + std::to_string(kMaxPayloadLen) +
                            " bytes");
}

void encode_frame(std::string& out, std::uint32_t magic, std::uint8_t code,
                  std::string_view tenant, std::uint64_t arg,
                  std::string_view payload) {
  put<std::uint32_t>(out, magic);
  put<std::uint16_t>(out, kProtocolVersion);
  put<std::uint8_t>(out, code);
  put<std::uint8_t>(out, 0);  // reserved
  put<std::uint32_t>(out, static_cast<std::uint32_t>(tenant.size()));
  put<std::uint64_t>(out, arg);
  put<std::uint32_t>(out, static_cast<std::uint32_t>(payload.size()));
  out.append(tenant);
  out.append(payload);
}

/// Shared header validation + completeness check. Returns 0 when the
/// buffer is too short for header + blobs (never throws for that).
std::size_t decode_frame(std::string_view buf, std::uint32_t want_magic,
                         std::uint8_t max_code, Status bad_code_status,
                         std::uint8_t& code, std::string& tenant,
                         std::uint64_t& arg, std::string& payload) {
  if (buf.size() < kHeaderBytes) return 0;
  // Validation order matters: magic and version identify the stream
  // before any length field is trusted, and both length bounds are
  // checked BEFORE sizing any allocation from the wire.
  if (get<std::uint32_t>(buf, 0) != want_magic)
    throw ProtocolError(Status::kBadMagic, "bad frame magic");
  if (get<std::uint16_t>(buf, 4) != kProtocolVersion)
    throw ProtocolError(Status::kBadVersion,
                        "unsupported protocol version");
  code = get<std::uint8_t>(buf, 6);
  if (code > max_code)
    throw ProtocolError(bad_code_status, "unknown verb/status code");
  const auto tenant_len = get<std::uint32_t>(buf, 8);
  arg = get<std::uint64_t>(buf, 12);
  const auto payload_len = get<std::uint32_t>(buf, 20);
  check_bounds(tenant_len, payload_len);
  const std::size_t total = kHeaderBytes +
                            static_cast<std::size_t>(tenant_len) +
                            static_cast<std::size_t>(payload_len);
  if (buf.size() < total) return 0;  // need more bytes
  tenant.assign(buf.substr(kHeaderBytes, tenant_len));
  payload.assign(buf.substr(kHeaderBytes + tenant_len, payload_len));
  return total;
}

}  // namespace

const char* status_name(Status s) {
  switch (s) {
    case Status::kOk: return "ok";
    case Status::kBadMagic: return "bad-magic";
    case Status::kBadVersion: return "bad-version";
    case Status::kBadVerb: return "bad-verb";
    case Status::kBadTenant: return "bad-tenant";
    case Status::kOversizedPayload: return "oversized-payload";
    case Status::kBadPayload: return "bad-payload";
    case Status::kUnknownTenant: return "unknown-tenant";
    case Status::kBadWindow: return "bad-window";
    case Status::kShapeMismatch: return "shape-mismatch";
    case Status::kStopped: return "stopped";
    case Status::kInternal: return "internal";
  }
  return "unknown";
}

void encode_request(const Request& req, std::string& out) {
  const auto code = static_cast<std::uint8_t>(req.verb);
  if (code < 1 || code > static_cast<std::uint8_t>(Verb::kMetrics))
    throw ProtocolError(Status::kBadVerb, "invalid verb");
  check_bounds(static_cast<std::uint32_t>(req.tenant.size()),
               static_cast<std::uint32_t>(req.payload.size()));
  encode_frame(out, kRequestMagic, code, req.tenant, req.arg,
               req.payload);
}

void encode_response(const Response& resp, std::string& out) {
  encode_frame(out, kResponseMagic,
               static_cast<std::uint8_t>(resp.status), {}, resp.arg,
               resp.payload);
}

std::size_t try_decode_request(std::string_view buf, Request& out) {
  std::uint8_t code = 0;
  const std::size_t n = decode_frame(
      buf, kRequestMagic, static_cast<std::uint8_t>(Verb::kMetrics),
      Status::kBadVerb, code, out.tenant, out.arg, out.payload);
  if (n == 0) return 0;
  if (code == 0)
    throw ProtocolError(Status::kBadVerb, "unknown verb/status code");
  out.verb = static_cast<Verb>(code);
  return n;
}

std::size_t try_decode_response(std::string_view buf, Response& out) {
  std::uint8_t code = 0;
  std::string tenant;  // responses carry no tenant; tolerated if empty
  const std::size_t n = decode_frame(
      buf, kResponseMagic, static_cast<std::uint8_t>(Status::kInternal),
      Status::kBadVerb, code, tenant, out.arg, out.payload);
  if (n == 0) return 0;
  out.status = static_cast<Status>(code);
  return n;
}

std::string encode_matrix(const CscMatrix<std::int32_t, double>& m) {
  std::ostringstream out(std::ios::binary);
  io::write_binary(out, m);
  return std::move(out).str();
}

CscMatrix<std::int32_t, double> decode_matrix(
    const std::string& payload) {
  std::istringstream in(payload, std::ios::binary);
  try {
    return io::read_binary(in);
  } catch (const std::exception& e) {
    throw ProtocolError(Status::kBadPayload,
                        std::string("matrix payload: ") + e.what());
  }
}

}  // namespace spkadd::net
