// Client — a small blocking SPKN client for the aggregation daemon:
// the counterpart of net/server.hpp used by the loadgen bench
// (bench/bench_daemon.cpp), the daemon tests and example programs.
//
// One Client owns one TCP connection. Requests are answered in order
// (the server serializes per connection), so the client supports both
// strict request/response calls (submit/snapshot/drain/stats) and a
// pipelined mode — submit_async() queues encoded frames locally,
// flush() writes them in one burst, collect_acks() reads the
// responses — which is what keeps ≥8 loadgen connections busy enough
// to exercise the server's per-poll-cycle burst batching.
//
// Thread-safety contract: a Client is NOT thread-safe; use one Client
// per thread (each loadgen connection owns its own). Distinct Clients
// share nothing.
// Bit-identity guarantee: snapshot() returns the server's matrix
// decoded from the SPKB payload bit-exactly (net/protocol.hpp), so
// client-side verification against a local reference fold is exact.
#pragma once

#include <cstdint>
#include <string>

#include "net/protocol.hpp"

namespace spkadd::net {

class Client {
 public:
  using Matrix = CscMatrix<std::int32_t, double>;

  /// A snapshot response decoded client-side.
  struct SnapshotResult {
    Status status = Status::kOk;
    Matrix sum;
    std::uint64_t epoch = 0;
  };

  /// Connects (blocking). Throws std::runtime_error on failure.
  Client(const std::string& host, std::uint16_t port);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;
  Client(Client&& other) noexcept;

  /// Submit one timestamped update and wait for the ack.
  Status submit(const std::string& tenant, std::uint64_t ts,
                const Matrix& update);

  /// Pipelined submit: queue the frame locally (no I/O). Pair with
  /// flush() + collect_acks().
  void submit_async(const std::string& tenant, std::uint64_t ts,
                    const Matrix& update);

  /// Write every queued frame to the socket in one blocking burst.
  void flush();

  /// Read `n` pending responses; returns how many carried kOk.
  std::size_t collect_acks(std::size_t n);

  /// Windowed snapshot of `tenant` (0 = the whole live ring).
  SnapshotResult snapshot(const std::string& tenant,
                          std::uint64_t window_buckets = 0);

  /// Barrier: every update accepted so far is folded. Returns the ack
  /// status; `applied_out` (optional) receives the folded count.
  Status drain(std::uint64_t* applied_out = nullptr);

  /// Server + service counters as JSON text (empty on a non-Ok ack).
  std::string stats_json(Status* status_out = nullptr);

  /// Prometheus text exposition via the SPKN metrics verb (empty on a
  /// non-Ok ack).
  std::string metrics_text(Status* status_out = nullptr);

  /// Write raw bytes to the socket (tests: inject malformed frames).
  void send_raw(const std::string& bytes);

  /// Read one response frame (blocking). Throws std::runtime_error on
  /// EOF / socket error, ProtocolError on an undecodable frame.
  Response recv_response();

  void close();

 private:
  void send_request(const Request& req);
  void send_all(const char* data, std::size_t size);

  int fd_ = -1;
  std::string inbuf_;   ///< bytes read but not yet decoded
  std::string outbuf_;  ///< frames queued by submit_async
};

}  // namespace spkadd::net
