// Anchor translation unit for the spgemm library (all algorithms are
// templates in local_spgemm.hpp).
#include "spgemm/local_spgemm.hpp"

namespace spkadd::spgemm {
// Intentionally empty: ensures the header parses standalone and gives the
// static library at least one object file.
}  // namespace spkadd::spgemm
