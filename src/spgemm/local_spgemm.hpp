// Local (shared-memory) sparse matrix-matrix multiplication, C = A * B.
//
// This is the substrate that *produces* the SpKAdd inputs in the paper's
// motivating application: every stage of distributed sparse SUMMA performs a
// local SpGEMM, and the per-stage products are then reduced with SpKAdd
// (paper Fig. 5/6). Two accumulators are provided, mirroring the SpKAdd
// data-structure story:
//   * Hash  — Gustavson's column algorithm with a hash-table accumulator
//             (symbolic + numeric phases); can emit unsorted columns, which
//             is what makes the "Unsorted Hash" pipeline of Fig. 6 possible.
//   * Heap  — k-way merge of the scaled columns of A selected by B(:,j),
//             always sorted, the CombBLAS default the paper replaces.
#pragma once

#include "util/omp_compat.hpp"

#include <span>
#include <stdexcept>
#include <vector>

#include "core/column_kernels.hpp"
#include "core/options.hpp"
#include "core/workspace.hpp"
#include "matrix/csc.hpp"
#include "util/prefix_sum.hpp"
#include "util/radix_sort.hpp"
#include "util/thread_control.hpp"

namespace spkadd::spgemm {

/// Accumulator choice for the local multiply.
enum class Accumulator { Hash, Heap };

struct SpgemmOptions {
  Accumulator accumulator = Accumulator::Hash;
  /// Sort output columns. Heap output is sorted regardless; hash skips the
  /// per-column sort when false (the 20% saving reported in Fig. 6).
  bool sorted_output = true;
  int threads = 0;  ///< 0 = omp default
};

namespace detail {

/// Symbolic pass: nnz(C(:,j)) via a keys-only hash table over the row
/// indices of all A(:,k) with k in pattern(B(:,j)).
template <class IndexT, class ValueT>
std::size_t symbolic_column(const CscMatrix<IndexT, ValueT>& a,
                            const ColumnView<IndexT, ValueT>& bcol,
                            core::SymbolicHashWorkspace<IndexT>& ws) {
  std::size_t flops = 0;
  for (std::size_t t = 0; t < bcol.nnz(); ++t)
    flops += a.col_nnz(bcol.rows[t]);
  if (flops == 0) return 0;
  ws.reset(core::hash_table_entries(flops));
  std::size_t nz = 0;
  for (std::size_t t = 0; t < bcol.nnz(); ++t) {
    const auto acol = a.column(bcol.rows[t]);
    for (std::size_t i = 0; i < acol.nnz(); ++i) {
      const IndexT r = acol.rows[i];
      std::size_t h = core::hash_index(r, ws.mask);
      for (;;) {
        if (ws.keys[h] == core::SymbolicHashWorkspace<IndexT>::kEmpty) {
          ws.keys[h] = r;
          ++nz;
          break;
        }
        if (ws.keys[h] == r) break;
        h = (h + 1) & ws.mask;
      }
    }
  }
  return nz;
}

/// Numeric pass with a hash accumulator; writes exactly `expected` entries.
template <class IndexT, class ValueT>
void numeric_column_hash(const CscMatrix<IndexT, ValueT>& a,
                         const ColumnView<IndexT, ValueT>& bcol,
                         std::size_t expected,
                         core::HashWorkspace<IndexT, ValueT>& ws,
                         IndexT* out_rows, ValueT* out_vals, bool sorted) {
  if (expected == 0) return;
  ws.reset(core::hash_table_entries(expected));
  for (std::size_t t = 0; t < bcol.nnz(); ++t) {
    const auto acol = a.column(bcol.rows[t]);
    const ValueT bval = bcol.vals[t];
    for (std::size_t i = 0; i < acol.nnz(); ++i) {
      const IndexT r = acol.rows[i];
      const ValueT v = acol.vals[i] * bval;
      std::size_t h = core::hash_index(r, ws.mask);
      for (;;) {
        if (ws.keys[h] == core::HashWorkspace<IndexT, ValueT>::kEmpty) {
          ws.keys[h] = r;
          ws.vals[h] = v;
          break;
        }
        if (ws.keys[h] == r) {
          ws.vals[h] += v;
          break;
        }
        h = (h + 1) & ws.mask;
      }
    }
  }
  std::size_t out = 0;
  for (std::size_t h = 0; h < ws.capacity(); ++h) {
    if (ws.keys[h] != core::HashWorkspace<IndexT, ValueT>::kEmpty) {
      out_rows[out] = ws.keys[h];
      out_vals[out++] = ws.vals[h];
    }
  }
  if (sorted && out > 1) {
    thread_local util::RadixScratch<IndexT, ValueT> sort_scratch;
    util::radix_sort_pairs(out_rows, out_vals, out, sort_scratch);
  }
}

/// Numeric pass with a heap accumulator: k-way merge of the selected
/// columns of A, scaling each by its B value on extraction. Sorted output
/// by construction. Requires sorted columns of A.
template <class IndexT, class ValueT>
std::size_t numeric_column_heap(const CscMatrix<IndexT, ValueT>& a,
                                const ColumnView<IndexT, ValueT>& bcol,
                                core::HeapWorkspace<IndexT>& ws,
                                std::vector<ValueT>& scale_scratch,
                                std::vector<ColumnView<IndexT, ValueT>>& views,
                                IndexT* out_rows, ValueT* out_vals) {
  views.clear();
  scale_scratch.clear();
  for (std::size_t t = 0; t < bcol.nnz(); ++t) {
    const auto acol = a.column(bcol.rows[t]);
    if (!acol.empty()) {
      views.push_back(acol);
      scale_scratch.push_back(bcol.vals[t]);
    }
  }
  using Node = typename core::HeapWorkspace<IndexT>::Node;
  ws.ensure_k(views.size());
  ws.nodes.clear();
  for (std::size_t i = 0; i < views.size(); ++i) {
    ws.cursor[i] = 0;
    ws.nodes.push_back(Node{views[i].rows[0], static_cast<std::int32_t>(i)});
  }
  auto less = [](const Node& x, const Node& y) { return x.row > y.row; };
  std::make_heap(ws.nodes.begin(), ws.nodes.end(), less);
  std::size_t out = 0;
  while (!ws.nodes.empty()) {
    const Node top = ws.nodes.front();
    const auto src = static_cast<std::size_t>(top.source);
    const ValueT v = views[src].vals[ws.cursor[src]] * scale_scratch[src];
    if (out > 0 && out_rows[out - 1] == top.row) {
      out_vals[out - 1] += v;
    } else {
      out_rows[out] = top.row;
      out_vals[out++] = v;
    }
    const std::size_t next = ++ws.cursor[src];
    if (next < views[src].nnz()) {
      std::size_t hole = 0;
      const std::size_t n = ws.nodes.size();
      Node item{views[src].rows[next], top.source};
      for (;;) {
        std::size_t child = 2 * hole + 1;
        if (child >= n) break;
        if (child + 1 < n && ws.nodes[child + 1].row < ws.nodes[child].row)
          ++child;
        if (ws.nodes[child].row >= item.row) break;
        ws.nodes[hole] = ws.nodes[child];
        hole = child;
      }
      ws.nodes[hole] = item;
    } else {
      std::pop_heap(ws.nodes.begin(), ws.nodes.end(), less);
      ws.nodes.pop_back();
    }
  }
  return out;
}

}  // namespace detail

/// C = A * B, emitted into `out` (which is reset to an m x n product). A is
/// m x p, B is p x n. Column-parallel over the columns of B/C with
/// thread-private accumulators and two-phase exact allocation; the scratch
/// comes from the caller's Runtime (the same per-thread superset pool the
/// SpKAdd drivers use), so a streaming consumer — the SUMMA pipeline
/// emitting stage products straight into accumulator-owned staging buffers
/// — keeps one hot scratch pool across every multiply *and* every fold.
template <class IndexT, class ValueT>
void multiply_into(const CscMatrix<IndexT, ValueT>& a,
                   const CscMatrix<IndexT, ValueT>& b,
                   const SpgemmOptions& opts,
                   core::Runtime<IndexT, ValueT>& rt,
                   CscMatrix<IndexT, ValueT>& out) {
  if (a.cols() != b.rows())
    throw std::invalid_argument("spgemm: inner dimensions disagree");
  if (opts.accumulator == Accumulator::Heap && !a.is_sorted())
    throw std::invalid_argument("spgemm(Heap): A must have sorted columns");
  const IndexT n = b.cols();
  const int nthreads =
      opts.threads > 0 ? opts.threads : util::current_max_threads();
  rt.ensure_threads(nthreads);

  // Symbolic phase.
  std::vector<IndexT> counts(static_cast<std::size_t>(n));
#pragma omp parallel for schedule(dynamic, 8) num_threads(nthreads)
  for (IndexT j = 0; j < n; ++j) {
    auto& s = rt.scratch[static_cast<std::size_t>(omp_get_thread_num())];
    counts[static_cast<std::size_t>(j)] = static_cast<IndexT>(
        detail::symbolic_column(a, b.column(j), s.sym_table));
  }

  out = CscMatrix<IndexT, ValueT>(a.rows(), n);
  out.set_structure(util::counts_to_offsets(std::span<const IndexT>(counts)));
  auto* out_rows = out.mutable_row_idx().data();
  auto* out_vals = out.mutable_values().data();
  const auto cp = out.col_ptr();

  // Numeric phase.
  if (opts.accumulator == Accumulator::Hash) {
#pragma omp parallel for schedule(dynamic, 8) num_threads(nthreads)
    for (IndexT j = 0; j < n; ++j) {
      auto& s = rt.scratch[static_cast<std::size_t>(omp_get_thread_num())];
      const auto lo = static_cast<std::size_t>(cp[static_cast<std::size_t>(j)]);
      const auto expected = static_cast<std::size_t>(
          cp[static_cast<std::size_t>(j) + 1] -
          cp[static_cast<std::size_t>(j)]);
      detail::numeric_column_hash(a, b.column(j), expected, s.table,
                                  out_rows + lo, out_vals + lo,
                                  opts.sorted_output);
    }
  } else {
#pragma omp parallel for schedule(dynamic, 8) num_threads(nthreads)
    for (IndexT j = 0; j < n; ++j) {
      auto& s = rt.scratch[static_cast<std::size_t>(omp_get_thread_num())];
      const auto lo = static_cast<std::size_t>(cp[static_cast<std::size_t>(j)]);
      detail::numeric_column_heap(a, b.column(j), s.heap, s.vals_scratch,
                                  s.views, out_rows + lo, out_vals + lo);
    }
  }
}

/// C = A * B with a call-local Runtime (the one-shot convenience API).
template <class IndexT, class ValueT>
[[nodiscard]] CscMatrix<IndexT, ValueT> multiply(
    const CscMatrix<IndexT, ValueT>& a, const CscMatrix<IndexT, ValueT>& b,
    const SpgemmOptions& opts = {}) {
  core::Runtime<IndexT, ValueT> rt;
  CscMatrix<IndexT, ValueT> c;
  multiply_into(a, b, opts, rt, c);
  return c;
}

}  // namespace spkadd::spgemm
