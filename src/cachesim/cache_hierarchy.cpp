#include "cachesim/cache_hierarchy.hpp"

#include <sstream>
#include <stdexcept>

namespace spkadd::cachesim {

namespace {

/// Assign default miss penalties: positional for the first levels, DRAM
/// for the last (whatever the depth).
void fill_default_penalties(std::vector<LevelSpec>& levels) {
  for (std::size_t i = 0; i < levels.size(); ++i) {
    if (levels[i].miss_penalty > 0.0) continue;
    levels[i].miss_penalty =
        (i + 1 == levels.size())
            ? kDramMissPenalty
            : kDefaultMissPenalty[i < 3 ? i : 2];
  }
}

LevelSpec from_cache_level(const util::CacheLevel& l, std::string name) {
  LevelSpec spec;
  spec.name = std::move(name);
  spec.bytes = l.bytes;
  spec.ways = l.ways > 0 ? l.ways : 8;
  spec.line_bytes = l.line_bytes > 0 ? static_cast<int>(l.line_bytes) : 64;
  spec.shared = l.shared;
  return spec;
}

}  // namespace

HierarchySpec HierarchySpec::from_machine(const util::MachineInfo& m) {
  HierarchySpec spec;
  if (m.l1.bytes > 0) spec.levels.push_back(from_cache_level(m.l1, "L1"));
  if (m.l2.bytes > 0 && m.l2.bytes > m.l1.bytes)
    spec.levels.push_back(from_cache_level(m.l2, "L2"));
  if (m.llc.bytes > 0 &&
      (spec.levels.empty() || m.llc.bytes > spec.levels.back().bytes)) {
    LevelSpec llc = from_cache_level(m.llc, "LLC");
    llc.shared = true;
    spec.levels.push_back(std::move(llc));
  }
  if (spec.levels.empty())  // pathological detection: paper's Skylake LLC
    spec.levels.push_back(LevelSpec{"LLC", 32ull << 20, 16, 64, true, 0.0});
  fill_default_penalties(spec.levels);
  spec.validate();
  return spec;
}

HierarchySpec HierarchySpec::detected() {
  return from_machine(util::cached_machine());
}

HierarchySpec HierarchySpec::single(const CacheConfig& config) {
  HierarchySpec spec;
  spec.levels.push_back(LevelSpec{"LLC", config.bytes, config.ways,
                                  config.line_bytes, true,
                                  kDramMissPenalty});
  spec.validate();
  return spec;
}

HierarchySpec HierarchySpec::from_cli_spec(const std::string& text) {
  HierarchySpec spec;
  for (const util::CacheLevelSpec& l : util::parse_cache_spec(text))
    spec.levels.push_back(LevelSpec{l.name, l.bytes, l.ways, 64, false, 0.0});
  spec.levels.back().shared = true;
  fill_default_penalties(spec.levels);
  spec.validate();
  return spec;
}

void HierarchySpec::validate() const {
  if (levels.empty())
    throw std::invalid_argument("HierarchySpec: needs at least one level");
  for (std::size_t i = 0; i < levels.size(); ++i) {
    const LevelSpec& l = levels[i];
    if (l.bytes == 0 || l.ways <= 0 || l.line_bytes <= 0)
      throw std::invalid_argument("HierarchySpec: level '" + l.name +
                                  "' has a zero/negative dimension");
    if (i > 0 && l.bytes <= levels[i - 1].bytes)
      throw std::invalid_argument(
          "HierarchySpec: capacities must strictly increase outermost-in ('" +
          levels[i - 1].name + "' >= '" + l.name + "')");
  }
}

std::string HierarchySpec::to_string() const {
  std::vector<util::CacheLevelSpec> out;
  out.reserve(levels.size());
  for (const LevelSpec& l : levels)
    out.push_back(util::CacheLevelSpec{l.name, l.bytes, l.ways});
  return util::format_cache_spec(out);
}

CacheHierarchy::CacheHierarchy(const HierarchySpec& spec) : spec_(spec) {
  spec_.validate();
  levels_.reserve(spec_.levels.size());
  for (const LevelSpec& l : spec_.levels) {
    CacheConfig cfg;
    cfg.bytes = l.bytes;
    cfg.ways = l.ways;
    cfg.line_bytes = l.line_bytes;
    levels_.emplace_back(cfg);
  }
}

bool CacheHierarchy::access(std::uint64_t addr) {
  // First hit stops the walk; CacheModel::access fills on miss, so every
  // traversed level ends up holding the line (inclusive fill).
  for (CacheModel& level : levels_)
    if (level.access(addr)) return true;
  return false;
}

void CacheHierarchy::access_range(std::uint64_t addr, std::uint64_t size) {
  if (size == 0) return;
  const std::uint64_t line =
      static_cast<std::uint64_t>(spec_.levels.front().line_bytes);
  const std::uint64_t first = addr & ~(line - 1);
  const std::uint64_t last = (addr + size - 1) & ~(line - 1);
  for (std::uint64_t a = first; a <= last; a += line) access(a);
}

std::vector<CacheStats> CacheHierarchy::stats() const {
  std::vector<CacheStats> out;
  out.reserve(levels_.size());
  for (const CacheModel& level : levels_) out.push_back(level.stats());
  return out;
}

void CacheHierarchy::reset_stats() {
  for (CacheModel& level : levels_) level.reset_stats();
}

double CacheHierarchy::weighted_miss_cost() const {
  double cost = 0.0;
  for (std::size_t i = 0; i < levels_.size(); ++i)
    cost += static_cast<double>(levels_[i].stats().misses) *
            spec_.levels[i].miss_penalty;
  return cost;
}

}  // namespace spkadd::cachesim
