// Pluggable multi-level cache hierarchy.
//
// Generalizes the single CacheModel into an ordered L1/L2/.../LLC stack with
// inclusive-fill LRU semantics: an access probes the levels outermost-in
// (L1 first); the first hit stops the walk — an L1 hit never touches L2 —
// and a miss at every level installs the line in each level it traversed.
// Per-level CacheStats (hits/misses/evictions) plus a latency-weighted miss
// cost turn an address trace into one comparable scalar, which is what the
// calibration sweep (bench_calibration) records per (kernel, k, density,
// chunk-width) cell and the Hybrid planner consumes as its measured
// decision surface.
//
// A HierarchySpec defaults to the detected machine (util::cached_machine)
// and accepts explicit per-level overrides — e.g. the paper's 8MB-LLC EPYC
// modeled from a different host — via util::parse_cache_spec strings.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cachesim/cache_model.hpp"
#include "util/cache_info.hpp"
#include "util/cli.hpp"

namespace spkadd::cachesim {

/// One configurable hierarchy level.
struct LevelSpec {
  std::string name;           ///< "L1", "L2", "LLC", ...
  std::uint64_t bytes = 0;    ///< capacity of one cache of this level
  int ways = 8;               ///< associativity
  int line_bytes = 64;
  bool shared = false;        ///< shared among threads (typical LLC):
                              ///< a traced thread gets bytes/threads
  /// Cycles charged per miss at this level (the cost of going one level
  /// further out; the last level's penalty is the memory round-trip).
  double miss_penalty = 0.0;
};

/// Ordered outermost-in (L1 first) level stack.
struct HierarchySpec {
  std::vector<LevelSpec> levels;

  /// The detected machine's L1/L2/LLC (util::cached_machine, one sysfs
  /// probe per process). Levels with zero capacity (no L2 on some VMs) are
  /// dropped.
  [[nodiscard]] static HierarchySpec detected();
  [[nodiscard]] static HierarchySpec from_machine(const util::MachineInfo& m);

  /// Single-level hierarchy behaving exactly like the old CacheModel (the
  /// Table V compatibility shape).
  [[nodiscard]] static HierarchySpec single(const CacheConfig& config);

  /// Explicit override from a "L1:32K:8,L2:1M:16,LLC:8M:16" CLI spec; the
  /// last level is marked shared. Throws std::invalid_argument on
  /// malformed specs (util::parse_cache_spec) or non-increasing sizes.
  [[nodiscard]] static HierarchySpec from_cli_spec(const std::string& spec);

  /// Throws std::invalid_argument unless there is >= 1 level and the
  /// capacities strictly increase outermost-in.
  void validate() const;

  /// Canonical "NAME:SIZE:WAYS,..." rendering (table provenance).
  [[nodiscard]] std::string to_string() const;
};

/// Default per-level miss penalties (cycles, Skylake-ish): filled in by the
/// spec constructors when a level's penalty is 0. Index by distance from
/// the innermost level; the last level always gets the DRAM penalty.
inline constexpr double kDefaultMissPenalty[3] = {12.0, 40.0, 200.0};
inline constexpr double kDramMissPenalty = 200.0;

/// Inclusive-fill multi-level LRU cache simulator. Each level reuses the
/// CacheModel set-associative core, so a single-level hierarchy reproduces
/// CacheModel's hit/miss sequence exactly on any address stream.
class CacheHierarchy {
 public:
  explicit CacheHierarchy(const HierarchySpec& spec);

  /// Touch one byte address; returns true when any level hit. Probes
  /// levels in order and stops at the first hit (an L1 hit never counts an
  /// L2 access); on a full miss the line is filled into every level.
  bool access(std::uint64_t addr);

  /// Touch a [addr, addr+size) range (every line the innermost level
  /// spans).
  void access_range(std::uint64_t addr, std::uint64_t size);

  [[nodiscard]] std::size_t depth() const { return levels_.size(); }
  [[nodiscard]] const LevelSpec& level_spec(std::size_t i) const {
    return spec_.levels[i];
  }
  [[nodiscard]] const CacheStats& level_stats(std::size_t i) const {
    return levels_[i].stats();
  }
  [[nodiscard]] std::vector<CacheStats> stats() const;
  void reset_stats();

  /// Latency-weighted cost of the misses recorded so far:
  /// sum over levels of misses(level) * miss_penalty(level).
  [[nodiscard]] double weighted_miss_cost() const;

 private:
  HierarchySpec spec_;
  std::vector<CacheModel> levels_;
};

}  // namespace spkadd::cachesim
