// Trace-driven set-associative cache simulator.
//
// Substitutes for the Cachegrind profiling behind the paper's Table V: the
// paper measures last-level-cache misses of the hash vs sliding-hash
// SpKAdd; we feed the same address streams through a deterministic LRU
// cache model and count misses. Absolute counts differ from Cachegrind (no
// instruction fetches, no allocator noise) but the comparison the table
// makes — sliding hash misses much less once tables outgrow the LLC — is a
// property of the address stream, which is identical.
#pragma once

#include <cstdint>
#include <vector>

namespace spkadd::cachesim {

struct CacheConfig {
  /// Total capacity (default: the paper's Skylake LLC).
  std::uint64_t bytes = 32ull << 20;
  int ways = 16;
  int line_bytes = 64;
};

struct CacheStats {
  std::uint64_t accesses = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;  ///< valid lines replaced by a fill
  [[nodiscard]] std::uint64_t hits() const { return accesses - misses; }
  [[nodiscard]] double miss_rate() const {
    return accesses == 0 ? 0.0
                         : static_cast<double>(misses) /
                               static_cast<double>(accesses);
  }
  CacheStats& operator+=(const CacheStats& o) {
    accesses += o.accesses;
    misses += o.misses;
    evictions += o.evictions;
    return *this;
  }
};

/// Set-associative cache with true-LRU replacement. Addresses are plain
/// 64-bit byte addresses; the model tracks tags only.
class CacheModel {
 public:
  explicit CacheModel(const CacheConfig& config);

  /// Touch one byte address; returns true on hit. Updates stats.
  bool access(std::uint64_t addr);

  /// Touch a [addr, addr+size) range (every line it spans).
  void access_range(std::uint64_t addr, std::uint64_t size);

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  void reset_stats() { stats_ = {}; }

  [[nodiscard]] std::uint64_t sets() const { return sets_; }

 private:
  struct Line {
    std::uint64_t tag = ~0ull;
    std::uint64_t lru = 0;  ///< global timestamp of last use
  };
  std::uint64_t sets_;
  int ways_;
  unsigned line_shift_;
  std::uint64_t tick_ = 0;
  std::vector<Line> lines_;  ///< sets_ x ways_, row-major
  CacheStats stats_;
};

}  // namespace spkadd::cachesim
