#include "cachesim/traced_spkadd.hpp"

#include <algorithm>
#include <vector>

#include "core/column_kernels.hpp"
#include "core/workspace.hpp"
#include "util/bit_ops.hpp"

namespace spkadd::cachesim {
namespace {

using Csc = CscMatrix<std::int32_t, double>;
using View = ColumnView<std::int32_t, double>;

// Synthetic address layout: widely separated regions so streams never alias.
constexpr std::uint64_t kInputBase = 0x1000'0000ull;
constexpr std::uint64_t kInputStride = 0x4000'0000ull;  // per input matrix
constexpr std::uint64_t kTableBase = 0x8000'0000'0000ull;
constexpr std::uint64_t kOutputBase = 0xF000'0000'0000ull;

constexpr std::uint64_t kSymEntryBytes = sizeof(std::int32_t);          // 4
constexpr std::uint64_t kAddEntryBytes =
    sizeof(std::int32_t) + sizeof(double);                              // 12

/// One simulated thread's table-entry budget (Alg. 7/8 line 3 rearranged).
std::size_t entry_cap(const TraceConfig& cfg, std::uint64_t entry_bytes) {
  if (cfg.max_table_entries != 0)
    return std::max<std::size_t>(cfg.max_table_entries, 8);
  // Factor 2 mirrors core::detail::table_entry_cap: tables allocate 2x the
  // key count for the <= 0.5 load factor.
  const std::size_t cap = static_cast<std::size_t>(
      cfg.cache.bytes /
      (2 * entry_bytes *
       static_cast<std::uint64_t>(std::max(1, cfg.threads))));
  return std::max<std::size_t>(cap, 8);
}

/// Streaming read of `count` input entries of one matrix's column starting
/// at in-matrix entry offset `first`.
void stream_input(CacheModel& cache, std::size_t matrix_id, std::size_t first,
                  std::size_t count, std::uint64_t entry_bytes) {
  const std::uint64_t base = kInputBase + kInputStride * matrix_id;
  cache.access_range(base + entry_bytes * first, entry_bytes * count);
}

/// Trace Alg. 6 on one set of (sub)columns; returns distinct-row count.
/// `table` provides real collision behaviour; slot touches go to the cache.
std::size_t trace_symbolic_part(CacheModel& cache,
                                std::span<const View> views,
                                std::span<const std::size_t> matrix_ids,
                                std::span<const std::size_t> entry_offsets,
                                core::SymbolicHashWorkspace<std::int32_t>&
                                    table) {
  std::size_t inz = 0;
  for (const auto& v : views) inz += v.nnz();
  if (inz == 0) return 0;
  const std::size_t entries = core::hash_table_entries(inz);
  table.reset(entries);
  // Table initialization sweeps the table once.
  cache.access_range(kTableBase, entries * kSymEntryBytes);

  std::size_t nz = 0;
  for (std::size_t s = 0; s < views.size(); ++s) {
    const View& v = views[s];
    stream_input(cache, matrix_ids[s], entry_offsets[s], v.nnz(),
                 kSymEntryBytes);
    for (std::size_t i = 0; i < v.nnz(); ++i) {
      const std::int32_t r = v.rows[i];
      std::size_t h = core::hash_index(r, table.mask);
      for (;;) {
        cache.access(kTableBase + h * kSymEntryBytes);
        if (table.keys[h] ==
            core::SymbolicHashWorkspace<std::int32_t>::kEmpty) {
          table.keys[h] = r;
          ++nz;
          break;
        }
        if (table.keys[h] == r) break;
        h = (h + 1) & table.mask;
      }
    }
  }
  return nz;
}

/// Trace Alg. 5 on one set of (sub)columns; returns entries emitted.
std::size_t trace_add_part(CacheModel& cache, std::span<const View> views,
                           std::span<const std::size_t> matrix_ids,
                           std::span<const std::size_t> entry_offsets,
                           std::size_t expected, std::size_t out_cursor,
                           core::SymbolicHashWorkspace<std::int32_t>& table) {
  if (expected == 0) return 0;
  const std::size_t entries = core::hash_table_entries(expected);
  table.reset(entries);
  cache.access_range(kTableBase, entries * kAddEntryBytes);

  std::size_t emitted = 0;
  for (std::size_t s = 0; s < views.size(); ++s) {
    const View& v = views[s];
    stream_input(cache, matrix_ids[s], entry_offsets[s], v.nnz(),
                 kAddEntryBytes);
    for (std::size_t i = 0; i < v.nnz(); ++i) {
      const std::int32_t r = v.rows[i];
      std::size_t h = core::hash_index(r, table.mask);
      for (;;) {
        cache.access(kTableBase + h * kAddEntryBytes);
        if (table.keys[h] ==
            core::SymbolicHashWorkspace<std::int32_t>::kEmpty) {
          table.keys[h] = r;
          ++emitted;
          break;
        }
        if (table.keys[h] == r) break;
        h = (h + 1) & table.mask;
      }
    }
  }
  // Output sweep: read the table once more, write the emitted run.
  cache.access_range(kTableBase, entries * kAddEntryBytes);
  cache.access_range(kOutputBase + out_cursor * kAddEntryBytes,
                     emitted * kAddEntryBytes);
  return emitted;
}

struct ColumnViews {
  std::vector<View> views;
  std::vector<std::size_t> matrix_ids;
  /// In-matrix entry index of each view start.
  std::vector<std::size_t> entry_offsets;

  void gather(std::span<const Csc> inputs, std::int32_t j) {
    views.clear();
    matrix_ids.clear();
    entry_offsets.clear();
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      auto col = inputs[i].column(j);
      if (col.empty()) continue;
      views.push_back(col);
      matrix_ids.push_back(i);
      entry_offsets.push_back(static_cast<std::size_t>(
          inputs[i].col_ptr()[static_cast<std::size_t>(j)]));
    }
  }

  /// Restrict to a row range (binary search; offsets adjusted).
  void restrict_rows(const ColumnViews& full, std::int32_t r1,
                     std::int32_t r2) {
    views.clear();
    matrix_ids.clear();
    entry_offsets.clear();
    for (std::size_t s = 0; s < full.views.size(); ++s) {
      const View& v = full.views[s];
      auto sub = v.row_range(r1, r2);
      if (sub.empty()) continue;
      views.push_back(sub);
      matrix_ids.push_back(full.matrix_ids[s]);
      entry_offsets.push_back(full.entry_offsets[s] +
                              static_cast<std::size_t>(sub.rows.data() -
                                                       v.rows.data()));
    }
  }
};

}  // namespace

TraceResult trace_hash_spkadd(std::span<const Csc> inputs,
                              const TraceConfig& config) {
  TraceResult result;
  if (inputs.empty()) return result;
  const std::int32_t cols = inputs[0].cols();
  const std::int32_t rows = inputs[0].rows();

  // One thread's fair share of the LLC.
  CacheConfig share = config.cache;
  share.bytes = std::max<std::uint64_t>(
      share.bytes / static_cast<std::uint64_t>(std::max(1, config.threads)),
      static_cast<std::uint64_t>(share.line_bytes * share.ways));
  CacheModel cache(share);

  core::SymbolicHashWorkspace<std::int32_t> table;
  ColumnViews full, part;
  std::vector<std::size_t> out_nnz(static_cast<std::size_t>(cols), 0);

  const std::size_t sym_cap = entry_cap(config, kSymEntryBytes);
  const std::size_t add_cap = entry_cap(config, kAddEntryBytes);

  // ---- Symbolic phase over all columns ----
  for (std::int32_t j = 0; j < cols; ++j) {
    full.gather(inputs, j);
    std::size_t inz = 0;
    for (const auto& v : full.views) inz += v.nnz();
    if (inz == 0) continue;
    const std::size_t parts =
        config.sliding ? util::ceil_div(inz, sym_cap) : 1;
    std::size_t nz = 0;
    if (parts <= 1) {
      nz = trace_symbolic_part(cache, full.views, full.matrix_ids,
                               full.entry_offsets, table);
    } else {
      for (std::size_t p = 0; p < parts; ++p) {
        const auto r1 = static_cast<std::int32_t>(
            static_cast<std::size_t>(rows) * p / parts);
        const auto r2 = static_cast<std::int32_t>(
            static_cast<std::size_t>(rows) * (p + 1) / parts);
        part.restrict_rows(full, r1, r2);
        nz += trace_symbolic_part(cache, part.views, part.matrix_ids,
                                  part.entry_offsets, table);
      }
    }
    out_nnz[static_cast<std::size_t>(j)] = nz;
  }
  result.symbolic = cache.stats();
  cache.reset_stats();

  // ---- Addition phase over all columns ----
  std::size_t out_cursor = 0;
  for (std::int32_t j = 0; j < cols; ++j) {
    const std::size_t onz = out_nnz[static_cast<std::size_t>(j)];
    if (onz == 0) continue;
    full.gather(inputs, j);
    const std::size_t parts =
        config.sliding ? util::ceil_div(onz, add_cap) : 1;
    if (parts <= 1) {
      out_cursor += trace_add_part(cache, full.views, full.matrix_ids,
                                   full.entry_offsets, onz, out_cursor, table);
    } else {
      for (std::size_t p = 0; p < parts; ++p) {
        const auto r1 = static_cast<std::int32_t>(
            static_cast<std::size_t>(rows) * p / parts);
        const auto r2 = static_cast<std::int32_t>(
            static_cast<std::size_t>(rows) * (p + 1) / parts);
        part.restrict_rows(full, r1, r2);
        std::size_t part_in = 0;
        for (const auto& v : part.views) part_in += v.nnz();
        if (part_in == 0) continue;
        // Mirror the driver: keys-only symbolic over the part, then an
        // output-sized numeric table (see kway.hpp).
        const std::size_t part_onz =
            trace_symbolic_part(cache, part.views, part.matrix_ids,
                                part.entry_offsets, table);
        out_cursor +=
            trace_add_part(cache, part.views, part.matrix_ids,
                           part.entry_offsets, part_onz, out_cursor, table);
      }
    }
  }
  result.numeric = cache.stats();
  return result;
}

}  // namespace spkadd::cachesim
