#include "cachesim/traced_spkadd.hpp"

#include <algorithm>
#include <bit>
#include <vector>

#include "core/workspace.hpp"
#include "util/bit_ops.hpp"

namespace spkadd::cachesim {
namespace {

using Csc = CscMatrix<std::int32_t, double>;
using View = ColumnView<std::int32_t, double>;

// Synthetic address layout: widely separated regions so streams never alias.
constexpr std::uint64_t kInputBase = 0x1000'0000ull;
constexpr std::uint64_t kInputStride = 0x4000'0000ull;  // per input matrix
constexpr std::uint64_t kTableBase = 0x8000'0000'0000ull;
constexpr std::uint64_t kHeapBase = 0xA000'0000'0000ull;
constexpr std::uint64_t kSpaBase = 0xB000'0000'0000ull;
constexpr std::uint64_t kTouchedBase = 0xC000'0000'0000ull;
constexpr std::uint64_t kSortBase = 0xD000'0000'0000ull;  // radix pair scratch
constexpr std::uint64_t kDenseBase = 0xE000'0000'0000ull;  // dense value array
constexpr std::uint64_t kDenseMaskBase = 0xE800'0000'0000ull;  // occupancy bits
constexpr std::uint64_t kOutputBase = 0xF000'0000'0000ull;

constexpr std::uint64_t kSymEntryBytes = sizeof(std::int32_t);          // 4
constexpr std::uint64_t kAddEntryBytes =
    sizeof(std::int32_t) + sizeof(double);                              // 12
constexpr std::uint64_t kHeapNodeBytes = 16;  // (row, source) node
constexpr std::uint64_t kSpaCellBytes =
    sizeof(double) + sizeof(std::uint32_t);                             // 12
constexpr std::uint64_t kDenseCellBytes = sizeof(double);               // 8
constexpr std::uint64_t kMaskWordBytes = sizeof(std::uint64_t);         // 8

/// Per-thread view of the hierarchy: private levels keep their capacity,
/// shared levels (the LLC) are divided by the simulated thread count.
HierarchySpec per_thread_share(const HierarchySpec& spec, int threads) {
  HierarchySpec share = spec;
  const auto T = static_cast<std::uint64_t>(std::max(1, threads));
  for (LevelSpec& level : share.levels) {
    if (!level.shared) continue;
    level.bytes = std::max<std::uint64_t>(
        level.bytes / T,
        static_cast<std::uint64_t>(level.line_bytes) *
            static_cast<std::uint64_t>(level.ways));
  }
  // Division can break strict capacity growth (e.g. 48 threads sharing a
  // 32MB LLC behind a 1MB private L2). Keep the outermost level of any
  // non-increasing run: it carries the larger miss penalty, so dropping the
  // swallowed inner level keeps the cost model conservative.
  std::vector<LevelSpec> kept;
  for (auto it = share.levels.rbegin(); it != share.levels.rend(); ++it)
    if (kept.empty() || it->bytes < kept.back().bytes) kept.push_back(*it);
  share.levels.assign(kept.rbegin(), kept.rend());
  return share;
}

/// One simulated thread's table-entry budget (Alg. 7/8 line 3 rearranged)
/// from the *shared* capacity of the outermost level.
std::size_t entry_cap(std::uint64_t shared_bytes, int threads,
                      std::size_t max_table_entries,
                      std::uint64_t entry_bytes) {
  if (max_table_entries != 0)
    return std::max<std::size_t>(max_table_entries, 8);
  // Factor 2 mirrors core::detail::table_entry_cap: tables allocate 2x the
  // key count for the <= 0.5 load factor.
  const std::size_t cap = static_cast<std::size_t>(
      shared_bytes /
      (2 * entry_bytes * static_cast<std::uint64_t>(std::max(1, threads))));
  return std::max<std::size_t>(cap, 8);
}

/// Streaming read of `count` input entries of one matrix's column starting
/// at in-matrix entry offset `first`.
void stream_input(CacheHierarchy& cache, std::size_t matrix_id,
                  std::size_t first, std::size_t count,
                  std::uint64_t entry_bytes) {
  const std::uint64_t base = kInputBase + kInputStride * matrix_id;
  cache.access_range(base + entry_bytes * first, entry_bytes * count);
}

/// Trace Alg. 6 on one set of (sub)columns; returns distinct-row count.
/// `table` provides real collision behaviour; slot touches go to the cache.
std::size_t trace_symbolic_part(CacheHierarchy& cache,
                                std::span<const View> views,
                                std::span<const std::size_t> matrix_ids,
                                std::span<const std::size_t> entry_offsets,
                                core::SymbolicHashWorkspace<std::int32_t>&
                                    table) {
  std::size_t inz = 0;
  for (const auto& v : views) inz += v.nnz();
  if (inz == 0) return 0;
  const std::size_t entries = core::hash_table_entries(inz);
  table.reset(entries);
  // Table initialization sweeps the table once.
  cache.access_range(kTableBase, entries * kSymEntryBytes);

  std::size_t nz = 0;
  for (std::size_t s = 0; s < views.size(); ++s) {
    const View& v = views[s];
    stream_input(cache, matrix_ids[s], entry_offsets[s], v.nnz(),
                 kSymEntryBytes);
    for (std::size_t i = 0; i < v.nnz(); ++i) {
      const std::int32_t r = v.rows[i];
      std::size_t h = core::hash_index(r, table.mask);
      for (;;) {
        cache.access(kTableBase + h * kSymEntryBytes);
        if (table.keys[h] ==
            core::SymbolicHashWorkspace<std::int32_t>::kEmpty) {
          table.keys[h] = r;
          ++nz;
          break;
        }
        if (table.keys[h] == r) break;
        h = (h + 1) & table.mask;
      }
    }
  }
  return nz;
}

/// Trace Alg. 5 on one set of (sub)columns; returns entries emitted.
std::size_t trace_add_part(CacheHierarchy& cache, std::span<const View> views,
                           std::span<const std::size_t> matrix_ids,
                           std::span<const std::size_t> entry_offsets,
                           std::size_t expected, std::size_t out_cursor,
                           core::SymbolicHashWorkspace<std::int32_t>& table) {
  if (expected == 0) return 0;
  const std::size_t entries = core::hash_table_entries(expected);
  table.reset(entries);
  cache.access_range(kTableBase, entries * kAddEntryBytes);

  std::size_t emitted = 0;
  for (std::size_t s = 0; s < views.size(); ++s) {
    const View& v = views[s];
    stream_input(cache, matrix_ids[s], entry_offsets[s], v.nnz(),
                 kAddEntryBytes);
    for (std::size_t i = 0; i < v.nnz(); ++i) {
      const std::int32_t r = v.rows[i];
      std::size_t h = core::hash_index(r, table.mask);
      for (;;) {
        cache.access(kTableBase + h * kAddEntryBytes);
        if (table.keys[h] ==
            core::SymbolicHashWorkspace<std::int32_t>::kEmpty) {
          table.keys[h] = r;
          ++emitted;
          break;
        }
        if (table.keys[h] == r) break;
        h = (h + 1) & table.mask;
      }
    }
  }
  // Output sweep: read the table once more, write the emitted run.
  cache.access_range(kTableBase, entries * kAddEntryBytes);
  const std::uint64_t out_base = kOutputBase + out_cursor * kAddEntryBytes;
  cache.access_range(out_base, emitted * kAddEntryBytes);
  // The real kernel then radix-sorts the emitted (row, value) pairs
  // (util::radix_sort_pairs — the hybrid contract emits canonical sorted
  // columns): below the insertion-sort threshold the run is touched once
  // more in place; above it, one key-histogram sweep plus one
  // read + scatter-write pass of the 12-byte pairs per key byte that
  // actually varies across the run, ping-ponging with a pair scratch
  // buffer, with a copy-back when the last pass lands in scratch.
  if (emitted >= 2) {
    if (emitted < 96) {
      cache.access_range(out_base, emitted * kAddEntryBytes);
    } else {
      std::uint32_t vary = 0;
      std::int32_t first = core::SymbolicHashWorkspace<std::int32_t>::kEmpty;
      for (std::size_t h = 0; h < entries; ++h) {
        const std::int32_t key = table.keys[h];
        if (key == core::SymbolicHashWorkspace<std::int32_t>::kEmpty) continue;
        if (first == core::SymbolicHashWorkspace<std::int32_t>::kEmpty)
          first = key;
        vary |= static_cast<std::uint32_t>(key ^ first);
      }
      cache.access_range(out_base, emitted * kAddEntryBytes);  // histogram
      std::uint64_t src = out_base;
      std::uint64_t dst = kSortBase;
      for (std::size_t b = 0; b < sizeof(std::int32_t); ++b) {
        if (((vary >> (8 * b)) & 0xffu) == 0) continue;
        cache.access_range(src, emitted * kAddEntryBytes);
        cache.access_range(dst, emitted * kAddEntryBytes);
        std::swap(src, dst);
      }
      if (src != out_base) {
        cache.access_range(src, emitted * kAddEntryBytes);
        cache.access_range(out_base, emitted * kAddEntryBytes);
      }
    }
  }
  return emitted;
}

/// Trace Alg. 3 (k-way heap merge) on one column; returns entries emitted.
/// The heap array lives at kHeapBase; every replace/pop walks one
/// root-to-leaf path, the locality that makes the heap nearly cache-free at
/// small k. Inputs are consumed in true merge order (real row values drive
/// the interleaving), one entry read per element.
std::size_t trace_heap_column(CacheHierarchy& cache,
                              std::span<const View> views,
                              std::span<const std::size_t> matrix_ids,
                              std::span<const std::size_t> entry_offsets,
                              std::size_t out_cursor) {
  struct Node {
    std::int32_t row;
    std::size_t src;
  };
  std::vector<Node> heap;
  std::vector<std::size_t> cursor(views.size(), 0);
  auto before = [](const Node& x, const Node& y) {
    return x.row < y.row || (x.row == y.row && x.src < y.src);
  };
  auto less = [&before](const Node& x, const Node& y) { return before(y, x); };

  auto touch_path = [&cache](std::size_t live) {
    for (std::size_t idx = 0; idx < live; idx = 2 * idx + 1)
      cache.access_range(kHeapBase + idx * kHeapNodeBytes, kHeapNodeBytes);
  };
  auto read_input = [&](std::size_t s, std::size_t i) {
    const std::uint64_t base = kInputBase + kInputStride * matrix_ids[s];
    cache.access_range(base + kAddEntryBytes * (entry_offsets[s] + i),
                       kAddEntryBytes);
  };

  for (std::size_t s = 0; s < views.size(); ++s) {
    if (views[s].empty()) continue;
    read_input(s, 0);
    heap.push_back(Node{views[s].rows[0], s});
    touch_path(heap.size());
  }
  std::make_heap(heap.begin(), heap.end(), less);

  std::size_t emitted = 0;
  std::int32_t last_row = -1;
  while (!heap.empty()) {
    const Node top = heap.front();
    // Extend or accumulate into the sorted output tail: either way the
    // current tail entry is touched.
    if (emitted == 0 || last_row != top.row) {
      ++emitted;
      last_row = top.row;
    }
    cache.access_range(
        kOutputBase + (out_cursor + emitted - 1) * kAddEntryBytes,
        kAddEntryBytes);
    const std::size_t next = ++cursor[top.src];
    if (next < views[top.src].nnz()) {
      read_input(top.src, next);
      std::pop_heap(heap.begin(), heap.end(), less);
      heap.back().row = views[top.src].rows[next];
      std::push_heap(heap.begin(), heap.end(), less);
    } else {
      std::pop_heap(heap.begin(), heap.end(), less);
      heap.pop_back();
    }
    touch_path(heap.size());
  }
  return emitted;
}

/// Trace Alg. 4 (SPA) on one column; returns entries emitted. The dense
/// accumulator cells live at kSpaBase + row * cell (value + generation
/// stamp), the touched-row list streams at kTouchedBase, and sorted output
/// adds the radix passes over the touched list before the emission sweep
/// re-reads the accumulator at the touched rows.
std::size_t trace_spa_column(CacheHierarchy& cache,
                             std::span<const View> views,
                             std::span<const std::size_t> matrix_ids,
                             std::span<const std::size_t> entry_offsets,
                             std::size_t out_cursor,
                             std::vector<std::int32_t>& touched_scratch) {
  touched_scratch.clear();
  // Accumulation: one streamed input read + one SPA cell touch per entry;
  // first touches also append to the touched list.
  thread_local std::vector<bool> seen;  // structural dedup only
  for (std::size_t s = 0; s < views.size(); ++s) {
    const View& v = views[s];
    stream_input(cache, matrix_ids[s], entry_offsets[s], v.nnz(),
                 kAddEntryBytes);
    for (std::size_t i = 0; i < v.nnz(); ++i) {
      const auto r = static_cast<std::size_t>(v.rows[i]);
      cache.access_range(kSpaBase + r * kSpaCellBytes, kSpaCellBytes);
      if (seen.size() <= r) seen.resize(r + 1, false);
      if (!seen[r]) {
        seen[r] = true;
        touched_scratch.push_back(v.rows[i]);
        cache.access_range(
            kTouchedBase + (touched_scratch.size() - 1) * kSymEntryBytes,
            kSymEntryBytes);
      }
    }
  }
  for (const std::int32_t r : touched_scratch)
    seen[static_cast<std::size_t>(r)] = false;
  // Sorted emission (the default hybrid contract): radix passes read and
  // rewrite the touched list...
  cache.access_range(kTouchedBase, touched_scratch.size() * kSymEntryBytes);
  cache.access_range(kTouchedBase, touched_scratch.size() * kSymEntryBytes);
  std::sort(touched_scratch.begin(), touched_scratch.end());
  // ...then the emission sweep gathers each accumulator cell in row order
  // and streams the output run.
  for (const std::int32_t r : touched_scratch)
    cache.access_range(
        kSpaBase + static_cast<std::size_t>(r) * kSpaCellBytes,
        kSpaCellBytes);
  cache.access_range(kOutputBase + out_cursor * kAddEntryBytes,
                     touched_scratch.size() * kAddEntryBytes);
  return touched_scratch.size();
}

/// Trace the dense kernel's symbolic phase (dense_symbolic_column): one
/// streamed input read + one occupancy-word touch per entry, then the
/// O(input nnz) clear-by-replay re-reads the indices and re-touches the
/// same words (typically cache-hot — exactly the locality the real kernel
/// banks on). Returns distinct rows.
std::size_t trace_dense_symbolic(CacheHierarchy& cache,
                                 std::span<const View> views,
                                 std::span<const std::size_t> matrix_ids,
                                 std::span<const std::size_t> entry_offsets) {
  thread_local std::vector<std::uint64_t> mask;
  std::size_t need = 0;
  for (const auto& v : views)
    for (std::size_t i = 0; i < v.nnz(); ++i)
      need = std::max(need, (static_cast<std::size_t>(v.rows[i]) >> 6) + 1);
  if (mask.size() < need) mask.resize(need, 0);
  std::size_t nz = 0;
  for (std::size_t s = 0; s < views.size(); ++s) {
    const View& v = views[s];
    stream_input(cache, matrix_ids[s], entry_offsets[s], v.nnz(),
                 kSymEntryBytes);
    for (std::size_t i = 0; i < v.nnz(); ++i) {
      const auto r = static_cast<std::size_t>(v.rows[i]);
      cache.access_range(kDenseMaskBase + (r >> 6) * kMaskWordBytes,
                         kMaskWordBytes);
      const std::uint64_t bit = std::uint64_t{1} << (r & 63);
      if (!(mask[r >> 6] & bit)) {
        mask[r >> 6] |= bit;
        ++nz;
      }
    }
  }
  for (std::size_t s = 0; s < views.size(); ++s) {
    const View& v = views[s];
    stream_input(cache, matrix_ids[s], entry_offsets[s], v.nnz(),
                 kSymEntryBytes);
    for (std::size_t i = 0; i < v.nnz(); ++i) {
      const auto r = static_cast<std::size_t>(v.rows[i]);
      cache.access_range(kDenseMaskBase + (r >> 6) * kMaskWordBytes,
                         kMaskWordBytes);
      mask[r >> 6] = 0;
    }
  }
  return nz;
}

/// Trace the dense kernel's numeric phase (dense_add_column): scatter one
/// streamed input read + one dense-cell touch + one occupancy-word touch
/// per entry (fully dense addends stream the whole cell/mask arrays — the
/// vectorized fast path touches the same lines sequentially), then the
/// emission sweeps the touched word range reading each occupied cell in
/// row order and streams the output run. No radix pass: sortedness is by
/// construction. Returns entries emitted.
std::size_t trace_dense_column(CacheHierarchy& cache,
                               std::span<const View> views,
                               std::span<const std::size_t> matrix_ids,
                               std::span<const std::size_t> entry_offsets,
                               std::int32_t rows, std::size_t out_cursor) {
  thread_local std::vector<std::uint64_t> mask;
  const auto m = static_cast<std::size_t>(rows);
  const std::size_t words = (m + 63) / 64;
  if (mask.size() < words) mask.resize(words, 0);
  std::size_t w_lo = words, w_hi = 0;

  for (std::size_t s = 0; s < views.size(); ++s) {
    const View& v = views[s];
    stream_input(cache, matrix_ids[s], entry_offsets[s], v.nnz(),
                 kAddEntryBytes);
    if (v.nnz() == m) {
      // Identity-dense addend: whole-column vector copy/add plus one mask
      // sweep — pure sequential streams.
      cache.access_range(kDenseBase, m * kDenseCellBytes);
      cache.access_range(kDenseMaskBase, words * kMaskWordBytes);
      for (std::size_t w = 0; w + 1 < words; ++w) mask[w] = ~std::uint64_t{0};
      mask[words - 1] =
          (m % 64 == 0) ? ~std::uint64_t{0}
                        : ((std::uint64_t{1} << (m % 64)) - 1);
      w_lo = 0;
      w_hi = words - 1;
      continue;
    }
    for (std::size_t i = 0; i < v.nnz(); ++i) {
      const auto r = static_cast<std::size_t>(v.rows[i]);
      const std::size_t w = r >> 6;
      cache.access_range(kDenseBase + r * kDenseCellBytes, kDenseCellBytes);
      cache.access_range(kDenseMaskBase + w * kMaskWordBytes, kMaskWordBytes);
      mask[w] |= std::uint64_t{1} << (r & 63);
      w_lo = std::min(w_lo, w);
      w_hi = std::max(w_hi, w);
    }
  }

  std::size_t out = 0;
  for (std::size_t w = w_lo; w <= w_hi && w < words; ++w) {
    cache.access_range(kDenseMaskBase + w * kMaskWordBytes, kMaskWordBytes);
    std::uint64_t bits = mask[w];
    mask[w] = 0;
    if (bits == 0) continue;
    const std::size_t base = w << 6;
    while (bits != 0) {
      const auto b = static_cast<std::size_t>(std::countr_zero(bits));
      cache.access_range(kDenseBase + (base + b) * kDenseCellBytes,
                         kDenseCellBytes);
      ++out;
      bits &= bits - 1;
    }
  }
  cache.access_range(kOutputBase + out_cursor * kAddEntryBytes,
                     out * kAddEntryBytes);
  return out;
}

struct ColumnViews {
  std::vector<View> views;
  std::vector<std::size_t> matrix_ids;
  /// In-matrix entry index of each view start.
  std::vector<std::size_t> entry_offsets;

  void gather(std::span<const Csc> inputs, std::int32_t j) {
    views.clear();
    matrix_ids.clear();
    entry_offsets.clear();
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      auto col = inputs[i].column(j);
      if (col.empty()) continue;
      views.push_back(col);
      matrix_ids.push_back(i);
      entry_offsets.push_back(static_cast<std::size_t>(
          inputs[i].col_ptr()[static_cast<std::size_t>(j)]));
    }
  }

  /// Restrict to a row range (binary search; offsets adjusted).
  void restrict_rows(const ColumnViews& full, std::int32_t r1,
                     std::int32_t r2) {
    views.clear();
    matrix_ids.clear();
    entry_offsets.clear();
    for (std::size_t s = 0; s < full.views.size(); ++s) {
      const View& v = full.views[s];
      auto sub = v.row_range(r1, r2);
      if (sub.empty()) continue;
      views.push_back(sub);
      matrix_ids.push_back(full.matrix_ids[s]);
      entry_offsets.push_back(full.entry_offsets[s] +
                              static_cast<std::size_t>(sub.rows.data() -
                                                       v.rows.data()));
    }
  }
};

/// The shared two-phase replay: symbolic with the kernel's symbolic variant
/// (sliding partition for sliding chunks, plain hash symbolic otherwise —
/// mirroring core::kernel_symbolic_column), then the kernel's own numeric
/// phase. Stats are snapshotted per phase from the hierarchy.
KernelTraceResult trace_through(std::span<const Csc> inputs,
                                const HierarchySpec& share,
                                core::ColumnKernel kernel,
                                std::size_t sym_cap, std::size_t add_cap) {
  KernelTraceResult result;
  CacheHierarchy cache(share);
  for (const LevelSpec& l : share.levels)
    result.level_names.push_back(l.name);
  result.symbolic.resize(share.levels.size());
  result.numeric.resize(share.levels.size());
  if (inputs.empty()) return result;

  const std::int32_t cols = inputs[0].cols();
  const std::int32_t rows = inputs[0].rows();
  const bool sliding = kernel == core::ColumnKernel::SlidingHash;

  core::SymbolicHashWorkspace<std::int32_t> table;
  ColumnViews full, part;
  std::vector<std::int32_t> spa_touched;
  std::vector<std::size_t> out_nnz(static_cast<std::size_t>(cols), 0);

  // ---- Symbolic phase over all columns ----
  for (std::int32_t j = 0; j < cols; ++j) {
    full.gather(inputs, j);
    std::size_t inz = 0;
    for (const auto& v : full.views) inz += v.nnz();
    if (inz == 0) continue;
    const std::size_t parts = sliding ? util::ceil_div(inz, sym_cap) : 1;
    std::size_t nz = 0;
    if (kernel == core::ColumnKernel::DenseAcc) {
      nz = trace_dense_symbolic(cache, full.views, full.matrix_ids,
                                full.entry_offsets);
    } else if (parts <= 1) {
      nz = trace_symbolic_part(cache, full.views, full.matrix_ids,
                               full.entry_offsets, table);
    } else {
      for (std::size_t p = 0; p < parts; ++p) {
        const auto r1 = static_cast<std::int32_t>(
            static_cast<std::size_t>(rows) * p / parts);
        const auto r2 = static_cast<std::int32_t>(
            static_cast<std::size_t>(rows) * (p + 1) / parts);
        part.restrict_rows(full, r1, r2);
        nz += trace_symbolic_part(cache, part.views, part.matrix_ids,
                                  part.entry_offsets, table);
      }
    }
    out_nnz[static_cast<std::size_t>(j)] = nz;
  }
  result.symbolic = cache.stats();
  cache.reset_stats();

  // ---- Numeric phase over all columns ----
  std::size_t out_cursor = 0;
  for (std::int32_t j = 0; j < cols; ++j) {
    const std::size_t onz = out_nnz[static_cast<std::size_t>(j)];
    if (onz == 0) continue;
    full.gather(inputs, j);
    switch (kernel) {
      case core::ColumnKernel::Heap:
        out_cursor += trace_heap_column(cache, full.views, full.matrix_ids,
                                        full.entry_offsets, out_cursor);
        break;
      case core::ColumnKernel::Spa:
        out_cursor += trace_spa_column(cache, full.views, full.matrix_ids,
                                       full.entry_offsets, out_cursor,
                                       spa_touched);
        break;
      case core::ColumnKernel::Hash:
        out_cursor +=
            trace_add_part(cache, full.views, full.matrix_ids,
                           full.entry_offsets, onz, out_cursor, table);
        break;
      case core::ColumnKernel::DenseAcc:
        out_cursor += trace_dense_column(cache, full.views, full.matrix_ids,
                                         full.entry_offsets, rows, out_cursor);
        break;
      case core::ColumnKernel::SlidingHash: {
        const std::size_t parts = util::ceil_div(onz, add_cap);
        if (parts <= 1) {
          out_cursor +=
              trace_add_part(cache, full.views, full.matrix_ids,
                             full.entry_offsets, onz, out_cursor, table);
          break;
        }
        for (std::size_t p = 0; p < parts; ++p) {
          const auto r1 = static_cast<std::int32_t>(
              static_cast<std::size_t>(rows) * p / parts);
          const auto r2 = static_cast<std::int32_t>(
              static_cast<std::size_t>(rows) * (p + 1) / parts);
          part.restrict_rows(full, r1, r2);
          std::size_t part_in = 0;
          for (const auto& v : part.views) part_in += v.nnz();
          if (part_in == 0) continue;
          // Mirror the driver: keys-only symbolic over the part, then an
          // output-sized numeric table (see kway.hpp).
          const std::size_t part_onz =
              trace_symbolic_part(cache, part.views, part.matrix_ids,
                                  part.entry_offsets, table);
          out_cursor +=
              trace_add_part(cache, part.views, part.matrix_ids,
                             part.entry_offsets, part_onz, out_cursor, table);
        }
        break;
      }
    }
  }
  result.numeric = cache.stats();
  result.weighted_miss_cost = 0.0;
  for (std::size_t i = 0; i < share.levels.size(); ++i)
    result.weighted_miss_cost +=
        static_cast<double>(result.symbolic[i].misses +
                            result.numeric[i].misses) *
        share.levels[i].miss_penalty;
  return result;
}

/// Outermost shared capacity of the (undivided) hierarchy — the M of the
/// Alg. 7/8 table-sizing rule.
std::uint64_t shared_capacity(const HierarchySpec& spec) {
  return spec.levels.back().bytes;
}

}  // namespace

TraceResult trace_hash_spkadd(std::span<const Csc> inputs,
                              const TraceConfig& config) {
  KernelTraceConfig kcfg;
  kcfg.hierarchy = HierarchySpec::single(config.cache);
  kcfg.threads = config.threads;
  kcfg.kernel = config.sliding ? core::ColumnKernel::SlidingHash
                               : core::ColumnKernel::Hash;
  kcfg.max_table_entries = config.max_table_entries;
  const KernelTraceResult r = trace_kernel_spkadd(inputs, kcfg);
  TraceResult out;
  if (!r.symbolic.empty()) {
    out.symbolic = r.symbolic.front();
    out.numeric = r.numeric.front();
  }
  return out;
}

KernelTraceResult trace_kernel_spkadd(std::span<const Csc> inputs,
                                      const KernelTraceConfig& config) {
  const HierarchySpec share =
      per_thread_share(config.hierarchy, config.threads);
  const std::size_t sym_cap =
      entry_cap(shared_capacity(config.hierarchy), config.threads,
                config.max_table_entries, kSymEntryBytes);
  const std::size_t add_cap =
      entry_cap(shared_capacity(config.hierarchy), config.threads,
                config.max_table_entries, kAddEntryBytes);
  return trace_through(inputs, share, config.kernel, sym_cap, add_cap);
}

}  // namespace spkadd::cachesim
