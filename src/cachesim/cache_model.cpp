#include "cachesim/cache_model.hpp"

#include <stdexcept>

#include "util/bit_ops.hpp"

namespace spkadd::cachesim {

CacheModel::CacheModel(const CacheConfig& config) {
  if (config.line_bytes <= 0 || !util::is_pow2(
          static_cast<std::uint64_t>(config.line_bytes)))
    throw std::invalid_argument("CacheModel: line size must be a power of 2");
  if (config.ways <= 0) throw std::invalid_argument("CacheModel: ways <= 0");
  const std::uint64_t lines_total =
      config.bytes / static_cast<std::uint64_t>(config.line_bytes);
  sets_ = lines_total / static_cast<std::uint64_t>(config.ways);
  if (sets_ == 0) sets_ = 1;
  // Non-power-of-two set counts are allowed (indexing by modulo).
  ways_ = config.ways;
  line_shift_ = util::log2_floor(static_cast<std::uint64_t>(config.line_bytes));
  lines_.assign(sets_ * static_cast<std::uint64_t>(ways_), Line{});
}

bool CacheModel::access(std::uint64_t addr) {
  ++stats_.accesses;
  ++tick_;
  const std::uint64_t block = addr >> line_shift_;
  const std::uint64_t set = block % sets_;
  Line* base = lines_.data() + set * static_cast<std::uint64_t>(ways_);
  Line* victim = base;
  for (int w = 0; w < ways_; ++w) {
    if (base[w].tag == block) {
      base[w].lru = tick_;
      return true;
    }
    if (base[w].lru < victim->lru) victim = &base[w];
  }
  ++stats_.misses;
  if (victim->tag != ~0ull) ++stats_.evictions;
  victim->tag = block;
  victim->lru = tick_;
  return false;
}

void CacheModel::access_range(std::uint64_t addr, std::uint64_t size) {
  if (size == 0) return;
  const std::uint64_t line = 1ull << line_shift_;
  const std::uint64_t first = addr & ~(line - 1);
  const std::uint64_t last = (addr + size - 1) & ~(line - 1);
  for (std::uint64_t a = first; a <= last; a += line) access(a);
}

}  // namespace spkadd::cachesim
