// Address-trace instrumented SpKAdd column kernels.
//
// Replays the memory behaviour of the paper's algorithms through the cache
// simulator to count misses (the paper's Table V used Cachegrind): input
// columns stream sequentially, kernel data structures (hash table, SPA
// array, heap) are hit at the probed slots, and the output streams
// sequentially. One thread is simulated against its fair share of each
// *shared* hierarchy level (capacity / threads; private L1/L2 are not
// divided), which models T threads competing for a shared LLC the same way
// the paper's table-size analysis does (MemAdd = b*T*nnz > M <=> per-thread
// need > M/T).
//
// Two entry points:
//   trace_hash_spkadd    — the original Table V pair (hash vs sliding hash)
//                          against a single modeled LLC; kept for
//                          compatibility and the Table V reproduction.
//   trace_kernel_spkadd  — any core::ColumnKernel (heap/SPA/hash/sliding/
//                          dense) against a full CacheHierarchy, returning
//                          per-level per-phase stats plus the weighted miss
//                          cost. This is the measurement behind the
//                          calibration table the Hybrid planner consumes.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "cachesim/cache_hierarchy.hpp"
#include "cachesim/cache_model.hpp"
#include "core/column_kernels.hpp"
#include "matrix/csc.hpp"

namespace spkadd::cachesim {

struct TraceConfig {
  CacheConfig cache;     ///< the physical LLC being modeled
  int threads = 48;      ///< threads sharing it (the paper's Skylake run)
  bool sliding = false;  ///< Alg. 7/8 (sliding) vs Alg. 5/6 (plain)
  /// Force the sliding table entry cap (0 = derive from cache/threads as
  /// table_entry_cap does). Mirrors the x-axis of Fig. 4.
  std::size_t max_table_entries = 0;
};

struct TraceResult {
  CacheStats symbolic;  ///< misses during the symbolic phase
  CacheStats numeric;   ///< misses during the addition phase
  [[nodiscard]] std::uint64_t total_misses() const {
    return symbolic.misses + numeric.misses;
  }
  [[nodiscard]] std::uint64_t total_accesses() const {
    return symbolic.accesses + numeric.accesses;
  }
};

/// Replay hash (or sliding-hash) SpKAdd over `inputs` and return per-phase
/// LL miss counts. Structural only: values never affect the trace.
TraceResult trace_hash_spkadd(
    std::span<const CscMatrix<std::int32_t, double>> inputs,
    const TraceConfig& config);

// ---------------------------------------------------------------------------
// Hierarchy-wide kernel traces (the calibration measurement)
// ---------------------------------------------------------------------------

struct KernelTraceConfig {
  /// The modeled machine; private levels are per-thread, shared levels are
  /// divided by `threads`.
  HierarchySpec hierarchy = HierarchySpec::detected();
  int threads = 48;
  core::ColumnKernel kernel = core::ColumnKernel::Hash;
  /// Force the sliding table entry cap (0 = derive from the last shared
  /// level / threads, as core::detail::table_entry_cap does).
  std::size_t max_table_entries = 0;
};

/// Per-level, per-phase miss counts of one kernel's replay, plus the
/// latency-weighted scalar the calibration table stores.
struct KernelTraceResult {
  std::vector<std::string> level_names;  ///< "L1", "L2", "LLC", ...
  std::vector<CacheStats> symbolic;      ///< one per level
  std::vector<CacheStats> numeric;       ///< one per level
  double weighted_miss_cost = 0.0;       ///< both phases, all levels

  [[nodiscard]] std::uint64_t level_misses(std::size_t i) const {
    return symbolic[i].misses + numeric[i].misses;
  }
  [[nodiscard]] std::uint64_t total_misses() const {
    std::uint64_t total = 0;
    for (std::size_t i = 0; i < symbolic.size(); ++i)
      total += level_misses(i);
    return total;
  }
  /// Accesses reaching the innermost level (every probe starts at L1, so
  /// this is the trace length; deeper levels only see upstream misses).
  [[nodiscard]] std::uint64_t total_accesses() const {
    if (symbolic.empty()) return 0;
    return symbolic.front().accesses + numeric.front().accesses;
  }
};

/// Replay any ColumnKernel's SpKAdd (symbolic: hash symbolic, sliding
/// symbolic for sliding chunks, occupancy-bitmap symbolic for dense —
/// mirroring kernel_symbolic_column; numeric: the kernel itself) over
/// `inputs` through the full hierarchy. Structural
/// only: values never affect the trace. Deterministic for fixed inputs and
/// config.
KernelTraceResult trace_kernel_spkadd(
    std::span<const CscMatrix<std::int32_t, double>> inputs,
    const KernelTraceConfig& config);

}  // namespace spkadd::cachesim
