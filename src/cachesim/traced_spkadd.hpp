// Address-trace instrumented (sliding-)hash SpKAdd.
//
// Replays the memory behaviour of Alg. 5-8 through the CacheModel to count
// last-level misses (the paper's Table V): input columns stream
// sequentially, the hash table is hit at the probed slots, and the output
// streams sequentially. One thread is simulated against its fair share of
// the LLC (capacity / threads), which models T threads competing for a
// shared LLC the same way the paper's table-size analysis does
// (MemAdd = b*T*nnz > M <=> per-thread need > M/T).
#pragma once

#include <cstdint>
#include <span>

#include "cachesim/cache_model.hpp"
#include "matrix/csc.hpp"

namespace spkadd::cachesim {

struct TraceConfig {
  CacheConfig cache;     ///< the physical LLC being modeled
  int threads = 48;      ///< threads sharing it (the paper's Skylake run)
  bool sliding = false;  ///< Alg. 7/8 (sliding) vs Alg. 5/6 (plain)
  /// Force the sliding table entry cap (0 = derive from cache/threads as
  /// table_entry_cap does). Mirrors the x-axis of Fig. 4.
  std::size_t max_table_entries = 0;
};

struct TraceResult {
  CacheStats symbolic;  ///< misses during the symbolic phase
  CacheStats numeric;   ///< misses during the addition phase
  [[nodiscard]] std::uint64_t total_misses() const {
    return symbolic.misses + numeric.misses;
  }
  [[nodiscard]] std::uint64_t total_accesses() const {
    return symbolic.accesses + numeric.accesses;
  }
};

/// Replay hash (or sliding-hash) SpKAdd over `inputs` and return per-phase
/// LL miss counts. Structural only: values never affect the trace.
TraceResult trace_hash_spkadd(
    std::span<const CscMatrix<std::int32_t, double>> inputs,
    const TraceConfig& config);

}  // namespace spkadd::cachesim
