// Observability for the aggregation service: a lock-free latency
// histogram (submit -> applied) and the plain snapshot structs
// AggService::stats() hands to benches and operators.
//
// Thread-safety contract: LatencyHistogram::record is lock-free and
// safe from any thread concurrently with summary(); the snapshot
// structs are plain values with no synchronization of their own.
// Counters here are observability only — they never feed the fold
// paths, so they cannot affect the service's bit-identity guarantee.
#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace spkadd::service {

/// Percentile digest of a latency population, in seconds.
struct LatencySummary {
  std::uint64_t count = 0;
  double p50 = 0;
  double p95 = 0;
  double p99 = 0;
  double max = 0;
};

/// Fixed-footprint log-scale histogram: 8 sub-buckets per power of two
/// of nanoseconds, giving <= 12.5% relative quantile error with no
/// allocation and relaxed-atomic recording (workers never contend).
class LatencyHistogram {
 public:
  static constexpr std::size_t kSub = 8;  ///< sub-buckets per octave
  static constexpr std::size_t kBuckets = 62 * kSub;

  /// Record one latency observation.
  void record(std::uint64_t nanos) {
    const std::size_t idx = bucket_of(nanos);
    buckets_[idx].fetch_add(1, std::memory_order_relaxed);
    // Keep the true maximum exactly (quantiles are bucket-quantized).
    std::uint64_t prev = max_nanos_.load(std::memory_order_relaxed);
    while (prev < nanos && !max_nanos_.compare_exchange_weak(
                               prev, nanos, std::memory_order_relaxed)) {
    }
  }

  /// p50/p95/p99 digest of everything recorded so far. Safe to call
  /// concurrently with record(); the result is a consistent-enough
  /// sample (counts are monotone).
  [[nodiscard]] LatencySummary summary() const;

 private:
  [[nodiscard]] static std::size_t bucket_of(std::uint64_t nanos);
  /// Inclusive upper bound of bucket `idx` in nanoseconds.
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t idx);

  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> max_nanos_{0};
};

/// Per-row-range-shard counters, aggregated over all tenants.
struct ShardStats {
  std::uint64_t slices_applied = 0;  ///< update slices folded here
  std::uint64_t folded_nnz = 0;      ///< total nonzeros folded here
  std::uint64_t flushes = 0;         ///< Accumulator folds performed
  std::size_t peak_staged_nnz = 0;   ///< max nnz awaiting a fold at once
  // Hybrid chunk-dispatch mix of this shard's folds (how many
  // nnz-balanced column chunks each kernel was chosen for). All zero
  // unless ServiceConfig::options.method == core::Method::Hybrid.
  std::uint64_t chunks_heap = 0;
  std::uint64_t chunks_spa = 0;
  std::uint64_t chunks_hash = 0;
  std::uint64_t chunks_sliding = 0;
};

/// Producer-side burst/watermark counters for the batched ingest path.
struct IngestStats {
  std::uint64_t bursts = 0;         ///< burst flushes into the queue
  std::uint64_t burst_updates = 0;  ///< updates across those bursts
  std::size_t max_burst = 0;        ///< largest single burst flushed
  std::uint64_t flushes_full = 0;   ///< buffer reached burst_size
  std::uint64_t flushes_deadline = 0;  ///< background deadline sweeps
  std::uint64_t flushes_drain = 0;     ///< drain()/stop() sweeps
  std::uint64_t throttle_events = 0;   ///< pushes blocked at high watermark
  double throttle_seconds = 0;  ///< total producer time spent throttled

  /// Mean updates per flushed burst (the amortization factor actually
  /// realized: every queue-lock acquisition covered this many updates).
  [[nodiscard]] double avg_burst() const {
    return bursts != 0
               ? static_cast<double>(burst_updates) /
                     static_cast<double>(bursts)
               : 0.0;
  }
};

/// Per-tenant counters.
struct TenantStats {
  std::string tenant;
  std::uint64_t updates_applied = 0;
  std::uint64_t folded_nnz = 0;
  std::uint64_t snapshots = 0;
  std::uint64_t epoch = 0;  ///< epoch of the latest snapshot
};

/// One consistent-enough read of every service counter.
struct ServiceStats {
  std::uint64_t submitted = 0;  ///< updates accepted by submit()
  std::uint64_t applied = 0;    ///< updates fully folded into shards
  std::uint64_t rejected = 0;   ///< updates refused (service stopped)
  /// Updates dropped because their fold threw (e.g. a merge-family
  /// method fed unsorted columns); the service survives and keeps
  /// serving — drain() counts these as progressed.
  std::uint64_t apply_errors = 0;
  std::size_t queue_depth = 0;
  std::size_t queue_high_water = 0;  ///< deepest ingest backlog seen
  IngestStats ingest;                ///< burst/watermark ingest counters
  LatencySummary latency;            ///< submit -> applied
  std::vector<ShardStats> shards;
  std::vector<TenantStats> tenants;
};

}  // namespace spkadd::service
