// Observability for the aggregation service: the plain snapshot structs
// AggService::stats() hands to benches and operators. The latency
// histogram itself lives in obs/histogram.hpp (LatencyHistogram below
// is an alias), and every counter in these structs is also exported
// through obs::MetricsRegistry at scrape time — stats() and the
// registry read the same underlying atomics.
//
// Thread-safety contract: the snapshot structs are plain values with no
// synchronization of their own. Counters here are observability only —
// they never feed the fold paths, so they cannot affect the service's
// bit-identity guarantee.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "obs/histogram.hpp"

namespace spkadd::service {

/// Percentile digest of a latency population, in seconds.
using LatencySummary = obs::LatencySummary;

/// Fixed-footprint log-scale nanosecond histogram (see obs/histogram.hpp
/// for the bucket layout and the Prometheus bucket-iteration API).
using LatencyHistogram = obs::LogHistogram;

/// Per-row-range-shard counters, aggregated over all tenants.
struct ShardStats {
  std::uint64_t slices_applied = 0;  ///< update slices folded here
  std::uint64_t folded_nnz = 0;      ///< total nonzeros folded here
  std::uint64_t flushes = 0;         ///< Accumulator folds performed
  std::size_t peak_staged_nnz = 0;   ///< max nnz awaiting a fold at once
  // Hybrid chunk-dispatch mix of this shard's folds (how many
  // nnz-balanced column chunks each kernel was chosen for). All zero
  // unless ServiceConfig::options.method == core::Method::Hybrid.
  std::uint64_t chunks_heap = 0;
  std::uint64_t chunks_spa = 0;
  std::uint64_t chunks_hash = 0;
  std::uint64_t chunks_sliding = 0;
  std::uint64_t chunks_dense = 0;
  // Representation adaptivity (core::DensePolicy): sparse→dense column
  // promotions and demotions performed by this shard's accumulators, and
  // the columns currently held dense across them (a gauge, not a counter).
  std::uint64_t dense_promotions = 0;
  std::uint64_t dense_demotions = 0;
  std::size_t dense_resident_cols = 0;
};

/// Producer-side burst/watermark counters for the batched ingest path.
struct IngestStats {
  std::uint64_t bursts = 0;         ///< burst flushes into the queue
  std::uint64_t burst_updates = 0;  ///< updates across those bursts
  std::size_t max_burst = 0;        ///< largest single burst flushed
  std::uint64_t flushes_full = 0;   ///< buffer reached burst_size
  std::uint64_t flushes_deadline = 0;  ///< background deadline sweeps
  std::uint64_t flushes_drain = 0;     ///< drain()/stop() sweeps
  std::uint64_t throttle_events = 0;   ///< pushes blocked at high watermark
  double throttle_seconds = 0;  ///< total producer time spent throttled

  /// Mean updates per flushed burst (the amortization factor actually
  /// realized: every queue-lock acquisition covered this many updates).
  [[nodiscard]] double avg_burst() const {
    return bursts != 0
               ? static_cast<double>(burst_updates) /
                     static_cast<double>(bursts)
               : 0.0;
  }
};

/// Per-tenant counters.
struct TenantStats {
  std::string tenant;
  std::uint64_t updates_applied = 0;
  std::uint64_t folded_nnz = 0;
  std::uint64_t snapshots = 0;
  std::uint64_t epoch = 0;  ///< epoch of the latest snapshot
};

/// One consistent-enough read of every service counter.
struct ServiceStats {
  std::uint64_t submitted = 0;  ///< updates accepted by submit()
  std::uint64_t applied = 0;    ///< updates fully folded into shards
  std::uint64_t rejected = 0;   ///< updates refused (service stopped)
  /// Updates dropped because their fold threw (e.g. a merge-family
  /// method fed unsorted columns); the service survives and keeps
  /// serving — drain() counts these as progressed.
  std::uint64_t apply_errors = 0;
  std::size_t queue_depth = 0;
  std::size_t queue_high_water = 0;  ///< deepest ingest backlog seen
  IngestStats ingest;                ///< burst/watermark ingest counters
  LatencySummary latency;            ///< submit -> applied
  std::vector<ShardStats> shards;
  std::vector<TenantStats> tenants;
};

}  // namespace spkadd::service
