// WindowedAggService — the multi-tenant, concurrent front of the
// sliding-window aggregation layer (service/window.hpp), and the
// backend the network daemon (net/server.hpp) serves.
//
//   submit(tenant, ts, update)        snapshot(tenant, window)
//        |                                  ^
//        v                                  | strict left fold of the
//   [bounded MPMC ingest queue]             | live window buckets
//        |  burst push/pop: the net         | (k-way SpKAdd)
//        |  server stages one poll          |
//        v  cycle's submits as ONE burst    |
//   worker pool --- pops whole bursts,      |
//     groups per tenant ------------> tenant's TenantWindow
//                                     (mutex + one Accumulator
//                                      epoch per live time bucket)
//
// Ingest reuses the burst-batched MPMC spine of AggService
// (util::BoundedMpmcQueue push_burst/pop_burst with watermark
// hysteresis): producers — the daemon's poll loop above all — enqueue a
// whole burst of timestamped updates with one queue-lock acquisition,
// and workers fold a popped burst's updates grouped per tenant with one
// tenant-lock acquisition per (burst, tenant).
//
// Thread-safety contract: every public method is safe to call from any
// thread, concurrently with every other. Internally each tenant's
// TenantWindow is guarded by its own mutex (folds and snapshots of
// different tenants never contend) and the tenant registry by a
// shared_mutex. drain()/stop() use the same per-burst ticket accounting
// as AggService, so a drain covers exactly the updates accepted before
// it.
//
// Bit-identity guarantee: worker folds and snapshot assembly go through
// the same strict-left-fold SpKAdd paths as TenantWindow documents, so
// snapshot(tenant, w) is bit-identical to a single-threaded reference
// fold of the live buckets — exactly (independent of producer/worker
// interleaving) whenever value addition is exact, e.g. integer-valued
// updates. bench/bench_daemon.cpp re-verifies this over live sockets.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "service/service_stats.hpp"
#include "service/window.hpp"
#include "util/mpmc_queue.hpp"

namespace spkadd::service {

/// Aggregate counters for the windowed service (see also WindowStats).
struct WindowedServiceStats {
  std::uint64_t submitted = 0;  ///< updates accepted into the queue
  std::uint64_t applied = 0;    ///< updates folded into a bucket
  std::uint64_t expired = 0;    ///< updates rejected as expired at fold
  std::uint64_t rejected = 0;   ///< updates refused (service stopped)
  std::uint64_t apply_errors = 0;  ///< updates dropped by a failing fold
  std::uint64_t snapshots = 0;
  std::size_t queue_depth = 0;
  std::size_t queue_high_water = 0;
  std::uint64_t bursts = 0;         ///< burst enqueues into the queue
  std::uint64_t burst_updates = 0;  ///< updates across those bursts
  /// Per-tenant window counters, keyed by tenant name.
  std::vector<std::pair<std::string, WindowStats>> tenants;
};

class WindowedAggService {
 public:
  using Matrix = CscMatrix<std::int32_t, double>;

  struct Config {
    WindowConfig window;            ///< applied to every tenant
    std::size_t workers = 2;        ///< ingest worker threads
    std::size_t queue_capacity = 256;
    std::size_t burst_size = 16;    ///< max updates per worker pop
    /// Watermark hysteresis (0 defaults: high = capacity, low = 3/4).
    std::size_t queue_high_watermark = 0;
    std::size_t queue_low_watermark = 0;

    [[nodiscard]] std::size_t effective_high_watermark() const {
      return queue_high_watermark != 0 ? queue_high_watermark
                                       : queue_capacity;
    }
    [[nodiscard]] std::size_t effective_low_watermark() const {
      if (queue_low_watermark != 0) return queue_low_watermark;
      const std::size_t high = effective_high_watermark();
      return high > 1 ? high - high / 4 : 1;
    }
    /// Registry this service exports its counters and per-tenant
    /// window gauges into (a scrape-time collector — hot paths never
    /// touch it). nullptr disables the export; stats() is unaffected.
    obs::MetricsRegistry* metrics = &obs::default_registry();

    /// Tracer submit/snapshot spans are recorded into. Never nullptr
    /// in practice (the global tracer is disabled by default, and a
    /// disabled tracer's record calls are branch-only); nullptr is
    /// honored as fully off.
    obs::Tracer* tracer = &obs::Tracer::global();

    /// Throws std::invalid_argument on an unusable configuration.
    void validate() const;
  };

  /// One timestamped update, the unit the ingest queue carries. The
  /// daemon's poll loop builds a vector of these per poll cycle and
  /// hands it to submit_burst as one enqueue.
  struct TimedUpdate {
    std::string tenant;
    std::uint64_t timestamp = 0;
    Matrix update;
    /// Trace context this update carries through the pipeline (inactive
    /// by default — aggregate-initializing the three data fields keeps
    /// it inactive, costing one branch per tracer call).
    obs::OpTrace trace;
  };

  /// A consistent windowed view of one tenant's aggregate.
  struct Snapshot {
    Matrix sum;
    std::uint64_t epoch = 0;  ///< per-tenant snapshot sequence number
    std::uint64_t updates_applied = 0;  ///< updates folded in by then
  };

  /// Starts the worker pool immediately. Throws std::invalid_argument
  /// on an unusable config.
  explicit WindowedAggService(Config config);
  ~WindowedAggService();

  WindowedAggService(const WindowedAggService&) = delete;
  WindowedAggService& operator=(const WindowedAggService&) = delete;

  /// Enqueue one timestamped update (blocking at the queue's high
  /// watermark — backpressure). The tenant is created on first submit
  /// with the update's shape; later updates must be conformant (throws
  /// std::invalid_argument otherwise). Returns false — counting the
  /// update as rejected — once the service is stopped. Whether the
  /// update lands in a bucket or expires is decided at fold time and
  /// surfaces in stats().
  bool submit(const std::string& tenant, std::uint64_t ts, Matrix&& update);

  /// Enqueue a whole burst with one queue-lock acquisition (the net
  /// server's per-poll-cycle entry point). Tenants are created/checked
  /// for every update BEFORE anything is enqueued; a shape mismatch
  /// throws and leaves the burst untouched. Returns the number of
  /// updates accepted (fewer than burst.size() only when the service
  /// stopped mid-push; the unpushed tail is counted rejected).
  /// `burst` is emptied of everything accepted.
  std::size_t submit_burst(std::vector<TimedUpdate>& burst);

  /// Fold the newest `window_buckets` live buckets (0 = the whole live
  /// ring) of `tenant` into one sum. In-queue updates are not waited
  /// for — call drain() first for an exact cut. Throws
  /// std::invalid_argument for an unknown tenant or an oversized
  /// window.
  Snapshot snapshot(const std::string& tenant, std::size_t window_buckets);

  /// Block until every update accepted by now has been folded (or
  /// rejected as expired / dropped by a throwing fold).
  void drain();

  /// Stop accepting updates, fold the queued backlog, join the
  /// workers. Idempotent; snapshot()/stats() remain usable afterwards.
  void stop();

  [[nodiscard]] WindowedServiceStats stats() const;
  [[nodiscard]] const Config& config() const { return config_; }

 private:
  struct Task {
    TimedUpdate item;
    std::uint64_t ticket = 0;   ///< acceptance order; drives drain()
    std::uint64_t enqueue_ns = 0;  ///< queue-wait span start (tracing)
  };

  struct Tenant {
    Tenant(std::int32_t rows, std::int32_t cols, const WindowConfig& cfg)
        : window(rows, cols, cfg) {}
    std::mutex mutex;  ///< guards window (fold + snapshot + stats)
    TenantWindow window;
    std::uint64_t epoch = 0;      ///< guarded by mutex
    std::uint64_t snapshots = 0;  ///< guarded by mutex
  };

  [[nodiscard]] Tenant* find_tenant(const std::string& name) const;
  Tenant& tenant_for(const std::string& name, std::int32_t rows,
                     std::int32_t cols);
  void worker_loop();
  void apply_burst(std::vector<Task>& burst);

  Config config_;
  util::BoundedMpmcQueue<Task> queue_;

  mutable std::shared_mutex tenants_mutex_;
  std::map<std::string, std::unique_ptr<Tenant>> tenants_;

  std::vector<std::thread> workers_;
  std::atomic<bool> stopped_{false};
  std::once_flag stop_once_;

  // Progress accounting (the AggService ticket pattern): tickets are
  // issued per accepted burst and retired per folded burst, all under
  // progress_mutex_, so drain() waits on exactly its cutoff.
  mutable std::mutex progress_mutex_;
  std::condition_variable progress_cv_;
  std::uint64_t next_ticket_ = 1;
  std::set<std::uint64_t> pending_tickets_;
  std::uint64_t submitted_ = 0;
  std::uint64_t applied_ = 0;
  std::uint64_t expired_ = 0;
  std::uint64_t apply_errors_ = 0;
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> bursts_{0};
  std::atomic<std::uint64_t> burst_updates_{0};
  std::atomic<std::uint64_t> snapshots_{0};

  // Per-instance histograms (lock-free recording), exported through the
  // scrape-time collector below.
  LatencyHistogram fold_hist_;   ///< per-burst fold wall time, ns
  LatencyHistogram burst_hist_;  ///< updates per accepted burst

  /// Exports every counter above plus per-tenant window stats.
  void export_metrics(obs::CollectorSink& sink) const;

  // LAST member: destroyed first, and its dtor blocks until no render
  // can still be invoking export_metrics on this instance.
  obs::CollectorHandle collector_;
};

}  // namespace spkadd::service
