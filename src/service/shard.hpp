// Row-range sharding for the aggregation service.
//
// A shard owns one contiguous row range of a tenant's matrix. Incoming
// updates are partitioned into per-shard slices (full-shape matrices
// whose entries all fall inside the shard's range), so the shard
// accumulators hold *disjoint* structures and a tenant snapshot is just
// a k-way SpKAdd over the shard partials — every nonzero of the
// assembled sum comes from exactly one shard, which is what makes the
// sharded fold bit-identical to a one-shot spkadd whenever value
// addition is exact — the bit-identity guarantee AggService builds on.
//
// Thread-safety contract: partition_rows and RowPartition are pure
// functions over caller-owned data, safe from any thread. A Shard is
// externally synchronized — callers take Shard::mutex around fold and
// partial access (AggService holds it once per (burst, shard)).
#pragma once

#include <cstdint>
#include <mutex>
#include <utility>
#include <vector>

#include "core/accumulator.hpp"

namespace spkadd::service {

/// Uniform split of [0, rows) into `shards` contiguous chunks.
struct RowPartition {
  std::int32_t rows = 0;
  std::int32_t chunk = 1;  ///< rows per shard (last shard may be short)
  std::size_t shards = 1;

  static RowPartition make(std::int32_t rows, std::size_t shards) {
    RowPartition p;
    p.rows = rows;
    p.shards = shards;
    const auto s = static_cast<std::int32_t>(shards);
    p.chunk = rows > 0 ? (rows + s - 1) / s : 1;
    if (p.chunk < 1) p.chunk = 1;
    return p;
  }

  [[nodiscard]] std::size_t shard_of(std::int32_t row) const {
    const auto s = static_cast<std::size_t>(row / chunk);
    return s < shards ? s : shards - 1;
  }

  /// Half-open row range [lo, hi) owned by shard `s`.
  [[nodiscard]] std::pair<std::int32_t, std::int32_t> range(
      std::size_t s) const {
    const auto lo = static_cast<std::int32_t>(s) * chunk;
    const auto hi = lo + chunk;
    return {lo < rows ? lo : rows, hi < rows ? hi : rows};
  }
};

/// Split `m` into one full-shape slice per shard; slice s holds exactly
/// the entries whose row falls in partition range s, in their original
/// within-column order (so sorted inputs yield sorted slices). One
/// O(nnz + shards * cols) pass; entry values are preserved bit-exactly.
template <class IndexT, class ValueT>
std::vector<CscMatrix<IndexT, ValueT>> partition_rows(
    const CscMatrix<IndexT, ValueT>& m, const RowPartition& p) {
  const std::size_t S = p.shards;
  const auto cols = static_cast<std::size_t>(m.cols());
  const auto col_ptr = m.col_ptr();
  const auto row_idx = m.row_idx();
  const auto values = m.values();

  // Per-(shard, column) entry counts.
  std::vector<std::vector<IndexT>> counts(
      S, std::vector<IndexT>(cols + 1, 0));
  for (std::size_t j = 0; j < cols; ++j) {
    const auto lo = static_cast<std::size_t>(col_ptr[j]);
    const auto hi = static_cast<std::size_t>(col_ptr[j + 1]);
    for (std::size_t i = lo; i < hi; ++i)
      ++counts[p.shard_of(static_cast<std::int32_t>(row_idx[i]))][j + 1];
  }
  std::vector<CscMatrix<IndexT, ValueT>> out;
  out.reserve(S);
  std::vector<std::vector<IndexT>> cursor(S);
  for (std::size_t s = 0; s < S; ++s) {
    auto& cp = counts[s];
    for (std::size_t j = 0; j < cols; ++j) cp[j + 1] += cp[j];
    CscMatrix<IndexT, ValueT> slice(m.rows(), m.cols());
    slice.set_structure(cp);  // copies cp; cp stays usable as cursor base
    out.push_back(std::move(slice));
    cursor[s] = std::move(counts[s]);
  }
  for (std::size_t j = 0; j < cols; ++j) {
    const auto lo = static_cast<std::size_t>(col_ptr[j]);
    const auto hi = static_cast<std::size_t>(col_ptr[j + 1]);
    for (std::size_t i = lo; i < hi; ++i) {
      const std::size_t s =
          p.shard_of(static_cast<std::int32_t>(row_idx[i]));
      const auto dst = static_cast<std::size_t>(cursor[s][j]++);
      out[s].mutable_row_idx()[dst] = row_idx[i];
      out[s].mutable_values()[dst] = values[i];
    }
  }
  return out;
}

/// One row-range shard of one tenant: a mutex-guarded streaming
/// accumulator plus the counters ServiceStats aggregates. Each shard
/// owns its OpCounters and points its accumulator's fold options at
/// them (folds run under `mutex`, so the per-call counter contract
/// holds), making the hybrid per-chunk kernel mix — and the fold work
/// counters generally — observable per shard. A counters pointer the
/// caller left in `opts` is overridden: one shared OpCounters across
/// concurrent shard folds would be a data race.
struct TenantShard {
  TenantShard(std::int32_t rows, std::int32_t cols,
              const core::Options& opts, std::size_t batch_window)
      : acc(rows, cols, with_counters(opts, &counters), batch_window) {}

  std::mutex mutex;
  core::OpCounters counters;  ///< fold work + hybrid chunk-dispatch mix
  core::Accumulator<std::int32_t, double> acc;
  std::uint64_t slices_applied = 0;
  std::uint64_t folded_nnz = 0;

 private:
  static core::Options with_counters(core::Options opts,
                                     core::OpCounters* c) {
    opts.counters = c;
    return opts;
  }
};

}  // namespace spkadd::service
