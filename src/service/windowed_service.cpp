#include "service/windowed_service.hpp"

#include <algorithm>
#include <iostream>
#include <stdexcept>
#include <utility>

namespace spkadd::service {

void WindowedAggService::Config::validate() const {
  window.validate();
  if (workers < 1)
    throw std::invalid_argument(
        "WindowedAggService: workers must be >= 1");
  if (queue_capacity < 1)
    throw std::invalid_argument(
        "WindowedAggService: queue_capacity must be >= 1");
  if (burst_size < 1)
    throw std::invalid_argument(
        "WindowedAggService: burst_size must be >= 1");
  if (effective_high_watermark() > queue_capacity)
    throw std::invalid_argument(
        "WindowedAggService: high watermark exceeds queue_capacity");
  if (effective_low_watermark() > effective_high_watermark())
    throw std::invalid_argument(
        "WindowedAggService: low watermark exceeds the high watermark");
}

namespace {

WindowedAggService::Config validated(WindowedAggService::Config cfg) {
  cfg.validate();
  return cfg;
}

}  // namespace

WindowedAggService::WindowedAggService(Config config)
    : config_(validated(std::move(config))),
      queue_(config_.queue_capacity, config_.effective_high_watermark(),
             config_.effective_low_watermark()) {
  workers_.reserve(config_.workers);
  for (std::size_t i = 0; i < config_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  if (config_.metrics != nullptr) {
    collector_ = config_.metrics->add_collector(
        [this](obs::CollectorSink& sink) { export_metrics(sink); });
  }
}

WindowedAggService::~WindowedAggService() { stop(); }

WindowedAggService::Tenant* WindowedAggService::find_tenant(
    const std::string& name) const {
  std::shared_lock lock(tenants_mutex_);
  auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second.get();
}

WindowedAggService::Tenant& WindowedAggService::tenant_for(
    const std::string& name, std::int32_t rows, std::int32_t cols) {
  const auto check = [&](Tenant& t) -> Tenant& {
    if (t.window.rows() != rows || t.window.cols() != cols)
      throw std::invalid_argument(
          "WindowedAggService: update shape does not match tenant '" +
          name + "'");
    return t;
  };
  {
    std::shared_lock lock(tenants_mutex_);
    auto it = tenants_.find(name);
    if (it != tenants_.end()) return check(*it->second);
  }
  std::unique_lock lock(tenants_mutex_);
  auto it = tenants_.find(name);
  if (it != tenants_.end()) return check(*it->second);
  auto t = std::make_unique<Tenant>(rows, cols, config_.window);
  return *tenants_.emplace(name, std::move(t)).first->second;
}

bool WindowedAggService::submit(const std::string& tenant,
                                std::uint64_t ts, Matrix&& update) {
  std::vector<TimedUpdate> one;
  one.push_back(TimedUpdate{tenant, ts, std::move(update), {}});
  return submit_burst(one) == 1;
}

std::size_t WindowedAggService::submit_burst(
    std::vector<TimedUpdate>& burst) {
  if (burst.empty()) return 0;
  if (stopped_.load(std::memory_order_seq_cst)) {
    rejected_.fetch_add(burst.size(), std::memory_order_relaxed);
    return 0;
  }
  // Create/validate every tenant BEFORE anything is ticketed or
  // enqueued: a shape mismatch throws here with the burst untouched.
  for (const auto& u : burst)
    tenant_for(u.tenant, u.update.rows(), u.update.cols());

  obs::Tracer* const tracer = config_.tracer;
  const std::uint64_t enqueue_start =
      tracer != nullptr && tracer->enabled() ? obs::Tracer::now_ns() : 0;
  std::vector<Task> tasks;
  tasks.reserve(burst.size());
  for (auto& u : burst) tasks.push_back(Task{std::move(u), 0, 0});
  burst.clear();
  if (enqueue_start != 0) {
    // Close the burst-enqueue span before the tasks are moved into the
    // queue; enqueue_ns marks where the queue-wait span begins.
    for (auto& task : tasks) {
      tracer->record(task.item.trace, obs::Stage::kBurstEnqueue,
                     enqueue_start, "tenant=" + task.item.tenant);
      task.enqueue_ns = obs::Tracer::now_ns();
    }
  }
  const std::size_t n = tasks.size();
  {
    std::lock_guard<std::mutex> lock(progress_mutex_);
    for (auto& task : tasks) {
      task.ticket = next_ticket_++;
      pending_tickets_.insert(task.ticket);
    }
    submitted_ += n;
  }
  const std::size_t pushed = queue_.push_burst(tasks);
  if (!tasks.empty()) {
    // Queue closed mid-burst; retire the handed-back tail as rejected.
    {
      std::lock_guard<std::mutex> lock(progress_mutex_);
      for (const auto& task : tasks) pending_tickets_.erase(task.ticket);
      submitted_ -= tasks.size();
    }
    progress_cv_.notify_all();
    rejected_.fetch_add(tasks.size(), std::memory_order_relaxed);
  }
  if (pushed != 0) {
    bursts_.fetch_add(1, std::memory_order_relaxed);
    burst_updates_.fetch_add(pushed, std::memory_order_relaxed);
    burst_hist_.record(pushed);
  }
  return pushed;
}

void WindowedAggService::worker_loop() {
  std::vector<Task> burst;
  burst.reserve(config_.burst_size);
  // pop_burst returns 0 only once the queue is closed AND drained, so
  // shutdown folds the whole backlog before the workers exit.
  while (queue_.pop_burst(burst, config_.burst_size) != 0) {
    apply_burst(burst);
    burst.clear();
  }
}

void WindowedAggService::apply_burst(std::vector<Task>& burst) {
  // Group task indices per tenant, preserving burst order, then take
  // each tenant's lock once for the whole group.
  std::vector<std::pair<const std::string*, std::vector<std::size_t>>>
      groups;
  for (std::size_t i = 0; i < burst.size(); ++i) {
    auto it = std::find_if(groups.begin(), groups.end(), [&](const auto& g) {
      return *g.first == burst[i].item.tenant;
    });
    if (it == groups.end())
      groups.emplace_back(&burst[i].item.tenant,
                          std::vector<std::size_t>{i});
    else
      it->second.push_back(i);
  }
  std::uint64_t n_applied = 0;
  std::uint64_t n_expired = 0;
  std::uint64_t n_errors = 0;
  obs::Tracer* const tracer = config_.tracer;
  const std::uint64_t fold_start = obs::Tracer::now_ns();
  for (auto& g : groups) {
    Tenant* t = find_tenant(*g.first);
    if (t == nullptr) {  // unreachable: submit_burst creates tenants
      n_errors += g.second.size();
      continue;
    }
    std::lock_guard<std::mutex> lock(t->mutex);
    for (auto i : g.second) {
      obs::OpTrace& trace = burst[i].item.trace;
      if (tracer != nullptr && trace.active())
        tracer->record(trace, obs::Stage::kQueueWait,
                       burst[i].enqueue_ns);
      const std::uint64_t submit_start =
          trace.active() ? obs::Tracer::now_ns() : 0;
      try {
        if (t->window.submit(burst[i].item.timestamp,
                             std::move(burst[i].item.update)))
          ++n_applied;
        else
          ++n_expired;  // counted in the window too, never folded
      } catch (const std::exception& e) {
        ++n_errors;
        std::cerr << "WindowedAggService: dropped update for tenant '"
                  << *g.first << "': " << e.what() << "\n";
      }
      if (tracer != nullptr && trace.active()) {
        tracer->record(trace, obs::Stage::kShardFold, submit_start,
                       "tenant=" + *g.first);
        tracer->finish_op(trace);
      }
    }
  }
  fold_hist_.record(obs::Tracer::now_ns() - fold_start);
  {
    std::lock_guard<std::mutex> lock(progress_mutex_);
    for (const auto& task : burst) pending_tickets_.erase(task.ticket);
    applied_ += n_applied;
    expired_ += n_expired;
    apply_errors_ += n_errors;
  }
  progress_cv_.notify_all();
}

WindowedAggService::Snapshot WindowedAggService::snapshot(
    const std::string& tenant, std::size_t window_buckets) {
  Tenant* t = find_tenant(tenant);
  if (t == nullptr)
    throw std::invalid_argument("WindowedAggService: unknown tenant '" +
                                tenant + "'");
  const std::uint64_t start = obs::Tracer::now_ns();
  std::lock_guard<std::mutex> lock(t->mutex);
  Snapshot snap;
  snap.sum = t->window.snapshot(window_buckets);
  snap.epoch = ++t->epoch;
  snap.updates_applied = t->window.stats().accepted;
  ++t->snapshots;
  snapshots_.fetch_add(1, std::memory_order_relaxed);
  if (config_.tracer != nullptr)
    config_.tracer->record_span(obs::Stage::kSnapshot, start,
                                "tenant=" + tenant);
  return snap;
}

void WindowedAggService::drain() {
  std::unique_lock<std::mutex> lock(progress_mutex_);
  // Wait for exactly the tickets issued before this call: completions
  // of later-submitted tasks can never satisfy an earlier drain.
  const std::uint64_t cutoff = next_ticket_;
  progress_cv_.wait(lock, [&] {
    return pending_tickets_.empty() || *pending_tickets_.begin() >= cutoff;
  });
}

void WindowedAggService::stop() {
  std::call_once(stop_once_, [this] {
    stopped_.store(true, std::memory_order_seq_cst);
    queue_.close();  // workers fold the backlog, then see 0
    for (auto& w : workers_) w.join();
  });
}

WindowedServiceStats WindowedAggService::stats() const {
  WindowedServiceStats out;
  {
    std::lock_guard<std::mutex> lock(progress_mutex_);
    out.submitted = submitted_;
    out.applied = applied_;
    out.expired = expired_;
    out.apply_errors = apply_errors_;
  }
  out.rejected = rejected_.load(std::memory_order_relaxed);
  out.snapshots = snapshots_.load(std::memory_order_relaxed);
  out.queue_depth = queue_.size();
  out.queue_high_water = queue_.high_water();
  out.bursts = bursts_.load(std::memory_order_relaxed);
  out.burst_updates = burst_updates_.load(std::memory_order_relaxed);
  std::shared_lock tenants_lock(tenants_mutex_);
  for (const auto& [name, t] : tenants_) {
    std::lock_guard<std::mutex> g(t->mutex);
    out.tenants.emplace_back(name, t->window.stats());
  }
  return out;
}

void WindowedAggService::export_metrics(obs::CollectorSink& sink) const {
  // Invoked by the registry at scrape time (registry mutex held); the
  // hot paths never take the registry mutex, so taking the service
  // locks inside stats() cannot cycle.
  const WindowedServiceStats st = stats();
  const obs::Labels svc{{"service", "windowed"}};
  const auto d = [](std::uint64_t v) { return static_cast<double>(v); };
  sink.counter("spkadd_service_submitted_total",
               "Updates accepted by submit() and handed to the queue",
               svc, d(st.submitted));
  sink.counter("spkadd_service_applied_total",
               "Updates fully folded into their shards", svc,
               d(st.applied));
  sink.counter("spkadd_service_expired_total",
               "Updates rejected as expired at fold time", svc,
               d(st.expired));
  sink.counter("spkadd_service_rejected_total",
               "Updates refused (service stopped or queue closed)", svc,
               d(st.rejected));
  sink.counter("spkadd_service_apply_errors_total",
               "Updates dropped by a throwing fold", svc,
               d(st.apply_errors));
  sink.counter("spkadd_service_snapshots_total",
               "Windowed snapshots assembled", svc, d(st.snapshots));
  sink.gauge("spkadd_queue_depth", "Current ingest queue backlog", svc,
             d(st.queue_depth));
  sink.gauge("spkadd_queue_high_water", "Deepest ingest backlog seen",
             svc, d(st.queue_high_water));
  sink.counter("spkadd_ingest_bursts_total",
               "Burst flushes into the ingest queue", svc, d(st.bursts));
  sink.counter("spkadd_queue_throttle_events_total",
               "Producer pushes blocked at the high watermark", svc,
               d(queue_.throttle_events()));
  sink.counter("spkadd_queue_throttle_seconds_total",
               "Total producer time spent throttled", svc,
               queue_.throttle_seconds());
  sink.histogram("spkadd_fold_seconds",
                 "Wall time folding one popped burst into windows", svc,
                 fold_hist_, obs::Unit::kSeconds);
  sink.histogram("spkadd_ingest_burst_updates",
                 "Updates per accepted burst", svc, burst_hist_,
                 obs::Unit::kCount);
  WindowStats totals;
  for (const auto& [name, ws] : st.tenants) {
    const obs::Labels tl{{"service", "windowed"}, {"tenant", name}};
    sink.gauge("spkadd_tenant_live_buckets",
               "Window buckets currently materialized", tl,
               d(ws.live_buckets));
    sink.counter("spkadd_tenant_accepted_total",
                 "Updates routed into this tenant's window", tl,
                 d(ws.accepted));
    sink.counter("spkadd_tenant_expired_total",
                 "Updates rejected as older than the live ring", tl,
                 d(ws.expired_rejected));
    sink.counter("spkadd_tenant_buckets_retired_total",
                 "Window buckets aged out of the live ring", tl,
                 d(ws.buckets_retired));
    totals.fold_flushes += ws.fold_flushes;
    totals.peak_staged_nnz =
        std::max(totals.peak_staged_nnz, ws.peak_staged_nnz);
    totals.chunks_heap += ws.chunks_heap;
    totals.chunks_spa += ws.chunks_spa;
    totals.chunks_hash += ws.chunks_hash;
    totals.chunks_sliding += ws.chunks_sliding;
    totals.chunks_dense += ws.chunks_dense;
  }
  sink.counter("spkadd_shard_fold_flushes_total",
               "Accumulator folds performed across tenant windows", svc,
               d(totals.fold_flushes));
  sink.gauge("spkadd_accumulator_staged_nnz_peak",
             "Max nonzeros awaiting a fold in any one bucket", svc,
             d(totals.peak_staged_nnz));
  const auto chunk = [&](const char* kernel, std::uint64_t v) {
    sink.counter("spkadd_hybrid_chunks_total",
                 "Hybrid column chunks dispatched per kernel",
                 {{"service", "windowed"}, {"kernel", kernel}}, d(v));
  };
  chunk("heap", totals.chunks_heap);
  chunk("spa", totals.chunks_spa);
  chunk("hash", totals.chunks_hash);
  chunk("sliding", totals.chunks_sliding);
  chunk("dense", totals.chunks_dense);
}

}  // namespace spkadd::service
