// Per-tenant sliding-window aggregation: time as a first-class dimension
// over the streaming SpKAdd accumulator.
//
// A TenantWindow owns a ring of time buckets. Each bucket covers
// `bucket_width` ticks of the caller's (abstract, monotone) time axis and
// is its own core::Accumulator epoch: submit(ts, update) routes the
// update to the bucket owning ts, snapshot(window) folds only the live
// buckets inside the window, and a bucket that ages out of the ring
// retires in O(1) — the bucket (and its accumulator) is simply dropped,
// no subtraction pass ever runs over the aggregate. This is the
// hlld/sliding-HLL set-manager shape (`sparse_size(set, timestamp,
// time_window)`) applied to sparse-matrix aggregation.
//
// Thread-safety contract: a TenantWindow is NOT internally synchronized.
// Exactly one thread may call submit/snapshot/advance_to at a time;
// concurrent callers must hold an external lock (WindowedAggService
// wraps one mutex-guarded TenantWindow per tenant). stats() follows the
// same rule — it reads the same state the mutators write.
//
// Bit-identity guarantee: snapshot(w) is a strict left fold of the live
// bucket partial sums in ascending bucket order via the k-way SpKAdd
// path, and each bucket partial is itself a strict left fold of that
// bucket's updates in submission order. Every SpKAdd kernel accumulates
// equal-row values strictly left to right, so a windowed snapshot is
// bit-identical to a single-threaded reference fold of the same live
// buckets — exactly (independent of submission interleaving) whenever
// value addition is exact, e.g. integer-valued updates. A single-bucket
// window returns that bucket's partial sum unchanged, so it is
// bit-identical to a non-windowed accumulator fed the same stream.
#pragma once

#include <cstdint>
#include <deque>
#include <stdexcept>

#include "core/accumulator.hpp"

namespace spkadd::service {

/// Tuning knobs for one tenant's sliding window.
struct WindowConfig {
  /// Ticks of the caller's time axis covered by one bucket. Timestamps
  /// are abstract unsigned ticks (the daemon forwards client-supplied
  /// ones); bucket b owns ts in [b*bucket_width, (b+1)*bucket_width).
  std::uint64_t bucket_width = 1000;

  /// Ring capacity: how many consecutive buckets stay live. A submit
  /// whose timestamp falls before the oldest live bucket is rejected
  /// (and counted), never folded; buckets older than the newest
  /// live_buckets retire in O(1) when time advances.
  std::size_t live_buckets = 8;

  /// Accumulator fold window per bucket (core::Accumulator
  /// batch_capacity, the paper's §V batch size).
  std::size_t batch_window = 8;

  /// SpKAdd options for bucket folds and snapshot assembly. The default
  /// (Method::Auto, sorted output) yields canonical snapshots. A
  /// counters pointer left here is overridden per window (one shared
  /// OpCounters across concurrently-folding tenants would race).
  core::Options options;

  /// Throws std::invalid_argument on an unusable configuration.
  void validate() const;
};

/// Counters of one tenant's window (monotone except live_buckets).
struct WindowStats {
  std::uint64_t accepted = 0;          ///< updates routed to a bucket
  std::uint64_t expired_rejected = 0;  ///< ts older than the live ring
  std::uint64_t buckets_opened = 0;    ///< buckets ever materialized
  std::uint64_t buckets_retired = 0;   ///< buckets dropped on rotation
  std::uint64_t snapshots = 0;         ///< windowed folds served
  /// Accumulator folds performed across live AND retired buckets: the
  /// expiry-is-O(1) observable. Retiring a bucket drops it without any
  /// fold, so rotation never moves this counter.
  std::uint64_t fold_flushes = 0;
  std::size_t live_buckets = 0;     ///< buckets currently materialized
  std::uint64_t newest_bucket = 0;  ///< highest bucket id seen
  /// Max nonzeros awaiting a fold in any one bucket, live or retired —
  /// the window's staging-memory high-water mark.
  std::size_t peak_staged_nnz = 0;
  // Hybrid chunk-dispatch mix of this window's folds (how many
  // nnz-balanced column chunks each kernel was chosen for). All zero
  // unless WindowConfig::options.method == core::Method::Hybrid.
  std::uint64_t chunks_heap = 0;
  std::uint64_t chunks_spa = 0;
  std::uint64_t chunks_hash = 0;
  std::uint64_t chunks_sliding = 0;
  std::uint64_t chunks_dense = 0;
};

/// One tenant's ring of window buckets. External synchronization
/// required (see the file header).
class TenantWindow {
 public:
  using Matrix = CscMatrix<std::int32_t, double>;

  /// Throws std::invalid_argument on an unusable config.
  TenantWindow(std::int32_t rows, std::int32_t cols, WindowConfig config);

  TenantWindow(const TenantWindow&) = delete;
  TenantWindow& operator=(const TenantWindow&) = delete;
  TenantWindow(TenantWindow&&) noexcept = default;

  [[nodiscard]] std::int32_t rows() const { return rows_; }
  [[nodiscard]] std::int32_t cols() const { return cols_; }
  [[nodiscard]] const WindowConfig& config() const { return config_; }

  /// Route `update` to the bucket owning `ts`, advancing the ring when
  /// ts opens a newer bucket (retiring aged-out buckets in O(1)).
  /// Returns false — and counts the update in expired_rejected — when
  /// ts falls before the oldest live bucket; an expired update is never
  /// folded. Throws std::invalid_argument on a non-conformant update.
  bool submit(std::uint64_t ts, Matrix&& update);

  /// Fold the newest `window_buckets` live buckets (0 = the whole live
  /// ring) in ascending bucket order into one sum. Buckets that never
  /// saw an update contribute nothing; an empty window yields the
  /// all-zero rows x cols matrix. Throws std::invalid_argument when
  /// window_buckets exceeds live_buckets.
  [[nodiscard]] Matrix snapshot(std::size_t window_buckets = 0);

  /// Advance the time axis to `ts` without submitting (retires aged-out
  /// buckets exactly as a submit at `ts` would). Lets callers expire
  /// idle tenants on wall-clock ticks.
  void advance_to(std::uint64_t ts);

  [[nodiscard]] WindowStats stats() const;

 private:
  struct Bucket {
    std::uint64_t id;
    std::uint64_t updates = 0;
    core::Accumulator<std::int32_t, double> acc;

    Bucket(std::uint64_t id_, std::int32_t rows, std::int32_t cols,
           const core::Options& opts, std::size_t batch_window)
        : id(id_), acc(rows, cols, opts, batch_window) {}
  };

  [[nodiscard]] std::uint64_t bucket_id(std::uint64_t ts) const {
    return ts / config_.bucket_width;
  }
  /// Oldest bucket id still live given the newest id seen.
  [[nodiscard]] std::uint64_t oldest_live_id() const {
    const auto span = static_cast<std::uint64_t>(config_.live_buckets - 1);
    return newest_id_ >= span ? newest_id_ - span : 0;
  }
  /// Make `id` the newest bucket id and drop aged-out buckets. O(1)
  /// amortized per retired bucket: pop the front of the ring, no fold.
  void rotate_to(std::uint64_t id);
  /// The live bucket owning `id`, materialized on first use (kept in
  /// ascending id order; ids with no updates are never materialized).
  Bucket& bucket_for(std::uint64_t id);

  std::int32_t rows_;
  std::int32_t cols_;
  WindowConfig config_;
  core::OpCounters counters_;  ///< per-window: see WindowConfig::options
  std::deque<Bucket> buckets_;  ///< ascending id; only non-empty ids
  bool have_any_ = false;       ///< any bucket id established yet?
  std::uint64_t newest_id_ = 0;
  std::uint64_t expired_rejected_ = 0;
  std::uint64_t accepted_ = 0;
  std::uint64_t buckets_opened_ = 0;
  std::uint64_t buckets_retired_ = 0;
  std::uint64_t snapshots_ = 0;
  std::uint64_t retired_flushes_ = 0;  ///< fold count of dropped buckets
  std::size_t retired_peak_staged_ = 0;  ///< staged peak of dropped buckets
};

}  // namespace spkadd::service
