// Tuning knobs for the sharded aggregation service (see agg_service.hpp
// for the architecture). Every knob maps to one axis of the
// bench_service loadgen sweep.
#pragma once

#include <cstddef>
#include <stdexcept>

#include "core/options.hpp"

namespace spkadd::service {

struct ServiceConfig {
  /// Row-range shards per tenant. Each incoming update is partitioned
  /// into `shards` disjoint row slices and each slice folds into its own
  /// streaming Accumulator, so updates to different row ranges never
  /// contend on one lock.
  std::size_t shards = 4;

  /// Worker threads draining the ingest queue. 0 = one per shard.
  std::size_t workers = 0;

  /// Ingest queue capacity (whole updates). submit() blocks — the
  /// service's backpressure — once this many updates are in flight.
  std::size_t queue_capacity = 64;

  /// Accumulator fold window: each shard folds its running sum after
  /// this many staged slices (core::Accumulator batch_capacity, the
  /// paper's §V batch size).
  std::size_t batch_window = 8;

  /// SpKAdd options used for shard folds and snapshot assembly. The
  /// default (Method::Auto, sorted output) yields canonical snapshots.
  core::Options options;

  /// Effective worker count after defaulting.
  [[nodiscard]] std::size_t effective_workers() const {
    return workers != 0 ? workers : shards;
  }

  /// Whether the configured fold method refuses unsorted columns
  /// (merge-family kernels, paper Table I). The service uses this to
  /// reject a fold-fatal configuration at construction and to validate
  /// updates BEFORE they are staged. Hybrid is safe either way: its
  /// per-chunk plan only picks the heap kernel when inputs_sorted is
  /// declared (and the service then validates updates against it).
  [[nodiscard]] bool method_requires_sorted() const {
    switch (options.method) {
      case core::Method::TwoWayIncremental:
      case core::Method::TwoWayTree:
      case core::Method::Heap:
      case core::Method::ReferenceIncremental:
      case core::Method::ReferenceTree:
        return true;
      default:
        return false;
    }
  }

  /// Throws std::invalid_argument on an unusable configuration.
  void validate() const {
    if (shards < 1)
      throw std::invalid_argument("ServiceConfig: shards must be >= 1");
    if (queue_capacity < 1)
      throw std::invalid_argument(
          "ServiceConfig: queue_capacity must be >= 1");
    if (batch_window < 1)
      throw std::invalid_argument(
          "ServiceConfig: batch_window must be >= 1");
    // A merge-family method with inputs declared unsorted would throw
    // on every single fold; refuse the config instead of the traffic.
    if (method_requires_sorted() && !options.inputs_sorted)
      throw std::invalid_argument(
          "ServiceConfig: method requires sorted inputs but "
          "options.inputs_sorted is false");
  }
};

}  // namespace spkadd::service
