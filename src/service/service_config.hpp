// Tuning knobs for the sharded aggregation service (see agg_service.hpp
// for the architecture). Every knob maps to one axis of the
// bench_service loadgen sweep.
//
// Thread-safety contract: ServiceConfig is a plain value type — fill it
// on one thread, hand it to AggService by value; the service never
// mutates it afterwards. Bit-identity: `options` selects the fold
// method, and every method is a strict left fold, so any valid config
// yields snapshots bit-identical to one-shot spkadd on exact values.
#pragma once

#include <algorithm>
#include <cstddef>
#include <stdexcept>

#include "core/options.hpp"
#include "obs/metrics.hpp"

namespace spkadd::service {

/// Whether `method` refuses unsorted columns (merge-family kernels,
/// paper Table I). Services use this to reject a fold-fatal
/// configuration at construction and to validate updates BEFORE they
/// are staged. Hybrid is safe either way: its per-chunk plan only
/// picks the heap kernel when inputs_sorted is declared.
[[nodiscard]] inline bool method_requires_sorted(core::Method method) {
  switch (method) {
    case core::Method::TwoWayIncremental:
    case core::Method::TwoWayTree:
    case core::Method::Heap:
    case core::Method::ReferenceIncremental:
    case core::Method::ReferenceTree:
      return true;
    default:
      return false;
  }
}

struct ServiceConfig {
  /// Row-range shards per tenant. Each incoming update is partitioned
  /// into `shards` disjoint row slices and each slice folds into its own
  /// streaming Accumulator, so updates to different row ranges never
  /// contend on one lock.
  std::size_t shards = 4;

  /// Worker threads draining the ingest queue. 0 = one per shard.
  std::size_t workers = 0;

  /// Ingest queue capacity (whole updates): the hard memory bound on
  /// in-flight updates. Producer admission is governed by the
  /// watermarks below, not by raw capacity.
  std::size_t queue_capacity = 64;

  /// Producer burst buffer size: submit() stages updates into a
  /// thread-local buffer flushed into the ingest queue as ONE enqueue
  /// (one queue-lock acquisition per burst, not per update) once this
  /// many are staged. Workers pop up to a burst at a time and fold the
  /// slices grouped per shard (one shard-lock acquisition per burst).
  /// 1 = flush on every submit, the pre-burst behavior.
  std::size_t burst_size = 8;

  /// A staged update never waits in a burst buffer longer than this
  /// before the background flusher pushes the partial burst, so a lone
  /// update is not stranded waiting for the buffer to fill.
  std::size_t flush_deadline_us = 500;

  /// Queue admission hysteresis (FlexiCAS XACT_QUEUE_HIGH/LOW):
  /// producers throttle once the queue depth reaches the high
  /// watermark and are released only when workers drain it to the low
  /// watermark, instead of hard-blocking at capacity and waking on
  /// every pop. 0 defaults: high = queue_capacity, low = 3/4 of high.
  std::size_t queue_high_watermark = 0;
  std::size_t queue_low_watermark = 0;

  /// Pin worker thread i to logical CPU i mod online-CPUs
  /// (best-effort), giving stable thread/shard affinity on multi-core
  /// scaling runs. Off by default: pinning a whole worker pool onto an
  /// oversubscribed box hurts.
  bool pin_threads = false;

  /// Accumulator fold window: each shard folds its running sum after
  /// this many staged slices (core::Accumulator batch_capacity, the
  /// paper's §V batch size).
  std::size_t batch_window = 8;

  /// SpKAdd options used for shard folds and snapshot assembly. The
  /// default (Method::Auto, sorted output) yields canonical snapshots.
  core::Options options;

  /// Registry this service exports its counters and latency histograms
  /// into (a scrape-time collector — hot paths never touch it).
  /// nullptr disables the export; stats() is unaffected either way.
  obs::MetricsRegistry* metrics = &obs::default_registry();

  /// Effective worker count after defaulting.
  [[nodiscard]] std::size_t effective_workers() const {
    return workers != 0 ? workers : shards;
  }

  /// Watermarks after defaulting (high = capacity, low = 3/4 high).
  [[nodiscard]] std::size_t effective_high_watermark() const {
    return queue_high_watermark != 0 ? queue_high_watermark
                                     : queue_capacity;
  }
  [[nodiscard]] std::size_t effective_low_watermark() const {
    if (queue_low_watermark != 0) return queue_low_watermark;
    const std::size_t high = effective_high_watermark();
    return std::max<std::size_t>(1, high - high / 4);
  }

  /// Whether the configured fold method refuses unsorted columns (the
  /// free method_requires_sorted() above, applied to options.method).
  [[nodiscard]] bool method_requires_sorted() const {
    return service::method_requires_sorted(options.method);
  }

  /// Throws std::invalid_argument on an unusable configuration.
  void validate() const {
    if (shards < 1)
      throw std::invalid_argument("ServiceConfig: shards must be >= 1");
    if (queue_capacity < 1)
      throw std::invalid_argument(
          "ServiceConfig: queue_capacity must be >= 1");
    if (batch_window < 1)
      throw std::invalid_argument(
          "ServiceConfig: batch_window must be >= 1");
    if (burst_size < 1)
      throw std::invalid_argument("ServiceConfig: burst_size must be >= 1");
    if (flush_deadline_us < 1)
      throw std::invalid_argument(
          "ServiceConfig: flush_deadline_us must be >= 1");
    if (effective_high_watermark() > queue_capacity)
      throw std::invalid_argument(
          "ServiceConfig: queue_high_watermark exceeds queue_capacity");
    if (effective_low_watermark() > effective_high_watermark())
      throw std::invalid_argument(
          "ServiceConfig: queue_low_watermark exceeds the high watermark");
    // A merge-family method with inputs declared unsorted would throw
    // on every single fold; refuse the config instead of the traffic.
    if (method_requires_sorted() && !options.inputs_sorted)
      throw std::invalid_argument(
          "ServiceConfig: method requires sorted inputs but "
          "options.inputs_sorted is false");
  }
};

}  // namespace spkadd::service
