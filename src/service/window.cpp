#include "service/window.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "core/spkadd.hpp"
#include "service/service_config.hpp"

namespace spkadd::service {

void WindowConfig::validate() const {
  if (bucket_width < 1)
    throw std::invalid_argument(
        "WindowConfig: bucket_width must be >= 1");
  if (live_buckets < 1)
    throw std::invalid_argument(
        "WindowConfig: live_buckets must be >= 1");
  if (batch_window < 1)
    throw std::invalid_argument(
        "WindowConfig: batch_window must be >= 1");
  // A merge-family method with inputs declared unsorted would throw on
  // every single fold; refuse the config instead of the traffic.
  if (method_requires_sorted(options.method) && !options.inputs_sorted)
    throw std::invalid_argument(
        "WindowConfig: method requires sorted inputs but "
        "options.inputs_sorted is false");
}

TenantWindow::TenantWindow(std::int32_t rows, std::int32_t cols,
                           WindowConfig config)
    : rows_(rows), cols_(cols), config_(std::move(config)) {
  config_.validate();
  // One OpCounters per window, never shared across tenants: folds of
  // different tenants run concurrently under different locks.
  config_.options.counters = &counters_;
}

bool TenantWindow::submit(std::uint64_t ts, Matrix&& update) {
  if (update.rows() != rows_ || update.cols() != cols_)
    throw std::invalid_argument(
        "TenantWindow: update is not conformant");
  const std::uint64_t id = bucket_id(ts);
  if (have_any_ && id < oldest_live_id()) {
    ++expired_rejected_;  // never folded, never staged
    return false;
  }
  if (!have_any_ || id > newest_id_) rotate_to(id);
  Bucket& bucket = bucket_for(id);
  bucket.acc.add(std::move(update));
  ++bucket.updates;
  ++accepted_;
  return true;
}

void TenantWindow::advance_to(std::uint64_t ts) {
  const std::uint64_t id = bucket_id(ts);
  if (!have_any_ || id > newest_id_) rotate_to(id);
}

void TenantWindow::rotate_to(std::uint64_t id) {
  newest_id_ = id;
  have_any_ = true;
  // Retirement IS the pop: the bucket's accumulator (running partial
  // sum and all) is dropped whole — no subtraction, no fold, no visit
  // of the surviving buckets.
  while (!buckets_.empty() && buckets_.front().id < oldest_live_id()) {
    retired_flushes_ += buckets_.front().acc.stats().flushes;
    retired_peak_staged_ = std::max(
        retired_peak_staged_, buckets_.front().acc.stats().peak_staged_nnz);
    buckets_.pop_front();
    ++buckets_retired_;
  }
}

TenantWindow::Bucket& TenantWindow::bucket_for(std::uint64_t id) {
  // Ascending-id ring, only materialized ids. Windows are small
  // (live_buckets buckets at most), so a linear scan beats a map.
  auto it = buckets_.begin();
  while (it != buckets_.end() && it->id < id) ++it;
  if (it != buckets_.end() && it->id == id) return *it;
  it = buckets_.emplace(it, id, rows_, cols_, config_.options,
                        config_.batch_window);
  ++buckets_opened_;
  return *it;
}

TenantWindow::Matrix TenantWindow::snapshot(std::size_t window_buckets) {
  if (window_buckets > config_.live_buckets)
    throw std::invalid_argument(
        "TenantWindow: window exceeds live_buckets");
  const std::size_t w =
      window_buckets == 0 ? config_.live_buckets : window_buckets;
  ++snapshots_;
  // Window cut: bucket ids in (newest - w, newest], ascending.
  const auto span = static_cast<std::uint64_t>(w - 1);
  const std::uint64_t lo =
      newest_id_ >= span ? newest_id_ - span : 0;
  std::vector<const Matrix*> parts;
  parts.reserve(buckets_.size());
  bool sorted = true;
  for (auto& b : buckets_) {
    if (!have_any_ || b.id < lo) continue;
    const Matrix& partial = b.acc.partial_sum();
    sorted = sorted && b.acc.partial_is_sorted();
    parts.push_back(&partial);
  }
  if (parts.empty()) return Matrix(rows_, cols_);
  // A single live bucket IS the window sum — returning its partial
  // unchanged is what makes the one-bucket window bit-identical to a
  // non-windowed accumulator fed the same stream.
  if (parts.size() == 1) return *parts.front();
  core::Options opts = config_.options;
  opts.inputs_sorted = opts.inputs_sorted && sorted;
  return core::spkadd(core::MatrixPtrs<std::int32_t, double>(parts),
                      opts);
}

WindowStats TenantWindow::stats() const {
  WindowStats out;
  out.accepted = accepted_;
  out.expired_rejected = expired_rejected_;
  out.buckets_opened = buckets_opened_;
  out.buckets_retired = buckets_retired_;
  out.snapshots = snapshots_;
  out.fold_flushes = retired_flushes_;
  out.peak_staged_nnz = retired_peak_staged_;
  for (const auto& b : buckets_) {
    out.fold_flushes += b.acc.stats().flushes;
    out.peak_staged_nnz =
        std::max(out.peak_staged_nnz, b.acc.stats().peak_staged_nnz);
  }
  out.live_buckets = buckets_.size();
  out.newest_bucket = newest_id_;
  out.chunks_heap = counters_.chunks_heap;
  out.chunks_spa = counters_.chunks_spa;
  out.chunks_hash = counters_.chunks_hash;
  out.chunks_sliding = counters_.chunks_sliding;
  out.chunks_dense = counters_.chunks_dense;
  return out;
}

}  // namespace spkadd::service
