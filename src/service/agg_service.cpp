#include "service/agg_service.hpp"

#include <algorithm>
#include <iostream>
#include <stdexcept>
#include <utility>

#include "core/spkadd.hpp"
#include "io/binary_io.hpp"

namespace spkadd::service {

AggService::Tenant::Tenant(std::int32_t r, std::int32_t c,
                           const ServiceConfig& cfg)
    : rows(r), cols(c), partition(RowPartition::make(r, cfg.shards)) {
  for (std::size_t s = 0; s < cfg.shards; ++s)
    shards.emplace_back(r, c, cfg.options, cfg.batch_window);
}

AggService::AggService(ServiceConfig config)
    : config_(std::move(config)), queue_(config_.queue_capacity) {
  config_.validate();
  const std::size_t n = config_.effective_workers();
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

AggService::~AggService() { stop(); }

AggService::Tenant* AggService::find_tenant(const std::string& name) const {
  std::shared_lock lock(tenants_mutex_);
  auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second.get();
}

AggService::Tenant& AggService::tenant_for(const std::string& name,
                                           std::int32_t rows,
                                           std::int32_t cols) {
  const auto check = [&](Tenant& t) -> Tenant& {
    if (t.rows != rows || t.cols != cols)
      throw std::invalid_argument(
          "AggService: update shape does not match tenant '" + name + "'");
    return t;
  };
  {
    std::shared_lock lock(tenants_mutex_);
    auto it = tenants_.find(name);
    if (it != tenants_.end()) return check(*it->second);
  }
  std::unique_lock lock(tenants_mutex_);
  auto it = tenants_.find(name);
  if (it != tenants_.end()) return check(*it->second);
  auto t = std::make_unique<Tenant>(rows, cols, config_);
  return *tenants_.emplace(name, std::move(t)).first->second;
}

bool AggService::enqueue(Task& task, bool blocking) {
  {
    std::lock_guard<std::mutex> lock(progress_mutex_);
    task.ticket = next_ticket_++;
    pending_tickets_.insert(task.ticket);
    ++submitted_;
  }
  const std::uint64_t ticket = task.ticket;
  const bool pushed = blocking ? queue_.push(std::move(task))
                               : queue_.try_push(std::move(task));
  if (pushed) return true;
  // Not accepted (closed, or full in the non-blocking case): retire
  // the ticket and wake any drainer waiting on it. Blocking pushes
  // only ever fail closed.
  {
    std::lock_guard<std::mutex> lock(progress_mutex_);
    pending_tickets_.erase(ticket);
    --submitted_;
  }
  progress_cv_.notify_all();
  if (blocking || queue_.closed())
    rejected_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

bool AggService::submit(const std::string& tenant, Matrix update) {
  tenant_for(tenant, update.rows(), update.cols());
  Task task{tenant, std::move(update),
            std::chrono::steady_clock::now()};
  return enqueue(task, /*blocking=*/true);
}

bool AggService::try_submit(const std::string& tenant, Matrix&& update) {
  tenant_for(tenant, update.rows(), update.cols());
  Task task{tenant, std::move(update),
            std::chrono::steady_clock::now()};
  if (enqueue(task, /*blocking=*/false)) return true;
  // try_push leaves the task intact on a full queue, so the caller's
  // update can be handed back untouched for a later retry.
  update = std::move(task.update);
  return false;
}

void AggService::worker_loop() {
  while (auto task = queue_.pop()) {
    const auto submitted_at = task->submitted;
    // A fold that throws (e.g. a merge-family method fed unsorted
    // columns) must not std::terminate the whole service: the update is
    // dropped and counted, and progress still advances so drain() never
    // hangs on the failed task.
    bool ok = true;
    try {
      apply(std::move(*task));
    } catch (const std::exception& e) {
      ok = false;
      std::cerr << "AggService: dropped update for tenant '" << task->tenant
                << "': " << e.what() << "\n";
    }
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        std::chrono::steady_clock::now() - submitted_at)
                        .count();
    if (ok) latency_.record(static_cast<std::uint64_t>(ns));
    {
      std::lock_guard<std::mutex> lock(progress_mutex_);
      pending_tickets_.erase(task->ticket);
      ++(ok ? applied_ : apply_errors_);
    }
    progress_cv_.notify_all();
  }
}

void AggService::apply(Task&& task) {
  Tenant* t = find_tenant(task.tenant);
  if (t == nullptr) return;  // unreachable: submit creates the tenant
  // Shared vs. snapshot's unique lock: all of this update's slices land
  // atomically with respect to readers.
  // Validate BEFORE staging anything: the config declares inputs
  // sorted to the kernels (merge methods throw on unsorted columns,
  // sliding hash row-slices by binary search), so an unsorted update is
  // invalid traffic. Rejecting it here keeps the drop all-or-nothing —
  // no slice of it ever reaches a shard, and no later fold or snapshot
  // inherits a poisoned batch.
  if (config_.options.inputs_sorted && !task.update.is_sorted())
    throw std::invalid_argument(
        "update has unsorted columns but options.inputs_sorted is set");
  std::shared_lock apply_lock(t->apply_mutex);
  // Defensive backstop for folds that throw anyway (e.g. allocation
  // failure): the affected shard discards its staged batch — losing
  // that batch but keeping the accumulator serviceable — and the
  // exception propagates to worker_loop's apply-error accounting.
  const auto fold_slice = [](TenantShard& sh, Matrix&& slice) {
    const std::uint64_t nnz = slice.nnz();
    std::lock_guard<std::mutex> g(sh.mutex);
    try {
      sh.acc.add(std::move(slice));
    } catch (...) {
      sh.acc.discard_staged();
      throw;
    }
    ++sh.slices_applied;
    sh.folded_nnz += nnz;
  };
  if (t->shards.size() == 1) {
    fold_slice(t->shards.front(), std::move(task.update));
  } else {
    auto slices = partition_rows(task.update, t->partition);
    for (std::size_t s = 0; s < slices.size(); ++s) {
      if (slices[s].nnz() == 0) continue;  // nothing in this row range
      fold_slice(t->shards[s], std::move(slices[s]));
    }
  }
  t->updates_applied.fetch_add(1, std::memory_order_relaxed);
}

AggService::Snapshot AggService::snapshot(const std::string& tenant) {
  Tenant* t = find_tenant(tenant);
  if (t == nullptr)
    throw std::invalid_argument("AggService: unknown tenant '" + tenant +
                                "'");
  std::unique_lock apply_lock(t->apply_mutex);
  return snapshot_locked(*t);
}

AggService::Snapshot AggService::snapshot_locked(Tenant& t) {
  // Workers are excluded by the unique apply lock; the shard mutexes
  // are still taken around the fold so stats() readers never race it.
  std::vector<const Matrix*> parts;
  parts.reserve(t.shards.size());
  bool sorted = true;
  for (auto& sh : t.shards) {
    std::lock_guard<std::mutex> g(sh.mutex);
    const Matrix& partial = sh.acc.partial_sum();
    sorted = sorted && sh.acc.partial_is_sorted();
    parts.push_back(&partial);
  }
  core::Options aopts = config_.options;
  aopts.inputs_sorted = aopts.inputs_sorted && sorted;
  Snapshot snap;
  snap.sum =
      core::spkadd(core::MatrixPtrs<std::int32_t, double>(parts), aopts);
  snap.epoch = t.epoch.fetch_add(1, std::memory_order_relaxed) + 1;
  snap.updates_applied = t.updates_applied.load(std::memory_order_relaxed);
  t.snapshots.fetch_add(1, std::memory_order_relaxed);
  return snap;
}

AggService::Snapshot AggService::save_snapshot(const std::string& tenant,
                                               const std::string& path) {
  Snapshot snap = snapshot(tenant);
  io::write_binary_file(path, snap.sum);
  return snap;
}

void AggService::restore(const std::string& tenant,
                         const std::string& path) {
  Matrix m = io::read_binary_file(path);  // header-validated
  Tenant& t = tenant_for(tenant, m.rows(), m.cols());
  std::unique_lock apply_lock(t.apply_mutex);
  // Replace, don't merge: the dump IS the running sum. Restored nnz is
  // deliberately not counted as ingest in the shard counters. (No
  // single-shard fast path here — restore is cold, and partition_rows
  // of one shard is just the full matrix.)
  auto slices = partition_rows(m, t.partition);
  for (std::size_t s = 0; s < slices.size(); ++s) {
    auto& sh = t.shards[s];
    std::lock_guard<std::mutex> g(sh.mutex);
    (void)sh.acc.finalize();
    if (slices[s].nnz() != 0) sh.acc.add(std::move(slices[s]));
  }
}

void AggService::drain() {
  std::unique_lock<std::mutex> lock(progress_mutex_);
  // Wait for exactly the tickets issued before this call: completions
  // of later-submitted tasks can never satisfy an earlier drain, and
  // tasks accepted after it do not extend the wait.
  const std::uint64_t cutoff = next_ticket_;
  progress_cv_.wait(lock, [&] {
    return pending_tickets_.empty() || *pending_tickets_.begin() >= cutoff;
  });
}

void AggService::stop() {
  std::call_once(stop_once_, [this] {
    queue_.close();  // workers fold the backlog, then see nullopt
    for (auto& w : workers_) w.join();
  });
}

ServiceStats AggService::stats() const {
  ServiceStats out;
  {
    std::lock_guard<std::mutex> lock(progress_mutex_);
    out.submitted = submitted_;
    out.applied = applied_;
    out.apply_errors = apply_errors_;
  }
  out.rejected = rejected_.load(std::memory_order_relaxed);
  out.queue_depth = queue_.size();
  out.queue_high_water = queue_.high_water();
  out.latency = latency_.summary();
  out.shards.resize(config_.shards);
  std::shared_lock tenants_lock(tenants_mutex_);
  for (const auto& [name, t] : tenants_) {
    TenantStats ts;
    ts.tenant = name;
    ts.updates_applied =
        t->updates_applied.load(std::memory_order_relaxed);
    ts.snapshots = t->snapshots.load(std::memory_order_relaxed);
    ts.epoch = t->epoch.load(std::memory_order_relaxed);
    for (std::size_t s = 0; s < t->shards.size(); ++s) {
      auto& sh = t->shards[s];
      std::lock_guard<std::mutex> g(sh.mutex);
      ts.folded_nnz += sh.folded_nnz;
      out.shards[s].slices_applied += sh.slices_applied;
      out.shards[s].folded_nnz += sh.folded_nnz;
      out.shards[s].flushes += sh.acc.stats().flushes;
      out.shards[s].peak_staged_nnz = std::max(
          out.shards[s].peak_staged_nnz, sh.acc.stats().peak_staged_nnz);
      out.shards[s].chunks_heap += sh.counters.chunks_heap;
      out.shards[s].chunks_spa += sh.counters.chunks_spa;
      out.shards[s].chunks_hash += sh.counters.chunks_hash;
      out.shards[s].chunks_sliding += sh.counters.chunks_sliding;
    }
    out.tenants.push_back(std::move(ts));
  }
  return out;
}

}  // namespace spkadd::service
