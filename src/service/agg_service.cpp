#include "service/agg_service.hpp"

#include <algorithm>
#include <iostream>
#include <stdexcept>
#include <utility>

#include "core/spkadd.hpp"
#include "io/binary_io.hpp"
#include "util/thread_control.hpp"

namespace spkadd::service {

namespace {

ServiceConfig validated(ServiceConfig cfg) {
  cfg.validate();
  return cfg;
}

}  // namespace

AggService::Tenant::Tenant(std::int32_t r, std::int32_t c,
                           const ServiceConfig& cfg)
    : rows(r), cols(c), partition(RowPartition::make(r, cfg.shards)) {
  for (std::size_t s = 0; s < cfg.shards; ++s)
    shards.emplace_back(r, c, cfg.options, cfg.batch_window);
}

AggService::AggService(ServiceConfig config)
    : config_(validated(std::move(config))),
      queue_(config_.queue_capacity, config_.effective_high_watermark(),
             config_.effective_low_watermark()) {
  const std::size_t n = config_.effective_workers();
  workers_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
  flusher_ = std::thread([this] { flusher_loop(); });
  if (config_.metrics != nullptr) {
    collector_ = config_.metrics->add_collector(
        [this](obs::CollectorSink& sink) { export_metrics(sink); });
  }
}

AggService::~AggService() { stop(); }

AggService::Tenant* AggService::find_tenant(const std::string& name) const {
  std::shared_lock lock(tenants_mutex_);
  auto it = tenants_.find(name);
  return it == tenants_.end() ? nullptr : it->second.get();
}

AggService::Tenant& AggService::tenant_for(const std::string& name,
                                           std::int32_t rows,
                                           std::int32_t cols) {
  const auto check = [&](Tenant& t) -> Tenant& {
    if (t.rows != rows || t.cols != cols)
      throw std::invalid_argument(
          "AggService: update shape does not match tenant '" + name + "'");
    return t;
  };
  {
    std::shared_lock lock(tenants_mutex_);
    auto it = tenants_.find(name);
    if (it != tenants_.end()) return check(*it->second);
  }
  std::unique_lock lock(tenants_mutex_);
  auto it = tenants_.find(name);
  if (it != tenants_.end()) return check(*it->second);
  auto t = std::make_unique<Tenant>(rows, cols, config_);
  return *tenants_.emplace(name, std::move(t)).first->second;
}

AggService::BurstBuffer& AggService::local_buffer() {
  // Keyed by service address: one producer thread can feed several
  // services. An entry outlives its service only as an expired weak_ptr
  // (the service's buffers_ vector holds the owning reference), so an
  // address reused by a new service simply misses and re-registers.
  thread_local std::map<const AggService*, std::weak_ptr<BurstBuffer>>
      cache;
  auto& slot = cache[this];
  if (auto existing = slot.lock()) return *existing;
  for (auto it = cache.begin(); it != cache.end();) {
    it = it->second.expired() && it->first != this ? cache.erase(it)
                                                   : std::next(it);
  }
  auto created = std::make_shared<BurstBuffer>();
  created->tasks.reserve(config_.burst_size);
  slot = created;
  BurstBuffer& ref = *created;
  std::lock_guard<std::mutex> lock(buffers_mutex_);
  buffers_.push_back(std::move(created));
  return ref;
}

bool AggService::flush_locked(BurstBuffer& buf, FlushReason reason,
                              bool blocking) {
  if (buf.tasks.empty()) return true;
  const std::size_t n = buf.tasks.size();
  // Tickets are issued here, per burst, never per submit: this is the
  // ONE progress-lock acquisition the whole burst pays on the producer
  // side (retirement in apply_burst is its worker-side mirror).
  {
    std::lock_guard<std::mutex> lock(progress_mutex_);
    for (auto& task : buf.tasks) {
      task.ticket = next_ticket_++;
      pending_tickets_.insert(task.ticket);
    }
    submitted_ += n;
  }
  const auto retire = [&](std::size_t first, std::size_t count) {
    {
      std::lock_guard<std::mutex> lock(progress_mutex_);
      for (std::size_t i = first; i < first + count; ++i)
        pending_tickets_.erase(buf.tasks[i].ticket);
      submitted_ -= count;
    }
    progress_cv_.notify_all();
  };
  std::size_t pushed = 0;
  bool flushed_all = true;
  if (blocking) {
    pushed = queue_.push_burst(buf.tasks);  // erases the pushed prefix
    if (!buf.tasks.empty()) {
      // Queue closed mid-burst; the hand-back contract left the tail in
      // our hands. Account the drop instead of losing it silently.
      retire(0, buf.tasks.size());
      rejected_.fetch_add(buf.tasks.size(), std::memory_order_relaxed);
      buf.tasks.clear();
    }
  } else if (queue_.try_push_burst(buf.tasks)) {
    pushed = n;
  } else if (queue_.closed()) {
    retire(0, n);
    rejected_.fetch_add(n, std::memory_order_relaxed);
    buf.tasks.clear();
  } else {
    // Saturated, not closed: un-ticket the burst and leave it staged
    // for a later flush (the gap in ticket numbers is harmless —
    // pending_tickets_ is a set, and the tasks get fresh tickets when
    // a flush finally lands them).
    retire(0, n);
    flushed_all = false;
  }
  if (pushed != 0) {
    bursts_.fetch_add(1, std::memory_order_relaxed);
    burst_updates_.fetch_add(pushed, std::memory_order_relaxed);
    burst_hist_.record(pushed);
    std::size_t prev = max_burst_.load(std::memory_order_relaxed);
    while (prev < pushed && !max_burst_.compare_exchange_weak(
                                prev, pushed, std::memory_order_relaxed)) {
    }
    switch (reason) {
      case FlushReason::kFull:
        flushes_full_.fetch_add(1, std::memory_order_relaxed);
        break;
      case FlushReason::kDeadline:
        flushes_deadline_.fetch_add(1, std::memory_order_relaxed);
        break;
      case FlushReason::kDrain:
        flushes_drain_.fetch_add(1, std::memory_order_relaxed);
        break;
    }
  }
  return flushed_all;
}

void AggService::flush_all_buffers(FlushReason reason) {
  std::vector<std::shared_ptr<BurstBuffer>> bufs;
  {
    std::lock_guard<std::mutex> lock(buffers_mutex_);
    bufs = buffers_;
  }
  for (auto& buf : bufs) {
    std::lock_guard<std::mutex> lock(buf->mutex);
    (void)flush_locked(*buf, reason, /*blocking=*/true);
  }
}

void AggService::flusher_loop() {
  const auto period = std::chrono::microseconds(config_.flush_deadline_us);
  std::unique_lock<std::mutex> lock(flusher_mutex_);
  while (!flusher_stop_) {
    flusher_cv_.wait_for(lock, period, [this] { return flusher_stop_; });
    if (flusher_stop_) break;
    lock.unlock();
    std::vector<std::shared_ptr<BurstBuffer>> bufs;
    {
      std::lock_guard<std::mutex> g(buffers_mutex_);
      bufs = buffers_;
    }
    const auto now = std::chrono::steady_clock::now();
    for (auto& buf : bufs) {
      // try_to_lock: a contended buffer means its producer is mid-
      // submit (it will flush on full, or the next sweep catches it).
      // Yielding here keeps the flusher from ever making a producer's
      // try_submit fail on a momentarily-held buffer mutex.
      std::unique_lock<std::mutex> g(buf->mutex, std::try_to_lock);
      if (!g.owns_lock()) continue;
      if (buf->tasks.empty() || now - buf->oldest < period) continue;
      // Non-blocking: a throttled queue means the system is saturated,
      // not that the update is stranded — the next sweep (or the
      // producer's own full-buffer flush) retries, and the flusher
      // never wedges on one buffer while others age.
      (void)flush_locked(*buf, FlushReason::kDeadline,
                         /*blocking=*/false);
    }
    lock.lock();
  }
}

bool AggService::submit(const std::string& tenant, Matrix update) {
  if (stopped_.load(std::memory_order_seq_cst)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  tenant_for(tenant, update.rows(), update.cols());
  BurstBuffer& buf = local_buffer();
  std::lock_guard<std::mutex> lock(buf.mutex);
  // Re-check under the buffer lock: stop() sets stopped_ and then
  // sweeps every buffer under its mutex, so a submit that stages after
  // this check is ordered before that sweep (or sees stopped_ here).
  if (stopped_.load(std::memory_order_seq_cst)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  const auto now = std::chrono::steady_clock::now();
  if (buf.tasks.empty()) buf.oldest = now;
  buf.tasks.push_back(Task{tenant, std::move(update), now});
  if (buf.tasks.size() >= config_.burst_size)
    (void)flush_locked(buf, FlushReason::kFull, /*blocking=*/true);
  return true;
}

bool AggService::try_submit(const std::string& tenant, Matrix&& update) {
  if (stopped_.load(std::memory_order_seq_cst)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  tenant_for(tenant, update.rows(), update.cols());
  BurstBuffer& buf = local_buffer();
  // A busy buffer is either the flusher's microsecond-scale sweep (one
  // yield rides it out) or a drain/stop sweep blocked on the watermark
  // (genuine backpressure: report it rather than blocking an open-loop
  // load generator behind it).
  std::unique_lock<std::mutex> lock(buf.mutex, std::try_to_lock);
  if (!lock.owns_lock()) {
    std::this_thread::yield();
    if (!lock.try_lock()) return false;
  }
  if (stopped_.load(std::memory_order_seq_cst)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  if (buf.tasks.size() >= config_.burst_size &&
      !flush_locked(buf, FlushReason::kFull, /*blocking=*/false)) {
    return false;  // ingest saturated; the update is untouched
  }
  const auto now = std::chrono::steady_clock::now();
  if (buf.tasks.empty()) buf.oldest = now;
  buf.tasks.push_back(Task{tenant, std::move(update), now});
  if (buf.tasks.size() >= config_.burst_size)
    (void)flush_locked(buf, FlushReason::kFull, /*blocking=*/false);
  return true;
}

void AggService::worker_loop(std::size_t worker_index) {
  if (config_.pin_threads)
    (void)util::pin_current_thread_to_cpu(worker_index);
  std::vector<Task> burst;
  burst.reserve(config_.burst_size);
  // pop_burst returns 0 only once the queue is closed AND drained, so
  // shutdown folds the whole backlog before the workers exit.
  while (queue_.pop_burst(burst, config_.burst_size) != 0) {
    apply_burst(burst);
    burst.clear();
  }
}

void AggService::apply_burst(std::vector<Task>& burst) {
  // Group task indices per tenant, preserving burst order (= each
  // producer's submission order) within a group. Bursts are small
  // (<= burst_size), so linear grouping beats a map.
  std::vector<std::pair<const std::string*, std::vector<std::size_t>>>
      groups;
  for (std::size_t i = 0; i < burst.size(); ++i) {
    auto it = std::find_if(
        groups.begin(), groups.end(),
        [&](const auto& g) { return *g.first == burst[i].tenant; });
    if (it == groups.end())
      groups.emplace_back(&burst[i].tenant,
                          std::vector<std::size_t>{i});
    else
      it->second.push_back(i);
  }
  std::vector<unsigned char> ok(burst.size(), 1);
  const auto fold_start = std::chrono::steady_clock::now();
  for (auto& g : groups) apply_group(burst, g.second, ok);
  const auto now = std::chrono::steady_clock::now();
  fold_hist_.record(static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(now -
                                                           fold_start)
          .count()));
  std::uint64_t n_ok = 0;
  for (std::size_t i = 0; i < burst.size(); ++i) {
    if (!ok[i]) continue;
    ++n_ok;
    const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(
                        now - burst[i].submitted)
                        .count();
    latency_.record(static_cast<std::uint64_t>(ns));
  }
  // Retire the whole burst's tickets with one progress-lock
  // acquisition — the worker-side mirror of ticket issue at flush.
  {
    std::lock_guard<std::mutex> lock(progress_mutex_);
    for (const auto& task : burst) pending_tickets_.erase(task.ticket);
    applied_ += n_ok;
    apply_errors_ += burst.size() - n_ok;
  }
  progress_cv_.notify_all();
}

void AggService::apply_group(std::vector<Task>& burst,
                             const std::vector<std::size_t>& group,
                             std::vector<unsigned char>& ok) {
  Tenant* t = find_tenant(burst[group.front()].tenant);
  if (t == nullptr) {  // unreachable: submit creates the tenant
    for (auto i : group) ok[i] = 0;
    return;
  }
  const auto drop = [&](std::size_t i, const char* what) {
    ok[i] = 0;
    std::cerr << "AggService: dropped update for tenant '"
              << burst[i].tenant << "': " << what << "\n";
  };
  // Validate BEFORE staging anything: the config declares inputs
  // sorted to the kernels (merge methods throw on unsorted columns,
  // sliding hash row-slices by binary search), so an unsorted update is
  // invalid traffic. Rejecting it here keeps the drop all-or-nothing —
  // no slice of it ever reaches a shard, and no later fold or snapshot
  // inherits a poisoned batch.
  if (config_.options.inputs_sorted) {
    for (auto i : group) {
      if (!burst[i].update.is_sorted())
        drop(i, "update has unsorted columns but options.inputs_sorted"
                " is set");
    }
  }
  // Defensive backstop for folds that throw anyway (e.g. allocation
  // failure): the affected shard discards its staged batch — losing
  // that batch but keeping the accumulator serviceable — and the task
  // is dropped into the apply-error accounting. Caller holds sh.mutex.
  const auto fold_slice = [](TenantShard& sh, Matrix&& slice) {
    const std::uint64_t nnz = slice.nnz();
    try {
      sh.acc.add(std::move(slice));
    } catch (...) {
      sh.acc.discard_staged();
      throw;
    }
    ++sh.slices_applied;
    sh.folded_nnz += nnz;
  };
  // Shared vs. snapshot's unique lock: every update in the group lands
  // atomically with respect to readers.
  std::shared_lock apply_lock(t->apply_mutex);
  std::uint64_t applied_here = 0;
  if (t->shards.size() == 1) {
    // One shard-lock acquisition for the whole group.
    TenantShard& sh = t->shards.front();
    std::lock_guard<std::mutex> g(sh.mutex);
    for (auto i : group) {
      if (!ok[i]) continue;
      try {
        fold_slice(sh, std::move(burst[i].update));
        ++applied_here;
      } catch (const std::exception& e) {
        drop(i, e.what());
      }
    }
  } else {
    // Partition every update up front, then visit each shard ONCE for
    // the whole group: one shard-lock acquisition per (burst, shard)
    // instead of per (update, shard).
    std::vector<std::vector<Matrix>> sliced(group.size());
    for (std::size_t k = 0; k < group.size(); ++k) {
      if (ok[group[k]])
        sliced[k] = partition_rows(burst[group[k]].update, t->partition);
    }
    for (std::size_t s = 0; s < t->shards.size(); ++s) {
      TenantShard& sh = t->shards[s];
      std::lock_guard<std::mutex> g(sh.mutex);
      for (std::size_t k = 0; k < group.size(); ++k) {
        const std::size_t i = group[k];
        if (!ok[i] || sliced[k][s].nnz() == 0) continue;
        try {
          fold_slice(sh, std::move(sliced[k][s]));
        } catch (const std::exception& e) {
          drop(i, e.what());  // later shards skip this task
        }
      }
    }
    for (auto i : group)
      if (ok[i]) ++applied_here;
  }
  t->updates_applied.fetch_add(applied_here, std::memory_order_relaxed);
}

AggService::Snapshot AggService::snapshot(const std::string& tenant) {
  Tenant* t = find_tenant(tenant);
  if (t == nullptr)
    throw std::invalid_argument("AggService: unknown tenant '" + tenant +
                                "'");
  std::unique_lock apply_lock(t->apply_mutex);
  return snapshot_locked(*t);
}

AggService::Snapshot AggService::snapshot_locked(Tenant& t) {
  // Workers are excluded by the unique apply lock; the shard mutexes
  // are still taken around the fold so stats() readers never race it.
  std::vector<const Matrix*> parts;
  parts.reserve(t.shards.size());
  bool sorted = true;
  for (auto& sh : t.shards) {
    std::lock_guard<std::mutex> g(sh.mutex);
    const Matrix& partial = sh.acc.partial_sum();
    sorted = sorted && sh.acc.partial_is_sorted();
    parts.push_back(&partial);
  }
  core::Options aopts = config_.options;
  aopts.inputs_sorted = aopts.inputs_sorted && sorted;
  Snapshot snap;
  snap.sum =
      core::spkadd(core::MatrixPtrs<std::int32_t, double>(parts), aopts);
  snap.epoch = t.epoch.fetch_add(1, std::memory_order_relaxed) + 1;
  snap.updates_applied = t.updates_applied.load(std::memory_order_relaxed);
  t.snapshots.fetch_add(1, std::memory_order_relaxed);
  return snap;
}

AggService::Snapshot AggService::save_snapshot(const std::string& tenant,
                                               const std::string& path) {
  Snapshot snap = snapshot(tenant);
  io::write_binary_file(path, snap.sum);
  return snap;
}

void AggService::restore(const std::string& tenant,
                         const std::string& path) {
  Matrix m = io::read_binary_file(path);  // header-validated
  Tenant& t = tenant_for(tenant, m.rows(), m.cols());
  std::unique_lock apply_lock(t.apply_mutex);
  // Replace, don't merge: the dump IS the running sum. Restored nnz is
  // deliberately not counted as ingest in the shard counters. (No
  // single-shard fast path here — restore is cold, and partition_rows
  // of one shard is just the full matrix.)
  auto slices = partition_rows(m, t.partition);
  for (std::size_t s = 0; s < slices.size(); ++s) {
    auto& sh = t.shards[s];
    std::lock_guard<std::mutex> g(sh.mutex);
    (void)sh.acc.finalize();
    if (slices[s].nnz() != 0) sh.acc.add(std::move(slices[s]));
  }
}

void AggService::drain() {
  // Push every staged burst first so the cutoff below covers them; a
  // drain on a stopped service flushes into a closed queue, which
  // retires the stragglers as rejected instead of hanging on them.
  flush_all_buffers(FlushReason::kDrain);
  std::unique_lock<std::mutex> lock(progress_mutex_);
  // Wait for exactly the tickets issued before this call: completions
  // of later-submitted tasks can never satisfy an earlier drain, and
  // tasks accepted after it do not extend the wait.
  const std::uint64_t cutoff = next_ticket_;
  progress_cv_.wait(lock, [&] {
    return pending_tickets_.empty() || *pending_tickets_.begin() >= cutoff;
  });
}

void AggService::stop() {
  std::call_once(stop_once_, [this] {
    stopped_.store(true, std::memory_order_seq_cst);
    {
      std::lock_guard<std::mutex> lock(flusher_mutex_);
      flusher_stop_ = true;
    }
    flusher_cv_.notify_all();
    if (flusher_.joinable()) flusher_.join();
    // Staged bursts reach the queue before it closes, so the workers'
    // backlog fold covers them.
    flush_all_buffers(FlushReason::kDrain);
    queue_.close();  // workers fold the backlog, then see 0
    for (auto& w : workers_) w.join();
    // Self-heal the submit/stop race: anything staged concurrently
    // with the sweep above now flushes into the closed queue and is
    // retired as rejected rather than leaving a pending ticket.
    flush_all_buffers(FlushReason::kDrain);
  });
}

ServiceStats AggService::stats() const {
  ServiceStats out;
  {
    std::lock_guard<std::mutex> lock(progress_mutex_);
    out.submitted = submitted_;
    out.applied = applied_;
    out.apply_errors = apply_errors_;
  }
  out.rejected = rejected_.load(std::memory_order_relaxed);
  out.queue_depth = queue_.size();
  out.queue_high_water = queue_.high_water();
  out.ingest.bursts = bursts_.load(std::memory_order_relaxed);
  out.ingest.burst_updates = burst_updates_.load(std::memory_order_relaxed);
  out.ingest.max_burst = max_burst_.load(std::memory_order_relaxed);
  out.ingest.flushes_full = flushes_full_.load(std::memory_order_relaxed);
  out.ingest.flushes_deadline =
      flushes_deadline_.load(std::memory_order_relaxed);
  out.ingest.flushes_drain = flushes_drain_.load(std::memory_order_relaxed);
  out.ingest.throttle_events = queue_.throttle_events();
  out.ingest.throttle_seconds = queue_.throttle_seconds();
  out.latency = latency_.summary();
  out.shards.resize(config_.shards);
  std::shared_lock tenants_lock(tenants_mutex_);
  for (const auto& [name, t] : tenants_) {
    TenantStats ts;
    ts.tenant = name;
    ts.updates_applied =
        t->updates_applied.load(std::memory_order_relaxed);
    ts.snapshots = t->snapshots.load(std::memory_order_relaxed);
    ts.epoch = t->epoch.load(std::memory_order_relaxed);
    for (std::size_t s = 0; s < t->shards.size(); ++s) {
      auto& sh = t->shards[s];
      std::lock_guard<std::mutex> g(sh.mutex);
      ts.folded_nnz += sh.folded_nnz;
      out.shards[s].slices_applied += sh.slices_applied;
      out.shards[s].folded_nnz += sh.folded_nnz;
      out.shards[s].flushes += sh.acc.stats().flushes;
      out.shards[s].peak_staged_nnz = std::max(
          out.shards[s].peak_staged_nnz, sh.acc.stats().peak_staged_nnz);
      out.shards[s].chunks_heap += sh.counters.chunks_heap;
      out.shards[s].chunks_spa += sh.counters.chunks_spa;
      out.shards[s].chunks_hash += sh.counters.chunks_hash;
      out.shards[s].chunks_sliding += sh.counters.chunks_sliding;
      out.shards[s].chunks_dense += sh.counters.chunks_dense;
      out.shards[s].dense_promotions += sh.acc.stats().dense_promotions;
      out.shards[s].dense_demotions += sh.acc.stats().dense_demotions;
      out.shards[s].dense_resident_cols += sh.acc.dense_resident_cols();
    }
    out.tenants.push_back(std::move(ts));
  }
  return out;
}

void AggService::export_metrics(obs::CollectorSink& sink) const {
  // Invoked by the registry at scrape time (registry mutex held), so
  // taking the service locks inside stats() is safe: the hot paths
  // never take the registry mutex, ruling out a cycle.
  const ServiceStats st = stats();
  const obs::Labels svc{{"service", "agg"}};
  const auto d = [](std::uint64_t v) { return static_cast<double>(v); };
  sink.counter("spkadd_service_submitted_total",
               "Updates accepted by submit() and handed to the queue",
               svc, d(st.submitted));
  sink.counter("spkadd_service_applied_total",
               "Updates fully folded into their shards", svc,
               d(st.applied));
  sink.counter("spkadd_service_rejected_total",
               "Updates refused (service stopped or queue closed)", svc,
               d(st.rejected));
  sink.counter("spkadd_service_apply_errors_total",
               "Updates dropped by a throwing fold", svc,
               d(st.apply_errors));
  sink.gauge("spkadd_queue_depth", "Current ingest queue backlog", svc,
             d(st.queue_depth));
  sink.gauge("spkadd_queue_high_water", "Deepest ingest backlog seen",
             svc, d(st.queue_high_water));
  sink.counter("spkadd_ingest_bursts_total",
               "Burst flushes into the ingest queue", svc,
               d(st.ingest.bursts));
  sink.counter("spkadd_queue_throttle_events_total",
               "Producer pushes blocked at the high watermark", svc,
               d(st.ingest.throttle_events));
  sink.counter("spkadd_queue_throttle_seconds_total",
               "Total producer time spent throttled", svc,
               st.ingest.throttle_seconds);
  sink.histogram("spkadd_submit_latency_seconds",
                 "Submit-to-applied latency", svc, latency_,
                 obs::Unit::kSeconds);
  sink.histogram("spkadd_fold_seconds",
                 "Wall time folding one popped burst into shards", svc,
                 fold_hist_, obs::Unit::kSeconds);
  sink.histogram("spkadd_ingest_burst_updates",
                 "Updates per flushed burst", svc, burst_hist_,
                 obs::Unit::kCount);
  ShardStats totals;
  for (const auto& sh : st.shards) {
    totals.flushes += sh.flushes;
    totals.peak_staged_nnz =
        std::max(totals.peak_staged_nnz, sh.peak_staged_nnz);
    totals.chunks_heap += sh.chunks_heap;
    totals.chunks_spa += sh.chunks_spa;
    totals.chunks_hash += sh.chunks_hash;
    totals.chunks_sliding += sh.chunks_sliding;
    totals.chunks_dense += sh.chunks_dense;
    totals.dense_promotions += sh.dense_promotions;
    totals.dense_demotions += sh.dense_demotions;
    totals.dense_resident_cols += sh.dense_resident_cols;
  }
  sink.counter("spkadd_shard_fold_flushes_total",
               "Accumulator folds performed across shards", svc,
               d(totals.flushes));
  sink.gauge("spkadd_accumulator_staged_nnz_peak",
             "Max nonzeros awaiting a fold in any one shard", svc,
             d(totals.peak_staged_nnz));
  const auto chunk = [&](const char* kernel, std::uint64_t v) {
    sink.counter("spkadd_hybrid_chunks_total",
                 "Hybrid column chunks dispatched per kernel",
                 {{"service", "agg"}, {"kernel", kernel}}, d(v));
  };
  chunk("heap", totals.chunks_heap);
  chunk("spa", totals.chunks_spa);
  chunk("hash", totals.chunks_hash);
  chunk("sliding", totals.chunks_sliding);
  chunk("dense", totals.chunks_dense);
  sink.counter("spkadd_dense_promotions_total",
               "Sparse→dense column promotions across shard accumulators",
               svc, d(totals.dense_promotions));
  sink.counter("spkadd_dense_demotions_total",
               "Dense→sparse column demotions across shard accumulators",
               svc, d(totals.dense_demotions));
  sink.gauge("spkadd_dense_resident_chunks",
             "Columns currently held in dense (promoted) storage",
             svc, d(totals.dense_resident_cols));
  for (const auto& ts : st.tenants) {
    sink.counter("spkadd_tenant_updates_applied_total",
                 "Updates folded into this tenant's running sum",
                 {{"service", "agg"}, {"tenant", ts.tenant}},
                 d(ts.updates_applied));
    sink.counter("spkadd_tenant_snapshots_total",
                 "Snapshots assembled for this tenant",
                 {{"service", "agg"}, {"tenant", ts.tenant}},
                 d(ts.snapshots));
  }
}

}  // namespace spkadd::service
