// AggService — a long-lived, sharded, concurrent aggregation service
// over the streaming SpKAdd accumulator.
//
// The paper's SpKAdd kernel exists to serve aggregation-heavy systems:
// distributed SpGEMM stages and sparse gradient aggregation both reduce
// to "many producers keep adding sparse matrices into running sums".
// This subsystem is that system layer:
//
//   submit(tenant, update)              snapshot(tenant)
//        |                                   ^
//        v                                   | k-way SpKAdd over
//   [thread-local burst buffer]              | shard partials
//        |  flushed as ONE enqueue when      |
//        |  full / deadline / drain          |
//        v                                   |
//   [bounded MPMC ingest queue]              |
//        |  high/low watermark hysteresis    |
//        v                                   |
//   worker pool --- pops whole bursts,       |
//     groups slices per shard ---------> shard[(tenant, row-range)]
//                                         each: mutex + streaming
//                                         core::Accumulator folding
//                                         every batch_window slices
//
// Ingest is burst-batched (the FlexiCAS transaction-queue pattern):
// producers stage updates into a thread-local burst buffer and pay one
// queue-lock acquisition per burst instead of one MPMC round-trip per
// submit; a background flusher guarantees a lone update never waits
// longer than flush_deadline_us; workers pop up to a burst at a time
// and fold its slices grouped per shard, so the shard mutex too is
// taken once per burst. The queue throttles producers at the high
// watermark and releases them at the low watermark (hysteresis), not
// hard blocking at capacity.
//
// Guarantees:
//   * Backpressure, not OOM: at most queue_capacity updates (plus one
//     burst buffer per producer thread) are in flight; submit() blocks
//     once the queue is throttled.
//   * All-or-nothing updates: a worker applies every slice of an update
//     under a tenant-level shared lock, so a snapshot (unique lock)
//     never observes half an update — the epoch-consistent cut. Invalid
//     traffic (unsorted columns under inputs_sorted) is rejected before
//     any slice is staged, so dropped updates are all-or-nothing too.
//     The one documented exception: a fold that throws mid-update for
//     environmental reasons (allocation failure) can leave that update
//     partially applied; it is counted in ServiceStats::apply_errors,
//     which operators should treat as "running sums are suspect".
//   * Snapshots don't stall ingest: submit() keeps accepting into the
//     queue and other tenants keep folding while one tenant assembles.
//   * Deterministic totals: shard slices partition each update's
//     entries, so the final sum's structure is the union of all update
//     structures and each value is the sum of that entry's
//     contributions — bit-identical to one-shot core::spkadd whenever
//     value addition is exact (e.g. integer-valued gradients),
//     regardless of producer/worker interleaving. Per-producer
//     submission order is preserved end to end (buffer -> burst ->
//     per-shard fold), so the single-producer/single-worker/one-shard
//     configuration folds in exact submission order.
//
// The shape mirrors long-lived counter services (cf. the hlld-style
// set-manager architecture): sharded state behind short locks, bounded
// ingest, snapshot reads, explicit drain/stop shutdown.
//
// Thread-safety contract: every public AggService method is safe to
// call from any thread, concurrently with every other (submit from any
// number of producers, snapshot/stats/drain from readers, stop once
// from anywhere — stop is idempotent). The "Deterministic totals"
// bullet above is the bit-identity guarantee snapshot() honors.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/service_config.hpp"
#include "service/service_stats.hpp"
#include "service/shard.hpp"
#include "util/mpmc_queue.hpp"

namespace spkadd::service {

class AggService {
 public:
  using Matrix = CscMatrix<std::int32_t, double>;

  /// A consistent view of one tenant's running sum.
  struct Snapshot {
    Matrix sum;
    std::uint64_t epoch = 0;            ///< snapshot sequence number
    std::uint64_t updates_applied = 0;  ///< updates folded in by then
  };

  /// Starts the worker pool (and the burst flusher) immediately. Throws
  /// std::invalid_argument on an unusable config.
  explicit AggService(ServiceConfig config);

  /// Stops the service (drains staged bursts and the queue backlog).
  ~AggService();

  AggService(const AggService&) = delete;
  AggService& operator=(const AggService&) = delete;

  /// Stage one update for `tenant` into this thread's burst buffer,
  /// blocking (backpressure) only when the buffer flush finds the
  /// ingest queue throttled. The tenant is created on first submit with
  /// the update's shape; later updates must be conformant (throws
  /// std::invalid_argument otherwise). Returns false — and counts the
  /// update as rejected — once the service is stopped. An update
  /// accepted concurrently with stop() may still be dropped and counted
  /// in ServiceStats::rejected.
  bool submit(const std::string& tenant, Matrix update);

  /// Non-blocking submit: false when the service is stopped or the
  /// ingest path is saturated (burst buffer full and the queue
  /// throttled, or a deadline flush of this thread's buffer is in
  /// flight); the update is untouched on failure so open-loop load
  /// generators can count the drop and keep their schedule.
  bool try_submit(const std::string& tenant, Matrix&& update);

  /// Assemble a consistent full-matrix view of `tenant`'s running sum
  /// via a k-way SpKAdd over the shard partials, advance the tenant's
  /// epoch, and return it. In-queue updates are not waited for; every
  /// applied update is included in full. Throws std::invalid_argument
  /// for an unknown tenant.
  Snapshot snapshot(const std::string& tenant);

  /// Take a snapshot and persist its sum via io::binary_io. Returns the
  /// snapshot so callers know the epoch they persisted.
  Snapshot save_snapshot(const std::string& tenant,
                         const std::string& path);

  /// Replace `tenant`'s running sum with a previously saved snapshot
  /// (creating the tenant if needed — the shard layout follows THIS
  /// service's config, so a dump taken with 4 shards restores cleanly
  /// into 2). Throws on header/shape mismatch.
  void restore(const std::string& tenant, const std::string& path);

  /// Flush every producer's staged burst, then block until every update
  /// accepted by then has been folded into its shards (or dropped by a
  /// throwing fold — see ServiceStats::apply_errors).
  void drain();

  /// Stop accepting updates, flush staged bursts, fold the queued
  /// backlog, join the flusher and workers. Idempotent;
  /// snapshot()/stats() remain usable afterwards.
  void stop();

  /// Aggregate counters across the queue, shards and tenants.
  [[nodiscard]] ServiceStats stats() const;

  [[nodiscard]] const ServiceConfig& config() const { return config_; }

 private:
  struct Task {
    std::string tenant;
    Matrix update;
    std::chrono::steady_clock::time_point submitted;
    std::uint64_t ticket = 0;  ///< acceptance order; drives drain()
  };

  /// One producer thread's staging area: tasks accumulate here and are
  /// flushed into the MPMC queue as a single burst. `mutex` serializes
  /// the owning producer with the deadline flusher and drain/stop
  /// sweeps; flushes happen entirely under it so per-producer FIFO
  /// order survives every flush path.
  struct BurstBuffer {
    std::mutex mutex;
    std::vector<Task> tasks;
    std::chrono::steady_clock::time_point oldest{};  ///< staging of tasks[0]
  };

  enum class FlushReason { kFull, kDeadline, kDrain };

  struct Tenant {
    Tenant(std::int32_t rows, std::int32_t cols,
           const ServiceConfig& cfg);

    std::int32_t rows;
    std::int32_t cols;
    RowPartition partition;
    /// shared: workers applying an update's slices; unique: snapshot /
    /// restore. This is what makes updates all-or-nothing vs. readers.
    std::shared_mutex apply_mutex;
    std::deque<TenantShard> shards;  ///< deque: TenantShard is pinned
    std::atomic<std::uint64_t> updates_applied{0};
    std::atomic<std::uint64_t> snapshots{0};
    std::atomic<std::uint64_t> epoch{0};
  };

  /// Look up a tenant (nullptr when absent).
  [[nodiscard]] Tenant* find_tenant(const std::string& name) const;
  /// Look up or create; throws when an existing tenant's shape differs.
  Tenant& tenant_for(const std::string& name, std::int32_t rows,
                     std::int32_t cols);
  /// This thread's burst buffer for THIS service instance (created and
  /// registered on first use).
  BurstBuffer& local_buffer();
  /// Flush `buf`'s staged tasks into the queue as one burst. The caller
  /// holds buf.mutex. Blocking flushes push everything unless the queue
  /// closes mid-burst (the leftover is dropped: tickets retired,
  /// counted rejected). Non-blocking flushes are all-or-nothing and
  /// leave the tasks staged on a saturated queue. Returns true iff the
  /// buffer is empty afterwards because everything was pushed.
  bool flush_locked(BurstBuffer& buf, FlushReason reason, bool blocking);
  void flush_all_buffers(FlushReason reason);
  void flusher_loop();
  void worker_loop(std::size_t worker_index);
  /// Fold one popped burst: group tasks by tenant, apply each group
  /// with one shard-lock acquisition per shard, then retire the whole
  /// burst's tickets under one progress-lock acquisition.
  void apply_burst(std::vector<Task>& burst);
  void apply_group(std::vector<Task>& burst,
                   const std::vector<std::size_t>& group,
                   std::vector<unsigned char>& ok);
  Snapshot snapshot_locked(Tenant& t);

  ServiceConfig config_;
  util::BoundedMpmcQueue<Task> queue_;

  mutable std::shared_mutex tenants_mutex_;
  std::map<std::string, std::unique_ptr<Tenant>> tenants_;

  // Burst buffers of every producer thread that ever submitted here;
  // the flusher and drain/stop sweep them. shared_ptr so a producer's
  // cached reference (a thread_local weak_ptr in local_buffer())
  // expires with the service.
  mutable std::mutex buffers_mutex_;
  std::vector<std::shared_ptr<BurstBuffer>> buffers_;

  std::vector<std::thread> workers_;
  std::thread flusher_;
  std::mutex flusher_mutex_;
  std::condition_variable flusher_cv_;
  bool flusher_stop_ = false;  ///< guarded by flusher_mutex_
  std::atomic<bool> stopped_{false};
  std::once_flag stop_once_;

  // Progress accounting, all guarded by progress_mutex_ so a drainer
  // can wait on the condition variable without lost wakeups. Tickets
  // are issued per burst at flush time (one lock acquisition per burst
  // on both the producer and worker side); drain() flushes the buffers
  // first, so everything staged before it gets a ticket below its
  // cutoff and completions of later tasks can never satisfy it.
  mutable std::mutex progress_mutex_;
  std::condition_variable progress_cv_;
  std::uint64_t next_ticket_ = 1;
  std::set<std::uint64_t> pending_tickets_;  ///< accepted, not done
  std::uint64_t submitted_ = 0;  ///< handed to the queue
  std::uint64_t applied_ = 0;    ///< folded successfully
  std::uint64_t apply_errors_ = 0;  ///< dropped by a failing apply
  std::atomic<std::uint64_t> rejected_{0};

  // Burst-flush counters (IngestStats), relaxed: they are statistics.
  std::atomic<std::uint64_t> bursts_{0};
  std::atomic<std::uint64_t> burst_updates_{0};
  std::atomic<std::size_t> max_burst_{0};
  std::atomic<std::uint64_t> flushes_full_{0};
  std::atomic<std::uint64_t> flushes_deadline_{0};
  std::atomic<std::uint64_t> flushes_drain_{0};

  // Per-instance histograms (lock-free recording). The registry sees
  // them only through the scrape-time collector below, so sibling
  // instances never mix samples and stats() stays exact per service.
  LatencyHistogram latency_;        ///< submit -> applied, nanoseconds
  LatencyHistogram fold_hist_;      ///< per-burst fold wall time, ns
  LatencyHistogram burst_hist_;     ///< updates per flushed burst

  /// Exports every counter above into a CollectorSink (shared by the
  /// registry collector and any diagnostics caller).
  void export_metrics(obs::CollectorSink& sink) const;

  // LAST member: destroyed first, and its dtor blocks until no render
  // can still be invoking export_metrics on this instance.
  obs::CollectorHandle collector_;
};

}  // namespace spkadd::service
