// AggService — a long-lived, sharded, concurrent aggregation service
// over the streaming SpKAdd accumulator.
//
// The paper's SpKAdd kernel exists to serve aggregation-heavy systems:
// distributed SpGEMM stages and sparse gradient aggregation both reduce
// to "many producers keep adding sparse matrices into running sums".
// This subsystem is that system layer:
//
//   submit(tenant, update)          snapshot(tenant)
//        |                               ^
//        v                               | k-way SpKAdd over
//   [bounded MPMC ingest queue]          | shard partials
//        |  backpressure when full       |
//        v                               |
//   worker pool --- partition_rows ---> shard[(tenant, row-range)]
//                                        each: mutex + streaming
//                                        core::Accumulator folding
//                                        every batch_window slices
//
// Guarantees:
//   * Backpressure, not OOM: at most queue_capacity updates are in
//     flight; submit() blocks once the queue is full.
//   * All-or-nothing updates: a worker applies every slice of an update
//     under a tenant-level shared lock, so a snapshot (unique lock)
//     never observes half an update — the epoch-consistent cut. Invalid
//     traffic (unsorted columns under inputs_sorted) is rejected before
//     any slice is staged, so dropped updates are all-or-nothing too.
//     The one documented exception: a fold that throws mid-update for
//     environmental reasons (allocation failure) can leave that update
//     partially applied; it is counted in ServiceStats::apply_errors,
//     which operators should treat as "running sums are suspect".
//   * Snapshots don't stall ingest: submit() keeps accepting into the
//     queue and other tenants keep folding while one tenant assembles.
//   * Deterministic totals: shard slices partition each update's
//     entries, so the final sum's structure is the union of all update
//     structures and each value is the sum of that entry's
//     contributions — bit-identical to one-shot core::spkadd whenever
//     value addition is exact (e.g. integer-valued gradients),
//     regardless of producer/worker interleaving.
//
// The shape mirrors long-lived counter services (cf. the hlld-style
// set-manager architecture): sharded state behind short locks, bounded
// ingest, snapshot reads, explicit drain/stop shutdown.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/service_config.hpp"
#include "service/service_stats.hpp"
#include "service/shard.hpp"
#include "util/mpmc_queue.hpp"

namespace spkadd::service {

class AggService {
 public:
  using Matrix = CscMatrix<std::int32_t, double>;

  /// A consistent view of one tenant's running sum.
  struct Snapshot {
    Matrix sum;
    std::uint64_t epoch = 0;            ///< snapshot sequence number
    std::uint64_t updates_applied = 0;  ///< updates folded in by then
  };

  /// Starts the worker pool immediately. Throws std::invalid_argument
  /// on an unusable config.
  explicit AggService(ServiceConfig config);

  /// Stops the service (drains the queue backlog first).
  ~AggService();

  AggService(const AggService&) = delete;
  AggService& operator=(const AggService&) = delete;

  /// Enqueue one update for `tenant`, blocking while the ingest queue
  /// is full (backpressure). The tenant is created on first submit with
  /// the update's shape; later updates must be conformant (throws
  /// std::invalid_argument otherwise). Returns false — and counts the
  /// update as rejected — once the service is stopped.
  bool submit(const std::string& tenant, Matrix update);

  /// Non-blocking submit: false when the queue is full or the service
  /// is stopped; the update is untouched on a full queue so open-loop
  /// load generators can count the drop and keep their schedule.
  bool try_submit(const std::string& tenant, Matrix&& update);

  /// Assemble a consistent full-matrix view of `tenant`'s running sum
  /// via a k-way SpKAdd over the shard partials, advance the tenant's
  /// epoch, and return it. In-queue updates are not waited for; every
  /// applied update is included in full. Throws std::invalid_argument
  /// for an unknown tenant.
  Snapshot snapshot(const std::string& tenant);

  /// Take a snapshot and persist its sum via io::binary_io. Returns the
  /// snapshot so callers know the epoch they persisted.
  Snapshot save_snapshot(const std::string& tenant,
                         const std::string& path);

  /// Replace `tenant`'s running sum with a previously saved snapshot
  /// (creating the tenant if needed — the shard layout follows THIS
  /// service's config, so a dump taken with 4 shards restores cleanly
  /// into 2). Throws on header/shape mismatch.
  void restore(const std::string& tenant, const std::string& path);

  /// Block until every update submit() had accepted when drain() was
  /// called has been folded into its shards (or dropped by a throwing
  /// fold — see ServiceStats::apply_errors).
  void drain();

  /// Stop accepting updates, fold the queued backlog, join the workers.
  /// Idempotent; snapshot()/stats() remain usable afterwards.
  void stop();

  /// Aggregate counters across the queue, shards and tenants.
  [[nodiscard]] ServiceStats stats() const;

  [[nodiscard]] const ServiceConfig& config() const { return config_; }

 private:
  struct Task {
    std::string tenant;
    Matrix update;
    std::chrono::steady_clock::time_point submitted;
    std::uint64_t ticket = 0;  ///< acceptance order; drives drain()
  };

  struct Tenant {
    Tenant(std::int32_t rows, std::int32_t cols,
           const ServiceConfig& cfg);

    std::int32_t rows;
    std::int32_t cols;
    RowPartition partition;
    /// shared: workers applying an update's slices; unique: snapshot /
    /// restore. This is what makes updates all-or-nothing vs. readers.
    std::shared_mutex apply_mutex;
    std::deque<TenantShard> shards;  ///< deque: TenantShard is pinned
    std::atomic<std::uint64_t> updates_applied{0};
    std::atomic<std::uint64_t> snapshots{0};
    std::atomic<std::uint64_t> epoch{0};
  };

  /// Look up a tenant (nullptr when absent).
  [[nodiscard]] Tenant* find_tenant(const std::string& name) const;
  /// Look up or create; throws when an existing tenant's shape differs.
  Tenant& tenant_for(const std::string& name, std::int32_t rows,
                     std::int32_t cols);
  /// Shared submit bookkeeping: count, push (blocking or not), roll
  /// back + wake drainers on failure. On failure `task` is intact iff
  /// the push was non-blocking and the queue was merely full.
  bool enqueue(Task& task, bool blocking);
  void worker_loop();
  void apply(Task&& task);
  Snapshot snapshot_locked(Tenant& t);

  ServiceConfig config_;
  util::BoundedMpmcQueue<Task> queue_;

  mutable std::shared_mutex tenants_mutex_;
  std::map<std::string, std::unique_ptr<Tenant>> tenants_;

  std::vector<std::thread> workers_;
  std::once_flag stop_once_;

  // Progress accounting, all guarded by progress_mutex_ so a drainer
  // can wait on the condition variable without lost wakeups. Every
  // accepted task carries a ticket; drain() waits for exactly the
  // tickets issued before it was called (completions of later tasks
  // cannot satisfy it).
  mutable std::mutex progress_mutex_;
  std::condition_variable progress_cv_;
  std::uint64_t next_ticket_ = 1;
  std::set<std::uint64_t> pending_tickets_;  ///< accepted, not done
  std::uint64_t submitted_ = 0;
  std::uint64_t applied_ = 0;       ///< folded successfully
  std::uint64_t apply_errors_ = 0;  ///< dropped by a throwing fold
  std::atomic<std::uint64_t> rejected_{0};

  LatencyHistogram latency_;
};

}  // namespace spkadd::service
