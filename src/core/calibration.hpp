// Measured-miss calibration table for the Hybrid planner.
//
// The analytic per-chunk surface (hybrid_kernel_for) encodes the paper's
// asymptotic arguments; this table replaces it with *measured* data: the
// cachesim sweep (bench_calibration --emit, scripts/calibrate.sh) replays
// every ColumnKernel over a (k x density x chunk-width) grid through a
// modeled cache hierarchy and records the latency-weighted miss cost of
// each cell. plan_hybrid, when Options::calibration points at a loaded
// table, classifies each nnz-balanced chunk by nearest-grid-point argmin
// instead of the analytic thresholds — and falls back to them whenever no
// table is present or usable. Only the kernel *choice* changes: every
// kernel accumulates equal-row values strictly left to right, so the
// calibrated Hybrid stays bit-identical to any analytic or single-kernel
// run.
//
// Tables are versioned JSON (kMissCostTableVersion); load() rejects any
// file whose version or axis/cost-vector shapes disagree, so a stale
// committed table fails loudly instead of silently misplanning. The one
// sanctioned back-compat path: version-1 tables (four kernels, predating
// DenseAcc) still load, with the dense cost vector filled as unmeasured
// (-1) so the argmin never picks it from stale data.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/column_kernels.hpp"

namespace spkadd::core {

inline constexpr int kMissCostTableVersion = 2;
inline constexpr std::size_t kNumColumnKernels = 5;

/// Per-kernel weighted miss costs over a (k, per-addend column nnz,
/// chunk width) grid. Axes are ascending; costs are indexed
/// (ik * |d| + id) * |w| + iw in ColumnKernel enum order.
struct MissCostTable {
  int version = kMissCostTableVersion;
  /// Provenance: the HierarchySpec the sweep modeled ("L1:32K:8,...").
  std::string hierarchy;
  /// Trace-matrix row count and simulated thread count of the sweep.
  std::int64_t rows = 0;
  int threads = 0;

  std::vector<std::uint64_t> k_axis;      ///< number of addends
  std::vector<std::uint64_t> d_axis;      ///< per-addend column nnz
  std::vector<std::uint64_t> width_axis;  ///< chunk width (columns)

  /// costs[kernel][cell]; kernel indexes ColumnKernel (heap/spa/hash/
  /// sliding/dense). A negative cost marks an unmeasured cell (e.g. heap
  /// grids too large to merge, or the dense vector of an upgraded v1
  /// table); argmin skips it.
  std::array<std::vector<double>, kNumColumnKernels> costs;

  [[nodiscard]] std::size_t cells() const {
    return k_axis.size() * d_axis.size() * width_axis.size();
  }

  /// All three axes non-empty, strictly ascending, and every cost vector
  /// exactly cells() long with at least one measured (>= 0) entry.
  [[nodiscard]] bool usable() const;

  [[nodiscard]] double cost(ColumnKernel kernel, std::size_t ik,
                            std::size_t id, std::size_t iw) const {
    return costs[static_cast<std::size_t>(kernel)]
                [(ik * d_axis.size() + id) * width_axis.size() + iw];
  }

  /// Classify one hybrid chunk: snap (k, chunk_max_col_nnz / k, width) to
  /// the nearest grid point in log space, then take the cheapest measured
  /// kernel there. Heap only competes inside the analytic compute corner
  /// (sorted inputs, k <= kHybridHeapMaxK, chunk max col nnz <=
  /// kHybridHeapMaxColNnz): it is compute-bound, so its low miss counts
  /// say nothing about its O(lg k) per-element merge cost. DenseAcc only
  /// competes when the caller says the chunk is dense-eligible
  /// (dense_chunk_eligible): its cost is a function of *rows*, an axis
  /// this grid does not have, so the analytic fill/residency gate stays
  /// authoritative. Empty chunks dispatch to Hash like hybrid_kernel_for.
  /// Ties break in enum order, which prefers the simpler kernel.
  [[nodiscard]] ColumnKernel best_kernel(std::size_t k,
                                         std::uint64_t chunk_max_col_nnz,
                                         std::uint64_t chunk_width,
                                         bool inputs_sorted,
                                         bool dense_eligible = false) const;

  /// Versioned JSON rendering (stable key order; whole table on one
  /// schema, calibration/misscost_schema.json).
  [[nodiscard]] std::string to_json() const;

  /// Inverse of to_json(). Throws std::invalid_argument on malformed
  /// JSON, wrong version, or axis/cost shape mismatches.
  [[nodiscard]] static MissCostTable from_json(const std::string& text);

  /// from_json over a file. Throws std::runtime_error when unreadable.
  [[nodiscard]] static MissCostTable load(const std::string& path);

  /// to_json into a file (atomic enough for bench output: write + rename
  /// is overkill here; plain truncate-write). Throws std::runtime_error
  /// when unwritable.
  void save(const std::string& path) const;
};

/// Nearest index into ascending `axis` for `value`, compared in log space
/// (grid axes grow geometrically; linear distance would always snap up).
[[nodiscard]] std::size_t nearest_log_index(
    const std::vector<std::uint64_t>& axis, std::uint64_t value);

}  // namespace spkadd::core
