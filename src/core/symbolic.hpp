// Symbolic phase of SpKAdd (paper §II-D, Alg. 6 and Alg. 7).
//
// Every k-way algorithm needs nnz(B(:,j)) per output column to preallocate
// the result and size the hash tables. This module computes that vector with
// the hash-based symbolic kernel, optionally using the sliding partition of
// Alg. 7 so symbolic tables stay inside the last-level cache. The symbolic
// table stores keys only (b = sizeof(IndexT) bytes per entry).
//
// It is also where Method::Hybrid plans its per-chunk dispatch: the
// per-column input-nnz totals already computed for the Auto prescan and the
// nnz-balanced schedule are cut into cost-balanced column chunks and each
// chunk is classified on the paper's Fig. 2 decision surface
// (plan_hybrid/hybrid_kernel_for) — no new prescan. The hybrid symbolic
// pass then counts each chunk with its assigned kernel's symbolic variant.
//
// The primary entry points take borrowed matrix pointers plus an optional
// Runtime whose per-thread scratch and per-column cost vector are reused
// across calls (the streaming accumulator's workspace-persistence path).
#pragma once

#include <span>
#include <utility>
#include <vector>

#include "core/calibration.hpp"
#include "core/column_kernels.hpp"
#include "core/detail.hpp"
#include "util/cache_info.hpp"
#include "util/thread_control.hpp"

namespace spkadd::core {

namespace detail {

/// Per-thread hash-table entry budget from the LLC size: M / (b * T)
/// (Alg. 7 line 3 rearranged), optionally overridden by
/// Options::max_table_entries. Never below a small floor so degenerate
/// configurations stay functional.
inline std::size_t table_entry_cap(const Options& opts,
                                   std::size_t bytes_per_entry) {
  if (opts.max_table_entries != 0)
    return std::max<std::size_t>(opts.max_table_entries, 8);
  const std::size_t llc =
      opts.llc_bytes != 0 ? opts.llc_bytes : util::effective_llc_bytes();
  const int threads =
      opts.threads > 0 ? opts.threads : util::current_max_threads();
  // Factor 2: hash_table_entries allocates 2x the key count for its <= 0.5
  // load factor, so the memory per *key* is 2 * bytes_per_entry.
  const std::size_t cap =
      llc / (2 * bytes_per_entry *
             static_cast<std::size_t>(std::max(1, threads)));
  return std::max<std::size_t>(cap, 8);
}

}  // namespace detail

/// Compute nnz(B(:,j)) for every column of the borrowed addends. `sliding`
/// selects Alg. 7 (cache-capped tables) vs plain Alg. 6. When `rt` is
/// given, its thread scratch is reused (only grown, never re-allocated per
/// call) and its per-column cost vector — if already computed for these
/// inputs — drives the nnz-balanced schedule and skips empty columns.
template <class IndexT, class ValueT>
std::vector<IndexT> symbolic_nnz_per_column(
    MatrixPtrs<IndexT, ValueT> inputs, const Options& opts, bool sliding,
    Runtime<IndexT, ValueT>* rt = nullptr) {
  const auto [rows, cols] = detail::check_conformant(inputs);
  std::vector<IndexT> counts(static_cast<std::size_t>(cols));
  const std::size_t cap =
      sliding ? detail::table_entry_cap(opts, sizeof(IndexT)) : 0;

  Runtime<IndexT, ValueT> local;
  Runtime<IndexT, ValueT>& R = rt ? *rt : local;
  R.ensure_threads(opts.threads > 0 ? opts.threads
                                    : util::current_max_threads());
  // Costs steer the chunk schedule only — never skip work from them: a
  // persistent Runtime may carry the previous fold's totals.
  const auto costs = R.costs_for(cols);
  const IndexT rows_copy = rows;
  detail::for_each_column(cols, opts, costs, [&](IndexT j, OpCounters* c) {
    auto& s = R.scratch[static_cast<std::size_t>(omp_get_thread_num())];
    detail::gather_views(inputs, j, s.views, opts.skip_cols);
    const std::span<const ColumnView<IndexT, ValueT>> views(s.views);
    const std::size_t nz =
        sliding ? sliding_symbolic_column(views, rows_copy, cap,
                                          opts.inputs_sorted, s, c)
                : hash_symbolic_column(views, s.sym_table, c);
    counts[static_cast<std::size_t>(j)] = static_cast<IndexT>(nz);
  });
  return counts;
}

/// Value-span convenience overload (tests/benches): borrows the matrices
/// and forwards.
template <class IndexT, class ValueT>
std::vector<IndexT> symbolic_nnz_per_column(
    std::span<const CscMatrix<IndexT, ValueT>> inputs, const Options& opts,
    bool sliding) {
  std::vector<const CscMatrix<IndexT, ValueT>*> ptrs;
  detail::borrow_all(inputs, ptrs);
  return symbolic_nnz_per_column(MatrixPtrs<IndexT, ValueT>(ptrs), opts,
                                 sliding);
}

// ---------------------------------------------------------------------------
// Hybrid per-chunk classification (the Fig. 2 surface, evaluated per chunk)
// ---------------------------------------------------------------------------

/// Chunk thresholds of the per-chunk decision surface. The sliding/hash
/// boundary is the paper's cache-residency test and needs no tuning knob;
/// the heap pair covers the corner Fig. 2 draws at small k on sparse
/// columns (a k-way merge has no table to initialize or sort).
inline constexpr std::size_t kHybridHeapMaxK = 4;
inline constexpr std::uint64_t kHybridHeapMaxColNnz = 64;

/// Dense-chunk gate: a chunk is dense enough for the bitmap accumulator
/// when its heaviest column's summed input nnz is at least rows / this
/// divisor — enough scatter work to amortize the O(rows/64) bitmap sweep
/// and beat the SPA's radix sort.
inline constexpr std::uint64_t kHybridDenseMinFillDivisor = 8;

/// The analytic dense eligibility test shared by the analytic surface and
/// the calibrated argmin (the miss-cost grid has no rows axis, and the
/// dense kernel's cost is a function of rows above all): the chunk must
/// be dense enough (see kHybridDenseMinFillDivisor) and the T per-thread
/// dense arrays (value + mask bit per row) must stay LLC-resident.
template <class IndexT>
[[nodiscard]] inline bool dense_chunk_eligible(
    std::uint64_t chunk_max_col_nnz, IndexT rows,
    std::uint64_t dense_fit_rows) {
  return rows > 0 &&
         static_cast<std::uint64_t>(rows) <= dense_fit_rows &&
         chunk_max_col_nnz * kHybridDenseMinFillDivisor >=
             static_cast<std::uint64_t>(rows);
}

/// Classify one nnz-balanced column chunk from its heaviest column's
/// summed input nnz. `llc_fit_nnz` is the largest per-column input nnz
/// whose numeric tables (all T threads') still fit the LLC — the same
/// surface as the whole-matrix Auto test b*T*max > M, just evaluated on
/// the chunk's own maximum instead of the global one. `spa_fit_rows` is
/// the largest row count whose T dense SPA arrays (value + generation
/// stamp per row) stay LLC-resident — the Fig. 3 effect: SPA's direct
/// indexing beats hashing (no probes, no per-column table init) right up
/// until its O(T*m) scratch falls out of cache, which is exactly where
/// the paper's large-m multithreaded runs see it collapse.
/// `dense_fit_rows` is the same test for the dense accumulator's
/// value-plus-mask-bit per-row footprint.
///   1. dense chunks w/ resident arrays -> DenseAcc (bounded by rows, so
///      it absorbs the hub columns whose *input* nnz overflows the LLC)
///   2. tables overflow the cache      -> SlidingHash
///   3. tiny-k sorted sparse chunks    -> Heap
///   4. SPA arrays stay cache-resident -> Spa
///   5. everything else                -> Hash
/// Empty chunks dispatch to Hash (a no-op kernel invocation).
template <class IndexT>
[[nodiscard]] ColumnKernel hybrid_kernel_for(std::uint64_t chunk_max_col_nnz,
                                             std::size_t k, IndexT rows,
                                             bool inputs_sorted,
                                             std::uint64_t llc_fit_nnz,
                                             std::uint64_t spa_fit_rows,
                                             std::uint64_t dense_fit_rows) {
  if (chunk_max_col_nnz == 0) return ColumnKernel::Hash;
  if (dense_chunk_eligible(chunk_max_col_nnz, rows, dense_fit_rows))
    return ColumnKernel::DenseAcc;
  if (chunk_max_col_nnz > llc_fit_nnz) return ColumnKernel::SlidingHash;
  if (inputs_sorted && k <= kHybridHeapMaxK &&
      chunk_max_col_nnz <= kHybridHeapMaxColNnz)
    return ColumnKernel::Heap;
  if (rows > 0 && static_cast<std::uint64_t>(rows) <= spa_fit_rows)
    return ColumnKernel::Spa;
  return ColumnKernel::Hash;
}

/// The per-chunk execution plan of Method::Hybrid: nnz-balanced column
/// ranges plus the kernel classified for each.
template <class IndexT>
struct HybridPlan {
  std::vector<std::pair<IndexT, IndexT>> chunks;  ///< [first, second) cols
  std::vector<ColumnKernel> kernels;              ///< one per chunk

  [[nodiscard]] std::size_t size() const { return chunks.size(); }
  [[nodiscard]] bool uses(ColumnKernel k) const {
    for (const ColumnKernel c : kernels)
      if (c == k) return true;
    return false;
  }
};

/// Build the hybrid plan from the per-column input-nnz totals the call
/// already computed (the Auto-prescan/NnzBalanced cost vector — no new
/// scan): cut the columns into cost-balanced chunks, then classify each
/// chunk from its heaviest column. When Options::calibration points at a
/// usable MissCostTable the classification is the measured miss-cost
/// argmin at the nearest grid point; otherwise it is the analytic
/// hybrid_kernel_for surface. ValueT fixes the numeric table entry size
/// of the cache-residency test.
template <class IndexT, class ValueT>
void plan_hybrid(std::span<const std::uint64_t> costs, IndexT rows,
                 std::size_t k, const Options& opts,
                 HybridPlan<IndexT>& plan) {
  const int threads =
      opts.threads > 0 ? opts.threads : util::current_max_threads();
  detail::balance_chunks(costs, threads, plan.chunks);
  plan.kernels.clear();
  plan.kernels.reserve(plan.chunks.size());
  const MissCostTable* table =
      (opts.calibration != nullptr && opts.calibration->usable())
          ? opts.calibration
          : nullptr;
  const std::size_t b = sizeof(IndexT) + sizeof(ValueT);
  const std::size_t llc =
      opts.llc_bytes != 0 ? opts.llc_bytes : util::effective_llc_bytes();
  const auto T = static_cast<std::size_t>(std::max(1, threads));
  // max fitting nnz: chunk_max > llc/(b*T)  <=>  b*T*chunk_max > llc.
  const std::uint64_t fit = llc / (b * T);
  // SPA footprint per row: one ValueT plus one generation stamp.
  const std::uint64_t spa_fit =
      llc / ((sizeof(ValueT) + sizeof(std::uint32_t)) * T);
  // Dense-accumulator footprint per row: one ValueT plus one mask bit
  // (rounded up to a byte for the residency test).
  const std::uint64_t dense_fit = llc / ((sizeof(ValueT) + 1) * T);
  for (const auto& [c0, c1] : plan.chunks) {
    std::uint64_t mx = 0;
    for (IndexT j = c0; j < c1; ++j)
      mx = std::max(mx, costs[static_cast<std::size_t>(j)]);
    plan.kernels.push_back(
        table != nullptr
            ? table->best_kernel(k, mx,
                                 static_cast<std::uint64_t>(c1 - c0),
                                 opts.inputs_sorted,
                                 dense_chunk_eligible(mx, rows, dense_fit))
            : hybrid_kernel_for(mx, k, rows, opts.inputs_sorted, fit,
                                spa_fit, dense_fit));
  }
}

/// Hybrid symbolic phase: count every column with its chunk's kernel
/// (sliding symbolic on sliding chunks, plain hash symbolic elsewhere).
/// Chunks are the parallel work unit, drained dynamically — they are
/// already cost-balanced, so this is the NnzBalanced schedule by
/// construction.
template <class IndexT, class ValueT>
std::vector<IndexT> symbolic_nnz_per_column_hybrid(
    MatrixPtrs<IndexT, ValueT> inputs, const Options& opts,
    const HybridPlan<IndexT>& plan, Runtime<IndexT, ValueT>& R) {
  const auto [rows, cols] = detail::check_conformant(inputs);
  std::vector<IndexT> counts(static_cast<std::size_t>(cols));
  R.ensure_threads(opts.threads > 0 ? opts.threads
                                    : util::current_max_threads());
  KernelEnv<IndexT> env;
  env.rows = rows;
  env.sym_cap = detail::table_entry_cap(opts, sizeof(IndexT));
  env.inputs_sorted = opts.inputs_sorted;
  detail::for_each_chunk(
      std::span<const std::pair<IndexT, IndexT>>(plan.chunks), opts,
      [&](std::size_t ci, OpCounters* c) {
        auto& s =
            R.scratch[static_cast<std::size_t>(omp_get_thread_num())];
        const ColumnKernel kernel = plan.kernels[ci];
        for (IndexT j = plan.chunks[ci].first; j < plan.chunks[ci].second;
             ++j) {
          detail::gather_views(inputs, j, s.views, opts.skip_cols);
          counts[static_cast<std::size_t>(j)] = static_cast<IndexT>(
              kernel_symbolic_column(
                  kernel,
                  std::span<const ColumnView<IndexT, ValueT>>(s.views), env,
                  s, c));
        }
      });
  return counts;
}

}  // namespace spkadd::core
