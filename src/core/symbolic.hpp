// Symbolic phase of SpKAdd (paper §II-D, Alg. 6 and Alg. 7).
//
// Every k-way algorithm needs nnz(B(:,j)) per output column to preallocate
// the result and size the hash tables. This module computes that vector with
// the hash-based symbolic kernel, optionally using the sliding partition of
// Alg. 7 so symbolic tables stay inside the last-level cache. The symbolic
// table stores keys only (b = sizeof(IndexT) bytes per entry).
//
// The primary entry point takes borrowed matrix pointers plus an optional
// Runtime whose per-thread scratch and per-column cost vector are reused
// across calls (the streaming accumulator's workspace-persistence path).
#pragma once

#include <span>
#include <vector>

#include "core/column_kernels.hpp"
#include "core/detail.hpp"
#include "util/cache_info.hpp"
#include "util/thread_control.hpp"

namespace spkadd::core {

namespace detail {

/// Per-thread hash-table entry budget from the LLC size: M / (b * T)
/// (Alg. 7 line 3 rearranged), optionally overridden by
/// Options::max_table_entries. Never below a small floor so degenerate
/// configurations stay functional.
inline std::size_t table_entry_cap(const Options& opts,
                                   std::size_t bytes_per_entry) {
  if (opts.max_table_entries != 0)
    return std::max<std::size_t>(opts.max_table_entries, 8);
  const std::size_t llc =
      opts.llc_bytes != 0 ? opts.llc_bytes : util::effective_llc_bytes();
  const int threads =
      opts.threads > 0 ? opts.threads : util::current_max_threads();
  // Factor 2: hash_table_entries allocates 2x the key count for its <= 0.5
  // load factor, so the memory per *key* is 2 * bytes_per_entry.
  const std::size_t cap =
      llc / (2 * bytes_per_entry *
             static_cast<std::size_t>(std::max(1, threads)));
  return std::max<std::size_t>(cap, 8);
}

/// Filter the entries of `views` with row index in [r1, r2) into scratch
/// arrays and return views over the filtered copies. Used for sliding over
/// *unsorted* inputs, where binary-search slicing is unavailable.
template <class IndexT, class ValueT>
void filter_range(std::span<const ColumnView<IndexT, ValueT>> views, IndexT r1,
                  IndexT r2, std::vector<IndexT>& rows_scratch,
                  std::vector<ValueT>& vals_scratch,
                  std::vector<std::size_t>& bounds,
                  std::vector<ColumnView<IndexT, ValueT>>& out_views) {
  rows_scratch.clear();
  vals_scratch.clear();
  bounds.clear();
  bounds.push_back(0);
  for (const auto& v : views) {
    for (std::size_t i = 0; i < v.nnz(); ++i) {
      if (v.rows[i] >= r1 && v.rows[i] < r2) {
        rows_scratch.push_back(v.rows[i]);
        vals_scratch.push_back(v.vals[i]);
      }
    }
    bounds.push_back(rows_scratch.size());
  }
  out_views.clear();
  for (std::size_t s = 0; s + 1 < bounds.size(); ++s) {
    const std::size_t lo = bounds[s];
    const std::size_t len = bounds[s + 1] - lo;
    if (len == 0) continue;
    out_views.push_back(ColumnView<IndexT, ValueT>{
        std::span<const IndexT>(rows_scratch).subspan(lo, len),
        std::span<const ValueT>(vals_scratch).subspan(lo, len)});
  }
}

}  // namespace detail

/// Alg. 7 for one column: plain hash symbolic when the table fits the cache
/// budget, otherwise slide over `parts` row ranges. Scratch is the shared
/// per-thread superset (symbolic uses its sym_table + view buffers).
template <class IndexT, class ValueT>
std::size_t sliding_symbolic_column(
    std::span<const ColumnView<IndexT, ValueT>> views, IndexT rows,
    std::size_t cap_entries, bool inputs_sorted,
    ThreadScratch<IndexT, ValueT>& scratch, OpCounters* counters) {
  std::size_t inz = 0;
  for (const auto& v : views) inz += v.nnz();
  if (inz == 0) return 0;
  const std::size_t parts = util::ceil_div(inz, cap_entries);
  if (parts <= 1)
    return hash_symbolic_column(views, scratch.sym_table, counters);

  std::size_t nz = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    const auto r1 = static_cast<IndexT>(
        static_cast<std::size_t>(rows) * p / parts);
    const auto r2 = static_cast<IndexT>(
        static_cast<std::size_t>(rows) * (p + 1) / parts);
    if (inputs_sorted) {
      scratch.part_views.clear();
      for (const auto& v : views) {
        auto sub = v.row_range(r1, r2);
        if (!sub.empty()) scratch.part_views.push_back(sub);
      }
    } else {
      detail::filter_range(views, r1, r2, scratch.rows_scratch,
                           scratch.vals_scratch, scratch.bounds,
                           scratch.part_views);
    }
    nz += hash_symbolic_column(
        std::span<const ColumnView<IndexT, ValueT>>(scratch.part_views),
        scratch.sym_table, counters);
  }
  return nz;
}

/// Compute nnz(B(:,j)) for every column of the borrowed addends. `sliding`
/// selects Alg. 7 (cache-capped tables) vs plain Alg. 6. When `rt` is
/// given, its thread scratch is reused (only grown, never re-allocated per
/// call) and its per-column cost vector — if already computed for these
/// inputs — drives the nnz-balanced schedule and skips empty columns.
template <class IndexT, class ValueT>
std::vector<IndexT> symbolic_nnz_per_column(
    MatrixPtrs<IndexT, ValueT> inputs, const Options& opts, bool sliding,
    Runtime<IndexT, ValueT>* rt = nullptr) {
  const auto [rows, cols] = detail::check_conformant(inputs);
  std::vector<IndexT> counts(static_cast<std::size_t>(cols));
  const std::size_t cap =
      sliding ? detail::table_entry_cap(opts, sizeof(IndexT)) : 0;

  Runtime<IndexT, ValueT> local;
  Runtime<IndexT, ValueT>& R = rt ? *rt : local;
  R.ensure_threads(opts.threads > 0 ? opts.threads
                                    : util::current_max_threads());
  // Costs steer the chunk schedule only — never skip work from them: a
  // persistent Runtime may carry the previous fold's totals.
  const auto costs = R.costs_for(cols);
  const IndexT rows_copy = rows;
  detail::for_each_column(cols, opts, costs, [&](IndexT j, OpCounters* c) {
    auto& s = R.scratch[static_cast<std::size_t>(omp_get_thread_num())];
    detail::gather_views(inputs, j, s.views);
    const std::span<const ColumnView<IndexT, ValueT>> views(s.views);
    const std::size_t nz =
        sliding ? sliding_symbolic_column(views, rows_copy, cap,
                                          opts.inputs_sorted, s, c)
                : hash_symbolic_column(views, s.sym_table, c);
    counts[static_cast<std::size_t>(j)] = static_cast<IndexT>(nz);
  });
  return counts;
}

/// Value-span convenience overload (tests/benches): borrows the matrices
/// and forwards.
template <class IndexT, class ValueT>
std::vector<IndexT> symbolic_nnz_per_column(
    std::span<const CscMatrix<IndexT, ValueT>> inputs, const Options& opts,
    bool sliding) {
  std::vector<const CscMatrix<IndexT, ValueT>*> ptrs;
  detail::borrow_all(inputs, ptrs);
  return symbolic_nnz_per_column(MatrixPtrs<IndexT, ValueT>(ptrs), opts,
                                 sliding);
}

}  // namespace spkadd::core
