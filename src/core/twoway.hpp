// 2-way SpKAdd algorithms (paper §II-B).
//
// `add2` is the parallel pairwise addition (ColAdd over all columns, two
// passes: count then fill). On top of it:
//   * spkadd_twoway_incremental — Alg. 1, fold left: B += A_i one at a time.
//     Work O(k^2 nd) for ER inputs because the growing partial sum is
//     re-streamed every iteration.
//   * spkadd_twoway_tree — balanced binary reduction, work O(k nd lg k).
// Both require sorted input columns and always produce sorted output.
#pragma once

#include <span>

#include "core/column_kernels.hpp"
#include "core/detail.hpp"
#include "util/prefix_sum.hpp"

namespace spkadd::core {

/// Parallel 2-way addition of conformant sorted CSC matrices.
template <class IndexT, class ValueT>
[[nodiscard]] CscMatrix<IndexT, ValueT> add2(
    const CscMatrix<IndexT, ValueT>& a, const CscMatrix<IndexT, ValueT>& b,
    const Options& opts = {}) {
  if (a.rows() != b.rows() || a.cols() != b.cols())
    throw std::invalid_argument("add2: shape mismatch");
  const IndexT n = a.cols();

  // Pass 1 (symbolic): exact merged size per column.
  std::vector<IndexT> counts(static_cast<std::size_t>(n));
  detail::for_each_column(n, opts, [&](IndexT j, OpCounters* c) {
    counts[static_cast<std::size_t>(j)] = static_cast<IndexT>(
        merge2_count(a.column(j), b.column(j), c));
  });
  std::vector<IndexT> col_ptr =
      util::counts_to_offsets(std::span<const IndexT>(counts));

  // Pass 2 (numeric): merge each column into its slice.
  CscMatrix<IndexT, ValueT> out(a.rows(), a.cols());
  out.set_structure(std::move(col_ptr));
  auto* out_rows = out.mutable_row_idx().data();
  auto* out_vals = out.mutable_values().data();
  const auto cp = out.col_ptr();
  detail::for_each_column(n, opts, [&](IndexT j, OpCounters* c) {
    const auto lo = static_cast<std::size_t>(cp[static_cast<std::size_t>(j)]);
    merge2_add(a.column(j), b.column(j), out_rows + lo, out_vals + lo, c);
  });
  if (opts.counters)
    opts.counters->bytes_moved +=
        detail::streamed_bytes<IndexT, ValueT>(a.nnz() + b.nnz(), out.nnz());
  return out;
}

/// Alg. 1: incremental (left fold) 2-way SpKAdd over borrowed addends.
template <class IndexT, class ValueT>
[[nodiscard]] CscMatrix<IndexT, ValueT> spkadd_twoway_incremental(
    MatrixPtrs<IndexT, ValueT> inputs, const Options& opts = {}) {
  detail::check_conformant(inputs);
  if (opts.inputs_sorted)
    detail::require_sorted_inputs(inputs, "spkadd_twoway_incremental");
  else
    throw std::invalid_argument(
        "spkadd_twoway_incremental: requires sorted inputs");
  CscMatrix<IndexT, ValueT> acc = *inputs[0];
  for (std::size_t i = 1; i < inputs.size(); ++i)
    acc = add2(acc, *inputs[i], opts);
  return acc;
}

/// Balanced-tree 2-way SpKAdd: leaves are the borrowed inputs, each level
/// halves the count. Intermediate results are materialized (that is the
/// point: the algorithm's I/O is O(lg k * sum nnz)); odd leftovers carry
/// to the next level by pointer, never by copy. `storage` never exceeds
/// k-1 intermediates, reserved up front so the borrowed pointers into it
/// stay stable.
template <class IndexT, class ValueT>
[[nodiscard]] CscMatrix<IndexT, ValueT> spkadd_twoway_tree(
    MatrixPtrs<IndexT, ValueT> inputs, const Options& opts = {}) {
  detail::check_conformant(inputs);
  if (!opts.inputs_sorted)
    throw std::invalid_argument("spkadd_twoway_tree: requires sorted inputs");
  detail::require_sorted_inputs(inputs, "spkadd_twoway_tree");
  if (inputs.size() == 1) return *inputs[0];

  std::vector<CscMatrix<IndexT, ValueT>> storage;
  storage.reserve(inputs.size() - 1);  // exactly k-1 adds across all levels
  std::vector<const CscMatrix<IndexT, ValueT>*> level(inputs.begin(),
                                                      inputs.end());
  std::vector<const CscMatrix<IndexT, ValueT>*> next;
  while (level.size() > 1) {
    next.clear();
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      storage.push_back(add2(*level[i], *level[i + 1], opts));
      next.push_back(&storage.back());
    }
    if (level.size() % 2 != 0) next.push_back(level.back());
    std::swap(level, next);
  }
  return std::move(storage.back());
}

// Value-span convenience overloads: borrow the matrices and forward.
template <class IndexT, class ValueT>
[[nodiscard]] CscMatrix<IndexT, ValueT> spkadd_twoway_incremental(
    std::span<const CscMatrix<IndexT, ValueT>> inputs,
    const Options& opts = {}) {
  std::vector<const CscMatrix<IndexT, ValueT>*> ptrs;
  detail::borrow_all(inputs, ptrs);
  return spkadd_twoway_incremental(MatrixPtrs<IndexT, ValueT>(ptrs), opts);
}

template <class IndexT, class ValueT>
[[nodiscard]] CscMatrix<IndexT, ValueT> spkadd_twoway_tree(
    std::span<const CscMatrix<IndexT, ValueT>> inputs,
    const Options& opts = {}) {
  std::vector<const CscMatrix<IndexT, ValueT>*> ptrs;
  detail::borrow_all(inputs, ptrs);
  return spkadd_twoway_tree(MatrixPtrs<IndexT, ValueT>(ptrs), opts);
}

}  // namespace spkadd::core
