// Options, method selection and instrumentation counters for SpKAdd.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace spkadd::core {

struct MissCostTable;  // core/calibration.hpp

/// The algorithm family of the paper (§II-B, §II-C, §III-B) plus the
/// library-style reference baseline standing in for MKL.
enum class Method {
  TwoWayIncremental,  ///< Alg. 1: fold pairwise, left to right
  TwoWayTree,         ///< balanced binary tree of pairwise adds
  Heap,               ///< Alg. 3: k-way merge through a min-heap
  Spa,                ///< Alg. 4: dense sparse-accumulator of length m
  Hash,               ///< Alg. 5/6: per-column hash table
  SlidingHash,        ///< Alg. 7/8: cache-capped hash slid over row ranges
  ReferenceIncremental,  ///< MKL-substitute pairwise add, folded
  ReferenceTree,         ///< MKL-substitute pairwise add, tree
  Auto,               ///< pick ONE kernel per Fig. 2's decision surface
  Hybrid,             ///< pick a kernel PER nnz-balanced column chunk
  DenseAcc,           ///< dense bitmap accumulator with SIMD dense adds
};

[[nodiscard]] std::string method_name(Method m);

/// Inverse of method_name(): parses both the exact display name and the
/// usual CLI spellings ("hash", "sliding-hash", "2way-tree", "hybrid",
/// ...), case- and punctuation-insensitively. Throws std::invalid_argument
/// with the accepted names on unknown input. Round-trip guarantee:
/// method_from_name(method_name(m)) == m for every Method.
[[nodiscard]] Method method_from_name(const std::string& name);

/// Loop schedule for the column-parallel outer loop. The paper uses dynamic
/// scheduling keyed on per-column nnz to balance skewed (RMAT) workloads;
/// Static is kept for the ablation bench. NnzBalanced pre-partitions the
/// columns into cost-balanced chunks from the per-column input-nnz totals
/// (computed once, in parallel, and shared with the Auto prescan and the
/// symbolic phase) so skewed columns no longer serialize behind a fixed
/// chunk width.
enum class Schedule { Dynamic, Static, NnzBalanced };

[[nodiscard]] std::string schedule_name(Schedule s);

/// Inverse of schedule_name(); same parsing/throwing contract as
/// method_from_name().
[[nodiscard]] Schedule schedule_from_name(const std::string& name);

/// Operation counters, filled when Options::counters is non-null. These
/// measure the "Work" and "I/O (from memory)" columns of Table I so the
/// complexity bench can verify the analytic growth rates.
struct OpCounters {
  std::uint64_t merge_ops = 0;    ///< 2-way merge element steps
  std::uint64_t heap_ops = 0;     ///< heap inserts + extract-mins
  std::uint64_t hash_probes = 0;  ///< hash slots inspected (incl. collisions)
  std::uint64_t spa_touches = 0;  ///< SPA reads+writes
  std::uint64_t dense_touches = 0;  ///< dense-accumulator scatter/add steps
  std::uint64_t bytes_moved = 0;  ///< streamed matrix bytes (I/O model)
  std::uint64_t table_inits = 0;  ///< hash-table slots initialized

  // Per-kernel chunk-dispatch counts of Method::Hybrid: how many
  // nnz-balanced column chunks each kernel was chosen for (the observable
  // decision mix of the per-chunk Fig. 2 surface). Zero under every
  // single-kernel method.
  std::uint64_t chunks_heap = 0;     ///< chunks dispatched to the heap merge
  std::uint64_t chunks_spa = 0;      ///< chunks dispatched to the SPA
  std::uint64_t chunks_hash = 0;     ///< chunks dispatched to plain hash
  std::uint64_t chunks_sliding = 0;  ///< chunks dispatched to sliding hash
  std::uint64_t chunks_dense = 0;    ///< chunks dispatched to the dense acc

  OpCounters& operator+=(const OpCounters& o) {
    merge_ops += o.merge_ops;
    heap_ops += o.heap_ops;
    hash_probes += o.hash_probes;
    spa_touches += o.spa_touches;
    dense_touches += o.dense_touches;
    bytes_moved += o.bytes_moved;
    table_inits += o.table_inits;
    chunks_heap += o.chunks_heap;
    chunks_spa += o.chunks_spa;
    chunks_hash += o.chunks_hash;
    chunks_sliding += o.chunks_sliding;
    chunks_dense += o.chunks_dense;
    return *this;
  }

  /// Total "work" events across data structures (Table I's Work column).
  [[nodiscard]] std::uint64_t work() const {
    return merge_ops + heap_ops + hash_probes + spa_touches + dense_touches;
  }

  /// Total hybrid chunks dispatched (0 under single-kernel methods).
  [[nodiscard]] std::uint64_t chunks_total() const {
    return chunks_heap + chunks_spa + chunks_hash + chunks_sliding +
           chunks_dense;
  }

  /// Compact "heap/spa/hash/sliding/dense" rendering of the hybrid
  /// decision mix for bench tables, e.g. "2/0/29/1/4".
  [[nodiscard]] std::string chunk_mix() const {
    return std::to_string(chunks_heap) + "/" + std::to_string(chunks_spa) +
           "/" + std::to_string(chunks_hash) + "/" +
           std::to_string(chunks_sliding) + "/" +
           std::to_string(chunks_dense);
  }
};

/// Sparse→dense promotion policy of the streaming Accumulator (ROADMAP
/// item 1, mirroring the HLL sparse→dense representation switch): a
/// running partial-sum column whose fill fraction crosses `promote_fill`
/// is promoted to dense column storage and subsequent addends fold into
/// it with vectorized scatter/dense adds; finalize()/partial_sum() demote
/// back to CSC, so every output format — and every output *byte* — is
/// unchanged. Promotion requires Options::sorted_output (demotion emits
/// rows ascending) and a column-kernel method; TwoWay*/Reference* folds
/// never promote.
struct DensePolicy {
  bool enabled = true;
  /// Promote a column once nnz >= promote_fill * rows (the calibratable
  /// threshold BENCH_dense.json sweeps).
  double promote_fill = 0.5;
  /// Never promote matrices shorter than this: the dense win needs enough
  /// rows to amortize per-column bookkeeping.
  std::int64_t min_rows = 64;
  /// Cap on total dense-resident bytes per accumulator; promotion stops
  /// (new candidates stay sparse) once reached.
  std::size_t max_resident_bytes = 256ull << 20;
};

struct Options {
  Method method = Method::Auto;

  /// Emit columns with strictly ascending row indices. Hash/SPA can skip
  /// their final sort when false (the "unsorted hash" of Fig. 6); merge and
  /// heap methods always produce sorted output.
  bool sorted_output = true;

  /// Declare that the *inputs* have sorted columns. Merge/heap require this
  /// and throw otherwise; sliding hash uses it to slice row ranges by binary
  /// search instead of scanning.
  bool inputs_sorted = true;

  /// 0 = current omp_get_max_threads().
  int threads = 0;

  /// LLC budget for sliding hash (bytes); 0 = detected machine value (or
  /// the util::set_llc_override if active).
  std::size_t llc_bytes = 0;

  /// Force the per-thread hash table entry cap for SlidingHash (the x-axis
  /// of Fig. 4). 0 = derive from llc_bytes / threads as in Alg. 7/8.
  std::size_t max_table_entries = 0;

  Schedule schedule = Schedule::Dynamic;

  /// When non-null and usable(), Method::Hybrid classifies each
  /// nnz-balanced column chunk by measured miss-cost argmin from this
  /// table (core/calibration.hpp) instead of the analytic
  /// hybrid_kernel_for thresholds. Null or unusable tables fall back to
  /// the analytic surface — never an error. The table only changes which
  /// kernel runs per chunk; results stay bit-identical either way.
  const MissCostTable* calibration = nullptr;

  /// When non-null, kernels count their operations here (not thread-safe to
  /// share across concurrent spkadd() calls; one counter per call).
  OpCounters* counters = nullptr;

  /// Sparse→dense promotion policy consumed by the streaming Accumulator
  /// (travels with the fold options so service shards inherit it without
  /// extra plumbing). Ignored by one-shot spkadd() calls.
  DensePolicy dense;

  /// Internal (Accumulator) contract: when non-null, a byte per column;
  /// nonzero marks a column the fold must SKIP — its views are never
  /// gathered and its output column is empty. The Accumulator points this
  /// at its dense-resident mask so promoted columns bypass the sparse fold
  /// entirely. Only the column-kernel drivers honor it; spkadd() rejects
  /// TwoWay*/Reference* methods under a mask.
  const std::uint8_t* skip_cols = nullptr;
};

}  // namespace spkadd::core
