// Unified SpKAdd entry point.
//
//   CscMatrix<> B = core::spkadd(inputs);                    // Auto policy
//   CscMatrix<> B = core::spkadd(inputs, {.method = Method::SlidingHash});
//
// Method::Auto implements the decision surface of the paper's Fig. 2:
// hash-family methods win everywhere at k >= 8; the only question is plain
// hash vs sliding hash, decided by whether all threads' numeric-phase hash
// tables fit in the last-level cache. For tiny k on skewed inputs the 2-way
// tree/heap corner of Fig. 2 is honored.
#pragma once

#include <span>

#include "core/kway.hpp"
#include "core/options.hpp"
#include "core/reference_add.hpp"
#include "core/twoway.hpp"
#include "util/cache_info.hpp"
#include "util/thread_control.hpp"

namespace spkadd::core {

/// Estimate whether the numeric-phase hash tables of all threads overflow
/// the LLC budget: b * T * max-column output nnz > M, with output nnz
/// approximated by the per-column *input* nnz upper bound (cheap, no
/// symbolic pass; overestimates by at most the compression factor, which
/// only moves the boundary toward sliding hash — the safe direction).
template <class IndexT, class ValueT>
[[nodiscard]] bool auto_prefers_sliding(
    std::span<const CscMatrix<IndexT, ValueT>> inputs, const Options& opts) {
  const IndexT cols = inputs.empty() ? 0 : inputs[0].cols();
  std::size_t max_col_nnz = 0;
  for (IndexT j = 0; j < cols; ++j) {
    std::size_t col = 0;
    for (const auto& m : inputs) col += m.col_nnz(j);
    max_col_nnz = std::max(max_col_nnz, col);
  }
  const std::size_t b = sizeof(IndexT) + sizeof(ValueT);
  const int threads =
      opts.threads > 0 ? opts.threads : util::current_max_threads();
  const std::size_t llc =
      opts.llc_bytes != 0 ? opts.llc_bytes : util::effective_llc_bytes();
  return b * static_cast<std::size_t>(threads) * max_col_nnz > llc;
}

/// Pick a concrete method for Method::Auto (exposed for tests/benches).
template <class IndexT, class ValueT>
[[nodiscard]] Method auto_select(
    std::span<const CscMatrix<IndexT, ValueT>> inputs, const Options& opts) {
  if (inputs.size() <= 2 && opts.inputs_sorted) return Method::TwoWayTree;
  return auto_prefers_sliding(inputs, opts) ? Method::SlidingHash
                                            : Method::Hash;
}

/// Add a collection of conformant sparse matrices: B = sum_i inputs[i].
template <class IndexT, class ValueT>
[[nodiscard]] CscMatrix<IndexT, ValueT> spkadd(
    std::span<const CscMatrix<IndexT, ValueT>> inputs,
    const Options& opts = {}) {
  detail::check_conformant(inputs);
  if (inputs.size() == 1) {
    CscMatrix<IndexT, ValueT> out = inputs[0];
    if (opts.sorted_output && !out.is_sorted()) out.sort_columns();
    return out;
  }
  Method method = opts.method;
  if (method == Method::Auto) method = auto_select(inputs, opts);
  switch (method) {
    case Method::TwoWayIncremental:
      return spkadd_twoway_incremental(inputs, opts);
    case Method::TwoWayTree:
      return spkadd_twoway_tree(inputs, opts);
    case Method::Heap:
      return spkadd_heap(inputs, opts);
    case Method::Spa:
      return spkadd_spa(inputs, opts);
    case Method::Hash:
      return spkadd_hash(inputs, opts);
    case Method::SlidingHash:
      return spkadd_sliding_hash(inputs, opts);
    case Method::ReferenceIncremental:
      return spkadd_reference_incremental(inputs);
    case Method::ReferenceTree:
      return spkadd_reference_tree(inputs);
    case Method::Auto:
      break;  // unreachable: resolved above
  }
  throw std::logic_error("spkadd: unresolved method");
}

/// Convenience overload for a vector of matrices.
template <class IndexT, class ValueT>
[[nodiscard]] CscMatrix<IndexT, ValueT> spkadd(
    const std::vector<CscMatrix<IndexT, ValueT>>& inputs,
    const Options& opts = {}) {
  return spkadd(std::span<const CscMatrix<IndexT, ValueT>>(inputs), opts);
}

}  // namespace spkadd::core
