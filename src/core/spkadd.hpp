// Unified SpKAdd entry point.
//
//   CscMatrix<> B = core::spkadd(inputs);                    // Auto policy
//   CscMatrix<> B = core::spkadd(inputs, {.method = Method::SlidingHash});
//
// Method::Auto implements the decision surface of the paper's Fig. 2:
// hash-family methods win everywhere at k >= 8; the only question is plain
// hash vs sliding hash, decided by whether all threads' numeric-phase hash
// tables fit in the last-level cache. For tiny k on skewed inputs the 2-way
// tree/heap corner of Fig. 2 is honored.
//
// Method::Hybrid evaluates the same surface PER nnz-balanced column chunk
// (spkadd_hybrid in kway.hpp): one dense hub column no longer drags every
// sparse column onto sliding hash — each chunk runs its own Fig. 2-optimal
// kernel, bit-identically to any single-kernel run.
//
// The Auto prescan (max per-column input nnz) runs as one parallel pass
// whose per-column totals land in the call's Runtime, where the symbolic
// phase and the nnz-balanced schedule reuse them — the scan is paid once
// per call, not once per consumer.
#pragma once

#include <span>

#include "core/kway.hpp"
#include "core/options.hpp"
#include "core/reference_add.hpp"
#include "core/twoway.hpp"
#include "util/cache_info.hpp"
#include "util/thread_control.hpp"

namespace spkadd::core {

/// The Fig. 2 cache-residency test on a precomputed heaviest-column input
/// nnz: b * T * max-column nnz > M. Output nnz is approximated by the
/// per-column *input* nnz upper bound (overestimates by at most the
/// compression factor, which only moves the boundary toward sliding hash —
/// the safe direction).
template <class IndexT, class ValueT>
[[nodiscard]] bool tables_overflow_llc(std::uint64_t max_col_nnz,
                                       const Options& opts) {
  const std::size_t b = sizeof(IndexT) + sizeof(ValueT);
  const int threads =
      opts.threads > 0 ? opts.threads : util::current_max_threads();
  const std::size_t llc =
      opts.llc_bytes != 0 ? opts.llc_bytes : util::effective_llc_bytes();
  return b * static_cast<std::size_t>(threads) *
             static_cast<std::size_t>(max_col_nnz) >
         llc;
}

/// Estimate whether the numeric-phase hash tables of all threads overflow
/// the LLC budget. The per-column scan runs in parallel (it used to be a
/// serial O(k*n) prepended to every Auto call).
template <class IndexT, class ValueT>
[[nodiscard]] bool auto_prefers_sliding(
    std::span<const CscMatrix<IndexT, ValueT>> inputs, const Options& opts) {
  return tables_overflow_llc<IndexT, ValueT>(
      detail::max_column_input_nnz(inputs, opts), opts);
}

/// Pick a concrete method for Method::Auto from a precomputed heaviest
/// column (internal fast path: the caller already owns the cost scan).
template <class IndexT, class ValueT>
[[nodiscard]] Method auto_select_from_max(std::size_t k, bool inputs_sorted,
                                          std::uint64_t max_col_nnz,
                                          const Options& opts) {
  if (k <= 2 && inputs_sorted) return Method::TwoWayTree;
  return tables_overflow_llc<IndexT, ValueT>(max_col_nnz, opts)
             ? Method::SlidingHash
             : Method::Hash;
}

/// Pick a concrete method for Method::Auto (exposed for tests/benches).
template <class IndexT, class ValueT>
[[nodiscard]] Method auto_select(
    std::span<const CscMatrix<IndexT, ValueT>> inputs, const Options& opts) {
  return auto_select_from_max<IndexT, ValueT>(
      inputs.size(), opts.inputs_sorted,
      detail::max_column_input_nnz(inputs, opts), opts);
}

/// Add a collection of borrowed conformant sparse matrices:
/// B = sum_i *inputs[i]. The primary entry point: batched and streaming
/// callers (Accumulator, spkadd_batched) fold through here without copying
/// an input, and a caller-owned Runtime keeps the per-thread scratch and
/// the per-column cost scan alive across calls.
template <class IndexT, class ValueT>
[[nodiscard]] CscMatrix<IndexT, ValueT> spkadd(
    MatrixPtrs<IndexT, ValueT> inputs, const Options& opts = {},
    Runtime<IndexT, ValueT>* rt = nullptr) {
  detail::check_conformant(inputs);
  if (opts.skip_cols != nullptr &&
      (opts.method == Method::TwoWayIncremental ||
       opts.method == Method::TwoWayTree ||
       opts.method == Method::ReferenceIncremental ||
       opts.method == Method::ReferenceTree))
    throw std::invalid_argument(
        "spkadd: skip_cols requires a column-kernel method");
  // A skip mask must reach a column-loop driver: the whole-matrix copy
  // shortcut and the pairwise folds cannot honor it.
  if (inputs.size() == 1 && opts.skip_cols == nullptr) {
    CscMatrix<IndexT, ValueT> out = *inputs[0];
    if (opts.sorted_output && !out.is_sorted()) out.sort_columns();
    return out;
  }
  Runtime<IndexT, ValueT> local;
  Runtime<IndexT, ValueT>& R = rt ? *rt : local;
  R.col_costs.clear();  // never let a previous call's totals leak downstream
  Method method = opts.method;
  // Fig. 2's 2-way corner needs no column scan; resolve it first so tiny-k
  // Auto calls (e.g. pairwise accumulator folds) stay O(1) in dispatch.
  if (method == Method::Auto && inputs.size() <= 2 && opts.inputs_sorted &&
      opts.skip_cols == nullptr)
    method = Method::TwoWayTree;
  // Only the column-loop drivers consume costs; TwoWay*/Reference* never
  // schedule by them, so skip the scan for those even under NnzBalanced.
  // Hybrid always needs the totals: its chunking AND per-chunk kernel
  // classification feed from them regardless of schedule.
  const bool kway_driver =
      method == Method::Auto || method == Method::Heap ||
      method == Method::Spa || method == Method::Hash ||
      method == Method::SlidingHash || method == Method::DenseAcc;
  const bool want_costs =
      (opts.schedule == Schedule::NnzBalanced && kway_driver) ||
      method == Method::Hybrid;
  if (method == Method::Auto || want_costs) {
    // One parallel scan: the per-column totals are kept only when the
    // balanced schedule (and through it the symbolic phase) will read
    // them; the Auto decision alone needs just the max. Always recomputed
    // here: a persistent Runtime may hold the previous call's totals.
    const std::uint64_t max_col_nnz =
        want_costs ? detail::column_input_nnz(inputs, opts, R.col_costs)
                   : detail::max_column_input_nnz(inputs, opts);
    if (method == Method::Auto) {
      method = auto_select_from_max<IndexT, ValueT>(
          inputs.size(), opts.inputs_sorted, max_col_nnz, opts);
      // Under a skip mask the 2-way corner is off-limits (pairwise folds
      // can't skip columns); hash is the nearest column-loop kernel.
      if (opts.skip_cols != nullptr && method == Method::TwoWayTree)
        method = Method::Hash;
    }
  }
  switch (method) {
    case Method::TwoWayIncremental:
      return spkadd_twoway_incremental(inputs, opts);
    case Method::TwoWayTree:
      return spkadd_twoway_tree(inputs, opts);
    case Method::Heap:
      return spkadd_heap(inputs, opts, &R);
    case Method::Spa:
      return spkadd_spa(inputs, opts, &R);
    case Method::Hash:
      return spkadd_hash(inputs, opts, &R);
    case Method::SlidingHash:
      return spkadd_sliding_hash(inputs, opts, &R);
    case Method::DenseAcc:
      return spkadd_denseacc(inputs, opts, &R);
    case Method::Hybrid:
      return spkadd_hybrid(inputs, opts, &R);
    case Method::ReferenceIncremental:
      return spkadd_reference_incremental(inputs);
    case Method::ReferenceTree:
      return spkadd_reference_tree(inputs);
    case Method::Auto:
      break;  // unreachable: resolved above
  }
  throw std::logic_error("spkadd: unresolved method");
}

/// Add a collection of conformant sparse matrices: B = sum_i inputs[i].
template <class IndexT, class ValueT>
[[nodiscard]] CscMatrix<IndexT, ValueT> spkadd(
    std::span<const CscMatrix<IndexT, ValueT>> inputs,
    const Options& opts = {}) {
  std::vector<const CscMatrix<IndexT, ValueT>*> ptrs;
  detail::borrow_all(inputs, ptrs);
  return spkadd(MatrixPtrs<IndexT, ValueT>(ptrs), opts);
}

/// Convenience overload for a vector of matrices.
template <class IndexT, class ValueT>
[[nodiscard]] CscMatrix<IndexT, ValueT> spkadd(
    const std::vector<CscMatrix<IndexT, ValueT>>& inputs,
    const Options& opts = {}) {
  return spkadd(std::span<const CscMatrix<IndexT, ValueT>>(inputs), opts);
}

}  // namespace spkadd::core
