// Library-style pairwise addition — the stand-in for Intel MKL's
// mkl_sparse_d_add in the paper's "MKL Incremental" / "MKL Tree" baselines.
//
// What makes an off-the-shelf pairwise add slow in the SpKAdd setting is
// structural, not vendor-specific: each call (a) runs sequentially per call
// site the way a black-box library routine is typically invoked from a
// serial caller loop, (b) allocates and returns a brand-new handle,
// (c) canonicalizes (sorts) its output unconditionally, and (d) cannot fuse
// across the k-1 calls. This reference adder reproduces exactly those
// properties; the relative ordering of the MKL rows in Tables III-IV follows.
#pragma once

#include <span>

#include "core/column_kernels.hpp"
#include "core/detail.hpp"

namespace spkadd::core {

/// Sequential, allocation-per-call, always-sorting pairwise add.
template <class IndexT, class ValueT>
[[nodiscard]] CscMatrix<IndexT, ValueT> reference_add2(
    const CscMatrix<IndexT, ValueT>& a_in,
    const CscMatrix<IndexT, ValueT>& b_in) {
  if (a_in.rows() != b_in.rows() || a_in.cols() != b_in.cols())
    throw std::invalid_argument("reference_add2: shape mismatch");
  // A library entry point converts caller arrays into its internal handle
  // representation before computing — one defensive copy per operand per
  // call. This (not the merge itself) is much of why folding k-1 black-box
  // calls is slow.
  const CscMatrix<IndexT, ValueT> a = a_in;
  const CscMatrix<IndexT, ValueT> b = b_in;
  const IndexT n = a.cols();

  // A library routine sizes its output pessimistically first (one symbolic
  // sweep), allocates a fresh result handle, then fills sequentially.
  std::vector<IndexT> col_ptr(static_cast<std::size_t>(n) + 1, 0);
  for (IndexT j = 0; j < n; ++j)
    col_ptr[static_cast<std::size_t>(j) + 1] =
        col_ptr[static_cast<std::size_t>(j)] +
        static_cast<IndexT>(merge2_count(a.column(j), b.column(j)));

  CscMatrix<IndexT, ValueT> out(a.rows(), a.cols());
  out.set_structure(std::move(col_ptr));
  auto* rows = out.mutable_row_idx().data();
  auto* vals = out.mutable_values().data();
  const auto cp = out.col_ptr();
  for (IndexT j = 0; j < n; ++j) {
    const auto lo = static_cast<std::size_t>(cp[static_cast<std::size_t>(j)]);
    merge2_add(a.column(j), b.column(j), rows + lo, vals + lo);
  }
  return out;
}

/// "MKL Incremental": fold reference_add2 left-to-right.
template <class IndexT, class ValueT>
[[nodiscard]] CscMatrix<IndexT, ValueT> spkadd_reference_incremental(
    MatrixPtrs<IndexT, ValueT> inputs) {
  detail::check_conformant(inputs);
  detail::require_sorted_inputs(inputs, "spkadd_reference_incremental");
  CscMatrix<IndexT, ValueT> acc = *inputs[0];
  for (std::size_t i = 1; i < inputs.size(); ++i)
    acc = reference_add2(acc, *inputs[i]);
  return acc;
}

/// "MKL Tree": balanced binary reduction of reference_add2 calls. The tree
/// bookkeeping carries odd leftovers by pointer; the per-call defensive
/// copies stay inside reference_add2, where the baseline makes them.
template <class IndexT, class ValueT>
[[nodiscard]] CscMatrix<IndexT, ValueT> spkadd_reference_tree(
    MatrixPtrs<IndexT, ValueT> inputs) {
  detail::check_conformant(inputs);
  detail::require_sorted_inputs(inputs, "spkadd_reference_tree");
  if (inputs.size() == 1) return *inputs[0];
  std::vector<CscMatrix<IndexT, ValueT>> storage;
  storage.reserve(inputs.size() - 1);
  std::vector<const CscMatrix<IndexT, ValueT>*> level(inputs.begin(),
                                                      inputs.end());
  std::vector<const CscMatrix<IndexT, ValueT>*> next;
  while (level.size() > 1) {
    next.clear();
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      storage.push_back(reference_add2(*level[i], *level[i + 1]));
      next.push_back(&storage.back());
    }
    if (level.size() % 2 != 0) next.push_back(level.back());
    std::swap(level, next);
  }
  return std::move(storage.back());
}

// Value-span convenience overloads: borrow the matrices and forward.
template <class IndexT, class ValueT>
[[nodiscard]] CscMatrix<IndexT, ValueT> spkadd_reference_incremental(
    std::span<const CscMatrix<IndexT, ValueT>> inputs) {
  std::vector<const CscMatrix<IndexT, ValueT>*> ptrs;
  detail::borrow_all(inputs, ptrs);
  return spkadd_reference_incremental(MatrixPtrs<IndexT, ValueT>(ptrs));
}

template <class IndexT, class ValueT>
[[nodiscard]] CscMatrix<IndexT, ValueT> spkadd_reference_tree(
    std::span<const CscMatrix<IndexT, ValueT>> inputs) {
  std::vector<const CscMatrix<IndexT, ValueT>*> ptrs;
  detail::borrow_all(inputs, ptrs);
  return spkadd_reference_tree(MatrixPtrs<IndexT, ValueT>(ptrs));
}

}  // namespace spkadd::core
