// Streaming SpKAdd accumulator — the paper's §V memory-constrained
// extension ("arrange input matrices in multiple batches and then use
// SpKAdd for each batch") promoted to a first-class, stateful subsystem.
//
// Gradient aggregation and FEM assembly are *streams* of addends, not a
// one-shot span: contributions arrive one (or a few) at a time and the
// consumer wants the running sum at the end. The Accumulator keeps a CSC
// partial sum, stages incoming addends as borrowed pointers (or takes
// ownership of rvalues), and folds a full batch plus the running sum with
// one extra SpKAdd level — the exact §V trade-off of peak memory (one batch
// of addends live instead of all k) against re-streaming the partial sum
// once per batch.
//
// What makes it cheaper than calling spkadd_batched in a loop:
//   * zero input copies — batches are spans of borrowed matrix pointers
//     fed straight to the pointer-span drivers;
//   * persistent per-thread workspaces — the hash/SPA/heap scratch in the
//     owned Runtime only ever grows, so no batch re-allocates tables;
//   * the per-column cost scan feeding Method::Auto, Method::Hybrid's
//     per-chunk kernel plan and the nnz-balanced schedule lives in the
//     same Runtime and is recomputed in parallel once per fold, not per
//     consumer. Hybrid folds (Options::method = Method::Hybrid) work
//     unchanged: every fold is a strict left fold whatever kernel mix the
//     plan picks, so streaming stays bit-identical to one-shot.
//
// Representation adaptivity (Options::dense): a running-sum column whose
// fill fraction crosses DensePolicy::promote_fill is promoted to dense
// column storage — a value array plus occupancy bitmap, exactly the
// DenseAcc kernel's layout. Promoted columns leave the sparse fold
// entirely (Options::skip_cols masks them) and subsequent addends scatter
// straight into the dense slot in staged order, preserving the strict
// left-fold addition order bit for bit. partial_sum()/finalize() demote
// every resident column back to CSC (ascending-row bitmap scan, values
// verbatim), so snapshots are byte-identical to a never-promoted run.
//
//   core::Accumulator<> acc(rows, cols, opts);
//   for (auto& g : stream) acc.add(std::move(g));   // or acc.add(g) to borrow
//   CscMatrix<> sum = acc.finalize();               // acc is reusable after
#pragma once

#include <bit>
#include <cstdint>
#include <deque>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/spkadd.hpp"
#include "util/prefix_sum.hpp"

namespace spkadd::core {

template <class IndexT = std::int32_t, class ValueT = double>
class Accumulator {
 public:
  using Matrix = CscMatrix<IndexT, ValueT>;

  /// Fold after this many staged addends unless the caller chose otherwise.
  /// The fold then sums batch_capacity + 1 matrices (batch plus running
  /// sum), comfortably past the k >= 8 regime where the paper's hash
  /// methods dominate.
  static constexpr std::size_t kDefaultBatchCapacity = 8;

  /// Usage/footprint counters for benches and tests.
  struct Stats {
    std::uint64_t addends = 0;  ///< total matrices ever staged
    std::uint64_t flushes = 0;  ///< folds performed
    std::size_t peak_intermediate_bytes = 0;  ///< max of acc+owned+scratch
    /// Max total nnz of addends simultaneously staged (awaiting a fold) —
    /// the "live intermediates" bound of the streaming SUMMA pipeline:
    /// never more than batch_capacity addends' worth.
    std::size_t peak_staged_nnz = 0;
    /// Sparse→dense column promotions performed (DensePolicy).
    std::uint64_t dense_promotions = 0;
    /// Dense→CSC column demotions performed at snapshot boundaries.
    std::uint64_t dense_demotions = 0;
  };

  explicit Accumulator(IndexT rows, IndexT cols, Options opts = {},
                       std::size_t batch_capacity = kDefaultBatchCapacity)
      : rows_(rows), cols_(cols), opts_(opts), cap_(batch_capacity) {
    if (batch_capacity < 1)
      throw std::invalid_argument("Accumulator: batch_capacity must be >= 1");
    detail::check_sentinel_shape(rows);
    staged_.reserve(cap_);
    fold_.reserve(cap_ + 1);
  }

  // Copying would leave the copy's staged pointers aimed at the original's
  // owned addends (dangling after the original flushes). Moves are safe:
  // deque element addresses survive a move.
  Accumulator(const Accumulator&) = delete;
  Accumulator& operator=(const Accumulator&) = delete;
  Accumulator(Accumulator&&) noexcept = default;
  Accumulator& operator=(Accumulator&&) noexcept = default;

  [[nodiscard]] IndexT rows() const { return rows_; }
  [[nodiscard]] IndexT cols() const { return cols_; }
  [[nodiscard]] std::size_t batch_capacity() const { return cap_; }
  /// Addends staged but not yet folded into the running sum.
  [[nodiscard]] std::size_t pending() const { return staged_.size(); }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  /// Columns currently held in dense (promoted) storage. Zero between
  /// snapshots: partial_sum()/finalize() demote everything.
  [[nodiscard]] std::size_t dense_resident_cols() const {
    return resident_count_;
  }
  /// Bytes of persistent per-thread scratch currently held (survives
  /// finalize(); the workspace-reuse guarantee tests pin this).
  [[nodiscard]] std::size_t workspace_bytes() const {
    return rt_.storage_bytes();
  }
  /// The persistent execution context (per-thread scratch + cost scan).
  /// Producers that emit addends — e.g. spgemm::multiply_into — can share
  /// it so the local multiply and the folds keep one hot scratch pool.
  [[nodiscard]] Runtime<IndexT, ValueT>& runtime() { return rt_; }

  /// Stage a borrowed addend. The matrix must stay alive until the next
  /// flush()/finalize() or until batch_capacity addends force a fold —
  /// whichever comes first. No copy is made while folding batches; the one
  /// exception is a stream that ends with a single borrowed addend and no
  /// running sum, whose buffer must be materialized as the result.
  void add(const Matrix& m) {
    require_no_open_buffer();
    stage(&m);
  }

  /// Stage an owned addend: the matrix is moved in (no deep copy) and
  /// released at the next fold. For streams whose producer discards each
  /// contribution right after handing it over.
  void add(Matrix&& m) {
    require_no_open_buffer();
    check_shape(m);
    owned_.push_back(std::move(m));
    stage(&owned_.back());
  }

  /// Stage a whole batch of borrowed addends (§V's "arrange input matrices
  /// in multiple batches"); folds fire every batch_capacity addends.
  void add_batch(std::span<const Matrix> ms) {
    for (const auto& m : ms) add(m);
  }

  /// Open an accumulator-owned staging slot and hand it to a producer to
  /// emit the next addend *in place* (no move, no copy): fill the returned
  /// matrix, then call commit_staged(). Exactly one slot may be open at a
  /// time, and no add()/flush()/finalize() may run while it is.
  [[nodiscard]] Matrix& stage_buffer() {
    if (staging_open_)
      throw std::logic_error("Accumulator: stage_buffer already open");
    owned_.emplace_back();
    staging_open_ = true;
    return owned_.back();
  }

  /// Commit the addend emitted into the open stage_buffer(). Shape-checked
  /// here (the producer sets the shape); may trigger a fold. A rejected
  /// emission is dropped, leaving the accumulator as if the buffer had
  /// never been opened.
  void commit_staged() {
    if (!staging_open_)
      throw std::logic_error("Accumulator: commit_staged without a buffer");
    staging_open_ = false;
    Matrix& slot = owned_.back();
    if (slot.rows() != rows_ || slot.cols() != cols_) {
      owned_.pop_back();  // never staged: must not linger as fold debris
      throw std::invalid_argument("Accumulator: addend is not conformant");
    }
    stage(&slot);
  }

  /// Re-shape an *idle* accumulator (nothing staged, no running sum) for
  /// the next stream. Keeps the grown workspaces — this is what lets one
  /// accumulator serve a sequence of differently-shaped reductions, e.g.
  /// the per-process blocks of the streaming SUMMA pipeline.
  void reshape(IndexT rows, IndexT cols) {
    if (have_acc_ || !staged_.empty() || staging_open_)
      throw std::logic_error("Accumulator: reshape while not idle");
    detail::check_sentinel_shape(rows);
    rows_ = rows;
    cols_ = cols;
    // Idle implies nothing resident, but the lazily-sized per-column
    // vectors must not carry the previous shape into the next stream.
    resident_.clear();
    dense_slot_.clear();
    dense_slots_ = 0;
    resident_count_ = 0;
  }

  /// Drop every staged addend without folding it — the recovery path
  /// after a fold threw (e.g. unsorted inputs under a merge-family
  /// method). The running sum keeps its last consistent value (a failed
  /// fold never assigns it) and owned buffers are released, so the
  /// accumulator is usable again instead of re-throwing on every later
  /// fold of the poisoned batch.
  void discard_staged() {
    require_no_open_buffer();
    staged_.clear();
    owned_.clear();
    staged_nnz_ = 0;
  }

  /// Fold everything staged into the running partial sum now. No-op when
  /// nothing is pending.
  void flush() {
    require_no_open_buffer();
    if (staged_.empty()) return;
    fold_.clear();
    if (have_acc_) fold_.push_back(&acc_);
    fold_.insert(fold_.end(), staged_.begin(), staged_.end());

    Options fopts = opts_;
    // An unsorted running sum (hash family with sorted_output=false) must
    // not be fed to a fold that assumes sorted inputs.
    fopts.inputs_sorted = opts_.inputs_sorted && (!have_acc_ || acc_sorted_);
    // Dense-resident columns bypass the sparse fold entirely: the mask
    // keeps their (stripped, empty) acc_ columns and their addend columns
    // out of the kernels; the addends scatter into dense storage below,
    // only after the fold has succeeded (exception safety: a throwing fold
    // must leave the dense partials untouched, like it leaves acc_).
    if (resident_count_ > 0) fopts.skip_cols = resident_.data();

    std::size_t owned_bytes = 0;
    for (const auto& m : owned_) owned_bytes += m.storage_bytes();
    // Mid-fold, the outgoing running sum and the fresh result are live at
    // once; count both so the peak is not understated.
    const std::size_t acc_before = have_acc_ ? acc_.storage_bytes() : 0;

    if (fold_.size() == 1 && resident_count_ == 0) {
      // Single addend, no running sum yet: materialize it directly (move
      // when we own it) instead of running a 1-way pipeline.
      Matrix* own = owned_.empty() ? nullptr : &owned_.front();
      acc_ = own ? std::move(*own) : Matrix(*fold_.front());
      if (own) owned_bytes = 0;  // the owned buffer *became* acc_
      if (fopts.sorted_output && !acc_.is_sorted()) acc_.sort_columns();
    } else {
      acc_ = spkadd(MatrixPtrs<IndexT, ValueT>(fold_), fopts, &rt_);
    }
    scatter_staged_into_dense();
    have_acc_ = true;
    acc_sorted_ = method_emits_sorted(opts_.method, opts_.sorted_output);

    ++stats_.flushes;
    const std::size_t live = acc_before + acc_.storage_bytes() +
                             owned_bytes + rt_.storage_bytes() +
                             dense_storage_bytes();
    stats_.peak_intermediate_bytes =
        std::max(stats_.peak_intermediate_bytes, live);

    staged_.clear();
    owned_.clear();
    staged_nnz_ = 0;
    maybe_promote();
  }

  /// Fold any pending addends and borrow the running sum WITHOUT
  /// consuming it — snapshot readers (the aggregation service) assemble
  /// a consistent view from many accumulators' partials while each one
  /// keeps streaming afterwards. An accumulator that never saw an
  /// addend materializes (and keeps) the all-zero rows x cols sum. The
  /// reference is invalidated by any later add/flush/finalize.
  [[nodiscard]] const Matrix& partial_sum() {
    flush();
    demote_all();
    if (!have_acc_) {
      acc_ = Matrix(rows_, cols_);
      have_acc_ = true;
      acc_sorted_ = true;
    }
    return acc_;
  }

  /// Whether partial_sum()'s columns are sorted — false only after
  /// unsorted-output hash folds; snapshot assembly uses this to set
  /// Options::inputs_sorted honestly.
  [[nodiscard]] bool partial_is_sorted() const {
    return !have_acc_ || acc_sorted_;
  }

  /// Fold any pending addends and hand the sum to the caller. The
  /// accumulator resets to empty but keeps its workspaces, so the next
  /// stream reuses the grown scratch. An accumulator that never saw an
  /// addend yields the all-zero rows x cols matrix.
  [[nodiscard]] Matrix finalize() {
    flush();
    demote_all();
    Matrix out = have_acc_ ? std::move(acc_) : Matrix(rows_, cols_);
    acc_ = Matrix();
    have_acc_ = false;
    acc_sorted_ = true;
    return out;
  }

 private:
  /// Methods whose output columns are sorted regardless of
  /// Options::sorted_output (merge/heap families sort by construction;
  /// DenseAcc's bitmap scan emits ascending by construction).
  [[nodiscard]] static bool method_emits_sorted(Method m, bool sorted_output) {
    switch (m) {
      case Method::TwoWayIncremental:
      case Method::TwoWayTree:
      case Method::Heap:
      case Method::DenseAcc:
      case Method::ReferenceIncremental:
      case Method::ReferenceTree:
        return true;
      default:
        return sorted_output;
    }
  }

  /// Promotion is legal only when the stream can honor it: the policy is
  /// on, snapshots want sorted columns (demotion emits ascending), the
  /// matrix is tall enough to pay off, and folds run a column-kernel
  /// method (the pairwise families cannot skip columns).
  [[nodiscard]] bool promotion_allowed() const {
    switch (opts_.method) {
      case Method::TwoWayIncremental:
      case Method::TwoWayTree:
      case Method::ReferenceIncremental:
      case Method::ReferenceTree:
        return false;
      default:
        break;
    }
    return opts_.dense.enabled && opts_.sorted_output &&
           static_cast<std::int64_t>(rows_) >= opts_.dense.min_rows;
  }

  [[nodiscard]] std::size_t mask_words() const {
    return (static_cast<std::size_t>(rows_) + 63) / 64;
  }

  [[nodiscard]] std::size_t dense_storage_bytes() const {
    return dense_vals_.capacity() * sizeof(ValueT) +
           dense_mask_.capacity() * sizeof(std::uint64_t);
  }

  /// Fold the just-staged addends' resident columns into their dense
  /// slots, in staged order — the same strict left fold the kernels run
  /// (first touch assigns, later touches +=), so the value bytes stay
  /// identical to a never-promoted stream. noexcept in effect: storage is
  /// preallocated, so a fold that already succeeded cannot be undone by a
  /// failure here.
  void scatter_staged_into_dense() {
    if (resident_count_ == 0) return;
    const auto m = static_cast<std::size_t>(rows_);
    const std::size_t words = mask_words();
    for (const Matrix* a : staged_) {
      const auto cp = a->col_ptr();
      const auto ri = a->row_idx();
      const auto vv = a->values();
      for (IndexT j = 0; j < cols_; ++j) {
        if (resident_[static_cast<std::size_t>(j)] == 0) continue;
        const auto slot =
            static_cast<std::size_t>(dense_slot_[static_cast<std::size_t>(j)]);
        ValueT* vals = dense_vals_.data() + slot * m;
        std::uint64_t* mask = dense_mask_.data() + slot * words;
        const auto lo = static_cast<std::size_t>(cp[static_cast<std::size_t>(j)]);
        const auto hi =
            static_cast<std::size_t>(cp[static_cast<std::size_t>(j) + 1]);
        for (std::size_t p = lo; p < hi; ++p) {
          const auto r = static_cast<std::size_t>(ri[p]);
          const std::uint64_t bit = std::uint64_t{1} << (r & 63);
          if ((mask[r >> 6] & bit) != 0) {
            vals[r] += vv[p];
          } else {
            mask[r >> 6] |= bit;
            vals[r] = vv[p];
          }
        }
      }
    }
  }

  /// Promote every sufficiently full sparse column (under the byte
  /// budget), then strip the promoted columns out of acc_ so the next
  /// demotion cannot double-count them.
  void maybe_promote() {
    if (!have_acc_ || !promotion_allowed()) return;
    const auto m = static_cast<std::size_t>(rows_);
    const std::size_t words = mask_words();
    const std::size_t slot_bytes =
        m * sizeof(ValueT) + words * sizeof(std::uint64_t);
    const double cut =
        opts_.dense.promote_fill * static_cast<double>(rows_);
    bool any = false;
    for (IndexT j = 0; j < cols_; ++j) {
      const auto js = static_cast<std::size_t>(j);
      if (!resident_.empty() && resident_[js] != 0) continue;
      const auto nz = static_cast<std::size_t>(acc_.col_nnz(j));
      if (nz == 0 || static_cast<double>(nz) < cut) continue;
      if ((resident_count_ + 1) * slot_bytes > opts_.dense.max_resident_bytes)
        break;
      promote_column(j, m, words);
      any = true;
    }
    if (any) strip_resident_from_acc();
  }

  void promote_column(IndexT j, std::size_t m, std::size_t words) {
    if (resident_.empty())
      resident_.assign(static_cast<std::size_t>(cols_), 0);
    if (dense_slot_.empty())
      dense_slot_.assign(static_cast<std::size_t>(cols_), -1);
    const std::size_t slot = dense_slots_++;
    if (dense_vals_.size() < dense_slots_ * m)
      dense_vals_.resize(dense_slots_ * m);
    if (dense_mask_.size() < dense_slots_ * words)
      dense_mask_.resize(dense_slots_ * words);
    ValueT* vals = dense_vals_.data() + slot * m;
    std::uint64_t* mask = dense_mask_.data() + slot * words;
    std::fill(mask, mask + words, std::uint64_t{0});
    // Copy the running sum's column verbatim (values untouched: promotion
    // must not perturb a single bit). Unset value slots stay stale — they
    // are never read, and a first touch assigns rather than adds.
    const auto cp = acc_.col_ptr();
    const auto ri = acc_.row_idx();
    const auto vv = acc_.values();
    const auto lo = static_cast<std::size_t>(cp[static_cast<std::size_t>(j)]);
    const auto hi =
        static_cast<std::size_t>(cp[static_cast<std::size_t>(j) + 1]);
    for (std::size_t p = lo; p < hi; ++p) {
      const auto r = static_cast<std::size_t>(ri[p]);
      vals[r] = vv[p];
      mask[r >> 6] |= std::uint64_t{1} << (r & 63);
    }
    resident_[static_cast<std::size_t>(j)] = 1;
    dense_slot_[static_cast<std::size_t>(j)] =
        static_cast<std::int64_t>(slot);
    ++resident_count_;
    ++stats_.dense_promotions;
  }

  /// Rebuild acc_ with every resident column empty. Promoted columns live
  /// in dense storage only; leaving their CSC copy in place would add
  /// them twice at demotion.
  void strip_resident_from_acc() {
    std::vector<IndexT> counts(static_cast<std::size_t>(cols_), IndexT{0});
    for (IndexT j = 0; j < cols_; ++j)
      if (resident_[static_cast<std::size_t>(j)] == 0)
        counts[static_cast<std::size_t>(j)] = acc_.col_nnz(j);
    Matrix stripped(rows_, cols_);
    stripped.set_structure(util::counts_to_offsets(std::span<const IndexT>(counts)));
    auto* orow = stripped.mutable_row_idx().data();
    auto* oval = stripped.mutable_values().data();
    const auto ocp = stripped.col_ptr();
    const auto cp = acc_.col_ptr();
    const auto ri = acc_.row_idx();
    const auto vv = acc_.values();
    for (IndexT j = 0; j < cols_; ++j) {
      const auto js = static_cast<std::size_t>(j);
      if (resident_[js] != 0) continue;
      const auto lo = static_cast<std::size_t>(cp[js]);
      const auto n = static_cast<std::size_t>(cp[js + 1]) - lo;
      auto out = static_cast<std::size_t>(ocp[js]);
      for (std::size_t p = 0; p < n; ++p) {
        orow[out + p] = ri[lo + p];
        oval[out + p] = vv[lo + p];
      }
    }
    acc_ = std::move(stripped);
  }

  /// Merge every dense-resident column back into acc_ as CSC: ascending
  /// bitmap scan, value bytes verbatim. Clears all residency state; the
  /// dense backing stores keep their capacity for the next promotion.
  void demote_all() {
    if (resident_count_ == 0) return;
    const auto m = static_cast<std::size_t>(rows_);
    const std::size_t words = mask_words();
    std::vector<IndexT> counts(static_cast<std::size_t>(cols_), IndexT{0});
    for (IndexT j = 0; j < cols_; ++j) {
      const auto js = static_cast<std::size_t>(j);
      if (resident_[js] != 0) {
        const std::uint64_t* mask =
            dense_mask_.data() +
            static_cast<std::size_t>(dense_slot_[js]) * words;
        std::size_t nz = 0;
        for (std::size_t w = 0; w < words; ++w)
          nz += static_cast<std::size_t>(std::popcount(mask[w]));
        counts[js] = static_cast<IndexT>(nz);
      } else {
        counts[js] = acc_.col_nnz(j);
      }
    }
    Matrix merged(rows_, cols_);
    merged.set_structure(util::counts_to_offsets(std::span<const IndexT>(counts)));
    auto* orow = merged.mutable_row_idx().data();
    auto* oval = merged.mutable_values().data();
    const auto ocp = merged.col_ptr();
    const auto cp = acc_.col_ptr();
    const auto ri = acc_.row_idx();
    const auto vv = acc_.values();
    for (IndexT j = 0; j < cols_; ++j) {
      const auto js = static_cast<std::size_t>(j);
      auto out = static_cast<std::size_t>(ocp[js]);
      if (resident_[js] != 0) {
        const auto slot = static_cast<std::size_t>(dense_slot_[js]);
        const ValueT* vals = dense_vals_.data() + slot * m;
        const std::uint64_t* mask = dense_mask_.data() + slot * words;
        for (std::size_t w = 0; w < words; ++w) {
          std::uint64_t bits = mask[w];
          while (bits != 0) {
            const auto r =
                w * 64 + static_cast<std::size_t>(std::countr_zero(bits));
            orow[out] = static_cast<IndexT>(r);
            oval[out] = vals[r];
            ++out;
            bits &= bits - 1;
          }
        }
      } else {
        const auto lo = static_cast<std::size_t>(cp[js]);
        const auto n = static_cast<std::size_t>(cp[js + 1]) - lo;
        for (std::size_t p = 0; p < n; ++p) {
          orow[out + p] = ri[lo + p];
          oval[out + p] = vv[lo + p];
        }
      }
    }
    acc_ = std::move(merged);
    stats_.dense_demotions += resident_count_;
    resident_.clear();
    dense_slot_.clear();
    dense_slots_ = 0;
    resident_count_ = 0;
  }

  void check_shape(const Matrix& m) const {
    if (m.rows() != rows_ || m.cols() != cols_)
      throw std::invalid_argument("Accumulator: addend is not conformant");
  }

  /// add()/flush()/finalize() while a stage_buffer() awaits its commit
  /// would fold (and then clear) the half-filled slot; reject up front,
  /// before any owned_/staged_ state has changed.
  void require_no_open_buffer() const {
    if (staging_open_)
      throw std::logic_error(
          "Accumulator: operation with an open stage_buffer");
  }

  void stage(const Matrix* m) {
    check_shape(*m);
    staged_.push_back(m);
    ++stats_.addends;
    staged_nnz_ += m->nnz();
    stats_.peak_staged_nnz = std::max(stats_.peak_staged_nnz, staged_nnz_);
    if (staged_.size() >= cap_) flush();
  }

  IndexT rows_;
  IndexT cols_;
  Options opts_;
  std::size_t cap_;

  Matrix acc_;
  bool have_acc_ = false;
  bool acc_sorted_ = true;

  std::vector<const Matrix*> staged_;  ///< borrowed addends awaiting a fold
  std::size_t staged_nnz_ = 0;  ///< total nnz currently staged
  bool staging_open_ = false;   ///< a stage_buffer() awaits commit_staged()
  std::deque<Matrix> owned_;  ///< moved-in addends (deque: stable addresses)
  std::vector<const Matrix*> fold_;  ///< scratch: [acc?, staged...]
  Runtime<IndexT, ValueT> rt_;  ///< persistent scratch + cost scan
  Stats stats_;

  // Dense-resident (promoted) column state. resident_ doubles as the
  // Options::skip_cols mask handed to the sparse fold. Invariant:
  // resident_count_ > 0 implies have_acc_ (promotion only happens after a
  // fold; every snapshot demotes first).
  std::vector<std::uint8_t> resident_;   ///< 1 = column lives in dense storage
  std::vector<std::int64_t> dense_slot_; ///< per-column slot index, -1 = none
  std::vector<ValueT> dense_vals_;       ///< slot-major value arrays (m each)
  std::vector<std::uint64_t> dense_mask_;///< slot-major occupancy bitmaps
  std::size_t dense_slots_ = 0;          ///< slots in use
  std::size_t resident_count_ = 0;       ///< == number of 1s in resident_
};

extern template class Accumulator<std::int32_t, double>;

}  // namespace spkadd::core
