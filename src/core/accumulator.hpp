// Streaming SpKAdd accumulator — the paper's §V memory-constrained
// extension ("arrange input matrices in multiple batches and then use
// SpKAdd for each batch") promoted to a first-class, stateful subsystem.
//
// Gradient aggregation and FEM assembly are *streams* of addends, not a
// one-shot span: contributions arrive one (or a few) at a time and the
// consumer wants the running sum at the end. The Accumulator keeps a CSC
// partial sum, stages incoming addends as borrowed pointers (or takes
// ownership of rvalues), and folds a full batch plus the running sum with
// one extra SpKAdd level — the exact §V trade-off of peak memory (one batch
// of addends live instead of all k) against re-streaming the partial sum
// once per batch.
//
// What makes it cheaper than calling spkadd_batched in a loop:
//   * zero input copies — batches are spans of borrowed matrix pointers
//     fed straight to the pointer-span drivers;
//   * persistent per-thread workspaces — the hash/SPA/heap scratch in the
//     owned Runtime only ever grows, so no batch re-allocates tables;
//   * the per-column cost scan feeding Method::Auto, Method::Hybrid's
//     per-chunk kernel plan and the nnz-balanced schedule lives in the
//     same Runtime and is recomputed in parallel once per fold, not per
//     consumer. Hybrid folds (Options::method = Method::Hybrid) work
//     unchanged: every fold is a strict left fold whatever kernel mix the
//     plan picks, so streaming stays bit-identical to one-shot.
//
//   core::Accumulator<> acc(rows, cols, opts);
//   for (auto& g : stream) acc.add(std::move(g));   // or acc.add(g) to borrow
//   CscMatrix<> sum = acc.finalize();               // acc is reusable after
#pragma once

#include <cstdint>
#include <deque>
#include <span>
#include <stdexcept>
#include <vector>

#include "core/spkadd.hpp"

namespace spkadd::core {

template <class IndexT = std::int32_t, class ValueT = double>
class Accumulator {
 public:
  using Matrix = CscMatrix<IndexT, ValueT>;

  /// Fold after this many staged addends unless the caller chose otherwise.
  /// The fold then sums batch_capacity + 1 matrices (batch plus running
  /// sum), comfortably past the k >= 8 regime where the paper's hash
  /// methods dominate.
  static constexpr std::size_t kDefaultBatchCapacity = 8;

  /// Usage/footprint counters for benches and tests.
  struct Stats {
    std::uint64_t addends = 0;  ///< total matrices ever staged
    std::uint64_t flushes = 0;  ///< folds performed
    std::size_t peak_intermediate_bytes = 0;  ///< max of acc+owned+scratch
    /// Max total nnz of addends simultaneously staged (awaiting a fold) —
    /// the "live intermediates" bound of the streaming SUMMA pipeline:
    /// never more than batch_capacity addends' worth.
    std::size_t peak_staged_nnz = 0;
  };

  explicit Accumulator(IndexT rows, IndexT cols, Options opts = {},
                       std::size_t batch_capacity = kDefaultBatchCapacity)
      : rows_(rows), cols_(cols), opts_(opts), cap_(batch_capacity) {
    if (batch_capacity < 1)
      throw std::invalid_argument("Accumulator: batch_capacity must be >= 1");
    detail::check_sentinel_shape(rows);
    staged_.reserve(cap_);
    fold_.reserve(cap_ + 1);
  }

  // Copying would leave the copy's staged pointers aimed at the original's
  // owned addends (dangling after the original flushes). Moves are safe:
  // deque element addresses survive a move.
  Accumulator(const Accumulator&) = delete;
  Accumulator& operator=(const Accumulator&) = delete;
  Accumulator(Accumulator&&) noexcept = default;
  Accumulator& operator=(Accumulator&&) noexcept = default;

  [[nodiscard]] IndexT rows() const { return rows_; }
  [[nodiscard]] IndexT cols() const { return cols_; }
  [[nodiscard]] std::size_t batch_capacity() const { return cap_; }
  /// Addends staged but not yet folded into the running sum.
  [[nodiscard]] std::size_t pending() const { return staged_.size(); }
  [[nodiscard]] const Stats& stats() const { return stats_; }
  /// Bytes of persistent per-thread scratch currently held (survives
  /// finalize(); the workspace-reuse guarantee tests pin this).
  [[nodiscard]] std::size_t workspace_bytes() const {
    return rt_.storage_bytes();
  }
  /// The persistent execution context (per-thread scratch + cost scan).
  /// Producers that emit addends — e.g. spgemm::multiply_into — can share
  /// it so the local multiply and the folds keep one hot scratch pool.
  [[nodiscard]] Runtime<IndexT, ValueT>& runtime() { return rt_; }

  /// Stage a borrowed addend. The matrix must stay alive until the next
  /// flush()/finalize() or until batch_capacity addends force a fold —
  /// whichever comes first. No copy is made while folding batches; the one
  /// exception is a stream that ends with a single borrowed addend and no
  /// running sum, whose buffer must be materialized as the result.
  void add(const Matrix& m) {
    require_no_open_buffer();
    stage(&m);
  }

  /// Stage an owned addend: the matrix is moved in (no deep copy) and
  /// released at the next fold. For streams whose producer discards each
  /// contribution right after handing it over.
  void add(Matrix&& m) {
    require_no_open_buffer();
    check_shape(m);
    owned_.push_back(std::move(m));
    stage(&owned_.back());
  }

  /// Stage a whole batch of borrowed addends (§V's "arrange input matrices
  /// in multiple batches"); folds fire every batch_capacity addends.
  void add_batch(std::span<const Matrix> ms) {
    for (const auto& m : ms) add(m);
  }

  /// Open an accumulator-owned staging slot and hand it to a producer to
  /// emit the next addend *in place* (no move, no copy): fill the returned
  /// matrix, then call commit_staged(). Exactly one slot may be open at a
  /// time, and no add()/flush()/finalize() may run while it is.
  [[nodiscard]] Matrix& stage_buffer() {
    if (staging_open_)
      throw std::logic_error("Accumulator: stage_buffer already open");
    owned_.emplace_back();
    staging_open_ = true;
    return owned_.back();
  }

  /// Commit the addend emitted into the open stage_buffer(). Shape-checked
  /// here (the producer sets the shape); may trigger a fold. A rejected
  /// emission is dropped, leaving the accumulator as if the buffer had
  /// never been opened.
  void commit_staged() {
    if (!staging_open_)
      throw std::logic_error("Accumulator: commit_staged without a buffer");
    staging_open_ = false;
    Matrix& slot = owned_.back();
    if (slot.rows() != rows_ || slot.cols() != cols_) {
      owned_.pop_back();  // never staged: must not linger as fold debris
      throw std::invalid_argument("Accumulator: addend is not conformant");
    }
    stage(&slot);
  }

  /// Re-shape an *idle* accumulator (nothing staged, no running sum) for
  /// the next stream. Keeps the grown workspaces — this is what lets one
  /// accumulator serve a sequence of differently-shaped reductions, e.g.
  /// the per-process blocks of the streaming SUMMA pipeline.
  void reshape(IndexT rows, IndexT cols) {
    if (have_acc_ || !staged_.empty() || staging_open_)
      throw std::logic_error("Accumulator: reshape while not idle");
    detail::check_sentinel_shape(rows);
    rows_ = rows;
    cols_ = cols;
  }

  /// Drop every staged addend without folding it — the recovery path
  /// after a fold threw (e.g. unsorted inputs under a merge-family
  /// method). The running sum keeps its last consistent value (a failed
  /// fold never assigns it) and owned buffers are released, so the
  /// accumulator is usable again instead of re-throwing on every later
  /// fold of the poisoned batch.
  void discard_staged() {
    require_no_open_buffer();
    staged_.clear();
    owned_.clear();
    staged_nnz_ = 0;
  }

  /// Fold everything staged into the running partial sum now. No-op when
  /// nothing is pending.
  void flush() {
    require_no_open_buffer();
    if (staged_.empty()) return;
    fold_.clear();
    if (have_acc_) fold_.push_back(&acc_);
    fold_.insert(fold_.end(), staged_.begin(), staged_.end());

    Options fopts = opts_;
    // An unsorted running sum (hash family with sorted_output=false) must
    // not be fed to a fold that assumes sorted inputs.
    fopts.inputs_sorted = opts_.inputs_sorted && (!have_acc_ || acc_sorted_);

    std::size_t owned_bytes = 0;
    for (const auto& m : owned_) owned_bytes += m.storage_bytes();
    // Mid-fold, the outgoing running sum and the fresh result are live at
    // once; count both so the peak is not understated.
    const std::size_t acc_before = have_acc_ ? acc_.storage_bytes() : 0;

    if (fold_.size() == 1) {
      // Single addend, no running sum yet: materialize it directly (move
      // when we own it) instead of running a 1-way pipeline.
      Matrix* own = owned_.empty() ? nullptr : &owned_.front();
      acc_ = own ? std::move(*own) : Matrix(*fold_.front());
      if (own) owned_bytes = 0;  // the owned buffer *became* acc_
      if (fopts.sorted_output && !acc_.is_sorted()) acc_.sort_columns();
    } else {
      acc_ = spkadd(MatrixPtrs<IndexT, ValueT>(fold_), fopts, &rt_);
    }
    have_acc_ = true;
    acc_sorted_ = method_emits_sorted(opts_.method, opts_.sorted_output);

    ++stats_.flushes;
    const std::size_t live = acc_before + acc_.storage_bytes() +
                             owned_bytes + rt_.storage_bytes();
    stats_.peak_intermediate_bytes =
        std::max(stats_.peak_intermediate_bytes, live);

    staged_.clear();
    owned_.clear();
    staged_nnz_ = 0;
  }

  /// Fold any pending addends and borrow the running sum WITHOUT
  /// consuming it — snapshot readers (the aggregation service) assemble
  /// a consistent view from many accumulators' partials while each one
  /// keeps streaming afterwards. An accumulator that never saw an
  /// addend materializes (and keeps) the all-zero rows x cols sum. The
  /// reference is invalidated by any later add/flush/finalize.
  [[nodiscard]] const Matrix& partial_sum() {
    flush();
    if (!have_acc_) {
      acc_ = Matrix(rows_, cols_);
      have_acc_ = true;
      acc_sorted_ = true;
    }
    return acc_;
  }

  /// Whether partial_sum()'s columns are sorted — false only after
  /// unsorted-output hash folds; snapshot assembly uses this to set
  /// Options::inputs_sorted honestly.
  [[nodiscard]] bool partial_is_sorted() const {
    return !have_acc_ || acc_sorted_;
  }

  /// Fold any pending addends and hand the sum to the caller. The
  /// accumulator resets to empty but keeps its workspaces, so the next
  /// stream reuses the grown scratch. An accumulator that never saw an
  /// addend yields the all-zero rows x cols matrix.
  [[nodiscard]] Matrix finalize() {
    flush();
    Matrix out = have_acc_ ? std::move(acc_) : Matrix(rows_, cols_);
    acc_ = Matrix();
    have_acc_ = false;
    acc_sorted_ = true;
    return out;
  }

 private:
  /// Methods whose output columns are sorted regardless of
  /// Options::sorted_output (merge/heap families sort by construction).
  [[nodiscard]] static bool method_emits_sorted(Method m, bool sorted_output) {
    switch (m) {
      case Method::TwoWayIncremental:
      case Method::TwoWayTree:
      case Method::Heap:
      case Method::ReferenceIncremental:
      case Method::ReferenceTree:
        return true;
      default:
        return sorted_output;
    }
  }

  void check_shape(const Matrix& m) const {
    if (m.rows() != rows_ || m.cols() != cols_)
      throw std::invalid_argument("Accumulator: addend is not conformant");
  }

  /// add()/flush()/finalize() while a stage_buffer() awaits its commit
  /// would fold (and then clear) the half-filled slot; reject up front,
  /// before any owned_/staged_ state has changed.
  void require_no_open_buffer() const {
    if (staging_open_)
      throw std::logic_error(
          "Accumulator: operation with an open stage_buffer");
  }

  void stage(const Matrix* m) {
    check_shape(*m);
    staged_.push_back(m);
    ++stats_.addends;
    staged_nnz_ += m->nnz();
    stats_.peak_staged_nnz = std::max(stats_.peak_staged_nnz, staged_nnz_);
    if (staged_.size() >= cap_) flush();
  }

  IndexT rows_;
  IndexT cols_;
  Options opts_;
  std::size_t cap_;

  Matrix acc_;
  bool have_acc_ = false;
  bool acc_sorted_ = true;

  std::vector<const Matrix*> staged_;  ///< borrowed addends awaiting a fold
  std::size_t staged_nnz_ = 0;  ///< total nnz currently staged
  bool staging_open_ = false;   ///< a stage_buffer() awaits commit_staged()
  std::deque<Matrix> owned_;  ///< moved-in addends (deque: stable addresses)
  std::vector<const Matrix*> fold_;  ///< scratch: [acc?, staged...]
  Runtime<IndexT, ValueT> rt_;  ///< persistent scratch + cost scan
  Stats stats_;
};

extern template class Accumulator<std::int32_t, double>;

}  // namespace spkadd::core
