// Thread-private scratch spaces reused across columns.
//
// The paper's parallelization (§III-A) keeps one data structure per thread —
// heap of size k, SPA of size m, hash table sized to the current column —
// and the per-column kernels run sequentially on that private scratch.
// Reusing the scratch across columns is what keeps the hash tables hot in
// cache; the SPA avoids O(m) clearing per column with generation stamps.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "matrix/column_view.hpp"
#include "util/bit_ops.hpp"

namespace spkadd::core {

/// Hash-table scratch for the numeric phase: open addressing with linear
/// probing, keys = row indices (kEmpty = free slot). Sized per column to the
/// smallest power of two > nnz(B(:,j)) as in Alg. 5.
template <class IndexT, class ValueT>
struct HashWorkspace {
  static constexpr IndexT kEmpty = static_cast<IndexT>(-1);

  std::vector<IndexT> keys;
  std::vector<ValueT> vals;
  std::size_t mask = 0;

  /// Prepare a table with `entries` slots (must be a power of two). Only
  /// grows the backing store; re-initializes exactly `entries` slots, which
  /// is the O(table) init the paper charges to the hash algorithm.
  void reset(std::size_t entries) {
    if (keys.size() < entries) {
      keys.resize(entries);
      vals.resize(entries);
    }
    std::fill(keys.begin(), keys.begin() + static_cast<std::ptrdiff_t>(entries),
              kEmpty);
    mask = entries - 1;
  }

  [[nodiscard]] std::size_t capacity() const { return mask + 1; }
};

/// Symbolic-phase hash scratch: keys only (the paper notes the symbolic
/// table stores indices only, b = 4 bytes).
template <class IndexT>
struct SymbolicHashWorkspace {
  static constexpr IndexT kEmpty = static_cast<IndexT>(-1);

  std::vector<IndexT> keys;
  std::size_t mask = 0;

  void reset(std::size_t entries) {
    if (keys.size() < entries) keys.resize(entries);
    std::fill(keys.begin(), keys.begin() + static_cast<std::ptrdiff_t>(entries),
              kEmpty);
    mask = entries - 1;
  }

  [[nodiscard]] std::size_t capacity() const { return mask + 1; }
};

/// Sparse accumulator (Alg. 4): dense value array of length m plus the list
/// of touched rows. Generation stamps make new_column() O(1) instead of
/// clearing m entries.
template <class IndexT, class ValueT>
struct SpaWorkspace {
  std::vector<ValueT> values;
  std::vector<std::uint32_t> stamp;
  std::vector<IndexT> touched;
  std::uint32_t generation = 0;

  /// Allocate for matrices with `rows` rows (idempotent).
  void ensure_rows(std::size_t rows) {
    if (values.size() < rows) {
      values.resize(rows);
      stamp.resize(rows, 0);
      generation = 0;
      std::fill(stamp.begin(), stamp.end(), 0u);
    }
  }

  /// Begin accumulating a fresh column.
  void new_column() {
    touched.clear();
    ++generation;
    if (generation == 0) {  // stamp wrap-around: hard reset
      std::fill(stamp.begin(), stamp.end(), 0u);
      generation = 1;
    }
  }

  [[nodiscard]] bool occupied(IndexT r) const {
    return stamp[static_cast<std::size_t>(r)] == generation;
  }

  /// Add v at row r, tracking first touches.
  void add(IndexT r, ValueT v) {
    const auto ri = static_cast<std::size_t>(r);
    if (stamp[ri] == generation) {
      values[ri] += v;
    } else {
      stamp[ri] = generation;
      values[ri] = v;
      touched.push_back(r);
    }
  }
};

/// Dense-accumulator scratch for the DenseAcc kernel: a dense value array
/// of length m plus an occupancy bitmap (one bit per row). The bitmap
/// replaces both the SPA's generation stamps *and* its touched list —
/// sorted emission is a word scan with popcount/ctz, so no radix sort is
/// ever needed. The kernel's contract is that `mask` is all-zero between
/// columns: every column pass clears exactly the words it set.
template <class ValueT>
struct DenseAccWorkspace {
  std::vector<ValueT> values;
  std::vector<std::uint64_t> mask;

  /// Allocate for matrices with `rows` rows (idempotent). New mask words
  /// start zero, establishing the all-clear invariant.
  void ensure_rows(std::size_t rows) {
    if (values.size() < rows) values.resize(rows);
    const std::size_t words = (rows + 63) / 64;
    if (mask.size() < words) mask.resize(words, 0);
  }
};

/// Min-heap scratch for Alg. 3: array-based binary heap of (row, source)
/// pairs plus one cursor per input column. Values are read through the
/// cursor on extraction, so the heap nodes stay 8 bytes.
template <class IndexT>
struct HeapWorkspace {
  struct Node {
    IndexT row;
    std::int32_t source;
  };
  std::vector<Node> nodes;
  std::vector<std::size_t> cursor;

  void ensure_k(std::size_t k) {
    if (nodes.capacity() < k) nodes.reserve(k);
    if (cursor.size() < k) cursor.resize(k);
  }
};

/// Everything one thread needs across any SpKAdd phase: the five method
/// scratch structures plus the view/partition buffers of the symbolic and
/// sliding passes. One superset struct (rather than one per driver) lets a
/// single pool serve symbolic + numeric phases and every method, so a
/// streaming accumulator can keep the scratch hot across batches. All
/// members start empty and only grow on first use, so under the per-chunk
/// hybrid dispatch a thread's scratch footprint is the union of the
/// kernels it actually ran — e.g. the O(m) SPA array is never allocated
/// on a thread that only ever drew hash chunks.
template <class IndexT, class ValueT>
struct ThreadScratch {
  HashWorkspace<IndexT, ValueT> table;
  SymbolicHashWorkspace<IndexT> sym_table;
  SpaWorkspace<IndexT, ValueT> spa;
  HeapWorkspace<IndexT> heap;
  DenseAccWorkspace<ValueT> dense;
  std::vector<ColumnView<IndexT, ValueT>> views;
  std::vector<ColumnView<IndexT, ValueT>> part_views;
  std::vector<IndexT> rows_scratch;
  std::vector<ValueT> vals_scratch;
  std::vector<std::size_t> bounds;

  /// Bytes of backing storage currently held (footprint reporting and the
  /// no-regrowth reuse tests).
  [[nodiscard]] std::size_t storage_bytes() const {
    return table.keys.capacity() * sizeof(IndexT) +
           table.vals.capacity() * sizeof(ValueT) +
           sym_table.keys.capacity() * sizeof(IndexT) +
           spa.values.capacity() * sizeof(ValueT) +
           spa.stamp.capacity() * sizeof(std::uint32_t) +
           spa.touched.capacity() * sizeof(IndexT) +
           dense.values.capacity() * sizeof(ValueT) +
           dense.mask.capacity() * sizeof(std::uint64_t) +
           heap.nodes.capacity() *
               sizeof(typename HeapWorkspace<IndexT>::Node) +
           heap.cursor.capacity() * sizeof(std::size_t) +
           views.capacity() * sizeof(ColumnView<IndexT, ValueT>) +
           part_views.capacity() * sizeof(ColumnView<IndexT, ValueT>) +
           rows_scratch.capacity() * sizeof(IndexT) +
           vals_scratch.capacity() * sizeof(ValueT) +
           bounds.capacity() * sizeof(std::size_t);
  }
};

/// Per-call execution context that is *reusable across calls*: the
/// per-thread scratch pool and the per-column input-nnz totals driving both
/// the Auto prescan and nnz-balanced scheduling. Drivers accept an optional
/// Runtime; when none is given they fall back to a call-local one (the
/// pre-accumulator behavior). The Accumulator owns one so hash/SPA/heap
/// scratch survives across batches instead of being re-grown per call.
template <class IndexT, class ValueT>
struct Runtime {
  std::vector<ThreadScratch<IndexT, ValueT>> scratch;

  /// Per-column sum of input nnz for the *current* call's inputs. Filled by
  /// spkadd()/the drivers when the Auto policy or Schedule::NnzBalanced
  /// needs it; sized to the column count or empty.
  std::vector<std::uint64_t> col_costs;

  void ensure_threads(int nthreads) {
    if (scratch.size() < static_cast<std::size_t>(nthreads))
      scratch.resize(static_cast<std::size_t>(nthreads));
  }

  /// The cost span to schedule with, or empty when not computed for `cols`.
  [[nodiscard]] std::span<const std::uint64_t> costs_for(IndexT cols) const {
    return col_costs.size() == static_cast<std::size_t>(cols)
               ? std::span<const std::uint64_t>(col_costs)
               : std::span<const std::uint64_t>{};
  }

  [[nodiscard]] std::size_t storage_bytes() const {
    std::size_t total = col_costs.capacity() * sizeof(std::uint64_t);
    for (const auto& s : scratch) total += s.storage_bytes();
    return total;
  }
};

/// Size of the hash table allocated for `need` distinct keys. Alg. 5 line 2
/// asks for "a power of two greater than nnz"; taken literally that allows
/// load factors arbitrarily close to 1 (e.g. 1023 keys in 1024 slots), where
/// linear probing degenerates and the O(1)-probe analysis of Table I breaks.
/// We therefore size at the smallest power of two >= 2*need, guaranteeing a
/// load factor <= 0.5 — the standard engineering reading of the algorithm.
[[nodiscard]] inline std::size_t hash_table_entries(std::size_t need) {
  return static_cast<std::size_t>(util::next_pow2(2 * need));
}

}  // namespace spkadd::core
