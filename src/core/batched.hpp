// Batched SpKAdd — the paper's §V extension for memory-constrained settings:
// "we can still arrange input matrices in multiple batches and then use
// SpKAdd for each batch."
//
// The collection is processed in batches of `batch_size` addends; each
// batch is reduced with the configured k-way method and the partial sums
// are folded into a running accumulator with one extra SpKAdd level. Peak
// extra memory is one batch of inputs' worth of intermediates instead of
// all k, at the cost of re-streaming the accumulator once per batch —
// exactly the streaming trade-off the paper sketches.
#pragma once

#include <span>

#include "core/spkadd.hpp"

namespace spkadd::core {

/// B = sum of `inputs`, reduced `batch_size` addends at a time.
/// batch_size >= 2; batch_size >= k degenerates to a single spkadd call.
template <class IndexT, class ValueT>
[[nodiscard]] CscMatrix<IndexT, ValueT> spkadd_batched(
    std::span<const CscMatrix<IndexT, ValueT>> inputs, std::size_t batch_size,
    const Options& opts = {}) {
  if (batch_size < 2)
    throw std::invalid_argument("spkadd_batched: batch_size must be >= 2");
  detail::check_conformant(inputs);
  if (inputs.size() <= batch_size) return spkadd(inputs, opts);

  CscMatrix<IndexT, ValueT> acc;
  bool have_acc = false;
  std::vector<CscMatrix<IndexT, ValueT>> batch;
  for (std::size_t begin = 0; begin < inputs.size(); begin += batch_size) {
    const std::size_t end = std::min(inputs.size(), begin + batch_size);
    // Reduce this batch (leave one slot for the accumulator so the batch
    // plus running sum never exceeds batch_size live matrices).
    batch.clear();
    if (have_acc) batch.push_back(std::move(acc));
    for (std::size_t i = begin; i < end; ++i) batch.push_back(inputs[i]);
    acc = spkadd(std::span<const CscMatrix<IndexT, ValueT>>(batch), opts);
    have_acc = true;
  }
  return acc;
}

/// Convenience overload for vectors.
template <class IndexT, class ValueT>
[[nodiscard]] CscMatrix<IndexT, ValueT> spkadd_batched(
    const std::vector<CscMatrix<IndexT, ValueT>>& inputs,
    std::size_t batch_size, const Options& opts = {}) {
  return spkadd_batched(std::span<const CscMatrix<IndexT, ValueT>>(inputs),
                        batch_size, opts);
}

}  // namespace spkadd::core
