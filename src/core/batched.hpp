// Batched SpKAdd — the paper's §V extension for memory-constrained settings:
// "we can still arrange input matrices in multiple batches and then use
// SpKAdd for each batch."
//
// A thin wrapper over core::Accumulator: the collection is streamed through
// the accumulator `batch_size` addends at a time, each fold combining the
// batch with the running partial sum in one extra SpKAdd level. Peak extra
// memory is one batch of intermediates instead of all k, at the cost of
// re-streaming the accumulator once per batch — exactly the streaming
// trade-off the paper sketches. Batches are spans of *borrowed* matrix
// pointers: no input matrix is ever copied (tests pin this with the
// CscMatrix copy counter).
#pragma once

#include <span>

#include "core/accumulator.hpp"

namespace spkadd::core {

/// B = sum of `inputs`, reduced `batch_size` addends at a time.
/// batch_size >= 2; batch_size >= k degenerates to a single spkadd call.
template <class IndexT, class ValueT>
[[nodiscard]] CscMatrix<IndexT, ValueT> spkadd_batched(
    std::span<const CscMatrix<IndexT, ValueT>> inputs, std::size_t batch_size,
    const Options& opts = {}) {
  if (batch_size < 2)
    throw std::invalid_argument("spkadd_batched: batch_size must be >= 2");
  detail::check_conformant(inputs);
  if (inputs.size() <= batch_size) return spkadd(inputs, opts);

  Accumulator<IndexT, ValueT> acc(inputs[0].rows(), inputs[0].cols(), opts,
                                  batch_size);
  acc.add_batch(inputs);  // borrows; `inputs` outlives the call
  return acc.finalize();
}

/// Convenience overload for vectors.
template <class IndexT, class ValueT>
[[nodiscard]] CscMatrix<IndexT, ValueT> spkadd_batched(
    const std::vector<CscMatrix<IndexT, ValueT>>& inputs,
    std::size_t batch_size, const Options& opts = {}) {
  return spkadd_batched(std::span<const CscMatrix<IndexT, ValueT>>(inputs),
                        batch_size, opts);
}

}  // namespace spkadd::core
