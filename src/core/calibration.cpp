#include "core/calibration.hpp"

#include "core/symbolic.hpp"

#include <cctype>
#include <charconv>
#include <cmath>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "util/json.hpp"

namespace spkadd::core {

namespace {

bool ascending(const std::vector<std::uint64_t>& axis) {
  for (std::size_t i = 1; i < axis.size(); ++i)
    if (axis[i] <= axis[i - 1]) return false;
  return true;
}

// --- Minimal JSON reader for the table's own schema --------------------
// Hand-rolled (no new dependencies): objects, strings, numbers and flat
// number arrays are all the format uses. Anything else is malformed.

class JsonReader {
 public:
  explicit JsonReader(const std::string& text) : s_(text) {}

  void expect(char c) {
    skip_ws();
    if (pos_ >= s_.size() || s_[pos_] != c)
      fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool try_consume(char c) {
    skip_ws();
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string string() {
    expect('"');
    std::string out;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      char c = s_[pos_++];
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("dangling escape");
        c = s_[pos_++];
        if (c == 'n') c = '\n';
        else if (c == 't') c = '\t';
        // \" \\ and \/ fall through as themselves; \uXXXX unsupported.
      }
      out.push_back(c);
    }
    if (pos_ >= s_.size()) fail("unterminated string");
    ++pos_;
    return out;
  }

  double number() {
    skip_ws();
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '-' || s_[pos_] == '+' || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E'))
      ++pos_;
    if (pos_ == start) fail("expected number");
    double value = 0.0;
    const auto [p, ec] =
        std::from_chars(s_.data() + start, s_.data() + pos_, value);
    if (ec != std::errc{} || p != s_.data() + pos_) fail("bad number");
    return value;
  }

  std::vector<double> number_array() {
    std::vector<double> out;
    expect('[');
    if (try_consume(']')) return out;
    for (;;) {
      out.push_back(number());
      if (try_consume(']')) return out;
      expect(',');
    }
  }

  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_])) != 0)
      ++pos_;
  }

  [[noreturn]] void fail(const std::string& what) const {
    throw std::invalid_argument("MissCostTable JSON: " + what +
                                " at offset " + std::to_string(pos_));
  }

 private:
  const std::string& s_;
  std::size_t pos_ = 0;
};

std::vector<std::uint64_t> to_u64_axis(const std::vector<double>& values,
                                       const char* key) {
  std::vector<std::uint64_t> out;
  out.reserve(values.size());
  for (const double v : values) {
    if (v < 0.0 || v != std::floor(v))
      throw std::invalid_argument(std::string("MissCostTable JSON: ") + key +
                                  " entries must be non-negative integers");
    out.push_back(static_cast<std::uint64_t>(v));
  }
  return out;
}

void append_u64_array(std::ostringstream& out,
                      const std::vector<std::uint64_t>& axis) {
  out << '[';
  for (std::size_t i = 0; i < axis.size(); ++i) {
    if (i != 0) out << ',';
    out << axis[i];
  }
  out << ']';
}

void append_cost_array(std::ostringstream& out,
                       const std::vector<double>& costs) {
  out << '[';
  for (std::size_t i = 0; i < costs.size(); ++i) {
    if (i != 0) out << ',';
    out << costs[i];
  }
  out << ']';
}

}  // namespace

bool MissCostTable::usable() const {
  if (version != kMissCostTableVersion) return false;
  if (k_axis.empty() || d_axis.empty() || width_axis.empty()) return false;
  if (!ascending(k_axis) || !ascending(d_axis) || !ascending(width_axis))
    return false;
  const std::size_t n = cells();
  bool any_measured = false;
  for (const auto& kernel_costs : costs) {
    if (kernel_costs.size() != n) return false;
    for (const double c : kernel_costs)
      if (c >= 0.0) any_measured = true;
  }
  return any_measured;
}

std::size_t nearest_log_index(const std::vector<std::uint64_t>& axis,
                              std::uint64_t value) {
  const double lv = std::log2(static_cast<double>(std::max<std::uint64_t>(
      value, 1)));
  std::size_t best = 0;
  double best_dist = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < axis.size(); ++i) {
    const double la = std::log2(
        static_cast<double>(std::max<std::uint64_t>(axis[i], 1)));
    const double dist = std::abs(la - lv);
    if (dist < best_dist) {
      best_dist = dist;
      best = i;
    }
  }
  return best;
}

ColumnKernel MissCostTable::best_kernel(std::size_t k,
                                        std::uint64_t chunk_max_col_nnz,
                                        std::uint64_t chunk_width,
                                        bool inputs_sorted,
                                        bool dense_eligible) const {
  if (chunk_max_col_nnz == 0) return ColumnKernel::Hash;
  const std::size_t ik = nearest_log_index(k_axis, k);
  // The table's density axis is *per-addend* column nnz; the planner sees
  // the summed per-column input nnz of the chunk's heaviest column.
  const std::uint64_t per_addend =
      chunk_max_col_nnz / std::max<std::uint64_t>(k, 1);
  const std::size_t id =
      nearest_log_index(d_axis, std::max<std::uint64_t>(per_addend, 1));
  const std::size_t iw = nearest_log_index(width_axis, chunk_width);

  // Heap is the one compute-bound kernel in the set: on sorted streams it
  // has the FEWEST misses of the four (the k input runs are read
  // sequentially and the lg-k merge state stays cache-resident), so a pure
  // miss-cost argmin would pick it everywhere — and then lose at runtime
  // to its O(lg k) compares per element. Miss counts discriminate well
  // inside the memory-bound family (SPA/hash/sliding, all O(1) work per
  // element); for heap we keep the analytic compute corner (tiny sorted
  // sparse chunks) as the eligibility gate and let the table rank it only
  // there.
  const bool heap_eligible = inputs_sorted && k <= kHybridHeapMaxK &&
                             chunk_max_col_nnz <= kHybridHeapMaxColNnz;

  ColumnKernel best = ColumnKernel::Hash;
  double best_cost = std::numeric_limits<double>::infinity();
  for (std::size_t ki = 0; ki < kNumColumnKernels; ++ki) {
    const auto kernel = static_cast<ColumnKernel>(ki);
    if (kernel == ColumnKernel::Heap && !heap_eligible) continue;
    // DenseAcc's cost is governed by rows — an axis this grid lacks — so
    // the analytic fill/residency gate decides eligibility; the table
    // only ranks it against the others inside that region.
    if (kernel == ColumnKernel::DenseAcc && !dense_eligible) continue;
    const double c = cost(kernel, ik, id, iw);
    if (c < 0.0) continue;  // unmeasured cell
    if (c < best_cost) {
      best_cost = c;
      best = kernel;
    }
  }
  return best;
}

std::string MissCostTable::to_json() const {
  std::ostringstream out;
  out.precision(17);
  out << "{\n";
  out << "  \"version\": " << version << ",\n";
  out << "  \"hierarchy\": \"" << util::json_escape(hierarchy) << "\",\n";
  out << "  \"rows\": " << rows << ",\n";
  out << "  \"threads\": " << threads << ",\n";
  out << "  \"k_axis\": ";
  append_u64_array(out, k_axis);
  out << ",\n  \"d_axis\": ";
  append_u64_array(out, d_axis);
  out << ",\n  \"width_axis\": ";
  append_u64_array(out, width_axis);
  out << ",\n  \"costs\": {\n";
  for (std::size_t ki = 0; ki < kNumColumnKernels; ++ki) {
    out << "    \"" << column_kernel_name(static_cast<ColumnKernel>(ki))
        << "\": ";
    append_cost_array(out, costs[ki]);
    out << (ki + 1 < kNumColumnKernels ? ",\n" : "\n");
  }
  out << "  }\n}\n";
  return out.str();
}

MissCostTable MissCostTable::from_json(const std::string& text) {
  MissCostTable table;
  JsonReader r(text);
  bool have[7] = {};
  std::array<bool, kNumColumnKernels> have_costs{};

  r.expect('{');
  if (!r.try_consume('}')) {
    for (;;) {
      const std::string key = r.string();
      r.expect(':');
      if (key == "version") {
        table.version = static_cast<int>(r.number());
        have[0] = true;
      } else if (key == "hierarchy") {
        table.hierarchy = r.string();
        have[1] = true;
      } else if (key == "rows") {
        table.rows = static_cast<std::int64_t>(r.number());
        have[2] = true;
      } else if (key == "threads") {
        table.threads = static_cast<int>(r.number());
        have[3] = true;
      } else if (key == "k_axis") {
        table.k_axis = to_u64_axis(r.number_array(), "k_axis");
        have[4] = true;
      } else if (key == "d_axis") {
        table.d_axis = to_u64_axis(r.number_array(), "d_axis");
        have[5] = true;
      } else if (key == "width_axis") {
        table.width_axis = to_u64_axis(r.number_array(), "width_axis");
        have[6] = true;
      } else if (key == "costs") {
        r.expect('{');
        if (!r.try_consume('}')) {
          for (;;) {
            const std::string kernel = r.string();
            r.expect(':');
            bool known = false;
            for (std::size_t ki = 0; ki < kNumColumnKernels; ++ki) {
              if (kernel ==
                  column_kernel_name(static_cast<ColumnKernel>(ki))) {
                table.costs[ki] = r.number_array();
                have_costs[ki] = true;
                known = true;
                break;
              }
            }
            if (!known)
              throw std::invalid_argument(
                  "MissCostTable JSON: unknown kernel '" + kernel + "'");
            if (r.try_consume('}')) break;
            r.expect(',');
          }
        }
      } else {
        throw std::invalid_argument("MissCostTable JSON: unknown key '" +
                                    key + "'");
      }
      if (r.try_consume('}')) break;
      r.expect(',');
    }
  }

  for (const bool h : have)
    if (!h) throw std::invalid_argument("MissCostTable JSON: missing key");
  if (table.version != kMissCostTableVersion && table.version != 1)
    throw std::invalid_argument(
        "MissCostTable JSON: unsupported version " +
        std::to_string(table.version) + " (expected " +
        std::to_string(kMissCostTableVersion) + " or the v1 back-compat "
        "format)");
  // Version-1 tables predate the dense kernel: synthesize its cost vector
  // as all-unmeasured so the argmin never picks it from stale data, then
  // upgrade in place (usable() and save() only speak the current version).
  const auto dense_ix = static_cast<std::size_t>(ColumnKernel::DenseAcc);
  if (table.version == 1 && !have_costs[dense_ix]) {
    table.costs[dense_ix].assign(
        table.k_axis.size() * table.d_axis.size() * table.width_axis.size(),
        -1.0);
    have_costs[dense_ix] = true;
  }
  if (table.version == 1) table.version = kMissCostTableVersion;
  for (const bool h : have_costs)
    if (!h)
      throw std::invalid_argument(
          "MissCostTable JSON: missing a kernel cost vector");
  if (!table.usable())
    throw std::invalid_argument(
        "MissCostTable JSON: axes/cost shapes are inconsistent");
  return table;
}

MissCostTable MissCostTable::load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in)
    throw std::runtime_error("MissCostTable: cannot read '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  return from_json(buf.str());
}

void MissCostTable::save(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out)
    throw std::runtime_error("MissCostTable: cannot write '" + path + "'");
  out << to_json();
  if (!out)
    throw std::runtime_error("MissCostTable: write failed for '" + path +
                             "'");
}

}  // namespace spkadd::core
