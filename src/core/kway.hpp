// k-way SpKAdd drivers (paper §II-C, §III).
//
// All drivers share the same two-phase shape:
//   1. symbolic — nnz(B(:,j)) per column (hash-based, Alg. 6/7), exclusive
//      scan into the output col_ptr, exact allocation;
//   2. numeric — column-parallel loop filling each output slice with the
//      method's kernel on thread-private scratch.
// The loop is synchronization-free because output slices are disjoint.
// The five single-kernel drivers run one kernel for every column;
// spkadd_hybrid evaluates the Fig. 2 surface per nnz-balanced column
// chunk and mixes kernels through the uniform ColumnKernel interface.
//
// Primary signatures take borrowed matrix pointers (MatrixPtrs) plus an
// optional Runtime: the streaming accumulator folds batches through these
// without copying an input and with scratch that survives across calls.
// Value-span overloads keep the one-shot convenience API.
#pragma once

#include <span>

#include "core/column_kernels.hpp"
#include "core/detail.hpp"
#include "core/symbolic.hpp"
#include "util/prefix_sum.hpp"
#include "util/thread_control.hpp"

namespace spkadd::core {

namespace detail {

/// Allocate the result from per-column counts.
template <class IndexT, class ValueT>
CscMatrix<IndexT, ValueT> shell_from_counts(IndexT rows, IndexT cols,
                                            std::span<const IndexT> counts) {
  CscMatrix<IndexT, ValueT> out(rows, cols);
  out.set_structure(util::counts_to_offsets(counts));
  return out;
}

/// Shared driver prologue: pick the runtime, grow its thread pool, and make
/// sure the per-column costs exist when the schedule wants them.
template <class IndexT, class ValueT>
Runtime<IndexT, ValueT>& prepare_runtime(MatrixPtrs<IndexT, ValueT> inputs,
                                         const Options& opts, IndexT cols,
                                         Runtime<IndexT, ValueT>* rt,
                                         Runtime<IndexT, ValueT>& local) {
  Runtime<IndexT, ValueT>& R = rt ? *rt : local;
  R.ensure_threads(opts.threads > 0 ? opts.threads
                                    : util::current_max_threads());
  if (opts.schedule == Schedule::NnzBalanced &&
      R.col_costs.size() != static_cast<std::size_t>(cols))
    column_input_nnz(inputs, opts, R.col_costs);
  return R;
}

}  // namespace detail

/// Alg. 3 driver: k-way heap merge per column. Requires sorted inputs;
/// output always sorted.
template <class IndexT, class ValueT>
[[nodiscard]] CscMatrix<IndexT, ValueT> spkadd_heap(
    MatrixPtrs<IndexT, ValueT> inputs, const Options& opts = {},
    Runtime<IndexT, ValueT>* rt = nullptr) {
  const auto [rows, cols] = detail::check_conformant(inputs);
  if (!opts.inputs_sorted)
    throw std::invalid_argument("spkadd_heap: requires sorted inputs");
  detail::require_sorted_inputs(inputs, "spkadd_heap");

  Runtime<IndexT, ValueT> local;
  auto& R = detail::prepare_runtime(inputs, opts, cols, rt, local);
  const std::vector<IndexT> counts =
      symbolic_nnz_per_column(inputs, opts, /*sliding=*/false, &R);
  auto out = detail::shell_from_counts<IndexT, ValueT>(rows, cols, counts);
  auto* out_rows = out.mutable_row_idx().data();
  auto* out_vals = out.mutable_values().data();
  const auto cp = out.col_ptr();

  detail::for_each_column(cols, opts, R.costs_for(cols),
                          [&](IndexT j, OpCounters* c) {
    auto& s = R.scratch[static_cast<std::size_t>(omp_get_thread_num())];
    detail::gather_views(inputs, j, s.views, opts.skip_cols);
    const auto lo = static_cast<std::size_t>(cp[static_cast<std::size_t>(j)]);
    heap_add_column(std::span<const ColumnView<IndexT, ValueT>>(s.views),
                    s.heap, out_rows + lo, out_vals + lo, c);
  });
  if (opts.counters)
    opts.counters->bytes_moved += detail::streamed_bytes<IndexT, ValueT>(
        detail::total_nnz(inputs), out.nnz());
  return out;
}

/// Alg. 4 driver: SPA accumulation. O(T*m) scratch memory — the documented
/// weakness the paper's Fig. 3 exposes at high thread counts.
template <class IndexT, class ValueT>
[[nodiscard]] CscMatrix<IndexT, ValueT> spkadd_spa(
    MatrixPtrs<IndexT, ValueT> inputs, const Options& opts = {},
    Runtime<IndexT, ValueT>* rt = nullptr) {
  const auto [rows, cols] = detail::check_conformant(inputs);
  Runtime<IndexT, ValueT> local;
  auto& R = detail::prepare_runtime(inputs, opts, cols, rt, local);
  const std::vector<IndexT> counts =
      symbolic_nnz_per_column(inputs, opts, /*sliding=*/false, &R);
  auto out = detail::shell_from_counts<IndexT, ValueT>(rows, cols, counts);
  auto* out_rows = out.mutable_row_idx().data();
  auto* out_vals = out.mutable_values().data();
  const auto cp = out.col_ptr();

  const bool sorted = opts.sorted_output;
  const IndexT rows_copy = rows;
  detail::for_each_column(cols, opts, R.costs_for(cols),
                          [&](IndexT j, OpCounters* c) {
    auto& s = R.scratch[static_cast<std::size_t>(omp_get_thread_num())];
    s.spa.ensure_rows(static_cast<std::size_t>(rows_copy));
    detail::gather_views(inputs, j, s.views, opts.skip_cols);
    const auto lo = static_cast<std::size_t>(cp[static_cast<std::size_t>(j)]);
    spa_add_column(std::span<const ColumnView<IndexT, ValueT>>(s.views), s.spa,
                   out_rows + lo, out_vals + lo, sorted, c);
  });
  if (opts.counters)
    opts.counters->bytes_moved += detail::streamed_bytes<IndexT, ValueT>(
        detail::total_nnz(inputs), out.nnz());
  return out;
}

/// Alg. 5 driver: hash accumulation with per-column tables sized to
/// nnz(B(:,j)). Inputs may be unsorted; output sorted iff requested.
template <class IndexT, class ValueT>
[[nodiscard]] CscMatrix<IndexT, ValueT> spkadd_hash(
    MatrixPtrs<IndexT, ValueT> inputs, const Options& opts = {},
    Runtime<IndexT, ValueT>* rt = nullptr) {
  const auto [rows, cols] = detail::check_conformant(inputs);
  Runtime<IndexT, ValueT> local;
  auto& R = detail::prepare_runtime(inputs, opts, cols, rt, local);
  const std::vector<IndexT> counts =
      symbolic_nnz_per_column(inputs, opts, /*sliding=*/false, &R);
  auto out = detail::shell_from_counts<IndexT, ValueT>(rows, cols, counts);
  auto* out_rows = out.mutable_row_idx().data();
  auto* out_vals = out.mutable_values().data();
  const auto cp = out.col_ptr();

  const bool sorted = opts.sorted_output;
  detail::for_each_column(cols, opts, R.costs_for(cols),
                          [&](IndexT j, OpCounters* c) {
    auto& s = R.scratch[static_cast<std::size_t>(omp_get_thread_num())];
    detail::gather_views(inputs, j, s.views, opts.skip_cols);
    const auto lo = static_cast<std::size_t>(cp[static_cast<std::size_t>(j)]);
    const auto expected = static_cast<std::size_t>(
        cp[static_cast<std::size_t>(j) + 1] - cp[static_cast<std::size_t>(j)]);
    hash_add_column(std::span<const ColumnView<IndexT, ValueT>>(s.views),
                    expected, s.table, out_rows + lo, out_vals + lo, sorted,
                    c);
  });
  if (opts.counters)
    opts.counters->bytes_moved += detail::streamed_bytes<IndexT, ValueT>(
        detail::total_nnz(inputs), out.nnz());
  return out;
}

/// Alg. 8 driver: sliding hash. Symbolic uses the sliding partition of
/// Alg. 7; the numeric phase re-partitions each column from its *output*
/// nnz via the shared sliding_hash_add_column kernel (tables are 2-3x
/// smaller than symbolic ones when cf > 1, the effect the paper highlights
/// for Eukarya). Row ranges are sliced by binary search on sorted inputs
/// and by filtering otherwise.
template <class IndexT, class ValueT>
[[nodiscard]] CscMatrix<IndexT, ValueT> spkadd_sliding_hash(
    MatrixPtrs<IndexT, ValueT> inputs, const Options& opts = {},
    Runtime<IndexT, ValueT>* rt = nullptr) {
  const auto [rows, cols] = detail::check_conformant(inputs);
  Runtime<IndexT, ValueT> local;
  auto& R = detail::prepare_runtime(inputs, opts, cols, rt, local);
  const std::vector<IndexT> counts =
      symbolic_nnz_per_column(inputs, opts, /*sliding=*/true, &R);
  auto out = detail::shell_from_counts<IndexT, ValueT>(rows, cols, counts);
  auto* out_rows = out.mutable_row_idx().data();
  auto* out_vals = out.mutable_values().data();
  const auto cp = out.col_ptr();

  const std::size_t cap =
      detail::table_entry_cap(opts, sizeof(IndexT) + sizeof(ValueT));
  const bool sorted = opts.sorted_output;
  const bool inputs_sorted = opts.inputs_sorted;
  const IndexT rows_copy = rows;
  detail::for_each_column(cols, opts, R.costs_for(cols),
                          [&](IndexT j, OpCounters* c) {
    auto& s = R.scratch[static_cast<std::size_t>(omp_get_thread_num())];
    detail::gather_views(inputs, j, s.views, opts.skip_cols);
    const auto onz = static_cast<std::size_t>(
        cp[static_cast<std::size_t>(j) + 1] - cp[static_cast<std::size_t>(j)]);
    const auto lo = static_cast<std::size_t>(cp[static_cast<std::size_t>(j)]);
    sliding_hash_add_column(
        std::span<const ColumnView<IndexT, ValueT>>(s.views), onz, rows_copy,
        cap, inputs_sorted, sorted, s, out_rows + lo, out_vals + lo, c);
  });
  if (opts.counters)
    opts.counters->bytes_moved += detail::streamed_bytes<IndexT, ValueT>(
        detail::total_nnz(inputs), out.nnz());
  return out;
}

/// DenseAcc driver: dense bitmap accumulation per column. O(T*m) value
/// storage like the SPA, but the occupancy bitmap replaces generation
/// stamps and the touched list, and sorted emission is a word scan
/// (popcount/ctz) instead of a radix sort. Identity-dense addends fold
/// with whole-column SIMD adds. Inputs may be unsorted; output is always
/// emitted with ascending rows.
template <class IndexT, class ValueT>
[[nodiscard]] CscMatrix<IndexT, ValueT> spkadd_denseacc(
    MatrixPtrs<IndexT, ValueT> inputs, const Options& opts = {},
    Runtime<IndexT, ValueT>* rt = nullptr) {
  const auto [rows, cols] = detail::check_conformant(inputs);
  Runtime<IndexT, ValueT> local;
  auto& R = detail::prepare_runtime(inputs, opts, cols, rt, local);

  std::vector<IndexT> counts(static_cast<std::size_t>(cols), IndexT{0});
  const IndexT rows_copy = rows;
  detail::for_each_column(cols, opts, R.costs_for(cols),
                          [&](IndexT j, OpCounters* c) {
    auto& s = R.scratch[static_cast<std::size_t>(omp_get_thread_num())];
    detail::gather_views(inputs, j, s.views, opts.skip_cols);
    counts[static_cast<std::size_t>(j)] =
        static_cast<IndexT>(dense_symbolic_column(
            std::span<const ColumnView<IndexT, ValueT>>(s.views), rows_copy,
            s.dense, c));
  });
  auto out = detail::shell_from_counts<IndexT, ValueT>(rows, cols, counts);
  auto* out_rows = out.mutable_row_idx().data();
  auto* out_vals = out.mutable_values().data();
  const auto cp = out.col_ptr();

  detail::for_each_column(cols, opts, R.costs_for(cols),
                          [&](IndexT j, OpCounters* c) {
    auto& s = R.scratch[static_cast<std::size_t>(omp_get_thread_num())];
    detail::gather_views(inputs, j, s.views, opts.skip_cols);
    const auto lo = static_cast<std::size_t>(cp[static_cast<std::size_t>(j)]);
    dense_add_column(std::span<const ColumnView<IndexT, ValueT>>(s.views),
                     rows_copy, s.dense, out_rows + lo, out_vals + lo, c);
  });
  if (opts.counters)
    opts.counters->bytes_moved += detail::streamed_bytes<IndexT, ValueT>(
        detail::total_nnz(inputs), out.nnz());
  return out;
}

/// Method::Hybrid driver: evaluate the Fig. 2 decision surface per
/// nnz-balanced column chunk instead of per call. The per-column input-nnz
/// totals (computed once by the caller's cost scan, or here when absent)
/// are cut into cost-balanced chunks; each chunk is classified
/// (plan_hybrid) and both phases then run chunk-parallel, every chunk
/// under its own kernel through the uniform ColumnKernel interface. A
/// thread's ThreadScratch grows to the union of the kernels it actually
/// runs — nothing is pre-sized for kernels the plan never dispatches.
/// Bit-identical to every single-kernel column method: all kernels
/// accumulate equal-row values strictly left to right over the inputs.
template <class IndexT, class ValueT>
[[nodiscard]] CscMatrix<IndexT, ValueT> spkadd_hybrid(
    MatrixPtrs<IndexT, ValueT> inputs, const Options& opts = {},
    Runtime<IndexT, ValueT>* rt = nullptr) {
  const auto [rows, cols] = detail::check_conformant(inputs);
  Runtime<IndexT, ValueT> local;
  Runtime<IndexT, ValueT>& R = rt ? *rt : local;
  R.ensure_threads(opts.threads > 0 ? opts.threads
                                    : util::current_max_threads());
  // The plan feeds on the cost vector regardless of schedule; reuse the
  // caller's scan when it is already sized for these columns.
  if (R.col_costs.size() != static_cast<std::size_t>(cols))
    detail::column_input_nnz(inputs, opts, R.col_costs);

  HybridPlan<IndexT> plan;
  plan_hybrid<IndexT, ValueT>(
      std::span<const std::uint64_t>(R.col_costs), rows, inputs.size(), opts,
      plan);
  if (plan.uses(ColumnKernel::Heap))
    detail::require_sorted_inputs(inputs, "spkadd_hybrid");
  if (opts.counters)
    for (const ColumnKernel k : plan.kernels) count_chunk(*opts.counters, k);

  const std::vector<IndexT> counts =
      symbolic_nnz_per_column_hybrid(inputs, opts, plan, R);
  auto out = detail::shell_from_counts<IndexT, ValueT>(rows, cols, counts);
  auto* out_rows = out.mutable_row_idx().data();
  auto* out_vals = out.mutable_values().data();
  const auto cp = out.col_ptr();

  KernelEnv<IndexT> env;
  env.rows = rows;
  env.sym_cap = detail::table_entry_cap(opts, sizeof(IndexT));
  env.num_cap =
      detail::table_entry_cap(opts, sizeof(IndexT) + sizeof(ValueT));
  env.inputs_sorted = opts.inputs_sorted;
  env.sorted_output = opts.sorted_output;
  detail::for_each_chunk(
      std::span<const std::pair<IndexT, IndexT>>(plan.chunks), opts,
      [&](std::size_t ci, OpCounters* c) {
        auto& s =
            R.scratch[static_cast<std::size_t>(omp_get_thread_num())];
        const ColumnKernel kernel = plan.kernels[ci];
        for (IndexT j = plan.chunks[ci].first; j < plan.chunks[ci].second;
             ++j) {
          detail::gather_views(inputs, j, s.views, opts.skip_cols);
          const auto lo =
              static_cast<std::size_t>(cp[static_cast<std::size_t>(j)]);
          const auto expected = static_cast<std::size_t>(
              cp[static_cast<std::size_t>(j) + 1] -
              cp[static_cast<std::size_t>(j)]);
          kernel_numeric_column(
              kernel, std::span<const ColumnView<IndexT, ValueT>>(s.views),
              expected, env, s, out_rows + lo, out_vals + lo, c);
        }
      });
  if (opts.counters)
    opts.counters->bytes_moved += detail::streamed_bytes<IndexT, ValueT>(
        detail::total_nnz(inputs), out.nnz());
  return out;
}

// Value-span convenience overloads: borrow the matrices and forward.
template <class IndexT, class ValueT>
[[nodiscard]] CscMatrix<IndexT, ValueT> spkadd_heap(
    std::span<const CscMatrix<IndexT, ValueT>> inputs,
    const Options& opts = {}) {
  std::vector<const CscMatrix<IndexT, ValueT>*> ptrs;
  detail::borrow_all(inputs, ptrs);
  return spkadd_heap(MatrixPtrs<IndexT, ValueT>(ptrs), opts);
}

template <class IndexT, class ValueT>
[[nodiscard]] CscMatrix<IndexT, ValueT> spkadd_spa(
    std::span<const CscMatrix<IndexT, ValueT>> inputs,
    const Options& opts = {}) {
  std::vector<const CscMatrix<IndexT, ValueT>*> ptrs;
  detail::borrow_all(inputs, ptrs);
  return spkadd_spa(MatrixPtrs<IndexT, ValueT>(ptrs), opts);
}

template <class IndexT, class ValueT>
[[nodiscard]] CscMatrix<IndexT, ValueT> spkadd_hash(
    std::span<const CscMatrix<IndexT, ValueT>> inputs,
    const Options& opts = {}) {
  std::vector<const CscMatrix<IndexT, ValueT>*> ptrs;
  detail::borrow_all(inputs, ptrs);
  return spkadd_hash(MatrixPtrs<IndexT, ValueT>(ptrs), opts);
}

template <class IndexT, class ValueT>
[[nodiscard]] CscMatrix<IndexT, ValueT> spkadd_sliding_hash(
    std::span<const CscMatrix<IndexT, ValueT>> inputs,
    const Options& opts = {}) {
  std::vector<const CscMatrix<IndexT, ValueT>*> ptrs;
  detail::borrow_all(inputs, ptrs);
  return spkadd_sliding_hash(MatrixPtrs<IndexT, ValueT>(ptrs), opts);
}

template <class IndexT, class ValueT>
[[nodiscard]] CscMatrix<IndexT, ValueT> spkadd_denseacc(
    std::span<const CscMatrix<IndexT, ValueT>> inputs,
    const Options& opts = {}) {
  std::vector<const CscMatrix<IndexT, ValueT>*> ptrs;
  detail::borrow_all(inputs, ptrs);
  return spkadd_denseacc(MatrixPtrs<IndexT, ValueT>(ptrs), opts);
}

template <class IndexT, class ValueT>
[[nodiscard]] CscMatrix<IndexT, ValueT> spkadd_hybrid(
    std::span<const CscMatrix<IndexT, ValueT>> inputs,
    const Options& opts = {}) {
  std::vector<const CscMatrix<IndexT, ValueT>*> ptrs;
  detail::borrow_all(inputs, ptrs);
  return spkadd_hybrid(MatrixPtrs<IndexT, ValueT>(ptrs), opts);
}

}  // namespace spkadd::core
