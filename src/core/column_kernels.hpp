// Sequential per-column kernels — the building blocks of every SpKAdd
// algorithm. Each kernel adds the jth columns of all k inputs into the jth
// output column; the drivers in this module's siblings run them inside a
// column-parallel OpenMP loop on thread-private workspaces (paper §III-A).
//
//   merge2_*           ColAdd of Alg. 1 (2-way merge of sorted columns)
//   heap_add_column    Alg. 3 (k-way min-heap merge)
//   spa_add_column     Alg. 4 (sparse accumulator)
//   hash_symbolic_column  Alg. 6 (count nnz(B(:,j)))
//   hash_add_column    Alg. 5 (hash-table accumulation)
//   sliding_symbolic_column   Alg. 7 (cache-capped symbolic partition)
//   sliding_hash_add_column   Alg. 8 (cache-capped numeric partition)
//
// The ColumnKernel layer at the bottom exposes all of them behind one
// uniform symbolic/numeric per-column interface — the dispatch unit of
// Method::Hybrid, whose driver picks a kernel per nnz-balanced column
// chunk instead of per call. Every kernel accumulates equal-row values
// strictly left to right over the inputs, so any per-chunk mix of them
// is bit-identical to any single kernel run over the whole matrix.
//
// All kernels optionally count operations into an OpCounters for the
// Table I complexity bench.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>

#include "core/options.hpp"
#include "core/workspace.hpp"
#include "matrix/column_view.hpp"
#include "util/bit_ops.hpp"
#include "util/radix_sort.hpp"

namespace spkadd::core {

/// Multiplicative masking hash of the paper: h = (a * r) & (2^q - 1) with a
/// prime multiplier (Knuth's 2654435761). `mask` must be 2^q - 1.
template <class IndexT>
[[nodiscard]] inline std::size_t hash_index(IndexT r, std::size_t mask) {
  return (static_cast<std::size_t>(static_cast<std::uint64_t>(r) *
                                   2654435761ULL)) &
         mask;
}

// ---------------------------------------------------------------------------
// 2-way merge (ColAdd)
// ---------------------------------------------------------------------------

/// Count the merged size of two sorted columns (symbolic ColAdd).
template <class IndexT, class ValueT>
[[nodiscard]] std::size_t merge2_count(const ColumnView<IndexT, ValueT>& a,
                                       const ColumnView<IndexT, ValueT>& b,
                                       OpCounters* counters = nullptr) {
  std::size_t ia = 0, ib = 0, out = 0;
  while (ia < a.nnz() && ib < b.nnz()) {
    const IndexT ra = a.rows[ia];
    const IndexT rb = b.rows[ib];
    ia += (ra <= rb);
    ib += (rb <= ra);
    ++out;
  }
  out += (a.nnz() - ia) + (b.nnz() - ib);
  if (counters) counters->merge_ops += a.nnz() + b.nnz();
  return out;
}

/// Merge-add two sorted columns into (out_rows, out_vals); returns the
/// number of entries written. Output arrays must have room for
/// a.nnz() + b.nnz() in the worst case.
template <class IndexT, class ValueT>
std::size_t merge2_add(const ColumnView<IndexT, ValueT>& a,
                       const ColumnView<IndexT, ValueT>& b, IndexT* out_rows,
                       ValueT* out_vals, OpCounters* counters = nullptr) {
  std::size_t ia = 0, ib = 0, out = 0;
  while (ia < a.nnz() && ib < b.nnz()) {
    const IndexT ra = a.rows[ia];
    const IndexT rb = b.rows[ib];
    if (ra < rb) {
      out_rows[out] = ra;
      out_vals[out++] = a.vals[ia++];
    } else if (rb < ra) {
      out_rows[out] = rb;
      out_vals[out++] = b.vals[ib++];
    } else {
      out_rows[out] = ra;
      out_vals[out++] = a.vals[ia++] + b.vals[ib++];
    }
  }
  for (; ia < a.nnz(); ++ia) {
    out_rows[out] = a.rows[ia];
    out_vals[out++] = a.vals[ia];
  }
  for (; ib < b.nnz(); ++ib) {
    out_rows[out] = b.rows[ib];
    out_vals[out++] = b.vals[ib];
  }
  if (counters) counters->merge_ops += a.nnz() + b.nnz();
  return out;
}

// ---------------------------------------------------------------------------
// k-way heap merge (Alg. 3)
// ---------------------------------------------------------------------------

/// k-way merge-add of sorted columns through a binary min-heap keyed on
/// (row, source) — ties on row resolve in input order, so equal-row values
/// accumulate strictly left to right. That makes the floating-point result a
/// pure left fold over the inputs, which is what lets a streaming reducer
/// (running sum first, then the staged addends in arrival order) reproduce
/// the one-shot k-way result bit for bit. Output is sorted by construction.
/// Returns entries written; output arrays must hold sum of input nnz in the
/// worst case.
template <class IndexT, class ValueT>
std::size_t heap_add_column(std::span<const ColumnView<IndexT, ValueT>> cols,
                            HeapWorkspace<IndexT>& ws, IndexT* out_rows,
                            ValueT* out_vals, OpCounters* counters = nullptr) {
  using Node = typename HeapWorkspace<IndexT>::Node;
  ws.ensure_k(cols.size());
  ws.nodes.clear();
  std::uint64_t ops = 0;

  // Lines 3-5: seed the heap with the first entry of each column.
  for (std::size_t i = 0; i < cols.size(); ++i) {
    ws.cursor[i] = 0;
    if (!cols[i].empty())
      ws.nodes.push_back(Node{cols[i].rows[0], static_cast<std::int32_t>(i)});
  }
  // (row, source) lexicographic order: `before(x, y)` means x pops first.
  auto before = [](const Node& x, const Node& y) {
    return x.row < y.row || (x.row == y.row && x.source < y.source);
  };
  auto less = [&before](const Node& x, const Node& y) { return before(y, x); };
  std::make_heap(ws.nodes.begin(), ws.nodes.end(), less);
  ops += ws.nodes.size();

  std::size_t out = 0;
  while (!ws.nodes.empty()) {
    const Node top = ws.nodes.front();
    const auto src = static_cast<std::size_t>(top.source);
    const ValueT v = cols[src].vals[ws.cursor[src]];
    // Lines 8-11: extend or accumulate into the (sorted) output tail.
    if (out > 0 && out_rows[out - 1] == top.row) {
      out_vals[out - 1] += v;
    } else {
      out_rows[out] = top.row;
      out_vals[out++] = v;
    }
    // Lines 12-14: replace the root with the source's next entry (replace +
    // sift-down rather than pop+push: one O(lg k) operation per element).
    const std::size_t next = ++ws.cursor[src];
    if (next < cols[src].nnz()) {
      ws.nodes.front().row = cols[src].rows[next];
      // sift down (counting one op per level, the lg k factor of Table I)
      std::size_t hole = 0;
      const std::size_t n = ws.nodes.size();
      const Node item = ws.nodes[0];
      for (;;) {
        std::size_t child = 2 * hole + 1;
        if (child >= n) break;
        ++ops;
        if (child + 1 < n && before(ws.nodes[child + 1], ws.nodes[child]))
          ++child;
        if (!before(ws.nodes[child], item)) break;
        ws.nodes[hole] = ws.nodes[child];
        hole = child;
      }
      ws.nodes[hole] = item;
    } else {
      ops += ws.nodes.empty()
                 ? 0
                 : util::log2_floor(
                       static_cast<std::uint64_t>(ws.nodes.size())) +
                       1;
      std::pop_heap(ws.nodes.begin(), ws.nodes.end(), less);
      ws.nodes.pop_back();
    }
    ++ops;
  }
  if (counters) counters->heap_ops += ops;
  return out;
}

// ---------------------------------------------------------------------------
// SPA (Alg. 4)
// ---------------------------------------------------------------------------

/// Accumulate k columns through a dense sparse accumulator; works on sorted
/// or unsorted inputs. When `sorted_output`, the touched-row list is sorted
/// before emission (Alg. 4 line 8). Returns entries written.
template <class IndexT, class ValueT>
std::size_t spa_add_column(std::span<const ColumnView<IndexT, ValueT>> cols,
                           SpaWorkspace<IndexT, ValueT>& ws, IndexT* out_rows,
                           ValueT* out_vals, bool sorted_output,
                           OpCounters* counters = nullptr) {
  ws.new_column();
  std::uint64_t touches = 0;
  for (const auto& col : cols) {
    for (std::size_t i = 0; i < col.nnz(); ++i)
      ws.add(col.rows[i], col.vals[i]);
    touches += col.nnz();
  }
  if (sorted_output) {
    thread_local std::vector<IndexT> sort_scratch;
    util::radix_sort_keys(ws.touched.data(), ws.touched.size(), sort_scratch);
  }
  std::size_t out = 0;
  for (const IndexT r : ws.touched) {
    out_rows[out] = r;
    out_vals[out++] = ws.values[static_cast<std::size_t>(r)];
  }
  if (counters) counters->spa_touches += touches + ws.touched.size();
  return out;
}

/// Symbolic SPA: count distinct row indices (used when the SPA driver needs
/// exact output sizes without a hash table).
template <class IndexT, class ValueT>
std::size_t spa_symbolic_column(
    std::span<const ColumnView<IndexT, ValueT>> cols,
    SpaWorkspace<IndexT, ValueT>& ws, OpCounters* counters = nullptr) {
  ws.new_column();
  std::uint64_t touches = 0;
  for (const auto& col : cols) {
    for (std::size_t i = 0; i < col.nnz(); ++i) ws.add(col.rows[i], ValueT{});
    touches += col.nnz();
  }
  if (counters) counters->spa_touches += touches;
  return ws.touched.size();
}

// ---------------------------------------------------------------------------
// Hash (Alg. 5 / Alg. 6)
// ---------------------------------------------------------------------------

/// Alg. 6: count nnz of the added column with a keys-only hash table sized
/// by the total input nnz of this column (upper bound on distinct rows).
template <class IndexT, class ValueT>
std::size_t hash_symbolic_column(
    std::span<const ColumnView<IndexT, ValueT>> cols,
    SymbolicHashWorkspace<IndexT>& ws, OpCounters* counters = nullptr) {
  std::size_t input_nnz = 0;
  for (const auto& col : cols) input_nnz += col.nnz();
  if (input_nnz == 0) return 0;
  const std::size_t entries = hash_table_entries(input_nnz);
  ws.reset(entries);

  std::uint64_t probes = 0;
  std::size_t nz = 0;
  for (const auto& col : cols) {
    for (std::size_t i = 0; i < col.nnz(); ++i) {
      const IndexT r = col.rows[i];
      std::size_t h = hash_index(r, ws.mask);
      for (;;) {
        ++probes;
        if (ws.keys[h] == SymbolicHashWorkspace<IndexT>::kEmpty) {
          ws.keys[h] = r;
          ++nz;
          break;
        }
        if (ws.keys[h] == r) break;
        h = (h + 1) & ws.mask;  // linear probing
      }
    }
  }
  if (counters) {
    counters->hash_probes += probes;
    counters->table_inits += entries;
  }
  return nz;
}

/// Alg. 5: accumulate k columns into a hash table sized by `expected_nnz`
/// (the symbolic result), then emit. Works on sorted or unsorted inputs.
/// Returns entries written (== expected_nnz).
template <class IndexT, class ValueT>
std::size_t hash_add_column(std::span<const ColumnView<IndexT, ValueT>> cols,
                            std::size_t expected_nnz,
                            HashWorkspace<IndexT, ValueT>& ws,
                            IndexT* out_rows, ValueT* out_vals,
                            bool sorted_output,
                            OpCounters* counters = nullptr) {
  if (expected_nnz == 0) return 0;
  const std::size_t entries = hash_table_entries(expected_nnz);
  ws.reset(entries);

  std::uint64_t probes = 0;
  for (const auto& col : cols) {
    for (std::size_t i = 0; i < col.nnz(); ++i) {
      const IndexT r = col.rows[i];
      const ValueT v = col.vals[i];
      std::size_t h = hash_index(r, ws.mask);
      for (;;) {
        ++probes;
        if (ws.keys[h] == HashWorkspace<IndexT, ValueT>::kEmpty) {
          ws.keys[h] = r;
          ws.vals[h] = v;
          break;
        }
        if (ws.keys[h] == r) {
          ws.vals[h] += v;
          break;
        }
        h = (h + 1) & ws.mask;
      }
    }
  }

  // Lines 13-14: sweep valid slots into the output...
  std::size_t out = 0;
  for (std::size_t h = 0; h < entries; ++h) {
    if (ws.keys[h] != HashWorkspace<IndexT, ValueT>::kEmpty) {
      out_rows[out] = ws.keys[h];
      out_vals[out++] = ws.vals[h];
    }
  }
  // ...then sort if the caller wants canonical columns (line 15). Radix
  // sort: comparison sorting would dominate the numeric phase on dense
  // columns (see util/radix_sort.hpp).
  if (sorted_output && out > 1) {
    thread_local util::RadixScratch<IndexT, ValueT> sort_scratch;
    util::radix_sort_pairs(out_rows, out_vals, out, sort_scratch);
  }
  if (counters) {
    counters->hash_probes += probes;
    counters->table_inits += entries;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Sliding hash (Alg. 7 / Alg. 8)
// ---------------------------------------------------------------------------

namespace detail {

/// Filter the entries of `views` with row index in [r1, r2) into scratch
/// arrays and return views over the filtered copies. Used for sliding over
/// *unsorted* inputs, where binary-search slicing is unavailable.
template <class IndexT, class ValueT>
void filter_range(std::span<const ColumnView<IndexT, ValueT>> views, IndexT r1,
                  IndexT r2, std::vector<IndexT>& rows_scratch,
                  std::vector<ValueT>& vals_scratch,
                  std::vector<std::size_t>& bounds,
                  std::vector<ColumnView<IndexT, ValueT>>& out_views) {
  rows_scratch.clear();
  vals_scratch.clear();
  bounds.clear();
  bounds.push_back(0);
  for (const auto& v : views) {
    for (std::size_t i = 0; i < v.nnz(); ++i) {
      if (v.rows[i] >= r1 && v.rows[i] < r2) {
        rows_scratch.push_back(v.rows[i]);
        vals_scratch.push_back(v.vals[i]);
      }
    }
    bounds.push_back(rows_scratch.size());
  }
  out_views.clear();
  for (std::size_t s = 0; s + 1 < bounds.size(); ++s) {
    const std::size_t lo = bounds[s];
    const std::size_t len = bounds[s + 1] - lo;
    if (len == 0) continue;
    out_views.push_back(ColumnView<IndexT, ValueT>{
        std::span<const IndexT>(rows_scratch).subspan(lo, len),
        std::span<const ValueT>(vals_scratch).subspan(lo, len)});
  }
}

/// Slice `views` to the row range [r1, r2) into scratch.part_views —
/// binary search on sorted inputs, filtering otherwise (Alg. 7/8 line 4).
template <class IndexT, class ValueT>
void slice_row_range(std::span<const ColumnView<IndexT, ValueT>> views,
                     IndexT r1, IndexT r2, bool inputs_sorted,
                     ThreadScratch<IndexT, ValueT>& scratch) {
  if (inputs_sorted) {
    scratch.part_views.clear();
    for (const auto& v : views) {
      auto sub = v.row_range(r1, r2);
      if (!sub.empty()) scratch.part_views.push_back(sub);
    }
  } else {
    filter_range(views, r1, r2, scratch.rows_scratch, scratch.vals_scratch,
                 scratch.bounds, scratch.part_views);
  }
}

}  // namespace detail

/// Alg. 7 for one column: plain hash symbolic when the table fits the cache
/// budget, otherwise slide over `parts` row ranges. Scratch is the shared
/// per-thread superset (symbolic uses its sym_table + view buffers).
template <class IndexT, class ValueT>
std::size_t sliding_symbolic_column(
    std::span<const ColumnView<IndexT, ValueT>> views, IndexT rows,
    std::size_t cap_entries, bool inputs_sorted,
    ThreadScratch<IndexT, ValueT>& scratch, OpCounters* counters) {
  std::size_t inz = 0;
  for (const auto& v : views) inz += v.nnz();
  if (inz == 0) return 0;
  const std::size_t parts = util::ceil_div(inz, cap_entries);
  if (parts <= 1)
    return hash_symbolic_column(views, scratch.sym_table, counters);

  std::size_t nz = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    const auto r1 = static_cast<IndexT>(
        static_cast<std::size_t>(rows) * p / parts);
    const auto r2 = static_cast<IndexT>(
        static_cast<std::size_t>(rows) * (p + 1) / parts);
    detail::slice_row_range(views, r1, r2, inputs_sorted, scratch);
    nz += hash_symbolic_column(
        std::span<const ColumnView<IndexT, ValueT>>(scratch.part_views),
        scratch.sym_table, counters);
  }
  return nz;
}

/// Alg. 8 for one column: partition by the column's *output* nnz (known
/// from the symbolic phase) so each numeric table fits the `cap_entries`
/// cache budget, then HASHADD each row-range part in ascending order.
/// Tables are sized from the part's own keys-only symbolic count — 2-3x
/// smaller than the input-nnz bound when cf > 1, the effect the paper
/// highlights for Eukarya. Returns entries written (== out_nnz).
template <class IndexT, class ValueT>
std::size_t sliding_hash_add_column(
    std::span<const ColumnView<IndexT, ValueT>> views, std::size_t out_nnz,
    IndexT rows, std::size_t cap_entries, bool inputs_sorted,
    bool sorted_output, ThreadScratch<IndexT, ValueT>& scratch,
    IndexT* out_rows, ValueT* out_vals, OpCounters* counters = nullptr) {
  if (out_nnz == 0) return 0;
  const std::size_t parts = util::ceil_div(out_nnz, cap_entries);
  if (parts <= 1)
    return hash_add_column(views, out_nnz, scratch.table, out_rows, out_vals,
                           sorted_output, counters);
  std::size_t written = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    const auto r1 = static_cast<IndexT>(
        static_cast<std::size_t>(rows) * p / parts);
    const auto r2 = static_cast<IndexT>(
        static_cast<std::size_t>(rows) * (p + 1) / parts);
    detail::slice_row_range(views, r1, r2, inputs_sorted, scratch);
    if (scratch.part_views.empty()) continue;
    const std::span<const ColumnView<IndexT, ValueT>> pviews(
        scratch.part_views);
    const std::size_t part_onz =
        hash_symbolic_column(pviews, scratch.sym_table, counters);
    written += hash_add_column(pviews, part_onz, scratch.table,
                               out_rows + written, out_vals + written,
                               sorted_output, counters);
  }
  return written;
}

// ---------------------------------------------------------------------------
// ColumnKernel — the uniform per-column dispatch layer
// ---------------------------------------------------------------------------

/// The four column-loop kernels behind one dispatch tag. This is the unit
/// Method::Hybrid selects per nnz-balanced column chunk (the whole-matrix
/// methods Heap/Spa/Hash/SlidingHash are the degenerate "same kernel for
/// every chunk" points of the same surface).
enum class ColumnKernel : std::uint8_t { Heap, Spa, Hash, SlidingHash };

[[nodiscard]] inline const char* column_kernel_name(ColumnKernel k) {
  switch (k) {
    case ColumnKernel::Heap: return "heap";
    case ColumnKernel::Spa: return "spa";
    case ColumnKernel::Hash: return "hash";
    case ColumnKernel::SlidingHash: return "sliding";
  }
  return "?";
}

/// Inverse of column_kernel_name(); same parsing/throwing contract as
/// method_from_name() (case- and punctuation-insensitive; defined in
/// method.cpp).
[[nodiscard]] ColumnKernel column_kernel_from_name(const std::string& name);

/// Record one chunk dispatched to kernel `k` (hybrid observability).
inline void count_chunk(OpCounters& counters, ColumnKernel k) {
  switch (k) {
    case ColumnKernel::Heap: ++counters.chunks_heap; break;
    case ColumnKernel::Spa: ++counters.chunks_spa; break;
    case ColumnKernel::Hash: ++counters.chunks_hash; break;
    case ColumnKernel::SlidingHash: ++counters.chunks_sliding; break;
  }
}

/// Per-call constants the uniform kernel interface needs beyond the views
/// themselves: the matrix row count (SPA sizing, sliding partitions), the
/// cache-derived sliding table budgets, and the sortedness contract.
template <class IndexT>
struct KernelEnv {
  IndexT rows = 0;
  std::size_t sym_cap = 0;  ///< sliding symbolic entry budget per thread
  std::size_t num_cap = 0;  ///< sliding numeric entry budget per thread
  bool inputs_sorted = true;
  bool sorted_output = true;
};

/// Uniform symbolic phase: nnz of the added column under kernel `k`.
/// Heap/SPA/Hash chunks count with the plain hash symbolic (Alg. 6);
/// sliding chunks use the cache-capped partition (Alg. 7).
template <class IndexT, class ValueT>
std::size_t kernel_symbolic_column(
    ColumnKernel k, std::span<const ColumnView<IndexT, ValueT>> views,
    const KernelEnv<IndexT>& env, ThreadScratch<IndexT, ValueT>& scratch,
    OpCounters* counters = nullptr) {
  if (k == ColumnKernel::SlidingHash)
    return sliding_symbolic_column(views, env.rows, env.sym_cap,
                                   env.inputs_sorted, scratch, counters);
  return hash_symbolic_column(views, scratch.sym_table, counters);
}

/// Uniform numeric phase: add the column under kernel `k` into
/// (out_rows, out_vals), which must hold `expected_nnz` entries (the
/// symbolic result). Returns entries written (== expected_nnz).
template <class IndexT, class ValueT>
std::size_t kernel_numeric_column(
    ColumnKernel k, std::span<const ColumnView<IndexT, ValueT>> views,
    std::size_t expected_nnz, const KernelEnv<IndexT>& env,
    ThreadScratch<IndexT, ValueT>& scratch, IndexT* out_rows,
    ValueT* out_vals, OpCounters* counters = nullptr) {
  switch (k) {
    case ColumnKernel::Heap:
      return heap_add_column(views, scratch.heap, out_rows, out_vals,
                             counters);
    case ColumnKernel::Spa:
      scratch.spa.ensure_rows(static_cast<std::size_t>(env.rows));
      return spa_add_column(views, scratch.spa, out_rows, out_vals,
                            env.sorted_output, counters);
    case ColumnKernel::Hash:
      return hash_add_column(views, expected_nnz, scratch.table, out_rows,
                             out_vals, env.sorted_output, counters);
    case ColumnKernel::SlidingHash:
      return sliding_hash_add_column(views, expected_nnz, env.rows,
                                     env.num_cap, env.inputs_sorted,
                                     env.sorted_output, scratch, out_rows,
                                     out_vals, counters);
  }
  return 0;  // unreachable
}

}  // namespace spkadd::core
