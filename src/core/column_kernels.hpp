// Sequential per-column kernels — the building blocks of every SpKAdd
// algorithm. Each kernel adds the jth columns of all k inputs into the jth
// output column; the drivers in this module's siblings run them inside a
// column-parallel OpenMP loop on thread-private workspaces (paper §III-A).
//
//   merge2_*           ColAdd of Alg. 1 (2-way merge of sorted columns)
//   heap_add_column    Alg. 3 (k-way min-heap merge)
//   spa_add_column     Alg. 4 (sparse accumulator)
//   hash_symbolic_column  Alg. 6 (count nnz(B(:,j)))
//   hash_add_column    Alg. 5 (hash-table accumulation)
//
// All kernels optionally count operations into an OpCounters for the
// Table I complexity bench.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>

#include "core/options.hpp"
#include "core/workspace.hpp"
#include "matrix/column_view.hpp"
#include "util/bit_ops.hpp"
#include "util/radix_sort.hpp"

namespace spkadd::core {

/// Multiplicative masking hash of the paper: h = (a * r) & (2^q - 1) with a
/// prime multiplier (Knuth's 2654435761). `mask` must be 2^q - 1.
template <class IndexT>
[[nodiscard]] inline std::size_t hash_index(IndexT r, std::size_t mask) {
  return (static_cast<std::size_t>(static_cast<std::uint64_t>(r) *
                                   2654435761ULL)) &
         mask;
}

// ---------------------------------------------------------------------------
// 2-way merge (ColAdd)
// ---------------------------------------------------------------------------

/// Count the merged size of two sorted columns (symbolic ColAdd).
template <class IndexT, class ValueT>
[[nodiscard]] std::size_t merge2_count(const ColumnView<IndexT, ValueT>& a,
                                       const ColumnView<IndexT, ValueT>& b,
                                       OpCounters* counters = nullptr) {
  std::size_t ia = 0, ib = 0, out = 0;
  while (ia < a.nnz() && ib < b.nnz()) {
    const IndexT ra = a.rows[ia];
    const IndexT rb = b.rows[ib];
    ia += (ra <= rb);
    ib += (rb <= ra);
    ++out;
  }
  out += (a.nnz() - ia) + (b.nnz() - ib);
  if (counters) counters->merge_ops += a.nnz() + b.nnz();
  return out;
}

/// Merge-add two sorted columns into (out_rows, out_vals); returns the
/// number of entries written. Output arrays must have room for
/// a.nnz() + b.nnz() in the worst case.
template <class IndexT, class ValueT>
std::size_t merge2_add(const ColumnView<IndexT, ValueT>& a,
                       const ColumnView<IndexT, ValueT>& b, IndexT* out_rows,
                       ValueT* out_vals, OpCounters* counters = nullptr) {
  std::size_t ia = 0, ib = 0, out = 0;
  while (ia < a.nnz() && ib < b.nnz()) {
    const IndexT ra = a.rows[ia];
    const IndexT rb = b.rows[ib];
    if (ra < rb) {
      out_rows[out] = ra;
      out_vals[out++] = a.vals[ia++];
    } else if (rb < ra) {
      out_rows[out] = rb;
      out_vals[out++] = b.vals[ib++];
    } else {
      out_rows[out] = ra;
      out_vals[out++] = a.vals[ia++] + b.vals[ib++];
    }
  }
  for (; ia < a.nnz(); ++ia) {
    out_rows[out] = a.rows[ia];
    out_vals[out++] = a.vals[ia];
  }
  for (; ib < b.nnz(); ++ib) {
    out_rows[out] = b.rows[ib];
    out_vals[out++] = b.vals[ib];
  }
  if (counters) counters->merge_ops += a.nnz() + b.nnz();
  return out;
}

// ---------------------------------------------------------------------------
// k-way heap merge (Alg. 3)
// ---------------------------------------------------------------------------

/// k-way merge-add of sorted columns through a binary min-heap keyed on
/// (row, source) — ties on row resolve in input order, so equal-row values
/// accumulate strictly left to right. That makes the floating-point result a
/// pure left fold over the inputs, which is what lets a streaming reducer
/// (running sum first, then the staged addends in arrival order) reproduce
/// the one-shot k-way result bit for bit. Output is sorted by construction.
/// Returns entries written; output arrays must hold sum of input nnz in the
/// worst case.
template <class IndexT, class ValueT>
std::size_t heap_add_column(std::span<const ColumnView<IndexT, ValueT>> cols,
                            HeapWorkspace<IndexT>& ws, IndexT* out_rows,
                            ValueT* out_vals, OpCounters* counters = nullptr) {
  using Node = typename HeapWorkspace<IndexT>::Node;
  ws.ensure_k(cols.size());
  ws.nodes.clear();
  std::uint64_t ops = 0;

  // Lines 3-5: seed the heap with the first entry of each column.
  for (std::size_t i = 0; i < cols.size(); ++i) {
    ws.cursor[i] = 0;
    if (!cols[i].empty())
      ws.nodes.push_back(Node{cols[i].rows[0], static_cast<std::int32_t>(i)});
  }
  // (row, source) lexicographic order: `before(x, y)` means x pops first.
  auto before = [](const Node& x, const Node& y) {
    return x.row < y.row || (x.row == y.row && x.source < y.source);
  };
  auto less = [&before](const Node& x, const Node& y) { return before(y, x); };
  std::make_heap(ws.nodes.begin(), ws.nodes.end(), less);
  ops += ws.nodes.size();

  std::size_t out = 0;
  while (!ws.nodes.empty()) {
    const Node top = ws.nodes.front();
    const auto src = static_cast<std::size_t>(top.source);
    const ValueT v = cols[src].vals[ws.cursor[src]];
    // Lines 8-11: extend or accumulate into the (sorted) output tail.
    if (out > 0 && out_rows[out - 1] == top.row) {
      out_vals[out - 1] += v;
    } else {
      out_rows[out] = top.row;
      out_vals[out++] = v;
    }
    // Lines 12-14: replace the root with the source's next entry (replace +
    // sift-down rather than pop+push: one O(lg k) operation per element).
    const std::size_t next = ++ws.cursor[src];
    if (next < cols[src].nnz()) {
      ws.nodes.front().row = cols[src].rows[next];
      // sift down (counting one op per level, the lg k factor of Table I)
      std::size_t hole = 0;
      const std::size_t n = ws.nodes.size();
      const Node item = ws.nodes[0];
      for (;;) {
        std::size_t child = 2 * hole + 1;
        if (child >= n) break;
        ++ops;
        if (child + 1 < n && before(ws.nodes[child + 1], ws.nodes[child]))
          ++child;
        if (!before(ws.nodes[child], item)) break;
        ws.nodes[hole] = ws.nodes[child];
        hole = child;
      }
      ws.nodes[hole] = item;
    } else {
      ops += ws.nodes.empty()
                 ? 0
                 : util::log2_floor(
                       static_cast<std::uint64_t>(ws.nodes.size())) +
                       1;
      std::pop_heap(ws.nodes.begin(), ws.nodes.end(), less);
      ws.nodes.pop_back();
    }
    ++ops;
  }
  if (counters) counters->heap_ops += ops;
  return out;
}

// ---------------------------------------------------------------------------
// SPA (Alg. 4)
// ---------------------------------------------------------------------------

/// Accumulate k columns through a dense sparse accumulator; works on sorted
/// or unsorted inputs. When `sorted_output`, the touched-row list is sorted
/// before emission (Alg. 4 line 8). Returns entries written.
template <class IndexT, class ValueT>
std::size_t spa_add_column(std::span<const ColumnView<IndexT, ValueT>> cols,
                           SpaWorkspace<IndexT, ValueT>& ws, IndexT* out_rows,
                           ValueT* out_vals, bool sorted_output,
                           OpCounters* counters = nullptr) {
  ws.new_column();
  std::uint64_t touches = 0;
  for (const auto& col : cols) {
    for (std::size_t i = 0; i < col.nnz(); ++i)
      ws.add(col.rows[i], col.vals[i]);
    touches += col.nnz();
  }
  if (sorted_output) {
    thread_local std::vector<IndexT> sort_scratch;
    util::radix_sort_keys(ws.touched.data(), ws.touched.size(), sort_scratch);
  }
  std::size_t out = 0;
  for (const IndexT r : ws.touched) {
    out_rows[out] = r;
    out_vals[out++] = ws.values[static_cast<std::size_t>(r)];
  }
  if (counters) counters->spa_touches += touches + ws.touched.size();
  return out;
}

/// Symbolic SPA: count distinct row indices (used when the SPA driver needs
/// exact output sizes without a hash table).
template <class IndexT, class ValueT>
std::size_t spa_symbolic_column(
    std::span<const ColumnView<IndexT, ValueT>> cols,
    SpaWorkspace<IndexT, ValueT>& ws, OpCounters* counters = nullptr) {
  ws.new_column();
  std::uint64_t touches = 0;
  for (const auto& col : cols) {
    for (std::size_t i = 0; i < col.nnz(); ++i) ws.add(col.rows[i], ValueT{});
    touches += col.nnz();
  }
  if (counters) counters->spa_touches += touches;
  return ws.touched.size();
}

// ---------------------------------------------------------------------------
// Hash (Alg. 5 / Alg. 6)
// ---------------------------------------------------------------------------

/// Alg. 6: count nnz of the added column with a keys-only hash table sized
/// by the total input nnz of this column (upper bound on distinct rows).
template <class IndexT, class ValueT>
std::size_t hash_symbolic_column(
    std::span<const ColumnView<IndexT, ValueT>> cols,
    SymbolicHashWorkspace<IndexT>& ws, OpCounters* counters = nullptr) {
  std::size_t input_nnz = 0;
  for (const auto& col : cols) input_nnz += col.nnz();
  if (input_nnz == 0) return 0;
  const std::size_t entries = hash_table_entries(input_nnz);
  ws.reset(entries);

  std::uint64_t probes = 0;
  std::size_t nz = 0;
  for (const auto& col : cols) {
    for (std::size_t i = 0; i < col.nnz(); ++i) {
      const IndexT r = col.rows[i];
      std::size_t h = hash_index(r, ws.mask);
      for (;;) {
        ++probes;
        if (ws.keys[h] == SymbolicHashWorkspace<IndexT>::kEmpty) {
          ws.keys[h] = r;
          ++nz;
          break;
        }
        if (ws.keys[h] == r) break;
        h = (h + 1) & ws.mask;  // linear probing
      }
    }
  }
  if (counters) {
    counters->hash_probes += probes;
    counters->table_inits += entries;
  }
  return nz;
}

/// Alg. 5: accumulate k columns into a hash table sized by `expected_nnz`
/// (the symbolic result), then emit. Works on sorted or unsorted inputs.
/// Returns entries written (== expected_nnz).
template <class IndexT, class ValueT>
std::size_t hash_add_column(std::span<const ColumnView<IndexT, ValueT>> cols,
                            std::size_t expected_nnz,
                            HashWorkspace<IndexT, ValueT>& ws,
                            IndexT* out_rows, ValueT* out_vals,
                            bool sorted_output,
                            OpCounters* counters = nullptr) {
  if (expected_nnz == 0) return 0;
  const std::size_t entries = hash_table_entries(expected_nnz);
  ws.reset(entries);

  std::uint64_t probes = 0;
  for (const auto& col : cols) {
    for (std::size_t i = 0; i < col.nnz(); ++i) {
      const IndexT r = col.rows[i];
      const ValueT v = col.vals[i];
      std::size_t h = hash_index(r, ws.mask);
      for (;;) {
        ++probes;
        if (ws.keys[h] == HashWorkspace<IndexT, ValueT>::kEmpty) {
          ws.keys[h] = r;
          ws.vals[h] = v;
          break;
        }
        if (ws.keys[h] == r) {
          ws.vals[h] += v;
          break;
        }
        h = (h + 1) & ws.mask;
      }
    }
  }

  // Lines 13-14: sweep valid slots into the output...
  std::size_t out = 0;
  for (std::size_t h = 0; h < entries; ++h) {
    if (ws.keys[h] != HashWorkspace<IndexT, ValueT>::kEmpty) {
      out_rows[out] = ws.keys[h];
      out_vals[out++] = ws.vals[h];
    }
  }
  // ...then sort if the caller wants canonical columns (line 15). Radix
  // sort: comparison sorting would dominate the numeric phase on dense
  // columns (see util/radix_sort.hpp).
  if (sorted_output && out > 1) {
    thread_local util::RadixScratch<IndexT, ValueT> sort_scratch;
    util::radix_sort_pairs(out_rows, out_vals, out, sort_scratch);
  }
  if (counters) {
    counters->hash_probes += probes;
    counters->table_inits += entries;
  }
  return out;
}

}  // namespace spkadd::core
