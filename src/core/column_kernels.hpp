// Sequential per-column kernels — the building blocks of every SpKAdd
// algorithm. Each kernel adds the jth columns of all k inputs into the jth
// output column; the drivers in this module's siblings run them inside a
// column-parallel OpenMP loop on thread-private workspaces (paper §III-A).
//
//   merge2_*           ColAdd of Alg. 1 (2-way merge of sorted columns)
//   heap_add_column    Alg. 3 (k-way min-heap merge)
//   spa_add_column     Alg. 4 (sparse accumulator)
//   hash_symbolic_column  Alg. 6 (count nnz(B(:,j)))
//   hash_add_column    Alg. 5 (hash-table accumulation)
//   sliding_symbolic_column   Alg. 7 (cache-capped symbolic partition)
//   sliding_hash_add_column   Alg. 8 (cache-capped numeric partition)
//   dense_symbolic_column     occupancy-bitmap distinct-row count
//   dense_add_column   dense bitmap accumulation with SIMD dense adds
//
// The ColumnKernel layer at the bottom exposes all of them behind one
// uniform symbolic/numeric per-column interface — the dispatch unit of
// Method::Hybrid, whose driver picks a kernel per nnz-balanced column
// chunk instead of per call. Every kernel accumulates equal-row values
// strictly left to right over the inputs, so any per-chunk mix of them
// is bit-identical to any single kernel run over the whole matrix.
//
// All kernels optionally count operations into an OpCounters for the
// Table I complexity bench.
#pragma once

#include <algorithm>
#include <bit>
#include <cstdint>
#include <span>

#include "core/dense_simd.hpp"
#include "core/options.hpp"
#include "core/workspace.hpp"
#include "matrix/column_view.hpp"
#include "util/bit_ops.hpp"
#include "util/radix_sort.hpp"

namespace spkadd::core {

/// Multiplicative masking hash of the paper: h = (a * r) & (2^q - 1) with a
/// prime multiplier (Knuth's 2654435761). `mask` must be 2^q - 1.
template <class IndexT>
[[nodiscard]] inline std::size_t hash_index(IndexT r, std::size_t mask) {
  return (static_cast<std::size_t>(static_cast<std::uint64_t>(r) *
                                   2654435761ULL)) &
         mask;
}

// ---------------------------------------------------------------------------
// 2-way merge (ColAdd)
// ---------------------------------------------------------------------------

/// Count the merged size of two sorted columns (symbolic ColAdd).
template <class IndexT, class ValueT>
[[nodiscard]] std::size_t merge2_count(const ColumnView<IndexT, ValueT>& a,
                                       const ColumnView<IndexT, ValueT>& b,
                                       OpCounters* counters = nullptr) {
  std::size_t ia = 0, ib = 0, out = 0;
  while (ia < a.nnz() && ib < b.nnz()) {
    const IndexT ra = a.rows[ia];
    const IndexT rb = b.rows[ib];
    ia += (ra <= rb);
    ib += (rb <= ra);
    ++out;
  }
  out += (a.nnz() - ia) + (b.nnz() - ib);
  if (counters) counters->merge_ops += a.nnz() + b.nnz();
  return out;
}

/// Merge-add two sorted columns into (out_rows, out_vals); returns the
/// number of entries written. Output arrays must have room for
/// a.nnz() + b.nnz() in the worst case.
template <class IndexT, class ValueT>
std::size_t merge2_add(const ColumnView<IndexT, ValueT>& a,
                       const ColumnView<IndexT, ValueT>& b, IndexT* out_rows,
                       ValueT* out_vals, OpCounters* counters = nullptr) {
  std::size_t ia = 0, ib = 0, out = 0;
  while (ia < a.nnz() && ib < b.nnz()) {
    const IndexT ra = a.rows[ia];
    const IndexT rb = b.rows[ib];
    if (ra < rb) {
      out_rows[out] = ra;
      out_vals[out++] = a.vals[ia++];
    } else if (rb < ra) {
      out_rows[out] = rb;
      out_vals[out++] = b.vals[ib++];
    } else {
      out_rows[out] = ra;
      out_vals[out++] = a.vals[ia++] + b.vals[ib++];
    }
  }
  for (; ia < a.nnz(); ++ia) {
    out_rows[out] = a.rows[ia];
    out_vals[out++] = a.vals[ia];
  }
  for (; ib < b.nnz(); ++ib) {
    out_rows[out] = b.rows[ib];
    out_vals[out++] = b.vals[ib];
  }
  if (counters) counters->merge_ops += a.nnz() + b.nnz();
  return out;
}

// ---------------------------------------------------------------------------
// k-way heap merge (Alg. 3)
// ---------------------------------------------------------------------------

/// k-way merge-add of sorted columns through a binary min-heap keyed on
/// (row, source) — ties on row resolve in input order, so equal-row values
/// accumulate strictly left to right. That makes the floating-point result a
/// pure left fold over the inputs, which is what lets a streaming reducer
/// (running sum first, then the staged addends in arrival order) reproduce
/// the one-shot k-way result bit for bit. Output is sorted by construction.
/// Returns entries written; output arrays must hold sum of input nnz in the
/// worst case.
template <class IndexT, class ValueT>
std::size_t heap_add_column(std::span<const ColumnView<IndexT, ValueT>> cols,
                            HeapWorkspace<IndexT>& ws, IndexT* out_rows,
                            ValueT* out_vals, OpCounters* counters = nullptr) {
  using Node = typename HeapWorkspace<IndexT>::Node;
  ws.ensure_k(cols.size());
  ws.nodes.clear();
  std::uint64_t ops = 0;

  // Lines 3-5: seed the heap with the first entry of each column.
  for (std::size_t i = 0; i < cols.size(); ++i) {
    ws.cursor[i] = 0;
    if (!cols[i].empty())
      ws.nodes.push_back(Node{cols[i].rows[0], static_cast<std::int32_t>(i)});
  }
  // (row, source) lexicographic order: `before(x, y)` means x pops first.
  auto before = [](const Node& x, const Node& y) {
    return x.row < y.row || (x.row == y.row && x.source < y.source);
  };
  auto less = [&before](const Node& x, const Node& y) { return before(y, x); };
  std::make_heap(ws.nodes.begin(), ws.nodes.end(), less);
  ops += ws.nodes.size();

  std::size_t out = 0;
  while (!ws.nodes.empty()) {
    const Node top = ws.nodes.front();
    const auto src = static_cast<std::size_t>(top.source);
    const ValueT v = cols[src].vals[ws.cursor[src]];
    // Lines 8-11: extend or accumulate into the (sorted) output tail.
    if (out > 0 && out_rows[out - 1] == top.row) {
      out_vals[out - 1] += v;
    } else {
      out_rows[out] = top.row;
      out_vals[out++] = v;
    }
    // Lines 12-14: replace the root with the source's next entry (replace +
    // sift-down rather than pop+push: one O(lg k) operation per element).
    const std::size_t next = ++ws.cursor[src];
    if (next < cols[src].nnz()) {
      ws.nodes.front().row = cols[src].rows[next];
      // sift down (counting one op per level, the lg k factor of Table I)
      std::size_t hole = 0;
      const std::size_t n = ws.nodes.size();
      const Node item = ws.nodes[0];
      for (;;) {
        std::size_t child = 2 * hole + 1;
        if (child >= n) break;
        ++ops;
        if (child + 1 < n && before(ws.nodes[child + 1], ws.nodes[child]))
          ++child;
        if (!before(ws.nodes[child], item)) break;
        ws.nodes[hole] = ws.nodes[child];
        hole = child;
      }
      ws.nodes[hole] = item;
    } else {
      ops += ws.nodes.empty()
                 ? 0
                 : util::log2_floor(
                       static_cast<std::uint64_t>(ws.nodes.size())) +
                       1;
      std::pop_heap(ws.nodes.begin(), ws.nodes.end(), less);
      ws.nodes.pop_back();
    }
    ++ops;
  }
  if (counters) counters->heap_ops += ops;
  return out;
}

// ---------------------------------------------------------------------------
// SPA (Alg. 4)
// ---------------------------------------------------------------------------

/// Accumulate k columns through a dense sparse accumulator; works on sorted
/// or unsorted inputs. When `sorted_output`, the touched-row list is sorted
/// before emission (Alg. 4 line 8). Returns entries written.
template <class IndexT, class ValueT>
std::size_t spa_add_column(std::span<const ColumnView<IndexT, ValueT>> cols,
                           SpaWorkspace<IndexT, ValueT>& ws, IndexT* out_rows,
                           ValueT* out_vals, bool sorted_output,
                           OpCounters* counters = nullptr) {
  ws.new_column();
  std::uint64_t touches = 0;
  for (const auto& col : cols) {
    for (std::size_t i = 0; i < col.nnz(); ++i)
      ws.add(col.rows[i], col.vals[i]);
    touches += col.nnz();
  }
  if (sorted_output) {
    thread_local std::vector<IndexT> sort_scratch;
    util::radix_sort_keys(ws.touched.data(), ws.touched.size(), sort_scratch);
  }
  std::size_t out = 0;
  for (const IndexT r : ws.touched) {
    out_rows[out] = r;
    out_vals[out++] = ws.values[static_cast<std::size_t>(r)];
  }
  if (counters) counters->spa_touches += touches + ws.touched.size();
  return out;
}

/// Symbolic SPA: count distinct row indices (used when the SPA driver needs
/// exact output sizes without a hash table).
template <class IndexT, class ValueT>
std::size_t spa_symbolic_column(
    std::span<const ColumnView<IndexT, ValueT>> cols,
    SpaWorkspace<IndexT, ValueT>& ws, OpCounters* counters = nullptr) {
  ws.new_column();
  std::uint64_t touches = 0;
  for (const auto& col : cols) {
    for (std::size_t i = 0; i < col.nnz(); ++i) ws.add(col.rows[i], ValueT{});
    touches += col.nnz();
  }
  if (counters) counters->spa_touches += touches;
  return ws.touched.size();
}

// ---------------------------------------------------------------------------
// Hash (Alg. 5 / Alg. 6)
// ---------------------------------------------------------------------------

/// Alg. 6: count nnz of the added column with a keys-only hash table sized
/// by the total input nnz of this column (upper bound on distinct rows).
template <class IndexT, class ValueT>
std::size_t hash_symbolic_column(
    std::span<const ColumnView<IndexT, ValueT>> cols,
    SymbolicHashWorkspace<IndexT>& ws, OpCounters* counters = nullptr) {
  std::size_t input_nnz = 0;
  for (const auto& col : cols) input_nnz += col.nnz();
  if (input_nnz == 0) return 0;
  const std::size_t entries = hash_table_entries(input_nnz);
  ws.reset(entries);

  std::uint64_t probes = 0;
  std::size_t nz = 0;
  for (const auto& col : cols) {
    for (std::size_t i = 0; i < col.nnz(); ++i) {
      const IndexT r = col.rows[i];
      std::size_t h = hash_index(r, ws.mask);
      for (;;) {
        ++probes;
        if (ws.keys[h] == SymbolicHashWorkspace<IndexT>::kEmpty) {
          ws.keys[h] = r;
          ++nz;
          break;
        }
        if (ws.keys[h] == r) break;
        h = (h + 1) & ws.mask;  // linear probing
      }
    }
  }
  if (counters) {
    counters->hash_probes += probes;
    counters->table_inits += entries;
  }
  return nz;
}

/// Alg. 5: accumulate k columns into a hash table sized by `expected_nnz`
/// (the symbolic result), then emit. Works on sorted or unsorted inputs.
/// Returns entries written (== expected_nnz).
template <class IndexT, class ValueT>
std::size_t hash_add_column(std::span<const ColumnView<IndexT, ValueT>> cols,
                            std::size_t expected_nnz,
                            HashWorkspace<IndexT, ValueT>& ws,
                            IndexT* out_rows, ValueT* out_vals,
                            bool sorted_output,
                            OpCounters* counters = nullptr) {
  if (expected_nnz == 0) return 0;
  const std::size_t entries = hash_table_entries(expected_nnz);
  ws.reset(entries);

  std::uint64_t probes = 0;
  for (const auto& col : cols) {
    for (std::size_t i = 0; i < col.nnz(); ++i) {
      const IndexT r = col.rows[i];
      const ValueT v = col.vals[i];
      std::size_t h = hash_index(r, ws.mask);
      for (;;) {
        ++probes;
        if (ws.keys[h] == HashWorkspace<IndexT, ValueT>::kEmpty) {
          ws.keys[h] = r;
          ws.vals[h] = v;
          break;
        }
        if (ws.keys[h] == r) {
          ws.vals[h] += v;
          break;
        }
        h = (h + 1) & ws.mask;
      }
    }
  }

  // Lines 13-14: sweep valid slots into the output...
  std::size_t out = 0;
  for (std::size_t h = 0; h < entries; ++h) {
    if (ws.keys[h] != HashWorkspace<IndexT, ValueT>::kEmpty) {
      out_rows[out] = ws.keys[h];
      out_vals[out++] = ws.vals[h];
    }
  }
  // ...then sort if the caller wants canonical columns (line 15). Radix
  // sort: comparison sorting would dominate the numeric phase on dense
  // columns (see util/radix_sort.hpp).
  if (sorted_output && out > 1) {
    thread_local util::RadixScratch<IndexT, ValueT> sort_scratch;
    util::radix_sort_pairs(out_rows, out_vals, out, sort_scratch);
  }
  if (counters) {
    counters->hash_probes += probes;
    counters->table_inits += entries;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Sliding hash (Alg. 7 / Alg. 8)
// ---------------------------------------------------------------------------

namespace detail {

/// Filter the entries of `views` with row index in [r1, r2) into scratch
/// arrays and return views over the filtered copies. Used for sliding over
/// *unsorted* inputs, where binary-search slicing is unavailable.
template <class IndexT, class ValueT>
void filter_range(std::span<const ColumnView<IndexT, ValueT>> views, IndexT r1,
                  IndexT r2, std::vector<IndexT>& rows_scratch,
                  std::vector<ValueT>& vals_scratch,
                  std::vector<std::size_t>& bounds,
                  std::vector<ColumnView<IndexT, ValueT>>& out_views) {
  rows_scratch.clear();
  vals_scratch.clear();
  bounds.clear();
  bounds.push_back(0);
  for (const auto& v : views) {
    for (std::size_t i = 0; i < v.nnz(); ++i) {
      if (v.rows[i] >= r1 && v.rows[i] < r2) {
        rows_scratch.push_back(v.rows[i]);
        vals_scratch.push_back(v.vals[i]);
      }
    }
    bounds.push_back(rows_scratch.size());
  }
  out_views.clear();
  for (std::size_t s = 0; s + 1 < bounds.size(); ++s) {
    const std::size_t lo = bounds[s];
    const std::size_t len = bounds[s + 1] - lo;
    if (len == 0) continue;
    out_views.push_back(ColumnView<IndexT, ValueT>{
        std::span<const IndexT>(rows_scratch).subspan(lo, len),
        std::span<const ValueT>(vals_scratch).subspan(lo, len)});
  }
}

/// Slice `views` to the row range [r1, r2) into scratch.part_views —
/// binary search on sorted inputs, filtering otherwise (Alg. 7/8 line 4).
template <class IndexT, class ValueT>
void slice_row_range(std::span<const ColumnView<IndexT, ValueT>> views,
                     IndexT r1, IndexT r2, bool inputs_sorted,
                     ThreadScratch<IndexT, ValueT>& scratch) {
  if (inputs_sorted) {
    scratch.part_views.clear();
    for (const auto& v : views) {
      auto sub = v.row_range(r1, r2);
      if (!sub.empty()) scratch.part_views.push_back(sub);
    }
  } else {
    filter_range(views, r1, r2, scratch.rows_scratch, scratch.vals_scratch,
                 scratch.bounds, scratch.part_views);
  }
}

}  // namespace detail

/// Alg. 7 for one column: plain hash symbolic when the table fits the cache
/// budget, otherwise slide over `parts` row ranges. Scratch is the shared
/// per-thread superset (symbolic uses its sym_table + view buffers).
template <class IndexT, class ValueT>
std::size_t sliding_symbolic_column(
    std::span<const ColumnView<IndexT, ValueT>> views, IndexT rows,
    std::size_t cap_entries, bool inputs_sorted,
    ThreadScratch<IndexT, ValueT>& scratch, OpCounters* counters) {
  std::size_t inz = 0;
  for (const auto& v : views) inz += v.nnz();
  if (inz == 0) return 0;
  const std::size_t parts = util::ceil_div(inz, cap_entries);
  if (parts <= 1)
    return hash_symbolic_column(views, scratch.sym_table, counters);

  std::size_t nz = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    const auto r1 = static_cast<IndexT>(
        static_cast<std::size_t>(rows) * p / parts);
    const auto r2 = static_cast<IndexT>(
        static_cast<std::size_t>(rows) * (p + 1) / parts);
    detail::slice_row_range(views, r1, r2, inputs_sorted, scratch);
    nz += hash_symbolic_column(
        std::span<const ColumnView<IndexT, ValueT>>(scratch.part_views),
        scratch.sym_table, counters);
  }
  return nz;
}

/// Alg. 8 for one column: partition by the column's *output* nnz (known
/// from the symbolic phase) so each numeric table fits the `cap_entries`
/// cache budget, then HASHADD each row-range part in ascending order.
/// Tables are sized from the part's own keys-only symbolic count — 2-3x
/// smaller than the input-nnz bound when cf > 1, the effect the paper
/// highlights for Eukarya. Returns entries written (== out_nnz).
template <class IndexT, class ValueT>
std::size_t sliding_hash_add_column(
    std::span<const ColumnView<IndexT, ValueT>> views, std::size_t out_nnz,
    IndexT rows, std::size_t cap_entries, bool inputs_sorted,
    bool sorted_output, ThreadScratch<IndexT, ValueT>& scratch,
    IndexT* out_rows, ValueT* out_vals, OpCounters* counters = nullptr) {
  if (out_nnz == 0) return 0;
  const std::size_t parts = util::ceil_div(out_nnz, cap_entries);
  if (parts <= 1)
    return hash_add_column(views, out_nnz, scratch.table, out_rows, out_vals,
                           sorted_output, counters);
  std::size_t written = 0;
  for (std::size_t p = 0; p < parts; ++p) {
    const auto r1 = static_cast<IndexT>(
        static_cast<std::size_t>(rows) * p / parts);
    const auto r2 = static_cast<IndexT>(
        static_cast<std::size_t>(rows) * (p + 1) / parts);
    detail::slice_row_range(views, r1, r2, inputs_sorted, scratch);
    if (scratch.part_views.empty()) continue;
    const std::span<const ColumnView<IndexT, ValueT>> pviews(
        scratch.part_views);
    const std::size_t part_onz =
        hash_symbolic_column(pviews, scratch.sym_table, counters);
    written += hash_add_column(pviews, part_onz, scratch.table,
                               out_rows + written, out_vals + written,
                               sorted_output, counters);
  }
  return written;
}

// ---------------------------------------------------------------------------
// Dense accumulator (ColumnKernel::DenseAcc)
// ---------------------------------------------------------------------------

namespace detail {

/// True when `v` is the identity-dense column 0..rows-1 (one entry per
/// row, ascending) — the shape a fully dense addend or a promoted running
/// sum presents. Checked exactly with one vector-friendly pass rather
/// than inferred from nnz == rows: unsorted and duplicate-row columns are
/// legal inputs to the hash-family kernels, so a count alone proves
/// nothing.
template <class IndexT, class ValueT>
[[nodiscard]] inline bool is_identity_dense(
    const ColumnView<IndexT, ValueT>& v, IndexT rows) {
  const std::size_t n = v.nnz();
  if (n != static_cast<std::size_t>(rows) || n == 0) return false;
  if (v.rows[0] != 0 || v.rows[n - 1] != rows - 1) return false;
  for (std::size_t i = 0; i < n; ++i)
    if (v.rows[i] != static_cast<IndexT>(i)) return false;
  return true;
}

/// All-ones occupancy word for a word covering `len` rows (len in [1,64]).
[[nodiscard]] inline std::uint64_t dense_word_fill(std::size_t len) {
  return len >= 64 ? ~std::uint64_t{0}
                   : (std::uint64_t{1} << len) - 1;
}

}  // namespace detail

/// Symbolic phase of the dense kernel: count distinct rows through the
/// occupancy bitmap (sequential word access — on dense columns this beats
/// the random probes of the hash symbolic). Restores the workspace's
/// all-clear mask invariant by replaying the touched words.
template <class IndexT, class ValueT>
std::size_t dense_symbolic_column(
    std::span<const ColumnView<IndexT, ValueT>> cols, IndexT rows,
    DenseAccWorkspace<ValueT>& ws, OpCounters* counters = nullptr) {
  std::size_t inz = 0;
  for (const auto& v : cols) inz += v.nnz();
  if (inz == 0) return 0;
  ws.ensure_rows(static_cast<std::size_t>(rows));
  auto* mask = ws.mask.data();
  std::size_t nz = 0;
  for (const auto& v : cols) {
    for (std::size_t i = 0; i < v.nnz(); ++i) {
      const auto r = static_cast<std::size_t>(v.rows[i]);
      const std::uint64_t bit = std::uint64_t{1} << (r & 63);
      if (!(mask[r >> 6] & bit)) {
        mask[r >> 6] |= bit;
        ++nz;
      }
    }
  }
  // Only words an entry touched can hold set bits; zeroing them by replay
  // is O(input nnz), never O(rows/64).
  for (const auto& v : cols)
    for (std::size_t i = 0; i < v.nnz(); ++i)
      mask[static_cast<std::size_t>(v.rows[i]) >> 6] = 0;
  if (counters) counters->dense_touches += inz;
  return nz;
}

/// Numeric phase of the dense kernel: accumulate k columns into a dense
/// value array guarded by an occupancy bitmap (first touch assigns, later
/// touches add — the same strict left-fold per-element order as every
/// sparse kernel, so any mix stays bit-identical). Fully dense addends
/// take vectorized whole-column copy/add paths (simd::dense_*); emission
/// scans the bitmap ascending with a full-word fast path, so the output
/// is sorted *by construction* — no radix sort, which is the structural
/// win over the SPA on dense columns. Returns entries written.
template <class IndexT, class ValueT>
std::size_t dense_add_column(std::span<const ColumnView<IndexT, ValueT>> cols,
                             IndexT rows, DenseAccWorkspace<ValueT>& ws,
                             IndexT* out_rows, ValueT* out_vals,
                             OpCounters* counters = nullptr) {
  std::size_t inz = 0;
  for (const auto& v : cols) inz += v.nnz();
  if (inz == 0) return 0;
  const auto m = static_cast<std::size_t>(rows);
  ws.ensure_rows(m);
  const std::size_t words = (m + 63) / 64;
  auto* vals = ws.values.data();
  auto* mask = ws.mask.data();

  std::size_t filled = 0;              // distinct rows occupied so far
  std::size_t w_lo = words, w_hi = 0;  // touched word range

  for (const auto& v : cols) {
    if (detail::is_identity_dense(v, rows)) {
      const ValueT* src = v.vals.data();
      if (filled == 0) {
        simd::dense_copy(vals, src, m);
        for (std::size_t w = 0; w + 1 < words; ++w)
          mask[w] = ~std::uint64_t{0};
        mask[words - 1] = detail::dense_word_fill(m - (words - 1) * 64);
      } else if (filled == m) {
        simd::dense_add(vals, src, m);
      } else {
        // Partially filled running sum + fully dense addend: word at a
        // time, vector-adding saturated words, bit-merging the rest.
        for (std::size_t w = 0; w < words; ++w) {
          const std::size_t base = w * 64;
          const std::size_t len = std::min<std::size_t>(64, m - base);
          const std::uint64_t full = detail::dense_word_fill(len);
          if (mask[w] == full) {
            simd::dense_add(vals + base, src + base, len);
          } else {
            std::uint64_t bits = mask[w];
            for (std::size_t b = 0; b < len; ++b) {
              const std::size_t r = base + b;
              if (bits & (std::uint64_t{1} << b))
                vals[r] += src[r];
              else
                vals[r] = src[r];
            }
            mask[w] = full;
          }
        }
      }
      filled = m;
      w_lo = 0;
      w_hi = words - 1;
      continue;
    }
    // Sparse scatter — scalar, preserving the strict left-fold order.
    const std::size_t n = v.nnz();
    if (filled == m) {
      for (std::size_t i = 0; i < n; ++i)
        vals[static_cast<std::size_t>(v.rows[i])] += v.vals[i];
    } else {
      for (std::size_t i = 0; i < n; ++i) {
        const auto r = static_cast<std::size_t>(v.rows[i]);
        const std::size_t w = r >> 6;
        const std::uint64_t bit = std::uint64_t{1} << (r & 63);
        if (mask[w] & bit) {
          vals[r] += v.vals[i];
        } else {
          mask[w] |= bit;
          vals[r] = v.vals[i];
          ++filled;
          w_lo = std::min(w_lo, w);
          w_hi = std::max(w_hi, w);
        }
      }
    }
  }

  // Emission: ascending bitmap scan, zeroing words behind itself to
  // restore the workspace invariant.
  std::size_t out = 0;
  if (filled == m) {
    simd::iota_rows(out_rows, IndexT{0}, m);
    simd::dense_copy(out_vals, vals, m);
    out = m;
    for (std::size_t w = 0; w < words; ++w) mask[w] = 0;
  } else {
    for (std::size_t w = w_lo; w <= w_hi && w < words; ++w) {
      std::uint64_t bits = mask[w];
      if (bits == 0) continue;
      const std::size_t base = w * 64;
      if (bits == ~std::uint64_t{0}) {
        simd::iota_rows(out_rows + out, static_cast<IndexT>(base), 64);
        simd::dense_copy(out_vals + out, vals + base, 64);
        out += 64;
      } else {
        while (bits != 0) {
          const auto b =
              static_cast<std::size_t>(std::countr_zero(bits));
          out_rows[out] = static_cast<IndexT>(base + b);
          out_vals[out++] = vals[base + b];
          bits &= bits - 1;
        }
      }
      mask[w] = 0;
    }
  }
  if (counters) counters->dense_touches += inz + out;
  return out;
}

// ---------------------------------------------------------------------------
// ColumnKernel — the uniform per-column dispatch layer
// ---------------------------------------------------------------------------

/// The five column-loop kernels behind one dispatch tag. This is the unit
/// Method::Hybrid selects per nnz-balanced column chunk (the whole-matrix
/// methods Heap/Spa/Hash/SlidingHash/DenseAcc are the degenerate "same
/// kernel for every chunk" points of the same surface).
enum class ColumnKernel : std::uint8_t { Heap, Spa, Hash, SlidingHash,
                                         DenseAcc };

[[nodiscard]] inline const char* column_kernel_name(ColumnKernel k) {
  switch (k) {
    case ColumnKernel::Heap: return "heap";
    case ColumnKernel::Spa: return "spa";
    case ColumnKernel::Hash: return "hash";
    case ColumnKernel::SlidingHash: return "sliding";
    case ColumnKernel::DenseAcc: return "dense";
  }
  return "?";
}

/// Inverse of column_kernel_name(); same parsing/throwing contract as
/// method_from_name() (case- and punctuation-insensitive; defined in
/// method.cpp).
[[nodiscard]] ColumnKernel column_kernel_from_name(const std::string& name);

/// Record one chunk dispatched to kernel `k` (hybrid observability).
inline void count_chunk(OpCounters& counters, ColumnKernel k) {
  switch (k) {
    case ColumnKernel::Heap: ++counters.chunks_heap; break;
    case ColumnKernel::Spa: ++counters.chunks_spa; break;
    case ColumnKernel::Hash: ++counters.chunks_hash; break;
    case ColumnKernel::SlidingHash: ++counters.chunks_sliding; break;
    case ColumnKernel::DenseAcc: ++counters.chunks_dense; break;
  }
}

/// Per-call constants the uniform kernel interface needs beyond the views
/// themselves: the matrix row count (SPA sizing, sliding partitions), the
/// cache-derived sliding table budgets, and the sortedness contract.
template <class IndexT>
struct KernelEnv {
  IndexT rows = 0;
  std::size_t sym_cap = 0;  ///< sliding symbolic entry budget per thread
  std::size_t num_cap = 0;  ///< sliding numeric entry budget per thread
  bool inputs_sorted = true;
  bool sorted_output = true;
};

/// Uniform symbolic phase: nnz of the added column under kernel `k`.
/// Heap/SPA/Hash chunks count with the plain hash symbolic (Alg. 6);
/// sliding chunks use the cache-capped partition (Alg. 7); dense chunks
/// count through the occupancy bitmap.
template <class IndexT, class ValueT>
std::size_t kernel_symbolic_column(
    ColumnKernel k, std::span<const ColumnView<IndexT, ValueT>> views,
    const KernelEnv<IndexT>& env, ThreadScratch<IndexT, ValueT>& scratch,
    OpCounters* counters = nullptr) {
  if (k == ColumnKernel::SlidingHash)
    return sliding_symbolic_column(views, env.rows, env.sym_cap,
                                   env.inputs_sorted, scratch, counters);
  if (k == ColumnKernel::DenseAcc)
    return dense_symbolic_column(views, env.rows, scratch.dense, counters);
  return hash_symbolic_column(views, scratch.sym_table, counters);
}

/// Uniform numeric phase: add the column under kernel `k` into
/// (out_rows, out_vals), which must hold `expected_nnz` entries (the
/// symbolic result). Returns entries written (== expected_nnz).
template <class IndexT, class ValueT>
std::size_t kernel_numeric_column(
    ColumnKernel k, std::span<const ColumnView<IndexT, ValueT>> views,
    std::size_t expected_nnz, const KernelEnv<IndexT>& env,
    ThreadScratch<IndexT, ValueT>& scratch, IndexT* out_rows,
    ValueT* out_vals, OpCounters* counters = nullptr) {
  switch (k) {
    case ColumnKernel::Heap:
      return heap_add_column(views, scratch.heap, out_rows, out_vals,
                             counters);
    case ColumnKernel::Spa:
      scratch.spa.ensure_rows(static_cast<std::size_t>(env.rows));
      return spa_add_column(views, scratch.spa, out_rows, out_vals,
                            env.sorted_output, counters);
    case ColumnKernel::Hash:
      return hash_add_column(views, expected_nnz, scratch.table, out_rows,
                             out_vals, env.sorted_output, counters);
    case ColumnKernel::SlidingHash:
      return sliding_hash_add_column(views, expected_nnz, env.rows,
                                     env.num_cap, env.inputs_sorted,
                                     env.sorted_output, scratch, out_rows,
                                     out_vals, counters);
    case ColumnKernel::DenseAcc:
      return dense_add_column(views, env.rows, scratch.dense, out_rows,
                              out_vals, counters);
  }
  return 0;  // unreachable
}

}  // namespace spkadd::core
