// Shared plumbing for the SpKAdd drivers: input checking, the column-
// parallel loop with per-thread counter reduction, view gathering, and the
// per-column cost scan feeding the Auto prescan and nnz-balanced schedule.
//
// The drivers' primary signatures take *pointer* spans
// (span<const CscMatrix* const>) so callers that stream or batch addends —
// the Accumulator, batched SpKAdd — can fold borrowed matrices without deep
// copies. The helpers here are generic over both span flavors via deref().
#pragma once

#include "util/omp_compat.hpp"

#include <cstdint>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/options.hpp"
#include "matrix/csc.hpp"
#include "matrix/validate.hpp"

namespace spkadd::core {

/// Non-owning collection of conformant addends: the primary input type of
/// the core drivers. Batches and streamed addends are spans of borrowed
/// pointers, never copies.
template <class IndexT, class ValueT>
using MatrixPtrs = std::span<const CscMatrix<IndexT, ValueT>* const>;

namespace detail {

/// Uniform access for span<const CscMatrix> and span<const CscMatrix* const>
/// elements.
template <class IndexT, class ValueT>
[[nodiscard]] inline const CscMatrix<IndexT, ValueT>& deref(
    const CscMatrix<IndexT, ValueT>& m) {
  return m;
}
template <class IndexT, class ValueT>
[[nodiscard]] inline const CscMatrix<IndexT, ValueT>& deref(
    const CscMatrix<IndexT, ValueT>* m) {
  return *m;
}

/// Borrow every element of a value span as a pointer (k pointers — the
/// only per-call cost of the value-span convenience API).
template <class IndexT, class ValueT>
void borrow_all(std::span<const CscMatrix<IndexT, ValueT>> inputs,
                std::vector<const CscMatrix<IndexT, ValueT>*>& ptrs) {
  ptrs.clear();
  ptrs.reserve(inputs.size());
  for (const auto& m : inputs) ptrs.push_back(&m);
}

/// Reject shapes where a row index can alias the hash kernels' empty-slot
/// sentinel IndexT(-1) (the predicate lives in validate.hpp so validate()
/// and the drivers agree on which shapes are legal): the kernels key on
/// raw, unchecked row indices, and at the maximum unsigned row count an
/// off-by-one index equal to the sentinel is silently mis-accumulated
/// rather than detected.
template <class IndexT>
void check_sentinel_shape(IndexT rows) {
  if (shape_hits_hash_sentinel(rows))
    throw std::invalid_argument(
        "spkadd: row count reaches the hash empty-slot sentinel "
        "IndexT(-1); use a wider index type");
}

/// Throw unless all inputs share one shape (and that shape cannot collide
/// with the hash sentinel); returns (rows, cols).
template <class Element>
auto check_conformant(std::span<Element> inputs) {
  if (inputs.empty())
    throw std::invalid_argument("spkadd: empty input collection");
  const auto& first = deref(inputs.front());
  const auto rows = first.rows();
  const auto cols = first.cols();
  for (const auto& e : inputs) {
    const auto& m = deref(e);
    if (m.rows() != rows || m.cols() != cols)
      throw std::invalid_argument("spkadd: inputs are not conformant");
  }
  check_sentinel_shape(rows);
  return std::pair{rows, cols};
}

/// Throw unless every input has sorted columns (merge/heap precondition).
template <class Element>
void require_sorted_inputs(std::span<Element> inputs, const char* algo) {
  for (const auto& e : inputs)
    if (!deref(e).is_sorted())
      throw std::invalid_argument(std::string(algo) +
                                  ": requires sorted input columns "
                                  "(set Options::inputs_sorted or sort)");
}

/// Sum of input nnz (work/I-O accounting unit of Table I).
template <class Element>
std::size_t total_nnz(std::span<Element> inputs) {
  std::size_t t = 0;
  for (const auto& e : inputs) t += deref(e).nnz();
  return t;
}

/// One parallel O(k*n) pass over the per-column summed input nnz — the
/// cost model shared by the Auto prescan (max over columns decides hash vs
/// sliding hash), the symbolic phase and the nnz-balanced schedule. Stores
/// the per-column totals when `costs` is non-null; returns the maximum.
template <class Element>
std::uint64_t scan_column_input_nnz(std::span<Element> inputs,
                                    const Options& opts,
                                    std::vector<std::uint64_t>* costs) {
  using IndexT = std::decay_t<decltype(deref(inputs.front()).cols())>;
  const IndexT cols = inputs.empty() ? IndexT{0} : deref(inputs.front()).cols();
  if (costs) costs->assign(static_cast<std::size_t>(cols), 0);
  const int nthreads =
      opts.threads > 0 ? opts.threads : omp_get_max_threads();
  const std::uint8_t* skip = opts.skip_cols;
  std::uint64_t max_cost = 0;
#pragma omp parallel for num_threads(nthreads) schedule(static) \
    reduction(max : max_cost)
  for (IndexT j = 0; j < cols; ++j) {
    // Skipped (dense-resident) columns cost nothing: the fold never
    // gathers their views, so neither the schedule nor the Auto prescan
    // should weigh them.
    if (skip && skip[static_cast<std::size_t>(j)] != 0) continue;
    std::uint64_t t = 0;
    for (const auto& e : inputs)
      t += static_cast<std::uint64_t>(deref(e).col_nnz(j));
    if (costs) (*costs)[static_cast<std::size_t>(j)] = t;
    max_cost = std::max(max_cost, t);
  }
  return max_cost;
}

/// Fill `costs` with the per-column totals (scheduling + symbolic reuse).
template <class Element>
std::uint64_t column_input_nnz(std::span<Element> inputs, const Options& opts,
                               std::vector<std::uint64_t>& costs) {
  return scan_column_input_nnz(inputs, opts, &costs);
}

/// Max-only variant for callers that just need the heaviest column (the
/// standalone Auto prescan entry points): O(1) extra memory.
template <class Element>
std::uint64_t max_column_input_nnz(std::span<Element> inputs,
                                   const Options& opts) {
  return scan_column_input_nnz(inputs, opts, nullptr);
}

/// Greedily cut [0, n) into chunks of roughly equal summed cost, about
/// 8 chunks per thread so the dynamic chunk queue can still rebalance
/// stragglers. Zero-cost tails collapse into the final chunk.
template <class IndexT>
void balance_chunks(std::span<const std::uint64_t> costs, int nthreads,
                    std::vector<std::pair<IndexT, IndexT>>& chunks) {
  chunks.clear();
  const auto n = static_cast<IndexT>(costs.size());
  if (n == 0) return;
  std::uint64_t total = 0;
  for (const std::uint64_t c : costs) total += c;
  const auto target = static_cast<std::uint64_t>(
      std::max(1, nthreads) * 8);
  const std::uint64_t per = std::max<std::uint64_t>(1, total / target);
  IndexT begin = 0;
  std::uint64_t acc = 0;
  for (IndexT j = 0; j < n; ++j) {
    acc += costs[static_cast<std::size_t>(j)];
    if (acc >= per) {
      chunks.push_back({begin, static_cast<IndexT>(j + 1)});
      begin = static_cast<IndexT>(j + 1);
      acc = 0;
    }
  }
  if (begin < n) chunks.push_back({begin, n});
}

/// Column-parallel loop honoring Options::{threads, schedule}; `body` is
/// called as body(j, OpCounters*) where the counter pointer is thread-
/// private (or null when opts.counters is null) and reduced afterwards.
/// With Schedule::NnzBalanced and a cost vector sized to n, the columns are
/// pre-partitioned into cost-balanced chunks; otherwise NnzBalanced
/// degrades to the dynamic schedule.
template <class IndexT, class Body>
void for_each_column(IndexT n, const Options& opts,
                     std::span<const std::uint64_t> costs, Body&& body) {
  const int nthreads =
      opts.threads > 0 ? opts.threads : omp_get_max_threads();
  std::vector<OpCounters> per(static_cast<std::size_t>(nthreads));

  const bool balanced = opts.schedule == Schedule::NnzBalanced &&
                        costs.size() == static_cast<std::size_t>(n) && n > 0;
  if (balanced) {
    std::vector<std::pair<IndexT, IndexT>> chunks;
    balance_chunks(costs, nthreads, chunks);
    const auto nchunks = static_cast<std::int64_t>(chunks.size());
#pragma omp parallel num_threads(nthreads)
    {
      OpCounters* c =
          opts.counters
              ? &per[static_cast<std::size_t>(omp_get_thread_num())]
              : nullptr;
#pragma omp for schedule(dynamic, 1) nowait
      for (std::int64_t i = 0; i < nchunks; ++i)
        for (IndexT j = chunks[static_cast<std::size_t>(i)].first;
             j < chunks[static_cast<std::size_t>(i)].second; ++j)
          body(j, c);
    }
  } else {
    const bool dynamic = opts.schedule != Schedule::Static;
#pragma omp parallel num_threads(nthreads)
    {
      OpCounters* c =
          opts.counters
              ? &per[static_cast<std::size_t>(omp_get_thread_num())]
              : nullptr;
      if (dynamic) {
#pragma omp for schedule(dynamic, 8) nowait
        for (IndexT j = 0; j < n; ++j) body(j, c);
      } else {
#pragma omp for schedule(static) nowait
        for (IndexT j = 0; j < n; ++j) body(j, c);
      }
    }
  }
  if (opts.counters)
    for (const auto& c : per) *opts.counters += c;
}

template <class IndexT, class Body>
void for_each_column(IndexT n, const Options& opts, Body&& body) {
  for_each_column(n, opts, std::span<const std::uint64_t>{},
                  std::forward<Body>(body));
}

/// Chunk-parallel loop over pre-partitioned column ranges — the dispatch
/// unit of Method::Hybrid, whose chunks are already cost-balanced, so the
/// chunk queue is drained `dynamic,1` exactly like the NnzBalanced
/// schedule (Schedule::Static keeps a static split for the ablation
/// bench). `body` is called as body(chunk_index, OpCounters*) with the
/// same thread-private counter contract as for_each_column.
template <class IndexT, class Body>
void for_each_chunk(std::span<const std::pair<IndexT, IndexT>> chunks,
                    const Options& opts, Body&& body) {
  const int nthreads =
      opts.threads > 0 ? opts.threads : omp_get_max_threads();
  std::vector<OpCounters> per(static_cast<std::size_t>(nthreads));
  const auto nchunks = static_cast<std::int64_t>(chunks.size());
  const bool dynamic = opts.schedule != Schedule::Static;
#pragma omp parallel num_threads(nthreads)
  {
    OpCounters* c =
        opts.counters
            ? &per[static_cast<std::size_t>(omp_get_thread_num())]
            : nullptr;
    if (dynamic) {
#pragma omp for schedule(dynamic, 1) nowait
      for (std::int64_t i = 0; i < nchunks; ++i)
        body(static_cast<std::size_t>(i), c);
    } else {
#pragma omp for schedule(static) nowait
      for (std::int64_t i = 0; i < nchunks; ++i)
        body(static_cast<std::size_t>(i), c);
    }
  }
  if (opts.counters)
    for (const auto& c : per) *opts.counters += c;
}

/// Gather the jth column views of all inputs into `views` (reused scratch);
/// empty columns are skipped — they contribute nothing to any kernel. A
/// column masked by `skip` (Options::skip_cols, the Accumulator's
/// dense-resident mask) gathers NO views: every kernel then naturally
/// emits an empty output column, which is how the sparse fold excludes
/// dense-resident columns without per-driver special cases.
template <class Element, class IndexT, class ValueT>
void gather_views(std::span<Element> inputs, IndexT j,
                  std::vector<ColumnView<IndexT, ValueT>>& views,
                  const std::uint8_t* skip = nullptr) {
  views.clear();
  if (skip && skip[static_cast<std::size_t>(j)] != 0) return;
  for (const auto& e : inputs) {
    auto col = deref(e).column(j);
    if (!col.empty()) views.push_back(col);
  }
}

/// Streamed-bytes model of Table I's I/O column: every input nonzero read
/// once plus every output nonzero written once.
template <class IndexT, class ValueT>
std::uint64_t streamed_bytes(std::size_t input_nnz, std::size_t output_nnz) {
  constexpr std::uint64_t entry = sizeof(IndexT) + sizeof(ValueT);
  return entry * (static_cast<std::uint64_t>(input_nnz) +
                  static_cast<std::uint64_t>(output_nnz));
}

}  // namespace detail

}  // namespace spkadd::core
