// Shared plumbing for the SpKAdd drivers: input checking, the column-
// parallel loop with per-thread counter reduction, and view gathering.
#pragma once

#include <omp.h>

#include <span>
#include <stdexcept>
#include <vector>

#include "core/options.hpp"
#include "matrix/csc.hpp"

namespace spkadd::core::detail {

/// Throw unless all inputs share one shape; returns (rows, cols).
template <class IndexT, class ValueT>
std::pair<IndexT, IndexT> check_conformant(
    std::span<const CscMatrix<IndexT, ValueT>> inputs) {
  if (inputs.empty())
    throw std::invalid_argument("spkadd: empty input collection");
  const IndexT rows = inputs[0].rows();
  const IndexT cols = inputs[0].cols();
  for (const auto& m : inputs)
    if (m.rows() != rows || m.cols() != cols)
      throw std::invalid_argument("spkadd: inputs are not conformant");
  return {rows, cols};
}

/// Throw unless every input has sorted columns (merge/heap precondition).
template <class IndexT, class ValueT>
void require_sorted_inputs(std::span<const CscMatrix<IndexT, ValueT>> inputs,
                           const char* algo) {
  for (const auto& m : inputs)
    if (!m.is_sorted())
      throw std::invalid_argument(std::string(algo) +
                                  ": requires sorted input columns "
                                  "(set Options::inputs_sorted or sort)");
}

/// Column-parallel loop honoring Options::{threads, schedule}; `body` is
/// called as body(j, OpCounters*) where the counter pointer is thread-
/// private (or null when opts.counters is null) and reduced afterwards.
template <class IndexT, class Body>
void for_each_column(IndexT n, const Options& opts, Body&& body) {
  const int nthreads =
      opts.threads > 0 ? opts.threads : omp_get_max_threads();
  std::vector<OpCounters> per(static_cast<std::size_t>(nthreads));
  const bool dynamic = opts.schedule == Schedule::Dynamic;

#pragma omp parallel num_threads(nthreads)
  {
    OpCounters* c =
        opts.counters
            ? &per[static_cast<std::size_t>(omp_get_thread_num())]
            : nullptr;
    if (dynamic) {
#pragma omp for schedule(dynamic, 8) nowait
      for (IndexT j = 0; j < n; ++j) body(j, c);
    } else {
#pragma omp for schedule(static) nowait
      for (IndexT j = 0; j < n; ++j) body(j, c);
    }
  }
  if (opts.counters)
    for (const auto& c : per) *opts.counters += c;
}

/// Gather the jth column views of all inputs into `views` (reused scratch);
/// empty columns are skipped — they contribute nothing to any kernel.
template <class IndexT, class ValueT>
void gather_views(std::span<const CscMatrix<IndexT, ValueT>> inputs, IndexT j,
                  std::vector<ColumnView<IndexT, ValueT>>& views) {
  views.clear();
  for (const auto& m : inputs) {
    auto col = m.column(j);
    if (!col.empty()) views.push_back(col);
  }
}

/// Streamed-bytes model of Table I's I/O column: every input nonzero read
/// once plus every output nonzero written once.
template <class IndexT, class ValueT>
std::uint64_t streamed_bytes(std::size_t input_nnz, std::size_t output_nnz) {
  constexpr std::uint64_t entry = sizeof(IndexT) + sizeof(ValueT);
  return entry * (static_cast<std::uint64_t>(input_nnz) +
                  static_cast<std::uint64_t>(output_nnz));
}

}  // namespace spkadd::core::detail
