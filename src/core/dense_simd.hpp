// SIMD primitives for the DenseAcc column kernel.
//
// Three implementations behind one API, chosen at compile time:
//   * SPKADD_FORCE_SCALAR — plain scalar loops, the escape hatch CI builds
//     with so the non-SIMD path cannot rot on x86 runners;
//   * __AVX2__ — hand-written intrinsics for double (4-wide unaligned
//     add/copy), taken when the build targets AVX2 (e.g. -march=native);
//   * otherwise — `#pragma omp simd` loops the compiler autovectorizes for
//     whatever the target ISA offers (SSE2 baseline, NEON, ...).
//
// Only the *conflict-free* loops are vectorized: dense+dense value adds,
// dense copies, and the row-iota of the full-word emission sweep. The
// sparse scatter itself stays scalar — vectorizing a scatter-add over
// possibly-duplicate row indices needs AVX-512 conflict detection and
// would still have to preserve the strict left-to-right accumulation
// order, so the honest wins are the dense paths.
#pragma once

#include <cstddef>

#if !defined(SPKADD_FORCE_SCALAR) && defined(__AVX2__)
#include <immintrin.h>

#include <type_traits>
#endif

namespace spkadd::core::simd {

#if defined(SPKADD_FORCE_SCALAR)

inline constexpr const char* kDenseBackend = "scalar";

/// acc[i] += add[i] for i in [0, n).
template <class ValueT>
inline void dense_add(ValueT* acc, const ValueT* add, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) acc[i] += add[i];
}

/// dst[i] = src[i] for i in [0, n).
template <class ValueT>
inline void dense_copy(ValueT* dst, const ValueT* src, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) dst[i] = src[i];
}

/// dst[i] = first + i for i in [0, n) (emission row indices).
template <class IndexT>
inline void iota_rows(IndexT* dst, IndexT first, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    dst[i] = first + static_cast<IndexT>(i);
}

#elif defined(__AVX2__)

inline constexpr const char* kDenseBackend = "avx2";

namespace detail {

inline void add_avx2(double* acc, const double* add, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(acc + i, _mm256_add_pd(_mm256_loadu_pd(acc + i),
                                            _mm256_loadu_pd(add + i)));
  for (; i < n; ++i) acc[i] += add[i];
}

inline void copy_avx2(double* dst, const double* src, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4)
    _mm256_storeu_pd(dst + i, _mm256_loadu_pd(src + i));
  for (; i < n; ++i) dst[i] = src[i];
}

}  // namespace detail

template <class ValueT>
inline void dense_add(ValueT* acc, const ValueT* add, std::size_t n) {
  if constexpr (std::is_same_v<ValueT, double>) {
    detail::add_avx2(acc, add, n);
  } else {
#pragma omp simd
    for (std::size_t i = 0; i < n; ++i) acc[i] += add[i];
  }
}

template <class ValueT>
inline void dense_copy(ValueT* dst, const ValueT* src, std::size_t n) {
  if constexpr (std::is_same_v<ValueT, double>) {
    detail::copy_avx2(dst, src, n);
  } else {
#pragma omp simd
    for (std::size_t i = 0; i < n; ++i) dst[i] = src[i];
  }
}

template <class IndexT>
inline void iota_rows(IndexT* dst, IndexT first, std::size_t n) {
#pragma omp simd
  for (std::size_t i = 0; i < n; ++i)
    dst[i] = first + static_cast<IndexT>(i);
}

#else

inline constexpr const char* kDenseBackend = "omp-simd";

template <class ValueT>
inline void dense_add(ValueT* acc, const ValueT* add, std::size_t n) {
#pragma omp simd
  for (std::size_t i = 0; i < n; ++i) acc[i] += add[i];
}

template <class ValueT>
inline void dense_copy(ValueT* dst, const ValueT* src, std::size_t n) {
#pragma omp simd
  for (std::size_t i = 0; i < n; ++i) dst[i] = src[i];
}

template <class IndexT>
inline void iota_rows(IndexT* dst, IndexT first, std::size_t n) {
#pragma omp simd
  for (std::size_t i = 0; i < n; ++i)
    dst[i] = first + static_cast<IndexT>(i);
}

#endif

}  // namespace spkadd::core::simd
