#include "core/options.hpp"

namespace spkadd::core {

std::string method_name(Method m) {
  switch (m) {
    case Method::TwoWayIncremental: return "2-way Incremental";
    case Method::TwoWayTree: return "2-way Tree";
    case Method::Heap: return "Heap";
    case Method::Spa: return "SPA";
    case Method::Hash: return "Hash";
    case Method::SlidingHash: return "Sliding Hash";
    case Method::ReferenceIncremental: return "Ref(MKL) Incremental";
    case Method::ReferenceTree: return "Ref(MKL) Tree";
    case Method::Auto: return "Auto";
  }
  return "?";
}

std::string schedule_name(Schedule s) {
  switch (s) {
    case Schedule::Dynamic: return "dynamic";
    case Schedule::Static: return "static";
    case Schedule::NnzBalanced: return "nnz-balanced";
  }
  return "?";
}

}  // namespace spkadd::core
