#include <algorithm>
#include <cctype>
#include <stdexcept>

#include "core/column_kernels.hpp"
#include "core/options.hpp"

namespace spkadd::core {

namespace {

/// Canonical key for name lookups: lowercase, alphanumerics only, so
/// "Sliding Hash", "sliding-hash" and "SLIDING_HASH" all compare equal.
std::string normalized(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s)
    if (std::isalnum(static_cast<unsigned char>(c)))
      out.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
  return out;
}

}  // namespace

std::string method_name(Method m) {
  switch (m) {
    case Method::TwoWayIncremental: return "2-way Incremental";
    case Method::TwoWayTree: return "2-way Tree";
    case Method::Heap: return "Heap";
    case Method::Spa: return "SPA";
    case Method::Hash: return "Hash";
    case Method::SlidingHash: return "Sliding Hash";
    case Method::ReferenceIncremental: return "Ref(MKL) Incremental";
    case Method::ReferenceTree: return "Ref(MKL) Tree";
    case Method::Auto: return "Auto";
    case Method::Hybrid: return "Hybrid";
    case Method::DenseAcc: return "DenseAcc";
  }
  return "?";
}

std::string schedule_name(Schedule s) {
  switch (s) {
    case Schedule::Dynamic: return "dynamic";
    case Schedule::Static: return "static";
    case Schedule::NnzBalanced: return "nnz-balanced";
  }
  return "?";
}

Method method_from_name(const std::string& name) {
  // Every method_name() spelling normalizes into this table (round-trip),
  // plus the shorter aliases benches accept on their CLI.
  struct Entry {
    const char* key;
    Method method;
  };
  static const Entry entries[] = {
      {"2wayincremental", Method::TwoWayIncremental},
      {"twowayincremental", Method::TwoWayIncremental},
      {"2wayinc", Method::TwoWayIncremental},
      {"2waytree", Method::TwoWayTree},
      {"twowaytree", Method::TwoWayTree},
      {"heap", Method::Heap},
      {"spa", Method::Spa},
      {"hash", Method::Hash},
      {"slidinghash", Method::SlidingHash},
      {"sliding", Method::SlidingHash},
      {"refmklincremental", Method::ReferenceIncremental},
      {"referenceincremental", Method::ReferenceIncremental},
      {"refincremental", Method::ReferenceIncremental},
      {"refmkltree", Method::ReferenceTree},
      {"referencetree", Method::ReferenceTree},
      {"reftree", Method::ReferenceTree},
      {"auto", Method::Auto},
      {"hybrid", Method::Hybrid},
      {"denseacc", Method::DenseAcc},
      {"dense", Method::DenseAcc},
  };
  const std::string key = normalized(name);
  for (const Entry& e : entries)
    if (key == e.key) return e.method;
  throw std::invalid_argument(
      "unknown SpKAdd method '" + name +
      "' (expected one of: 2way-incremental, 2way-tree, heap, spa, hash, "
      "sliding-hash, dense, ref-incremental, ref-tree, auto, hybrid)");
}

ColumnKernel column_kernel_from_name(const std::string& name) {
  const std::string key = normalized(name);
  if (key == "heap") return ColumnKernel::Heap;
  if (key == "spa") return ColumnKernel::Spa;
  if (key == "hash") return ColumnKernel::Hash;
  if (key == "sliding" || key == "slidinghash")
    return ColumnKernel::SlidingHash;
  if (key == "dense" || key == "denseacc") return ColumnKernel::DenseAcc;
  throw std::invalid_argument(
      "unknown column kernel '" + name +
      "' (expected one of: heap, spa, hash, sliding, dense)");
}

Schedule schedule_from_name(const std::string& name) {
  const std::string key = normalized(name);
  if (key == "dynamic") return Schedule::Dynamic;
  if (key == "static") return Schedule::Static;
  if (key == "nnzbalanced") return Schedule::NnzBalanced;
  throw std::invalid_argument(
      "unknown SpKAdd schedule '" + name +
      "' (expected one of: dynamic, static, nnz-balanced)");
}

}  // namespace spkadd::core
