// Explicit instantiation of the default accumulator so the dozens of TUs
// that stream through it (tests, benches, examples) share one compiled
// copy instead of each instantiating the full SpKAdd pipeline.
#include "core/accumulator.hpp"

namespace spkadd::core {

template class Accumulator<std::int32_t, double>;

}  // namespace spkadd::core
