// Structural validation and approximate comparison.
#include <gtest/gtest.h>

#include "matrix/validate.hpp"
#include "test_helpers.hpp"

namespace {

using spkadd::approx_equal;
using spkadd::compression_factor;
using spkadd::CscMatrix;
using spkadd::validate;
using spkadd::testing::from_triplets;

TEST(Validate, AcceptsCanonicalMatrix) {
  const auto m = from_triplets(4, 2, {{0, 0, 1.0}, {3, 0, 2.0}, {1, 1, 3.0}});
  const auto r = validate(m);
  EXPECT_TRUE(r.valid);
  EXPECT_TRUE(static_cast<bool>(r));
  EXPECT_TRUE(r.reason.empty());
}

TEST(Validate, CatchesOutOfRangeRow) {
  // Bypass constructor checks by building raw arrays with a bad row.
  CscMatrix<> m(2, 1, {0, 1}, {5}, {1.0});
  const auto r = validate(m);
  EXPECT_FALSE(r.valid);
  EXPECT_NE(r.reason.find("out of range"), std::string::npos);
}

TEST(Validate, CatchesUnsortedAndDuplicateRows) {
  CscMatrix<> unsorted(4, 1, {0, 2}, {2, 0}, {1.0, 1.0});
  EXPECT_FALSE(validate(unsorted).valid);
  EXPECT_TRUE(validate(unsorted, /*require_sorted=*/false).valid);
  CscMatrix<> dup(4, 1, {0, 2}, {1, 1}, {1.0, 1.0});
  EXPECT_FALSE(validate(dup).valid);  // strict ascending forbids duplicates
}

TEST(ApproxEqual, ToleratesRoundoffOnly) {
  const auto a = from_triplets(4, 1, {{0, 0, 1.0}, {2, 0, 1e9}});
  const auto b = from_triplets(4, 1, {{0, 0, 1.0 + 1e-13}, {2, 0, 1e9 + 1.0}});
  EXPECT_TRUE(approx_equal(a, b, 1e-8));  // relative tolerance on 1e9
  const auto c = from_triplets(4, 1, {{0, 0, 1.01}, {2, 0, 1e9}});
  EXPECT_FALSE(approx_equal(a, c, 1e-8));
}

TEST(ApproxEqual, RequiresIdenticalPattern) {
  const auto a = from_triplets(4, 1, {{0, 0, 1.0}});
  const auto b = from_triplets(4, 1, {{1, 0, 1.0}});
  const auto c = from_triplets(4, 1, {{0, 0, 1.0}, {1, 0, 0.0}});
  EXPECT_FALSE(approx_equal(a, b));
  EXPECT_FALSE(approx_equal(a, c));  // nnz differs
}

TEST(ApproxEqual, ShapeMismatch) {
  const auto a = from_triplets(4, 1, {{0, 0, 1.0}});
  const auto b = from_triplets(5, 1, {{0, 0, 1.0}});
  EXPECT_FALSE(approx_equal(a, b));
}

TEST(CompressionFactor, DisjointAndOverlapping) {
  const auto a = from_triplets(4, 1, {{0, 0, 1.0}, {1, 0, 1.0}});
  const auto b = from_triplets(4, 1, {{2, 0, 1.0}, {3, 0, 1.0}});
  std::vector<CscMatrix<>> disjoint{a, b};
  const auto sum_d = from_triplets(
      4, 1, {{0, 0, 1.0}, {1, 0, 1.0}, {2, 0, 1.0}, {3, 0, 1.0}});
  EXPECT_DOUBLE_EQ(
      compression_factor(std::span<const CscMatrix<>>(disjoint), sum_d), 1.0);

  std::vector<CscMatrix<>> same{a, a};
  const auto sum_s = from_triplets(4, 1, {{0, 0, 2.0}, {1, 0, 2.0}});
  EXPECT_DOUBLE_EQ(
      compression_factor(std::span<const CscMatrix<>>(same), sum_s), 2.0);
}

}  // namespace
