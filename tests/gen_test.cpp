// R-MAT / ER generators, column splitter, workload factory.
#include <gtest/gtest.h>

#include <numeric>

#include "gen/rmat.hpp"
#include "gen/workload.hpp"
#include "matrix/validate.hpp"
#include "test_helpers.hpp"

namespace {

using namespace spkadd::gen;
using spkadd::CscMatrix;
using spkadd::validate;

TEST(Rmat, ShapeAndDeterminism) {
  const auto p = RmatParams::er(10, 6, 4096, 42);
  const auto a = rmat_csc(p);
  const auto b = rmat_csc(p);
  EXPECT_EQ(a.rows(), 1024);
  EXPECT_EQ(a.cols(), 64);
  EXPECT_TRUE(a == b);  // bit-identical for same params
  EXPECT_TRUE(a.is_sorted());
  EXPECT_TRUE(validate(a).valid);
}

TEST(Rmat, DifferentSeedsDiffer) {
  const auto a = rmat_csc(RmatParams::er(8, 4, 1024, 1));
  const auto b = rmat_csc(RmatParams::er(8, 4, 1024, 2));
  EXPECT_FALSE(a == b);
}

TEST(Rmat, NnzNearTargetForER) {
  // ER at low density rarely collides: realized nnz within a few % of drawn.
  const auto m = rmat_csc(RmatParams::er(14, 6, 8192, 9));
  EXPECT_GT(m.nnz(), 8192u * 95 / 100);
  EXPECT_LE(m.nnz(), 8192u);
}

TEST(Rmat, ErIsRoughlyUniformAcrossRowHalves) {
  const auto m = rmat_csc(RmatParams::er(12, 6, 1 << 14, 5));
  std::size_t top = 0;
  for (std::int32_t j = 0; j < m.cols(); ++j) {
    const auto col = m.column(j);
    for (std::size_t i = 0; i < col.nnz(); ++i)
      top += (col.rows[i] < m.rows() / 2);
  }
  const double frac = static_cast<double>(top) / static_cast<double>(m.nnz());
  EXPECT_NEAR(frac, 0.5, 0.05);
}

TEST(Rmat, G500IsSkewedTowardLowRows) {
  // With a=0.57 the mass concentrates in low row indices (each level picks
  // the upper half w.p. ~0.76), so the top half holds well over 60%.
  const auto m = rmat_csc(RmatParams::g500(12, 6, 1 << 14, 5));
  std::size_t top = 0;
  for (std::int32_t j = 0; j < m.cols(); ++j) {
    const auto col = m.column(j);
    for (std::size_t i = 0; i < col.nnz(); ++i)
      top += (col.rows[i] < m.rows() / 2);
  }
  const double frac = static_cast<double>(top) / static_cast<double>(m.nnz());
  EXPECT_GT(frac, 0.6);
}

TEST(Rmat, G500HasSkewedColumnDistribution) {
  // Power-law-ish columns: the max column nnz far exceeds the mean.
  const auto m = rmat_csc(RmatParams::g500(12, 8, 1 << 15, 21));
  std::size_t max_col = 0;
  for (std::int32_t j = 0; j < m.cols(); ++j)
    max_col = std::max(max_col, m.col_nnz(j));
  const double mean =
      static_cast<double>(m.nnz()) / static_cast<double>(m.cols());
  EXPECT_GT(static_cast<double>(max_col), 3.0 * mean);
}

TEST(Rmat, RejectsBadParams) {
  RmatParams p;
  p.row_scale = 31;
  EXPECT_THROW(rmat_coo(p), std::invalid_argument);
  RmatParams q;
  q.a = 0.9;  // probabilities no longer sum to 1
  EXPECT_THROW(rmat_coo(q), std::invalid_argument);
}

TEST(SplitColumns, SlabsReassembleToOriginal) {
  const auto m = rmat_csc(RmatParams::er(8, 6, 2048, 3));
  const auto slabs = split_columns(m, 4);
  ASSERT_EQ(slabs.size(), 4u);
  std::size_t nnz = 0;
  for (const auto& s : slabs) {
    EXPECT_EQ(s.rows(), m.rows());
    EXPECT_EQ(s.cols(), m.cols() / 4);
    EXPECT_TRUE(validate(s).valid);
    nnz += s.nnz();
  }
  EXPECT_EQ(nnz, m.nnz());
  // Column j of slab i is column i*slab+j of the original.
  for (int i = 0; i < 4; ++i) {
    const auto& s = slabs[static_cast<std::size_t>(i)];
    for (std::int32_t j = 0; j < s.cols(); ++j) {
      const auto orig = m.column(static_cast<std::int32_t>(i) * s.cols() + j);
      const auto got = s.column(j);
      ASSERT_EQ(orig.nnz(), got.nnz());
      for (std::size_t t = 0; t < got.nnz(); ++t) {
        EXPECT_EQ(orig.rows[t], got.rows[t]);
        EXPECT_EQ(orig.vals[t], got.vals[t]);
      }
    }
  }
}

TEST(SplitColumns, RejectsBadK) {
  const auto m = rmat_csc(RmatParams::er(4, 4, 64, 1));
  EXPECT_THROW(split_columns(m, 0), std::invalid_argument);
  EXPECT_THROW(split_columns(m, 3), std::invalid_argument);  // 16 % 3 != 0
}

TEST(Workload, MakesConformantCollection) {
  WorkloadSpec spec;
  spec.pattern = Pattern::RMAT;
  spec.rows = 512;
  spec.cols = 32;
  spec.avg_nnz_per_col = 8;
  spec.k = 4;
  const auto inputs = make_workload(spec);
  ASSERT_EQ(inputs.size(), 4u);
  for (const auto& m : inputs) {
    EXPECT_EQ(m.rows(), 512);
    EXPECT_EQ(m.cols(), 32);
    EXPECT_TRUE(m.is_sorted());
  }
  // Total nnz is near d * n * k (dedup shaves a little).
  const auto total = total_input_nnz(inputs);
  EXPECT_GT(total, 8u * 32u * 4u / 2);
  EXPECT_LE(total, 8u * 32u * 4u);
  EXPECT_NE(spec.describe().find("RMAT"), std::string::npos);
}

TEST(Workload, RejectsNonPow2K) {
  WorkloadSpec spec;
  spec.k = 3;
  EXPECT_THROW(make_workload(spec), std::invalid_argument);
}

TEST(Workload, DeterministicAcrossCalls) {
  WorkloadSpec spec;
  spec.rows = 256;
  spec.cols = 16;
  spec.avg_nnz_per_col = 4;
  spec.k = 2;
  const auto a = make_workload(spec);
  const auto b = make_workload(spec);
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_TRUE(a[i] == b[i]);
}

TEST(ShuffleColumns, PreservesEntriesButBreaksOrder) {
  WorkloadSpec spec;
  spec.rows = 512;
  spec.cols = 16;
  spec.avg_nnz_per_col = 16;
  spec.k = 2;
  auto inputs = make_workload(spec);
  const auto original = inputs[0];
  shuffle_columns(inputs[0], 99);
  EXPECT_FALSE(inputs[0].is_sorted());
  EXPECT_EQ(inputs[0].nnz(), original.nnz());
  // Sorting back recovers the original exactly.
  auto sorted = inputs[0];
  sorted.sort_columns();
  EXPECT_TRUE(sorted == original);
}

}  // namespace
