// TenantWindow: bucket routing, O(1) expiry, windowed snapshot
// bit-identity against reference folds, and the window-edge cases
// (rotation-spanning snapshots, expired submits, bucket boundaries).
#include "service/window.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/accumulator.hpp"
#include "core/spkadd.hpp"
#include "test_helpers.hpp"

namespace {

using spkadd::core::Accumulator;
using spkadd::service::TenantWindow;
using spkadd::service::WindowConfig;
using spkadd::testing::Csc;

constexpr std::int32_t kRows = 120;
constexpr std::int32_t kCols = 7;

Csc update(std::uint64_t seed) {
  return spkadd::testing::random_matrix(kRows, kCols, 60, seed);
}

/// Reference for a windowed snapshot: per-bucket strict folds in
/// submission order, then a strict left fold of the bucket partials in
/// ascending bucket order — the single-threaded shape the window's
/// bit-identity guarantee is stated against.
Csc reference_fold(const WindowConfig& cfg,
                   const std::vector<std::vector<Csc>>& bucket_streams) {
  std::vector<Accumulator<>> accs;
  for (const auto& stream : bucket_streams) {
    if (stream.empty()) continue;
    accs.emplace_back(kRows, kCols, cfg.options, cfg.batch_window);
    for (const auto& u : stream) accs.back().add(u);
  }
  if (accs.empty()) return Csc(kRows, kCols);
  std::vector<const Csc*> parts;
  bool sorted = true;
  for (auto& a : accs) {
    parts.push_back(&a.partial_sum());
    sorted = sorted && a.partial_is_sorted();
  }
  if (parts.size() == 1) return *parts.front();
  spkadd::core::Options opts = cfg.options;
  opts.inputs_sorted = opts.inputs_sorted && sorted;
  return spkadd::core::spkadd(
      spkadd::core::MatrixPtrs<std::int32_t, double>(parts), opts);
}

// ------------------------------------------------------- configuration
TEST(WindowConfig, RejectsUnusableKnobs) {
  WindowConfig cfg;
  cfg.bucket_width = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = WindowConfig{};
  cfg.live_buckets = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = WindowConfig{};
  cfg.batch_window = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = WindowConfig{};
  cfg.options.method = spkadd::core::Method::Heap;
  cfg.options.inputs_sorted = false;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
}

// -------------------------------------------------------- bit-identity
TEST(TenantWindow, SingleBucketWindowMatchesNonWindowedAccumulator) {
  // All updates land in one bucket, so a 1-bucket window must return
  // the bucket partial unchanged: bit-identical to a plain Accumulator
  // fed the same stream even for arbitrary (non-exact) doubles.
  WindowConfig cfg;
  cfg.bucket_width = 100;
  cfg.live_buckets = 4;
  cfg.batch_window = 3;
  TenantWindow w(kRows, kCols, cfg);
  Accumulator<> acc(kRows, kCols, cfg.options, cfg.batch_window);
  std::vector<Csc> updates;  // borrowed by acc until each batched flush
  for (std::uint64_t i = 0; i < 9; ++i) updates.push_back(update(i));
  for (std::uint64_t i = 0; i < 9; ++i) {
    acc.add(updates[i]);
    EXPECT_TRUE(w.submit(40 + i, Csc(updates[i])));
  }
  const Csc want = acc.finalize();
  EXPECT_EQ(w.snapshot(1), want);
  EXPECT_EQ(w.snapshot(0), want);  // only one bucket is live anyway
  EXPECT_EQ(w.stats().buckets_opened, 1u);
}

TEST(TenantWindow, SnapshotSpansBucketRotation) {
  // Stream across live_buckets + 2 buckets: the two oldest retire, and
  // every windowed cut must match the reference fold of exactly the
  // buckets inside the cut.
  WindowConfig cfg;
  cfg.bucket_width = 10;
  cfg.live_buckets = 3;
  cfg.batch_window = 2;
  TenantWindow w(kRows, kCols, cfg);
  std::vector<std::vector<Csc>> streams(5);  // bucket ids 0..4
  std::uint64_t seed = 100;
  for (std::uint64_t b = 0; b < 5; ++b)
    for (std::uint64_t i = 0; i < 3; ++i) {
      streams[b].push_back(update(seed++));
      EXPECT_TRUE(w.submit(b * 10 + i, Csc(streams[b].back())));
    }
  EXPECT_EQ(w.stats().buckets_retired, 2u);
  EXPECT_EQ(w.stats().live_buckets, 3u);
  // Full ring: buckets 2, 3, 4.
  EXPECT_EQ(w.snapshot(),
            reference_fold(cfg, {streams[2], streams[3], streams[4]}));
  // Two-bucket cut: buckets 3, 4.
  EXPECT_EQ(w.snapshot(2), reference_fold(cfg, {streams[3], streams[4]}));
  // One-bucket cut: newest only.
  EXPECT_EQ(w.snapshot(1), reference_fold(cfg, {streams[4]}));
}

// ------------------------------------------------------------- expiry
TEST(TenantWindow, ExpiredSubmitIsRejectedCountedAndNeverFolded) {
  WindowConfig cfg;
  cfg.bucket_width = 10;
  cfg.live_buckets = 2;
  TenantWindow w(kRows, kCols, cfg);
  const Csc live = update(1);
  EXPECT_TRUE(w.submit(50, Csc(live)));  // bucket 5; oldest live is 4
  const Csc before = w.snapshot();
  EXPECT_FALSE(w.submit(39, update(2)));  // bucket 3: expired
  EXPECT_FALSE(w.submit(0, update(3)));   // long expired
  const auto s = w.stats();
  EXPECT_EQ(s.expired_rejected, 2u);
  EXPECT_EQ(s.accepted, 1u);
  // Rejected updates left no trace in the aggregate.
  EXPECT_EQ(w.snapshot(), before);
}

TEST(TenantWindow, ExpiryIsO1NoFoldWorkOnRetire) {
  WindowConfig cfg;
  cfg.bucket_width = 10;
  cfg.live_buckets = 3;
  cfg.batch_window = 2;
  TenantWindow w(kRows, kCols, cfg);
  std::uint64_t seed = 0;
  for (std::uint64_t b = 0; b < 3; ++b)
    for (std::uint64_t i = 0; i < 4; ++i)
      EXPECT_TRUE(w.submit(b * 10 + i, update(seed++)));
  (void)w.snapshot();  // force every bucket partial to materialize
  const std::uint64_t flushes_before = w.stats().fold_flushes;
  EXPECT_GT(flushes_before, 0u);
  // Advance far enough that every bucket retires: pure pops, so the
  // fold counter must not move at all.
  w.advance_to(1000);
  const auto s = w.stats();
  EXPECT_EQ(s.fold_flushes, flushes_before);
  EXPECT_EQ(s.live_buckets, 0u);
  EXPECT_EQ(s.buckets_retired, 3u);
  // The ring is empty now: snapshot is the all-zero matrix.
  const Csc empty = w.snapshot();
  EXPECT_EQ(empty.nnz(), 0);
  EXPECT_EQ(empty.rows(), kRows);
}

// -------------------------------------------------------- edge cases
TEST(TenantWindow, BucketBoundaryTimestamps) {
  WindowConfig cfg;
  cfg.bucket_width = 10;
  cfg.live_buckets = 8;
  TenantWindow w(kRows, kCols, cfg);
  EXPECT_TRUE(w.submit(9, update(1)));   // last tick of bucket 0
  EXPECT_TRUE(w.submit(10, update(2)));  // first tick of bucket 1
  const auto s = w.stats();
  EXPECT_EQ(s.buckets_opened, 2u);
  EXPECT_EQ(s.newest_bucket, 1u);
}

TEST(TenantWindow, SparseBucketsMaterializeOnlyOnUse) {
  WindowConfig cfg;
  cfg.bucket_width = 10;
  cfg.live_buckets = 8;
  TenantWindow w(kRows, kCols, cfg);
  const Csc a = update(1);
  const Csc b = update(2);
  EXPECT_TRUE(w.submit(5, Csc(a)));   // bucket 0
  EXPECT_TRUE(w.submit(55, Csc(b)));  // bucket 5; 1..4 never open
  const auto s = w.stats();
  EXPECT_EQ(s.buckets_opened, 2u);
  EXPECT_EQ(s.live_buckets, 2u);
  EXPECT_EQ(w.snapshot(), reference_fold(cfg, {{a}, {b}}));
}

TEST(TenantWindow, LargeTimeGapRetiresEverything) {
  WindowConfig cfg;
  cfg.bucket_width = 10;
  cfg.live_buckets = 2;
  TenantWindow w(kRows, kCols, cfg);
  EXPECT_TRUE(w.submit(0, update(1)));
  const Csc fresh = update(2);
  EXPECT_TRUE(w.submit(990, Csc(fresh)));  // bucket 99: 0 retires
  const auto s = w.stats();
  EXPECT_EQ(s.buckets_retired, 1u);
  EXPECT_EQ(s.live_buckets, 1u);
  EXPECT_EQ(w.snapshot(), reference_fold(cfg, {{fresh}}));
}

TEST(TenantWindow, OversizedWindowAndBadShapesThrow) {
  WindowConfig cfg;
  cfg.live_buckets = 4;
  TenantWindow w(kRows, kCols, cfg);
  EXPECT_TRUE(w.submit(0, update(1)));
  EXPECT_THROW((void)w.snapshot(5), std::invalid_argument);
  EXPECT_THROW(
      w.submit(0, spkadd::testing::random_matrix(kRows + 1, kCols, 9, 2)),
      std::invalid_argument);
  // The failed submit left the counters untouched.
  EXPECT_EQ(w.stats().accepted, 1u);
}

TEST(TenantWindow, EmptyWindowSnapshotIsAllZero) {
  WindowConfig cfg;
  TenantWindow w(kRows, kCols, cfg);
  const Csc empty = w.snapshot();
  EXPECT_EQ(empty.rows(), kRows);
  EXPECT_EQ(empty.cols(), kCols);
  EXPECT_EQ(empty.nnz(), 0);
}

}  // namespace
