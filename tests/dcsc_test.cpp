// DCSC hypersparse format: conversions, column lookup, storage saving, and
// SpKAdd over hypersparse collections.
#include <gtest/gtest.h>

#include "core/spkadd.hpp"
#include "matrix/dcsc.hpp"
#include "matrix/validate.hpp"
#include "test_helpers.hpp"

namespace {

using namespace spkadd;
using spkadd::testing::from_triplets;
using spkadd::testing::random_matrix;

using Csc = spkadd::testing::Csc;
using Dcsc = DcscMatrix<std::int32_t, double>;

TEST(Dcsc, RoundTripsThroughCsc) {
  const auto m = random_matrix(128, 64, 150, 1);
  const auto d = csc_to_dcsc(m);
  EXPECT_EQ(d.nnz(), m.nnz());
  EXPECT_TRUE(dcsc_to_csc(d) == m);
}

TEST(Dcsc, SkipsEmptyColumns) {
  const auto m =
      from_triplets(8, 100, {{1, 3, 1.0}, {2, 3, 2.0}, {5, 97, 3.0}});
  const auto d = csc_to_dcsc(m);
  EXPECT_EQ(d.nonempty_cols(), 2u);
  EXPECT_EQ(d.jc()[0], 3);
  EXPECT_EQ(d.jc()[1], 97);
  EXPECT_EQ(d.column(3).nnz(), 2u);
  EXPECT_EQ(d.column(97).nnz(), 1u);
  EXPECT_TRUE(d.column(0).empty());
  EXPECT_TRUE(d.column(50).empty());
}

TEST(Dcsc, HypersparseStorageIsSmaller) {
  // 4 nonzeros spread over 1e5 columns: CSC pays O(cols) pointers, DCSC
  // pays O(nzc).
  Csc wide = from_triplets(16, 100000,
                           {{0, 0, 1.0}, {1, 50, 1.0}, {2, 99999, 1.0}});
  const auto d = csc_to_dcsc(wide);
  EXPECT_LT(d.storage_bytes() * 100, wide.storage_bytes());
  EXPECT_TRUE(dcsc_to_csc(d) == wide);
}

TEST(Dcsc, EmptyMatrix) {
  const Csc m(16, 8);
  const auto d = csc_to_dcsc(m);
  EXPECT_EQ(d.nonempty_cols(), 0u);
  EXPECT_EQ(d.nnz(), 0u);
  EXPECT_TRUE(dcsc_to_csc(d) == m);
}

TEST(Dcsc, ValidatesConstructorInvariants) {
  // cp/jc size mismatch
  EXPECT_THROW(Dcsc(4, 4, {0, 1}, {0, 1}, {0}, {1.0}), std::invalid_argument);
  // jc out of range
  EXPECT_THROW(Dcsc(4, 4, {5}, {0, 1}, {0}, {1.0}), std::invalid_argument);
  // jc not ascending
  EXPECT_THROW(Dcsc(4, 4, {2, 1}, {0, 1, 2}, {0, 1}, {1.0, 1.0}),
               std::invalid_argument);
  // array length mismatch
  EXPECT_THROW(Dcsc(4, 4, {1}, {0, 2}, {0}, {1.0}), std::invalid_argument);
}

TEST(Dcsc, SpkaddOverHypersparseCollection) {
  // The SUMMA-at-scale scenario: k hypersparse blocks, most columns empty.
  std::vector<Dcsc> hyper;
  std::vector<Csc> dense_view;
  for (int i = 0; i < 8; ++i) {
    Csc m = from_triplets(
        64, 4096,
        {{i, (i * 513) % 4096, 1.0}, {63 - i, (i * 1025 + 7) % 4096, 2.0},
         {i * 3, 2048, 1.0}});
    dense_view.push_back(m);
    hyper.push_back(csc_to_dcsc(m));
  }
  // Expand to CSC at the add boundary; the sum matches the plain-CSC sum.
  std::vector<Csc> expanded;
  for (const auto& d : hyper) expanded.push_back(dcsc_to_csc(d));
  const auto sum_h = core::spkadd(expanded);
  const auto sum_c = core::spkadd(dense_view);
  EXPECT_TRUE(sum_h == sum_c);
  // All eight inputs contribute one entry (row i*3) to column 2048.
  EXPECT_EQ(sum_c.col_nnz(2048), 8u);
}

}  // namespace
