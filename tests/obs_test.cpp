// obs layer: MetricsRegistry instrument semantics, Prometheus text
// exposition (golden fragments + exposition-format invariants), JSON
// rendering, concurrent recording (TSAN leg), and Tracer ring
// wraparound + slow-op capture.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/histogram.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/json.hpp"

namespace {

using namespace spkadd::obs;

/// Every non-comment line of a rendering, in order.
std::vector<std::string> sample_lines(const std::string& text) {
  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '#') out.push_back(line);
  }
  return out;
}

bool contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

// ---------------------------------------------------------- registry
TEST(MetricsRegistry, CounterFindOrCreateIsStable) {
  MetricsRegistry reg;
  Counter& a = reg.counter("spk_test_total", "help");
  Counter& b = reg.counter("spk_test_total", "help");
  EXPECT_EQ(&a, &b);
  a.add(2);
  b.add(3);
  EXPECT_EQ(a.value(), 5u);
}

TEST(MetricsRegistry, LabelOrderDoesNotSplitInstruments) {
  MetricsRegistry reg;
  Counter& a =
      reg.counter("spk_test_total", "help", {{"x", "1"}, {"y", "2"}});
  Counter& b =
      reg.counter("spk_test_total", "help", {{"y", "2"}, {"x", "1"}});
  EXPECT_EQ(&a, &b);
}

TEST(MetricsRegistry, TypeConflictThrows) {
  MetricsRegistry reg;
  reg.counter("spk_test_total", "help");
  EXPECT_THROW(reg.gauge("spk_test_total", "help"), std::invalid_argument);
  // Same family name under different labels must keep one type too.
  EXPECT_THROW(reg.histogram("spk_test_total", "help", {{"a", "b"}}),
               std::invalid_argument);
}

TEST(MetricsRegistry, InvalidNameThrows) {
  MetricsRegistry reg;
  EXPECT_THROW(reg.counter("", "help"), std::invalid_argument);
  EXPECT_THROW(reg.counter("9starts_with_digit", "help"),
               std::invalid_argument);
  EXPECT_THROW(reg.counter("has space", "help"), std::invalid_argument);
  EXPECT_NO_THROW(reg.counter("spkadd:ok_name_9", "help"));
}

// ------------------------------------------------- prometheus golden
TEST(MetricsRegistry, PrometheusCounterAndGaugeGolden) {
  MetricsRegistry reg;
  reg.counter("spk_requests_total", "Requests served.", {{"verb", "submit"}})
      .add(7);
  reg.gauge("spk_depth", "Queue depth.").set(3.5);
  const std::string text = reg.render_prometheus();
  EXPECT_TRUE(contains(text, "# HELP spk_requests_total Requests served.\n"))
      << text;
  EXPECT_TRUE(contains(text, "# TYPE spk_requests_total counter\n")) << text;
  EXPECT_TRUE(contains(text, "spk_requests_total{verb=\"submit\"} 7\n"))
      << text;
  EXPECT_TRUE(contains(text, "# TYPE spk_depth gauge\n")) << text;
  EXPECT_TRUE(contains(text, "spk_depth 3.5\n")) << text;
}

TEST(MetricsRegistry, PrometheusLabelValuesAreEscaped) {
  MetricsRegistry reg;
  reg.counter("spk_esc_total", "h", {{"tenant", "a\"b\\c\nd"}}).add(1);
  const std::string text = reg.render_prometheus();
  EXPECT_TRUE(
      contains(text, "spk_esc_total{tenant=\"a\\\"b\\\\c\\nd\"} 1\n"))
      << text;
}

TEST(MetricsRegistry, PrometheusHistogramIsCumulative) {
  MetricsRegistry reg;
  LogHistogram& h =
      reg.histogram("spk_lat_seconds", "h", {}, Unit::kSeconds);
  h.record(1000);  // 1 us
  h.record(1000);
  h.record(2'000'000);  // 2 ms
  const std::string text = reg.render_prometheus();
  EXPECT_TRUE(contains(text, "# TYPE spk_lat_seconds histogram\n")) << text;
  EXPECT_TRUE(contains(text, "spk_lat_seconds_count 3\n")) << text;
  // _sum is in seconds: 2 * 1e-6 + 2e-3.
  EXPECT_TRUE(contains(text, "spk_lat_seconds_sum 0.002002\n")) << text;
  EXPECT_TRUE(contains(text, "spk_lat_seconds_bucket{le=\"+Inf\"} 3\n"))
      << text;

  // Bucket counts must be cumulative and non-decreasing in le order.
  std::uint64_t prev = 0;
  std::size_t buckets = 0;
  for (const auto& line : sample_lines(text)) {
    if (line.rfind("spk_lat_seconds_bucket", 0) != 0) continue;
    ++buckets;
    const auto space = line.rfind(' ');
    const auto v = static_cast<std::uint64_t>(
        std::stod(line.substr(space + 1)));
    EXPECT_GE(v, prev) << line;
    prev = v;
  }
  EXPECT_GE(buckets, 3u);  // two occupied buckets + +Inf
  EXPECT_EQ(prev, 3u);
}

TEST(MetricsRegistry, RenderJsonCarriesEveryInstrument) {
  MetricsRegistry reg;
  reg.counter("spk_a_total", "h", {{"tenant", "t\"1"}}).add(4);
  reg.histogram("spk_b", "h", {}, Unit::kCount).record(10);
  const std::string json = reg.render_json();
  EXPECT_TRUE(contains(json, "\"name\":\"spk_a_total\"")) << json;
  EXPECT_TRUE(contains(json, "\"tenant\":\"t\\\"1\"")) << json;
  EXPECT_TRUE(contains(json, "\"name\":\"spk_b_count\"")) << json;
  EXPECT_TRUE(contains(json, "\"name\":\"spk_b_max\"")) << json;
}

// ---------------------------------------------------------- collector
TEST(MetricsRegistry, CollectorExportsAtScrapeTime) {
  MetricsRegistry reg;
  LogHistogram local;
  local.record(100);
  std::uint64_t hits = 0;
  {
    CollectorHandle handle =
        reg.add_collector([&](CollectorSink& sink) {
          ++hits;
          sink.counter("spk_coll_total", "h", {{"s", "x"}}, 5);
          sink.gauge("spk_coll_depth", "h", {}, 2);
          sink.histogram("spk_coll_hist", "h", {}, local, Unit::kCount);
        });
    const std::string text = reg.render_prometheus();
    EXPECT_EQ(hits, 1u);
    EXPECT_TRUE(contains(text, "spk_coll_total{s=\"x\"} 5\n")) << text;
    EXPECT_TRUE(contains(text, "spk_coll_depth 2\n")) << text;
    EXPECT_TRUE(contains(text, "spk_coll_hist_count 1\n")) << text;
  }
  // Handle destroyed: the collector must not run again.
  (void)reg.render_prometheus();
  EXPECT_EQ(hits, 1u);
}

// -------------------------------------------------------- concurrency
TEST(MetricsRegistry, ConcurrentCountsAreExact) {
  MetricsRegistry reg;
  Counter& c = reg.counter("spk_conc_total", "h");
  LogHistogram& h = reg.histogram("spk_conc_hist", "h", {}, Unit::kCount);
  constexpr int kThreads = 4;
  constexpr int kPerThread = 20'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        c.add();
        h.record(static_cast<std::uint64_t>(t) * 1000 + 1);
      }
    });
  }
  // A concurrent scrape must be safe while writers run.
  const std::string mid = reg.render_prometheus();
  EXPECT_TRUE(contains(mid, "spk_conc_total"));
  for (auto& th : threads) th.join();
  EXPECT_EQ(c.value(), static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(h.total_count(),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
}

// ---------------------------------------------------------- histogram
TEST(LogHistogram, BucketIterationMatchesTotals) {
  LogHistogram h;
  const std::vector<std::uint64_t> ticks = {0, 1, 7, 8, 100, 1000, 999999};
  std::uint64_t sum = 0;
  for (const auto t : ticks) {
    h.record(t);
    sum += t;
  }
  std::uint64_t count = 0;
  std::uint64_t prev_upper = 0;
  bool first = true;
  h.for_each_nonzero_bucket([&](std::uint64_t upper, std::uint64_t c) {
    if (!first) {
      EXPECT_GT(upper, prev_upper);
    }
    first = false;
    prev_upper = upper;
    count += c;
  });
  EXPECT_EQ(count, ticks.size());
  EXPECT_EQ(h.total_count(), ticks.size());
  EXPECT_EQ(h.sum_ticks(), sum);
  EXPECT_EQ(h.max_ticks(), 999999u);
}

TEST(LogHistogram, EveryTickFallsAtOrBelowItsBucketUpper) {
  LogHistogram h;
  for (std::uint64_t t : {1u, 9u, 100u, 4096u, 1u << 20}) {
    LogHistogram one;
    one.record(t);
    one.for_each_nonzero_bucket([&](std::uint64_t upper, std::uint64_t) {
      EXPECT_GE(upper, t);
    });
  }
  // bucket_upper is monotone over the whole layout.
  for (std::size_t i = 1; i < LogHistogram::kBuckets; ++i)
    EXPECT_GT(LogHistogram::bucket_upper(i), LogHistogram::bucket_upper(i - 1));
}

TEST(LogHistogram, SummaryQuantilesNeverExceedMax) {
  LogHistogram h;
  for (int i = 0; i < 100; ++i) h.record(1000);
  h.record(5000);
  const LatencySummary s = h.summary();
  EXPECT_EQ(s.count, 101u);
  EXPECT_DOUBLE_EQ(s.max, 5000 * 1e-9);
  EXPECT_LE(s.p99, s.max);
  EXPECT_LE(s.p50, s.p99);
}

// -------------------------------------------------------------- tracer
TEST(Tracer, DisabledTracerIsInactive) {
  Tracer tracer;  // default config: disabled
  OpTrace op = tracer.begin_op();
  EXPECT_FALSE(op.active());
  tracer.record(op, Stage::kShardFold, Tracer::now_ns());
  tracer.finish_op(op);
  EXPECT_TRUE(tracer.recent().empty());
  EXPECT_TRUE(tracer.slow_ops().empty());
}

TEST(Tracer, RecordsSpansInOrder) {
  Tracer::Config cfg;
  cfg.enabled = true;
  Tracer tracer(cfg);
  OpTrace op = tracer.begin_op();
  ASSERT_TRUE(op.active());
  tracer.record(op, Stage::kWireDecode, Tracer::now_ns(), "tenant=a");
  tracer.record(op, Stage::kShardFold, Tracer::now_ns());
  EXPECT_EQ(op.spans.size(), 2u);
  tracer.finish_op(op);
  EXPECT_FALSE(op.active());

  const std::vector<Span> spans = tracer.recent();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_EQ(spans[0].stage, Stage::kWireDecode);
  EXPECT_EQ(spans[0].detail, "tenant=a");
  EXPECT_EQ(spans[1].stage, Stage::kShardFold);
  EXPECT_LE(spans[0].start_ns, spans[1].start_ns);
}

TEST(Tracer, RingWrapsKeepingTheNewestSpans) {
  Tracer::Config cfg;
  cfg.enabled = true;
  cfg.ring_capacity = 8;
  Tracer tracer(cfg);
  for (int i = 0; i < 20; ++i)
    tracer.record_span(Stage::kSnapshot, Tracer::now_ns(),
                       "i=" + std::to_string(i));
  const std::vector<Span> spans = tracer.recent();
  ASSERT_EQ(spans.size(), 8u);  // capacity, not 20
  // The survivors must be exactly the 8 newest, oldest first.
  for (int i = 0; i < 8; ++i)
    EXPECT_EQ(spans[static_cast<std::size_t>(i)].detail,
              "i=" + std::to_string(12 + i));
}

TEST(Tracer, SlowOpsAreCapturedAndBounded) {
  Tracer::Config cfg;
  cfg.enabled = true;
  cfg.slow_threshold_ns = 0;  // every op qualifies
  cfg.slow_log_capacity = 4;
  Tracer tracer(cfg);
  for (int i = 0; i < 10; ++i) {
    OpTrace op = tracer.begin_op();
    tracer.record(op, Stage::kQueueWait, Tracer::now_ns(),
                  "op=" + std::to_string(i));
    tracer.finish_op(op);
  }
  const std::vector<SlowOp> slow = tracer.slow_ops();
  ASSERT_EQ(slow.size(), 4u);  // bounded, oldest evicted
  for (const SlowOp& s : slow) {
    EXPECT_NE(s.op_id, 0u);
    ASSERT_EQ(s.spans.size(), 1u);
    EXPECT_EQ(s.spans[0].stage, Stage::kQueueWait);
  }
  EXPECT_EQ(slow.back().spans[0].detail, "op=9");

  tracer.clear();
  EXPECT_TRUE(tracer.recent().empty());
  EXPECT_TRUE(tracer.slow_ops().empty());
}

TEST(Tracer, FastOpsStayOutOfTheSlowLog) {
  Tracer::Config cfg;
  cfg.enabled = true;
  cfg.slow_threshold_ns = 60'000'000'000ull;  // one minute: never slow
  Tracer tracer(cfg);
  OpTrace op = tracer.begin_op();
  tracer.record(op, Stage::kShardFold, Tracer::now_ns());
  tracer.finish_op(op);
  EXPECT_TRUE(tracer.slow_ops().empty());
  EXPECT_EQ(tracer.recent().size(), 1u);
}

TEST(Tracer, ConcurrentRecordingIsSafe) {
  Tracer::Config cfg;
  cfg.enabled = true;
  cfg.slow_threshold_ns = 0;
  cfg.ring_capacity = 64;
  Tracer tracer(cfg);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 500; ++i) {
        OpTrace op = tracer.begin_op();
        tracer.record(op, Stage::kShardFold, Tracer::now_ns());
        tracer.finish_op(op);
      }
    });
  }
  // Dump while writers run: must not race or crash.
  (void)tracer.recent();
  (void)tracer.dump_json();
  for (auto& th : threads) th.join();
  // 4 rings of 64 spans each survive.
  EXPECT_EQ(tracer.recent().size(), 4u * 64u);
}

TEST(Tracer, DumpJsonEscapesDetails) {
  Tracer::Config cfg;
  cfg.enabled = true;
  Tracer tracer(cfg);
  tracer.record_span(Stage::kOther, Tracer::now_ns(), "weird\"detail");
  const std::string json = tracer.dump_json();
  EXPECT_TRUE(contains(json, "\"spans\"")) << json;
  EXPECT_TRUE(contains(json, "weird\\\"detail")) << json;
}

// ------------------------------------------------------- json_escape
TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  using spkadd::util::json_escape;
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string("a\x01z", 3)), "a\\u0001z");
}

}  // namespace
