// SPKN wire protocol: frame round-trips, strict header validation
// (magic / version / verb / bounded lengths), partial-read behaviour,
// and bit-exact matrix payload round-trips over the SPKB container.
#include "net/protocol.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

#include "test_helpers.hpp"

namespace {

using namespace spkadd::net;
using spkadd::testing::Csc;

Request sample_request() {
  Request req;
  req.verb = Verb::kSubmit;
  req.tenant = "tenant-a";
  req.arg = 123456789;
  req.payload = "opaque-bytes";
  return req;
}

/// Corrupt one little-endian field inside an encoded frame.
template <class T>
void poke(std::string& frame, std::size_t offset, T value) {
  std::memcpy(frame.data() + offset, &value, sizeof(T));
}

// -------------------------------------------------------- round-trips
TEST(Protocol, RequestRoundTrip) {
  const Request req = sample_request();
  std::string wire;
  encode_request(req, wire);
  EXPECT_EQ(wire.size(),
            kHeaderBytes + req.tenant.size() + req.payload.size());
  Request out;
  EXPECT_EQ(try_decode_request(wire, out), wire.size());
  EXPECT_EQ(out.verb, req.verb);
  EXPECT_EQ(out.tenant, req.tenant);
  EXPECT_EQ(out.arg, req.arg);
  EXPECT_EQ(out.payload, req.payload);
}

TEST(Protocol, ResponseRoundTrip) {
  Response resp;
  resp.status = Status::kBadWindow;
  resp.arg = 42;
  resp.payload = "details";
  std::string wire;
  encode_response(resp, wire);
  Response out;
  EXPECT_EQ(try_decode_response(wire, out), wire.size());
  EXPECT_EQ(out.status, resp.status);
  EXPECT_EQ(out.arg, resp.arg);
  EXPECT_EQ(out.payload, resp.payload);
}

TEST(Protocol, BackToBackFramesDecodeOneAtATime) {
  std::string wire;
  Request a = sample_request();
  Request b = sample_request();
  b.verb = Verb::kDrain;
  b.tenant.clear();
  b.payload.clear();
  encode_request(a, wire);
  const std::size_t first = wire.size();
  encode_request(b, wire);
  Request out;
  EXPECT_EQ(try_decode_request(wire, out), first);
  EXPECT_EQ(out.verb, Verb::kSubmit);
  wire.erase(0, first);
  EXPECT_EQ(try_decode_request(wire, out), wire.size());
  EXPECT_EQ(out.verb, Verb::kDrain);
}

// ------------------------------------------------ partial-read safety
TEST(Protocol, TruncatedFramesAskForMoreBytesNeverThrow) {
  std::string wire;
  encode_request(sample_request(), wire);
  Request out;
  for (std::size_t len = 0; len < wire.size(); ++len) {
    EXPECT_EQ(try_decode_request(wire.substr(0, len), out), 0u)
        << "prefix length " << len;
  }
}

// ----------------------------------------------- validation strictness
TEST(Protocol, BadMagicThrows) {
  std::string wire;
  encode_request(sample_request(), wire);
  poke<std::uint32_t>(wire, 0, 0xDEADBEEF);
  Request out;
  try {
    try_decode_request(wire, out);
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.status, Status::kBadMagic);
  }
}

TEST(Protocol, ResponseMagicIsNotRequestMagic) {
  // A response frame fed to the request decoder must be refused.
  std::string wire;
  encode_response(Response{}, wire);
  Request out;
  EXPECT_THROW(try_decode_request(wire, out), ProtocolError);
}

TEST(Protocol, BadVersionThrows) {
  std::string wire;
  encode_request(sample_request(), wire);
  poke<std::uint16_t>(wire, 4, kProtocolVersion + 1);
  Request out;
  try {
    try_decode_request(wire, out);
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.status, Status::kBadVersion);
  }
}

TEST(Protocol, MetricsVerbRoundTrips) {
  Request req;
  req.verb = Verb::kMetrics;  // highest valid verb code
  std::string wire;
  encode_request(req, wire);
  Request out;
  EXPECT_EQ(try_decode_request(wire, out), wire.size());
  EXPECT_EQ(out.verb, Verb::kMetrics);
  EXPECT_TRUE(out.tenant.empty());
}

TEST(Protocol, BadVerbThrows) {
  std::string wire;
  encode_request(sample_request(), wire);
  for (const std::uint8_t code : {std::uint8_t{0}, std::uint8_t{9}}) {
    std::string bad = wire;
    poke<std::uint8_t>(bad, 6, code);
    Request out;
    try {
      try_decode_request(bad, out);
      FAIL() << "expected ProtocolError for verb " << int(code);
    } catch (const ProtocolError& e) {
      EXPECT_EQ(e.status, Status::kBadVerb);
    }
  }
}

TEST(Protocol, OversizedLengthsThrowBeforeBuffering) {
  // Lengths over the bounds must throw even though the buffer holds
  // nothing but the header — the check runs before any allocation.
  std::string wire;
  encode_request(sample_request(), wire);
  std::string oversized_tenant = wire.substr(0, kHeaderBytes);
  poke<std::uint32_t>(oversized_tenant, 8, kMaxTenantLen + 1);
  Request out;
  try {
    try_decode_request(oversized_tenant, out);
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.status, Status::kBadTenant);
  }
  std::string oversized_payload = wire.substr(0, kHeaderBytes);
  poke<std::uint32_t>(oversized_payload, 20, kMaxPayloadLen + 1);
  try {
    try_decode_request(oversized_payload, out);
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.status, Status::kOversizedPayload);
  }
}

TEST(Protocol, EncodeRejectsOversizedTenant) {
  Request req = sample_request();
  req.tenant.assign(kMaxTenantLen + 1, 'x');
  std::string wire;
  EXPECT_THROW(encode_request(req, wire), ProtocolError);
}

// --------------------------------------------------- matrix payloads
TEST(Protocol, MatrixPayloadRoundTripsBitExactly) {
  const Csc m = spkadd::testing::random_matrix(211, 17, 900, 5);
  const std::string payload = encode_matrix(m);
  EXPECT_EQ(decode_matrix(payload), m);
}

TEST(Protocol, UndecodableMatrixPayloadThrowsBadPayload) {
  const std::string junk = "definitely not an SPKB container";
  try {
    (void)decode_matrix(junk);
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.status, Status::kBadPayload);
  }
  // Truncating a valid container must fail the same way.
  const Csc m = spkadd::testing::random_matrix(50, 5, 100, 6);
  const std::string good = encode_matrix(m);
  try {
    (void)decode_matrix(good.substr(0, good.size() / 2));
    FAIL() << "expected ProtocolError";
  } catch (const ProtocolError& e) {
    EXPECT_EQ(e.status, Status::kBadPayload);
  }
}

}  // namespace
