// DaemonServer + Client: SPKN round-trips over real localhost sockets,
// many concurrent connections feeding the burst path, per-connection
// protocol-error accounting, and clean shutdown draining in-flight
// submits. Runs under the TSAN CI leg (label: concurrency).
#include "net/server.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "core/spkadd.hpp"
#include "net/client.hpp"
#include "obs/metrics.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace {

using namespace spkadd::net;
using spkadd::testing::Csc;

constexpr std::int32_t kRows = 90;
constexpr std::int32_t kCols = 6;

Csc integer_matrix(std::uint64_t seed) {
  spkadd::util::Xoshiro256 rng(seed);
  spkadd::CooMatrix<std::int32_t, double> coo(kRows, kCols);
  coo.reserve(50);
  for (std::size_t i = 0; i < 50; ++i) {
    const auto r = static_cast<std::int32_t>(
        rng.bounded(static_cast<std::uint64_t>(kRows)));
    const auto c = static_cast<std::int32_t>(
        rng.bounded(static_cast<std::uint64_t>(kCols)));
    coo.push(r, c, static_cast<double>(rng.bounded(9)) - 4.0);
  }
  coo.compress();
  return coo.to_csc();
}

ServerConfig test_config() {
  ServerConfig cfg;
  cfg.service.window.bucket_width = 10;
  cfg.service.window.live_buckets = 4;
  cfg.service.window.batch_window = 3;
  cfg.service.workers = 2;
  cfg.service.queue_capacity = 64;
  cfg.service.burst_size = 8;
  return cfg;
}

/// Raw HTTP GET against the daemon's port: connect, send the request
/// line, read to EOF (the server answers Connection: close). The SPKN
/// Client cannot do this — the point is exercising the plain-HTTP path
/// the poll loop sniffs out by first byte.
std::string http_get(std::uint16_t port, const std::string& path) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                      sizeof(addr)),
            0);
  const std::string req =
      "GET " + path + " HTTP/1.0\r\nHost: localhost\r\n\r\n";
  EXPECT_EQ(::send(fd, req.data(), req.size(), 0),
            static_cast<ssize_t>(req.size()));
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  ::close(fd);
  return out;
}

/// Pull `"key":<number>` out of the stats JSON (flat integer fields).
std::uint64_t json_field(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = json.find(needle);
  if (pos == std::string::npos) return ~std::uint64_t{0};
  return std::stoull(json.substr(pos + needle.size()));
}

// ----------------------------------------------------------- lifecycle
TEST(Daemon, StartsOnEphemeralPortAndStopsCleanly) {
  DaemonServer server(test_config());
  EXPECT_NE(server.port(), 0);
  server.stop();
  server.stop();  // idempotent
  const auto stats = server.stats();
  EXPECT_EQ(stats.connections_accepted, 0u);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

// ---------------------------------------------------------- round-trip
TEST(Daemon, SubmitDrainSnapshotRoundTrip) {
  DaemonServer server(test_config());
  Client client("127.0.0.1", server.port());
  std::vector<Csc> updates;
  for (std::uint64_t i = 0; i < 6; ++i) {
    updates.push_back(integer_matrix(i));
    EXPECT_EQ(client.submit("t", 15, updates.back()), Status::kOk);
  }
  std::uint64_t applied = 0;
  EXPECT_EQ(client.drain(&applied), Status::kOk);
  EXPECT_EQ(applied, updates.size());
  const auto snap = client.snapshot("t");
  ASSERT_EQ(snap.status, Status::kOk);
  EXPECT_GE(snap.epoch, 1u);
  // One bucket only: the wire snapshot must be bit-identical to a
  // local one-shot spkadd of the same updates.
  EXPECT_EQ(snap.sum, spkadd::core::spkadd(updates));
  server.stop();
  EXPECT_EQ(server.stats().protocol_errors, 0u);
}

TEST(Daemon, ManyConcurrentConnectionsFoldBitIdentically) {
  // 8 pipelined connections hammer one tenant; the folded result must
  // be bit-identical to a one-shot spkadd over every update (integer
  // values make addition exact so interleaving cannot matter).
  constexpr int kClients = 8;
  constexpr int kPerClient = 6;
  DaemonServer server(test_config());
  std::vector<std::vector<Csc>> streams(kClients);
  std::vector<Csc> all;
  for (int c = 0; c < kClients; ++c)
    for (int i = 0; i < kPerClient; ++i) {
      streams[static_cast<std::size_t>(c)].push_back(integer_matrix(
          static_cast<std::uint64_t>(c * 100 + i)));
      all.push_back(streams[static_cast<std::size_t>(c)].back());
    }
  std::vector<std::thread> threads;
  for (int c = 0; c < kClients; ++c)
    threads.emplace_back([&, c] {
      Client client("127.0.0.1", server.port());
      for (const auto& u : streams[static_cast<std::size_t>(c)])
        client.submit_async("shared", 25, u);
      EXPECT_EQ(client.collect_acks(kPerClient),
                static_cast<std::size_t>(kPerClient));
      EXPECT_EQ(client.drain(), Status::kOk);
    });
  for (auto& t : threads) t.join();
  Client client("127.0.0.1", server.port());
  const auto snap = client.snapshot("shared");
  ASSERT_EQ(snap.status, Status::kOk);
  EXPECT_EQ(snap.sum, spkadd::core::spkadd(all));
  const std::string json = client.stats_json();
  EXPECT_EQ(json_field(json, "protocol_errors"), 0u);
  EXPECT_EQ(json_field(json, "applied"),
            static_cast<std::uint64_t>(kClients * kPerClient));
  server.stop();
  const auto stats = server.stats();
  EXPECT_EQ(stats.connections_accepted,
            static_cast<std::uint64_t>(kClients + 1));
  EXPECT_EQ(stats.protocol_errors, 0u);
}

// ------------------------------------------------------ error handling
TEST(Daemon, GarbageBytesGetErrorResponseAndConnectionCloses) {
  DaemonServer server(test_config());
  Client bad("127.0.0.1", server.port());
  bad.send_raw("this is not an SPKN frame at all........");
  const Response resp = bad.recv_response();
  EXPECT_EQ(resp.status, Status::kBadMagic);
  // Framing is unrecoverable: the server closes after the response.
  EXPECT_THROW((void)bad.recv_response(), std::runtime_error);
  // The error is accounted against exactly that connection.
  Client good("127.0.0.1", server.port());
  EXPECT_EQ(good.submit("t", 5, integer_matrix(1)), Status::kOk);
  server.stop();
  const auto stats = server.stats();
  EXPECT_EQ(stats.protocol_errors, 1u);
  std::uint64_t conns_with_errors = 0;
  for (const auto& c : stats.connections)
    if (c.errors != 0) ++conns_with_errors;
  EXPECT_EQ(conns_with_errors, 1u);
}

TEST(Daemon, BadMatrixPayloadKeepsConnectionUsable) {
  DaemonServer server(test_config());
  Client client("127.0.0.1", server.port());
  Request req;
  req.verb = Verb::kSubmit;
  req.tenant = "t";
  req.arg = 5;
  req.payload = "junk that is not an SPKB container";
  std::string wire;
  encode_request(req, wire);
  client.send_raw(wire);
  EXPECT_EQ(client.recv_response().status, Status::kBadPayload);
  // The frame was well delimited, so the same connection still works.
  EXPECT_EQ(client.submit("t", 5, integer_matrix(1)), Status::kOk);
  server.stop();
  EXPECT_EQ(server.stats().protocol_errors, 1u);
}

TEST(Daemon, RequestLevelErrorsAreAnsweredInline) {
  DaemonServer server(test_config());
  Client client("127.0.0.1", server.port());
  EXPECT_EQ(client.snapshot("ghost").status, Status::kUnknownTenant);
  EXPECT_EQ(client.submit("t", 15, integer_matrix(1)), Status::kOk);
  EXPECT_EQ(client.drain(), Status::kOk);
  EXPECT_EQ(client.snapshot("t", 99).status, Status::kBadWindow);
  EXPECT_EQ(client.submit("t", 15,
                          spkadd::testing::random_matrix(7, 7, 5, 1)),
            Status::kShapeMismatch);
  // The connection survived all three request-level errors.
  EXPECT_EQ(client.snapshot("t").status, Status::kOk);
}

TEST(Daemon, ExpiredSubmitsAreCountedOverTheWire) {
  DaemonServer server(test_config());
  Client client("127.0.0.1", server.port());
  EXPECT_EQ(client.submit("t", 75, integer_matrix(1)), Status::kOk);
  EXPECT_EQ(client.drain(), Status::kOk);
  // Bucket 0 is far behind the live ring [4..7]: accepted on the wire
  // (expiry is decided at fold time), then rejected and counted.
  EXPECT_EQ(client.submit("t", 5, integer_matrix(2)), Status::kOk);
  EXPECT_EQ(client.drain(), Status::kOk);
  const std::string json = client.stats_json();
  EXPECT_EQ(json_field(json, "expired"), 1u);
  EXPECT_EQ(json_field(json, "applied"), 1u);
}

// ------------------------------------------------------------ shutdown
TEST(Daemon, ShutdownDrainsInFlightSubmits) {
  DaemonServer server(test_config());
  Client client("127.0.0.1", server.port());
  constexpr std::uint64_t kUpdates = 12;
  for (std::uint64_t i = 0; i < kUpdates; ++i)
    client.submit_async("t", 15, integer_matrix(i));
  EXPECT_EQ(client.collect_acks(kUpdates), kUpdates);
  // stop() must fold everything already accepted before joining.
  server.stop();
  const auto stats = server.service().stats();
  EXPECT_EQ(stats.applied, kUpdates);
  EXPECT_EQ(stats.queue_depth, 0u);
}

TEST(Daemon, ConnectionsOverTheCapAreRejected) {
  auto cfg = test_config();
  cfg.max_connections = 1;
  DaemonServer server(cfg);
  Client first("127.0.0.1", server.port());
  EXPECT_EQ(first.submit("t", 5, integer_matrix(1)), Status::kOk);
  Client second("127.0.0.1", server.port());
  // The server accepts and immediately closes the over-cap socket, so
  // the first read reports EOF.
  EXPECT_THROW((void)second.recv_response(), std::runtime_error);
  server.stop();
  EXPECT_EQ(server.stats().connections_rejected, 1u);
}

// ------------------------------------------------------- observability
TEST(Daemon, MetricsVerbServesPrometheusExposition) {
  spkadd::obs::MetricsRegistry registry;  // isolated from other tests
  auto cfg = test_config();
  cfg.service.metrics = &registry;
  DaemonServer server(cfg);
  Client client("127.0.0.1", server.port());
  EXPECT_EQ(client.submit("acme", 15, integer_matrix(1)), Status::kOk);
  EXPECT_EQ(client.drain(), Status::kOk);
  EXPECT_EQ(client.snapshot("acme").status, Status::kOk);

  Status status = Status::kInternal;
  const std::string text = client.metrics_text(&status);
  EXPECT_EQ(status, Status::kOk);
  // The core families the scrape must carry (docs/OBSERVABILITY.md).
  EXPECT_NE(text.find("# TYPE spkadd_daemon_requests_total counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("spkadd_daemon_requests_total{verb=\"submit\"} 1"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE spkadd_daemon_request_seconds histogram"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("spkadd_service_applied_total"), std::string::npos)
      << text;
  EXPECT_NE(text.find("spkadd_queue_depth"), std::string::npos) << text;
  EXPECT_NE(text.find(
                "spkadd_tenant_live_buckets{service=\"windowed\","
                "tenant=\"acme\"}"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("spkadd_daemon_connections_open 1"),
            std::string::npos)
      << text;

  // The verb is accounted like any other request.
  const std::string json = client.stats_json();
  EXPECT_EQ(json_field(json, "requests_metrics"), 1u);
}

TEST(Daemon, HttpGetMetricsOnTheSamePort) {
  spkadd::obs::MetricsRegistry registry;
  auto cfg = test_config();
  cfg.service.metrics = &registry;
  DaemonServer server(cfg);
  {
    Client client("127.0.0.1", server.port());
    EXPECT_EQ(client.submit("acme", 15, integer_matrix(2)), Status::kOk);
    EXPECT_EQ(client.drain(), Status::kOk);
  }

  const std::string resp = http_get(server.port(), "/metrics");
  EXPECT_EQ(resp.rfind("HTTP/1.0 200 OK\r\n", 0), 0u) << resp;
  EXPECT_NE(resp.find("Content-Type: text/plain; version=0.0.4"),
            std::string::npos)
      << resp;
  EXPECT_NE(resp.find("spkadd_service_submitted_total"), std::string::npos)
      << resp;
  EXPECT_NE(resp.find("spkadd_ingest_bursts_total"), std::string::npos)
      << resp;

  // Counters are monotone across scrapes, and scrapes count themselves.
  const std::string again = http_get(server.port(), "/metrics");
  EXPECT_NE(again.find("spkadd_service_submitted_total"),
            std::string::npos);

  const std::string missing = http_get(server.port(), "/nope");
  EXPECT_EQ(missing.rfind("HTTP/1.0 404 Not Found\r\n", 0), 0u) << missing;

  server.stop();
  EXPECT_EQ(server.stats().requests_metrics, 2u);
}

TEST(Daemon, StatsJsonEscapesTenantNames) {
  auto cfg = test_config();
  cfg.service.metrics = nullptr;  // metrics off: stats must still work
  DaemonServer server(cfg);
  Client client("127.0.0.1", server.port());
  EXPECT_EQ(client.submit("we\"ird", 15, integer_matrix(3)), Status::kOk);
  EXPECT_EQ(client.drain(), Status::kOk);
  const std::string json = client.stats_json();
  EXPECT_NE(json.find("\"we\\\"ird\""), std::string::npos) << json;
  // Disabled registry: the metrics verb answers an empty exposition.
  Status status = Status::kInternal;
  EXPECT_EQ(client.metrics_text(&status), "");
  EXPECT_EQ(status, Status::kOk);
}

}  // namespace
