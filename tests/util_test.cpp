// Unit tests for src/util: rng, bit ops, prefix sums, cache detection,
// table printing, CLI parsing, thread control, timers.
#include <gtest/gtest.h>

#include <sstream>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/bit_ops.hpp"
#include "util/cache_info.hpp"
#include "util/cli.hpp"
#include "util/prefix_sum.hpp"
#include "util/rng.hpp"
#include "util/table_printer.hpp"
#include "util/thread_control.hpp"
#include "util/timer.hpp"

namespace {

using namespace spkadd::util;

// ---------------------------------------------------------------- rng
TEST(Rng, DeterministicForFixedSeed) {
  Xoshiro256 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (a() == b());
  EXPECT_LT(equal, 4);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Xoshiro256 root(99);
  Xoshiro256 s0 = root.split(0);
  Xoshiro256 s1 = root.split(1);
  int equal = 0;
  for (int i = 0; i < 64; ++i) equal += (s0() == s1());
  EXPECT_LT(equal, 4);
  // Splitting is a pure function of the root state and index.
  Xoshiro256 s0_again = root.split(0);
  Xoshiro256 s0_ref = root.split(0);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(s0_again(), s0_ref());
}

TEST(Rng, UniformInUnitInterval) {
  Xoshiro256 rng(7);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Rng, BoundedRespectsBound) {
  Xoshiro256 rng(11);
  for (std::uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.bounded(bound), bound);
  }
  EXPECT_EQ(rng.bounded(0), 0u);
}

TEST(Rng, BoundedIsRoughlyUniform) {
  Xoshiro256 rng(13);
  std::vector<int> hist(8, 0);
  for (int i = 0; i < 80000; ++i) ++hist[rng.bounded(8)];
  for (int h : hist) EXPECT_NEAR(h, 10000, 600);
}

TEST(Rng, SplitMixExpandsSeeds) {
  SplitMix64 sm(0);
  const auto a = sm.next();
  const auto b = sm.next();
  EXPECT_NE(a, b);
  EXPECT_NE(a, 0u);  // even seed 0 yields nonzero state
}

// ---------------------------------------------------------------- bit ops
TEST(BitOps, NextPow2Greater) {
  EXPECT_EQ(next_pow2_greater(0), 1u);
  EXPECT_EQ(next_pow2_greater(1), 2u);
  EXPECT_EQ(next_pow2_greater(2), 4u);
  EXPECT_EQ(next_pow2_greater(3), 4u);
  EXPECT_EQ(next_pow2_greater(4), 8u);  // strictly greater
  EXPECT_EQ(next_pow2_greater(1023), 1024u);
  EXPECT_EQ(next_pow2_greater(1024), 2048u);
}

TEST(BitOps, NextPow2) {
  EXPECT_EQ(next_pow2(0), 1u);
  EXPECT_EQ(next_pow2(1), 1u);
  EXPECT_EQ(next_pow2(5), 8u);
  EXPECT_EQ(next_pow2(64), 64u);
}

TEST(BitOps, IsPow2) {
  EXPECT_FALSE(is_pow2(0));
  EXPECT_TRUE(is_pow2(1));
  EXPECT_TRUE(is_pow2(64));
  EXPECT_FALSE(is_pow2(65));
}

TEST(BitOps, Log2Floor) {
  EXPECT_EQ(log2_floor(1), 0u);
  EXPECT_EQ(log2_floor(2), 1u);
  EXPECT_EQ(log2_floor(3), 1u);
  EXPECT_EQ(log2_floor(1024), 10u);
}

TEST(BitOps, CeilDiv) {
  EXPECT_EQ(ceil_div(10, 3), 4);
  EXPECT_EQ(ceil_div(9, 3), 3);
  EXPECT_EQ(ceil_div(1, 100), 1);
}

// ---------------------------------------------------------------- prefix sum
TEST(PrefixSum, SequentialMatchesDefinition) {
  std::vector<int> in{3, 1, 4, 1, 5};
  std::vector<int> out(in.size() + 1);
  exclusive_scan_seq(std::span<const int>(in), std::span<int>(out));
  EXPECT_EQ(out, (std::vector<int>{0, 3, 4, 8, 9, 14}));
}

TEST(PrefixSum, EmptyInput) {
  std::vector<int> in;
  std::vector<int> out(1);
  exclusive_scan(std::span<const int>(in), std::span<int>(out));
  EXPECT_EQ(out[0], 0);
}

TEST(PrefixSum, ParallelMatchesSequentialOnLargeInput) {
  std::vector<std::int64_t> in(1 << 16);
  spkadd::util::Xoshiro256 rng(3);
  for (auto& v : in) v = static_cast<std::int64_t>(rng.bounded(100));
  std::vector<std::int64_t> a(in.size() + 1), b(in.size() + 1);
  exclusive_scan_seq(std::span<const std::int64_t>(in),
                     std::span<std::int64_t>(a));
  exclusive_scan(std::span<const std::int64_t>(in), std::span<std::int64_t>(b));
  EXPECT_EQ(a, b);
}

TEST(PrefixSum, SingleElement) {
  std::vector<int> in{7};
  std::vector<int> out(2);
  exclusive_scan(std::span<const int>(in), std::span<int>(out));
  EXPECT_EQ(out, (std::vector<int>{0, 7}));
}

TEST(PrefixSum, AllEqualValuesLargeParallelPath) {
  // Above the parallel threshold with identical values: out[i] must be an
  // exact arithmetic ramp regardless of how blocks are carved up. Pin >= 2
  // threads so the parallel path actually runs even on a 1-core host
  // (exclusive_scan falls back to sequential when max_threads == 1).
  ThreadCountGuard guard(4);
  const std::size_t n = (1u << 15) + 13;
  std::vector<std::int64_t> in(n, 5);
  std::vector<std::int64_t> out(n + 1);
  exclusive_scan(std::span<const std::int64_t>(in),
                 std::span<std::int64_t>(out));
  for (std::size_t i = 0; i <= n; i += 997)
    EXPECT_EQ(out[i], static_cast<std::int64_t>(i) * 5) << "at " << i;
  EXPECT_EQ(out[n], static_cast<std::int64_t>(n) * 5);
}

TEST(PrefixSum, Int32MaxTotalDoesNotOverflowInt64) {
  // Offsets near the INT32 nnz ceiling: run the scan in 64-bit as the CSC
  // builders do when nnz approaches INT32_MAX.
  std::vector<std::int64_t> in{INT32_MAX - 2, 1, 1, 5};
  std::vector<std::int64_t> out(in.size() + 1);
  exclusive_scan_seq(std::span<const std::int64_t>(in),
                     std::span<std::int64_t>(out));
  EXPECT_EQ(out[3], static_cast<std::int64_t>(INT32_MAX));
  EXPECT_EQ(out[4], static_cast<std::int64_t>(INT32_MAX) + 5);
}

TEST(PrefixSum, CountsToOffsetsEmptyAndZeroCounts) {
  const auto empty = counts_to_offsets(std::span<const std::int32_t>());
  EXPECT_EQ(empty, (std::vector<std::int32_t>{0}));
  std::vector<std::int32_t> zeros{0, 0, 0};
  const auto offsets = counts_to_offsets(std::span<const std::int32_t>(zeros));
  EXPECT_EQ(offsets, (std::vector<std::int32_t>{0, 0, 0, 0}));
}

TEST(PrefixSum, CountsToOffsets) {
  std::vector<std::int32_t> counts{2, 0, 3};
  const auto offsets =
      counts_to_offsets(std::span<const std::int32_t>(counts));
  EXPECT_EQ(offsets, (std::vector<std::int32_t>{0, 2, 2, 5}));
}

// ---------------------------------------------------------------- cache info
TEST(CacheInfo, DetectionProducesSaneValues) {
  const auto info = detect_machine();
  EXPECT_GE(info.logical_cpus, 1);
  EXPECT_GE(info.l1.bytes, 1u << 10);
  EXPECT_GE(info.llc.bytes, info.l1.bytes);
  EXPECT_TRUE(is_pow2(info.llc.line_bytes));
}

TEST(CacheInfo, OverrideWinsAndClears) {
  set_llc_override(8u << 20);
  EXPECT_EQ(effective_llc_bytes(), 8u << 20);
  EXPECT_NE(detect_machine().summary().find("override"), std::string::npos);
  set_llc_override(0);
  EXPECT_EQ(effective_llc_bytes(), detect_machine().llc.bytes);
}

// ---------------------------------------------------------------- printer
TEST(TablePrinter, RendersAlignedMarkdown) {
  TablePrinter t({"Algorithm", "k=4"});
  t.add_row({"Hash", "0.0007"});
  t.add_row({"Sliding Hash", "0.0021"});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("| Algorithm"), std::string::npos);
  EXPECT_NE(s.find("| Sliding Hash | 0.0021 |"), std::string::npos);
  EXPECT_NE(s.find("|---"), std::string::npos);
  EXPECT_EQ(t.rows(), 2u);
}

TEST(TablePrinter, PadsAndTruncatesCells) {
  TablePrinter t({"a", "b"});
  t.add_row({"only-one"});
  t.add_row({"x", "y", "extra-dropped"});
  std::ostringstream os;
  t.print(os);
  EXPECT_EQ(os.str().find("extra-dropped"), std::string::npos);
}

TEST(TablePrinter, Formats) {
  EXPECT_EQ(TablePrinter::fmt_seconds(0.08321), "0.0832");
  EXPECT_EQ(TablePrinter::fmt_seconds(12.9322), "12.932");
  EXPECT_EQ(TablePrinter::fmt_ratio(3.204), "3.20x");
  EXPECT_EQ(TablePrinter::fmt_count(1234567), "1,234,567");
  EXPECT_EQ(TablePrinter::fmt_count(5), "5");
}

// ---------------------------------------------------------------- cli
TEST(Cli, ParsesAllForms) {
  CliParser cli("prog");
  const auto* rows = cli.add_int("rows", 10, "rows");
  const auto* scale = cli.add_double("scale", 1.0, "scale");
  const auto* verbose = cli.add_flag("verbose", "talk");
  const auto* name = cli.add_string("name", "def", "name");
  const char* argv[] = {"prog", "--rows", "42", "--scale=2.5", "--verbose",
                        "--name", "hello"};
  ASSERT_TRUE(cli.parse(7, argv));
  EXPECT_EQ(*rows, 42);
  EXPECT_DOUBLE_EQ(*scale, 2.5);
  EXPECT_TRUE(*verbose);
  EXPECT_EQ(*name, "hello");
}

TEST(Cli, DefaultsSurviveWhenUnset) {
  CliParser cli("prog");
  const auto* rows = cli.add_int("rows", 7, "rows");
  const char* argv[] = {"prog"};
  ASSERT_TRUE(cli.parse(1, argv));
  EXPECT_EQ(*rows, 7);
}

TEST(Cli, RejectsUnknownFlagAndBadValue) {
  CliParser cli("prog");
  cli.add_int("rows", 1, "rows");
  const char* bad1[] = {"prog", "--nope", "3"};
  EXPECT_FALSE(cli.parse(3, bad1));
  CliParser cli2("prog");
  cli2.add_int("rows", 1, "rows");
  const char* bad2[] = {"prog", "--rows", "abc"};
  EXPECT_FALSE(cli2.parse(3, bad2));
  CliParser cli3("prog");
  cli3.add_int("rows", 1, "rows");
  const char* bad3[] = {"prog", "--rows"};
  EXPECT_FALSE(cli3.parse(2, bad3));
}

TEST(Cli, StrictIntRejectsTrailingGarbage) {
  // std::stoll would accept "12abc" as 12; the strict parser must not.
  CliParser cli("prog");
  cli.add_int("rows", 1, "rows");
  const char* bad[] = {"prog", "--rows", "12abc"};
  EXPECT_FALSE(cli.parse(3, bad));
  CliParser cli2("prog");
  cli2.add_double("scale", 1.0, "scale");
  const char* bad2[] = {"prog", "--scale", "1.5x"};
  EXPECT_FALSE(cli2.parse(3, bad2));
}

TEST(Cli, IntListParsesSweepAxes) {
  CliParser cli("bench_service");
  const auto* shards = cli.add_int_list("shards", "4", "shard sweep");
  const auto* producers = cli.add_int_list("producers", "1,2", "producers");
  const char* argv[] = {"prog", "--shards", "1,2,8", "--negatives=-3,-1"};
  const auto* negatives = cli.add_int_list("negatives", "0", "negatives");
  ASSERT_TRUE(cli.parse(4, argv));
  EXPECT_EQ(*shards, (std::vector<std::int64_t>{1, 2, 8}));
  EXPECT_EQ(*producers, (std::vector<std::int64_t>{1, 2}));  // default
  EXPECT_EQ(*negatives, (std::vector<std::int64_t>{-3, -1}));
}

TEST(Cli, IntListRejectsMalformedLists) {
  for (const char* bad : {"1,,2", "1,2,", ",1", "", "1,a", "2;3"}) {
    CliParser cli("prog");
    cli.add_int_list("shards", "1", "shards");
    const char* argv[] = {"prog", "--shards", bad};
    EXPECT_FALSE(cli.parse(3, argv)) << "accepted '" << bad << "'";
  }
}

TEST(Cli, IntListBadDefaultThrowsAtRegistration) {
  CliParser cli("prog");
  EXPECT_THROW(cli.add_int_list("shards", "1,x", "shards"),
               std::invalid_argument);
  EXPECT_THROW(cli.add_int_list("shards", "", "shards"),
               std::invalid_argument);
}

// ------------------------------------------------------------ cache-spec
TEST(CacheSpec, ParsesLevelsWithSuffixes) {
  const auto levels = parse_cache_spec("L1:32K:8,L2:1M:16,LLC:8M:16");
  ASSERT_EQ(levels.size(), 3u);
  EXPECT_EQ(levels[0], (CacheLevelSpec{"L1", 32u << 10, 8}));
  EXPECT_EQ(levels[1], (CacheLevelSpec{"L2", 1u << 20, 16}));
  EXPECT_EQ(levels[2], (CacheLevelSpec{"LLC", 8u << 20, 16}));
  const auto raw = parse_cache_spec("LLC:12345:4");
  EXPECT_EQ(raw[0].bytes, 12345u);
  const auto giga = parse_cache_spec("HBM:2G:32");
  EXPECT_EQ(giga[0].bytes, 2ull << 30);
}

TEST(CacheSpec, FormatRoundTrips) {
  for (const char* spec :
       {"L1:32K:8,L2:1M:16,LLC:8M:16", "LLC:8M:16", "L1:1000:2,L2:2G:8"}) {
    EXPECT_EQ(format_cache_spec(parse_cache_spec(spec)), spec) << spec;
  }
  // Non-suffix-exact sizes render as raw bytes and still round-trip.
  const std::vector<CacheLevelSpec> odd{{"LLC", (8u << 20) + 1, 16}};
  EXPECT_EQ(parse_cache_spec(format_cache_spec(odd)), odd);
}

TEST(CacheSpec, RejectsMalformedSpecs) {
  for (const char* bad :
       {"", "LLC", "LLC:8M", "LLC:8M:16:9", ":8M:16", "LLC::16", "LLC:8M:",
        "LLC:0:16", "LLC:8M:0", "LLC:8X:16", "LLC:8M:16,", ",LLC:8M:16",
        "LLC:8M:16,,L1:1K:2", "LLC:-8:16", "LLC:8M:16 ", "LLC:8 M:16",
        "LLC:8MM:16", "LLC:8M:1048577"}) {
    EXPECT_THROW(parse_cache_spec(bad), std::invalid_argument)
        << "accepted '" << bad << "'";
  }
}

TEST(CacheInfo, CachedMachineIsStableAcrossCalls) {
  const MachineInfo& a = cached_machine();
  const MachineInfo& b = cached_machine();
  EXPECT_EQ(&a, &b);  // one sysfs probe per process, same object back
  EXPECT_GT(a.llc.bytes, 0u);
}

TEST(Cli, UsageMentionsEveryFlag) {
  CliParser cli("prog", "test program");
  cli.add_int("alpha", 1, "first");
  cli.add_flag("beta", "second");
  const std::string u = cli.usage();
  EXPECT_NE(u.find("--alpha"), std::string::npos);
  EXPECT_NE(u.find("--beta"), std::string::npos);
  EXPECT_NE(u.find("test program"), std::string::npos);
}

// ---------------------------------------------------------------- threads
TEST(ThreadControl, GuardRestores) {
  const int before = current_max_threads();
  {
    ThreadCountGuard guard(2);
    EXPECT_EQ(current_max_threads(), 2);
    {
      ThreadCountGuard inner(1);
      EXPECT_EQ(current_max_threads(), 1);
    }
    EXPECT_EQ(current_max_threads(), 2);
  }
  EXPECT_EQ(current_max_threads(), before);
}

TEST(ThreadControl, ClampsToOne) {
  ThreadCountGuard guard(0);
  EXPECT_GE(current_max_threads(), 1);
}

// ---------------------------------------------------------------- timer
TEST(Timer, MeasuresElapsedTime) {
  WallTimer t;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_GE(t.millis(), 15.0);
  t.reset();
  EXPECT_LT(t.millis(), 15.0);
}

TEST(PhaseTimerTest, AccumulatesPhases) {
  PhaseTimer pt;
  pt.add("symbolic", 0.5);
  pt.add("symbolic", 0.25);
  pt.add("compute", 1.0);
  EXPECT_DOUBLE_EQ(pt.get("symbolic"), 0.75);
  EXPECT_DOUBLE_EQ(pt.get("compute"), 1.0);
  EXPECT_DOUBLE_EQ(pt.get("missing"), 0.0);
  EXPECT_DOUBLE_EQ(pt.total(), 1.75);
  const int x = pt.time("lambda", [] { return 5; });
  EXPECT_EQ(x, 5);
  EXPECT_GE(pt.get("lambda"), 0.0);
  pt.clear();
  EXPECT_DOUBLE_EQ(pt.total(), 0.0);
}

}  // namespace
