// End-to-end smoke: every public subsystem is touchable and a tiny SpKAdd
// agrees across all methods.
#include <gtest/gtest.h>

#include <algorithm>

#include "cachesim/traced_spkadd.hpp"
#include "core/spkadd.hpp"
#include "gen/workload.hpp"
#include "io/matrix_market.hpp"
#include "matrix/validate.hpp"
#include "spgemm/local_spgemm.hpp"
#include "summa/sparse_summa.hpp"
#include "util/cache_info.hpp"
#include "version.hpp"

namespace {

using spkadd::CscMatrix;

TEST(Smoke, AllMethodsAgreeOnTinyWorkload) {
  spkadd::gen::WorkloadSpec spec;
  spec.rows = 1 << 8;
  spec.cols = 1 << 4;
  spec.avg_nnz_per_col = 8;
  spec.k = 8;
  const auto inputs = spkadd::gen::make_workload(spec);
  ASSERT_EQ(inputs.size(), 8u);

  spkadd::core::Options opts;
  opts.method = spkadd::core::Method::Hash;
  const auto reference = spkadd::core::spkadd(inputs, opts);
  ASSERT_TRUE(spkadd::validate(reference));

  for (auto m : {spkadd::core::Method::TwoWayIncremental,
                 spkadd::core::Method::TwoWayTree, spkadd::core::Method::Heap,
                 spkadd::core::Method::Spa, spkadd::core::Method::SlidingHash,
                 spkadd::core::Method::ReferenceIncremental,
                 spkadd::core::Method::ReferenceTree,
                 spkadd::core::Method::Auto}) {
    opts.method = m;
    const auto out = spkadd::core::spkadd(inputs, opts);
    EXPECT_TRUE(spkadd::approx_equal(reference, out))
        << spkadd::core::method_name(m);
  }
}

TEST(Smoke, VersionIsStamped) {
  // The build stamps src/version.hpp.in with the CMake project version.
  EXPECT_FALSE(spkadd::kVersion.empty());
  EXPECT_EQ(std::count(spkadd::kVersion.begin(), spkadd::kVersion.end(), '.'),
            2);
  EXPECT_GE(spkadd::kVersionMajor, 0);
  EXPECT_GE(spkadd::kVersionMinor, 0);
  EXPECT_GE(spkadd::kVersionPatch, 0);
}

TEST(Smoke, MachineDetectionNeverFails) {
  const auto info = spkadd::util::detect_machine();
  EXPECT_GE(info.logical_cpus, 1);
  EXPECT_GT(info.llc.bytes, 0u);
  EXPECT_FALSE(info.summary().empty());
}

}  // namespace
