// AggService: sharding correctness, deterministic final sums under
// producer/worker interleavings, snapshot-during-ingest consistency,
// shutdown, persistence round-trips, and stats invariants. Runs under
// the TSAN CI leg (label: concurrency).
#include "service/agg_service.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/spkadd.hpp"
#include "gen/workload.hpp"
#include "io/binary_io.hpp"
#include "test_helpers.hpp"

namespace {

using spkadd::core::spkadd;
using spkadd::service::AggService;
using spkadd::service::RowPartition;
using spkadd::service::ServiceConfig;
using spkadd::testing::Csc;

/// Random sparse matrix whose values are small integers, so double
/// addition is exact and any fold order yields bit-identical sums.
Csc integer_matrix(std::int32_t rows, std::int32_t cols, std::size_t nnz,
                   std::uint64_t seed) {
  spkadd::util::Xoshiro256 rng(seed);
  spkadd::CooMatrix<std::int32_t, double> coo(rows, cols);
  coo.reserve(nnz);
  for (std::size_t i = 0; i < nnz; ++i) {
    const auto r = static_cast<std::int32_t>(
        rng.bounded(static_cast<std::uint64_t>(rows)));
    const auto c = static_cast<std::int32_t>(
        rng.bounded(static_cast<std::uint64_t>(cols)));
    coo.push(r, c, static_cast<double>(rng.bounded(7)) - 3.0);
  }
  coo.compress();
  return coo.to_csc();
}

std::string temp_path(const std::string& stem) {
  return ::testing::TempDir() + stem;
}

// ------------------------------------------------------------ sharding
TEST(RowPartition, CoversRowsWithDisjointRanges) {
  const auto p = RowPartition::make(100, 3);
  std::int32_t covered = 0;
  for (std::size_t s = 0; s < 3; ++s) {
    const auto [lo, hi] = p.range(s);
    EXPECT_EQ(lo, covered);
    covered = hi;
    for (std::int32_t r = lo; r < hi; ++r) EXPECT_EQ(p.shard_of(r), s);
  }
  EXPECT_EQ(covered, 100);
}

TEST(RowPartition, MoreShardsThanRowsLeavesTrailingEmptyRanges) {
  const auto p = RowPartition::make(2, 4);
  EXPECT_EQ(p.range(0), std::make_pair(0, 1));
  EXPECT_EQ(p.range(1), std::make_pair(1, 2));
  EXPECT_EQ(p.range(2), std::make_pair(2, 2));  // empty
  EXPECT_EQ(p.range(3), std::make_pair(2, 2));  // empty
}

TEST(PartitionRows, SlicesPartitionEntriesAndReassembleExactly) {
  const Csc m = spkadd::testing::random_matrix(97, 13, 400, 7);
  const auto p = RowPartition::make(97, 4);
  const auto slices = spkadd::service::partition_rows(m, p);
  ASSERT_EQ(slices.size(), 4u);
  std::size_t total = 0;
  for (std::size_t s = 0; s < slices.size(); ++s) {
    EXPECT_EQ(slices[s].rows(), m.rows());
    EXPECT_EQ(slices[s].cols(), m.cols());
    EXPECT_TRUE(slices[s].is_sorted());  // stable split keeps order
    const auto [lo, hi] = p.range(s);
    for (auto r : slices[s].row_idx()) {
      EXPECT_GE(r, lo);
      EXPECT_LT(r, hi);
    }
    total += slices[s].nnz();
  }
  EXPECT_EQ(total, m.nnz());
  // Disjoint row ranges: summing the slices rebuilds m bit-exactly.
  std::vector<Csc> parts(slices.begin(), slices.end());
  EXPECT_EQ(spkadd(parts), m);
}

// ------------------------------------------------------- determinism
TEST(AggService, SingleWorkerMatchesSequentialAccumulator) {
  // One shard, one worker, one producer: the service folds in exactly
  // submission order, so even non-exact (arbitrary double) values must
  // match a sequential Accumulator bit for bit.
  const auto updates = spkadd::testing::random_collection(12, 300, 9, 150, 3);
  ServiceConfig cfg;
  cfg.shards = 1;
  cfg.workers = 1;
  cfg.batch_window = 4;
  AggService svc(cfg);
  for (const auto& u : updates) EXPECT_TRUE(svc.submit("t", u));
  svc.drain();
  const auto snap = svc.snapshot("t");

  spkadd::core::Accumulator<> acc(300, 9, cfg.options, cfg.batch_window);
  for (const auto& u : updates) acc.add(u);
  EXPECT_EQ(snap.sum, acc.finalize());
  EXPECT_EQ(snap.updates_applied, updates.size());
}

TEST(AggService, DeterministicFinalSumAcrossConfigsAndInterleavings) {
  // Integer-valued updates make double addition exact, so the final sum
  // must be bit-identical to a one-shot spkadd no matter how producers
  // and workers interleave. Swept over shard/worker configurations.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 6;
  std::vector<std::vector<Csc>> streams(kProducers);
  std::vector<Csc> all;
  for (int p = 0; p < kProducers; ++p)
    for (int i = 0; i < kPerProducer; ++i) {
      streams[p].push_back(integer_matrix(
          257, 11, 180, static_cast<std::uint64_t>(p * 100 + i)));
      all.push_back(streams[p].back());
    }
  const Csc expected = spkadd(all);

  struct Config {
    std::size_t shards, workers, window, burst;
  };
  // burst = 1 is the pre-burst per-update flush path; the larger bursts
  // exercise batch flushing and grouped per-shard folding.
  for (const Config c :
       {Config{1, 2, 4, 1}, Config{4, 4, 2, 8}, Config{3, 2, 8, 3}}) {
    for (std::uint64_t round = 0; round < 2; ++round) {
      ServiceConfig cfg;
      cfg.shards = c.shards;
      cfg.workers = c.workers;
      cfg.batch_window = c.window;
      cfg.burst_size = c.burst;
      cfg.queue_capacity = 8;  // small: exercise backpressure too
      // Real watermark hysteresis under real traffic: producers get
      // throttled at 6 and released at 3 without changing the sum.
      cfg.queue_high_watermark = 6;
      cfg.queue_low_watermark = 3;
      AggService svc(cfg);
      std::vector<std::thread> producers;
      for (int p = 0; p < kProducers; ++p)
        producers.emplace_back([&, p] {
          for (const auto& u : streams[static_cast<std::size_t>(p)]) {
            EXPECT_TRUE(svc.submit("grad", u));
            if ((p + round) % 2) std::this_thread::yield();
          }
        });
      for (auto& t : producers) t.join();
      svc.drain();
      const auto snap = svc.snapshot("grad");
      EXPECT_EQ(snap.sum, expected)
          << "shards=" << c.shards << " workers=" << c.workers
          << " window=" << c.window << " round=" << round;
      EXPECT_EQ(snap.updates_applied,
                static_cast<std::uint64_t>(kProducers * kPerProducer));
    }
  }
}

TEST(AggService, BurstedSingleLaneStillMatchesSequentialAccumulator) {
  // Same bit-for-bit pin as above, but with burst batching active and a
  // fast deadline flusher racing the producer: batching may change WHEN
  // updates reach the shard, never in WHAT order, so even arbitrary
  // double values must match a sequential Accumulator exactly.
  const auto updates = spkadd::testing::random_collection(13, 300, 9, 150, 5);
  ServiceConfig cfg;
  cfg.shards = 1;
  cfg.workers = 1;
  cfg.batch_window = 4;
  cfg.burst_size = 4;
  cfg.flush_deadline_us = 200;  // some bursts flush by deadline instead
  AggService svc(cfg);
  for (const auto& u : updates) {
    EXPECT_TRUE(svc.submit("t", u));
    if (u.nnz() % 3 == 0)
      std::this_thread::sleep_for(std::chrono::microseconds(300));
  }
  svc.drain();
  spkadd::core::Accumulator<> acc(300, 9, cfg.options, cfg.batch_window);
  for (const auto& u : updates) acc.add(u);
  EXPECT_EQ(svc.snapshot("t").sum, acc.finalize());
  EXPECT_EQ(svc.snapshot("t").updates_applied, updates.size());
}

// ------------------------------------------------------- consistency
TEST(AggService, SnapshotDuringIngestNeverObservesTornUpdates) {
  // Every update writes value 1 at one row per shard (column 0). A torn
  // apply would leave those rows unequal in a snapshot; the tenant
  // apply lock must make each update all-or-nothing.
  constexpr std::size_t kShards = 4;
  constexpr std::int32_t kRows = 64;
  constexpr int kUpdates = 60;
  const auto part = RowPartition::make(kRows, kShards);
  spkadd::CooMatrix<std::int32_t, double> coo(kRows, 1);
  for (std::size_t s = 0; s < kShards; ++s)
    coo.push(part.range(s).first, 0, 1.0);
  coo.compress();
  const Csc update = coo.to_csc();

  ServiceConfig cfg;
  cfg.shards = kShards;
  cfg.workers = 2;
  cfg.batch_window = 3;
  AggService svc(cfg);
  std::atomic<bool> done{false};
  std::thread producer([&] {
    for (int i = 0; i < kUpdates; ++i) EXPECT_TRUE(svc.submit("c", update));
    done.store(true);
  });
  int observed = 0;
  while (!done.load() || observed == 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(500));
    AggService::Snapshot snap;
    try {
      snap = svc.snapshot("c");
    } catch (const std::invalid_argument&) {
      continue;  // tenant not created yet
    }
    ++observed;
    const double first = snap.sum.at(part.range(0).first, 0);
    for (std::size_t s = 1; s < kShards; ++s)
      EXPECT_EQ(snap.sum.at(part.range(s).first, 0), first)
          << "torn update visible in snapshot " << snap.epoch;
    EXPECT_LE(first, static_cast<double>(kUpdates));
  }
  producer.join();
  svc.drain();
  const auto final_snap = svc.snapshot("c");
  for (std::size_t s = 0; s < kShards; ++s)
    EXPECT_EQ(final_snap.sum.at(part.range(s).first, 0),
              static_cast<double>(kUpdates));
  EXPECT_GE(final_snap.epoch, static_cast<std::uint64_t>(observed));
}

// ------------------------------------------------------------ tenants
TEST(AggService, TenantsAreIsolatedAndShapeChecked) {
  ServiceConfig cfg;
  cfg.shards = 2;
  AggService svc(cfg);
  const Csc a = integer_matrix(50, 4, 40, 1);
  const Csc b = integer_matrix(80, 6, 40, 2);
  EXPECT_TRUE(svc.submit("a", a));
  EXPECT_TRUE(svc.submit("b", b));
  EXPECT_TRUE(svc.submit("a", a));
  svc.drain();
  EXPECT_EQ(svc.snapshot("a").sum, spkadd(std::vector<Csc>{a, a}));
  EXPECT_EQ(svc.snapshot("b").sum, spkadd(std::vector<Csc>{b}));
  // A wrong-shape update to an existing tenant is rejected at submit.
  EXPECT_THROW(svc.submit("a", b), std::invalid_argument);
  EXPECT_THROW(svc.snapshot("nope"), std::invalid_argument);
}

TEST(AggService, SnapshotOfIdleTenantIsAllZero) {
  ServiceConfig cfg;
  cfg.shards = 3;
  AggService svc(cfg);
  EXPECT_TRUE(svc.submit("t", Csc(10, 3)));  // empty update
  svc.drain();
  const auto snap = svc.snapshot("t");
  EXPECT_EQ(snap.sum.rows(), 10);
  EXPECT_EQ(snap.sum.cols(), 3);
  EXPECT_EQ(snap.sum.nnz(), 0u);
  EXPECT_EQ(snap.epoch, 1u);
}

// ----------------------------------------------------------- shutdown
TEST(AggService, StopFoldsBacklogThenRejects) {
  ServiceConfig cfg;
  cfg.shards = 2;
  cfg.workers = 1;
  const Csc u = integer_matrix(40, 5, 30, 9);
  AggService svc(cfg);
  for (int i = 0; i < 10; ++i) EXPECT_TRUE(svc.submit("t", u));
  svc.stop();  // close + drain backlog + join
  EXPECT_FALSE(svc.submit("t", u));
  Csc spare = u;
  EXPECT_FALSE(svc.try_submit("t", std::move(spare)));
  const auto st = svc.stats();
  EXPECT_EQ(st.applied, 10u);
  EXPECT_EQ(st.rejected, 2u);
  std::vector<Csc> ten(10, u);
  EXPECT_EQ(svc.snapshot("t").sum, spkadd(ten));
}

// ------------------------------------------------------- burst ingest
TEST(AggService, DrainFlushesPartialBurstBuffers) {
  // A burst buffer far larger than the traffic and a flusher that
  // effectively never fires: drain() alone must still deliver every
  // staged update, or "drain then snapshot" silently loses the tail.
  ServiceConfig cfg;
  cfg.shards = 2;
  cfg.workers = 2;
  cfg.burst_size = 64;
  cfg.flush_deadline_us = 10'000'000;
  AggService svc(cfg);
  std::vector<Csc> updates;
  for (int i = 0; i < 5; ++i) {
    updates.push_back(integer_matrix(70, 6, 50, 40 + i));
    EXPECT_TRUE(svc.submit("t", updates.back()));
  }
  svc.drain();
  const auto st = svc.stats();
  EXPECT_EQ(st.applied, 5u);
  EXPECT_GE(st.ingest.flushes_drain, 1u);
  EXPECT_EQ(st.ingest.flushes_full, 0u);  // buffer never filled
  EXPECT_EQ(st.ingest.max_burst, 5u);     // one five-update burst
  EXPECT_EQ(svc.snapshot("t").sum, spkadd(updates));
}

TEST(AggService, StopFlushesPartialBurstBuffers) {
  // Shutdown gives the same guarantee as drain(): no update accepted by
  // submit() is lost in a half-full burst buffer.
  ServiceConfig cfg;
  cfg.shards = 2;
  cfg.workers = 1;
  cfg.burst_size = 64;
  cfg.flush_deadline_us = 10'000'000;
  AggService svc(cfg);
  std::vector<Csc> updates;
  for (int i = 0; i < 5; ++i) {
    updates.push_back(integer_matrix(70, 6, 50, 60 + i));
    EXPECT_TRUE(svc.submit("t", updates.back()));
  }
  svc.stop();
  const auto st = svc.stats();
  EXPECT_EQ(st.applied, 5u);
  EXPECT_EQ(st.rejected, 0u);
  EXPECT_GE(st.ingest.flushes_drain, 1u);
  EXPECT_EQ(svc.snapshot("t").sum, spkadd(updates));
}

TEST(AggService, DeadlineFlushDeliversLoneUpdate) {
  // One update, a 64-deep buffer, and no drain: only the background
  // deadline flusher can deliver it. A stranded lone update is exactly
  // the failure mode flush_deadline_us exists to rule out.
  ServiceConfig cfg;
  cfg.shards = 1;
  cfg.workers = 1;
  cfg.burst_size = 64;
  cfg.flush_deadline_us = 1000;
  AggService svc(cfg);
  EXPECT_TRUE(svc.submit("t", integer_matrix(40, 4, 30, 11)));
  // Poll for the counter too: the worker can apply the update before
  // the flusher (which pushes first, then counts) bumps its counter.
  const auto give_up =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while ((svc.stats().applied == 0 ||
          svc.stats().ingest.flushes_deadline == 0) &&
         std::chrono::steady_clock::now() < give_up)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const auto st = svc.stats();
  EXPECT_EQ(st.applied, 1u);
  EXPECT_GE(st.ingest.flushes_deadline, 1u);
  EXPECT_EQ(st.ingest.flushes_full, 0u);
}

TEST(AggService, ConfigValidationRejectsNonsense) {
  ServiceConfig cfg;
  cfg.shards = 0;
  EXPECT_THROW(AggService svc(cfg), std::invalid_argument);
  ServiceConfig cfg2;
  cfg2.batch_window = 0;
  EXPECT_THROW(AggService svc(cfg2), std::invalid_argument);
  ServiceConfig cfg3;
  cfg3.queue_capacity = 0;
  EXPECT_THROW(AggService svc(cfg3), std::invalid_argument);
}

TEST(AggService, RejectsUnsortedUpdatesWithoutPoisoningStagedBatches) {
  // The config declares inputs sorted (default), so an unsorted update
  // is invalid traffic. It must be dropped all-or-nothing BEFORE any
  // slice is staged — not std::terminate the worker, not poison a
  // half-full batch window so later folds or snapshots throw, and not
  // take already-staged good updates down with it.
  for (const std::size_t window : {1u, 4u}) {
    ServiceConfig cfg;
    cfg.shards = 2;
    cfg.workers = 1;
    cfg.batch_window = window;
    cfg.options.method = spkadd::core::Method::Heap;
    AggService svc(cfg);
    Csc unsorted = spkadd::testing::random_matrix(50, 4, 60, 3);
    spkadd::gen::shuffle_columns(unsorted, 99);
    ASSERT_FALSE(unsorted.is_sorted());
    const Csc good = integer_matrix(50, 4, 40, 4);
    EXPECT_TRUE(svc.submit("t", good));
    EXPECT_TRUE(svc.submit("t", good));  // staged, unfolded at window=4
    EXPECT_TRUE(svc.submit("t", unsorted));  // dropped, counted
    EXPECT_TRUE(svc.submit("t", good));
    svc.drain();
    const auto st = svc.stats();
    EXPECT_EQ(st.applied, 3u) << "window=" << window;
    EXPECT_EQ(st.apply_errors, 1u) << "window=" << window;
    // Snapshot must not throw, and every good update must survive.
    EXPECT_EQ(svc.snapshot("t").sum,
              spkadd(std::vector<Csc>{good, good, good}))
        << "window=" << window;
  }
}

TEST(AggService, ValidateRejectsFoldFatalMethodConfig) {
  // A merge-family method with inputs declared unsorted would throw on
  // every fold; the constructor must refuse it outright.
  ServiceConfig cfg;
  cfg.options.method = spkadd::core::Method::Heap;
  cfg.options.inputs_sorted = false;
  EXPECT_THROW(AggService svc(cfg), std::invalid_argument);
}

// -------------------------------------------------------------- stats
TEST(AggService, StatsAccountForEveryFoldedNonzero) {
  ServiceConfig cfg;
  cfg.shards = 3;
  cfg.workers = 2;
  cfg.batch_window = 2;
  AggService svc(cfg);
  std::size_t total_nnz = 0;
  for (int i = 0; i < 8; ++i) {
    Csc u = integer_matrix(120, 6, 90, static_cast<std::uint64_t>(i));
    total_nnz += u.nnz();
    EXPECT_TRUE(svc.submit("t", std::move(u)));
  }
  svc.drain();
  const auto st = svc.stats();
  EXPECT_EQ(st.submitted, 8u);
  EXPECT_EQ(st.applied, 8u);
  EXPECT_EQ(st.rejected, 0u);
  EXPECT_EQ(st.queue_depth, 0u);
  EXPECT_GE(st.queue_high_water, 1u);
  EXPECT_LE(st.queue_high_water, cfg.queue_capacity);
  ASSERT_EQ(st.shards.size(), 3u);
  std::uint64_t shard_nnz = 0, flushes = 0;
  for (const auto& sh : st.shards) {
    shard_nnz += sh.folded_nnz;
    flushes += sh.flushes;
  }
  EXPECT_EQ(shard_nnz, total_nnz);  // slices partition every entry
  EXPECT_GE(flushes, 1u);
  ASSERT_EQ(st.tenants.size(), 1u);
  EXPECT_EQ(st.tenants[0].updates_applied, 8u);
  EXPECT_EQ(st.tenants[0].folded_nnz, total_nnz);
  EXPECT_EQ(st.latency.count, 8u);
  EXPECT_LE(st.latency.p50, st.latency.p99);
  EXPECT_GT(st.latency.p99, 0.0);
}

TEST(AggService, StatsIncludeIngestBurstCounters) {
  ServiceConfig cfg;
  cfg.shards = 2;
  cfg.workers = 1;
  cfg.burst_size = 4;
  cfg.flush_deadline_us = 1'000'000;  // only full-buffer flushes here
  AggService svc(cfg);
  for (int i = 0; i < 8; ++i)
    EXPECT_TRUE(svc.submit(
        "t", integer_matrix(60, 5, 40, static_cast<std::uint64_t>(i))));
  svc.drain();
  const auto st = svc.stats();
  EXPECT_EQ(st.submitted, 8u);
  // Every update the service accepted went through a counted burst.
  EXPECT_EQ(st.ingest.burst_updates, st.submitted);
  EXPECT_GE(st.ingest.bursts, 2u);
  EXPECT_GE(st.ingest.flushes_full, 2u);
  EXPECT_EQ(st.ingest.max_burst, 4u);
  EXPECT_GT(st.ingest.avg_burst(), 1.0);
}

TEST(LatencyHistogram, QuantilesClampedToRecordedMax) {
  // The top occupied bucket's upper bound can exceed every recorded
  // value (log buckets are up to 12.5% wide); a reported p99 above the
  // true max is a lie operators will chase. Quantiles must clamp.
  spkadd::service::LatencyHistogram h;
  h.record(1'000'000'001);  // 1.000000001 s; its bucket tops out higher
  const auto s = h.summary();
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.max, 1.000000001);
  EXPECT_DOUBLE_EQ(s.p50, s.max);
  EXPECT_DOUBLE_EQ(s.p99, s.max);
  // Quantiles landing in lower buckets stay bucket-quantized but can
  // never overshoot the maximum either.
  h.record(1000);
  const auto s2 = h.summary();
  EXPECT_EQ(s2.count, 2u);
  EXPECT_LE(s2.p50, s2.p99);
  EXPECT_LE(s2.p99, s2.max);
}

// -------------------------------------------------------- persistence
TEST(AggService, SnapshotPersistenceRoundTripsAcrossShardLayouts) {
  // Integer values: the service runs 2 workers here, so fold order is
  // nondeterministic and only exact addition keeps == comparisons
  // meaningful (same discipline as the determinism tests above).
  std::vector<Csc> updates;
  for (int i = 0; i < 6; ++i)
    updates.push_back(integer_matrix(90, 7, 80, 21 + i));
  const std::string path = temp_path("agg_snapshot.spkb");
  std::uint64_t saved_epoch = 0;
  {
    ServiceConfig cfg;
    cfg.shards = 4;
    AggService svc(cfg);
    for (const auto& u : updates) EXPECT_TRUE(svc.submit("t", u));
    svc.drain();
    saved_epoch = svc.save_snapshot("t", path).epoch;
    EXPECT_EQ(saved_epoch, 1u);
  }
  // Restore into a DIFFERENT shard layout; the running sum must carry
  // over bit-exactly and keep accepting updates.
  ServiceConfig cfg;
  cfg.shards = 2;
  AggService svc(cfg);
  svc.restore("t", path);
  const auto snap = svc.snapshot("t");
  EXPECT_EQ(snap.sum, spkadd(updates));
  EXPECT_TRUE(svc.submit("t", updates[0]));
  svc.drain();
  std::vector<Csc> plus(updates);
  plus.push_back(updates[0]);
  EXPECT_EQ(svc.snapshot("t").sum, spkadd(plus));
}

TEST(AggService, RestoreRejectsCorruptedHeader) {
  const std::string path = temp_path("agg_corrupt.spkb");
  {
    ServiceConfig cfg;
    AggService svc(cfg);
    EXPECT_TRUE(svc.submit("t", integer_matrix(30, 3, 20, 5)));
    svc.drain();
    svc.save_snapshot("t", path);
  }
  // Flip the magic: read_binary's header validation must refuse it.
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(f.good());
    f.seekp(0);
    f.put('X');
  }
  ServiceConfig cfg;
  AggService svc(cfg);
  EXPECT_THROW(svc.restore("t", path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(AggService, RestoreRejectsShapeMismatchWithExistingTenant) {
  const std::string path = temp_path("agg_shape.spkb");
  {
    ServiceConfig cfg;
    AggService svc(cfg);
    EXPECT_TRUE(svc.submit("t", integer_matrix(30, 3, 20, 5)));
    svc.drain();
    svc.save_snapshot("t", path);
  }
  ServiceConfig cfg;
  AggService svc(cfg);
  EXPECT_TRUE(svc.submit("t", integer_matrix(31, 3, 20, 5)));
  svc.drain();
  EXPECT_THROW(svc.restore("t", path), std::invalid_argument);
  std::remove(path.c_str());
}

TEST(AggService, HybridFoldsMatchOneShotAndReportChunkMix) {
  // Per-chunk hybrid dispatch as the shard fold method: the concurrent
  // sharded sum must stay bit-identical to one-shot spkadd (integer
  // values), and the per-shard chunk-dispatch counters must surface the
  // kernel mix through ServiceStats.
  std::vector<Csc> updates;
  for (int i = 0; i < 16; ++i)
    updates.push_back(
        integer_matrix(257, 11, 180, static_cast<std::uint64_t>(900 + i)));
  const Csc expected = spkadd(updates);

  ServiceConfig cfg;
  cfg.shards = 3;
  cfg.workers = 2;
  cfg.batch_window = 4;
  cfg.options.method = spkadd::core::Method::Hybrid;
  AggService svc(cfg);
  std::vector<std::thread> producers;
  for (int p = 0; p < 2; ++p)
    producers.emplace_back([&, p] {
      for (int i = p; i < 16; i += 2)
        EXPECT_TRUE(svc.submit("t", updates[static_cast<std::size_t>(i)]));
    });
  for (auto& t : producers) t.join();
  svc.drain();
  EXPECT_EQ(svc.snapshot("t").sum, expected);

  const auto st = svc.stats();
  std::uint64_t chunks = 0;
  for (const auto& sh : st.shards)
    chunks += sh.chunks_heap + sh.chunks_spa + sh.chunks_hash +
              sh.chunks_sliding;
  EXPECT_GT(chunks, 0u);
}

}  // namespace
