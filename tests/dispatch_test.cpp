// Unified spkadd() dispatch, the Auto policy and Options plumbing.
#include <gtest/gtest.h>

#include <set>

#include "core/spkadd.hpp"
#include "gen/workload.hpp"
#include "matrix/validate.hpp"
#include "test_helpers.hpp"
#include "util/cache_info.hpp"

namespace {

using namespace spkadd;
using namespace spkadd::core;
using spkadd::testing::dense_sum_oracle;
using spkadd::testing::random_collection;

using Csc = spkadd::testing::Csc;
using Coo = spkadd::testing::Coo;

TEST(Dispatch, EveryMethodProducesTheSameSum) {
  const auto inputs = random_collection(8, 128, 16, 300, 1);
  const auto oracle = dense_sum_oracle(std::span<const Csc>(inputs));
  for (auto m : {Method::TwoWayIncremental, Method::TwoWayTree, Method::Heap,
                 Method::Spa, Method::Hash, Method::SlidingHash,
                 Method::DenseAcc, Method::ReferenceIncremental,
                 Method::ReferenceTree, Method::Auto, Method::Hybrid}) {
    Options opts;
    opts.method = m;
    EXPECT_TRUE(approx_equal(oracle, core::spkadd(inputs, opts)))
        << method_name(m);
  }
}

TEST(Dispatch, SingleInputIsCopiedThrough) {
  const auto inputs = random_collection(1, 32, 4, 40, 3);
  const auto out = core::spkadd(inputs);
  EXPECT_TRUE(out == inputs[0]);
}

TEST(Dispatch, SingleUnsortedInputIsCanonicalizedOnRequest) {
  auto inputs = random_collection(1, 64, 8, 120, 4);
  const auto sorted_original = inputs[0];
  spkadd::gen::shuffle_columns(inputs[0], 5);
  Options opts;
  opts.inputs_sorted = false;
  opts.sorted_output = true;
  EXPECT_TRUE(core::spkadd(inputs, opts) == sorted_original);
}

TEST(Dispatch, EmptyCollectionThrows) {
  std::vector<Csc> empty;
  EXPECT_THROW(core::spkadd(empty), std::invalid_argument);
}

TEST(AutoPolicy, SmallTablesPickPlainHash) {
  const auto inputs = random_collection(4, 256, 16, 200, 7);
  Options opts;
  opts.llc_bytes = 32u << 20;  // plenty of cache
  opts.threads = 1;
  EXPECT_EQ(auto_select(std::span<const Csc>(inputs), opts), Method::Hash);
}

TEST(AutoPolicy, CacheOverflowPicksSlidingHash) {
  const auto inputs = random_collection(8, 1 << 12, 2, 3000, 8);
  Options opts;
  opts.llc_bytes = 1 << 10;  // 1KB "LLC": tables cannot fit
  opts.threads = 4;
  EXPECT_EQ(auto_select(std::span<const Csc>(inputs), opts),
            Method::SlidingHash);
}

TEST(AutoPolicy, PairOfSortedInputsUsesTree) {
  const auto inputs = random_collection(2, 64, 8, 100, 9);
  EXPECT_EQ(auto_select(std::span<const Csc>(inputs), Options{}),
            Method::TwoWayTree);
}

TEST(AutoPolicy, RespectsGlobalLlcOverride) {
  const auto inputs = random_collection(8, 1 << 12, 2, 3000, 10);
  Options opts;
  opts.threads = 4;
  util::set_llc_override(1 << 10);
  const auto with_small = auto_select(std::span<const Csc>(inputs), opts);
  util::set_llc_override(1u << 30);
  const auto with_large = auto_select(std::span<const Csc>(inputs), opts);
  util::set_llc_override(0);
  EXPECT_EQ(with_small, Method::SlidingHash);
  EXPECT_EQ(with_large, Method::Hash);
}

TEST(AutoPolicy, DeterministicLlcBoundaryRegression) {
  // 4 addends, each contributing 10 distinct rows to column 0, so the
  // heaviest summed column has exactly 40 entries. With entry bytes
  // b = sizeof(int32) + sizeof(double) = 12 and threads pinned to 3, the
  // numeric-phase tables need 12 * 3 * 40 = 1440 bytes. The Fig. 2 surface
  // is "tables overflow LLC", so an exactly-fitting budget stays Hash and
  // one byte less tips to SlidingHash — independent of the host's real LLC
  // because opts.llc_bytes is pinned.
  std::vector<Csc> inputs;
  for (int i = 0; i < 4; ++i) {
    Coo coo(64, 2);
    for (int r = 0; r < 10; ++r)
      coo.push(static_cast<std::int32_t>(i * 10 + r), 0, 1.0);
    coo.compress();
    inputs.push_back(coo.to_csc());
  }
  constexpr std::size_t kTableBytes =
      (sizeof(std::int32_t) + sizeof(double)) * 3 * 40;
  Options opts;
  opts.threads = 3;
  opts.llc_bytes = kTableBytes;
  EXPECT_EQ(auto_select(std::span<const Csc>(inputs), opts), Method::Hash);
  opts.llc_bytes = kTableBytes - 1;
  EXPECT_EQ(auto_select(std::span<const Csc>(inputs), opts),
            Method::SlidingHash);
}

namespace {
constexpr Method kAllMethods[] = {
    Method::TwoWayIncremental, Method::TwoWayTree,
    Method::Heap,              Method::Spa,
    Method::Hash,              Method::SlidingHash,
    Method::DenseAcc,
    Method::ReferenceIncremental,
    Method::ReferenceTree,     Method::Auto,
    Method::Hybrid};
}  // namespace

TEST(MethodName, AllNamesDistinct) {
  std::set<std::string> names;
  for (auto m : kAllMethods) names.insert(method_name(m));
  EXPECT_EQ(names.size(), 11u);
}

TEST(MethodName, FromNameRoundTripsEveryMethod) {
  for (auto m : kAllMethods) EXPECT_EQ(method_from_name(method_name(m)), m);
}

TEST(MethodName, FromNameAcceptsCliSpellings) {
  EXPECT_EQ(method_from_name("hash"), Method::Hash);
  EXPECT_EQ(method_from_name("sliding-hash"), Method::SlidingHash);
  EXPECT_EQ(method_from_name("SLIDING_HASH"), Method::SlidingHash);
  EXPECT_EQ(method_from_name("2way-tree"), Method::TwoWayTree);
  EXPECT_EQ(method_from_name("ref-tree"), Method::ReferenceTree);
  EXPECT_EQ(method_from_name("Hybrid"), Method::Hybrid);
  EXPECT_EQ(method_from_name("dense"), Method::DenseAcc);
  EXPECT_EQ(method_from_name("DenseAcc"), Method::DenseAcc);
  EXPECT_THROW((void)method_from_name("hashish"), std::invalid_argument);
  EXPECT_THROW((void)method_from_name(""), std::invalid_argument);
}

TEST(ScheduleName, FromNameRoundTripsEverySchedule) {
  for (auto s :
       {Schedule::Dynamic, Schedule::Static, Schedule::NnzBalanced})
    EXPECT_EQ(schedule_from_name(schedule_name(s)), s);
  EXPECT_EQ(schedule_from_name("NNZ-Balanced"), Schedule::NnzBalanced);
  EXPECT_THROW((void)schedule_from_name("guided"), std::invalid_argument);
}

TEST(Dispatch, VectorOverloadMatchesSpanOverload) {
  const auto inputs = random_collection(4, 64, 8, 100, 11);
  EXPECT_TRUE(core::spkadd(inputs) ==
              core::spkadd(std::span<const Csc>(inputs), Options{}));
}

}  // namespace
