// Radix sort used by the hash/SPA emission paths.
#include <gtest/gtest.h>

#include <algorithm>

#include "util/radix_sort.hpp"
#include "util/rng.hpp"

namespace {

using namespace spkadd::util;

template <class K>
void check_pairs_sorted(std::size_t n, std::uint64_t seed, K key_bound) {
  Xoshiro256 rng(seed);
  std::vector<K> keys(n);
  std::vector<double> vals(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] =
        static_cast<K>(rng.bounded(static_cast<std::uint64_t>(key_bound)));
    vals[i] = static_cast<double>(keys[i]) * 0.5;  // value tied to key
  }
  auto expected_keys = keys;
  std::sort(expected_keys.begin(), expected_keys.end());

  RadixScratch<K, double> scratch;
  radix_sort_pairs(keys.data(), vals.data(), n, scratch);
  EXPECT_EQ(keys, expected_keys);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_DOUBLE_EQ(vals[i], static_cast<double>(keys[i]) * 0.5)
        << "value did not follow its key at " << i;
}

TEST(RadixSortPairs, SmallFallsBackToInsertion) {
  check_pairs_sorted<std::int32_t>(5, 1, 100);
  check_pairs_sorted<std::int32_t>(50, 2, 1 << 20);
}

TEST(RadixSortPairs, LargeRandom32) {
  check_pairs_sorted<std::int32_t>(10000, 3, INT32_MAX);
}

TEST(RadixSortPairs, LargeRandom64) {
  check_pairs_sorted<std::int64_t>(5000, 4, INT64_MAX / 2);
}

TEST(RadixSortPairs, NarrowKeyRangeSkipsPasses) {
  // All keys share the top three bytes: only one radix pass runs.
  check_pairs_sorted<std::int32_t>(4096, 5, 256);
}

TEST(RadixSortPairs, AlreadySortedAndReversed) {
  std::vector<std::int32_t> keys(1000);
  std::vector<double> vals(1000);
  for (int i = 0; i < 1000; ++i) {
    keys[static_cast<std::size_t>(i)] = i;
    vals[static_cast<std::size_t>(i)] = i;
  }
  RadixScratch<std::int32_t, double> scratch;
  radix_sort_pairs(keys.data(), vals.data(), keys.size(), scratch);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));

  std::reverse(keys.begin(), keys.end());
  std::reverse(vals.begin(), vals.end());
  radix_sort_pairs(keys.data(), vals.data(), keys.size(), scratch);
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  for (std::size_t i = 0; i < keys.size(); ++i)
    EXPECT_DOUBLE_EQ(vals[i], static_cast<double>(keys[i]));
}

TEST(RadixSortPairs, EmptyAndSingle) {
  RadixScratch<std::int32_t, double> scratch;
  radix_sort_pairs<std::int32_t, double>(nullptr, nullptr, 0, scratch);
  std::int32_t k = 7;
  double v = 1.0;
  radix_sort_pairs(&k, &v, 1, scratch);
  EXPECT_EQ(k, 7);
}

TEST(RadixSortPairs, DuplicateKeysAreStable) {
  // Stability: equal keys keep their input order of values.
  std::vector<std::int32_t> keys{5, 3, 5, 3, 5};
  std::vector<double> vals{1, 2, 3, 4, 5};
  RadixScratch<std::int32_t, double> scratch;
  radix_sort_pairs(keys.data(), vals.data(), keys.size(), scratch);
  EXPECT_EQ(keys, (std::vector<std::int32_t>{3, 3, 5, 5, 5}));
  EXPECT_EQ(vals, (std::vector<double>{2, 4, 1, 3, 5}));
}

TEST(RadixSortPairs, AllEqualKeysSkipEveryPass) {
  // Every byte histogram is degenerate, so all four passes are skipped and
  // the data must be left untouched in place (no scratch round-trip).
  const std::size_t n = 4096;
  std::vector<std::int32_t> keys(n, 42);
  std::vector<double> vals(n);
  for (std::size_t i = 0; i < n; ++i) vals[i] = static_cast<double>(i);
  RadixScratch<std::int32_t, double> scratch;
  radix_sort_pairs(keys.data(), vals.data(), n, scratch);
  EXPECT_TRUE(std::all_of(keys.begin(), keys.end(),
                          [](std::int32_t k) { return k == 42; }));
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_DOUBLE_EQ(vals[i], static_cast<double>(i)) << "stability at " << i;
}

TEST(RadixSortPairs, Int32MaxKeys) {
  // Row indices at the very top of the key space: INT32_MAX has every digit
  // byte 0xff/0x7f, exercising the last histogram buckets of each pass.
  const std::size_t n = 1024;
  std::vector<std::int32_t> keys(n);
  std::vector<double> vals(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = (i % 3 == 0) ? INT32_MAX
                           : static_cast<std::int32_t>(INT32_MAX - i);
    vals[i] = static_cast<double>(keys[i]);
  }
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  RadixScratch<std::int32_t, double> scratch;
  radix_sort_pairs(keys.data(), vals.data(), n, scratch);
  EXPECT_EQ(keys, expected);
  EXPECT_EQ(keys.back(), INT32_MAX);
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_DOUBLE_EQ(vals[i], static_cast<double>(keys[i]));
}

TEST(RadixSortKeys, EmptySingleAndAllEqual) {
  std::vector<std::int32_t> scratch;
  radix_sort_keys<std::int32_t>(nullptr, 0, scratch);

  std::int32_t one = 9;
  radix_sort_keys(&one, 1, scratch);
  EXPECT_EQ(one, 9);

  std::vector<std::int32_t> keys(2048, 7);
  radix_sort_keys(keys.data(), keys.size(), scratch);
  EXPECT_TRUE(std::all_of(keys.begin(), keys.end(),
                          [](std::int32_t k) { return k == 7; }));
}

TEST(RadixSortKeys, Int32MaxKeys) {
  std::vector<std::int32_t> keys(512);
  for (std::size_t i = 0; i < keys.size(); ++i)
    keys[i] = static_cast<std::int32_t>(INT32_MAX - (i * 37) % 1000);
  auto expected = keys;
  std::sort(expected.begin(), expected.end());
  std::vector<std::int32_t> scratch;
  radix_sort_keys(keys.data(), keys.size(), scratch);
  EXPECT_EQ(keys, expected);
}

TEST(RadixSortKeys, MatchesStdSort) {
  for (std::size_t n : {0u, 1u, 17u, 127u, 128u, 5000u}) {
    Xoshiro256 rng(n + 1);
    std::vector<std::int32_t> keys(n);
    for (auto& k : keys)
      k = static_cast<std::int32_t>(rng.bounded(1u << 24));
    auto expected = keys;
    std::sort(expected.begin(), expected.end());
    std::vector<std::int32_t> scratch;
    radix_sort_keys(keys.data(), keys.size(), scratch);
    EXPECT_EQ(keys, expected) << "n=" << n;
  }
}

}  // namespace
