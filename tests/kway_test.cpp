// k-way drivers: heap, SPA, hash, sliding hash — correctness against the
// dense oracle, edge cases, sorted/unsorted modes, counters.
#include <gtest/gtest.h>

#include "core/kway.hpp"
#include "gen/workload.hpp"
#include "matrix/validate.hpp"
#include "test_helpers.hpp"

namespace {

using namespace spkadd;
using namespace spkadd::core;
using spkadd::testing::canonicalized;
using spkadd::testing::dense_sum_oracle;
using spkadd::testing::from_triplets;
using spkadd::testing::random_collection;

using Csc = spkadd::testing::Csc;

class KwayDriverTest : public ::testing::Test {
 protected:
  static std::vector<Csc> paper_example() {
    // Fig. 1(a): four columns being added, extended to a full matrix.
    return {
        from_triplets(8, 1, {{1, 0, 3.0}, {3, 0, 2.0}, {6, 0, 1.0}}),
        from_triplets(8, 1, {{0, 0, 2.0}, {3, 0, 1.0}, {5, 0, 3.0}}),
        from_triplets(8, 1, {{5, 0, 2.0}, {7, 0, 1.0}}),
        from_triplets(8, 1, {{1, 0, 2.0}, {6, 0, 1.0}, {7, 0, 3.0}}),
    };
  }

  static Csc paper_result() {
    // Fig. 1(a) output column: (0,2)(1,5)(3,3)(5,5)(6,2)(7,4).
    return from_triplets(8, 1, {{0, 0, 2.0}, {1, 0, 5.0}, {3, 0, 3.0},
                                {5, 0, 5.0}, {6, 0, 2.0}, {7, 0, 4.0}});
  }
};

TEST_F(KwayDriverTest, HeapReproducesPaperFigure1) {
  const auto inputs = paper_example();
  EXPECT_TRUE(approx_equal(paper_result(),
                           spkadd_heap(std::span<const Csc>(inputs))));
}

TEST_F(KwayDriverTest, SpaReproducesPaperFigure1) {
  const auto inputs = paper_example();
  EXPECT_TRUE(approx_equal(paper_result(),
                           spkadd_spa(std::span<const Csc>(inputs))));
}

TEST_F(KwayDriverTest, HashReproducesPaperFigure1) {
  const auto inputs = paper_example();
  EXPECT_TRUE(approx_equal(paper_result(),
                           spkadd_hash(std::span<const Csc>(inputs))));
}

TEST_F(KwayDriverTest, SlidingHashReproducesPaperFigure1) {
  const auto inputs = paper_example();
  Options opts;
  opts.max_table_entries = 2;  // force many parts even on a tiny column
  EXPECT_TRUE(approx_equal(
      paper_result(), spkadd_sliding_hash(std::span<const Csc>(inputs), opts)));
}

TEST_F(KwayDriverTest, AllDriversMatchOracleOnRandomInputs) {
  const auto inputs = random_collection(8, 128, 16, 300, 42);
  const auto oracle = dense_sum_oracle(std::span<const Csc>(inputs));
  EXPECT_TRUE(approx_equal(oracle, spkadd_heap(std::span<const Csc>(inputs))));
  EXPECT_TRUE(approx_equal(oracle, spkadd_spa(std::span<const Csc>(inputs))));
  EXPECT_TRUE(approx_equal(oracle, spkadd_hash(std::span<const Csc>(inputs))));
  EXPECT_TRUE(approx_equal(
      oracle, spkadd_sliding_hash(std::span<const Csc>(inputs))));
}

TEST_F(KwayDriverTest, HandlesEmptyMatricesInCollection) {
  std::vector<Csc> inputs = random_collection(3, 32, 8, 50, 7);
  inputs.emplace_back(32, 8);  // all-empty addend
  inputs.emplace_back(32, 8);
  const auto oracle = dense_sum_oracle(std::span<const Csc>(inputs));
  EXPECT_TRUE(approx_equal(oracle, spkadd_hash(std::span<const Csc>(inputs))));
  EXPECT_TRUE(approx_equal(oracle, spkadd_heap(std::span<const Csc>(inputs))));
}

TEST_F(KwayDriverTest, AllEmptyCollection) {
  std::vector<Csc> inputs{Csc(16, 4), Csc(16, 4), Csc(16, 4)};
  // The drivers are overloaded on value vs pointer spans now; pin the
  // value-span flavor for the function-pointer sweep.
  using DriverFn = Csc (*)(std::span<const Csc>, const Options&);
  for (DriverFn fn : {static_cast<DriverFn>(&spkadd_heap<std::int32_t, double>),
                      static_cast<DriverFn>(&spkadd_spa<std::int32_t, double>),
                      static_cast<DriverFn>(&spkadd_hash<std::int32_t, double>),
                      static_cast<DriverFn>(
                          &spkadd_sliding_hash<std::int32_t, double>)}) {
    const auto out = fn(std::span<const Csc>(inputs), Options{});
    EXPECT_EQ(out.nnz(), 0u);
    EXPECT_EQ(out.rows(), 16);
    EXPECT_EQ(out.cols(), 4);
  }
}

TEST_F(KwayDriverTest, IdenticalInputsGiveCompressionFactorK) {
  const auto base = spkadd::testing::random_matrix(64, 8, 100, 5);
  std::vector<Csc> inputs(6, base);
  const auto out = spkadd_hash(std::span<const Csc>(inputs));
  EXPECT_EQ(out.nnz(), base.nnz());  // cf == 6
  EXPECT_DOUBLE_EQ(
      compression_factor(std::span<const Csc>(inputs), out), 6.0);
  // Values are 6x the base.
  for (std::int32_t j = 0; j < base.cols(); ++j) {
    const auto col = base.column(j);
    for (std::size_t i = 0; i < col.nnz(); ++i)
      EXPECT_NEAR(out.at(col.rows[i], j), 6.0 * col.vals[i], 1e-12);
  }
}

TEST_F(KwayDriverTest, CancellationKeepsStructuralZero) {
  // a + (-a): the stored pattern survives with value 0 (structural
  // semantics, matching the paper/CombBLAS).
  const auto a = from_triplets(8, 1, {{2, 0, 5.0}, {6, 0, -1.0}});
  auto neg = a;
  for (auto& v : neg.mutable_values()) v = -v;
  std::vector<Csc> inputs{a, neg};
  const auto out = spkadd_hash(std::span<const Csc>(inputs));
  EXPECT_EQ(out.nnz(), 2u);
  EXPECT_DOUBLE_EQ(out.at(2, 0), 0.0);
}

TEST_F(KwayDriverTest, HashAndSpaAcceptUnsortedInputs) {
  auto inputs = random_collection(4, 128, 8, 200, 9);
  const auto oracle = dense_sum_oracle(std::span<const Csc>(inputs));
  for (std::size_t i = 0; i < inputs.size(); ++i)
    spkadd::gen::shuffle_columns(inputs[i], 1000 + i);
  Options opts;
  opts.inputs_sorted = false;
  EXPECT_TRUE(approx_equal(
      oracle, spkadd_hash(std::span<const Csc>(inputs), opts)));
  EXPECT_TRUE(approx_equal(
      oracle, spkadd_spa(std::span<const Csc>(inputs), opts)));
  Options sliding_opts = opts;
  sliding_opts.max_table_entries = 16;  // force the filtered sliding path
  EXPECT_TRUE(approx_equal(
      oracle, spkadd_sliding_hash(std::span<const Csc>(inputs), sliding_opts)));
}

TEST_F(KwayDriverTest, HeapRejectsUnsortedInputs) {
  auto inputs = random_collection(3, 64, 8, 100, 12);
  spkadd::gen::shuffle_columns(inputs[1], 77);
  EXPECT_THROW(spkadd_heap(std::span<const Csc>(inputs)),
               std::invalid_argument);
  Options opts;
  opts.inputs_sorted = false;
  EXPECT_THROW(spkadd_heap(std::span<const Csc>(inputs), opts),
               std::invalid_argument);
}

TEST_F(KwayDriverTest, UnsortedOutputHasSameEntrySet) {
  const auto inputs = random_collection(6, 128, 8, 250, 21);
  const auto oracle = dense_sum_oracle(std::span<const Csc>(inputs));
  Options opts;
  opts.sorted_output = false;
  const auto hash_out = spkadd_hash(std::span<const Csc>(inputs), opts);
  EXPECT_TRUE(approx_equal(oracle, canonicalized(hash_out)));
  const auto spa_out = spkadd_spa(std::span<const Csc>(inputs), opts);
  EXPECT_TRUE(approx_equal(oracle, canonicalized(spa_out)));
}

TEST_F(KwayDriverTest, NonConformantInputsThrow) {
  std::vector<Csc> inputs{Csc(4, 4), Csc(4, 5)};
  EXPECT_THROW(spkadd_hash(std::span<const Csc>(inputs)),
               std::invalid_argument);
  std::vector<Csc> empty;
  EXPECT_THROW(spkadd_hash(std::span<const Csc>(empty)),
               std::invalid_argument);
}

TEST_F(KwayDriverTest, SlidingHashMatchesHashForAnyTableCap) {
  const auto inputs = random_collection(8, 256, 8, 400, 33);
  const auto reference = spkadd_hash(std::span<const Csc>(inputs));
  for (std::size_t cap : {8u, 16u, 64u, 256u, 4096u}) {
    Options opts;
    opts.max_table_entries = cap;
    EXPECT_TRUE(approx_equal(
        reference, spkadd_sliding_hash(std::span<const Csc>(inputs), opts)))
        << "cap=" << cap;
  }
}

TEST_F(KwayDriverTest, SlidingHashRespectsLlcBudgetOption) {
  const auto inputs = random_collection(8, 1 << 12, 4, 4000, 14);
  Options opts;
  opts.llc_bytes = 4 << 10;  // absurdly small LLC => many parts
  opts.threads = 1;
  const auto out = spkadd_sliding_hash(std::span<const Csc>(inputs), opts);
  EXPECT_TRUE(approx_equal(
      dense_sum_oracle(std::span<const Csc>(inputs)), out));
}

TEST_F(KwayDriverTest, CountersTrackWork) {
  const auto inputs = random_collection(8, 256, 16, 500, 55);
  OpCounters heap_c, hash_c, spa_c;
  Options opts;
  opts.counters = &heap_c;
  (void)spkadd_heap(std::span<const Csc>(inputs), opts);
  opts.counters = &hash_c;
  (void)spkadd_hash(std::span<const Csc>(inputs), opts);
  opts.counters = &spa_c;
  (void)spkadd_spa(std::span<const Csc>(inputs), opts);

  const std::size_t input_nnz = detail::total_nnz(std::span<const Csc>(inputs));
  // Every input entry passes through each structure at least once.
  EXPECT_GE(heap_c.heap_ops, input_nnz);
  EXPECT_GE(hash_c.hash_probes, input_nnz);
  EXPECT_GE(spa_c.spa_touches, input_nnz);
  EXPECT_GT(heap_c.bytes_moved, 0u);
}

TEST_F(KwayDriverTest, StaticScheduleGivesSameResult) {
  const auto inputs = random_collection(4, 128, 32, 300, 66);
  Options dyn, sta;
  sta.schedule = Schedule::Static;
  EXPECT_TRUE(approx_equal(spkadd_hash(std::span<const Csc>(inputs), dyn),
                           spkadd_hash(std::span<const Csc>(inputs), sta)));
}

TEST_F(KwayDriverTest, ExplicitThreadCounts) {
  const auto inputs = random_collection(4, 128, 16, 300, 71);
  const auto reference = spkadd_hash(std::span<const Csc>(inputs));
  for (int t : {1, 2, 4}) {
    Options opts;
    opts.threads = t;
    EXPECT_TRUE(approx_equal(reference,
                             spkadd_hash(std::span<const Csc>(inputs), opts)))
        << "threads=" << t;
    EXPECT_TRUE(approx_equal(reference,
                             spkadd_heap(std::span<const Csc>(inputs), opts)))
        << "threads=" << t;
  }
}

TEST_F(KwayDriverTest, SingleColumnManyRows) {
  const auto inputs = random_collection(16, 1 << 14, 1, 2000, 81);
  const auto hash_out = spkadd_hash(std::span<const Csc>(inputs));
  const auto heap_out = spkadd_heap(std::span<const Csc>(inputs));
  EXPECT_TRUE(approx_equal(hash_out, heap_out));
}

TEST_F(KwayDriverTest, WideMatrixManyEmptyColumns) {
  std::vector<Csc> inputs;
  for (int i = 0; i < 4; ++i)
    inputs.push_back(from_triplets(
        8, 64, {{i, i * 7 % 64, 1.0}, {7 - i, (i * 13 + 1) % 64, 2.0}}));
  const auto oracle = dense_sum_oracle(std::span<const Csc>(inputs));
  EXPECT_TRUE(approx_equal(oracle, spkadd_hash(std::span<const Csc>(inputs))));
  EXPECT_TRUE(approx_equal(oracle, spkadd_heap(std::span<const Csc>(inputs))));
  EXPECT_TRUE(approx_equal(oracle, spkadd_spa(std::span<const Csc>(inputs))));
}

}  // namespace
