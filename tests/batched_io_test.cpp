// Batched SpKAdd (the paper's §V memory-constrained extension) and the
// binary matrix container.
#include <gtest/gtest.h>

#include <sstream>

#include "core/batched.hpp"
#include "gen/workload.hpp"
#include "io/binary_io.hpp"
#include "io/matrix_market.hpp"
#include "matrix/validate.hpp"
#include "test_helpers.hpp"

namespace {

using namespace spkadd;
using namespace spkadd::core;
using spkadd::testing::dense_sum_oracle;
using spkadd::testing::random_collection;
using spkadd::testing::random_matrix;

using Csc = spkadd::testing::Csc;

// ------------------------------------------------------------- batched
TEST(Batched, MatchesUnbatchedForAllBatchSizes) {
  const auto inputs = random_collection(13, 128, 16, 250, 1);
  const auto oracle = dense_sum_oracle(std::span<const Csc>(inputs));
  for (std::size_t b : {2u, 3u, 4u, 7u, 13u, 100u}) {
    const auto out =
        spkadd_batched(std::span<const Csc>(inputs), b, Options{});
    EXPECT_TRUE(approx_equal(oracle, out)) << "batch_size=" << b;
  }
}

TEST(Batched, WorksWithEveryMethod) {
  const auto inputs = random_collection(9, 64, 8, 120, 2);
  const auto oracle = dense_sum_oracle(std::span<const Csc>(inputs));
  for (auto m : {Method::TwoWayTree, Method::Heap, Method::Spa, Method::Hash,
                 Method::SlidingHash}) {
    Options opts;
    opts.method = m;
    EXPECT_TRUE(approx_equal(
        oracle, spkadd_batched(std::span<const Csc>(inputs), 4, opts)))
        << method_name(m);
  }
}

TEST(Batched, MethodsByBatchSizesIncludingIndivisibleK) {
  // The batched-vs-unbatched equality property across the method grid:
  // batch_size=2 (the smallest legal batch) and sizes that do not divide k
  // exercise the partial-final-batch and acc-plus-batch fold paths.
  const int k = 11;  // prime: no batch size divides it
  const auto inputs = random_collection(k, 72, 9, 140, 21);
  const auto oracle = dense_sum_oracle(std::span<const Csc>(inputs));
  for (auto m : {Method::Auto, Method::TwoWayTree, Method::Heap, Method::Spa,
                 Method::Hash, Method::SlidingHash}) {
    for (const std::size_t b : {2u, 3u, 5u, 10u}) {
      Options opts;
      opts.method = m;
      EXPECT_TRUE(approx_equal(
          oracle, spkadd_batched(std::span<const Csc>(inputs), b, opts)))
          << method_name(m) << " batch=" << b;
    }
  }
}

TEST(Batched, UnsortedInputsAcrossBatchSizes) {
  auto inputs = random_collection(7, 64, 8, 130, 22);
  const auto oracle = dense_sum_oracle(std::span<const Csc>(inputs));
  for (auto& m : inputs) gen::shuffle_columns(m, 77);
  for (auto method : {Method::Spa, Method::Hash, Method::SlidingHash}) {
    for (const std::size_t b : {2u, 3u, 4u}) {
      Options opts;
      opts.method = method;
      opts.inputs_sorted = false;
      opts.sorted_output = true;
      EXPECT_TRUE(approx_equal(
          oracle, spkadd_batched(std::span<const Csc>(inputs), b, opts)))
          << method_name(method) << " batch=" << b;
    }
  }
}

TEST(Batched, PerformsZeroPerBatchInputCopies) {
  // The pre-accumulator implementation deep-copied every input into a
  // scratch vector each round; the streaming rewrite borrows pointers.
  const auto inputs = random_collection(16, 64, 8, 120, 23);
  Options opts;
  opts.method = Method::Hash;
  const std::uint64_t before = spkadd::debug::csc_copies();
  const auto out = spkadd_batched(std::span<const Csc>(inputs), 4, opts);
  EXPECT_EQ(spkadd::debug::csc_copies() - before, 0u);
  EXPECT_GT(out.nnz(), 0u);
}

TEST(Batched, RejectsDegenerateBatchSize) {
  const auto inputs = random_collection(4, 16, 4, 20, 3);
  EXPECT_THROW(spkadd_batched(std::span<const Csc>(inputs), 1, Options{}),
               std::invalid_argument);
  EXPECT_THROW(spkadd_batched(std::span<const Csc>(inputs), 0, Options{}),
               std::invalid_argument);
}

TEST(Batched, SingleBatchDegeneratesToPlainSpkadd) {
  const auto inputs = random_collection(4, 32, 4, 50, 4);
  EXPECT_TRUE(spkadd_batched(std::span<const Csc>(inputs), 8, Options{}) ==
              core::spkadd(inputs));
}

TEST(Batched, VectorOverload) {
  const auto inputs = random_collection(6, 32, 4, 50, 5);
  EXPECT_TRUE(spkadd_batched(inputs, 3) == core::spkadd(inputs));
}

// ------------------------------------------------------------- binary io
TEST(BinaryIo, RoundTripsExactly) {
  const auto m = random_matrix(256, 32, 1000, 6);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  io::write_binary(buf, m);
  EXPECT_TRUE(io::read_binary(buf) == m);
}

TEST(BinaryIo, RoundTripsEmptyMatrix) {
  const Csc m(10, 5);
  std::stringstream buf(std::ios::in | std::ios::out | std::ios::binary);
  io::write_binary(buf, m);
  const auto back = io::read_binary(buf);
  EXPECT_EQ(back.rows(), 10);
  EXPECT_EQ(back.cols(), 5);
  EXPECT_EQ(back.nnz(), 0u);
}

TEST(BinaryIo, FileRoundTrip) {
  const auto m = random_matrix(64, 8, 200, 7);
  const std::string path = ::testing::TempDir() + "/spkadd_bin_test.spkb";
  io::write_binary_file(path, m);
  EXPECT_TRUE(io::read_binary_file(path) == m);
  EXPECT_THROW(io::read_binary_file(path + ".missing"), std::runtime_error);
}

TEST(BinaryIo, RejectsCorruptedStreams) {
  const auto m = random_matrix(32, 4, 60, 8);
  std::stringstream good(std::ios::in | std::ios::out | std::ios::binary);
  io::write_binary(good, m);
  const std::string bytes = good.str();

  {  // bad magic
    std::string s = bytes;
    s[0] = 'X';
    std::istringstream in(s);
    EXPECT_THROW(io::read_binary(in), std::runtime_error);
  }
  {  // truncated halfway
    std::istringstream in(bytes.substr(0, bytes.size() / 2));
    EXPECT_THROW(io::read_binary(in), std::runtime_error);
  }
  {  // corrupt a row index beyond the row count
    std::string s = bytes;
    // Header is 4 + 4 + 4 + 4 + 8*3 = 40 bytes, then col_ptr (5 ints).
    const std::size_t row_idx_offset = 40 + 5 * sizeof(std::int32_t);
    std::int32_t huge = 1 << 20;
    std::memcpy(s.data() + row_idx_offset, &huge, sizeof(huge));
    std::istringstream in(s);
    EXPECT_THROW(io::read_binary(in), std::runtime_error);
  }
}

TEST(BinaryIo, MatrixMarketAndBinaryAgree) {
  const auto m = random_matrix(128, 16, 400, 9);
  std::stringstream bin(std::ios::in | std::ios::out | std::ios::binary);
  io::write_binary(bin, m);
  std::stringstream mm;
  io::write_mm(mm, m);
  EXPECT_TRUE(approx_equal(io::read_binary(bin),
                           io::read_mm_coo(mm).to_csc(), 1e-15));
}

}  // namespace
