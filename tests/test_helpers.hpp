// Shared fixtures for the spkadd test suite: small deterministic matrix
// builders and the dense oracle every algorithm is checked against.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "matrix/coo.hpp"
#include "matrix/csc.hpp"
#include "matrix/dense.hpp"
#include "util/rng.hpp"

namespace spkadd::testing {

using Csc = CscMatrix<std::int32_t, double>;
using Coo = CooMatrix<std::int32_t, double>;

/// Build a matrix from (row, col, val) triplets (duplicates summed).
inline Csc from_triplets(std::int32_t rows, std::int32_t cols,
                         std::initializer_list<std::tuple<int, int, double>>
                             triplets) {
  Coo coo(rows, cols);
  for (const auto& [r, c, v] : triplets)
    coo.push(static_cast<std::int32_t>(r), static_cast<std::int32_t>(c), v);
  coo.compress();
  return coo.to_csc();
}

/// Uniform random sparse matrix with ~`nnz` entries (duplicates merged, so
/// the realized count may be slightly lower). Sorted canonical columns.
inline Csc random_matrix(std::int32_t rows, std::int32_t cols,
                         std::size_t nnz, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  Coo coo(rows, cols);
  coo.reserve(nnz);
  for (std::size_t i = 0; i < nnz; ++i) {
    const auto r = static_cast<std::int32_t>(
        rng.bounded(static_cast<std::uint64_t>(rows)));
    const auto c = static_cast<std::int32_t>(
        rng.bounded(static_cast<std::uint64_t>(cols)));
    coo.push(r, c, 1.0 - rng.uniform());
  }
  coo.compress();
  return coo.to_csc();
}

/// k random conformant addends.
inline std::vector<Csc> random_collection(int k, std::int32_t rows,
                                          std::int32_t cols, std::size_t nnz,
                                          std::uint64_t seed) {
  std::vector<Csc> out;
  out.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i)
    out.push_back(random_matrix(rows, cols, nnz,
                                seed + static_cast<std::uint64_t>(i) * 7919));
  return out;
}

/// Dense oracle: B = sum inputs, emitted as CSC keeping exactly the union
/// of input patterns (the library keeps structural zeros).
inline Csc dense_sum_oracle(std::span<const Csc> inputs) {
  const std::int32_t rows = inputs[0].rows();
  const std::int32_t cols = inputs[0].cols();
  DenseMatrix<double> acc(rows, cols);
  std::vector<char> pattern(static_cast<std::size_t>(rows) *
                                static_cast<std::size_t>(cols),
                            0);
  for (const auto& m : inputs) {
    acc.accumulate(m);
    for (std::int32_t j = 0; j < cols; ++j) {
      const auto col = m.column(j);
      for (std::size_t i = 0; i < col.nnz(); ++i)
        pattern[static_cast<std::size_t>(j) * static_cast<std::size_t>(rows) +
                static_cast<std::size_t>(col.rows[i])] = 1;
    }
  }
  return acc.to_csc<std::int32_t>([&](std::int64_t r, std::int64_t c) {
    return pattern[static_cast<std::size_t>(c) *
                       static_cast<std::size_t>(rows) +
                   static_cast<std::size_t>(r)] != 0;
  });
}

/// Sort a possibly-unsorted result into canonical form (for comparing
/// sorted_output=false results against the oracle).
inline Csc canonicalized(Csc m) {
  m.sort_columns();
  return m;
}

}  // namespace spkadd::testing
