// Symbolic phase (Alg. 6/7): per-column output sizes, sliding partition,
// workspace behaviour.
#include <gtest/gtest.h>

#include "core/kway.hpp"
#include "core/symbolic.hpp"
#include "gen/workload.hpp"
#include "test_helpers.hpp"

namespace {

using namespace spkadd;
using namespace spkadd::core;
using spkadd::testing::from_triplets;
using spkadd::testing::random_collection;

using Csc = spkadd::testing::Csc;

std::vector<std::int32_t> oracle_counts(std::span<const Csc> inputs) {
  const auto oracle = spkadd::testing::dense_sum_oracle(inputs);
  std::vector<std::int32_t> counts(static_cast<std::size_t>(oracle.cols()));
  for (std::int32_t j = 0; j < oracle.cols(); ++j)
    counts[static_cast<std::size_t>(j)] =
        static_cast<std::int32_t>(oracle.col_nnz(j));
  return counts;
}

TEST(Symbolic, MatchesUnionSizesPlain) {
  const auto inputs = random_collection(8, 128, 16, 300, 1);
  const auto got =
      symbolic_nnz_per_column(std::span<const Csc>(inputs), Options{}, false);
  EXPECT_EQ(got, oracle_counts(std::span<const Csc>(inputs)));
}

TEST(Symbolic, MatchesUnionSizesSliding) {
  const auto inputs = random_collection(8, 128, 16, 300, 2);
  Options opts;
  opts.max_table_entries = 16;  // force multiple parts per column
  const auto got =
      symbolic_nnz_per_column(std::span<const Csc>(inputs), opts, true);
  EXPECT_EQ(got, oracle_counts(std::span<const Csc>(inputs)));
}

TEST(Symbolic, SlidingEqualsPlainForAllCaps) {
  const auto inputs = random_collection(4, 256, 8, 500, 3);
  const auto plain =
      symbolic_nnz_per_column(std::span<const Csc>(inputs), Options{}, false);
  for (std::size_t cap : {8u, 32u, 128u, 1u << 20}) {
    Options opts;
    opts.max_table_entries = cap;
    EXPECT_EQ(plain, symbolic_nnz_per_column(std::span<const Csc>(inputs),
                                             opts, true))
        << "cap=" << cap;
  }
}

TEST(Symbolic, SlidingHandlesUnsortedInputs) {
  auto inputs = random_collection(4, 256, 8, 500, 4);
  const auto plain =
      symbolic_nnz_per_column(std::span<const Csc>(inputs), Options{}, false);
  for (std::size_t i = 0; i < inputs.size(); ++i)
    spkadd::gen::shuffle_columns(inputs[i], 2000 + i);
  Options opts;
  opts.inputs_sorted = false;
  opts.max_table_entries = 32;
  EXPECT_EQ(plain, symbolic_nnz_per_column(std::span<const Csc>(inputs), opts,
                                           true));
}

TEST(Symbolic, CountsProbesAndTableInits) {
  const auto inputs = random_collection(4, 128, 8, 200, 5);
  OpCounters c;
  Options opts;
  opts.counters = &c;
  symbolic_nnz_per_column(std::span<const Csc>(inputs), opts, false);
  const std::size_t input_nnz =
      core::detail::total_nnz(std::span<const Csc>(inputs));
  EXPECT_GE(c.hash_probes, input_nnz);  // one probe minimum per entry
  EXPECT_GT(c.table_inits, 0u);
}

TEST(Symbolic, EmptyColumnsAreZero) {
  std::vector<Csc> inputs{from_triplets(8, 4, {{0, 1, 1.0}}),
                          from_triplets(8, 4, {{3, 1, 1.0}, {0, 3, 1.0}})};
  const auto got =
      symbolic_nnz_per_column(std::span<const Csc>(inputs), Options{}, false);
  EXPECT_EQ(got, (std::vector<std::int32_t>{0, 2, 0, 1}));
}

TEST(TableEntryCap, DerivesFromLlcAndThreads) {
  Options opts;
  opts.llc_bytes = 1 << 20;
  opts.threads = 4;
  // 1MB / (2 * 4B * 4 threads) = 32K keys for the symbolic phase (the
  // factor 2 covers the <= 0.5 table load factor).
  EXPECT_EQ(core::detail::table_entry_cap(opts, 4), (1u << 20) / 32);
  // Override wins.
  opts.max_table_entries = 123;
  EXPECT_EQ(core::detail::table_entry_cap(opts, 4), 123u);
  // Floor at 8.
  opts.max_table_entries = 1;
  EXPECT_EQ(core::detail::table_entry_cap(opts, 4), 8u);
}

TEST(FilterRange, SplitsByRow) {
  const auto a = from_triplets(10, 1, {{1, 0, 1.0}, {4, 0, 2.0}, {8, 0, 3.0}});
  const auto b = from_triplets(10, 1, {{4, 0, 5.0}});
  std::vector<ColumnView<std::int32_t, double>> views{a.column(0),
                                                      b.column(0)};
  std::vector<std::int32_t> rows;
  std::vector<double> vals;
  std::vector<std::size_t> bounds;
  std::vector<ColumnView<std::int32_t, double>> out;
  core::detail::filter_range(
      std::span<const ColumnView<std::int32_t, double>>(views),
      std::int32_t{2}, std::int32_t{8}, rows, vals, bounds, out);
  ASSERT_EQ(out.size(), 2u);  // both inputs have entries in [2, 8)
  EXPECT_EQ(out[0].nnz(), 1u);
  EXPECT_EQ(out[0].rows[0], 4);
  EXPECT_EQ(out[1].nnz(), 1u);
  EXPECT_DOUBLE_EQ(out[1].vals[0], 5.0);
}

// ------------------------------------------------------------- workspaces
TEST(Workspace, SpaGenerationsAvoidClearing) {
  SpaWorkspace<std::int32_t, double> spa;
  spa.ensure_rows(16);
  spa.new_column();
  spa.add(3, 1.0);
  spa.add(3, 2.0);
  spa.add(7, 5.0);
  EXPECT_EQ(spa.touched.size(), 2u);
  EXPECT_DOUBLE_EQ(spa.values[3], 3.0);
  spa.new_column();  // old entries invisible without clearing
  EXPECT_FALSE(spa.occupied(3));
  spa.add(3, 9.0);
  EXPECT_DOUBLE_EQ(spa.values[3], 9.0);
}

TEST(Workspace, SpaSurvivesGenerationWraparound) {
  SpaWorkspace<std::int32_t, double> spa;
  spa.ensure_rows(4);
  spa.generation = ~0u;  // force the wrap on next new_column
  spa.new_column();
  EXPECT_EQ(spa.generation, 1u);
  spa.add(0, 1.0);
  EXPECT_TRUE(spa.occupied(0));
  EXPECT_FALSE(spa.occupied(1));
}

TEST(Workspace, HashResetOnlyTouchesRequestedEntries) {
  HashWorkspace<std::int32_t, double> ws;
  ws.reset(8);
  EXPECT_EQ(ws.capacity(), 8u);
  ws.keys[0] = 42;
  ws.reset(4);  // shrink: only first 4 slots re-initialized, mask updated
  EXPECT_EQ(ws.capacity(), 4u);
  EXPECT_EQ(ws.keys[0], (HashWorkspace<std::int32_t, double>::kEmpty));
}

TEST(Workspace, HashTableEntriesKeepsLoadFactorUnderHalf) {
  EXPECT_EQ(hash_table_entries(0), 1u);
  EXPECT_EQ(hash_table_entries(1), 2u);
  EXPECT_EQ(hash_table_entries(8), 16u);
  EXPECT_EQ(hash_table_entries(9), 32u);
  // The load-factor guarantee: need / entries <= 0.5 for any need > 0.
  for (std::size_t need : {1u, 3u, 511u, 512u, 513u, 1023u, 1024u, 100000u})
    EXPECT_LE(2 * need, hash_table_entries(need)) << need;
}

}  // namespace
