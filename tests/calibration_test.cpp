// MissCostTable unit tests: JSON round-trip, strict loader rejection, and
// the nearest-grid-point argmin lookup the calibrated Hybrid planner uses.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <string>

#include "core/calibration.hpp"

namespace {

using spkadd::core::ColumnKernel;
using spkadd::core::MissCostTable;
using spkadd::core::nearest_log_index;

/// A tiny 2x2x2 table whose argmin is easy to read off: heap cheapest at
/// (k=4, d=2), sliding cheapest at (k=64, d=1024), hash elsewhere, SPA
/// never.
MissCostTable tiny_table() {
  MissCostTable t;
  t.hierarchy = "L1:32K:8,LLC:8M:16";
  t.rows = 1 << 14;
  t.threads = 48;
  t.k_axis = {4, 64};
  t.d_axis = {2, 1024};
  t.width_axis = {4, 64};
  for (auto& c : t.costs) c.assign(t.cells(), 100.0);
  auto cell = [&](std::size_t ik, std::size_t id, std::size_t iw) {
    return (ik * t.d_axis.size() + id) * t.width_axis.size() + iw;
  };
  const auto kHeap = static_cast<std::size_t>(ColumnKernel::Heap);
  const auto kSliding = static_cast<std::size_t>(ColumnKernel::SlidingHash);
  const auto kHash = static_cast<std::size_t>(ColumnKernel::Hash);
  t.costs[kHeap][cell(0, 0, 0)] = 1.0;
  t.costs[kHeap][cell(0, 0, 1)] = 1.0;
  t.costs[kSliding][cell(1, 1, 0)] = 1.0;
  t.costs[kSliding][cell(1, 1, 1)] = 1.0;
  for (std::size_t c = 0; c < t.cells(); ++c) t.costs[kHash][c] = 50.0;
  return t;
}

TEST(MissCostTable, UsableChecksShapes) {
  MissCostTable t = tiny_table();
  EXPECT_TRUE(t.usable());
  MissCostTable empty;
  EXPECT_FALSE(empty.usable());
  MissCostTable short_costs = tiny_table();
  short_costs.costs[0].pop_back();
  EXPECT_FALSE(short_costs.usable());
  MissCostTable bad_axis = tiny_table();
  bad_axis.k_axis = {64, 4};  // not ascending
  EXPECT_FALSE(bad_axis.usable());
  MissCostTable wrong_version = tiny_table();
  wrong_version.version = 99;
  EXPECT_FALSE(wrong_version.usable());
}

TEST(MissCostTable, JsonRoundTrip) {
  const MissCostTable t = tiny_table();
  const MissCostTable back = MissCostTable::from_json(t.to_json());
  EXPECT_EQ(back.version, t.version);
  EXPECT_EQ(back.hierarchy, t.hierarchy);
  EXPECT_EQ(back.rows, t.rows);
  EXPECT_EQ(back.threads, t.threads);
  EXPECT_EQ(back.k_axis, t.k_axis);
  EXPECT_EQ(back.d_axis, t.d_axis);
  EXPECT_EQ(back.width_axis, t.width_axis);
  for (std::size_t ki = 0; ki < spkadd::core::kNumColumnKernels; ++ki)
    EXPECT_EQ(back.costs[ki], t.costs[ki]) << ki;
}

TEST(MissCostTable, SaveLoadRoundTrip) {
  const std::string path =
      ::testing::TempDir() + "/misscost_roundtrip.json";
  const MissCostTable t = tiny_table();
  t.save(path);
  const MissCostTable back = MissCostTable::load(path);
  EXPECT_EQ(back.costs, t.costs);
  EXPECT_EQ(back.hierarchy, t.hierarchy);
  std::remove(path.c_str());
}

TEST(MissCostTable, LoaderRejectsMalformed) {
  EXPECT_THROW(MissCostTable::from_json(""), std::invalid_argument);
  EXPECT_THROW(MissCostTable::from_json("{}"), std::invalid_argument);
  EXPECT_THROW(MissCostTable::from_json("not json"), std::invalid_argument);
  // Wrong version (3 is from the future; 1 is the sanctioned back-compat
  // path, tested separately).
  MissCostTable t = tiny_table();
  std::string json = t.to_json();
  const auto pos = json.find("\"version\": 2");
  ASSERT_NE(pos, std::string::npos);
  json.replace(pos, 12, "\"version\": 3");
  EXPECT_THROW(MissCostTable::from_json(json), std::invalid_argument);
  // Truncated cost vector.
  MissCostTable cut = tiny_table();
  cut.costs[2].pop_back();
  EXPECT_THROW(MissCostTable::from_json(cut.to_json()),
               std::invalid_argument);
  // Unknown kernel key.
  std::string bad_kernel = tiny_table().to_json();
  const auto hpos = bad_kernel.find("\"heap\"");
  ASSERT_NE(hpos, std::string::npos);
  bad_kernel.replace(hpos, 6, "\"hexp\"");
  EXPECT_THROW(MissCostTable::from_json(bad_kernel), std::invalid_argument);
  // Missing file.
  EXPECT_THROW(MissCostTable::load("/nonexistent/misscost.json"),
               std::runtime_error);
}

TEST(MissCostTable, LoadsVersion1TablesWithoutDenseVector) {
  // A committed 4-kernel table from before the dense kernel must still
  // load: its dense cost vector is synthesized as all-unmeasured and the
  // table upgrades to the current version in memory.
  const MissCostTable t = tiny_table();
  std::string json = t.to_json();
  const auto vpos = json.find("\"version\": 2");
  ASSERT_NE(vpos, std::string::npos);
  json.replace(vpos, 12, "\"version\": 1");
  const auto dpos = json.find(",\n    \"dense\"");
  ASSERT_NE(dpos, std::string::npos);
  const auto dend = json.find(']', dpos);
  ASSERT_NE(dend, std::string::npos);
  json.erase(dpos, dend - dpos + 1);

  const MissCostTable back = MissCostTable::from_json(json);
  EXPECT_EQ(back.version, spkadd::core::kMissCostTableVersion);
  EXPECT_TRUE(back.usable());
  const auto dense_ix = static_cast<std::size_t>(ColumnKernel::DenseAcc);
  ASSERT_EQ(back.costs[dense_ix].size(), t.cells());
  for (const double c : back.costs[dense_ix]) EXPECT_LT(c, 0.0);
  for (std::size_t ki = 0; ki < dense_ix; ++ki)
    EXPECT_EQ(back.costs[ki], t.costs[ki]) << ki;
}

TEST(MissCostTable, NearestLogIndexSnapsGeometrically) {
  const std::vector<std::uint64_t> axis = {2, 16, 128, 1024};
  EXPECT_EQ(nearest_log_index(axis, 1), 0u);
  EXPECT_EQ(nearest_log_index(axis, 2), 0u);
  EXPECT_EQ(nearest_log_index(axis, 5), 0u);     // log2(5)=2.3, nearer 2
  EXPECT_EQ(nearest_log_index(axis, 7), 1u);     // log2(7)=2.8, nearer 16
  EXPECT_EQ(nearest_log_index(axis, 128), 2u);
  EXPECT_EQ(nearest_log_index(axis, 1u << 20), 3u);  // clamps to the end
}

TEST(MissCostTable, BestKernelArgminAndSortedContract) {
  const MissCostTable t = tiny_table();
  // Heap corner: k=4, summed chunk nnz 4*2=8 -> per-addend d=2.
  EXPECT_EQ(t.best_kernel(4, 8, 4, true), ColumnKernel::Heap);
  // ...but heap is excluded when the inputs are unsorted.
  EXPECT_EQ(t.best_kernel(4, 8, 4, false), ColumnKernel::Hash);
  // Sliding corner: k=64, per-addend d=1024.
  EXPECT_EQ(t.best_kernel(64, 64 * 1024, 64, true),
            ColumnKernel::SlidingHash);
  // Middle of the grid: hash wins (50 < 100 everywhere else).
  EXPECT_EQ(t.best_kernel(64, 64 * 2, 4, true), ColumnKernel::Hash);
  // Empty chunks always dispatch to Hash.
  EXPECT_EQ(t.best_kernel(64, 0, 4, true), ColumnKernel::Hash);
}

TEST(MissCostTable, DenseCompetesOnlyWhenEligible) {
  // The grid has no rows axis, so the dense kernel only joins the argmin
  // when the caller's analytic fill/residency gate says the chunk is
  // dense-eligible — even when its measured cost is the cheapest.
  MissCostTable t = tiny_table();
  const auto kDense = static_cast<std::size_t>(ColumnKernel::DenseAcc);
  for (auto& c : t.costs[kDense]) c = 0.5;
  EXPECT_EQ(t.best_kernel(64, 128, 4, true), ColumnKernel::Hash);
  EXPECT_EQ(t.best_kernel(64, 128, 4, true, /*dense_eligible=*/true),
            ColumnKernel::DenseAcc);
}

TEST(MissCostTable, UnmeasuredCellsAreSkipped) {
  MissCostTable t = tiny_table();
  // Mark every kernel but SPA unmeasured at cell (0,0,0): argmin must
  // fall through to SPA even though its cost is the nominal 100.
  for (const auto k :
       {ColumnKernel::Heap, ColumnKernel::Hash, ColumnKernel::SlidingHash})
    t.costs[static_cast<std::size_t>(k)][0] = -1.0;
  EXPECT_EQ(t.best_kernel(4, 8, 4, true), ColumnKernel::Spa);
}

}  // namespace
