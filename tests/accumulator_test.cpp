// The streaming accumulator (paper §V as a stateful subsystem): incremental
// folds equal one-shot SpKAdd, zero-copy staging, workspace persistence
// across finalize() cycles, the nnz-balanced schedule, and the hash-sentinel
// shape guard.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "core/accumulator.hpp"
#include "core/batched.hpp"
#include "gen/workload.hpp"
#include "matrix/validate.hpp"
#include "test_helpers.hpp"

namespace {

using namespace spkadd;
using namespace spkadd::core;
using spkadd::testing::canonicalized;
using spkadd::testing::dense_sum_oracle;
using spkadd::testing::random_collection;
using spkadd::testing::random_matrix;

using Csc = spkadd::testing::Csc;

// ----------------------------------------------------- partial_sum borrow
TEST(Accumulator, PartialSumBorrowsWithoutConsumingTheStream) {
  const auto inputs = random_collection(6, 64, 8, 120, 11);
  Accumulator<> acc(64, 8, {}, 4);
  for (int i = 0; i < 3; ++i) acc.add(inputs[static_cast<std::size_t>(i)]);
  // Borrowing folds what is pending but keeps the stream alive.
  const Csc mid = acc.partial_sum();
  EXPECT_EQ(acc.pending(), 0u);
  std::vector<Csc> first3(inputs.begin(), inputs.begin() + 3);
  EXPECT_EQ(mid, core::spkadd(first3));
  for (int i = 3; i < 6; ++i) acc.add(inputs[static_cast<std::size_t>(i)]);
  // The earlier borrow did not disturb the running sum: finalize still
  // matches the full one-shot reduction.
  const auto oracle = dense_sum_oracle(std::span<const Csc>(inputs));
  EXPECT_TRUE(approx_equal(oracle, acc.finalize()));
}

TEST(Accumulator, PartialSumOfVirginAccumulatorIsAllZeroShape) {
  Accumulator<> acc(10, 4);
  const Csc& p = acc.partial_sum();
  EXPECT_EQ(p.rows(), 10);
  EXPECT_EQ(p.cols(), 4);
  EXPECT_EQ(p.nnz(), 0u);
  EXPECT_TRUE(acc.partial_is_sorted());
  // finalize() after the materializing borrow is still the zero matrix.
  EXPECT_EQ(acc.finalize().nnz(), 0u);
}

TEST(Accumulator, PartialSortednessTracksUnsortedHashFolds) {
  Options opts;
  opts.method = Method::Hash;
  opts.sorted_output = false;
  Accumulator<> acc(128, 6, opts, 2);
  const auto inputs = random_collection(4, 128, 6, 400, 5);
  for (const auto& m : inputs) acc.add(m);
  (void)acc.partial_sum();
  EXPECT_FALSE(acc.partial_is_sorted());
}

TEST(Accumulator, DiscardStagedRecoversAfterAFailedFold) {
  Options opts;
  opts.method = Method::Heap;  // requires sorted inputs
  Accumulator<> acc(64, 4, opts, 8);
  const auto sorted = random_collection(3, 64, 4, 80, 17);
  for (const auto& m : sorted) acc.add(m);
  acc.flush();
  Csc bad = random_matrix(64, 4, 80, 18);
  gen::shuffle_columns(bad, 5);
  acc.add(bad);
  EXPECT_THROW(acc.flush(), std::invalid_argument);
  // The failed batch is dropped; the running sum keeps its last
  // consistent value and the accumulator keeps working.
  acc.discard_staged();
  EXPECT_EQ(acc.pending(), 0u);
  acc.add(sorted[0]);
  std::vector<Csc> expected(sorted);
  expected.push_back(sorted[0]);
  EXPECT_TRUE(approx_equal(dense_sum_oracle(std::span<const Csc>(expected)),
                           acc.finalize()));
}

// --------------------------------------------------- incremental == one-shot
TEST(Accumulator, IncrementalAddEqualsOneShotSpkadd) {
  for (const std::uint64_t seed : {1u, 2u, 3u}) {
    for (const int k : {1, 5, 8, 17}) {
      const auto inputs = random_collection(k, 96, 12, 200, seed);
      const auto oracle = dense_sum_oracle(std::span<const Csc>(inputs));
      Accumulator<> acc(96, 12);
      for (const auto& m : inputs) acc.add(m);
      EXPECT_TRUE(approx_equal(oracle, acc.finalize()))
          << "k=" << k << " seed=" << seed;
    }
  }
}

TEST(Accumulator, PropertyAcrossMethodsAndCapacities) {
  const auto inputs = random_collection(13, 64, 8, 150, 11);
  const auto oracle = dense_sum_oracle(std::span<const Csc>(inputs));
  for (auto m : {Method::Auto, Method::TwoWayTree, Method::Heap, Method::Spa,
                 Method::Hash, Method::SlidingHash, Method::DenseAcc}) {
    for (const std::size_t cap : {1u, 2u, 4u, 13u, 100u}) {
      Options opts;
      opts.method = m;
      Accumulator<> acc(64, 8, opts, cap);
      acc.add_batch(std::span<const Csc>(inputs));
      EXPECT_TRUE(approx_equal(oracle, acc.finalize()))
          << method_name(m) << " cap=" << cap;
    }
  }
}

TEST(Accumulator, UnsortedOutputStreamsFoldCorrectly) {
  // sorted_output=false leaves the running sum unsorted between folds; the
  // accumulator must mark it non-sorted for the next fold.
  const auto inputs = random_collection(9, 80, 6, 160, 13);
  const auto oracle = dense_sum_oracle(std::span<const Csc>(inputs));
  Options opts;
  opts.method = Method::Hash;
  opts.sorted_output = false;
  Accumulator<> acc(80, 6, opts, 3);
  for (const auto& m : inputs) acc.add(m);
  EXPECT_TRUE(approx_equal(oracle, canonicalized(acc.finalize())));
}

// ------------------------------------------------------------- edge streams
TEST(Accumulator, EmptyStreamYieldsAllZeroMatrix) {
  Accumulator<> acc(32, 4);
  const auto out = acc.finalize();
  EXPECT_EQ(out.rows(), 32);
  EXPECT_EQ(out.cols(), 4);
  EXPECT_EQ(out.nnz(), 0u);
}

TEST(Accumulator, SingleAddendStreamCopiesThrough) {
  const auto m = random_matrix(48, 6, 90, 17);
  Accumulator<> acc(48, 6);
  acc.add(m);
  EXPECT_TRUE(acc.finalize() == m);
}

TEST(Accumulator, EmptyAddendsAreHarmless) {
  auto inputs = random_collection(4, 40, 5, 80, 19);
  const auto oracle = dense_sum_oracle(std::span<const Csc>(inputs));
  Accumulator<> acc(40, 5, Options{}, 2);
  acc.add(Csc(40, 5));  // all-empty owned addend
  for (const auto& m : inputs) {
    acc.add(m);
    acc.add(Csc(40, 5));  // interleave empties
  }
  EXPECT_TRUE(approx_equal(oracle, acc.finalize()));
}

TEST(Accumulator, RejectsNonConformantAddend) {
  Accumulator<> acc(16, 4);
  EXPECT_THROW(acc.add(Csc(16, 5)), std::invalid_argument);
  EXPECT_THROW(acc.add(Csc(17, 4)), std::invalid_argument);
}

TEST(Accumulator, RejectsZeroBatchCapacity) {
  EXPECT_THROW(Accumulator<>(8, 2, Options{}, 0), std::invalid_argument);
}

// --------------------------------------------------------------- zero copies
TEST(Accumulator, BorrowedStreamingMakesZeroInputCopies) {
  const auto inputs = random_collection(16, 64, 8, 120, 23);
  Options opts;
  opts.method = Method::Hash;
  Accumulator<> acc(64, 8, opts, 4);
  const std::uint64_t before = debug::csc_copies();
  for (const auto& m : inputs) acc.add(m);
  auto out = acc.finalize();
  EXPECT_EQ(debug::csc_copies() - before, 0u);
  EXPECT_GT(out.nnz(), 0u);
}

TEST(Accumulator, MovedAddendsMakeZeroCopies) {
  auto inputs = random_collection(10, 64, 8, 120, 29);
  const auto oracle = dense_sum_oracle(std::span<const Csc>(inputs));
  Options opts;
  opts.method = Method::Hash;
  Accumulator<> acc(64, 8, opts, 3);
  const std::uint64_t before = debug::csc_copies();
  for (auto& m : inputs) acc.add(std::move(m));
  const auto out = acc.finalize();
  EXPECT_EQ(debug::csc_copies() - before, 0u);
  EXPECT_TRUE(approx_equal(oracle, out));
}

// ----------------------------------------------------------- workspace reuse
TEST(Accumulator, WorkspaceSurvivesFinalizeAndDoesNotRegrow) {
  const auto inputs = random_collection(12, 128, 16, 400, 31);
  const auto oracle = dense_sum_oracle(std::span<const Csc>(inputs));
  Options opts;
  opts.method = Method::Hash;
  Accumulator<> acc(128, 16, opts, 4);

  acc.add_batch(std::span<const Csc>(inputs));
  EXPECT_TRUE(approx_equal(oracle, acc.finalize()));
  const std::size_t grown = acc.workspace_bytes();
  EXPECT_GT(grown, 0u);  // scratch survives finalize()

  // An identical second stream must not grow the scratch further.
  acc.add_batch(std::span<const Csc>(inputs));
  EXPECT_TRUE(approx_equal(oracle, acc.finalize()));
  EXPECT_EQ(acc.workspace_bytes(), grown);
  EXPECT_EQ(acc.stats().addends, 24u);
  EXPECT_GE(acc.stats().flushes, 6u);
}

TEST(Accumulator, StatsTrackPeakIntermediateFootprint) {
  const auto inputs = random_collection(8, 64, 8, 200, 37);
  Accumulator<> acc(64, 8, Options{}, 4);
  acc.add_batch(std::span<const Csc>(inputs));
  (void)acc.finalize();
  EXPECT_GT(acc.stats().peak_intermediate_bytes, 0u);
}

// ----------------------------------------------- in-place staging + reshape
TEST(Accumulator, StageBufferEmitsInPlaceWithZeroCopies) {
  auto inputs = random_collection(9, 64, 8, 150, 41);
  const auto oracle = dense_sum_oracle(std::span<const Csc>(inputs));
  Options opts;
  opts.method = Method::Hash;
  Accumulator<> acc(64, 8, opts, 3);
  const std::uint64_t before = debug::csc_copies();
  for (auto& m : inputs) {
    acc.stage_buffer() = std::move(m);  // the producer fills the slot
    acc.commit_staged();
  }
  const auto out = acc.finalize();
  EXPECT_EQ(debug::csc_copies() - before, 0u);
  EXPECT_TRUE(approx_equal(oracle, out));
}

TEST(Accumulator, StageBufferProtocolIsEnforced) {
  const auto m = random_matrix(16, 4, 30, 42);
  Accumulator<> acc(16, 4);
  EXPECT_THROW(acc.commit_staged(), std::logic_error);  // nothing open
  auto& slot = acc.stage_buffer();
  EXPECT_THROW((void)acc.stage_buffer(), std::logic_error);  // already open
  EXPECT_THROW(acc.flush(), std::logic_error);  // fold with an open buffer
  EXPECT_THROW(acc.add(m), std::logic_error);   // add with an open buffer
  EXPECT_THROW(acc.add(Csc(m)), std::logic_error);  // owned add, same
  slot = Csc(16, 4);
  acc.commit_staged();
  EXPECT_EQ(acc.pending(), 1u);
  // A committed wrong-shape emission is rejected like any other addend.
  acc.stage_buffer() = Csc(8, 4);
  EXPECT_THROW(acc.commit_staged(), std::invalid_argument);
}

TEST(Accumulator, RejectedStageBufferLeavesNoDebris) {
  // A wrong-shape emission must vanish entirely: the next single-addend
  // stream must yield that addend, not the rejected buffer's contents.
  const auto m = random_matrix(16, 4, 30, 48);
  Accumulator<> acc(16, 4);
  acc.stage_buffer() = Csc(8, 4);
  EXPECT_THROW(acc.commit_staged(), std::invalid_argument);
  acc.add(m);  // borrowed single addend
  const auto out = acc.finalize();
  EXPECT_TRUE(out == m);
}

TEST(Accumulator, ReshapeServesDifferentlyShapedStreams) {
  Accumulator<> acc(64, 8, Options{}, 4);
  const auto first = random_collection(6, 64, 8, 150, 43);
  acc.add_batch(std::span<const Csc>(first));
  EXPECT_TRUE(approx_equal(dense_sum_oracle(std::span<const Csc>(first)),
                           acc.finalize()));
  const std::size_t grown = acc.workspace_bytes();

  acc.reshape(32, 5);
  EXPECT_EQ(acc.rows(), 32);
  EXPECT_EQ(acc.cols(), 5);
  EXPECT_EQ(acc.workspace_bytes(), grown);  // scratch survives the reshape
  const auto second = random_collection(6, 32, 5, 80, 44);
  acc.add_batch(std::span<const Csc>(second));
  EXPECT_TRUE(approx_equal(dense_sum_oracle(std::span<const Csc>(second)),
                           acc.finalize()));
}

TEST(Accumulator, ReshapeWhileNotIdleThrows) {
  const auto m = random_matrix(16, 4, 30, 45);
  Accumulator<> acc(16, 4);
  acc.add(m);
  EXPECT_THROW(acc.reshape(8, 8), std::logic_error);  // pending addend
  acc.flush();
  EXPECT_THROW(acc.reshape(8, 8), std::logic_error);  // running sum exists
  (void)acc.finalize();
  acc.reshape(8, 8);  // idle again: fine
  EXPECT_EQ(acc.rows(), 8);
}

TEST(Accumulator, PeakStagedNnzIsBoundedByBatchCapacity) {
  const auto inputs = random_collection(12, 64, 8, 200, 46);
  std::size_t max_addend = 0;
  for (const auto& m : inputs) max_addend = std::max(max_addend, m.nnz());
  for (const std::size_t cap : {1u, 2u, 4u}) {
    Accumulator<> acc(64, 8, Options{}, cap);
    acc.add_batch(std::span<const Csc>(inputs));
    (void)acc.finalize();
    EXPECT_LE(acc.stats().peak_staged_nnz, cap * max_addend) << "cap=" << cap;
    EXPECT_GT(acc.stats().peak_staged_nnz, 0u);
  }
}

TEST(Accumulator, HeapMethodStreamingIsBitIdenticalToOneShot) {
  // The (row, source) heap tie-break makes the k-way merge a strict left
  // fold, so incremental heap folds reproduce one-shot heap SpKAdd exactly.
  const auto inputs = random_collection(11, 96, 10, 400, 47);
  Options opts;
  opts.method = Method::Heap;
  const auto one_shot = core::spkadd(std::span<const Csc>(inputs), opts);
  for (const std::size_t cap : {1u, 2u, 3u, 16u}) {
    Accumulator<> acc(96, 10, opts, cap);
    acc.add_batch(std::span<const Csc>(inputs));
    EXPECT_TRUE(acc.finalize() == one_shot) << "cap=" << cap;
  }
}

// ------------------------------------------------- sparse→dense residency
TEST(DenseResidency, PromotedStreamIsByteIdenticalToSparseStream) {
  // Columns promoted to dense storage scatter addends in staged order, so
  // every snapshot must reproduce the never-promoted stream bit for bit —
  // including a mid-stream partial_sum() that forces demotion and a
  // second promotion wave afterwards.
  const auto inputs = random_collection(10, 64, 8, 300, 51);
  Options hot;
  hot.method = Method::Hash;
  hot.dense.promote_fill = 0.1;  // promote almost immediately
  Options cold = hot;
  cold.dense.enabled = false;

  Accumulator<> promoted(64, 8, hot, 2);
  Accumulator<> sparse(64, 8, cold, 2);
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    promoted.add(inputs[i]);
    sparse.add(inputs[i]);
    if (i == 5) {
      EXPECT_TRUE(promoted.partial_sum() == sparse.partial_sum());
      EXPECT_EQ(promoted.dense_resident_cols(), 0u);  // snapshot demotes
    }
  }
  promoted.flush();
  EXPECT_GT(promoted.dense_resident_cols(), 0u);
  EXPECT_GT(promoted.stats().dense_promotions, 0u);
  EXPECT_TRUE(promoted.finalize() == sparse.finalize());
  EXPECT_EQ(promoted.dense_resident_cols(), 0u);
  EXPECT_EQ(promoted.stats().dense_demotions,
            promoted.stats().dense_promotions);
  EXPECT_EQ(sparse.stats().dense_promotions, 0u);
}

TEST(DenseResidency, BudgetMinRowsAndSortednessGatePromotion) {
  const auto inputs = random_collection(6, 64, 8, 300, 53);
  const auto oracle = dense_sum_oracle(std::span<const Csc>(inputs));
  // A residency budget smaller than one column slot: nothing promotes.
  Options tiny;
  tiny.dense.promote_fill = 0.1;
  tiny.dense.max_resident_bytes = 8;
  // A min_rows taller than the matrix: nothing promotes.
  Options tall;
  tall.dense.promote_fill = 0.0;
  tall.dense.min_rows = 1000;
  // Unsorted running sums cannot host dense residents.
  Options unsorted;
  unsorted.method = Method::Hash;
  unsorted.sorted_output = false;
  unsorted.dense.promote_fill = 0.0;
  for (const Options& opts : {tiny, tall, unsorted}) {
    Accumulator<> acc(64, 8, opts, 2);
    acc.add_batch(std::span<const Csc>(inputs));
    acc.flush();
    EXPECT_EQ(acc.dense_resident_cols(), 0u);
    EXPECT_EQ(acc.stats().dense_promotions, 0u);
    EXPECT_TRUE(approx_equal(oracle, canonicalized(acc.finalize())));
  }
}

// ------------------------------------------------------ nnz-aware scheduling
TEST(Schedule, NnzBalancedMatchesOtherSchedulesExactly) {
  // Skewed columns (RMAT-ish) are where balancing matters; results must be
  // bit-identical across schedules because the per-column work is the same.
  gen::WorkloadSpec spec;
  spec.pattern = gen::Pattern::RMAT;
  spec.rows = 1 << 10;
  spec.cols = 1 << 6;
  spec.avg_nnz_per_col = 8;
  spec.k = 8;  // make_workload requires a power of two
  const auto inputs = gen::make_workload(spec);
  for (auto m : {Method::Heap, Method::Spa, Method::Hash,
                 Method::SlidingHash}) {
    Options dyn;
    dyn.method = m;
    dyn.schedule = Schedule::Dynamic;
    Options bal = dyn;
    bal.schedule = Schedule::NnzBalanced;
    EXPECT_TRUE(core::spkadd(inputs, dyn) == core::spkadd(inputs, bal))
        << method_name(m);
  }
}

TEST(Schedule, NnzBalancedWorksThroughBatchedAndAccumulator) {
  const auto inputs = random_collection(11, 96, 12, 250, 41);
  const auto oracle = dense_sum_oracle(std::span<const Csc>(inputs));
  Options opts;
  opts.schedule = Schedule::NnzBalanced;
  EXPECT_TRUE(approx_equal(
      oracle, spkadd_batched(std::span<const Csc>(inputs), 4, opts)));
  Accumulator<> acc(96, 12, opts, 3);
  acc.add_batch(std::span<const Csc>(inputs));
  EXPECT_TRUE(approx_equal(oracle, acc.finalize()));
}

TEST(Schedule, NamesAreDistinct) {
  EXPECT_NE(schedule_name(Schedule::Dynamic), schedule_name(Schedule::Static));
  EXPECT_NE(schedule_name(Schedule::Dynamic),
            schedule_name(Schedule::NnzBalanced));
}

// ------------------------------------------------------- hash sentinel guard
TEST(SentinelGuard, UnsignedMaxRowCountIsRejected) {
  using UCsc = CscMatrix<std::uint32_t, double>;
  constexpr auto kMax = std::numeric_limits<std::uint32_t>::max();
  const UCsc bad(kMax, 1);  // shape only: no entries allocated
  EXPECT_FALSE(validate(bad));
  std::vector<UCsc> inputs{bad, bad};
  EXPECT_THROW(
      (void)core::spkadd(std::span<const UCsc>(inputs), Options{}),
      std::invalid_argument);
  EXPECT_THROW((Accumulator<std::uint32_t, double>(kMax, 1)),
               std::invalid_argument);
}

TEST(SentinelGuard, SaneUnsignedShapesStillWork) {
  using UCsc = CscMatrix<std::uint32_t, double>;
  UCsc a(8, 2, {0, 2, 3}, {1, 5, 7}, {1.0, 2.0, 3.0});
  UCsc b(8, 2, {0, 1, 3}, {5, 0, 7}, {10.0, 4.0, 5.0});
  EXPECT_TRUE(validate(a));
  std::vector<UCsc> inputs{a, b};
  Options opts;
  opts.method = Method::Hash;
  const auto sum = core::spkadd(std::span<const UCsc>(inputs), opts);
  EXPECT_EQ(sum.nnz(), 4u);
  EXPECT_DOUBLE_EQ(sum.at(5, 0), 12.0);
  EXPECT_DOUBLE_EQ(sum.at(7, 1), 8.0);
}

TEST(SentinelGuard, SignedShapesAreUnaffected) {
  const auto inputs = random_collection(3, 32, 4, 60, 43);
  EXPECT_TRUE(validate(inputs[0]));
  EXPECT_NO_THROW((void)core::spkadd(inputs));
}

}  // namespace
