// Matrix Market reader/writer.
#include <gtest/gtest.h>

#include <sstream>

#include "io/matrix_market.hpp"
#include "matrix/validate.hpp"
#include "test_helpers.hpp"

namespace {

using namespace spkadd::io;
using spkadd::testing::random_matrix;

TEST(MatrixMarket, ParsesHeader) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "% a comment\n"
      "\n"
      "5 4 3\n");
  const auto h = read_mm_header(in);
  EXPECT_EQ(h.rows, 5);
  EXPECT_EQ(h.cols, 4);
  EXPECT_EQ(h.stored_entries, 3);
  EXPECT_FALSE(h.pattern);
  EXPECT_FALSE(h.symmetric);
}

TEST(MatrixMarket, ReadsGeneralReal) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "3 3 3\n"
      "1 1 1.5\n"
      "3 2 2.5\n"
      "2 3 -1.0\n");
  const auto m = read_mm_coo(in).to_csc();
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(m.at(2, 1), 2.5);
  EXPECT_DOUBLE_EQ(m.at(1, 2), -1.0);
}

TEST(MatrixMarket, PatternEntriesGetUnitValues) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate pattern general\n"
      "2 2 2\n"
      "1 1\n"
      "2 2\n");
  const auto m = read_mm_coo(in).to_csc();
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.at(1, 1), 1.0);
}

TEST(MatrixMarket, SymmetricExpansion) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real symmetric\n"
      "3 3 3\n"
      "1 1 5.0\n"
      "2 1 1.0\n"
      "3 2 2.0\n");
  const auto m = read_mm_coo(in).to_csc();
  EXPECT_EQ(m.nnz(), 5u);  // diagonal not mirrored
  EXPECT_DOUBLE_EQ(m.at(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(m.at(2, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.at(1, 2), 2.0);
}

TEST(MatrixMarket, SkewSymmetricNegatesMirror) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real skew-symmetric\n"
      "2 2 1\n"
      "2 1 3.0\n");
  const auto m = read_mm_coo(in).to_csc();
  EXPECT_DOUBLE_EQ(m.at(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.at(0, 1), -3.0);
}

TEST(MatrixMarket, IntegerFieldReads) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate integer general\n"
      "2 2 1\n"
      "1 2 7\n");
  const auto m = read_mm_coo(in).to_csc();
  EXPECT_DOUBLE_EQ(m.at(0, 1), 7.0);
}

TEST(MatrixMarket, DuplicateEntriesAreSummed) {
  std::istringstream in(
      "%%MatrixMarket matrix coordinate real general\n"
      "2 2 2\n"
      "1 1 1.0\n"
      "1 1 2.0\n");
  const auto m = read_mm_coo(in).to_csc();
  EXPECT_EQ(m.nnz(), 1u);
  EXPECT_DOUBLE_EQ(m.at(0, 0), 3.0);
}

TEST(MatrixMarket, RejectsMalformedInputs) {
  {
    std::istringstream in("not a banner\n1 1 0\n");
    EXPECT_THROW(read_mm_coo(in), std::runtime_error);
  }
  {
    std::istringstream in("%%MatrixMarket matrix array real general\n1 1 1\n");
    EXPECT_THROW(read_mm_coo(in), std::runtime_error);
  }
  {
    std::istringstream in(
        "%%MatrixMarket matrix coordinate complex general\n1 1 1\n");
    EXPECT_THROW(read_mm_coo(in), std::runtime_error);
  }
  {  // truncated entries
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n3 3 2\n1 1 1.0\n");
    EXPECT_THROW(read_mm_coo(in), std::runtime_error);
  }
  {  // out-of-range 1-based index
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n2 2 1\n3 1 1.0\n");
    EXPECT_THROW(read_mm_coo(in), std::runtime_error);
  }
  {  // missing value on real matrix
    std::istringstream in(
        "%%MatrixMarket matrix coordinate real general\n2 2 1\n1 1\n");
    EXPECT_THROW(read_mm_coo(in), std::runtime_error);
  }
}

TEST(MatrixMarket, WriteReadRoundTrip) {
  const auto m = random_matrix(64, 16, 150, 77);
  std::ostringstream out;
  write_mm(out, m);
  std::istringstream in(out.str());
  const auto back = read_mm_coo(in).to_csc();
  EXPECT_TRUE(spkadd::approx_equal(m, back, 1e-15));
}

TEST(MatrixMarket, EmptyMatrixRoundTrip) {
  // A 0-nnz matrix still carries its shape through the format.
  const spkadd::CscMatrix<std::int32_t, double> m(12, 7);
  std::ostringstream out;
  write_mm(out, m);
  std::istringstream in(out.str());
  const auto back = read_mm_coo(in).to_csc();
  EXPECT_EQ(back.rows(), 12);
  EXPECT_EQ(back.cols(), 7);
  EXPECT_EQ(back.nnz(), 0u);
}

TEST(MatrixMarket, FileRoundTrip) {
  const auto m = random_matrix(32, 8, 60, 3);
  const std::string path = ::testing::TempDir() + "/spkadd_io_test.mtx";
  write_mm_file(path, m);
  const auto back = read_mm_csc_file(path);
  EXPECT_TRUE(spkadd::approx_equal(m, back, 1e-15));
  EXPECT_THROW(read_mm_csc_file(path + ".does-not-exist"),
               std::runtime_error);
}

}  // namespace
