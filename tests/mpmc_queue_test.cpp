// BoundedMpmcQueue: FIFO order, capacity/backpressure, shutdown
// semantics, and a multi-producer/multi-consumer stress run. These are
// the tests the TSAN CI leg exercises (label: concurrency).
#include "util/mpmc_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace {

using spkadd::util::BoundedMpmcQueue;

TEST(MpmcQueue, FifoSingleThreaded) {
  BoundedMpmcQueue<int> q(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.push(i));
  for (int i = 0; i < 8; ++i) {
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(MpmcQueue, RejectsZeroCapacity) {
  EXPECT_THROW(BoundedMpmcQueue<int>(0), std::invalid_argument);
}

TEST(MpmcQueue, TryPushRespectsCapacity) {
  BoundedMpmcQueue<int> q(2);
  int a = 1, b = 2, c = 3;
  EXPECT_TRUE(q.try_push(std::move(a)));
  EXPECT_TRUE(q.try_push(std::move(b)));
  EXPECT_FALSE(q.try_push(std::move(c)));  // full
  EXPECT_EQ(c, 3);                         // untouched on failure
  ASSERT_TRUE(q.pop().has_value());
  EXPECT_TRUE(q.try_push(std::move(c)));
}

TEST(MpmcQueue, TryPopNeverBlocks) {
  using Status = BoundedMpmcQueue<int>::PopStatus;
  BoundedMpmcQueue<int> q(2);
  int out = -1;
  EXPECT_EQ(q.try_pop(out), Status::kEmpty);  // empty: no blocking
  EXPECT_EQ(out, -1);                         // untouched without an item
  EXPECT_TRUE(q.push(7));
  EXPECT_EQ(q.try_pop(out), Status::kItem);
  EXPECT_EQ(out, 7);
  q.close();
  EXPECT_EQ(q.try_pop(out), Status::kClosed);  // closed and drained
}

// "Momentarily empty" and "closed and drained" must be distinguishable,
// or a non-blocking consumer cannot tell "retry later" from "shut down"
// — and a closed queue with a backlog must still hand out the items.
TEST(MpmcQueue, TryPopDistinguishesEmptyFromClosed) {
  using Status = BoundedMpmcQueue<int>::PopStatus;
  BoundedMpmcQueue<int> q(4);
  int out = 0;
  EXPECT_EQ(q.try_pop(out), Status::kEmpty);  // open + empty: retry
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  q.close();
  EXPECT_EQ(q.try_pop(out), Status::kItem);  // closed but NOT drained
  EXPECT_EQ(out, 1);
  EXPECT_EQ(q.try_pop(out), Status::kItem);
  EXPECT_EQ(out, 2);
  EXPECT_EQ(q.try_pop(out), Status::kClosed);  // now drained: stop
}

// A rejected blocking push must leave the item in the caller's hands —
// the old by-value signature destroyed the moved-from payload on a
// closed queue while try_push promised the opposite.
TEST(MpmcQueue, PushHandsItemBackWhenClosed) {
  BoundedMpmcQueue<std::vector<int>> q(2);
  q.close();
  std::vector<int> payload{1, 2, 3};
  EXPECT_FALSE(q.push(std::move(payload)));
  // The caller can still account or retry the exact item it offered.
  EXPECT_EQ(payload, (std::vector<int>{1, 2, 3}));
}

TEST(MpmcQueue, HighWaterTracksDeepestBacklog) {
  BoundedMpmcQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.push(3));
  (void)q.pop();
  (void)q.pop();
  (void)q.pop();
  EXPECT_TRUE(q.push(4));
  EXPECT_EQ(q.high_water(), 3u);
}

TEST(MpmcQueue, BlockingPushUnblocksWhenSpaceOpens) {
  BoundedMpmcQueue<int> q(1);
  EXPECT_TRUE(q.push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(2));  // blocks until the consumer pops
    pushed.store(true);
  });
  // The producer cannot complete while the queue is full.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  auto v = q.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(MpmcQueue, CloseWakesBlockedConsumers) {
  BoundedMpmcQueue<int> q(4);
  std::vector<std::thread> consumers;
  std::atomic<int> drained{0};
  for (int i = 0; i < 3; ++i)
    consumers.emplace_back([&] {
      while (q.pop().has_value()) {
      }
      drained.fetch_add(1);
    });
  q.close();
  for (auto& c : consumers) c.join();
  EXPECT_EQ(drained.load(), 3);
}

TEST(MpmcQueue, CloseDrainsBacklogThenRejects) {
  BoundedMpmcQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  q.close();
  EXPECT_FALSE(q.push(3));  // rejected after close
  EXPECT_EQ(q.pop().value(), 1);  // backlog still poppable
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());  // closed and drained
  EXPECT_TRUE(q.closed());
}

TEST(MpmcQueue, CloseWakesBlockedProducer) {
  BoundedMpmcQueue<int> q(1);
  EXPECT_TRUE(q.push(1));
  std::atomic<bool> rejected{false};
  std::thread producer([&] {
    rejected.store(!q.push(2));  // blocked on full, then closed
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  producer.join();
  EXPECT_TRUE(rejected.load());
}

TEST(MpmcQueue, PushBurstPreservesFifo) {
  BoundedMpmcQueue<int> q(8);
  std::vector<int> burst{0, 1, 2, 3, 4};
  EXPECT_EQ(q.push_burst(burst), 5u);
  EXPECT_TRUE(burst.empty());  // fully admitted
  for (int i = 0; i < 5; ++i) EXPECT_EQ(q.pop().value(), i);
}

// A burst larger than the queue's free space is admitted in chunks: the
// producer blocks between chunks while a consumer makes room, and every
// item still arrives exactly once, in order.
TEST(MpmcQueue, PushBurstChunksThroughConsumer) {
  BoundedMpmcQueue<int> q(4);
  std::vector<int> burst(16);
  for (int i = 0; i < 16; ++i) burst[static_cast<std::size_t>(i)] = i;
  std::thread producer([&] { EXPECT_EQ(q.push_burst(burst), 16u); });
  for (int i = 0; i < 16; ++i) EXPECT_EQ(q.pop().value(), i);
  producer.join();
  EXPECT_TRUE(burst.empty());
}

// close() while a burst is mid-flight: the pushed prefix is consumable,
// the unpushed tail comes back to the producer (never destroyed).
TEST(MpmcQueue, PushBurstHandsBackRemainderOnClose) {
  BoundedMpmcQueue<int> q(2);
  std::vector<int> burst{10, 11, 12, 13, 14};
  std::atomic<std::size_t> pushed{0};
  std::thread producer([&] { pushed.store(q.push_burst(burst)); });
  // Let the producer fill the queue and block on the second chunk.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  q.close();
  producer.join();
  EXPECT_EQ(pushed.load(), 2u);
  EXPECT_EQ(burst, (std::vector<int>{12, 13, 14}));  // the unpushed tail
  EXPECT_EQ(q.pop().value(), 10);  // prefix still drains after close
  EXPECT_EQ(q.pop().value(), 11);
  EXPECT_FALSE(q.pop().has_value());
}

TEST(MpmcQueue, TryPushBurstAllOrNothing) {
  BoundedMpmcQueue<int> q(4);
  std::vector<int> first{1, 2, 3};
  EXPECT_TRUE(q.try_push_burst(first));
  EXPECT_TRUE(first.empty());
  std::vector<int> second{4, 5};  // only one slot free: must not split
  EXPECT_FALSE(q.try_push_burst(second));
  EXPECT_EQ(second, (std::vector<int>{4, 5}));  // untouched on failure
  EXPECT_EQ(q.size(), 3u);
  (void)q.pop();
  EXPECT_TRUE(q.try_push_burst(second));  // two slots free now
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_EQ(q.pop().value(), 3);
  EXPECT_EQ(q.pop().value(), 4);
  EXPECT_EQ(q.pop().value(), 5);
}

// Hysteresis: admission shuts off at the high watermark and does NOT
// come back until the depth falls to the low watermark — a queue
// hovering between the two stays closed to producers.
TEST(MpmcQueue, WatermarkHysteresisGatesAdmission) {
  BoundedMpmcQueue<int> q(8, /*high_watermark=*/6, /*low_watermark=*/3);
  for (int i = 0; i < 6; ++i) EXPECT_TRUE(q.try_push(std::move(i)));
  int extra = 100;
  EXPECT_FALSE(q.try_push(std::move(extra)));  // throttled at high
  (void)q.pop();
  (void)q.pop();
  EXPECT_EQ(q.size(), 4u);  // above low: still throttled
  EXPECT_FALSE(q.try_push(std::move(extra)));
  (void)q.pop();
  EXPECT_EQ(q.size(), 3u);  // at low: released
  EXPECT_TRUE(q.try_push(std::move(extra)));
}

// A blocking producer throttled at the high watermark is released only
// by the drain to the low watermark, and the throttle is counted.
TEST(MpmcQueue, WatermarkReleaseWakesBlockedProducer) {
  BoundedMpmcQueue<int> q(8, /*high_watermark=*/4, /*low_watermark=*/2);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(q.push(i));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(99));
    pushed.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());  // throttled at the high watermark
  (void)q.pop();
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());  // size 3 > low: hysteresis holds
  (void)q.pop();                // size 2 == low: released
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_GE(q.throttle_events(), 1u);
  EXPECT_GE(q.throttle_seconds(), 0.0);
}

TEST(MpmcQueue, PopBurstDrainsUpToMax) {
  BoundedMpmcQueue<int> q(8);
  std::vector<int> burst{0, 1, 2, 3, 4};
  EXPECT_EQ(q.push_burst(burst), 5u);
  std::vector<int> out;
  EXPECT_EQ(q.pop_burst(out, 3), 3u);  // capped at max_items
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2}));
  EXPECT_EQ(q.pop_burst(out, 8), 2u);  // appends the remainder
  EXPECT_EQ(out, (std::vector<int>{0, 1, 2, 3, 4}));
  q.close();
  EXPECT_EQ(q.pop_burst(out, 8), 0u);  // closed and drained: exit signal
}

// P producers x C consumers; every pushed value is popped exactly once
// and each producer's own sequence arrives in order (per-producer FIFO).
TEST(MpmcQueue, MpmcStressPreservesItemsAndPerProducerOrder) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 500;
  BoundedMpmcQueue<std::pair<int, int>> q(8);  // small: force contention

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i)
        ASSERT_TRUE(q.push({p, i}));
    });

  std::mutex sink_mutex;
  std::vector<std::vector<int>> sunk(kProducers);
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c)
    consumers.emplace_back([&] {
      std::vector<std::vector<int>> local(kProducers);
      while (auto v = q.pop()) local[v->first].push_back(v->second);
      std::lock_guard<std::mutex> lock(sink_mutex);
      // Splice each consumer's per-producer subsequence; order within a
      // consumer is checked below after a merge by value.
      for (int p = 0; p < kProducers; ++p) {
        // A single consumer must see producer p's items in order.
        for (std::size_t i = 1; i < local[p].size(); ++i)
          EXPECT_LT(local[p][i - 1], local[p][i]);
        sunk[p].insert(sunk[p].end(), local[p].begin(), local[p].end());
      }
    });

  for (auto& p : producers) p.join();
  q.close();
  for (auto& c : consumers) c.join();

  for (int p = 0; p < kProducers; ++p) {
    ASSERT_EQ(sunk[p].size(), static_cast<std::size_t>(kPerProducer));
    std::sort(sunk[p].begin(), sunk[p].end());
    for (int i = 0; i < kPerProducer; ++i) EXPECT_EQ(sunk[p][i], i);
  }
}

}  // namespace
