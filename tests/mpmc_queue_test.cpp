// BoundedMpmcQueue: FIFO order, capacity/backpressure, shutdown
// semantics, and a multi-producer/multi-consumer stress run. These are
// the tests the TSAN CI leg exercises (label: concurrency).
#include "util/mpmc_queue.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace {

using spkadd::util::BoundedMpmcQueue;

TEST(MpmcQueue, FifoSingleThreaded) {
  BoundedMpmcQueue<int> q(8);
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(q.push(i));
  for (int i = 0; i < 8; ++i) {
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, i);
  }
  EXPECT_EQ(q.size(), 0u);
}

TEST(MpmcQueue, RejectsZeroCapacity) {
  EXPECT_THROW(BoundedMpmcQueue<int>(0), std::invalid_argument);
}

TEST(MpmcQueue, TryPushRespectsCapacity) {
  BoundedMpmcQueue<int> q(2);
  int a = 1, b = 2, c = 3;
  EXPECT_TRUE(q.try_push(std::move(a)));
  EXPECT_TRUE(q.try_push(std::move(b)));
  EXPECT_FALSE(q.try_push(std::move(c)));  // full
  EXPECT_EQ(c, 3);                         // untouched on failure
  ASSERT_TRUE(q.pop().has_value());
  EXPECT_TRUE(q.try_push(std::move(c)));
}

TEST(MpmcQueue, TryPopNeverBlocks) {
  BoundedMpmcQueue<int> q(2);
  EXPECT_FALSE(q.try_pop().has_value());  // empty: no blocking
  EXPECT_TRUE(q.push(7));
  auto v = q.try_pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 7);
  q.close();
  EXPECT_FALSE(q.try_pop().has_value());  // closed and drained
}

TEST(MpmcQueue, HighWaterTracksDeepestBacklog) {
  BoundedMpmcQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  EXPECT_TRUE(q.push(3));
  (void)q.pop();
  (void)q.pop();
  (void)q.pop();
  EXPECT_TRUE(q.push(4));
  EXPECT_EQ(q.high_water(), 3u);
}

TEST(MpmcQueue, BlockingPushUnblocksWhenSpaceOpens) {
  BoundedMpmcQueue<int> q(1);
  EXPECT_TRUE(q.push(1));
  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    EXPECT_TRUE(q.push(2));  // blocks until the consumer pops
    pushed.store(true);
  });
  // The producer cannot complete while the queue is full.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(pushed.load());
  auto v = q.pop();
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(*v, 1);
  producer.join();
  EXPECT_TRUE(pushed.load());
  EXPECT_EQ(q.pop().value(), 2);
}

TEST(MpmcQueue, CloseWakesBlockedConsumers) {
  BoundedMpmcQueue<int> q(4);
  std::vector<std::thread> consumers;
  std::atomic<int> drained{0};
  for (int i = 0; i < 3; ++i)
    consumers.emplace_back([&] {
      while (q.pop().has_value()) {
      }
      drained.fetch_add(1);
    });
  q.close();
  for (auto& c : consumers) c.join();
  EXPECT_EQ(drained.load(), 3);
}

TEST(MpmcQueue, CloseDrainsBacklogThenRejects) {
  BoundedMpmcQueue<int> q(4);
  EXPECT_TRUE(q.push(1));
  EXPECT_TRUE(q.push(2));
  q.close();
  EXPECT_FALSE(q.push(3));  // rejected after close
  EXPECT_EQ(q.pop().value(), 1);  // backlog still poppable
  EXPECT_EQ(q.pop().value(), 2);
  EXPECT_FALSE(q.pop().has_value());  // closed and drained
  EXPECT_TRUE(q.closed());
}

TEST(MpmcQueue, CloseWakesBlockedProducer) {
  BoundedMpmcQueue<int> q(1);
  EXPECT_TRUE(q.push(1));
  std::atomic<bool> rejected{false};
  std::thread producer([&] {
    rejected.store(!q.push(2));  // blocked on full, then closed
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  q.close();
  producer.join();
  EXPECT_TRUE(rejected.load());
}

// P producers x C consumers; every pushed value is popped exactly once
// and each producer's own sequence arrives in order (per-producer FIFO).
TEST(MpmcQueue, MpmcStressPreservesItemsAndPerProducerOrder) {
  constexpr int kProducers = 4;
  constexpr int kConsumers = 3;
  constexpr int kPerProducer = 500;
  BoundedMpmcQueue<std::pair<int, int>> q(8);  // small: force contention

  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i)
        ASSERT_TRUE(q.push({p, i}));
    });

  std::mutex sink_mutex;
  std::vector<std::vector<int>> sunk(kProducers);
  std::vector<std::thread> consumers;
  for (int c = 0; c < kConsumers; ++c)
    consumers.emplace_back([&] {
      std::vector<std::vector<int>> local(kProducers);
      while (auto v = q.pop()) local[v->first].push_back(v->second);
      std::lock_guard<std::mutex> lock(sink_mutex);
      // Splice each consumer's per-producer subsequence; order within a
      // consumer is checked below after a merge by value.
      for (int p = 0; p < kProducers; ++p) {
        // A single consumer must see producer p's items in order.
        for (std::size_t i = 1; i < local[p].size(); ++i)
          EXPECT_LT(local[p][i - 1], local[p][i]);
        sunk[p].insert(sunk[p].end(), local[p].begin(), local[p].end());
      }
    });

  for (auto& p : producers) p.join();
  q.close();
  for (auto& c : consumers) c.join();

  for (int p = 0; p < kProducers; ++p) {
    ASSERT_EQ(sunk[p].size(), static_cast<std::size_t>(kPerProducer));
    std::sort(sunk[p].begin(), sunk[p].end());
    for (int i = 0; i < kPerProducer; ++i) EXPECT_EQ(sunk[p][i], i);
  }
}

}  // namespace
