// Unit tests for the CSC container, column views, dense oracle and block
// extraction.
#include <gtest/gtest.h>

#include "matrix/block.hpp"
#include "matrix/csc.hpp"
#include "matrix/dense.hpp"
#include "test_helpers.hpp"

namespace {

using spkadd::ColumnView;
using spkadd::CscMatrix;
using spkadd::DenseMatrix;
using spkadd::extract_block;
using spkadd::partition_bounds;
using spkadd::testing::from_triplets;

TEST(Csc, DefaultIsEmpty) {
  CscMatrix<> m;
  EXPECT_EQ(m.rows(), 0);
  EXPECT_EQ(m.cols(), 0);
  EXPECT_EQ(m.nnz(), 0u);
  EXPECT_TRUE(m.empty());
  EXPECT_TRUE(m.is_sorted());
}

TEST(Csc, ShapeOnlyConstructor) {
  CscMatrix<> m(5, 3);
  EXPECT_EQ(m.rows(), 5);
  EXPECT_EQ(m.cols(), 3);
  EXPECT_EQ(m.nnz(), 0u);
  EXPECT_EQ(m.col_ptr().size(), 4u);
}

TEST(Csc, RejectsNegativeDimensions) {
  EXPECT_THROW((CscMatrix<>(-1, 3)), std::invalid_argument);
  EXPECT_THROW((CscMatrix<>(3, -1)), std::invalid_argument);
}

TEST(Csc, RejectsMalformedArrays) {
  // col_ptr size mismatch
  EXPECT_THROW(CscMatrix<>(2, 2, {0, 1}, {0}, {1.0}), std::invalid_argument);
  // col_ptr[0] != 0
  EXPECT_THROW(CscMatrix<>(2, 1, {1, 1}, {}, {}), std::invalid_argument);
  // array length mismatch
  EXPECT_THROW(CscMatrix<>(2, 1, {0, 2}, {0}, {1.0}), std::invalid_argument);
}

TEST(Csc, ColumnViewsAndAt) {
  const auto m = from_triplets(8, 3, {{1, 0, 3.0}, {3, 0, 2.0}, {6, 0, 1.0},
                                      {0, 1, 2.0}, {5, 2, 4.0}});
  EXPECT_EQ(m.col_nnz(0), 3u);
  EXPECT_EQ(m.col_nnz(1), 1u);
  EXPECT_EQ(m.col_nnz(2), 1u);
  const auto col0 = m.column(0);
  ASSERT_EQ(col0.nnz(), 3u);
  EXPECT_EQ(col0.rows[0], 1);
  EXPECT_EQ(col0.vals[2], 1.0);
  EXPECT_DOUBLE_EQ(m.at(3, 0), 2.0);
  EXPECT_DOUBLE_EQ(m.at(2, 0), 0.0);  // absent entry
  EXPECT_DOUBLE_EQ(m.at(5, 2), 4.0);
}

TEST(Csc, RowRangeSubview) {
  const auto m = from_triplets(10, 1, {{1, 0, 1.0}, {3, 0, 2.0}, {5, 0, 3.0},
                                       {7, 0, 4.0}, {9, 0, 5.0}});
  const auto col = m.column(0);
  const auto mid = col.row_range(3, 8);
  ASSERT_EQ(mid.nnz(), 3u);
  EXPECT_EQ(mid.rows[0], 3);
  EXPECT_EQ(mid.rows[2], 7);
  EXPECT_EQ(col.row_range(0, 1).nnz(), 0u);
  EXPECT_EQ(col.row_range(0, 10).nnz(), 5u);
  EXPECT_EQ(col.row_range(4, 4).nnz(), 0u);
}

TEST(Csc, SortColumnsCanonicalizes) {
  // Build an unsorted-by-hand matrix.
  CscMatrix<> m(4, 2, {0, 3, 4}, {2, 0, 1, 3}, {3.0, 1.0, 2.0, 4.0});
  EXPECT_FALSE(m.is_sorted());
  m.sort_columns();
  EXPECT_TRUE(m.is_sorted());
  EXPECT_DOUBLE_EQ(m.at(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.at(2, 0), 3.0);
  EXPECT_DOUBLE_EQ(m.at(3, 1), 4.0);
}

TEST(Csc, AtOnUnsortedColumnSumsDuplicates) {
  CscMatrix<> m(4, 1, {0, 3}, {2, 2, 0}, {1.0, 2.0, 5.0});
  EXPECT_DOUBLE_EQ(m.at(2, 0), 3.0);  // duplicate row entries summed
  EXPECT_DOUBLE_EQ(m.at(0, 0), 5.0);
}

TEST(Csc, EqualityIsExact) {
  const auto a = from_triplets(4, 2, {{0, 0, 1.0}, {2, 1, 2.0}});
  const auto b = from_triplets(4, 2, {{0, 0, 1.0}, {2, 1, 2.0}});
  const auto c = from_triplets(4, 2, {{0, 0, 1.0}, {2, 1, 2.5}});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(Csc, SetStructureAllocates) {
  CscMatrix<> m(4, 2);
  m.set_structure({0, 2, 3});
  EXPECT_EQ(m.nnz(), 3u);
  EXPECT_EQ(m.mutable_row_idx().size(), 3u);
  EXPECT_EQ(m.mutable_values().size(), 3u);
  EXPECT_THROW(m.set_structure({0, 1}), std::invalid_argument);
}

TEST(Csc, StorageBytesReflectsSize) {
  const auto m = from_triplets(8, 2, {{0, 0, 1.0}, {1, 0, 1.0}, {2, 1, 1.0}});
  EXPECT_GE(m.storage_bytes(),
            3 * (sizeof(std::int32_t) + sizeof(double)) +
                3 * sizeof(std::int32_t));
}

TEST(Csc, SupportsWideTypes) {
  CscMatrix<std::int64_t, float> m(100, 2, {0, 1, 2}, {42, 7}, {1.5f, 2.5f});
  EXPECT_EQ(m.rows(), 100);
  EXPECT_FLOAT_EQ(m.at(42, 0), 1.5f);
}

// ---------------------------------------------------------------- dense
TEST(Dense, AccumulateAndConvert) {
  const auto m = from_triplets(3, 2, {{0, 0, 1.0}, {2, 1, 2.0}});
  DenseMatrix<double> d(3, 2);
  d.accumulate(m);
  d.accumulate(m);
  EXPECT_DOUBLE_EQ(d(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(d(2, 1), 4.0);
  const auto back = d.to_csc<std::int32_t>(
      [&](std::int64_t r, std::int64_t c) { return d(r, c) != 0.0; });
  EXPECT_EQ(back.nnz(), 2u);
  EXPECT_DOUBLE_EQ(back.at(2, 1), 4.0);
}

TEST(Dense, ShapeMismatchThrows) {
  const auto m = from_triplets(3, 2, {{0, 0, 1.0}});
  DenseMatrix<double> d(2, 2);
  EXPECT_THROW(d.accumulate(m), std::invalid_argument);
}

// ---------------------------------------------------------------- blocks
TEST(Block, ExtractRebasesIndices) {
  const auto m = from_triplets(8, 4, {{0, 0, 1.0}, {4, 0, 2.0}, {5, 1, 3.0},
                                      {7, 3, 4.0}, {2, 2, 5.0}});
  const auto blk = extract_block(m, 4, 8, 0, 2);
  EXPECT_EQ(blk.rows(), 4);
  EXPECT_EQ(blk.cols(), 2);
  EXPECT_EQ(blk.nnz(), 2u);
  EXPECT_DOUBLE_EQ(blk.at(0, 0), 2.0);  // was (4, 0)
  EXPECT_DOUBLE_EQ(blk.at(1, 1), 3.0);  // was (5, 1)
}

TEST(Block, FullRangeIsIdentity) {
  const auto m = from_triplets(6, 3, {{1, 0, 1.0}, {5, 2, 2.0}});
  const auto blk = extract_block(m, 0, 6, 0, 3);
  EXPECT_TRUE(m == blk);
}

TEST(Block, BadRangesThrow) {
  const auto m = from_triplets(4, 4, {{0, 0, 1.0}});
  EXPECT_THROW(extract_block(m, -1, 2, 0, 2), std::invalid_argument);
  EXPECT_THROW(extract_block(m, 0, 5, 0, 2), std::invalid_argument);
  EXPECT_THROW(extract_block(m, 2, 1, 0, 2), std::invalid_argument);
  EXPECT_THROW(extract_block(m, 0, 2, 0, 5), std::invalid_argument);
}

TEST(Block, PartitionBoundsCoverExactly) {
  const auto b = partition_bounds<std::int32_t>(10, 3);
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b.front(), 0);
  EXPECT_EQ(b.back(), 10);
  for (std::size_t i = 1; i < b.size(); ++i) EXPECT_GE(b[i], b[i - 1]);
}

TEST(ColumnViewTest, SortedCheck) {
  const auto m = from_triplets(4, 1, {{0, 0, 1.0}, {2, 0, 1.0}});
  EXPECT_TRUE(m.column(0).is_sorted_strict());
  CscMatrix<> unsorted(4, 1, {0, 2}, {2, 0}, {1.0, 1.0});
  EXPECT_FALSE(unsorted.column(0).is_sorted_strict());
}

}  // namespace
