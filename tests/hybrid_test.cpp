// Method::Hybrid — per-chunk kernel dispatch: classification of the
// per-chunk Fig. 2 surface, bit-identity of the mixed-kernel result to
// every single-kernel method and the reference folds, and the chunk
// counters/consumer integrations (accumulator, SUMMA).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "core/accumulator.hpp"
#include "core/calibration.hpp"
#include "core/spkadd.hpp"
#include "gen/workload.hpp"
#include "matrix/validate.hpp"
#include "summa/sparse_summa.hpp"
#include "test_helpers.hpp"

namespace {

using namespace spkadd;
using namespace spkadd::core;
using spkadd::testing::canonicalized;
using spkadd::testing::dense_sum_oracle;
using spkadd::testing::random_collection;

using Csc = spkadd::testing::Csc;
using Coo = spkadd::testing::Coo;

/// k addends with one dense hub column (col 0, ~rows/2 entries each) among
/// sparse ones — the workload whole-matrix dispatch handles worst.
std::vector<Csc> hub_collection(int k, std::int32_t rows, std::int32_t cols,
                                std::uint64_t seed) {
  std::vector<Csc> out;
  for (int i = 0; i < k; ++i) {
    Coo coo(rows, cols);
    for (std::int32_t r = (i % 2); r < rows; r += 2)
      coo.push(r, 0, 1.0 + static_cast<double>(r % 5));
    util::Xoshiro256 rng(seed + static_cast<std::uint64_t>(i));
    for (std::int32_t j = 1; j < cols; ++j)
      for (int t = 0; t < 4; ++t)
        coo.push(static_cast<std::int32_t>(
                     rng.bounded(static_cast<std::uint64_t>(rows))),
                 j, 1.0 - rng.uniform());
    coo.compress();
    out.push_back(coo.to_csc());
  }
  return out;
}

void quantize(std::vector<Csc>& inputs) {
  for (auto& m : inputs)
    for (auto& v : m.mutable_values()) v = std::round(v * 8.0);
}

// ---------------------------------------------------------------------------
// Classification (hybrid_kernel_for / plan_hybrid)
// ---------------------------------------------------------------------------

TEST(HybridClassify, EmptyChunkIsAHashNoop) {
  EXPECT_EQ(hybrid_kernel_for<std::int32_t>(0, 16, 1 << 20, true, 100, 0, 0),
            ColumnKernel::Hash);
}

TEST(HybridClassify, CacheOverflowPicksSliding) {
  EXPECT_EQ(hybrid_kernel_for<std::int32_t>(101, 16, 1 << 20, true, 100, 0, 0),
            ColumnKernel::SlidingHash);
  // Boundary: exactly fitting stays off sliding (b*T*max > M is strict).
  EXPECT_NE(hybrid_kernel_for<std::int32_t>(100, 16, 1 << 20, true, 100, 0, 0),
            ColumnKernel::SlidingHash);
}

TEST(HybridClassify, CacheResidentSpaArraysPickSpa) {
  // rows <= spa_fit_rows (the T dense arrays stay LLC-resident) -> SPA;
  // one row past the budget falls back to hash (the Fig. 3 collapse).
  EXPECT_EQ(hybrid_kernel_for<std::int32_t>(256, 16, 1024, true, 1 << 20,
                                            1024, 0),
            ColumnKernel::Spa);
  EXPECT_EQ(hybrid_kernel_for<std::int32_t>(256, 16, 1025, true, 1 << 20,
                                            1024, 0),
            ColumnKernel::Hash);
}

TEST(HybridClassify, TinyKSortedSparseChunkPicksHeap) {
  EXPECT_EQ(hybrid_kernel_for<std::int32_t>(kHybridHeapMaxColNnz,
                                            kHybridHeapMaxK, 1 << 20, true,
                                            1 << 20, 0, 0),
            ColumnKernel::Heap);
  // k above the corner, nnz above the corner, or unsorted inputs -> hash.
  EXPECT_EQ(hybrid_kernel_for<std::int32_t>(64, kHybridHeapMaxK + 1, 1 << 20,
                                            true, 1 << 20, 0, 0),
            ColumnKernel::Hash);
  EXPECT_EQ(hybrid_kernel_for<std::int32_t>(kHybridHeapMaxColNnz + 1,
                                            kHybridHeapMaxK, 1 << 20, true,
                                            1 << 20, 0, 0),
            ColumnKernel::Hash);
  EXPECT_EQ(hybrid_kernel_for<std::int32_t>(64, kHybridHeapMaxK, 1 << 20,
                                            false, 1 << 20, 0, 0),
            ColumnKernel::Hash);
}

TEST(HybridClassify, DenseChunkPicksDenseAccBeforeSliding) {
  // A hub chunk whose *input* nnz overflows the LLC but whose rows fit
  // the dense arrays goes dense, not sliding: dense storage is bounded by
  // rows, so the overflow test on input nnz is moot.
  EXPECT_EQ(hybrid_kernel_for<std::int32_t>(4096, 16, 1024, true, 100, 0,
                                            2048),
            ColumnKernel::DenseAcc);
  // Fill fraction below rows/kHybridDenseMinFillDivisor: not dense.
  EXPECT_NE(hybrid_kernel_for<std::int32_t>(64, 16, 1024, true, 1 << 20, 0,
                                            2048),
            ColumnKernel::DenseAcc);
  // Rows past the dense budget: falls through to the sliding test.
  EXPECT_EQ(hybrid_kernel_for<std::int32_t>(4096, 16, 4096, true, 100, 0,
                                            1024),
            ColumnKernel::SlidingHash);
}

TEST(HybridPlanTest, ChunksPartitionTheColumns) {
  std::vector<std::uint64_t> costs(64, 10);
  costs[7] = 100000;  // hub
  Options opts;
  opts.threads = 3;
  HybridPlan<std::int32_t> plan;
  plan_hybrid<std::int32_t, double>(costs, 1 << 20, 16, opts, plan);
  ASSERT_EQ(plan.chunks.size(), plan.kernels.size());
  ASSERT_FALSE(plan.chunks.empty());
  std::int32_t next = 0;
  for (const auto& [c0, c1] : plan.chunks) {
    EXPECT_EQ(c0, next);
    EXPECT_LT(c0, c1);
    next = c1;
  }
  EXPECT_EQ(next, 64);
}

TEST(HybridPlanTest, DenseHubChunkSlidesWhileSparseChunksDoNot) {
  // 16 columns: col 0 carries 16384, the rest 32 each. With threads=2 and
  // llc pinned so fit = 1000 entries, the hub chunk must slide and every
  // sparse chunk must stay on a cache-resident kernel.
  std::vector<std::uint64_t> costs(16, 32);
  costs[0] = 16384;
  Options opts;
  opts.threads = 2;
  opts.llc_bytes = (sizeof(std::int32_t) + sizeof(double)) * 2 * 1000;
  HybridPlan<std::int32_t> plan;
  plan_hybrid<std::int32_t, double>(costs, 4096, 8, opts, plan);
  ASSERT_GE(plan.size(), 2u);
  EXPECT_EQ(plan.kernels.front(), ColumnKernel::SlidingHash);
  for (std::size_t i = 1; i < plan.kernels.size(); ++i)
    EXPECT_NE(plan.kernels[i], ColumnKernel::SlidingHash) << i;
}

// ---------------------------------------------------------------------------
// Bit-identity of the mixed-kernel result
// ---------------------------------------------------------------------------

TEST(HybridBitIdentity, MatchesEverySingleKernelMethodOnGrids) {
  // Every column kernel accumulates equal-row values strictly left to
  // right, so hybrid's per-chunk mix must reproduce each single-kernel
  // method bit for bit — raw FP values, no quantization.
  for (const gen::Pattern p : {gen::Pattern::ER, gen::Pattern::RMAT}) {
    for (const int k : {2, 8, 16}) {
      for (const int d : {2, 32}) {
        gen::WorkloadSpec spec;
        spec.pattern = p;
        spec.rows = 512;
        spec.cols = 16;
        spec.avg_nnz_per_col = d;
        spec.k = k;
        spec.seed = 500 + static_cast<std::uint64_t>(k) * 17 +
                    static_cast<std::uint64_t>(d);
        const auto inputs = gen::make_workload(spec);
        Options hopts;
        hopts.method = Method::Hybrid;
        const Csc hybrid = core::spkadd(inputs, hopts);
        for (const Method m : {Method::Heap, Method::Spa, Method::Hash,
                               Method::SlidingHash}) {
          Options opts;
          opts.method = m;
          EXPECT_TRUE(hybrid == core::spkadd(inputs, opts))
              << method_name(m) << " k=" << k << " d=" << d;
        }
      }
    }
  }
}

TEST(HybridBitIdentity, MatchesReferenceFoldsOnQuantizedValues) {
  // The reference/tree folds associate differently, so bit-identity to
  // them is checked where addition is exact (integer-quantized values) —
  // the same contract the sharded service pins.
  for (const gen::Pattern p : {gen::Pattern::ER, gen::Pattern::RMAT}) {
    gen::WorkloadSpec spec;
    spec.pattern = p;
    spec.rows = 512;
    spec.cols = 16;
    spec.avg_nnz_per_col = 8;
    spec.k = 8;
    spec.seed = 611;
    auto inputs = gen::make_workload(spec);
    quantize(inputs);
    Options hopts;
    hopts.method = Method::Hybrid;
    const Csc hybrid = core::spkadd(inputs, hopts);
    for (const Method m :
         {Method::ReferenceTree, Method::ReferenceIncremental,
          Method::TwoWayTree, Method::TwoWayIncremental}) {
      Options opts;
      opts.method = m;
      EXPECT_TRUE(hybrid == core::spkadd(inputs, opts)) << method_name(m);
    }
  }
}

TEST(HybridBitIdentity, AllEmptyColumns) {
  std::vector<Csc> empties;
  for (int i = 0; i < 4; ++i) empties.emplace_back(64, 8);
  Options opts;
  opts.method = Method::Hybrid;
  const Csc out = core::spkadd(empties, opts);
  EXPECT_EQ(out.nnz(), 0u);
  Options hash_opts;
  hash_opts.method = Method::Hash;
  EXPECT_TRUE(out == core::spkadd(empties, hash_opts));
}

TEST(HybridBitIdentity, DenseHubAmongSparseMixesKernels) {
  const auto inputs = hub_collection(8, 4096, 16, 77);
  Options opts;
  opts.method = Method::Hybrid;
  opts.threads = 2;
  // fit = 1000 entries: the hub column (8 * ~2048 input nnz) overflows,
  // the sparse columns do not.
  opts.llc_bytes = (sizeof(std::int32_t) + sizeof(double)) * 2 * 1000;
  OpCounters counters;
  opts.counters = &counters;
  const Csc hybrid = core::spkadd(inputs, opts);

  EXPECT_GE(counters.chunks_sliding, 1u);
  EXPECT_GE(counters.chunks_total() - counters.chunks_sliding, 1u)
      << "sparse chunks should not be dragged onto sliding hash";

  Options hash_opts;
  hash_opts.method = Method::Hash;
  EXPECT_TRUE(hybrid == core::spkadd(inputs, hash_opts));
  EXPECT_TRUE(approx_equal(
      dense_sum_oracle(std::span<const Csc>(inputs)), hybrid));
}

TEST(HybridBitIdentity, DenseHubChunkDispatchesDenseAcc) {
  // Same hub workload, but with rows inside the dense budget: the hub
  // chunk must dispatch to DenseAcc (not sliding) and stay bit-identical
  // to a plain hash run.
  const auto inputs = hub_collection(8, 1024, 16, 177);
  Options opts;
  opts.method = Method::Hybrid;
  opts.threads = 2;
  // dense_fit = llc / ((8+1)*2) = 2048 rows >= 1024; the hub column's
  // ~4096 summed input nnz would overflow the sliding fit of 1536.
  opts.llc_bytes = (sizeof(double) + 1) * 2 * 2048;
  OpCounters counters;
  opts.counters = &counters;
  const Csc hybrid = core::spkadd(inputs, opts);

  EXPECT_GE(counters.chunks_dense, 1u)
      << "mix " << counters.chunk_mix();
  Options hash_opts;
  hash_opts.method = Method::Hash;
  EXPECT_TRUE(hybrid == core::spkadd(inputs, hash_opts));
  EXPECT_TRUE(approx_equal(
      dense_sum_oracle(std::span<const Csc>(inputs)), hybrid));
}

TEST(HybridBitIdentity, IdenticalAcrossSchedules) {
  const auto inputs = random_collection(12, 512, 16, 600, 21);
  Csc results[3];
  int i = 0;
  for (const Schedule s :
       {Schedule::Dynamic, Schedule::Static, Schedule::NnzBalanced}) {
    Options opts;
    opts.method = Method::Hybrid;
    opts.schedule = s;
    results[i++] = core::spkadd(inputs, opts);
  }
  EXPECT_TRUE(results[0] == results[1]);
  EXPECT_TRUE(results[0] == results[2]);
}

TEST(HybridBitIdentity, UnsortedOutputCanonicalizesToSorted) {
  const auto inputs = random_collection(8, 512, 16, 600, 31);
  Options sorted_opts;
  sorted_opts.method = Method::Hybrid;
  Options unsorted_opts = sorted_opts;
  unsorted_opts.sorted_output = false;
  const Csc sorted = core::spkadd(inputs, sorted_opts);
  const Csc unsorted = core::spkadd(inputs, unsorted_opts);
  EXPECT_TRUE(validate(unsorted, /*require_sorted=*/false).valid);
  EXPECT_TRUE(canonicalized(unsorted) == sorted);
}

TEST(HybridBitIdentity, UnsortedInputsMatchHash) {
  auto inputs = random_collection(8, 512, 16, 600, 41);
  for (auto& m : inputs) gen::shuffle_columns(m, 99);
  Options opts;
  opts.method = Method::Hybrid;
  opts.inputs_sorted = false;
  const Csc hybrid = core::spkadd(inputs, opts);
  Options hash_opts = opts;
  hash_opts.method = Method::Hash;
  EXPECT_TRUE(hybrid == core::spkadd(inputs, hash_opts));
}

// ---------------------------------------------------------------------------
// Observability + dispatch plumbing
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// Calibrated dispatch (Options::calibration -> MissCostTable argmin)
// ---------------------------------------------------------------------------

/// A table whose argmin is `favored` at every grid point (cost 1 vs 100).
MissCostTable table_favoring(ColumnKernel favored) {
  MissCostTable t;
  t.hierarchy = "LLC:8M:16";
  t.rows = 512;
  t.threads = 4;
  t.k_axis = {2, 16, 64};
  t.d_axis = {2, 32, 512};
  t.width_axis = {4, 16, 64};
  for (std::size_t ki = 0; ki < kNumColumnKernels; ++ki)
    t.costs[ki].assign(t.cells(),
                       ki == static_cast<std::size_t>(favored) ? 1.0 : 100.0);
  return t;
}

TEST(CalibratedDispatch, BitIdenticalToAnalyticForEveryForcedKernel) {
  // The calibration table only changes which kernel runs per chunk; the
  // result must stay bit-identical whatever the table says — here pinned
  // to each kernel in turn on the same grids the analytic test uses.
  for (const gen::Pattern p : {gen::Pattern::ER, gen::Pattern::RMAT}) {
    for (const int k : {2, 8, 16}) {
      gen::WorkloadSpec spec;
      spec.pattern = p;
      spec.rows = 512;
      spec.cols = 16;
      spec.avg_nnz_per_col = 16;
      spec.k = k;
      spec.seed = 700 + static_cast<std::uint64_t>(k);
      const auto inputs = gen::make_workload(spec);
      Options analytic;
      analytic.method = Method::Hybrid;
      const Csc expected = core::spkadd(inputs, analytic);
      for (const ColumnKernel kern :
           {ColumnKernel::Heap, ColumnKernel::Spa, ColumnKernel::Hash,
            ColumnKernel::SlidingHash, ColumnKernel::DenseAcc}) {
        const MissCostTable table = table_favoring(kern);
        Options opts = analytic;
        opts.calibration = &table;
        EXPECT_TRUE(expected == core::spkadd(inputs, opts))
            << column_kernel_name(kern) << " pattern="
            << (p == gen::Pattern::ER ? "ER" : "RMAT") << " k=" << k;
      }
    }
  }
}

TEST(CalibratedDispatch, TableControlsTheChunkMix) {
  const auto inputs = random_collection(8, 512, 32, 600, 41);
  const MissCostTable sliding_table =
      table_favoring(ColumnKernel::SlidingHash);
  Options opts;
  opts.method = Method::Hybrid;
  opts.calibration = &sliding_table;
  OpCounters counters;
  opts.counters = &counters;
  (void)core::spkadd(inputs, opts);
  EXPECT_GT(counters.chunks_total(), 0u);
  EXPECT_EQ(counters.chunks_sliding, counters.chunks_total());

  const MissCostTable spa_table = table_favoring(ColumnKernel::Spa);
  opts.calibration = &spa_table;
  counters = {};
  (void)core::spkadd(inputs, opts);
  EXPECT_EQ(counters.chunks_spa, counters.chunks_total());
}

TEST(CalibratedDispatch, HeapExcludedWhenInputsUnsorted) {
  auto inputs = random_collection(6, 512, 16, 600, 43);
  for (auto& m : inputs) gen::shuffle_columns(m, 99);
  const MissCostTable heap_table = table_favoring(ColumnKernel::Heap);
  Options opts;
  opts.method = Method::Hybrid;
  opts.inputs_sorted = false;
  opts.calibration = &heap_table;
  OpCounters counters;
  opts.counters = &counters;
  const Csc out = core::spkadd(inputs, opts);
  EXPECT_EQ(counters.chunks_heap, 0u)
      << "calibrated planner must not hand unsorted inputs to the heap";
  Options hash_opts;
  hash_opts.method = Method::Hash;
  hash_opts.inputs_sorted = false;
  EXPECT_TRUE(out == core::spkadd(inputs, hash_opts));
}

TEST(CalibratedDispatch, UnusableTableFallsBackToAnalytic) {
  const auto inputs = random_collection(8, 512, 16, 600, 47);
  MissCostTable broken = table_favoring(ColumnKernel::SlidingHash);
  broken.costs[0].clear();  // shape mismatch -> !usable()
  ASSERT_FALSE(broken.usable());

  Options analytic;
  analytic.method = Method::Hybrid;
  OpCounters a_counters;
  analytic.counters = &a_counters;
  const Csc a = core::spkadd(inputs, analytic);

  Options calibrated = analytic;
  OpCounters c_counters;
  calibrated.counters = &c_counters;
  calibrated.calibration = &broken;
  const Csc c = core::spkadd(inputs, calibrated);

  EXPECT_TRUE(a == c);
  EXPECT_EQ(a_counters.chunk_mix(), c_counters.chunk_mix())
      << "an unusable table must leave the analytic plan untouched";
}

TEST(HybridCounters, ChunkCountsMatchThePlan) {
  const auto inputs = random_collection(8, 512, 32, 800, 51);
  Options opts;
  opts.method = Method::Hybrid;
  opts.threads = 3;
  OpCounters counters;
  opts.counters = &counters;
  (void)core::spkadd(inputs, opts);

  std::vector<const Csc*> ptrs;
  core::detail::borrow_all(std::span<const Csc>(inputs), ptrs);
  std::vector<std::uint64_t> costs;
  core::detail::column_input_nnz(MatrixPtrs<std::int32_t, double>(ptrs),
                                 opts, costs);
  HybridPlan<std::int32_t> plan;
  plan_hybrid<std::int32_t, double>(costs, inputs[0].rows(), inputs.size(),
                                    opts, plan);
  EXPECT_EQ(counters.chunks_total(), plan.size());
  EXPECT_GT(counters.chunks_total(), 0u);
}

TEST(HybridCounters, SingleKernelMethodsCountNoChunks) {
  const auto inputs = random_collection(8, 256, 8, 300, 61);
  for (const Method m : {Method::Hash, Method::Heap, Method::Spa,
                         Method::SlidingHash, Method::Auto}) {
    Options opts;
    opts.method = m;
    OpCounters counters;
    opts.counters = &counters;
    (void)core::spkadd(inputs, opts);
    EXPECT_EQ(counters.chunks_total(), 0u) << method_name(m);
  }
}

TEST(HybridDispatch, OptionsMethodRoutesToTheDriver) {
  const auto inputs = random_collection(8, 512, 16, 600, 71);
  Options opts;
  opts.method = Method::Hybrid;
  EXPECT_TRUE(core::spkadd(inputs, opts) ==
              spkadd_hybrid(std::span<const Csc>(inputs), opts));
}

TEST(HybridDispatch, HeapChunksRequireActuallySortedInputs) {
  // Tiny k + sparse columns classify into the heap corner; declaring
  // inputs sorted while they are not must throw (like spkadd_heap), not
  // silently mis-merge.
  auto inputs = random_collection(3, 512, 8, 60, 81);
  for (auto& m : inputs) gen::shuffle_columns(m, 5);
  Options opts;
  opts.method = Method::Hybrid;
  opts.inputs_sorted = true;  // a lie
  EXPECT_THROW((void)core::spkadd(inputs, opts), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Consumer integration: accumulator + SUMMA
// ---------------------------------------------------------------------------

TEST(HybridConsumers, AccumulatorStreamingIsBitIdenticalToOneShot) {
  const auto inputs = random_collection(20, 512, 16, 700, 91);
  Options opts;
  opts.method = Method::Hybrid;
  const Csc one_shot = core::spkadd(inputs, opts);

  Accumulator<> acc(512, 16, opts, /*batch_capacity=*/4);
  for (const auto& m : inputs) acc.add(m);
  EXPECT_TRUE(acc.finalize() == one_shot);
}

TEST(HybridConsumers, SummaHybridPipelineMatchesSortedHash) {
  gen::WorkloadSpec spec;
  spec.pattern = gen::Pattern::RMAT;
  spec.rows = 256;
  spec.cols = 256;
  spec.avg_nnz_per_col = 4;
  spec.k = 1;
  spec.seed = 101;
  const Csc a = gen::make_workload(spec)[0];

  summa::SummaConfig hybrid_cfg = summa::hybrid_pipeline(4);
  summa::SummaConfig hash_cfg = summa::sorted_hash_pipeline(4);
  const auto hybrid_streaming = summa::multiply(a, a, hybrid_cfg);
  hybrid_cfg.streaming = false;
  const auto hybrid_buffered = summa::multiply(a, a, hybrid_cfg);
  const auto hash_result = summa::multiply(a, a, hash_cfg);

  EXPECT_TRUE(hybrid_streaming.c == hash_result.c);
  EXPECT_TRUE(hybrid_buffered.c == hash_result.c);
}

}  // namespace
