// Local SpGEMM: hash and heap accumulators vs a dense oracle.
#include <gtest/gtest.h>

#include "core/spkadd.hpp"
#include "gen/workload.hpp"
#include "matrix/dense.hpp"
#include "matrix/validate.hpp"
#include "spgemm/local_spgemm.hpp"
#include "test_helpers.hpp"

namespace {

using namespace spkadd;
using namespace spkadd::spgemm;
using spkadd::testing::from_triplets;
using spkadd::testing::random_matrix;

using Csc = spkadd::testing::Csc;

/// Dense multiply oracle keeping the exact structural pattern Gustavson
/// produces (union over b-entries of A-column patterns).
Csc dense_multiply(const Csc& a, const Csc& b) {
  DenseMatrix<double> acc(a.rows(), b.cols());
  std::vector<char> pattern(static_cast<std::size_t>(a.rows()) *
                                static_cast<std::size_t>(b.cols()),
                            0);
  for (std::int32_t j = 0; j < b.cols(); ++j) {
    const auto bcol = b.column(j);
    for (std::size_t t = 0; t < bcol.nnz(); ++t) {
      const auto acol = a.column(bcol.rows[t]);
      for (std::size_t i = 0; i < acol.nnz(); ++i) {
        acc(acol.rows[i], j) += acol.vals[i] * bcol.vals[t];
        pattern[static_cast<std::size_t>(j) *
                    static_cast<std::size_t>(a.rows()) +
                static_cast<std::size_t>(acol.rows[i])] = 1;
      }
    }
  }
  return acc.to_csc<std::int32_t>([&](std::int64_t r, std::int64_t c) {
    return pattern[static_cast<std::size_t>(c) *
                       static_cast<std::size_t>(a.rows()) +
                   static_cast<std::size_t>(r)] != 0;
  });
}

TEST(Spgemm, TinyHandComputedProduct) {
  // [1 0; 2 3] * [4 0; 0 5] = [4 0; 8 15]
  const auto a = from_triplets(2, 2, {{0, 0, 1.0}, {1, 0, 2.0}, {1, 1, 3.0}});
  const auto b = from_triplets(2, 2, {{0, 0, 4.0}, {1, 1, 5.0}});
  const auto c = multiply(a, b);
  EXPECT_DOUBLE_EQ(c.at(0, 0), 4.0);
  EXPECT_DOUBLE_EQ(c.at(1, 0), 8.0);
  EXPECT_DOUBLE_EQ(c.at(1, 1), 15.0);
  EXPECT_EQ(c.nnz(), 3u);
}

TEST(Spgemm, HashMatchesDenseOracle) {
  const auto a = random_matrix(64, 48, 400, 1);
  const auto b = random_matrix(48, 32, 300, 2);
  const auto c = multiply(a, b);
  EXPECT_TRUE(validate(c).valid);
  EXPECT_TRUE(approx_equal(dense_multiply(a, b), c, 1e-9));
}

TEST(Spgemm, HeapMatchesHash) {
  const auto a = random_matrix(64, 48, 400, 3);
  const auto b = random_matrix(48, 32, 300, 4);
  SpgemmOptions heap_opts;
  heap_opts.accumulator = Accumulator::Heap;
  EXPECT_TRUE(approx_equal(multiply(a, b), multiply(a, b, heap_opts), 1e-9));
}

TEST(Spgemm, UnsortedOutputHasSameEntries) {
  const auto a = random_matrix(64, 32, 300, 5);
  const auto b = random_matrix(32, 16, 200, 6);
  SpgemmOptions opts;
  opts.sorted_output = false;
  auto c = multiply(a, b, opts);
  EXPECT_TRUE(validate(c, /*require_sorted=*/false).valid);
  c.sort_columns();
  EXPECT_TRUE(approx_equal(multiply(a, b), c, 1e-9));
}

TEST(Spgemm, IdentityIsNeutral) {
  const auto a = random_matrix(32, 32, 200, 7);
  CooMatrix<std::int32_t, double> id(32, 32);
  for (std::int32_t i = 0; i < 32; ++i) id.push(i, i, 1.0);
  id.compress();
  const auto eye = id.to_csc();
  EXPECT_TRUE(approx_equal(a, multiply(a, eye), 1e-12));
  EXPECT_TRUE(approx_equal(a, multiply(eye, a), 1e-12));
}

TEST(Spgemm, DimensionMismatchThrows) {
  const auto a = random_matrix(8, 4, 10, 8);
  const auto b = random_matrix(5, 8, 10, 9);
  EXPECT_THROW(multiply(a, b), std::invalid_argument);
}

TEST(Spgemm, EmptyOperandsGiveEmptyProduct) {
  const Csc a(8, 4);
  const auto b = random_matrix(4, 8, 10, 10);
  EXPECT_EQ(multiply(a, b).nnz(), 0u);
  const Csc b2(8, 6);
  const auto a2 = random_matrix(4, 8, 10, 11);
  EXPECT_EQ(multiply(a2, b2).nnz(), 0u);
}

TEST(Spgemm, HeapRequiresSortedA) {
  auto a = random_matrix(32, 16, 100, 12);
  const auto b = random_matrix(16, 8, 50, 13);
  spkadd::gen::shuffle_columns(a, 44);
  SpgemmOptions opts;
  opts.accumulator = Accumulator::Heap;
  EXPECT_THROW(multiply(a, b, opts), std::invalid_argument);
}

TEST(Spgemm, ThreadCountsAgree) {
  const auto a = random_matrix(64, 32, 400, 14);
  const auto b = random_matrix(32, 32, 300, 15);
  const auto ref = multiply(a, b);
  for (int t : {1, 2, 4}) {
    SpgemmOptions opts;
    opts.threads = t;
    EXPECT_TRUE(approx_equal(ref, multiply(a, b, opts), 1e-12));
  }
}

TEST(Spgemm, MultiplyIntoMatchesMultiplyBitIdentically) {
  // multiply_into with a shared, reused Runtime is the streaming SUMMA
  // producer; it must be the same computation as the one-shot API, bit for
  // bit, no matter how stale or grown the scratch pool is.
  const auto a = random_matrix(72, 56, 600, 40);
  const auto b = random_matrix(56, 64, 500, 41);
  core::Runtime<std::int32_t, double> rt;
  for (const auto acc : {Accumulator::Hash, Accumulator::Heap}) {
    for (const bool sorted : {true, false}) {
      if (acc == Accumulator::Heap && !sorted) continue;
      SpgemmOptions opts;
      opts.accumulator = acc;
      opts.sorted_output = sorted;
      const auto one_shot = multiply(a, b, opts);
      Csc emitted;
      multiply_into(a, b, opts, rt, emitted);  // rt reused across configs
      EXPECT_TRUE(emitted == one_shot)
          << (acc == Accumulator::Hash ? "hash" : "heap")
          << " sorted=" << sorted;
    }
  }
}

TEST(Spgemm, ProducesSpkaddReadyIntermediates) {
  // The paper's pipeline: k products A_i * B_i reduced by SpKAdd.
  std::vector<Csc> products;
  for (int i = 0; i < 4; ++i) {
    const auto a = random_matrix(48, 24, 200, 20 + i);
    const auto b = random_matrix(24, 16, 150, 30 + i);
    products.push_back(multiply(a, b));
  }
  const auto sum = spkadd::core::spkadd(products);
  EXPECT_TRUE(approx_equal(
      spkadd::testing::dense_sum_oracle(std::span<const Csc>(products)), sum));
}

}  // namespace
