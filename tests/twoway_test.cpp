// 2-way merge kernels, pairwise add2, incremental and tree SpKAdd, and the
// MKL-substitute reference adder.
#include <gtest/gtest.h>

#include "core/reference_add.hpp"
#include "core/twoway.hpp"
#include "matrix/validate.hpp"
#include "test_helpers.hpp"

namespace {

using namespace spkadd;
using namespace spkadd::core;
using spkadd::testing::dense_sum_oracle;
using spkadd::testing::from_triplets;
using spkadd::testing::random_collection;

using Csc = spkadd::testing::Csc;

TEST(Merge2, CountAndAddAgree) {
  const auto a = from_triplets(8, 1, {{1, 0, 3.0}, {3, 0, 2.0}, {6, 0, 1.0}});
  const auto b = from_triplets(8, 1, {{0, 0, 2.0}, {3, 0, 1.0}, {5, 0, 3.0}});
  const auto ca = a.column(0);
  const auto cb = b.column(0);
  EXPECT_EQ(merge2_count(ca, cb), 5u);  // overlap at row 3
  std::vector<std::int32_t> rows(6);
  std::vector<double> vals(6);
  const auto n = merge2_add(ca, cb, rows.data(), vals.data());
  ASSERT_EQ(n, 5u);
  EXPECT_EQ(rows[0], 0);
  EXPECT_EQ(rows[2], 3);
  EXPECT_DOUBLE_EQ(vals[2], 3.0);  // 2 + 1
  EXPECT_EQ(rows[4], 6);
}

TEST(Merge2, EmptySides) {
  const auto a = from_triplets(4, 1, {{1, 0, 1.0}});
  const Csc empty(4, 1);
  EXPECT_EQ(merge2_count(a.column(0), empty.column(0)), 1u);
  EXPECT_EQ(merge2_count(empty.column(0), empty.column(0)), 0u);
  std::vector<std::int32_t> rows(2);
  std::vector<double> vals(2);
  EXPECT_EQ(merge2_add(empty.column(0), a.column(0), rows.data(), vals.data()),
            1u);
  EXPECT_EQ(rows[0], 1);
}

TEST(Merge2, CountsOperations) {
  const auto a = from_triplets(8, 1, {{1, 0, 1.0}, {3, 0, 1.0}});
  const auto b = from_triplets(8, 1, {{2, 0, 1.0}});
  OpCounters c;
  const std::size_t out_nnz = merge2_count(a.column(0), b.column(0), &c);
  EXPECT_EQ(out_nnz, 3u);
  EXPECT_EQ(c.merge_ops, 3u);
}

TEST(Add2, MatchesDenseOracle) {
  const auto inputs = random_collection(2, 64, 16, 200, 11);
  const auto got = add2(inputs[0], inputs[1]);
  EXPECT_TRUE(validate(got).valid);
  EXPECT_TRUE(approx_equal(
      dense_sum_oracle(std::span<const Csc>(inputs)), got));
}

TEST(Add2, ShapeMismatchThrows) {
  const auto a = from_triplets(4, 2, {{0, 0, 1.0}});
  const auto b = from_triplets(4, 3, {{0, 0, 1.0}});
  EXPECT_THROW(add2(a, b), std::invalid_argument);
}

TEST(Add2, FullOverlapHalvesOutput) {
  const auto a = from_triplets(8, 1, {{1, 0, 1.0}, {5, 0, 2.0}});
  const auto out = add2(a, a);
  EXPECT_EQ(out.nnz(), 2u);
  EXPECT_DOUBLE_EQ(out.at(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(out.at(5, 0), 4.0);
}

TEST(TwoWayIncremental, MatchesDenseOracle) {
  const auto inputs = random_collection(5, 64, 8, 100, 3);
  const auto got =
      spkadd_twoway_incremental(std::span<const Csc>(inputs));
  EXPECT_TRUE(approx_equal(
      dense_sum_oracle(std::span<const Csc>(inputs)), got));
}

TEST(TwoWayTree, MatchesDenseOracleOddAndEvenK) {
  for (int k : {1, 2, 3, 4, 7, 8}) {
    const auto inputs = random_collection(k, 32, 8, 64, 100 + k);
    const auto got = spkadd_twoway_tree(std::span<const Csc>(inputs));
    EXPECT_TRUE(approx_equal(
        dense_sum_oracle(std::span<const Csc>(inputs)), got))
        << "k=" << k;
  }
}

TEST(TwoWay, RejectsUnsortedInputs) {
  std::vector<Csc> inputs{
      Csc(4, 1, {0, 2}, {2, 0}, {1.0, 1.0}),  // unsorted column
      from_triplets(4, 1, {{1, 0, 1.0}}),
  };
  EXPECT_THROW(spkadd_twoway_tree(std::span<const Csc>(inputs)),
               std::invalid_argument);
  EXPECT_THROW(spkadd_twoway_incremental(std::span<const Csc>(inputs)),
               std::invalid_argument);
}

TEST(ReferenceAdd, MatchesTwoWayTree) {
  const auto inputs = random_collection(6, 64, 8, 120, 8);
  const auto tree = spkadd_twoway_tree(std::span<const Csc>(inputs));
  EXPECT_TRUE(approx_equal(
      tree, spkadd_reference_incremental(std::span<const Csc>(inputs))));
  EXPECT_TRUE(approx_equal(
      tree, spkadd_reference_tree(std::span<const Csc>(inputs))));
}

TEST(ReferenceAdd, SingleInputPassesThrough) {
  const auto inputs = random_collection(1, 16, 4, 20, 2);
  EXPECT_TRUE(spkadd_reference_tree(std::span<const Csc>(inputs)) ==
              inputs[0]);
}

TEST(TwoWayIncremental, WorkGrowsQuadraticallyInK) {
  // Table I: 2-way incremental does O(k^2 nd) merge work on disjoint
  // (ER-like) inputs, vs O(k nd lg k) for the tree. Verify the k^2 trend by
  // counting merge operations at two values of k.
  auto count_ops = [](int k) {
    const auto inputs = random_collection(k, 1 << 12, 8, 256, 500);
    OpCounters c;
    Options opts;
    opts.counters = &c;
    [[maybe_unused]] const auto sum =
        spkadd_twoway_incremental(std::span<const Csc>(inputs), opts);
    return c.merge_ops;
  };
  const auto w4 = count_ops(4);
  const auto w16 = count_ops(16);
  // k grows 4x => quadratic work grows ~16x (allowing generous slack for
  // overlap dedup and constant terms).
  const double growth = static_cast<double>(w16) / static_cast<double>(w4);
  EXPECT_GT(growth, 8.0);
  EXPECT_LT(growth, 32.0);
}

TEST(TwoWayTree, WorkGrowsAsKLogK) {
  auto count_ops = [](int k) {
    const auto inputs = random_collection(k, 1 << 12, 8, 256, 501);
    OpCounters c;
    Options opts;
    opts.counters = &c;
    [[maybe_unused]] const auto sum =
        spkadd_twoway_tree(std::span<const Csc>(inputs), opts);
    return c.merge_ops;
  };
  const auto w4 = count_ops(4);    // ~ 4 * 2 levels
  const auto w16 = count_ops(16);  // ~ 16 * 4 levels => 8x the ops of k=4
  const double growth = static_cast<double>(w16) / static_cast<double>(w4);
  EXPECT_GT(growth, 5.0);
  EXPECT_LT(growth, 12.0);
}

}  // namespace
