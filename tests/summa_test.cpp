// Simulated sparse SUMMA: the distributed schedule must compute exactly the
// same product as a direct local SpGEMM, for every grid size and pipeline —
// and the streaming schedule must match the buffered baseline bit for bit
// while keeping at most stream_window stage products live per process.
#include <gtest/gtest.h>

#include <numeric>

#include "matrix/block.hpp"
#include "matrix/validate.hpp"
#include "spgemm/local_spgemm.hpp"
#include "summa/sparse_summa.hpp"
#include "test_helpers.hpp"

namespace {

using namespace spkadd;
using namespace spkadd::summa;
using spkadd::testing::random_matrix;

using Csc = spkadd::testing::Csc;

/// All three Fig. 6 preset factories, by name.
const std::vector<std::pair<const char*, SummaConfig (*)(int)>>& presets() {
  static const std::vector<std::pair<const char*, SummaConfig (*)(int)>> p{
      {"Heap", heap_pipeline},
      {"Sorted Hash", sorted_hash_pipeline},
      {"Unsorted Hash", unsorted_hash_pipeline},
  };
  return p;
}

TEST(Summa, MatchesDirectMultiplyAcrossGridSizes) {
  const auto a = random_matrix(96, 64, 800, 1);
  const auto b = random_matrix(64, 80, 700, 2);
  const auto direct = spgemm::multiply(a, b);
  for (int g : {1, 2, 3, 4}) {
    SummaConfig cfg = sorted_hash_pipeline(g);
    const auto result = multiply(a, b, cfg);
    EXPECT_TRUE(validate(result.c).valid) << "grid=" << g;
    EXPECT_TRUE(approx_equal(direct, result.c, 1e-9)) << "grid=" << g;
    EXPECT_GE(result.intermediate_nnz, result.c.nnz());
    EXPECT_GE(result.compression_factor, 1.0);
    EXPECT_GE(result.multiply_seconds, 0.0);
    EXPECT_GE(result.spkadd_seconds, 0.0);
  }
}

TEST(Summa, AllThreePipelinesAgree) {
  const auto a = random_matrix(64, 48, 600, 3);
  const auto b = random_matrix(48, 64, 500, 4);
  const auto heap = multiply(a, b, heap_pipeline(4));
  const auto sorted_hash = multiply(a, b, sorted_hash_pipeline(4));
  const auto unsorted_hash = multiply(a, b, unsorted_hash_pipeline(4));
  EXPECT_TRUE(approx_equal(heap.c, sorted_hash.c, 1e-9));
  EXPECT_TRUE(approx_equal(heap.c, unsorted_hash.c, 1e-9));
}

TEST(Summa, RejectsInvalidConfigs) {
  const auto a = random_matrix(16, 16, 40, 5);
  const auto b = random_matrix(16, 16, 40, 6);
  SummaConfig bad = heap_pipeline(2);
  bad.sort_local_products = false;  // heap reduce needs sorted products
  EXPECT_THROW(multiply(a, b, bad), std::invalid_argument);
  SummaConfig zero = sorted_hash_pipeline(0);
  EXPECT_THROW(multiply(a, b, zero), std::invalid_argument);
  const auto c = random_matrix(8, 16, 20, 7);
  EXPECT_THROW(multiply(a, c, sorted_hash_pipeline(2)),
               std::invalid_argument);  // inner mismatch (16 vs 8)
}

TEST(Summa, GridLargerThanDimensionsStillCorrect) {
  const auto a = random_matrix(8, 8, 30, 8);
  const auto b = random_matrix(8, 8, 30, 9);
  const auto direct = spgemm::multiply(a, b);
  const auto result = multiply(a, b, sorted_hash_pipeline(8));
  EXPECT_TRUE(approx_equal(direct, result.c, 1e-10));
}

TEST(Summa, AssembleBlocksRoundTripsPartition) {
  const auto m = random_matrix(60, 40, 500, 10);
  const int g = 3;
  const auto rb = partition_bounds(m.rows(), g);
  const auto cb = partition_bounds(m.cols(), g);
  std::vector<std::vector<Csc>> blocks(
      static_cast<std::size_t>(g),
      std::vector<Csc>(static_cast<std::size_t>(g)));
  for (int i = 0; i < g; ++i)
    for (int j = 0; j < g; ++j)
      blocks[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          extract_block(m, rb[static_cast<std::size_t>(i)],
                        rb[static_cast<std::size_t>(i) + 1],
                        cb[static_cast<std::size_t>(j)],
                        cb[static_cast<std::size_t>(j) + 1]);
  EXPECT_TRUE(assemble_blocks(blocks, rb, cb) == m);
}

// ------------------------------------------------------ streaming pipeline

TEST(SummaStreaming, BitIdenticalToBufferedForAllFig6Presets) {
  // The streaming fold chain is the same left-to-right FP reduction as the
  // buffered one-shot SpKAdd, so C must match *bit for bit* — not just
  // within tolerance — for every preset, grid, and window.
  const auto a = random_matrix(96, 72, 1400, 21);
  const auto b = random_matrix(72, 88, 1300, 22);
  for (const auto& [name, make] : presets()) {
    for (int g : {1, 3, 4}) {
      SummaConfig buffered = make(g);
      buffered.streaming = false;
      const auto base = multiply(a, b, buffered);
      for (int window : {1, 2, 3, 8}) {
        SummaConfig streaming = make(g);
        streaming.streaming = true;
        streaming.stream_window = window;
        const auto result = multiply(a, b, streaming);
        EXPECT_TRUE(result.c == base.c)
            << name << " grid=" << g << " window=" << window;
        EXPECT_EQ(result.intermediate_nnz, base.intermediate_nnz);
      }
    }
  }
}

TEST(SummaStreaming, PeakIntermediatesBoundedByWindow) {
  const auto a = random_matrix(120, 96, 2600, 23);
  const auto b = random_matrix(96, 120, 2600, 24);
  for (int window : {1, 2, 3}) {
    SummaConfig cfg = sorted_hash_pipeline(4);
    cfg.stream_window = window;
    const auto result = multiply(a, b, cfg);
    // Never more than `window` stage products live at once: the peak is
    // bounded by window x the largest single stage product.
    EXPECT_LE(result.peak_intermediate_nnz,
              static_cast<std::size_t>(window) * result.max_stage_nnz)
        << "window=" << window;
    EXPECT_GE(result.peak_intermediate_nnz, result.max_stage_nnz);
  }
  // The buffered baseline holds all g stage products, so the streaming peak
  // can never exceed it.
  SummaConfig buffered = sorted_hash_pipeline(4);
  buffered.streaming = false;
  SummaConfig streaming = sorted_hash_pipeline(4);
  streaming.stream_window = 2;
  EXPECT_LE(multiply(a, b, streaming).peak_intermediate_nnz,
            multiply(a, b, buffered).peak_intermediate_nnz);
}

TEST(SummaStreaming, ZeroStageProductCopies) {
  // Stage products are emitted in place into accumulator-owned staging
  // buffers and folded by pointer: the whole streaming schedule performs
  // zero CscMatrix deep copies.
  const auto a = random_matrix(80, 64, 900, 25);
  const auto b = random_matrix(64, 80, 900, 26);
  for (const auto& [name, make] : presets()) {
    SummaConfig cfg = make(4);
    cfg.stream_window = 2;
    const std::uint64_t before = debug::csc_copies();
    const auto result = multiply(a, b, cfg);
    EXPECT_EQ(debug::csc_copies() - before, 0u) << name;
    EXPECT_GT(result.c.nnz(), 0u);
  }
}

TEST(SummaStreaming, PerStageTimingsCoverAllStages) {
  const auto a = random_matrix(64, 48, 700, 27);
  const auto b = random_matrix(48, 64, 650, 28);
  for (bool streaming : {true, false}) {
    SummaConfig cfg = sorted_hash_pipeline(3);
    cfg.streaming = streaming;
    const auto result = multiply(a, b, cfg);
    ASSERT_EQ(result.stage_multiply_seconds.size(), 3u);
    ASSERT_EQ(result.stage_spkadd_seconds.size(), 3u);
    const double mult_total =
        std::accumulate(result.stage_multiply_seconds.begin(),
                        result.stage_multiply_seconds.end(), 0.0);
    const double add_total =
        std::accumulate(result.stage_spkadd_seconds.begin(),
                        result.stage_spkadd_seconds.end(), 0.0);
    EXPECT_DOUBLE_EQ(result.multiply_seconds, mult_total);
    EXPECT_DOUBLE_EQ(result.spkadd_seconds, add_total);
    for (double s : result.stage_multiply_seconds) EXPECT_GE(s, 0.0);
    for (double s : result.stage_spkadd_seconds) EXPECT_GE(s, 0.0);
  }
}

TEST(SummaStreaming, UnsortedInputWithHeapLocalMultiplyThrowsUpFront) {
  // The guard must fire before the process-parallel region: an exception
  // thrown inside an OpenMP worker would terminate instead of propagating.
  Csc unsorted(2, 2, {0, 2, 2}, {1, 0}, {1.0, 2.0});  // descending rows
  ASSERT_FALSE(unsorted.is_sorted());
  const auto b = random_matrix(2, 2, 3, 33);
  for (bool streaming : {true, false}) {
    SummaConfig cfg = heap_pipeline(2);
    cfg.streaming = streaming;
    EXPECT_THROW(multiply(unsorted, b, cfg), std::invalid_argument)
        << "streaming=" << streaming;
  }
}

TEST(SummaStreaming, RejectsZeroWindow) {
  const auto a = random_matrix(16, 16, 40, 29);
  const auto b = random_matrix(16, 16, 40, 30);
  SummaConfig cfg = sorted_hash_pipeline(2);
  cfg.stream_window = 0;
  EXPECT_THROW(multiply(a, b, cfg), std::invalid_argument);
}

TEST(SummaStreaming, GridLargerThanDimensionsStillCorrect) {
  // Degenerate empty blocks flow through reshape/stage/fold unharmed.
  const auto a = random_matrix(6, 6, 20, 31);
  const auto b = random_matrix(6, 6, 20, 32);
  const auto direct = spgemm::multiply(a, b);
  SummaConfig cfg = sorted_hash_pipeline(8);
  cfg.stream_window = 2;
  EXPECT_TRUE(approx_equal(direct, multiply(a, b, cfg).c, 1e-10));
}

TEST(Summa, IntermediateNnzGrowsWithGrid) {
  // More stages produce more (smaller) intermediates whose total nnz is at
  // least the direct product's nnz; overlap grows with the grid.
  const auto a = random_matrix(64, 64, 1500, 11);
  const auto b = random_matrix(64, 64, 1500, 12);
  const auto g2 = multiply(a, b, sorted_hash_pipeline(2));
  const auto g4 = multiply(a, b, sorted_hash_pipeline(4));
  EXPECT_TRUE(approx_equal(g2.c, g4.c, 1e-9));
  EXPECT_GE(g4.compression_factor, 1.0);
}

}  // namespace
