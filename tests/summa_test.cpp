// Simulated sparse SUMMA: the distributed schedule must compute exactly the
// same product as a direct local SpGEMM, for every grid size and pipeline.
#include <gtest/gtest.h>

#include "matrix/block.hpp"
#include "matrix/validate.hpp"
#include "spgemm/local_spgemm.hpp"
#include "summa/sparse_summa.hpp"
#include "test_helpers.hpp"

namespace {

using namespace spkadd;
using namespace spkadd::summa;
using spkadd::testing::random_matrix;

using Csc = spkadd::testing::Csc;

TEST(Summa, MatchesDirectMultiplyAcrossGridSizes) {
  const auto a = random_matrix(96, 64, 800, 1);
  const auto b = random_matrix(64, 80, 700, 2);
  const auto direct = spgemm::multiply(a, b);
  for (int g : {1, 2, 3, 4}) {
    SummaConfig cfg = sorted_hash_pipeline(g);
    const auto result = multiply(a, b, cfg);
    EXPECT_TRUE(validate(result.c).valid) << "grid=" << g;
    EXPECT_TRUE(approx_equal(direct, result.c, 1e-9)) << "grid=" << g;
    EXPECT_GE(result.intermediate_nnz, result.c.nnz());
    EXPECT_GE(result.compression_factor, 1.0);
    EXPECT_GE(result.multiply_seconds, 0.0);
    EXPECT_GE(result.spkadd_seconds, 0.0);
  }
}

TEST(Summa, AllThreePipelinesAgree) {
  const auto a = random_matrix(64, 48, 600, 3);
  const auto b = random_matrix(48, 64, 500, 4);
  const auto heap = multiply(a, b, heap_pipeline(4));
  const auto sorted_hash = multiply(a, b, sorted_hash_pipeline(4));
  const auto unsorted_hash = multiply(a, b, unsorted_hash_pipeline(4));
  EXPECT_TRUE(approx_equal(heap.c, sorted_hash.c, 1e-9));
  EXPECT_TRUE(approx_equal(heap.c, unsorted_hash.c, 1e-9));
}

TEST(Summa, RejectsInvalidConfigs) {
  const auto a = random_matrix(16, 16, 40, 5);
  const auto b = random_matrix(16, 16, 40, 6);
  SummaConfig bad = heap_pipeline(2);
  bad.sort_local_products = false;  // heap reduce needs sorted products
  EXPECT_THROW(multiply(a, b, bad), std::invalid_argument);
  SummaConfig zero = sorted_hash_pipeline(0);
  EXPECT_THROW(multiply(a, b, zero), std::invalid_argument);
  const auto c = random_matrix(8, 16, 20, 7);
  EXPECT_THROW(multiply(a, c, sorted_hash_pipeline(2)),
               std::invalid_argument);  // inner mismatch (16 vs 8)
}

TEST(Summa, GridLargerThanDimensionsStillCorrect) {
  const auto a = random_matrix(8, 8, 30, 8);
  const auto b = random_matrix(8, 8, 30, 9);
  const auto direct = spgemm::multiply(a, b);
  const auto result = multiply(a, b, sorted_hash_pipeline(8));
  EXPECT_TRUE(approx_equal(direct, result.c, 1e-10));
}

TEST(Summa, AssembleBlocksRoundTripsPartition) {
  const auto m = random_matrix(60, 40, 500, 10);
  const int g = 3;
  const auto rb = partition_bounds(m.rows(), g);
  const auto cb = partition_bounds(m.cols(), g);
  std::vector<std::vector<Csc>> blocks(
      static_cast<std::size_t>(g), std::vector<Csc>(static_cast<std::size_t>(g)));
  for (int i = 0; i < g; ++i)
    for (int j = 0; j < g; ++j)
      blocks[static_cast<std::size_t>(i)][static_cast<std::size_t>(j)] =
          extract_block(m, rb[static_cast<std::size_t>(i)],
                        rb[static_cast<std::size_t>(i) + 1],
                        cb[static_cast<std::size_t>(j)],
                        cb[static_cast<std::size_t>(j) + 1]);
  EXPECT_TRUE(assemble_blocks(blocks, rb, cb) == m);
}

TEST(Summa, IntermediateNnzGrowsWithGrid) {
  // More stages produce more (smaller) intermediates whose total nnz is at
  // least the direct product's nnz; overlap grows with the grid.
  const auto a = random_matrix(64, 64, 1500, 11);
  const auto b = random_matrix(64, 64, 1500, 12);
  const auto g2 = multiply(a, b, sorted_hash_pipeline(2));
  const auto g4 = multiply(a, b, sorted_hash_pipeline(4));
  EXPECT_TRUE(approx_equal(g2.c, g4.c, 1e-9));
  EXPECT_GE(g4.compression_factor, 1.0);
}

}  // namespace
