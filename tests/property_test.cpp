// Property-based sweeps: for every (pattern, k, d, method, sortedness) cell
// the result must equal the dense oracle, validate structurally, and agree
// across methods. Uses parameterized gtest as the sweep engine.
#include <gtest/gtest.h>

#include "core/spkadd.hpp"
#include "gen/workload.hpp"
#include "matrix/validate.hpp"
#include "test_helpers.hpp"

namespace {

using namespace spkadd;
using namespace spkadd::core;
using spkadd::gen::Pattern;
using spkadd::gen::WorkloadSpec;

using Csc = spkadd::testing::Csc;

struct SweepCase {
  Pattern pattern;
  int k;
  int d;
  Method method;
  bool sorted_output;
};

std::string case_name(const ::testing::TestParamInfo<SweepCase>& info) {
  const auto& c = info.param;
  std::string name = c.pattern == Pattern::ER ? "ER" : "RMAT";
  name += "_k" + std::to_string(c.k) + "_d" + std::to_string(c.d) + "_";
  std::string m = method_name(c.method);
  for (char& ch : m)
    if (!std::isalnum(static_cast<unsigned char>(ch))) ch = '_';
  name += m;
  name += c.sorted_output ? "_sorted" : "_unsorted";
  return name;
}

class SpkaddSweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  static std::vector<Csc> workload(const SweepCase& c) {
    WorkloadSpec spec;
    spec.pattern = c.pattern;
    spec.rows = 256;
    spec.cols = 16;
    spec.avg_nnz_per_col = c.d;
    spec.k = c.k;
    spec.seed = 42 + static_cast<std::uint64_t>(c.k) * 31 +
                static_cast<std::uint64_t>(c.d);
    return spkadd::gen::make_workload(spec);
  }
};

TEST_P(SpkaddSweep, MatchesDenseOracle) {
  const SweepCase c = GetParam();
  const auto inputs = workload(c);
  const auto oracle =
      spkadd::testing::dense_sum_oracle(std::span<const Csc>(inputs));

  Options opts;
  opts.method = c.method;
  opts.sorted_output = c.sorted_output;
  auto out = core::spkadd(inputs, opts);

  EXPECT_TRUE(validate(out, /*require_sorted=*/false).valid);
  if (!c.sorted_output) out.sort_columns();
  EXPECT_TRUE(validate(out, /*require_sorted=*/true).valid);
  EXPECT_TRUE(approx_equal(oracle, out));

  // Output never exceeds the sum of inputs; compression factor >= 1.
  EXPECT_LE(out.nnz(), spkadd::gen::total_input_nnz(inputs));
  EXPECT_GE(compression_factor(std::span<const Csc>(inputs), out), 1.0);
}

std::vector<SweepCase> sweep_cases() {
  std::vector<SweepCase> cases;
  const Method methods[] = {Method::TwoWayIncremental, Method::TwoWayTree,
                            Method::Heap, Method::Spa, Method::Hash,
                            Method::SlidingHash, Method::DenseAcc,
                            Method::Hybrid};
  for (Pattern p : {Pattern::ER, Pattern::RMAT})
    for (int k : {2, 4, 8, 16})
      for (int d : {2, 8, 32})
        for (Method m : methods) {
          cases.push_back({p, k, d, m, true});
          // Unsorted output only for the methods that can skip the sort.
          if (m == Method::Spa || m == Method::Hash ||
              m == Method::SlidingHash || m == Method::Hybrid)
            cases.push_back({p, k, d, m, false});
        }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllPatternsMethodsSizes, SpkaddSweep,
                         ::testing::ValuesIn(sweep_cases()), case_name);

TEST(DenseAccBitIdentity, MatchesReferenceIncrementalOnRandomBatches) {
  // The dense bitmap accumulator runs the same strict left fold as the
  // pairwise reference chain, so raw FP results must match bit for bit —
  // no quantization, every pattern, k across the sparse/dense boundary.
  for (Pattern p : {Pattern::ER, Pattern::RMAT}) {
    for (int k : {2, 4, 8, 16}) {
      for (int d : {2, 32, 128}) {
        WorkloadSpec spec;
        spec.pattern = p;
        spec.rows = 256;
        spec.cols = 16;
        spec.avg_nnz_per_col = d;
        spec.k = k;
        spec.seed = 4242 + static_cast<std::uint64_t>(k) * 13 +
                    static_cast<std::uint64_t>(d);
        const auto inputs = spkadd::gen::make_workload(spec);
        Options dense_opts;
        dense_opts.method = Method::DenseAcc;
        Options ref_opts;
        ref_opts.method = Method::ReferenceIncremental;
        EXPECT_TRUE(core::spkadd(inputs, dense_opts) ==
                    core::spkadd(inputs, ref_opts))
            << "k=" << k << " d=" << d;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Cross-type instantiation: the kernels are index/value generic.
// ---------------------------------------------------------------------------

template <class IndexT, class ValueT>
void check_generic_roundtrip() {
  using M = CscMatrix<IndexT, ValueT>;
  std::vector<M> inputs;
  for (int i = 0; i < 4; ++i) {
    std::vector<IndexT> col_ptr{0, 2, 3};
    std::vector<IndexT> rows{static_cast<IndexT>(i),
                             static_cast<IndexT>(i + 4),
                             static_cast<IndexT>(2 * i)};
    std::vector<ValueT> vals{static_cast<ValueT>(1), static_cast<ValueT>(2),
                             static_cast<ValueT>(3)};
    inputs.emplace_back(static_cast<IndexT>(16), static_cast<IndexT>(2),
                        std::move(col_ptr), std::move(rows), std::move(vals));
  }
  const auto hash_out =
      spkadd_hash(std::span<const M>(inputs), Options{});
  const auto heap_out =
      spkadd_heap(std::span<const M>(inputs), Options{});
  const auto spa_out = spkadd_spa(std::span<const M>(inputs), Options{});
  const auto dense_out =
      spkadd_denseacc(std::span<const M>(inputs), Options{});
  EXPECT_TRUE(hash_out == heap_out);
  EXPECT_TRUE(hash_out == spa_out);
  EXPECT_TRUE(hash_out == dense_out);
  EXPECT_EQ(hash_out.rows(), 16);
}

TEST(GenericTypes, Int64Double) {
  check_generic_roundtrip<std::int64_t, double>();
}
TEST(GenericTypes, Int32Float) {
  check_generic_roundtrip<std::int32_t, float>();
}
TEST(GenericTypes, Int64Float) {
  check_generic_roundtrip<std::int64_t, float>();
}

}  // namespace
