// WindowedAggService: concurrent timestamped ingest over the MPMC
// burst path, drain exactness, windowed snapshot bit-identity against
// reference folds, expired-update accounting and shutdown draining.
// Runs under the TSAN CI leg (label: concurrency).
#include "service/windowed_service.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/accumulator.hpp"
#include "core/spkadd.hpp"
#include "test_helpers.hpp"
#include "util/rng.hpp"

namespace {

using spkadd::service::WindowedAggService;
using spkadd::testing::Csc;

constexpr std::int32_t kRows = 150;
constexpr std::int32_t kCols = 9;

/// Integer-valued update: double addition is exact, so any
/// producer/worker interleaving yields bit-identical sums.
Csc integer_matrix(std::uint64_t seed) {
  spkadd::util::Xoshiro256 rng(seed);
  spkadd::CooMatrix<std::int32_t, double> coo(kRows, kCols);
  coo.reserve(80);
  for (std::size_t i = 0; i < 80; ++i) {
    const auto r = static_cast<std::int32_t>(
        rng.bounded(static_cast<std::uint64_t>(kRows)));
    const auto c = static_cast<std::int32_t>(
        rng.bounded(static_cast<std::uint64_t>(kCols)));
    coo.push(r, c, static_cast<double>(rng.bounded(9)) - 4.0);
  }
  coo.compress();
  return coo.to_csc();
}

WindowedAggService::Config small_config() {
  WindowedAggService::Config cfg;
  cfg.window.bucket_width = 10;
  cfg.window.live_buckets = 4;
  cfg.window.batch_window = 3;
  cfg.workers = 2;
  cfg.queue_capacity = 32;
  cfg.burst_size = 8;
  return cfg;
}

/// Reference: per-bucket strict folds, then a strict left fold of the
/// partials ascending — the same shape TenantWindow::snapshot uses.
Csc reference_fold(const WindowedAggService::Config& cfg,
                   const std::vector<std::vector<Csc>>& bucket_streams) {
  std::vector<spkadd::core::Accumulator<>> accs;
  for (const auto& stream : bucket_streams) {
    if (stream.empty()) continue;
    accs.emplace_back(kRows, kCols, cfg.window.options,
                      cfg.window.batch_window);
    for (const auto& u : stream) accs.back().add(u);
  }
  if (accs.empty()) return Csc(kRows, kCols);
  std::vector<const Csc*> parts;
  for (auto& a : accs) parts.push_back(&a.partial_sum());
  if (parts.size() == 1) return *parts.front();
  return spkadd::core::spkadd(
      spkadd::core::MatrixPtrs<std::int32_t, double>(parts),
      cfg.window.options);
}

// ----------------------------------------------------- configuration
TEST(WindowedServiceConfig, RejectsUnusableKnobs) {
  auto cfg = small_config();
  cfg.workers = 0;
  EXPECT_THROW(WindowedAggService{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.queue_capacity = 0;
  EXPECT_THROW(WindowedAggService{cfg}, std::invalid_argument);
  cfg = small_config();
  cfg.window.live_buckets = 0;
  EXPECT_THROW(WindowedAggService{cfg}, std::invalid_argument);
}

// -------------------------------------------------------- bit-identity
TEST(WindowedService, ConcurrentProducersMatchReferenceFold) {
  // 4 producers stream integer-valued updates into 3 buckets of one
  // tenant; after drain every windowed snapshot must be bit-identical
  // to the single-threaded reference fold of those buckets.
  constexpr int kProducers = 4;
  constexpr int kPerBucket = 5;
  const auto cfg = small_config();
  std::vector<std::vector<Csc>> buckets(3);
  for (int b = 0; b < 3; ++b)
    for (int p = 0; p < kProducers; ++p)
      for (int i = 0; i < kPerBucket; ++i)
        buckets[static_cast<std::size_t>(b)].push_back(integer_matrix(
            static_cast<std::uint64_t>(b * 1000 + p * 100 + i)));

  WindowedAggService svc(cfg);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p)
    producers.emplace_back([&, p] {
      // Buckets ascend so no producer can expire another's bucket
      // (live_buckets = 4 > 3 used); within a bucket, interleaving is
      // free because integer addition is order-exact.
      for (int b = 0; b < 3; ++b)
        for (int i = 0; i < kPerBucket; ++i) {
          const auto& u = buckets[static_cast<std::size_t>(b)]
                                 [static_cast<std::size_t>(
                                     p * kPerBucket + i)];
          EXPECT_TRUE(svc.submit(
              "t", static_cast<std::uint64_t>(b) * 10 + 3, Csc(u)));
        }
    });
  for (auto& t : producers) t.join();
  svc.drain();

  const auto full = svc.snapshot("t", 0);
  EXPECT_EQ(full.sum,
            reference_fold(cfg, {buckets[0], buckets[1], buckets[2]}));
  EXPECT_EQ(full.updates_applied,
            static_cast<std::uint64_t>(3 * kProducers * kPerBucket));
  const auto two = svc.snapshot("t", 2);
  EXPECT_EQ(two.sum, reference_fold(cfg, {buckets[1], buckets[2]}));
  const auto one = svc.snapshot("t", 1);
  EXPECT_EQ(one.sum, reference_fold(cfg, {buckets[2]}));
  EXPECT_GT(one.epoch, two.epoch);  // per-tenant epochs advance

  const auto stats = svc.stats();
  EXPECT_EQ(stats.applied, stats.submitted);
  EXPECT_EQ(stats.expired, 0u);
  EXPECT_EQ(stats.apply_errors, 0u);
}

TEST(WindowedService, BurstSubmitMatchesPerUpdateSubmit) {
  // The net server's entry point: a whole burst enqueued at once must
  // fold to the same bits as per-update submits.
  const auto cfg = small_config();
  std::vector<Csc> updates;
  for (std::uint64_t i = 0; i < 12; ++i)
    updates.push_back(integer_matrix(i));

  WindowedAggService burst_svc(cfg);
  std::vector<WindowedAggService::TimedUpdate> burst;
  for (const auto& u : updates)
    burst.push_back(WindowedAggService::TimedUpdate{"t", 15, Csc(u)});
  EXPECT_EQ(burst_svc.submit_burst(burst), updates.size());
  EXPECT_TRUE(burst.empty());
  burst_svc.drain();

  WindowedAggService one_svc(cfg);
  for (const auto& u : updates)
    EXPECT_TRUE(one_svc.submit("t", 15, Csc(u)));
  one_svc.drain();

  EXPECT_EQ(burst_svc.snapshot("t", 0).sum, one_svc.snapshot("t", 0).sum);
  EXPECT_EQ(burst_svc.stats().bursts, 1u);
  EXPECT_EQ(burst_svc.stats().burst_updates, updates.size());
}

// ------------------------------------------------ expiry + validation
TEST(WindowedService, ExpiredUpdatesAreCountedNeverFolded) {
  const auto cfg = small_config();  // live ring covers 4 buckets
  WindowedAggService svc(cfg);
  const Csc live = integer_matrix(1);
  EXPECT_TRUE(svc.submit("t", 75, Csc(live)));  // bucket 7
  svc.drain();
  const Csc before = svc.snapshot("t", 0).sum;
  EXPECT_TRUE(svc.submit("t", 5, integer_matrix(2)));  // bucket 0: stale
  svc.drain();
  const auto stats = svc.stats();
  EXPECT_EQ(stats.expired, 1u);
  EXPECT_EQ(stats.applied, 1u);
  ASSERT_EQ(stats.tenants.size(), 1u);
  EXPECT_EQ(stats.tenants[0].second.expired_rejected, 1u);
  EXPECT_EQ(svc.snapshot("t", 0).sum, before);
}

TEST(WindowedService, ShapeMismatchThrowsAndLeavesBurstUntouched) {
  WindowedAggService svc(small_config());
  EXPECT_TRUE(svc.submit("t", 0, integer_matrix(1)));
  std::vector<WindowedAggService::TimedUpdate> burst;
  burst.push_back(WindowedAggService::TimedUpdate{
      "t", 1, spkadd::testing::random_matrix(kRows + 1, kCols, 10, 2)});
  EXPECT_THROW(svc.submit_burst(burst), std::invalid_argument);
  EXPECT_EQ(burst.size(), 1u);  // untouched: nothing partially queued
  svc.drain();
  EXPECT_EQ(svc.stats().applied, 1u);
}

TEST(WindowedService, SnapshotValidatesTenantAndWindow) {
  WindowedAggService svc(small_config());
  EXPECT_THROW((void)svc.snapshot("ghost", 0), std::invalid_argument);
  EXPECT_TRUE(svc.submit("t", 0, integer_matrix(1)));
  svc.drain();
  EXPECT_THROW((void)svc.snapshot("t", 5), std::invalid_argument);
}

// ---------------------------------------------------------- shutdown
TEST(WindowedService, StopFoldsBacklogAndRejectsLateSubmits) {
  auto cfg = small_config();
  cfg.workers = 1;
  WindowedAggService svc(cfg);
  std::vector<Csc> updates;
  for (std::uint64_t i = 0; i < 10; ++i) {
    updates.push_back(integer_matrix(i));
    EXPECT_TRUE(svc.submit("t", 15, Csc(updates.back())));
  }
  svc.stop();  // close-drains the backlog before workers exit
  EXPECT_FALSE(svc.submit("t", 15, integer_matrix(99)));
  const auto stats = svc.stats();
  EXPECT_EQ(stats.applied, 10u);
  EXPECT_EQ(stats.rejected, 1u);
  EXPECT_EQ(svc.snapshot("t", 0).sum,
            reference_fold(cfg, {updates}));
}

TEST(WindowedService, MultiTenantStreamsStayIsolated) {
  const auto cfg = small_config();
  WindowedAggService svc(cfg);
  std::vector<Csc> a_updates, b_updates;
  std::thread ta([&] {
    for (std::uint64_t i = 0; i < 8; ++i) {
      a_updates.push_back(integer_matrix(1000 + i));
      EXPECT_TRUE(svc.submit("a", 12, Csc(a_updates.back())));
    }
  });
  std::thread tb([&] {
    for (std::uint64_t i = 0; i < 8; ++i) {
      b_updates.push_back(integer_matrix(2000 + i));
      EXPECT_TRUE(svc.submit("b", 22, Csc(b_updates.back())));
    }
  });
  ta.join();
  tb.join();
  svc.drain();
  EXPECT_EQ(svc.snapshot("a", 0).sum, reference_fold(cfg, {a_updates}));
  EXPECT_EQ(svc.snapshot("b", 0).sum, reference_fold(cfg, {b_updates}));
  EXPECT_EQ(svc.stats().tenants.size(), 2u);
}

}  // namespace
