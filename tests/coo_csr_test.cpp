// COO canonicalization, CSR conversions and transposition.
#include <gtest/gtest.h>

#include "matrix/coo.hpp"
#include "matrix/csr.hpp"
#include "test_helpers.hpp"

namespace {

using spkadd::CooMatrix;
using spkadd::CscMatrix;
using spkadd::csc_to_csr;
using spkadd::csr_to_csc;
using spkadd::transpose;
using spkadd::testing::from_triplets;
using spkadd::testing::random_matrix;

TEST(Coo, PushValidatesRange) {
  CooMatrix<> m(3, 3);
  EXPECT_THROW(m.push(3, 0, 1.0), std::out_of_range);
  EXPECT_THROW(m.push(0, -1, 1.0), std::out_of_range);
  m.push(2, 2, 1.0);
  EXPECT_EQ(m.nnz(), 1u);
}

TEST(Coo, CompressSumsDuplicatesAndSorts) {
  CooMatrix<> m(4, 2);
  m.push(3, 1, 1.0);
  m.push(0, 0, 2.0);
  m.push(3, 1, 4.0);  // duplicate of the first
  m.push(1, 0, 3.0);
  m.compress();
  ASSERT_EQ(m.nnz(), 3u);
  EXPECT_EQ(m.entries()[0].col, 0);
  EXPECT_EQ(m.entries()[0].row, 0);
  EXPECT_DOUBLE_EQ(m.entries()[2].val, 5.0);  // 1 + 4
}

TEST(Coo, ToCscProducesSortedColumns) {
  CooMatrix<> m(5, 3);
  m.push(4, 2, 1.0);
  m.push(0, 0, 2.0);
  m.push(2, 0, 3.0);
  m.compress();
  const auto csc = m.to_csc();
  EXPECT_TRUE(csc.is_sorted());
  EXPECT_EQ(csc.nnz(), 3u);
  EXPECT_DOUBLE_EQ(csc.at(2, 0), 3.0);
}

TEST(Coo, RoundTripThroughCsc) {
  const auto csc = random_matrix(64, 16, 200, 5);
  auto coo = CooMatrix<>::from_csc(csc);
  coo.compress();
  EXPECT_TRUE(csc == coo.to_csc());
}

TEST(Coo, EmptyMatrixConverts) {
  CooMatrix<> m(4, 4);
  const auto csc = m.to_csc();
  EXPECT_EQ(csc.nnz(), 0u);
  EXPECT_EQ(csc.cols(), 4);
}

TEST(Csr, ConversionPreservesEntries) {
  const auto csc = from_triplets(4, 3, {{0, 0, 1.0}, {3, 0, 2.0},
                                        {1, 1, 3.0}, {3, 2, 4.0}});
  const auto csr = csc_to_csr(csc);
  EXPECT_EQ(csr.nnz(), 4u);
  EXPECT_EQ(csr.rows(), 4);
  EXPECT_EQ(csr.cols(), 3);
  // Row 3 holds two entries with ascending column indices.
  const auto rp = csr.row_ptr();
  EXPECT_EQ(rp[4] - rp[3], 2);
  const auto back = csr_to_csc(csr);
  EXPECT_TRUE(back == csc);
}

TEST(Csr, RoundTripOnRandomMatrix) {
  const auto csc = random_matrix(128, 32, 512, 17);
  EXPECT_TRUE(csr_to_csc(csc_to_csr(csc)) == csc);
}

TEST(Csr, RejectsMalformedArrays) {
  EXPECT_THROW((spkadd::CsrMatrix<>(2, 2, {0, 1}, {0}, {1.0, 2.0})),
               std::invalid_argument);
  EXPECT_THROW((spkadd::CsrMatrix<>(2, 2, {0, 1}, {0, 1}, {1.0, 2.0})),
               std::invalid_argument);
}

TEST(Transpose, DoubleTransposeIsIdentity) {
  const auto m = random_matrix(64, 48, 300, 23);
  EXPECT_TRUE(transpose(transpose(m)) == m);
}

TEST(Transpose, SwapsCoordinates) {
  const auto m = from_triplets(3, 5, {{2, 4, 7.0}, {0, 1, 3.0}});
  const auto t = transpose(m);
  EXPECT_EQ(t.rows(), 5);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_DOUBLE_EQ(t.at(4, 2), 7.0);
  EXPECT_DOUBLE_EQ(t.at(1, 0), 3.0);
}

TEST(Transpose, EmptyMatrix) {
  const CscMatrix<> m(3, 2);
  const auto t = transpose(m);
  EXPECT_EQ(t.rows(), 2);
  EXPECT_EQ(t.cols(), 3);
  EXPECT_EQ(t.nnz(), 0u);
}

}  // namespace
