// Cache model unit tests + the Table V property: sliding hash suffers fewer
// simulated LL misses than plain hash once tables outgrow the cache budget.
// Plus the CacheHierarchy layer: inclusion (an inner hit never counts an
// outer access), per-level stats accounting, and the single-level ==
// CacheModel equivalence the Table V compatibility path relies on.
#include <gtest/gtest.h>

#include <random>

#include "cachesim/cache_hierarchy.hpp"
#include "cachesim/cache_model.hpp"
#include "cachesim/traced_spkadd.hpp"
#include "gen/workload.hpp"
#include "test_helpers.hpp"

namespace {

using namespace spkadd::cachesim;
using spkadd::gen::Pattern;
using spkadd::gen::WorkloadSpec;

using Csc = spkadd::testing::Csc;

TEST(CacheModel, ColdMissesThenHits) {
  CacheModel cache(CacheConfig{1 << 12, 4, 64});
  EXPECT_FALSE(cache.access(0));       // cold miss
  EXPECT_TRUE(cache.access(0));        // hit
  EXPECT_TRUE(cache.access(63));       // same line
  EXPECT_FALSE(cache.access(64));      // next line
  EXPECT_EQ(cache.stats().accesses, 4u);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_DOUBLE_EQ(cache.stats().miss_rate(), 0.5);
}

TEST(CacheModel, LruEvictsOldest) {
  // 1 set x 2 ways x 64B lines = 128B cache: set-conflicting lines evict LRU.
  CacheModel cache(CacheConfig{128, 2, 64});
  ASSERT_EQ(cache.sets(), 1u);
  cache.access(0 * 64);
  cache.access(1 * 64);
  EXPECT_TRUE(cache.access(0 * 64));   // refresh line 0
  cache.access(2 * 64);                // evicts line 1 (LRU)
  EXPECT_TRUE(cache.access(0 * 64));
  EXPECT_FALSE(cache.access(1 * 64));  // was evicted
}

TEST(CacheModel, AssociativityIsolatesSets) {
  // 2 sets: even lines -> set 0, odd lines -> set 1.
  CacheModel cache(CacheConfig{256, 2, 64});
  ASSERT_EQ(cache.sets(), 2u);
  cache.access(0 * 64);
  cache.access(2 * 64);
  cache.access(1 * 64);  // different set, no interference
  EXPECT_TRUE(cache.access(0 * 64));
  EXPECT_TRUE(cache.access(2 * 64));
}

TEST(CacheModel, WorkingSetLargerThanCacheThrashes) {
  CacheModel cache(CacheConfig{1 << 10, 4, 64});  // 16 lines
  for (int pass = 0; pass < 3; ++pass)
    for (std::uint64_t line = 0; line < 64; ++line) cache.access(line * 64);
  // Cyclic sweep over 4x capacity with LRU: every access misses.
  EXPECT_EQ(cache.stats().misses, cache.stats().accesses);
}

TEST(CacheModel, AccessRangeTouchesEveryLine) {
  CacheModel cache(CacheConfig{1 << 12, 4, 64});
  cache.access_range(10, 200);  // spans lines 0..3
  EXPECT_EQ(cache.stats().accesses, 4u);
  cache.access_range(0, 0);  // empty range is a no-op
  EXPECT_EQ(cache.stats().accesses, 4u);
}

TEST(CacheModel, RejectsBadConfig) {
  EXPECT_THROW(CacheModel(CacheConfig{1 << 12, 4, 63}), std::invalid_argument);
  EXPECT_THROW(CacheModel(CacheConfig{1 << 12, 0, 64}), std::invalid_argument);
}

TEST(CacheModel, ResetStatsKeepsContents) {
  CacheModel cache(CacheConfig{1 << 12, 4, 64});
  cache.access(0);
  cache.reset_stats();
  EXPECT_EQ(cache.stats().accesses, 0u);
  EXPECT_TRUE(cache.access(0));  // still cached
}

TEST(CacheModel, CountsEvictionsAndHits) {
  // 1 set x 2 ways: the third distinct line evicts; cold fills do not count.
  CacheModel cache(CacheConfig{128, 2, 64});
  cache.access(0 * 64);
  cache.access(1 * 64);
  EXPECT_EQ(cache.stats().evictions, 0u);  // cold fills, no victim
  cache.access(2 * 64);
  EXPECT_EQ(cache.stats().evictions, 1u);
  cache.access(2 * 64);  // hit
  EXPECT_EQ(cache.stats().hits(), 1u);
  EXPECT_EQ(cache.stats().accesses, cache.stats().hits() +
                                        cache.stats().misses);
}

// ------------------------------------------------------------- hierarchy

HierarchySpec two_level() {
  HierarchySpec spec;
  spec.levels.push_back(LevelSpec{"L1", 128, 2, 64, false, 12.0});
  spec.levels.push_back(LevelSpec{"LLC", 1 << 12, 4, 64, true, 200.0});
  return spec;
}

TEST(CacheHierarchy, InnerHitNeverCountsOuterAccess) {
  CacheHierarchy cache(two_level());
  EXPECT_FALSE(cache.access(0));  // cold: misses both, fills both
  EXPECT_EQ(cache.level_stats(1).accesses, 1u);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(cache.access(0));
  // All five were L1 hits; the LLC never saw them (inclusion property).
  EXPECT_EQ(cache.level_stats(0).hits(), 5u);
  EXPECT_EQ(cache.level_stats(1).accesses, 1u);
}

TEST(CacheHierarchy, OuterLevelSeesExactlyInnerMisses) {
  CacheHierarchy cache(two_level());
  std::mt19937_64 rng(11);
  for (int i = 0; i < 2000; ++i)
    cache.access((rng() % 64) * 64);  // 64-line working set >> 2-line L1
  EXPECT_EQ(cache.level_stats(1).accesses, cache.level_stats(0).misses);
  EXPECT_GT(cache.level_stats(0).hits(), 0u);
  EXPECT_GT(cache.level_stats(1).hits(), 0u);  // L1-evicted lines re-hit LLC
}

TEST(CacheHierarchy, InclusiveFillRehitsOuterAfterInnerEviction) {
  CacheHierarchy cache(two_level());
  cache.access(0 * 64);
  cache.access(1 * 64);
  cache.access(2 * 64);  // evicts line 0 from the 2-way L1; LLC keeps it
  EXPECT_TRUE(cache.access(0 * 64));  // L1 miss, LLC hit
  EXPECT_EQ(cache.level_stats(1).hits(), 1u);
}

TEST(CacheHierarchy, SingleLevelReproducesCacheModelExactly) {
  const CacheConfig cfg{1 << 14, 8, 64};
  CacheModel flat(cfg);
  CacheHierarchy single(HierarchySpec::single(cfg));
  std::mt19937_64 rng(42);
  for (int i = 0; i < 20000; ++i) {
    const std::uint64_t addr = rng() % (1 << 18);
    EXPECT_EQ(flat.access(addr), single.access(addr));
  }
  EXPECT_EQ(flat.stats().accesses, single.level_stats(0).accesses);
  EXPECT_EQ(flat.stats().misses, single.level_stats(0).misses);
  EXPECT_EQ(flat.stats().evictions, single.level_stats(0).evictions);
}

TEST(CacheHierarchy, WeightedMissCostSumsLevels) {
  CacheHierarchy cache(two_level());
  std::mt19937_64 rng(3);
  for (int i = 0; i < 500; ++i) cache.access((rng() % 256) * 64);
  const double expect =
      static_cast<double>(cache.level_stats(0).misses) * 12.0 +
      static_cast<double>(cache.level_stats(1).misses) * 200.0;
  EXPECT_DOUBLE_EQ(cache.weighted_miss_cost(), expect);
}

TEST(HierarchySpec, ValidatesShapeAndOrder) {
  HierarchySpec empty;
  EXPECT_THROW(empty.validate(), std::invalid_argument);
  HierarchySpec shrinking = two_level();
  shrinking.levels[1].bytes = 64;  // outer smaller than inner
  EXPECT_THROW(shrinking.validate(), std::invalid_argument);
  HierarchySpec zero = two_level();
  zero.levels[0].ways = 0;
  EXPECT_THROW(zero.validate(), std::invalid_argument);
}

TEST(HierarchySpec, FromCliSpecRoundTripsAndSharesLast) {
  const auto spec =
      HierarchySpec::from_cli_spec("L1:32K:8,L2:1M:16,LLC:8M:16");
  ASSERT_EQ(spec.levels.size(), 3u);
  EXPECT_FALSE(spec.levels[0].shared);
  EXPECT_FALSE(spec.levels[1].shared);
  EXPECT_TRUE(spec.levels[2].shared);
  EXPECT_EQ(spec.levels[2].bytes, 8ull << 20);
  EXPECT_GT(spec.levels[0].miss_penalty, 0.0);
  EXPECT_EQ(spec.to_string(), "L1:32K:8,L2:1M:16,LLC:8M:16");
  EXPECT_THROW(HierarchySpec::from_cli_spec("LLC:8M:16,L1:32K:8"),
               std::invalid_argument);
}

TEST(HierarchySpec, DetectedHasSharedOutermostLevel) {
  const auto spec = HierarchySpec::detected();
  ASSERT_GE(spec.levels.size(), 1u);
  EXPECT_TRUE(spec.levels.back().shared);
  EXPECT_NO_THROW(spec.validate());
}

// ---------------------------------------------------------------- traces
std::vector<Csc> workload(Pattern p, int k, int d) {
  WorkloadSpec spec;
  spec.pattern = p;
  spec.rows = 1 << 12;
  spec.cols = 8;
  spec.avg_nnz_per_col = d;
  spec.k = k;
  spec.seed = 7;
  return spkadd::gen::make_workload(spec);
}

TEST(TracedSpkadd, SlidingNeverWorseWhenTablesOverflow) {
  // Dense-enough columns that per-thread tables overflow the modeled share:
  // the heart of Table V cases (b)/(c).
  const auto inputs = workload(Pattern::ER, 16, 512);
  TraceConfig cfg;
  cfg.cache = CacheConfig{1 << 16, 16, 64};  // 64KB LLC model
  cfg.threads = 4;                           // 16KB per-thread share
  cfg.sliding = false;
  const auto plain = trace_hash_spkadd(std::span<const Csc>(inputs), cfg);
  cfg.sliding = true;
  const auto sliding = trace_hash_spkadd(std::span<const Csc>(inputs), cfg);
  EXPECT_GT(plain.total_accesses(), 0u);
  EXPECT_LT(sliding.total_misses(), plain.total_misses());
}

TEST(TracedSpkadd, NoBenefitWhenTablesFit) {
  // Table V cases (a)/(d): small tables => sliding == plain (same trace).
  const auto inputs = workload(Pattern::ER, 4, 4);
  TraceConfig cfg;
  cfg.cache = CacheConfig{32u << 20, 16, 64};
  cfg.threads = 2;
  cfg.sliding = false;
  const auto plain = trace_hash_spkadd(std::span<const Csc>(inputs), cfg);
  cfg.sliding = true;
  const auto sliding = trace_hash_spkadd(std::span<const Csc>(inputs), cfg);
  EXPECT_EQ(plain.total_misses(), sliding.total_misses());
}

TEST(TracedSpkadd, PhasesBothCounted) {
  const auto inputs = workload(Pattern::RMAT, 8, 32);
  TraceConfig cfg;
  cfg.cache = CacheConfig{1 << 20, 16, 64};
  cfg.threads = 2;
  const auto r = trace_hash_spkadd(std::span<const Csc>(inputs), cfg);
  EXPECT_GT(r.symbolic.accesses, 0u);
  EXPECT_GT(r.numeric.accesses, 0u);
  EXPECT_EQ(r.total_accesses(), r.symbolic.accesses + r.numeric.accesses);
}

TEST(TracedSpkadd, EmptyInputsAreHarmless) {
  std::vector<Csc> empty;
  const auto r = trace_hash_spkadd(std::span<const Csc>(empty), TraceConfig{});
  EXPECT_EQ(r.total_accesses(), 0u);
  std::vector<Csc> zeros{Csc(16, 4), Csc(16, 4)};
  const auto z = trace_hash_spkadd(std::span<const Csc>(zeros), TraceConfig{});
  EXPECT_EQ(z.total_misses(), 0u);
}

TEST(TracedSpkadd, DeterministicTrace) {
  const auto inputs = workload(Pattern::ER, 4, 16);
  TraceConfig cfg;
  cfg.cache = CacheConfig{1 << 18, 8, 64};
  const auto a = trace_hash_spkadd(std::span<const Csc>(inputs), cfg);
  const auto b = trace_hash_spkadd(std::span<const Csc>(inputs), cfg);
  EXPECT_EQ(a.total_misses(), b.total_misses());
  EXPECT_EQ(a.total_accesses(), b.total_accesses());
}

TEST(TracedSpkadd, MaxTableEntriesOverrideControlsPartitioning) {
  const auto inputs = workload(Pattern::ER, 8, 128);
  TraceConfig cfg;
  cfg.cache = CacheConfig{1 << 20, 16, 64};
  cfg.threads = 1;
  cfg.sliding = true;
  cfg.max_table_entries = 64;  // tiny tables -> many parts -> more streaming
  const auto small = trace_hash_spkadd(std::span<const Csc>(inputs), cfg);
  cfg.max_table_entries = 1 << 20;  // one part
  const auto large = trace_hash_spkadd(std::span<const Csc>(inputs), cfg);
  EXPECT_NE(small.total_accesses(), large.total_accesses());
}

// ------------------------------------------------ hierarchy kernel traces

TEST(TracedSpkadd, KernelTraceSingleLevelMatchesLegacyHashTrace) {
  // The compatibility contract: trace_hash_spkadd is trace_kernel_spkadd
  // over a single-level hierarchy, miss for miss.
  const auto inputs = workload(Pattern::RMAT, 8, 64);
  TraceConfig legacy;
  legacy.cache = CacheConfig{1 << 18, 8, 64};
  legacy.threads = 4;
  KernelTraceConfig kcfg;
  kcfg.hierarchy = HierarchySpec::single(legacy.cache);
  kcfg.threads = 4;
  for (const bool sliding : {false, true}) {
    legacy.sliding = sliding;
    kcfg.kernel = sliding ? spkadd::core::ColumnKernel::SlidingHash
                          : spkadd::core::ColumnKernel::Hash;
    const auto old_r = trace_hash_spkadd(std::span<const Csc>(inputs), legacy);
    const auto new_r = trace_kernel_spkadd(std::span<const Csc>(inputs), kcfg);
    ASSERT_EQ(new_r.symbolic.size(), 1u);
    EXPECT_EQ(new_r.symbolic[0].misses, old_r.symbolic.misses);
    EXPECT_EQ(new_r.symbolic[0].accesses, old_r.symbolic.accesses);
    EXPECT_EQ(new_r.numeric[0].misses, old_r.numeric.misses);
    EXPECT_EQ(new_r.numeric[0].accesses, old_r.numeric.accesses);
  }
}

TEST(TracedSpkadd, AllFourKernelsTraceThroughHierarchy) {
  const auto inputs = workload(Pattern::ER, 8, 32);
  KernelTraceConfig cfg;
  cfg.hierarchy = HierarchySpec::from_cli_spec("L1:4K:4,L2:64K:8,LLC:1M:16");
  cfg.threads = 4;
  for (const auto kernel :
       {spkadd::core::ColumnKernel::Heap, spkadd::core::ColumnKernel::Spa,
        spkadd::core::ColumnKernel::Hash,
        spkadd::core::ColumnKernel::SlidingHash}) {
    cfg.kernel = kernel;
    const auto r = trace_kernel_spkadd(std::span<const Csc>(inputs), cfg);
    ASSERT_EQ(r.level_names.size(), 3u)
        << spkadd::core::column_kernel_name(kernel);
    EXPECT_EQ(r.level_names[0], "L1");
    EXPECT_GT(r.total_accesses(), 0u)
        << spkadd::core::column_kernel_name(kernel);
    EXPECT_GT(r.total_misses(), 0u) << spkadd::core::column_kernel_name(kernel);
    EXPECT_GT(r.weighted_miss_cost, 0.0)
        << spkadd::core::column_kernel_name(kernel);
    // Inclusion holds inside the trace too: deeper levels only see the
    // upstream misses.
    for (std::size_t phase = 0; phase < 2; ++phase) {
      const auto& stats = phase == 0 ? r.symbolic : r.numeric;
      for (std::size_t i = 1; i < stats.size(); ++i)
        EXPECT_EQ(stats[i].accesses, stats[i - 1].misses)
            << spkadd::core::column_kernel_name(kernel);
    }
    // Deterministic replay.
    const auto again = trace_kernel_spkadd(std::span<const Csc>(inputs), cfg);
    EXPECT_EQ(r.total_misses(), again.total_misses());
    EXPECT_DOUBLE_EQ(r.weighted_miss_cost, again.weighted_miss_cost);
  }
}

TEST(TracedSpkadd, HeapBeatsHashOnTinySortedColumns) {
  // The Fig. 2 heap corner, now measurable: k=4, d=2 columns have no table
  // to initialize, so the heap trace touches far less memory.
  const auto inputs = workload(Pattern::ER, 4, 2);
  KernelTraceConfig cfg;
  cfg.hierarchy = HierarchySpec::from_cli_spec("L1:32K:8,LLC:1M:16");
  cfg.threads = 4;
  cfg.kernel = spkadd::core::ColumnKernel::Heap;
  const auto heap = trace_kernel_spkadd(std::span<const Csc>(inputs), cfg);
  cfg.kernel = spkadd::core::ColumnKernel::Hash;
  const auto hash = trace_kernel_spkadd(std::span<const Csc>(inputs), cfg);
  EXPECT_LT(heap.weighted_miss_cost, hash.weighted_miss_cost);
}

}  // namespace
