// Cache model unit tests + the Table V property: sliding hash suffers fewer
// simulated LL misses than plain hash once tables outgrow the cache budget.
#include <gtest/gtest.h>

#include "cachesim/cache_model.hpp"
#include "cachesim/traced_spkadd.hpp"
#include "gen/workload.hpp"
#include "test_helpers.hpp"

namespace {

using namespace spkadd::cachesim;
using spkadd::gen::Pattern;
using spkadd::gen::WorkloadSpec;

using Csc = spkadd::testing::Csc;

TEST(CacheModel, ColdMissesThenHits) {
  CacheModel cache(CacheConfig{1 << 12, 4, 64});
  EXPECT_FALSE(cache.access(0));       // cold miss
  EXPECT_TRUE(cache.access(0));        // hit
  EXPECT_TRUE(cache.access(63));       // same line
  EXPECT_FALSE(cache.access(64));      // next line
  EXPECT_EQ(cache.stats().accesses, 4u);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_DOUBLE_EQ(cache.stats().miss_rate(), 0.5);
}

TEST(CacheModel, LruEvictsOldest) {
  // 1 set x 2 ways x 64B lines = 128B cache: set-conflicting lines evict LRU.
  CacheModel cache(CacheConfig{128, 2, 64});
  ASSERT_EQ(cache.sets(), 1u);
  cache.access(0 * 64);
  cache.access(1 * 64);
  EXPECT_TRUE(cache.access(0 * 64));   // refresh line 0
  cache.access(2 * 64);                // evicts line 1 (LRU)
  EXPECT_TRUE(cache.access(0 * 64));
  EXPECT_FALSE(cache.access(1 * 64));  // was evicted
}

TEST(CacheModel, AssociativityIsolatesSets) {
  // 2 sets: even lines -> set 0, odd lines -> set 1.
  CacheModel cache(CacheConfig{256, 2, 64});
  ASSERT_EQ(cache.sets(), 2u);
  cache.access(0 * 64);
  cache.access(2 * 64);
  cache.access(1 * 64);  // different set, no interference
  EXPECT_TRUE(cache.access(0 * 64));
  EXPECT_TRUE(cache.access(2 * 64));
}

TEST(CacheModel, WorkingSetLargerThanCacheThrashes) {
  CacheModel cache(CacheConfig{1 << 10, 4, 64});  // 16 lines
  for (int pass = 0; pass < 3; ++pass)
    for (std::uint64_t line = 0; line < 64; ++line) cache.access(line * 64);
  // Cyclic sweep over 4x capacity with LRU: every access misses.
  EXPECT_EQ(cache.stats().misses, cache.stats().accesses);
}

TEST(CacheModel, AccessRangeTouchesEveryLine) {
  CacheModel cache(CacheConfig{1 << 12, 4, 64});
  cache.access_range(10, 200);  // spans lines 0..3
  EXPECT_EQ(cache.stats().accesses, 4u);
  cache.access_range(0, 0);  // empty range is a no-op
  EXPECT_EQ(cache.stats().accesses, 4u);
}

TEST(CacheModel, RejectsBadConfig) {
  EXPECT_THROW(CacheModel(CacheConfig{1 << 12, 4, 63}), std::invalid_argument);
  EXPECT_THROW(CacheModel(CacheConfig{1 << 12, 0, 64}), std::invalid_argument);
}

TEST(CacheModel, ResetStatsKeepsContents) {
  CacheModel cache(CacheConfig{1 << 12, 4, 64});
  cache.access(0);
  cache.reset_stats();
  EXPECT_EQ(cache.stats().accesses, 0u);
  EXPECT_TRUE(cache.access(0));  // still cached
}

// ---------------------------------------------------------------- traces
std::vector<Csc> workload(Pattern p, int k, int d) {
  WorkloadSpec spec;
  spec.pattern = p;
  spec.rows = 1 << 12;
  spec.cols = 8;
  spec.avg_nnz_per_col = d;
  spec.k = k;
  spec.seed = 7;
  return spkadd::gen::make_workload(spec);
}

TEST(TracedSpkadd, SlidingNeverWorseWhenTablesOverflow) {
  // Dense-enough columns that per-thread tables overflow the modeled share:
  // the heart of Table V cases (b)/(c).
  const auto inputs = workload(Pattern::ER, 16, 512);
  TraceConfig cfg;
  cfg.cache = CacheConfig{1 << 16, 16, 64};  // 64KB LLC model
  cfg.threads = 4;                           // 16KB per-thread share
  cfg.sliding = false;
  const auto plain = trace_hash_spkadd(std::span<const Csc>(inputs), cfg);
  cfg.sliding = true;
  const auto sliding = trace_hash_spkadd(std::span<const Csc>(inputs), cfg);
  EXPECT_GT(plain.total_accesses(), 0u);
  EXPECT_LT(sliding.total_misses(), plain.total_misses());
}

TEST(TracedSpkadd, NoBenefitWhenTablesFit) {
  // Table V cases (a)/(d): small tables => sliding == plain (same trace).
  const auto inputs = workload(Pattern::ER, 4, 4);
  TraceConfig cfg;
  cfg.cache = CacheConfig{32u << 20, 16, 64};
  cfg.threads = 2;
  cfg.sliding = false;
  const auto plain = trace_hash_spkadd(std::span<const Csc>(inputs), cfg);
  cfg.sliding = true;
  const auto sliding = trace_hash_spkadd(std::span<const Csc>(inputs), cfg);
  EXPECT_EQ(plain.total_misses(), sliding.total_misses());
}

TEST(TracedSpkadd, PhasesBothCounted) {
  const auto inputs = workload(Pattern::RMAT, 8, 32);
  TraceConfig cfg;
  cfg.cache = CacheConfig{1 << 20, 16, 64};
  cfg.threads = 2;
  const auto r = trace_hash_spkadd(std::span<const Csc>(inputs), cfg);
  EXPECT_GT(r.symbolic.accesses, 0u);
  EXPECT_GT(r.numeric.accesses, 0u);
  EXPECT_EQ(r.total_accesses(), r.symbolic.accesses + r.numeric.accesses);
}

TEST(TracedSpkadd, EmptyInputsAreHarmless) {
  std::vector<Csc> empty;
  const auto r = trace_hash_spkadd(std::span<const Csc>(empty), TraceConfig{});
  EXPECT_EQ(r.total_accesses(), 0u);
  std::vector<Csc> zeros{Csc(16, 4), Csc(16, 4)};
  const auto z = trace_hash_spkadd(std::span<const Csc>(zeros), TraceConfig{});
  EXPECT_EQ(z.total_misses(), 0u);
}

TEST(TracedSpkadd, DeterministicTrace) {
  const auto inputs = workload(Pattern::ER, 4, 16);
  TraceConfig cfg;
  cfg.cache = CacheConfig{1 << 18, 8, 64};
  const auto a = trace_hash_spkadd(std::span<const Csc>(inputs), cfg);
  const auto b = trace_hash_spkadd(std::span<const Csc>(inputs), cfg);
  EXPECT_EQ(a.total_misses(), b.total_misses());
  EXPECT_EQ(a.total_accesses(), b.total_accesses());
}

TEST(TracedSpkadd, MaxTableEntriesOverrideControlsPartitioning) {
  const auto inputs = workload(Pattern::ER, 8, 128);
  TraceConfig cfg;
  cfg.cache = CacheConfig{1 << 20, 16, 64};
  cfg.threads = 1;
  cfg.sliding = true;
  cfg.max_table_entries = 64;  // tiny tables -> many parts -> more streaming
  const auto small = trace_hash_spkadd(std::span<const Csc>(inputs), cfg);
  cfg.max_table_entries = 1 << 20;  // one part
  const auto large = trace_hash_spkadd(std::span<const Csc>(inputs), cfg);
  EXPECT_NE(small.total_accesses(), large.total_accesses());
}

}  // namespace
