// Sparse gradient aggregation (the paper's "sparse allreduce" motivation,
// §I): k workers each hold a top-s sparsified gradient for a weight matrix;
// the server reduces them into one update. With mini-batching each worker's
// contribution is a sparse *matrix*, so the reduction is exactly SpKAdd —
// and because contributions *arrive as a stream*, the server folds them
// through the §V streaming accumulator: each gradient is staged by borrowed
// pointer (zero copies; acc.add(std::move(g)) would take ownership instead)
// and folded into the running update every --batch arrivals.
//
//   ./examples/gradient_aggregation [--workers 32] [--rows 65536]
#include <iostream>
#include <vector>

#include "core/accumulator.hpp"
#include "core/spkadd.hpp"
#include "matrix/coo.hpp"
#include "matrix/validate.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  spkadd::util::CliParser cli("gradient_aggregation",
                              "sparse allreduce-style gradient reduction");
  const auto* workers = cli.add_int("workers", 32, "number of workers (k)");
  const auto* rows = cli.add_int("rows", 1 << 16, "weight matrix rows");
  const auto* cols = cli.add_int("cols", 64, "weight matrix cols");
  const auto* batch =
      cli.add_int("batch", 8, "accumulator batch capacity (folded per round)");
  const auto* density =
      cli.add_double("density", 0.001, "fraction of entries each worker keeps");
  if (!cli.parse(argc, argv)) return 1;

  using Csc = spkadd::CscMatrix<std::int32_t, double>;

  // Each worker sparsifies its dense gradient to the top entries; model the
  // surviving coordinates as uniform random (magnitude-based selection has
  // no structure the reducer can exploit anyway).
  const auto per_worker = static_cast<std::size_t>(
      *density * static_cast<double>(*rows) * static_cast<double>(*cols));
  auto make_gradient = [&](int w) {
    spkadd::util::Xoshiro256 root(2024);
    auto rng = root.split(static_cast<std::uint64_t>(w));
    spkadd::CooMatrix<std::int32_t, double> g(
        static_cast<std::int32_t>(*rows), static_cast<std::int32_t>(*cols));
    g.reserve(per_worker);
    for (std::size_t i = 0; i < per_worker; ++i) {
      const auto r = static_cast<std::int32_t>(
          rng.bounded(static_cast<std::uint64_t>(*rows)));
      const auto c = static_cast<std::int32_t>(
          rng.bounded(static_cast<std::uint64_t>(*cols)));
      g.push(r, c, 2.0 * rng.uniform() - 1.0);  // gradient value in (-1, 1)
    }
    g.compress();
    return g.to_csc();
  };
  std::cout << *workers << " workers, " << per_worker
            << " sparsified entries each\n";

  // Materialize the arrivals up front so both reducers below time the
  // reduction alone, over identical inputs.
  std::vector<Csc> gradients;
  for (int w = 0; w < *workers; ++w) gradients.push_back(make_gradient(w));

  // Stream the reduction: each gradient is staged as a borrowed pointer
  // (zero copies) and folded every --batch arrivals. The aggregated update
  // needs no sorted columns (it is applied element-wise), so the hash
  // reducer can skip its output sort — the same trick the paper's
  // "unsorted hash" SUMMA pipeline uses.
  spkadd::core::Options opts;
  opts.method = spkadd::core::Method::Hash;
  opts.sorted_output = false;
  spkadd::core::Accumulator<> server(
      static_cast<std::int32_t>(*rows), static_cast<std::int32_t>(*cols),
      opts, static_cast<std::size_t>(*batch));
  spkadd::util::WallTimer timer;
  for (const Csc& g : gradients) server.add(g);
  Csc update = server.finalize();
  const double stream_time = timer.seconds();
  std::cout << "peak intermediate footprint: "
            << static_cast<double>(server.stats().peak_intermediate_bytes) /
                   (1024.0 * 1024.0)
            << " MiB over " << server.stats().flushes << " folds\n";

  // Compare with the naive fold (what a framework calling a library
  // pairwise-add k-1 times does) — which needs every gradient at once.
  timer.reset();
  opts.method = spkadd::core::Method::ReferenceIncremental;
  opts.sorted_output = true;
  const Csc update2 = spkadd::core::spkadd(gradients, opts);
  const double naive_time = timer.seconds();

  std::cout << "aggregated update: " << update.nnz() << " nonzeros ("
            << static_cast<double>(update.nnz()) /
                   (static_cast<double>(*rows) * static_cast<double>(*cols)) *
                   100
            << "% dense)\n";
  std::cout << "streamed hash SpKAdd:   " << stream_time << " s\n";
  std::cout << "incremental 2-way fold: " << naive_time << " s  ("
            << naive_time / stream_time << "x slower)\n";

  // Sanity: both reductions hold the same values.
  auto canonical = update;
  canonical.sort_columns();
  const bool agree = spkadd::approx_equal(canonical, update2, 1e-9);
  std::cout << "reductions agree: " << (agree ? "yes" : "NO") << "\n";
  return agree ? 0 : 1;
}
