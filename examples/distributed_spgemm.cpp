// Distributed SpGEMM demo (paper Fig. 5/6): multiply two sparse matrices
// with the simulated sparse SUMMA schedule and compare the three SpKAdd
// pipelines — the exact integration the paper ships in CombBLAS.
//
//   ./examples/distributed_spgemm [--scale 11] [--grid 4]
#include <iostream>

#include "gen/rmat.hpp"
#include "matrix/validate.hpp"
#include "spgemm/local_spgemm.hpp"
#include "summa/sparse_summa.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  spkadd::util::CliParser cli("distributed_spgemm",
                              "sparse SUMMA with pluggable SpKAdd reducers");
  const auto* scale = cli.add_int("scale", 11, "log2 matrix dimension");
  const auto* degree = cli.add_int("degree", 8, "avg nonzeros per column");
  const auto* grid = cli.add_int("grid", 4, "process grid dimension");
  if (!cli.parse(argc, argv)) return 1;

  // A protein-similarity-shaped input (Graph500 R-MAT), squared — the
  // Markov-cluster expansion step that motivated the paper's Cori runs.
  const auto a = spkadd::gen::rmat_csc(spkadd::gen::RmatParams::g500(
      static_cast<int>(*scale), static_cast<int>(*scale),
      (1ull << *scale) * static_cast<std::uint64_t>(*degree), 99));
  std::cout << "A: " << a.rows() << "x" << a.cols() << ", nnz=" << a.nnz()
            << "; computing A*A on a " << *grid << "x" << *grid
            << " simulated process grid\n\n";

  const auto direct = spkadd::spgemm::multiply(a, a);

  struct Pipeline {
    const char* name;
    spkadd::summa::SummaConfig cfg;
  };
  const Pipeline pipelines[] = {
      {"Heap (CombBLAS legacy)",
       spkadd::summa::heap_pipeline(static_cast<int>(*grid))},
      {"Sorted Hash", spkadd::summa::sorted_hash_pipeline(static_cast<int>(*grid))},
      {"Unsorted Hash",
       spkadd::summa::unsorted_hash_pipeline(static_cast<int>(*grid))},
  };
  for (const auto& p : pipelines) {
    const auto result = spkadd::summa::multiply(a, a, p.cfg);
    const bool ok = spkadd::approx_equal(direct, result.c, 1e-9);
    std::cout << p.name << ":\n"
              << "  local multiply " << result.multiply_seconds << " s, "
              << "SpKAdd " << result.spkadd_seconds << " s, "
              << "intermediate cf " << result.compression_factor << "\n"
              << "  matches direct product: " << (ok ? "yes" : "NO") << "\n";
    if (!ok) return 1;
  }
  std::cout << "\nThe \"Unsorted Hash\" pipeline works because hash SpKAdd "
               "accepts unsorted inputs (paper Table I), letting the local "
               "multiplies skip their output sort entirely.\n";
  return 0;
}
