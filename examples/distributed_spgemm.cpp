// Distributed SpGEMM demo (paper Fig. 5/6): multiply two sparse matrices
// with the simulated sparse SUMMA schedule and compare the three SpKAdd
// pipelines — the exact integration the paper ships in CombBLAS.
//
// Each pipeline runs the default *streaming* schedule (stage products fold
// into a persistent accumulator, at most --window live per process) and is
// checked bit for bit against the buffered baseline it replaced, plus the
// direct in-memory product.
//
//   ./examples/distributed_spgemm [--scale 11] [--grid 4] [--window 2]
#include <iostream>

#include "gen/rmat.hpp"
#include "matrix/validate.hpp"
#include "spgemm/local_spgemm.hpp"
#include "summa/sparse_summa.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  spkadd::util::CliParser cli("distributed_spgemm",
                              "sparse SUMMA with pluggable SpKAdd reducers");
  const auto* scale = cli.add_int("scale", 11, "log2 matrix dimension");
  const auto* degree = cli.add_int("degree", 8, "avg nonzeros per column");
  const auto* grid = cli.add_int("grid", 4, "process grid dimension");
  const auto* window =
      cli.add_int("window", 2, "streaming stage-product window per process");
  if (!cli.parse(argc, argv)) return 1;

  // A protein-similarity-shaped input (Graph500 R-MAT), squared — the
  // Markov-cluster expansion step that motivated the paper's Cori runs.
  const auto a = spkadd::gen::rmat_csc(spkadd::gen::RmatParams::g500(
      static_cast<int>(*scale), static_cast<int>(*scale),
      (1ull << *scale) * static_cast<std::uint64_t>(*degree), 99));
  std::cout << "A: " << a.rows() << "x" << a.cols() << ", nnz=" << a.nnz()
            << "; computing A*A on a " << *grid << "x" << *grid
            << " simulated process grid, streaming window " << *window
            << "\n\n";

  const auto direct = spkadd::spgemm::multiply(a, a);

  struct Pipeline {
    const char* name;
    spkadd::summa::SummaConfig cfg;
  };
  const Pipeline pipelines[] = {
      {"Heap (CombBLAS legacy)",
       spkadd::summa::heap_pipeline(static_cast<int>(*grid))},
      {"Sorted Hash",
       spkadd::summa::sorted_hash_pipeline(static_cast<int>(*grid))},
      {"Unsorted Hash",
       spkadd::summa::unsorted_hash_pipeline(static_cast<int>(*grid))},
  };
  for (const auto& p : pipelines) {
    spkadd::summa::SummaConfig streaming_cfg = p.cfg;
    streaming_cfg.streaming = true;
    streaming_cfg.stream_window = static_cast<int>(*window);
    spkadd::summa::SummaConfig buffered_cfg = p.cfg;
    buffered_cfg.streaming = false;

    const auto streaming = spkadd::summa::multiply(a, a, streaming_cfg);
    const auto buffered = spkadd::summa::multiply(a, a, buffered_cfg);
    const bool ok = spkadd::approx_equal(direct, streaming.c, 1e-9);
    const bool bit_ok = streaming.c == buffered.c;
    const double footprint_cut =
        streaming.peak_intermediate_nnz == 0
            ? 1.0
            : static_cast<double>(buffered.peak_intermediate_nnz) /
                  static_cast<double>(streaming.peak_intermediate_nnz);
    std::cout << p.name << ":\n"
              << "  streaming: local multiply " << streaming.multiply_seconds
              << " s, SpKAdd " << streaming.spkadd_seconds
              << " s, peak live intermediates "
              << streaming.peak_intermediate_nnz << " nnz\n"
              << "  buffered:  local multiply " << buffered.multiply_seconds
              << " s, SpKAdd " << buffered.spkadd_seconds
              << " s, peak live intermediates "
              << buffered.peak_intermediate_nnz << " nnz ("
              << footprint_cut << "x the streaming footprint)\n"
              << "  intermediate cf " << streaming.compression_factor << "\n"
              << "  matches direct product: " << (ok ? "yes" : "NO") << "\n"
              << "  streaming == buffered bit for bit: "
              << (bit_ok ? "yes" : "NO") << "\n";
    if (!ok || !bit_ok) return 1;
  }
  std::cout << "\nThe \"Unsorted Hash\" pipeline works because hash SpKAdd "
               "accepts unsorted inputs (paper Table I), letting the local "
               "multiplies skip their output sort entirely. The streaming "
               "schedule is the paper's §V batching applied to SUMMA: peak "
               "live intermediates per process drop from g stage products "
               "to at most the window.\n";
  return 0;
}
