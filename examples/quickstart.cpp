// Quickstart: build a few sparse matrices, add them with spkadd(), inspect
// the result, and see how method/options selection works.
//
//   ./examples/quickstart
#include <iostream>
#include <tuple>
#include <vector>

#include "core/spkadd.hpp"
#include "matrix/coo.hpp"
#include "matrix/validate.hpp"

int main() {
  using Csc = spkadd::CscMatrix<std::int32_t, double>;

  // 1. Build three 8x4 sparse matrices from triplets (COO -> CSC).
  auto build = [](std::initializer_list<std::tuple<int, int, double>> t) {
    spkadd::CooMatrix<std::int32_t, double> coo(8, 4);
    for (const auto& [r, c, v] : t)
      coo.push(static_cast<std::int32_t>(r), static_cast<std::int32_t>(c), v);
    coo.compress();
    return coo.to_csc();
  };
  std::vector<Csc> inputs{
      build({{1, 0, 3.0}, {3, 0, 2.0}, {6, 0, 1.0}, {0, 2, 1.0}}),
      build({{0, 0, 2.0}, {3, 0, 1.0}, {5, 0, 3.0}, {7, 3, 2.0}}),
      build({{5, 0, 2.0}, {7, 0, 1.0}, {1, 1, 4.0}}),
  };

  // 2. Add the whole collection: B = A1 + A2 + A3. Method::Auto picks
  //    hash or sliding hash from the cache budget (Fig. 2's policy).
  const Csc sum = spkadd::core::spkadd(inputs);

  std::cout << "B = A1 + A2 + A3 is " << sum.rows() << "x" << sum.cols()
            << " with " << sum.nnz() << " stored entries\n";
  std::cout << "column 0 of B: ";
  const auto col = sum.column(0);
  for (std::size_t i = 0; i < col.nnz(); ++i)
    std::cout << "(" << col.rows[i] << ", " << col.vals[i] << ") ";
  std::cout << "\n";

  // 3. Every method computes the same sum; pick one explicitly if you know
  //    your regime (see DESIGN.md / the paper's Table I).
  bool all_match = true;
  for (const auto method :
       {spkadd::core::Method::Heap, spkadd::core::Method::Spa,
        spkadd::core::Method::Hash, spkadd::core::Method::SlidingHash}) {
    spkadd::core::Options opts;
    opts.method = method;
    const Csc again = spkadd::core::spkadd(inputs, opts);
    const bool match = spkadd::approx_equal(sum, again);
    all_match = all_match && match;
    std::cout << spkadd::core::method_name(method) << ": "
              << (match ? "matches" : "DIFFERS") << "\n";
  }

  // 4. The compression factor says how much the inputs overlapped.
  std::cout << "compression factor = "
            << spkadd::compression_factor(
                   std::span<const Csc>(inputs), sum)
            << " (1.0 = disjoint inputs)\n";
  return all_match ? 0 : 1;
}
