// Sliding-window aggregation over two tenants: timestamped sparse
// updates stream into the windowed service (service/windowed_service),
// which routes each update to the time bucket owning its timestamp —
// one streaming SpKAdd accumulator per bucket — and serves mid-stream
// windowed snapshots that fold only the live buckets. Buckets that age
// out of the ring retire in O(1): they are dropped whole, never
// subtracted from the aggregate.
//
// Two tenants ("metrics", "events") stream concurrently from two
// producer threads across 6 time buckets; the example snapshots both
// tenants mid-stream (full ring and narrower windows) and verifies
// every snapshot bit-identical to a single-threaded reference fold of
// exactly the live updates. Integer-valued updates make double
// addition exact, so any ingest interleaving must reproduce the
// reference bits. Self-checking: exits nonzero on any mismatch.
//
//   ./examples/windowed_aggregation [--rows 4096] [--buckets 6]
#include <cstdint>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/spkadd.hpp"
#include "matrix/coo.hpp"
#include "service/windowed_service.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using Csc = spkadd::CscMatrix<std::int32_t, double>;

namespace {

/// Integer-valued sparse update (exact addition -> exact comparison).
Csc make_update(std::int32_t rows, std::int32_t cols,
                std::uint64_t seed) {
  spkadd::util::Xoshiro256 rng(seed);
  spkadd::CooMatrix<std::int32_t, double> coo(rows, cols);
  coo.reserve(64);
  for (std::size_t i = 0; i < 64; ++i) {
    const auto r = static_cast<std::int32_t>(
        rng.bounded(static_cast<std::uint64_t>(rows)));
    const auto c = static_cast<std::int32_t>(
        rng.bounded(static_cast<std::uint64_t>(cols)));
    coo.push(r, c, static_cast<double>(rng.bounded(9)) - 4.0);
  }
  coo.compress();
  return coo.to_csc();
}

}  // namespace

int main(int argc, char** argv) {
  spkadd::util::CliParser cli(
      "windowed_aggregation",
      "two tenants streaming timestamped updates into sliding windows");
  const auto* rows = cli.add_int("rows", 1 << 12, "update rows");
  const auto* cols = cli.add_int("cols", 32, "update cols");
  const auto* buckets =
      cli.add_int("buckets", 6, "time buckets to stream across");
  const auto* per_bucket =
      cli.add_int("per-bucket", 4, "updates per tenant per bucket");
  if (!cli.parse(argc, argv)) return 1;
  if (*rows < 1 || *cols < 1 || *buckets < 1 || *per_bucket < 1) {
    std::cerr << "windowed_aggregation: all flags must be >= 1\n";
    return 1;
  }

  spkadd::service::WindowedAggService::Config cfg;
  cfg.window.bucket_width = 1000;  // ticks per bucket
  cfg.window.live_buckets = 4;     // ring: only the last 4 buckets live
  cfg.workers = 2;

  const auto B = static_cast<std::size_t>(*buckets);
  const auto U = static_cast<std::size_t>(*per_bucket);
  const std::vector<std::string> tenants = {"metrics", "events"};

  // Pre-generate each tenant's timestamped stream so the reference
  // fold sees exactly the same updates the service ingests.
  // streams[t][b] holds tenant t's updates for time bucket b.
  std::vector<std::vector<std::vector<Csc>>> streams(tenants.size());
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    streams[t].resize(B);
    for (std::size_t b = 0; b < B; ++b)
      for (std::size_t i = 0; i < U; ++i)
        streams[t][b].push_back(make_update(
            static_cast<std::int32_t>(*rows),
            static_cast<std::int32_t>(*cols),
            1000 * t + 10 * b + i + 7));
  }

  // Reference: one-shot SpKAdd over the updates a window should hold.
  const auto reference = [&](std::size_t t, std::size_t lo,
                             std::size_t hi) {
    std::vector<Csc> inputs;
    for (std::size_t b = lo; b <= hi; ++b)
      for (const auto& u : streams[t][b]) inputs.push_back(u);
    return spkadd::core::spkadd(inputs);
  };

  spkadd::service::WindowedAggService svc(cfg);
  int failures = 0;
  const auto check = [&](const char* what, const Csc& got,
                         const Csc& want) {
    const bool ok = got == want;
    std::cout << "  " << what << ": " << got.nnz() << " nnz, "
              << (ok ? "bit-identical to reference" : "MISMATCH")
              << "\n";
    if (!ok) ++failures;
  };

  // Two producer threads stream bucket by bucket; after each bucket
  // the main thread drains and snapshots both tenants MID-STREAM.
  for (std::size_t b = 0; b < B; ++b) {
    std::vector<std::thread> producers;
    for (std::size_t t = 0; t < tenants.size(); ++t)
      producers.emplace_back([&, t] {
        for (std::size_t i = 0; i < U; ++i) {
          const std::uint64_t ts =
              static_cast<std::uint64_t>(b) * cfg.window.bucket_width +
              i;  // anywhere inside bucket b
          svc.submit(tenants[t], ts, Csc(streams[t][b][i]));
        }
      });
    for (auto& p : producers) p.join();
    svc.drain();  // barrier: every submit above is folded

    // Live ring after bucket b: the last live_buckets buckets.
    const std::size_t oldest =
        b + 1 > cfg.window.live_buckets ? b + 1 - cfg.window.live_buckets
                                        : 0;
    std::cout << "bucket " << b << " ingested (live ring: [" << oldest
              << ", " << b << "])\n";
    for (std::size_t t = 0; t < tenants.size(); ++t) {
      const auto full = svc.snapshot(tenants[t], 0);
      check((tenants[t] + " full ring").c_str(), full.sum,
            reference(t, oldest, b));
      // A narrower mid-stream window: just the newest bucket.
      const auto newest = svc.snapshot(tenants[t], 1);
      check((tenants[t] + " newest bucket").c_str(), newest.sum,
            reference(t, b, b));
    }
  }

  // Expired updates: a timestamp older than the live ring is rejected
  // and counted, never folded — retirement already dropped its bucket.
  svc.submit(tenants[0], 0, Csc(streams[0][0][0]));
  svc.drain();
  const auto stats = svc.stats();
  std::uint64_t expired = 0;
  for (const auto& [name, ws] : stats.tenants)
    expired += ws.expired_rejected;
  std::cout << "stale submit after retirement: expired_rejected="
            << expired << "\n";
  if (expired != 1) ++failures;

  std::cout << (failures == 0
                    ? "\nall windowed snapshots bit-identical: ok\n"
                    : "\nFAILED\n");
  return failures == 0 ? 0 : 1;
}
