// Multi-tenant sparse gradient aggregation through the AggService — the
// gradient_aggregation example promoted from a single-shot reduction to
// the long-lived service layer. Three model tenants ("vision", "text",
// "ranker") with different weight-matrix shapes each receive sparsified
// gradients from concurrent workers; the service shards every update by
// row range, folds it through per-shard streaming accumulators, and
// serves consistent epoch snapshots while ingest continues.
//
// Gradient values are quantized to small integers (exact double
// addition), so each tenant's drained snapshot must be BIT-IDENTICAL to
// a one-shot SpKAdd over its gradients no matter how the producer and
// worker threads interleaved — which is what this example checks before
// exiting 0.
//
//   ./examples/aggregation_service [--workers-per-tenant 2] [--rounds 12]
#include <cmath>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "core/spkadd.hpp"
#include "matrix/coo.hpp"
#include "service/agg_service.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

using Csc = spkadd::CscMatrix<std::int32_t, double>;

namespace {

struct TenantSpec {
  std::string name;
  std::int32_t rows;
  std::int32_t cols;
  std::size_t nnz_per_gradient;
};

/// One worker's sparsified gradient: ~nnz random entries whose values
/// are integers in [-4, 4] (top-s magnitude selection has no structure
/// the reducer could exploit, so uniform coordinates model it fine).
Csc make_gradient(const TenantSpec& t, std::uint64_t seed) {
  spkadd::util::Xoshiro256 root(4242);
  auto rng = root.split(seed);
  spkadd::CooMatrix<std::int32_t, double> g(t.rows, t.cols);
  g.reserve(t.nnz_per_gradient);
  for (std::size_t i = 0; i < t.nnz_per_gradient; ++i) {
    const auto r = static_cast<std::int32_t>(
        rng.bounded(static_cast<std::uint64_t>(t.rows)));
    const auto c = static_cast<std::int32_t>(
        rng.bounded(static_cast<std::uint64_t>(t.cols)));
    g.push(r, c, std::round(8.0 * rng.uniform()) - 4.0);
  }
  g.compress();
  return g.to_csc();
}

}  // namespace

int main(int argc, char** argv) {
  spkadd::util::CliParser cli(
      "aggregation_service",
      "multi-tenant gradient aggregation through the sharded service");
  const auto* workers =
      cli.add_int("workers-per-tenant", 2, "producer threads per tenant");
  const auto* rounds =
      cli.add_int("rounds", 12, "gradients per producer thread");
  const auto* shards = cli.add_int("shards", 4, "row-range shards");
  const auto* window = cli.add_int("batch-window", 4, "fold window");
  const auto* burst =
      cli.add_int("burst", 4, "producer burst-buffer size (1 = per-update)");
  if (!cli.parse(argc, argv)) return 1;
  // ServiceConfig's knobs are size_t: negative flags would wrap huge.
  if (*workers < 1 || *rounds < 1 || *shards < 1 || *window < 1 ||
      *burst < 1) {
    std::cerr << "aggregation_service: all flags must be >= 1\n";
    return 1;
  }

  const std::vector<TenantSpec> tenants = {
      {"vision", 1 << 14, 64, 2048},
      {"text", 1 << 15, 32, 4096},
      {"ranker", 1 << 12, 16, 512},
  };

  spkadd::service::ServiceConfig cfg;
  cfg.shards = static_cast<std::size_t>(*shards);
  cfg.batch_window = static_cast<std::size_t>(*window);
  cfg.burst_size = static_cast<std::size_t>(*burst);
  cfg.options.threads = 1;  // producer/worker threads are the parallelism
  spkadd::service::AggService svc(cfg);

  // Pre-materialize every gradient so the ground truth sums over
  // exactly what the producers will submit.
  const std::size_t per_tenant =
      static_cast<std::size_t>(*workers * *rounds);
  std::vector<std::vector<Csc>> gradients(tenants.size());
  for (std::size_t t = 0; t < tenants.size(); ++t)
    for (std::size_t i = 0; i < per_tenant; ++i)
      gradients[t].push_back(
          make_gradient(tenants[t], 1000 * t + i));

  // Prime each tenant with an empty update so mid-stream snapshots
  // below never race tenant creation. An empty addend changes nothing.
  for (const auto& t : tenants) svc.submit(t.name, Csc(t.rows, t.cols));

  // Concurrent ingest: every tenant's workers submit in parallel.
  std::vector<std::thread> producers;
  for (std::size_t t = 0; t < tenants.size(); ++t)
    for (std::int64_t w = 0; w < *workers; ++w)
      producers.emplace_back([&, t, w] {
        for (std::int64_t i = 0; i < *rounds; ++i)
          svc.submit(tenants[t].name,
                     gradients[t][static_cast<std::size_t>(
                         w * *rounds + i)]);
      });

  // A mid-stream consistent read: snapshots never block ingest.
  const auto mid = svc.snapshot("vision");
  std::cout << "mid-stream vision snapshot: epoch " << mid.epoch << ", "
            << mid.updates_applied << " updates, " << mid.sum.nnz()
            << " nnz\n";

  for (auto& p : producers) p.join();
  svc.drain();

  bool ok = true;
  for (std::size_t t = 0; t < tenants.size(); ++t) {
    const auto snap = svc.snapshot(tenants[t].name);
    const Csc expected = spkadd::core::spkadd(gradients[t]);
    const bool exact = snap.sum == expected;
    ok = ok && exact;
    std::cout << tenants[t].name << ": " << snap.updates_applied
              << " gradients -> " << snap.sum.nnz() << " nnz (epoch "
              << snap.epoch << "), bit-identical to one-shot spkadd: "
              << (exact ? "yes" : "NO") << "\n";
  }

  const auto st = svc.stats();
  std::cout << "service: " << st.applied << " updates applied, p99 "
            << st.latency.p99 * 1e3 << " ms, queue high-water "
            << st.queue_high_water << "/" << cfg.queue_capacity << "\n";
  std::cout << "ingest: " << st.ingest.bursts << " bursts, avg "
            << st.ingest.avg_burst() << " updates/burst (full/deadline/"
            << "drain flushes " << st.ingest.flushes_full << "/"
            << st.ingest.flushes_deadline << "/" << st.ingest.flushes_drain
            << "), throttled " << st.ingest.throttle_events << "x for "
            << st.ingest.throttle_seconds * 1e3 << " ms\n";
  svc.stop();
  return ok ? 0 : 1;
}
