// Finite-element assembly (the paper's §I motivation): local element
// stiffness matrices are scattered into a global matrix. Traditionally
// "assembly has few opportunities for parallelism" — the paper's point is
// that phrased as SpKAdd it has plenty: group elements into p partitions,
// build one sparse matrix per partition, and reduce the collection.
//
// We assemble the standard 5-point Laplacian of an N x N grid from 2x2
// element stiffness blocks, then check the known structure of the result.
//
//   ./examples/fem_assembly [--grid 128] [--partitions 16]
#include <cmath>
#include <iostream>
#include <vector>

#include "core/spkadd.hpp"
#include "matrix/coo.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

int main(int argc, char** argv) {
  spkadd::util::CliParser cli("fem_assembly",
                              "assemble a grid Laplacian via SpKAdd");
  const auto* grid = cli.add_int("grid", 128, "grid points per side");
  const auto* partitions =
      cli.add_int("partitions", 16, "element partitions (k addends)");
  if (!cli.parse(argc, argv)) return 1;

  const auto n = static_cast<std::int32_t>(*grid);
  const std::int32_t dofs = n * n;
  auto node = [n](std::int32_t i, std::int32_t j) { return i * n + j; };

  using Coo = spkadd::CooMatrix<std::int32_t, double>;
  using Csc = spkadd::CscMatrix<std::int32_t, double>;

  // Each interior edge of the grid contributes a 2x2 element matrix
  // [[1, -1], [-1, 1]] between its endpoints. Edges are dealt round-robin
  // into partitions, the way a mesh partitioner assigns elements to ranks.
  std::vector<Coo> partition_coo(
      static_cast<std::size_t>(*partitions),
      Coo(dofs, dofs));
  std::size_t edge = 0;
  auto emit = [&](std::int32_t a, std::int32_t b) {
    Coo& part = partition_coo[edge++ % partition_coo.size()];
    part.push(a, a, 1.0);
    part.push(b, b, 1.0);
    part.push(a, b, -1.0);
    part.push(b, a, -1.0);
  };
  for (std::int32_t i = 0; i < n; ++i) {
    for (std::int32_t j = 0; j < n; ++j) {
      if (j + 1 < n) emit(node(i, j), node(i, j + 1));  // horizontal edge
      if (i + 1 < n) emit(node(i, j), node(i + 1, j));  // vertical edge
    }
  }

  std::vector<Csc> parts;
  std::size_t local_nnz = 0;
  for (auto& c : partition_coo) {
    c.compress();
    parts.push_back(c.to_csc());
    local_nnz += parts.back().nnz();
  }
  std::cout << "assembling " << edge << " element matrices in "
            << *partitions << " partitions (" << local_nnz
            << " local nonzeros)\n";

  // Assembly == SpKAdd of the partition matrices.
  spkadd::util::WallTimer timer;
  const Csc stiffness = spkadd::core::spkadd(parts);
  std::cout << "assembled " << stiffness.rows() << "x" << stiffness.cols()
            << " global matrix, nnz=" << stiffness.nnz() << ", in "
            << timer.seconds() << " s\n";

  // Verify the assembled Laplacian: every row sums to zero (the constant
  // vector is in the null space) and interior nodes have degree 4.
  std::vector<double> row_sum(static_cast<std::size_t>(dofs), 0.0);
  for (std::int32_t j = 0; j < stiffness.cols(); ++j) {
    const auto col = stiffness.column(j);
    for (std::size_t i = 0; i < col.nnz(); ++i)
      row_sum[static_cast<std::size_t>(col.rows[i])] += col.vals[i];
  }
  double max_abs = 0;
  for (double s : row_sum) max_abs = std::max(max_abs, std::abs(s));
  const double center = stiffness.at(node(n / 2, n / 2), node(n / 2, n / 2));
  std::cout << "max |row sum| = " << max_abs << " (expect ~0)\n";
  std::cout << "interior diagonal = " << center << " (expect 4)\n";
  std::cout << "expected nnz " << (5 * dofs - 4 * n) << ", got "
            << stiffness.nnz() << "\n";
  return (max_abs < 1e-9 && center == 4.0) ? 0 : 1;
}
