// google-benchmark microbenchmarks of the per-column kernels — the inner
// loops behind every table in the paper. Useful for regression-tracking the
// kernels independently of workload generation.
#include <benchmark/benchmark.h>

#include "core/column_kernels.hpp"
#include "core/workspace.hpp"
#include "gen/workload.hpp"

namespace {

using namespace spkadd;
using Csc = CscMatrix<std::int32_t, double>;

/// Fixture data: k columns with d entries each over a 2^16-row space.
struct ColumnSet {
  std::vector<Csc> matrices;
  std::vector<ColumnView<std::int32_t, double>> views;

  ColumnSet(int k, int d) {
    gen::WorkloadSpec spec;
    spec.rows = 1 << 16;
    spec.cols = 1;
    spec.avg_nnz_per_col = d;
    spec.k = k;
    spec.seed = 12345;
    matrices = gen::make_workload(spec);
    for (const auto& m : matrices)
      if (!m.column(0).empty()) views.push_back(m.column(0));
  }
};

void BM_HashSymbolicColumn(benchmark::State& state) {
  const ColumnSet set(static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)));
  core::SymbolicHashWorkspace<std::int32_t> ws;
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::hash_symbolic_column(
        std::span<const ColumnView<std::int32_t, double>>(set.views), ws));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(1));
}
BENCHMARK(BM_HashSymbolicColumn)
    ->Args({8, 256})
    ->Args({32, 256})
    ->Args({32, 2048});

void BM_HashAddColumn(benchmark::State& state) {
  const ColumnSet set(static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)));
  core::SymbolicHashWorkspace<std::int32_t> sym;
  const std::size_t onz = core::hash_symbolic_column(
      std::span<const ColumnView<std::int32_t, double>>(set.views), sym);
  core::HashWorkspace<std::int32_t, double> ws;
  std::vector<std::int32_t> out_rows(onz);
  std::vector<double> out_vals(onz);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::hash_add_column(
        std::span<const ColumnView<std::int32_t, double>>(set.views), onz, ws,
        out_rows.data(), out_vals.data(), /*sorted_output=*/true));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(1));
}
BENCHMARK(BM_HashAddColumn)->Args({8, 256})->Args({32, 256})->Args({32, 2048});

void BM_HeapAddColumn(benchmark::State& state) {
  const ColumnSet set(static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)));
  core::HeapWorkspace<std::int32_t> ws;
  std::size_t cap = 0;
  for (const auto& v : set.views) cap += v.nnz();
  std::vector<std::int32_t> out_rows(cap);
  std::vector<double> out_vals(cap);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::heap_add_column(
        std::span<const ColumnView<std::int32_t, double>>(set.views), ws,
        out_rows.data(), out_vals.data()));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(1));
}
BENCHMARK(BM_HeapAddColumn)->Args({8, 256})->Args({32, 256})->Args({32, 2048});

void BM_SpaAddColumn(benchmark::State& state) {
  const ColumnSet set(static_cast<int>(state.range(0)),
                      static_cast<int>(state.range(1)));
  core::SpaWorkspace<std::int32_t, double> ws;
  ws.ensure_rows(1 << 16);
  std::size_t cap = 0;
  for (const auto& v : set.views) cap += v.nnz();
  std::vector<std::int32_t> out_rows(cap);
  std::vector<double> out_vals(cap);
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::spa_add_column(
        std::span<const ColumnView<std::int32_t, double>>(set.views), ws,
        out_rows.data(), out_vals.data(), /*sorted_output=*/true));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          state.range(1));
}
BENCHMARK(BM_SpaAddColumn)->Args({8, 256})->Args({32, 256})->Args({32, 2048});

void BM_Merge2Add(benchmark::State& state) {
  const ColumnSet set(2, static_cast<int>(state.range(0)));
  std::vector<std::int32_t> out_rows(set.views[0].nnz() + set.views[1].nnz());
  std::vector<double> out_vals(out_rows.size());
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::merge2_add(set.views[0], set.views[1],
                                              out_rows.data(),
                                              out_vals.data()));
  }
  state.SetItemsProcessed(state.iterations() * 2 * state.range(0));
}
BENCHMARK(BM_Merge2Add)->Arg(256)->Arg(4096)->Arg(65536);

}  // namespace

BENCHMARK_MAIN();
