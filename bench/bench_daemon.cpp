// Self-checking loadgen for the network daemon (net/server.hpp): N
// concurrent SPKN connections hammer a daemon over localhost with
// timestamped integer-valued updates, and EVERY windowed snapshot is
// verified bit-identical to a single-threaded reference fold of the
// live buckets (integer values make double addition exact, so no
// producer/worker/connection interleaving may change a single bit).
//
// The run is round-based: round r submits into time bucket r from all
// connections at once, a drain barrier cuts the round, and the bench
// then checks every window width 1..live_buckets (and the full ring)
// for every tenant against core::spkadd over exactly the updates the
// window should contain. A final stale-timestamp phase verifies that
// expired submits are counted and never folded.
//
// Modes:
//   ./bench/bench_daemon                      # in-process daemon
//   ./bench/bench_daemon --serve --port-file p.txt   # daemon only
//   ./bench/bench_daemon --connect 127.0.0.1:7070    # loadgen only
// The serve/connect pair is what the CI daemon-smoke job runs: a real
// daemon process, a real loadgen process, a real TCP port between
// them. --json writes the SampleLog merged into BENCH_daemon.json.
#include <algorithm>
#include <atomic>
#include <cmath>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <fstream>
#include <memory>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.hpp"
#include "gen/workload.hpp"
#include "net/client.hpp"
#include "net/server.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

using namespace spkadd;
using Csc = CscMatrix<std::int32_t, double>;

namespace {

std::atomic<bool> g_stop{false};

void on_signal(int) { g_stop.store(true); }

/// Snap every value to an integer in [-8, 8] so addition is exact.
void quantize_values(Csc& m) {
  for (auto& v : m.mutable_values()) v = std::round(v * 8.0);
}

/// Pull `"key":<number>` out of the daemon's stats JSON.
std::uint64_t json_field(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\":";
  const auto pos = json.find(needle);
  if (pos == std::string::npos) return ~std::uint64_t{0};
  return std::stoull(json.substr(pos + needle.size()));
}

struct Endpoint {
  std::string host;
  std::uint16_t port = 0;
};

bool parse_endpoint(const std::string& s, Endpoint& out) {
  const auto colon = s.rfind(':');
  if (colon == std::string::npos || colon == 0) return false;
  out.host = s.substr(0, colon);
  try {
    const int p = std::stoi(s.substr(colon + 1));
    if (p < 1 || p > 65535) return false;
    out.port = static_cast<std::uint16_t>(p);
  } catch (const std::exception&) {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("bench_daemon",
                      "network daemon loadgen: N SPKN connections with "
                      "bit-identity verification of windowed snapshots");
  const auto* rows = cli.add_int("rows", 1 << 11, "update rows");
  const auto* cols = cli.add_int("cols", 16, "update cols");
  const auto* d = cli.add_int("d", 4, "avg nonzeros per column per update");
  const auto* connections =
      cli.add_int("connections", 8, "concurrent loadgen connections");
  const auto* updates = cli.add_int(
      "updates", 6, "updates per connection per round");
  const auto* rounds =
      cli.add_int("rounds", 6, "time-bucket rounds to stream");
  const auto* tenants = cli.add_int("tenants", 2, "tenants to spread over");
  const auto* bucket_width =
      cli.add_int("bucket-width", 1000, "window bucket width (ticks)");
  const auto* live_buckets =
      cli.add_int("live-buckets", 4, "live window ring size (buckets)");
  const auto* workers =
      cli.add_int("workers", 2, "daemon ingest worker threads");
  const auto* queue = cli.add_int("queue", 128, "ingest queue capacity");
  const auto* burst =
      cli.add_int("burst", 8, "daemon worker burst size");
  const auto* serve = cli.add_flag(
      "serve", "run the daemon only, until SIGTERM/SIGINT");
  const auto* port_flag =
      cli.add_int("port", 0, "--serve listen port (0 = ephemeral)");
  const auto* port_file = cli.add_string(
      "port-file", "", "--serve: write the bound port here (CI handshake)");
  const auto* connect_flag = cli.add_string(
      "connect", "", "loadgen only, against host:port (no local daemon)");
  const auto* scrape_flag = cli.add_string(
      "scrape", "",
      "print the daemon's Prometheus exposition via the SPKN metrics "
      "verb (host:port) and exit");
  const auto* json = cli.add_string("json", "", "write JSON samples here");
  if (!cli.parse(argc, argv)) return 1;

  const auto positive = [](const char* name, std::int64_t v) {
    if (v < 1) {
      std::cerr << "bench_daemon: --" << name << " must be >= 1\n";
      return false;
    }
    return true;
  };
  if (!positive("rows", *rows) || !positive("cols", *cols) ||
      !positive("d", *d) || !positive("connections", *connections) ||
      !positive("updates", *updates) || !positive("rounds", *rounds) ||
      !positive("tenants", *tenants) ||
      !positive("bucket-width", *bucket_width) ||
      !positive("live-buckets", *live_buckets) ||
      !positive("workers", *workers) || !positive("queue", *queue) ||
      !positive("burst", *burst))
    return 1;
  if (*port_flag < 0 || *port_flag > 65535) {
    std::cerr << "bench_daemon: --port must be in [0, 65535]\n";
    return 1;
  }

  net::ServerConfig server_cfg;
  server_cfg.port = static_cast<std::uint16_t>(*port_flag);
  server_cfg.service.window.bucket_width =
      static_cast<std::uint64_t>(*bucket_width);
  server_cfg.service.window.live_buckets =
      static_cast<std::size_t>(*live_buckets);
  server_cfg.service.workers = static_cast<std::size_t>(*workers);
  server_cfg.service.queue_capacity = static_cast<std::size_t>(*queue);
  server_cfg.service.burst_size = static_cast<std::size_t>(*burst);

  // ------------------------------------------------------ serve mode
  if (*serve) {
    net::DaemonServer server(server_cfg);
    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);
    std::cout << "bench_daemon: serving on 127.0.0.1:" << server.port()
              << std::endl;
    if (!port_file->empty()) {
      std::ofstream out(*port_file);
      out << server.port() << "\n";
      if (!out) {
        std::cerr << "bench_daemon: cannot write " << *port_file << "\n";
        return 1;
      }
    }
    while (!g_stop.load())
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    server.stop();
    const auto stats = server.stats();
    std::cout << "bench_daemon: served " << stats.connections_accepted
              << " connections, "
              << stats.requests_submit + stats.requests_snapshot +
                     stats.requests_drain + stats.requests_stats +
                     stats.requests_metrics
              << " requests, " << stats.protocol_errors
              << " protocol errors\n";
    return stats.protocol_errors == 0 ? 0 : 1;
  }

  // ----------------------------------------------------- scrape mode
  if (!scrape_flag->empty()) {
    Endpoint ep;
    if (!parse_endpoint(*scrape_flag, ep)) {
      std::cerr << "bench_daemon: --scrape wants host:port, got '"
                << *scrape_flag << "'\n";
      return 1;
    }
    net::Client client(ep.host, ep.port);
    net::Status status = net::Status::kInternal;
    const std::string text = client.metrics_text(&status);
    if (status != net::Status::kOk) {
      std::cerr << "bench_daemon: metrics verb answered "
                << net::status_name(status) << "\n";
      return 1;
    }
    std::cout << text;
    return text.empty() ? 1 : 0;
  }

  // --------------------------------------------------- loadgen setup
  Endpoint endpoint{"127.0.0.1", 0};
  std::unique_ptr<net::DaemonServer> local;
  if (connect_flag->empty()) {
    local = std::make_unique<net::DaemonServer>(server_cfg);
    endpoint.port = local->port();
  } else if (!parse_endpoint(*connect_flag, endpoint)) {
    std::cerr << "bench_daemon: --connect wants host:port, got '"
              << *connect_flag << "'\n";
    return 1;
  }

  bench::print_header("Aggregation daemon loadgen",
                      "SPKN connections over localhost with windowed "
                      "snapshot bit-identity verification");
  bench::SampleLog log("bench_daemon");

  const auto C = static_cast<std::size_t>(*connections);
  const auto U = static_cast<std::size_t>(*updates);
  const auto R = static_cast<std::size_t>(*rounds);
  const auto T = static_cast<std::size_t>(*tenants);
  const auto live = static_cast<std::size_t>(*live_buckets);
  const auto width = static_cast<std::uint64_t>(*bucket_width);

  // One deterministic integer-valued update set: index
  // (round, connection, i) -> all_updates[(r*C + c)*U + i].
  gen::WorkloadSpec spec;
  spec.rows = *rows;
  spec.cols = *cols;
  spec.avg_nnz_per_col = *d;
  // make_workload wants a power-of-two k; generate enough and index
  // into the prefix.
  spec.k = 1;
  while (spec.k < static_cast<int>(R * C * U)) spec.k *= 2;
  spec.seed = 4242;
  auto all_updates = gen::make_workload(spec);
  for (auto& u : all_updates) quantize_values(u);
  std::cerr << "generated " << spec.describe() << "\n";
  const auto update_at = [&](std::size_t r, std::size_t c,
                             std::size_t i) -> const Csc& {
    return all_updates[(r * C + c) * U + i];
  };
  const auto tenant_name = [&](std::size_t c) {
    return "tenant-" + std::to_string(c % T);
  };

  std::vector<std::unique_ptr<net::Client>> clients;
  for (std::size_t c = 0; c < C; ++c)
    clients.push_back(
        std::make_unique<net::Client>(endpoint.host, endpoint.port));
  net::Client control(endpoint.host, endpoint.port);

  // Reference for tenant t over rounds [lo, hi]: one-shot spkadd over
  // exactly the updates those connections streamed into those buckets
  // (integer values: bit-identical to the daemon's strict bucket fold).
  const auto reference = [&](std::size_t t, std::size_t lo,
                             std::size_t hi) {
    std::vector<Csc> inputs;
    for (std::size_t r = lo; r <= hi; ++r)
      for (std::size_t c = 0; c < C; ++c) {
        if (c % T != t) continue;
        for (std::size_t i = 0; i < U; ++i)
          inputs.push_back(update_at(r, c, i));
      }
    return core::spkadd(inputs);
  };

  // ------------------------------------------------- round-based run
  std::uint64_t mismatches = 0;
  std::atomic<std::uint64_t> ack_failures{0};
  std::uint64_t verified_snapshots = 0;
  util::WallTimer total;
  for (std::size_t r = 0; r < R; ++r) {
    const std::uint64_t ts = static_cast<std::uint64_t>(r) * width + 1;
    util::WallTimer round_timer;
    std::vector<std::thread> threads;
    for (std::size_t c = 0; c < C; ++c)
      threads.emplace_back([&, c] {
        net::Client& client = *clients[c];
        for (std::size_t i = 0; i < U; ++i)
          client.submit_async(tenant_name(c), ts, update_at(r, c, i));
        if (client.collect_acks(U) != U) ++ack_failures;
      });
    for (auto& t : threads) t.join();
    if (control.drain() != net::Status::kOk) ++ack_failures;
    const double round_s = round_timer.seconds();

    // Verify every window width against the reference fold.
    const std::size_t oldest_live = r + 1 > live ? r + 1 - live : 0;
    for (std::size_t t = 0; t < T; ++t) {
      for (std::size_t w = 1; w <= live; ++w) {
        const std::size_t lo = r + 1 > w ? r + 1 - w : 0;
        const auto snap = control.snapshot(tenant_name(t), w);
        if (snap.status != net::Status::kOk ||
            snap.sum != reference(t, std::max(lo, oldest_live), r)) {
          ++mismatches;
          std::cerr << "MISMATCH: round " << r << " tenant " << t
                    << " window " << w << "\n";
        } else {
          ++verified_snapshots;
        }
      }
      // Full ring (window 0) must equal the widest live cut.
      const auto snap = control.snapshot(tenant_name(t), 0);
      if (snap.status != net::Status::kOk ||
          snap.sum != reference(t, oldest_live, r)) {
        ++mismatches;
        std::cerr << "MISMATCH: round " << r << " tenant " << t
                  << " full ring\n";
      } else {
        ++verified_snapshots;
      }
    }
    const double per_update =
        round_s / static_cast<double>(C * U);
    log.add("daemon/round",
            "round=" + std::to_string(r) + " connections=" +
                std::to_string(C) + " updates=" + std::to_string(C * U),
            per_update);
  }
  const double total_s = total.seconds();

  // ------------------------------------- stale-timestamp (expiry) run
  std::uint64_t expired_before = 0, expired_after = 0;
  if (R > live) {
    const std::string json_before = control.stats_json();
    expired_before = json_field(json_before, "expired");
    const Csc before = control.snapshot(tenant_name(0), 0).sum;
    // Bucket 0 aged out of the ring rounds ago: the daemon must accept
    // the frame, then reject + count the update at fold time.
    if (control.submit(tenant_name(0), 0, update_at(0, 0, 0)) !=
        net::Status::kOk)
      ++ack_failures;
    if (control.drain() != net::Status::kOk) ++ack_failures;
    const std::string json_after = control.stats_json();
    expired_after = json_field(json_after, "expired");
    if (expired_after != expired_before + 1) {
      ++mismatches;
      std::cerr << "MISMATCH: stale submit not counted expired\n";
    }
    if (control.snapshot(tenant_name(0), 0).sum != before) {
      ++mismatches;
      std::cerr << "MISMATCH: stale submit leaked into the window\n";
    }
  }

  // ------------------------------------------------------- verdict
  const std::string stats = control.stats_json();
  const std::uint64_t protocol_errors =
      json_field(stats, "protocol_errors");
  const std::uint64_t applied = json_field(stats, "applied");
  const double upd_s =
      static_cast<double>(R * C * U) / total_s;
  std::cout << "connections:        " << C << "\n"
            << "rounds x updates:   " << R << " x " << C * U << "\n"
            << "updates applied:    " << applied << "\n"
            << "sustained rate:     " << static_cast<std::uint64_t>(upd_s)
            << " updates/s\n"
            << "verified snapshots: " << verified_snapshots << "\n"
            << "expired (counted):  " << expired_after << "\n"
            << "protocol errors:    " << protocol_errors << "\n"
            << "mismatches:         " << mismatches << "\n"
            << "ack failures:       " << ack_failures << "\n";
  log.add("daemon/ingest",
          "connections=" + std::to_string(C) + " rounds=" +
              std::to_string(R) + " tenants=" + std::to_string(T) +
              " workers=" + std::to_string(*workers),
          total_s / static_cast<double>(R * C * U));

  clients.clear();
  control.close();
  if (local != nullptr) local->stop();

  const bool ok =
      mismatches == 0 && ack_failures == 0 && protocol_errors == 0;
  std::cout << "\nall windowed snapshots bit-identical to reference "
            << "folds, zero protocol errors: " << (ok ? "yes" : "NO")
            << "\n";
  if (!json->empty() && !log.write(*json)) return 1;
  return ok ? 0 : 1;
}
