// Reproduces Fig. 4: runtime of the sliding-hash algorithm as a function of
// the (forced) hash-table size, split into symbolic / computation / total —
// for the paper's cases (a)-(d) on the detected machine and (e)-(f) with an
// 8MB LLC override modeling the AMD EPYC. The optimum should sit near
// LLC / (entry_bytes * threads); the rightmost column is "no partitioning".
#include <iostream>

#include "bench_common.hpp"
#include "core/kway.hpp"
#include "matrix/validate.hpp"
#include "core/symbolic.hpp"
#include "gen/workload.hpp"
#include "util/cache_info.hpp"
#include "util/cli.hpp"
#include "util/timer.hpp"

using namespace spkadd;

namespace {

using Inputs = std::vector<CscMatrix<std::int32_t, double>>;

struct Case {
  std::string name;
  gen::Pattern pattern;
  std::int64_t rows, cols, d;
  int k;
  std::size_t llc_override;  ///< 0 = detected machine
};

void run_case(const Case& c, int repeats) {
  gen::WorkloadSpec spec;
  spec.pattern = c.pattern;
  spec.rows = c.rows;
  spec.cols = c.cols;
  spec.avg_nnz_per_col = c.d;
  spec.k = c.k;
  spec.seed = 4000;
  const Inputs inputs = gen::make_workload(spec);

  // Compression factor for the header (drives how much larger symbolic
  // tables are than numeric ones — the paper's Eukarya discussion).
  const auto out = core::spkadd_hash(
      std::span<const CscMatrix<std::int32_t, double>>(inputs));
  const double cf = compression_factor(
      std::span<const CscMatrix<std::int32_t, double>>(inputs), out);

  std::cout << "### " << c.name << "  (" << spec.describe() << ", cf="
            << cf << (c.llc_override ? ", LLC override "
                      + std::to_string(c.llc_override >> 20) + "MB" : "")
            << ")\n";

  util::TablePrinter table({"table size", "symbolic", "computation", "total"});
  for (std::size_t cap = 1u << 7; cap <= (1u << 20); cap <<= 2) {
    core::Options opts;
    opts.max_table_entries = cap;
    if (c.llc_override != 0) opts.llc_bytes = c.llc_override;

    double best_sym = -1, best_num = -1;
    for (int r = 0; r < repeats; ++r) {
      util::WallTimer t;
      const auto counts = core::symbolic_nnz_per_column(
          std::span<const CscMatrix<std::int32_t, double>>(inputs), opts,
          /*sliding=*/true);
      const double sym = t.seconds();
      t.reset();
      auto result = core::spkadd_sliding_hash(
          std::span<const CscMatrix<std::int32_t, double>>(inputs), opts);
      const double total_run = t.seconds();
      // spkadd_sliding_hash re-runs its own symbolic internally; charge the
      // remainder to computation.
      const double num = std::max(0.0, total_run - sym);
      if (best_sym < 0 || sym < best_sym) best_sym = sym;
      if (best_num < 0 || num < best_num) best_num = num;
      static std::size_t sink = 0;
      sink += result.nnz() + counts.size();
    }
    table.add_row({std::to_string(cap),
                   util::TablePrinter::fmt_seconds(best_sym),
                   util::TablePrinter::fmt_seconds(best_num),
                   util::TablePrinter::fmt_seconds(best_sym + best_num)});
  }
  table.print(std::cout);
  std::cout << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  util::CliParser cli("bench_fig4_hashsize",
                      "Fig. 4: sliding-hash runtime vs hash table size");
  const auto* repeats = cli.add_int("repeats", 2, "timing repetitions");
  const auto* scale = cli.add_int("scale", 14, "log2 rows of the big cases");
  if (!cli.parse(argc, argv)) return 1;

  bench::print_header("Fig. 4 — optimum sliding-hash table size",
                      "paper Fig. 4 (a)-(f): the best table size tracks the "
                      "cache budget; tiny tables over-partition, huge tables "
                      "spill out of cache");

  const std::int64_t big = 1ll << *scale;
  const std::vector<Case> cases{
      // (a) small ER: L1-sized tables suffice.
      {"(a) ER small, d=64, k=32", gen::Pattern::ER, big / 4, 32, 64, 32, 0},
      // (b) dense ER columns: table spills the LLC without sliding.
      {"(b) ER dense, d=2048, k=32", gen::Pattern::ER, big, 8, 2048, 32, 0},
      // (c) skewed RMAT.
      {"(c) RMAT, d=512, k=32", gen::Pattern::RMAT, big, 32, 512, 32, 0},
      // (d) high compression factor (Eukarya-like): overlapping inputs.
      {"(d) high-cf RMAT, d=256, k=64", gen::Pattern::RMAT, big / 16, 16, 256,
       64, 0},
      // (e)/(f): same as (b)/(c) with the EPYC's 8MB LLC.
      {"(e) ER dense on 8MB LLC", gen::Pattern::ER, big, 8, 2048, 32,
       8u << 20},
      {"(f) RMAT on 8MB LLC", gen::Pattern::RMAT, big, 32, 512, 32, 8u << 20},
  };
  for (const auto& c : cases) run_case(c, static_cast<int>(*repeats));
  std::cout << "expected shape: total runtime is U-shaped in table size; "
               "the minimum sits near M/(b*T) and moves left with the "
               "smaller (8MB) LLC; the symbolic phase is the more sensitive "
               "one at high cf.\n";
  return 0;
}
