// Shared harness for the paper-reproduction benches: machine header
// (Table II analog), repeat-and-min timing, method sweeps, and the
// machine-readable JSON sample log behind every bench's `--json <path>`
// mode (the perf-trajectory artifact CI uploads per run).
#pragma once

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/options.hpp"
#include "core/spkadd.hpp"
#include "matrix/csc.hpp"
#include "util/cli.hpp"
#include "util/table_printer.hpp"

namespace spkadd::bench {

/// Print the program banner + detected machine (every bench leads with the
/// Table II analog so results are interpretable).
void print_header(const std::string& title, const std::string& what);

/// Best-of-`repeats` wall time of `fn` in seconds (min, the conventional
/// benchmark statistic for compute kernels).
double time_best(int repeats, const std::function<void()>& fn);

/// Run one SpKAdd method over `inputs` and return best-of-`repeats` seconds.
double time_spkadd(const std::vector<CscMatrix<std::int32_t, double>>& inputs,
                   core::Method method, const core::Options& base_opts,
                   int repeats);

/// The method rows of Tables III/IV in paper order.
const std::vector<core::Method>& table_methods();

/// One named skew-sweep workload (bench_hybrid / bench_calibration share
/// the same four presets so analytic-vs-calibrated comparisons line up
/// with the hybrid trajectory).
struct SkewPreset {
  std::string name;
  std::vector<CscMatrix<std::int32_t, double>> inputs;
};

/// The four presets spanning the skew axis of the per-chunk Fig. 2
/// surface: ER-uniform-k64, ER-sparse-k4 (the heap corner), RMAT-skew-k64
/// and RMAT-hub-k64 (one dense hub column among sparse ones). `k` sets the
/// addend count of the k64 presets; the sparse preset always uses k=4,d=2.
std::vector<SkewPreset> make_skew_presets(std::int64_t rows,
                                          std::int64_t cols, std::int64_t d,
                                          int k);

/// Shorthand: "0.0083" or "n/a" when seconds < 0 (method skipped).
std::string cell(double seconds);

/// Median-of-`repeats` wall time of `fn` in seconds — the statistic logged
/// to the JSON perf trajectory (robust to one-off outliers, unlike min).
double time_median(int repeats, const std::function<void()>& fn);

/// One machine-readable benchmark sample.
struct Sample {
  std::string name;    ///< what was measured, e.g. "streaming/RMAT/k=64"
  std::string config;  ///< free-form knobs, e.g. "grid=4 window=2"
  double seconds = 0;  ///< median-of-repeats wall seconds
  std::size_t peak_intermediate_nnz = 0;  ///< 0 when not applicable
};

/// Collects samples and writes the bench's `--json <path>` document:
///   {"bench": ..., "version": ..., "machine": ..., "samples": [...]}
/// scripts/bench_smoke.sh merges these per-bench documents into the
/// BENCH_summa.json perf-trajectory artifact.
class SampleLog {
 public:
  explicit SampleLog(std::string bench);

  void add(const std::string& name, const std::string& config, double seconds,
           std::size_t peak_intermediate_nnz = 0);

  /// Write the JSON document; returns false (with a stderr note) when the
  /// file cannot be opened.
  [[nodiscard]] bool write(const std::string& path) const;

  [[nodiscard]] bool empty() const { return samples_.empty(); }

 private:
  std::string bench_;
  std::vector<Sample> samples_;
};

}  // namespace spkadd::bench
